package psgc

import (
	"fmt"

	"psgc/internal/gclang"
	"psgc/internal/regions"
)

// Divergence describes one observed disagreement between the environment
// machine and the substitution oracle during a co-checked run.
type Divergence struct {
	// Step is the oracle's step count when the disagreement was observed.
	Step int `json:"step"`
	// Detail says what disagreed (pending call, step parity, memory
	// counters, final result, or a heap cell).
	Detail string `json:"detail"`
}

func (d Divergence) String() string {
	return fmt.Sprintf("diverged at step %d: %s", d.Step, d.Detail)
}

// runCoChecked steps the environment machine in lockstep with the
// substitution oracle, comparing the observables the differential test
// suite pins: the pending collector call before each step, step counts,
// halt status, the full regions.Stats counters after each step, and — at
// halt — the final value and every heap cell.
//
// The oracle is authoritative. On the first disagreement (including an
// env-machine step error, which injected faults can produce) the shadow
// env machine is abandoned, opts.OnDivergence is invoked, and the run
// continues on the oracle alone; the returned Result is always the
// oracle's. The Recorder, Progress callbacks, and collection counting all
// observe the oracle, so a diverging shadow cannot pollute the timeline.
func (c *Compiled) runCoChecked(opts RunOptions) (Result, error) {
	// The oracle always runs on the map backend — the reference substrate —
	// while the shadow honors opts.Backend. A co-checked arena run is
	// therefore also a cell-by-cell differential test of the arena against
	// the reference implementation.
	var oracle *gclang.Machine
	var shadow *gclang.EnvMachine
	collections := 0
	if ck := opts.ResumeFrom; ck != nil {
		// Resuming co-checked: both engines are rebuilt from the *same*
		// image — the shadow directly, the oracle by folding the image's
		// environment into the control term — so they start from the
		// identical configuration and the per-step counter comparison
		// stays exact across the checkpoint.
		var err error
		shadow, err = gclang.RestoreEnvMachine(opts.Backend, c.Collector.Dialect(), c.Prog, ck.image)
		if err != nil {
			return Result{}, fmt.Errorf("psgc: resume: %w", err)
		}
		oracle, err = gclang.RestoreOracle(c.Prog, ck.image)
		if err != nil {
			return Result{}, fmt.Errorf("psgc: resume oracle: %w", err)
		}
		collections = ck.Collections
	} else {
		oracleOpts := opts
		oracleOpts.Backend = regions.BackendMap
		oracleOpts.WrapStore = nil // a trace recorder watches the shadow, not the oracle
		oracle = c.NewMachine(oracleOpts)
		shadow = c.NewEnvMachine(opts)
	}
	if opts.Recorder != nil {
		opts.Recorder.Attach(oracle)
	}
	if err := restoreProfiler(&opts); err != nil {
		return Result{}, err
	}
	if opts.Profiler != nil {
		opts.Profiler.Attach(oracle)
	}
	// capture checkpoints from the shadow while it is alive (env-engine
	// image on opts.Backend, the resumable common case); after a divergence
	// the oracle is all that is left, so its subst image is captured.
	capture := func(fuelLeft int) (*Checkpoint, error) {
		if shadow != nil {
			return c.captureEnv(shadow, &opts, collections, fuelLeft)
		}
		return c.captureSubst(oracle, &opts, collections, fuelLeft)
	}
	fuel, every := runBudgets(opts)
	lastCk := oracle.Steps
	diverge := func(step int, format string, args ...any) {
		shadow = nil
		if opts.OnDivergence != nil {
			opts.OnDivergence(Divergence{Step: step, Detail: fmt.Sprintf(format, args...)})
		}
	}
	for !oracle.Halted {
		if opts.Checkpointer != nil && opts.Checkpointer.take() {
			ck, err := capture(fuel)
			if err != nil {
				return Result{}, err
			}
			opts.Checkpointer.deliver(ck)
			return partialResult(oracle.Steps, collections, oracle.Mem), fmt.Errorf("%w at step %d", ErrCheckpointed, oracle.Steps)
		}
		if opts.CheckpointEvery > 0 && oracle.Steps != lastCk && oracle.Steps%opts.CheckpointEvery == 0 {
			lastCk = oracle.Steps
			ck, err := capture(fuel)
			if err != nil {
				return Result{}, err
			}
			if !opts.OnCheckpoint(ck) {
				return partialResult(oracle.Steps, collections, oracle.Mem), fmt.Errorf("%w at step %d", ErrCheckpointed, oracle.Steps)
			}
		}
		if fuel <= 0 {
			return partialResult(oracle.Steps, collections, oracle.Mem), fmt.Errorf("%w after %d steps", ErrOutOfFuel, oracle.Steps)
		}
		fuel--
		collected := false
		oa, oPending := oracle.PendingCall()
		if oPending && c.entries[oa] {
			collections++
			collected = true
		}
		if shadow != nil {
			if sa, sPending := shadow.PendingCall(); sPending != oPending || sa != oa {
				diverge(oracle.Steps, "pending call: oracle (%v,%v) env (%v,%v)", oa, oPending, sa, sPending)
			}
		}
		if err := oracle.Step(); err != nil {
			return Result{}, err
		}
		if shadow != nil {
			if err := shadow.Step(); err != nil {
				diverge(oracle.Steps, "env machine error: %v", err)
			} else if shadow.Steps != oracle.Steps || shadow.Halted != oracle.Halted {
				diverge(oracle.Steps, "step/halt: oracle (%d,%v) env (%d,%v)",
					oracle.Steps, oracle.Halted, shadow.Steps, shadow.Halted)
			} else if shadow.Mem.Stats() != oracle.Mem.Stats() {
				diverge(oracle.Steps, "memory counters: oracle %+v env %+v", oracle.Mem.Stats(), shadow.Mem.Stats())
			}
		}
		if opts.Progress != nil && (collected || oracle.Steps%every == 0) {
			ok := opts.Progress(Progress{
				Steps:       oracle.Steps,
				Collections: collections,
				LiveCells:   oracle.Mem.LiveCells(),
			})
			if !ok {
				return partialResult(oracle.Steps, collections, oracle.Mem), fmt.Errorf("%w after %d steps", ErrCanceled, oracle.Steps)
			}
		}
	}
	// Snapshot the result before the heap walk: compareHalt reads cells
	// through Mem.Get, which counts, and the reported Stats must match a
	// plain run's.
	res, err := finishResult(oracle.Result, oracle.Steps, collections, oracle.Mem)
	if shadow != nil {
		if detail := compareHalt(oracle, shadow); detail != "" {
			diverge(oracle.Steps, "%s", detail)
		}
	}
	return res, err
}

// compareHalt compares the halted machines' results and full heaps,
// returning a non-empty description of the first mismatch. Corruption the
// mutator never read surfaces here: the counters agree, but a cell differs.
func compareHalt(oracle *gclang.Machine, shadow *gclang.EnvMachine) string {
	if or, sr := oracle.Result.String(), shadow.Result.String(); or != sr {
		return fmt.Sprintf("result: oracle %s env %s", or, sr)
	}
	oc, sc := oracle.Mem.Cells(), shadow.Mem.Cells()
	if len(oc) != len(sc) {
		return fmt.Sprintf("heap size: oracle %d cells env %d cells", len(oc), len(sc))
	}
	for i, a := range oc {
		if sc[i] != a {
			return fmt.Sprintf("heap shape: cell %d at %v (oracle) vs %v (env)", i, a, sc[i])
		}
		ov, err1 := oracle.Mem.Get(a)
		sv, err2 := shadow.Mem.Get(a)
		if err1 != nil || err2 != nil {
			return fmt.Sprintf("heap read at %v: oracle err %v env err %v", a, err1, err2)
		}
		// Pool handles are machine-local, so packed cells are compared by
		// decoding each side through its own pools — which makes this walk a
		// differential test of the packing itself, not just of the backend.
		if os, ss := oracle.Pool.Decode(ov).String(), shadow.Pool.Decode(sv).String(); os != ss {
			return fmt.Sprintf("heap cell %v: oracle %s env %s", a, os, ss)
		}
	}
	return ""
}
