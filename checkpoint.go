package psgc

// Checkpoint/resume for paused runs.
//
// A Checkpoint is a run frozen at a step boundary: the machine image
// (control state, environment, pools, heap image with region pattern
// words), the fuel left, the collection count, the attached profiler's
// aggregate, and the identity metadata a fleet needs to route it (source
// hash, trace ID). Checkpoints serialize through internal/checkpoint's
// versioned self-validating wire format and restore onto *any* backend —
// a run captured on the arena resumes on the map store and vice versa,
// with bit-identical results and counters, because the heap image is the
// backend-neutral canonical form both stores round-trip through.
//
// Decoding is re-certification, not trust: the collector prefix of the
// carried program must match this process's own verified collector
// bit-for-bit, the mutator blocks are re-typechecked, the cell image is
// re-validated cell by cell, and the profiler image is bounds-checked —
// exactly the peer-cache import discipline. A corrupt, truncated, or
// malicious blob yields an error; it can never yield a runnable machine
// that was not certified here.

import (
	"errors"
	"fmt"
	"sync/atomic"

	"psgc/internal/checkpoint"
	"psgc/internal/gclang"
	"psgc/internal/obs"
	"psgc/internal/regions"
)

// ErrCheckpointed is returned (wrapped) by Run when the run stopped at a
// checkpoint: an on-demand Checkpointer request, or OnCheckpoint
// returning false. The accompanying Result carries the partial
// execution's statistics, like ErrOutOfFuel.
var ErrCheckpointed = errors.New("psgc: run checkpointed")

// ParseCollector parses a collector name as produced by Collector.String:
// "basic", "forwarding", "generational".
func ParseCollector(s string) (Collector, error) {
	switch s {
	case "basic":
		return Basic, nil
	case "forwarding":
		return Forwarding, nil
	case "generational":
		return Generational, nil
	default:
		return 0, fmt.Errorf("psgc: unknown collector %q", s)
	}
}

// CheckpointMeta is identity metadata stamped into checkpoints captured
// from a run. Neither field affects execution; they let a fleet key a
// resumed run back to its origin (the gate's idempotent migration keys on
// TraceID).
type CheckpointMeta struct {
	SourceHash string
	TraceID    string
}

// Checkpoint is a paused run. Capture one with RunOptions.Checkpointer or
// RunOptions.CheckpointEvery; serialize with Encode; rebuild from a blob
// with DecodeCheckpoint; continue it — on any backend — with Resume.
type Checkpoint struct {
	// SourceHash and TraceID are the CheckpointMeta of the captured run.
	SourceHash string
	TraceID    string
	// Collector and Engine the run was using; Backend it was captured on.
	// Resume keeps the engine but honors its own RunOptions.Backend, which
	// is what makes cross-backend migration a one-liner.
	Collector Collector
	Backend   regions.Backend
	Engine    Engine
	// Steps taken, collections counted, and fuel left when captured.
	Steps         int
	Collections   int
	FuelRemaining int

	compiled *Compiled
	image    gclang.MachineImage
	profiler *obs.ProfilerImage
}

// Compiled returns the certified program the checkpoint resumes — for a
// decoded checkpoint, the re-certified one built by DecodeCheckpoint.
func (ck *Checkpoint) Compiled() *Compiled { return ck.compiled }

// Encode serializes the checkpoint into the versioned wire format
// (internal/checkpoint): magic, format version, gob header and body, and
// a SHA-256 trailer over everything.
func (ck *Checkpoint) Encode() ([]byte, error) {
	return checkpoint.Encode(&checkpoint.Snapshot{
		SourceHash:    ck.SourceHash,
		Collector:     ck.Collector.String(),
		Backend:       ck.Backend.String(),
		Engine:        ck.Engine.String(),
		TraceID:       ck.TraceID,
		Collections:   ck.Collections,
		FuelRemaining: ck.FuelRemaining,
		Machine:       ck.image,
		Profiler:      ck.profiler,
		Program:       ck.compiled.Prog,
	})
}

// DecodeCheckpoint deserializes and fully re-certifies a checkpoint blob.
// Everything that will run is re-checked before this returns: checksum
// and header cross-checks (internal/checkpoint), collector prefix
// compared bit-for-bit against the locally certified collector with the
// mutator re-typechecked (the peer-cache import discipline), the machine
// image validated cell by cell, and the profiler image bounds-checked. A
// blob that fails any check is rejected with an error — never a panic,
// never a machine that could compute a wrong answer silently.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	_, s, err := checkpoint.Decode(data)
	if err != nil {
		return nil, err
	}
	col, err := ParseCollector(s.Collector)
	if err != nil {
		return nil, fmt.Errorf("psgc: decode checkpoint: %w", err)
	}
	be, err := regions.ParseBackend(s.Backend)
	if err != nil {
		return nil, fmt.Errorf("psgc: decode checkpoint: %w", err)
	}
	eng, err := ParseEngine(s.Engine)
	if err != nil {
		return nil, fmt.Errorf("psgc: decode checkpoint: %w", err)
	}
	if s.Collections < 0 || s.FuelRemaining < 0 {
		return nil, fmt.Errorf("psgc: decode checkpoint: negative counters (collections %d, fuel %d)",
			s.Collections, s.FuelRemaining)
	}
	if col.Dialect() != s.Machine.Dialect {
		return nil, fmt.Errorf("psgc: decode checkpoint: collector %v is dialect %v but image is %v",
			col, col.Dialect(), s.Machine.Dialect)
	}
	c, err := recertify(col, s.Program)
	if err != nil {
		return nil, fmt.Errorf("psgc: decode checkpoint: %w", err)
	}
	if err := gclang.ValidateImage(c.Prog, &s.Machine); err != nil {
		return nil, fmt.Errorf("psgc: decode checkpoint: %w", err)
	}
	if eng == EngineSubst &&
		len(s.Machine.EnvCells)+len(s.Machine.EnvTags)+len(s.Machine.EnvRegs)+len(s.Machine.EnvTyps) != 0 {
		return nil, errors.New("psgc: decode checkpoint: substitution-engine image carries an environment")
	}
	if s.Profiler != nil {
		// A trial restore bounds-checks the profiler image now, so a
		// corrupt one is a decode-time rejection, not a resume-time surprise.
		if err := obs.NewProfiler(c.entryNames, c.collectorFuns).Restore(*s.Profiler); err != nil {
			return nil, fmt.Errorf("psgc: decode checkpoint: %w", err)
		}
	}
	return &Checkpoint{
		SourceHash:    s.SourceHash,
		TraceID:       s.TraceID,
		Collector:     col,
		Backend:       be,
		Engine:        eng,
		Steps:         s.Machine.Steps,
		Collections:   s.Collections,
		FuelRemaining: s.FuelRemaining,
		compiled:      c,
		image:         s.Machine,
		profiler:      s.Profiler,
	}, nil
}

// Resume continues the checkpointed run under opts. The engine comes from
// the checkpoint (an env image resumes on the environment machine, a
// subst image on the substitution machine; opts.Engine is ignored), and
// heap capacity and growth policy come from the heap image, but the
// backend is opts.Backend — resuming an arena checkpoint with
// Backend: regions.BackendMap is cross-backend migration. With opts.Fuel
// zero the run inherits the checkpoint's remaining fuel, so an
// interrupted budget stays a budget. CoCheck on an env checkpoint rebuilds
// the substitution oracle from the same image (gclang.RestoreOracle), so
// the lockstep counter comparison stays exact across the checkpoint.
// Ghost, CheckEveryStep, and WrapStore are not supported on resume.
func (ck *Checkpoint) Resume(opts RunOptions) (Result, error) {
	opts.ResumeFrom = ck
	return ck.compiled.Run(opts)
}

// Checkpointer requests an on-demand checkpoint from a running Run: call
// Request (from any goroutine) and the run captures its state at the next
// step boundary, delivers it on Checkpoints, and stops with
// ErrCheckpointed. The service's POST /snapshot uses this to pause a
// streaming run; the gate migrates the resulting blob to a peer. One
// Checkpointer serves one run.
type Checkpointer struct {
	flag atomic.Bool
	ch   chan *Checkpoint
}

// NewCheckpointer returns a Checkpointer ready to pass in
// RunOptions.Checkpointer.
func NewCheckpointer() *Checkpointer {
	return &Checkpointer{ch: make(chan *Checkpoint, 1)}
}

// Request asks the run to checkpoint and stop at its next step boundary.
// Safe to call from any goroutine; calling it more than once is the same
// as calling it once.
func (cp *Checkpointer) Request() { cp.flag.Store(true) }

// Checkpoints delivers the captured checkpoint. Nothing arrives unless
// Request was called; at most one checkpoint is ever delivered. If the
// run halts or errors before reaching a step boundary, nothing arrives —
// pair a receive with the Run returning.
func (cp *Checkpointer) Checkpoints() <-chan *Checkpoint { return cp.ch }

func (cp *Checkpointer) take() bool { return cp.flag.CompareAndSwap(true, false) }

func (cp *Checkpointer) deliver(ck *Checkpoint) {
	select {
	case cp.ch <- ck:
	default:
	}
}

// newCheckpoint assembles a Checkpoint around a freshly captured machine
// image.
func (c *Compiled) newCheckpoint(img gclang.MachineImage, be regions.Backend, eng Engine, opts *RunOptions, collections, fuelLeft int) *Checkpoint {
	ck := &Checkpoint{
		SourceHash:    opts.CheckpointMeta.SourceHash,
		TraceID:       opts.CheckpointMeta.TraceID,
		Collector:     c.Collector,
		Backend:       be,
		Engine:        eng,
		Steps:         img.Steps,
		Collections:   collections,
		FuelRemaining: fuelLeft,
		compiled:      c,
		image:         img,
	}
	if opts.Profiler != nil {
		pi := opts.Profiler.Image()
		ck.profiler = &pi
	}
	return ck
}

func (c *Compiled) captureEnv(m *gclang.EnvMachine, opts *RunOptions, collections, fuelLeft int) (*Checkpoint, error) {
	img, err := m.Image()
	if err != nil {
		return nil, fmt.Errorf("psgc: checkpoint: %w", err)
	}
	return c.newCheckpoint(img, m.Mem.Backend(), EngineEnv, opts, collections, fuelLeft), nil
}

func (c *Compiled) captureSubst(m *gclang.Machine, opts *RunOptions, collections, fuelLeft int) (*Checkpoint, error) {
	img, err := m.Image()
	if err != nil {
		return nil, fmt.Errorf("psgc: checkpoint: %w", err)
	}
	return c.newCheckpoint(img, m.Mem.Backend(), EngineSubst, opts, collections, fuelLeft), nil
}

// restoreProfiler replays the checkpoint's profiler aggregate into the
// profiler attached to a resumed run, so the resumed profile — including
// the reservoir sampler's exact state — continues where the original left
// off.
func restoreProfiler(opts *RunOptions) error {
	ck := opts.ResumeFrom
	if ck == nil || opts.Profiler == nil || ck.profiler == nil {
		return nil
	}
	if err := opts.Profiler.Restore(*ck.profiler); err != nil {
		return fmt.Errorf("psgc: resume profiler: %w", err)
	}
	return nil
}
