package closconv

import (
	"testing"

	"psgc/internal/clos"
	"psgc/internal/cps"
	"psgc/internal/source"
	"psgc/internal/tags"
)

// pipelineRun runs source → CPS → λCLOS and checks all three agree, and
// that the λCLOS program typechecks.
func pipelineRun(t *testing.T, src string) int {
	t.Helper()
	p := source.MustParse(src)
	var ev source.Evaluator
	want, err := ev.RunInt(p)
	if err != nil {
		t.Fatalf("source eval: %v", err)
	}
	cp, err := cps.Convert(p)
	if err != nil {
		t.Fatalf("cps: %v", err)
	}
	lp, err := Convert(cp)
	if err != nil {
		t.Fatalf("closconv: %v", err)
	}
	if err := clos.CheckProgram(lp); err != nil {
		t.Fatalf("λCLOS does not typecheck: %v\nprogram:\n%s", err, lp)
	}
	got, _, err := clos.Run(lp, 10_000_000)
	if err != nil {
		t.Fatalf("λCLOS eval: %v", err)
	}
	if got != want {
		t.Fatalf("λCLOS result %d differs from source result %d", got, want)
	}
	return got
}

func TestPipelinePreservesSemantics(t *testing.T) {
	cases := []string{
		"1 + 2 * 3",
		"let x = 21 in x + x",
		"if0 0 then 1 else 2",
		"fst (1, 2) + snd (3, 4)",
		"(fn (x : int) => x * x) 6",
		"let f = fn (x : int) => x + 1 in f (f 40)",
		"let a = 100 in let add = fn (x : int) => fn (y : int) => x + y in (add a) 23",
		"fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\ndo fact 6",
		"fun even (n : int) : int = if0 n then 1 else odd (n - 1)\nfun odd (n : int) : int = if0 n then 0 else even (n - 1)\ndo even 10 + odd 10 * 100",
		"fun twice (f : int -> int) : int -> int = fn (x : int) => f (f x)\ndo (twice (fn (y : int) => y + 3)) 10",
		"fun apply (f : int -> int) : int = f 5\ndo apply (fn (x : int) => x * 8) + 2",
		"let p = (fn (x : int) => x + 1, fn (x : int) => x * 2) in (fst p) ((snd p) 10)",
		// Three free variables in one closure exercises the env tuple.
		"let a = 1 in let b = 2 in let c = 39 in (fn (x : int) => a + b + c + x) 0",
	}
	for _, src := range cases {
		pipelineRun(t, src)
	}
}

func TestConvertType(t *testing.T) {
	// ⟦(Int)→0⟧ = ∃tenv.(((tenv × Int)→0) × tenv)
	got := ConvertType(tags.Code{Args: []tags.Tag{tags.Int{}}})
	want := tags.Exist{Bound: "tenv", Body: tags.Prod{
		L: tags.Code{Args: []tags.Tag{tags.Prod{L: tags.Var{Name: "tenv"}, R: tags.Int{}}}},
		R: tags.Var{Name: "tenv"},
	}}
	if !tags.Equal(got, want) {
		t.Errorf("ConvertType = %s, want %s", got, want)
	}
}

func TestAllFunctionsAreClosed(t *testing.T) {
	// Every λCLOS function body must reference only its parameter, its
	// locals, and letrec names: re-checking the program (whose checker
	// types bodies closed) enforces it, but we also walk for stray vars.
	src := "let a = 1 in let b = 2 in (fn (x : int) => a + b + x) 39"
	p := source.MustParse(src)
	lp := MustConvert(cps.MustConvert(p))
	if err := clos.CheckProgram(lp); err != nil {
		t.Fatalf("not closed: %v", err)
	}
	if len(lp.Funs) == 0 {
		t.Fatalf("expected lifted code blocks")
	}
}
