// Package closconv implements typed closure conversion from the CPS form
// into λCLOS (§3, citing Minamide/Morrisett/Harper): every function value
// becomes an existential package ⟨t = τenv, (code, env) : ((t × τarg)→0 × t)⟩
// hiding its environment type, and every call opens the package and jumps
// through the code pointer. This is precisely the closure representation
// the paper's collector must be able to trace via intensional type
// analysis — the representation Wang and Appel's earlier monomorphization
// approach could not support without whole-program analysis (§2.1).
package closconv

import (
	"fmt"
	"sort"

	"psgc/internal/clos"
	"psgc/internal/cps"
	"psgc/internal/names"
	"psgc/internal/tags"
)

// envBinder is the canonical existential binder for closure environments.
const envBinder = names.Name("tenv")

// ConvertType maps a CPS type to its λCLOS closure-converted form:
// every code type (σ)→0 becomes ∃t.(((t × ⟦σ⟧)→0) × t).
func ConvertType(t tags.Tag) tags.Tag {
	switch t := t.(type) {
	case tags.Int:
		return t
	case tags.Var:
		return t
	case tags.Prod:
		return tags.Prod{L: ConvertType(t.L), R: ConvertType(t.R)}
	case tags.Code:
		if len(t.Args) != 1 {
			panic("closconv: CPS code types are unary")
		}
		arg := ConvertType(t.Args[0])
		return tags.Exist{Bound: envBinder, Body: closurePairBody(arg)}
	default:
		panic(fmt.Sprintf("closconv: unexpected CPS type %T", t))
	}
}

// closurePairBody is ((tenv × arg)→0 × tenv), the body under the
// existential binder.
func closurePairBody(arg tags.Tag) tags.Tag {
	tv := tags.Var{Name: envBinder}
	return tags.Prod{
		L: tags.Code{Args: []tags.Tag{tags.Prod{L: tv, R: arg}}},
		R: tv,
	}
}

// Convert closure-converts a CPS program into λCLOS.
func Convert(p cps.Program) (clos.Program, error) {
	c := &converter{
		funParamTypes: map[names.Name]tags.Tag{},
	}
	for _, f := range p.Funs {
		c.funParamTypes[f.Name] = f.ParamType
	}
	// Top-level functions adopt the uniform closure calling convention:
	// f(q : int × ⟦σ⟧) = let x = π2 q in body. Their closures use the
	// trivial environment 0 : int.
	for _, f := range p.Funs {
		q := c.supply.Fresh("q")
		env := map[names.Name]tags.Tag{f.Param: f.ParamType}
		body, err := c.term(env, f.Body)
		if err != nil {
			return clos.Program{}, fmt.Errorf("closconv: in %s: %w", f.Name, err)
		}
		c.out = append(c.out, clos.FunDef{
			Name:      f.Name,
			Param:     q,
			ParamType: tags.Prod{L: tags.Int{}, R: ConvertType(f.ParamType)},
			Body:      clos.LetProj{X: f.Param, I: 2, V: clos.Var{Name: q}, Body: body},
		})
	}
	main, err := c.term(map[names.Name]tags.Tag{}, p.Main)
	if err != nil {
		return clos.Program{}, fmt.Errorf("closconv: in main: %w", err)
	}
	return clos.Program{Funs: c.out, Main: main}, nil
}

// MustConvert is Convert for programs known to be well-formed.
func MustConvert(p cps.Program) clos.Program {
	out, err := Convert(p)
	if err != nil {
		panic(err)
	}
	return out
}

type converter struct {
	supply        names.Supply
	funParamTypes map[names.Name]tags.Tag
	out           []clos.FunDef
}

// value converts a CPS value, returning the λCLOS value and the value's
// CPS type (pre-conversion).
func (c *converter) value(env map[names.Name]tags.Tag, v cps.Value) (clos.Value, tags.Tag, error) {
	switch v := v.(type) {
	case cps.Num:
		return clos.Num{N: v.N}, tags.Int{}, nil
	case cps.Var:
		t, ok := env[v.Name]
		if !ok {
			return nil, nil, fmt.Errorf("unbound variable %s", v.Name)
		}
		return clos.Var{Name: v.Name}, t, nil
	case cps.Pair:
		l, lt, err := c.value(env, v.L)
		if err != nil {
			return nil, nil, err
		}
		r, rt, err := c.value(env, v.R)
		if err != nil {
			return nil, nil, err
		}
		return clos.PairV{L: l, R: r}, tags.Prod{L: lt, R: rt}, nil
	case cps.FunRef:
		pt, ok := c.funParamTypes[v.Name]
		if !ok {
			return nil, nil, fmt.Errorf("unknown function %s", v.Name)
		}
		arg := ConvertType(pt)
		pk := clos.Pack{
			Bound:   envBinder,
			Witness: tags.Int{},
			Val:     clos.PairV{L: clos.FunV{Name: v.Name}, R: clos.Num{N: 0}},
			Body:    closurePairBody(arg),
		}
		return pk, tags.Code{Args: []tags.Tag{pt}}, nil
	case cps.Lam:
		return c.lambda(env, v)
	default:
		panic(fmt.Sprintf("closconv: unknown value %T", v))
	}
}

// lambda lifts an anonymous CPS abstraction to a fresh top-level code
// block and returns its closure package.
func (c *converter) lambda(env map[names.Name]tags.Tag, v cps.Lam) (clos.Value, tags.Tag, error) {
	fv := freeVars(v)
	// Deterministic environment layout: sorted free-variable names.
	var fvNames []names.Name
	for n := range fv {
		if _, bound := env[n]; !bound {
			return nil, nil, fmt.Errorf("free variable %s of λ not in scope", n)
		}
		fvNames = append(fvNames, n)
	}
	sort.Slice(fvNames, func(i, j int) bool { return fvNames[i] < fvNames[j] })

	// Environment tuple: 0 cells → 0:int; 1 → the value; n → right-nested
	// pairs.
	var envVal clos.Value
	var envTy tags.Tag // already closure-converted
	switch len(fvNames) {
	case 0:
		envVal, envTy = clos.Num{N: 0}, tags.Int{}
	case 1:
		envVal = clos.Var{Name: fvNames[0]}
		envTy = ConvertType(env[fvNames[0]])
	default:
		last := len(fvNames) - 1
		envVal = clos.Var{Name: fvNames[last]}
		envTy = ConvertType(env[fvNames[last]])
		for i := last - 1; i >= 0; i-- {
			envVal = clos.PairV{L: clos.Var{Name: fvNames[i]}, R: envVal}
			envTy = tags.Prod{L: ConvertType(env[fvNames[i]]), R: envTy}
		}
	}

	// Code block: code(q : envTy × ⟦param⟧) = unpack env; bind param; body.
	q := c.supply.Fresh("q")
	envv := c.supply.Fresh("env")
	innerEnv := map[names.Name]tags.Tag{v.Param: v.ParamType}
	for _, n := range fvNames {
		innerEnv[n] = env[n]
	}
	body, err := c.term(innerEnv, v.Body)
	if err != nil {
		return nil, nil, err
	}
	// Unpack the right-nested environment tuple into its variables.
	switch len(fvNames) {
	case 0:
		// nothing to bind
	case 1:
		body = clos.LetVal{X: fvNames[0], V: clos.Var{Name: envv}, Body: body}
	default:
		type binding struct {
			x    names.Name
			i    int
			from names.Name
		}
		var bs []binding
		cursor := envv
		for i := 0; i < len(fvNames)-1; i++ {
			bs = append(bs, binding{fvNames[i], 1, cursor})
			if i == len(fvNames)-2 {
				bs = append(bs, binding{fvNames[i+1], 2, cursor})
			} else {
				rest := c.supply.Fresh("rest")
				bs = append(bs, binding{rest, 2, cursor})
				cursor = rest
			}
		}
		for j := len(bs) - 1; j >= 0; j-- {
			body = clos.LetProj{X: bs[j].x, I: bs[j].i, V: clos.Var{Name: bs[j].from}, Body: body}
		}
	}
	name := c.supply.Fresh("clo")
	c.out = append(c.out, clos.FunDef{
		Name:      name,
		Param:     q,
		ParamType: tags.Prod{L: envTy, R: ConvertType(v.ParamType)},
		Body: clos.LetProj{X: envv, I: 1, V: clos.Var{Name: q},
			Body: clos.LetProj{X: v.Param, I: 2, V: clos.Var{Name: q}, Body: body}},
	})

	arg := ConvertType(v.ParamType)
	pk := clos.Pack{
		Bound:   envBinder,
		Witness: envTy,
		Val:     clos.PairV{L: clos.FunV{Name: name}, R: envVal},
		Body:    closurePairBody(arg),
	}
	return pk, tags.Code{Args: []tags.Tag{v.ParamType}}, nil
}

// term converts a CPS term.
func (c *converter) term(env map[names.Name]tags.Tag, e cps.Term) (clos.Term, error) {
	switch e := e.(type) {
	case cps.LetVal:
		v, t, err := c.value(env, e.V)
		if err != nil {
			return nil, err
		}
		body, err := c.term(extend(env, e.X, t), e.Body)
		if err != nil {
			return nil, err
		}
		return clos.LetVal{X: e.X, V: v, Body: body}, nil
	case cps.LetProj:
		v, t, err := c.value(env, e.V)
		if err != nil {
			return nil, err
		}
		p, ok := t.(tags.Prod)
		if !ok {
			return nil, fmt.Errorf("projection from non-pair type %s", t)
		}
		picked := p.L
		if e.I == 2 {
			picked = p.R
		}
		body, err := c.term(extend(env, e.X, picked), e.Body)
		if err != nil {
			return nil, err
		}
		return clos.LetProj{X: e.X, I: e.I, V: v, Body: body}, nil
	case cps.LetArith:
		l, _, err := c.value(env, e.L)
		if err != nil {
			return nil, err
		}
		r, _, err := c.value(env, e.R)
		if err != nil {
			return nil, err
		}
		body, err := c.term(extend(env, e.X, tags.Int{}), e.Body)
		if err != nil {
			return nil, err
		}
		return clos.LetArith{X: e.X, Op: e.Op, L: l, R: r, Body: body}, nil
	case cps.If0:
		v, _, err := c.value(env, e.V)
		if err != nil {
			return nil, err
		}
		thn, err := c.term(env, e.Then)
		if err != nil {
			return nil, err
		}
		els, err := c.term(env, e.Else)
		if err != nil {
			return nil, err
		}
		return clos.If0{V: v, Then: thn, Else: els}, nil
	case cps.Halt:
		v, _, err := c.value(env, e.V)
		if err != nil {
			return nil, err
		}
		return clos.Halt{V: v}, nil
	case cps.App:
		fn, _, err := c.value(env, e.Fn)
		if err != nil {
			return nil, err
		}
		arg, _, err := c.value(env, e.Arg)
		if err != nil {
			return nil, err
		}
		// open fn as ⟨t, w⟩ in let cptr = π1 w in let cenv = π2 w in
		// let pa = (cenv, arg) in cptr(pa)
		tvar := c.supply.Fresh("t")
		w := c.supply.Fresh("w")
		cptr := c.supply.Fresh("cptr")
		cenv := c.supply.Fresh("cenv")
		pa := c.supply.Fresh("pa")
		return clos.Open{V: fn, T: tvar, X: w,
			Body: clos.LetProj{X: cptr, I: 1, V: clos.Var{Name: w},
				Body: clos.LetProj{X: cenv, I: 2, V: clos.Var{Name: w},
					Body: clos.LetVal{X: pa, V: clos.PairV{L: clos.Var{Name: cenv}, R: arg},
						Body: clos.App{Fn: clos.Var{Name: cptr}, Arg: clos.Var{Name: pa}}}}}}, nil
	default:
		panic(fmt.Sprintf("closconv: unknown term %T", e))
	}
}

func extend(env map[names.Name]tags.Tag, x names.Name, t tags.Tag) map[names.Name]tags.Tag {
	out := make(map[names.Name]tags.Tag, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	out[x] = t
	return out
}

// freeVars computes the free term variables of a CPS value (FunRefs are
// not variables).
func freeVars(v cps.Value) names.Set {
	out := make(names.Set)
	valueFree(v, make(names.Set), out)
	return out
}

func valueFree(v cps.Value, bound, out names.Set) {
	switch v := v.(type) {
	case cps.Num, cps.FunRef:
	case cps.Var:
		if !bound.Has(v.Name) {
			out.Add(v.Name)
		}
	case cps.Pair:
		valueFree(v.L, bound, out)
		valueFree(v.R, bound, out)
	case cps.Lam:
		had := bound.Has(v.Param)
		bound.Add(v.Param)
		termFree(v.Body, bound, out)
		if !had {
			bound.Remove(v.Param)
		}
	default:
		panic(fmt.Sprintf("closconv: unknown value %T", v))
	}
}

func termFree(e cps.Term, bound, out names.Set) {
	under := func(n names.Name, f func()) {
		had := bound.Has(n)
		bound.Add(n)
		f()
		if !had {
			bound.Remove(n)
		}
	}
	switch e := e.(type) {
	case cps.LetVal:
		valueFree(e.V, bound, out)
		under(e.X, func() { termFree(e.Body, bound, out) })
	case cps.LetProj:
		valueFree(e.V, bound, out)
		under(e.X, func() { termFree(e.Body, bound, out) })
	case cps.LetArith:
		valueFree(e.L, bound, out)
		valueFree(e.R, bound, out)
		under(e.X, func() { termFree(e.Body, bound, out) })
	case cps.If0:
		valueFree(e.V, bound, out)
		termFree(e.Then, bound, out)
		termFree(e.Else, bound, out)
	case cps.App:
		valueFree(e.Fn, bound, out)
		valueFree(e.Arg, bound, out)
	case cps.Halt:
		valueFree(e.V, bound, out)
	default:
		panic(fmt.Sprintf("closconv: unknown term %T", e))
	}
}
