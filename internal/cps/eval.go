package cps

import (
	"errors"
	"fmt"

	"psgc/internal/names"
	"psgc/internal/source"
)

// The CPS evaluator is an environment machine used for differential
// testing of the pipeline: source result = CPS result = λCLOS result =
// λGC result under every collector.

type rtValue interface{ isRT() }

type rtNum struct{ n int }

type rtPair struct{ l, r rtValue }

type rtClos struct {
	env   *rtEnv
	param names.Name
	body  Term
}

type rtFun struct{ name names.Name }

func (rtNum) isRT()  {}
func (rtPair) isRT() {}
func (rtClos) isRT() {}
func (rtFun) isRT()  {}

type rtEnv struct {
	name names.Name
	val  rtValue
	next *rtEnv
}

func (e *rtEnv) lookup(n names.Name) (rtValue, bool) {
	for ; e != nil; e = e.next {
		if e.name == n {
			return e.val, true
		}
	}
	return nil, false
}

// ErrFuel is returned when evaluation exceeds its step budget.
var ErrFuel = errors.New("cps: evaluation out of fuel")

// Run executes a CPS program to halt, returning the integer result.
func Run(p Program, fuel int) (int, error) {
	funs := map[names.Name]FunDef{}
	for _, f := range p.Funs {
		funs[f.Name] = f
	}
	env := (*rtEnv)(nil)
	term := p.Main
	for {
		if fuel <= 0 {
			return 0, ErrFuel
		}
		fuel--
		switch e := term.(type) {
		case Halt:
			v, err := evalValue(env, e.V)
			if err != nil {
				return 0, err
			}
			n, ok := v.(rtNum)
			if !ok {
				return 0, fmt.Errorf("cps: halt with non-integer")
			}
			return n.n, nil
		case LetVal:
			v, err := evalValue(env, e.V)
			if err != nil {
				return 0, err
			}
			env = &rtEnv{name: e.X, val: v, next: env}
			term = e.Body
		case LetProj:
			v, err := evalValue(env, e.V)
			if err != nil {
				return 0, err
			}
			p, ok := v.(rtPair)
			if !ok {
				return 0, fmt.Errorf("cps: projection from non-pair")
			}
			picked := p.l
			if e.I == 2 {
				picked = p.r
			}
			env = &rtEnv{name: e.X, val: picked, next: env}
			term = e.Body
		case LetArith:
			l, err := evalValue(env, e.L)
			if err != nil {
				return 0, err
			}
			r, err := evalValue(env, e.R)
			if err != nil {
				return 0, err
			}
			ln, lok := l.(rtNum)
			rn, rok := r.(rtNum)
			if !lok || !rok {
				return 0, fmt.Errorf("cps: arithmetic on non-integers")
			}
			var n int
			switch e.Op {
			case source.OpAdd:
				n = ln.n + rn.n
			case source.OpSub:
				n = ln.n - rn.n
			case source.OpMul:
				n = ln.n * rn.n
			}
			env = &rtEnv{name: e.X, val: rtNum{n}, next: env}
			term = e.Body
		case If0:
			v, err := evalValue(env, e.V)
			if err != nil {
				return 0, err
			}
			n, ok := v.(rtNum)
			if !ok {
				return 0, fmt.Errorf("cps: if0 on non-integer")
			}
			if n.n == 0 {
				term = e.Then
			} else {
				term = e.Else
			}
		case App:
			fn, err := evalValue(env, e.Fn)
			if err != nil {
				return 0, err
			}
			arg, err := evalValue(env, e.Arg)
			if err != nil {
				return 0, err
			}
			switch fn := fn.(type) {
			case rtClos:
				env = &rtEnv{name: fn.param, val: arg, next: fn.env}
				term = fn.body
			case rtFun:
				f, ok := funs[fn.name]
				if !ok {
					return 0, fmt.Errorf("cps: unknown function %s", fn.name)
				}
				env = &rtEnv{name: f.Param, val: arg, next: nil}
				term = f.Body
			default:
				return 0, fmt.Errorf("cps: call of non-function")
			}
		default:
			return 0, fmt.Errorf("cps: unknown term %T", term)
		}
	}
}

func evalValue(env *rtEnv, v Value) (rtValue, error) {
	switch v := v.(type) {
	case Num:
		return rtNum{v.N}, nil
	case Var:
		if rv, ok := env.lookup(v.Name); ok {
			return rv, nil
		}
		return nil, fmt.Errorf("cps: unbound variable %s", v.Name)
	case Pair:
		l, err := evalValue(env, v.L)
		if err != nil {
			return nil, err
		}
		r, err := evalValue(env, v.R)
		if err != nil {
			return nil, err
		}
		return rtPair{l, r}, nil
	case FunRef:
		return rtFun{v.Name}, nil
	case Lam:
		return rtClos{env: env, param: v.Param, body: v.Body}, nil
	default:
		return nil, fmt.Errorf("cps: unknown value %T", v)
	}
}
