package cps

import (
	"testing"

	"psgc/internal/source"
	"psgc/internal/tags"
)

// convertAndRun converts a source program and runs both the reference
// evaluator and the CPS machine, asserting they agree.
func convertAndRun(t *testing.T, src string) int {
	t.Helper()
	p := source.MustParse(src)
	var ev source.Evaluator
	want, err := ev.RunInt(p)
	if err != nil {
		t.Fatalf("source eval: %v", err)
	}
	cp, err := Convert(p)
	if err != nil {
		t.Fatalf("cps convert: %v", err)
	}
	got, err := Run(cp, 10_000_000)
	if err != nil {
		t.Fatalf("cps eval: %v", err)
	}
	if got != want {
		t.Fatalf("cps result %d differs from source result %d", got, want)
	}
	return got
}

func TestConvertPreservesSemantics(t *testing.T) {
	cases := []string{
		"1 + 2 * 3",
		"let x = 21 in x + x",
		"if0 0 then 1 else 2",
		"fst (1, 2) + snd (3, 4)",
		"(fn (x : int) => x * x) 6",
		"let f = fn (x : int) => x + 1 in f (f 40)",
		"let a = 100 in let add = fn (x : int) => fn (y : int) => x + y in (add a) 23",
		"fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\ndo fact 6",
		"fun even (n : int) : int = if0 n then 1 else odd (n - 1)\nfun odd (n : int) : int = if0 n then 0 else even (n - 1)\ndo even 10 + odd 10 * 100",
		"fun twice (f : int -> int) : int -> int = fn (x : int) => f (f x)\ndo (twice (fn (y : int) => y + 3)) 10",
		"fun f (x : int) : int = x + 1\ndo let f = fn (x : int) => x * 10 in f 4", // shadowing
		"let p = (fn (x : int) => x + 1, fn (x : int) => x * 2) in (fst p) ((snd p) 10)",
	}
	for _, src := range cases {
		convertAndRun(t, src)
	}
}

func TestConvertType(t *testing.T) {
	// ⟦int→int⟧ = ((Int × (Int)→0))→0
	got := ConvertType(source.FnT{Dom: source.IntT{}, Cod: source.IntT{}})
	want := tags.Code{Args: []tags.Tag{tags.Prod{
		L: tags.Int{},
		R: tags.Code{Args: []tags.Tag{tags.Int{}}},
	}}}
	if !tags.Equal(got, want) {
		t.Errorf("ConvertType = %s, want %s", got, want)
	}
}

func TestConvertRejectsNonIntMain(t *testing.T) {
	p := source.MustParse("(1, 2)")
	if _, err := Convert(p); err == nil {
		t.Errorf("Convert accepted a pair-typed main")
	}
}

func TestConvertRejectsIllTyped(t *testing.T) {
	p := source.MustParse("1 1")
	if _, err := Convert(p); err == nil {
		t.Errorf("Convert accepted an ill-typed program")
	}
}

func TestAllCallsAreTailCalls(t *testing.T) {
	// Structural CPS invariant: App never appears under LetVal rhs etc. —
	// terms are in A-normal form with tail calls only, by construction.
	// We verify no Lam body ends without reaching App/Halt/If0 chains by
	// simply walking the structure.
	p := source.MustParse("fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\ndo fact 5")
	cp := MustConvert(p)
	var checkTerm func(Term)
	var checkValue func(Value)
	checkValue = func(v Value) {
		switch v := v.(type) {
		case Pair:
			checkValue(v.L)
			checkValue(v.R)
		case Lam:
			checkTerm(v.Body)
		}
	}
	checkTerm = func(e Term) {
		switch e := e.(type) {
		case LetVal:
			checkValue(e.V)
			checkTerm(e.Body)
		case LetProj:
			checkValue(e.V)
			checkTerm(e.Body)
		case LetArith:
			checkValue(e.L)
			checkValue(e.R)
			checkTerm(e.Body)
		case If0:
			checkValue(e.V)
			checkTerm(e.Then)
			checkTerm(e.Else)
		case App:
			checkValue(e.Fn)
			checkValue(e.Arg)
		case Halt:
			checkValue(e.V)
		default:
			t.Fatalf("unexpected term %T", e)
		}
	}
	for _, f := range cp.Funs {
		checkTerm(f.Body)
	}
	checkTerm(cp.Main)
}

func TestFuel(t *testing.T) {
	p := source.MustParse("fun loop (n : int) : int = loop n\ndo loop 0")
	cp := MustConvert(p)
	if _, err := Run(cp, 1000); err != ErrFuel {
		t.Errorf("expected ErrFuel, got %v", err)
	}
}
