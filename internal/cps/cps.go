// Package cps implements the continuation-passing-style intermediate form
// between the source language and λCLOS, together with the call-by-value
// CPS transformation (§3, citing Danvy/Filinski).
//
// After CPS conversion every function call is a tail call: source
// functions of type τ1 → τ2 become code expecting a pair of the argument
// and a return continuation, (⟦τ1⟧ × (⟦τ2⟧)→0) → 0. Types are expressed
// directly as tags (package tags), anticipating the λGC tag language.
package cps

import (
	"fmt"
	"strings"

	"psgc/internal/names"
	"psgc/internal/source"
	"psgc/internal/tags"
)

// Value is a CPS value. Lambdas may still be nested and open: closure
// conversion (package closconv) eliminates them.
type Value interface {
	isValue()
	String() string
}

// Var references a variable.
type Var struct {
	Name names.Name
}

// Num is an integer literal.
type Num struct {
	N int
}

// Pair is (v1, v2).
type Pair struct {
	L, R Value
}

// FunRef references a top-level function.
type FunRef struct {
	Name names.Name
}

// Lam is an anonymous (possibly open) unary code abstraction λ(x:τ).e.
type Lam struct {
	Param     names.Name
	ParamType tags.Tag
	Body      Term
}

func (Var) isValue()    {}
func (Num) isValue()    {}
func (Pair) isValue()   {}
func (FunRef) isValue() {}
func (Lam) isValue()    {}

func (v Var) String() string    { return v.Name.String() }
func (v Num) String() string    { return fmt.Sprintf("%d", v.N) }
func (v Pair) String() string   { return fmt.Sprintf("(%s, %s)", v.L, v.R) }
func (v FunRef) String() string { return "&" + v.Name.String() }
func (v Lam) String() string {
	return fmt.Sprintf("λ(%s:%s). %s", v.Param, v.ParamType, v.Body)
}

// Term is a CPS term; control never returns.
type Term interface {
	isTerm()
	String() string
}

// LetVal binds a value.
type LetVal struct {
	X    names.Name
	V    Value
	Body Term
}

// LetProj binds a pair projection (I is 1 or 2).
type LetProj struct {
	X    names.Name
	I    int
	V    Value
	Body Term
}

// LetArith binds an arithmetic result.
type LetArith struct {
	X    names.Name
	Op   source.BinOp
	L, R Value
	Body Term
}

// App is the tail call v1(v2).
type App struct {
	Fn, Arg Value
}

// If0 branches on zero.
type If0 struct {
	V          Value
	Then, Else Term
}

// Halt ends the program with an integer.
type Halt struct {
	V Value
}

func (LetVal) isTerm()   {}
func (LetProj) isTerm()  {}
func (LetArith) isTerm() {}
func (App) isTerm()      {}
func (If0) isTerm()      {}
func (Halt) isTerm()     {}

func (e LetVal) String() string {
	return fmt.Sprintf("let %s = %s in\n%s", e.X, e.V, e.Body)
}

func (e LetProj) String() string {
	return fmt.Sprintf("let %s = π%d %s in\n%s", e.X, e.I, e.V, e.Body)
}

func (e LetArith) String() string {
	return fmt.Sprintf("let %s = %s %s %s in\n%s", e.X, e.L, e.Op, e.R, e.Body)
}

func (e App) String() string  { return fmt.Sprintf("%s(%s)", e.Fn, e.Arg) }
func (e Halt) String() string { return fmt.Sprintf("halt %s", e.V) }

func (e If0) String() string {
	return fmt.Sprintf("if0 %s (%s) (%s)", e.V, e.Then, e.Else)
}

// FunDef is a top-level CPS function. The parameter is the (argument,
// continuation) pair of the source function it came from.
type FunDef struct {
	Name      names.Name
	Param     names.Name
	ParamType tags.Tag
	Body      Term
}

// Program is a CPS program.
type Program struct {
	Funs []FunDef
	Main Term
}

// String renders the program.
func (p Program) String() string {
	var b strings.Builder
	for _, f := range p.Funs {
		fmt.Fprintf(&b, "fun %s(%s : %s) =\n%s\n", f.Name, f.Param, f.ParamType, f.Body)
	}
	b.WriteString(p.Main.String())
	return b.String()
}

// ConvertType translates a source type to its CPS tag:
// ⟦int⟧ = Int, ⟦τ1×τ2⟧ = ⟦τ1⟧×⟦τ2⟧, ⟦τ1→τ2⟧ = ((⟦τ1⟧ × (⟦τ2⟧)→0))→0.
func ConvertType(t source.Type) tags.Tag {
	switch t := t.(type) {
	case source.IntT:
		return tags.Int{}
	case source.ProdT:
		return tags.Prod{L: ConvertType(t.L), R: ConvertType(t.R)}
	case source.FnT:
		arg := ConvertType(t.Dom)
		cont := tags.Code{Args: []tags.Tag{ConvertType(t.Cod)}}
		return tags.Code{Args: []tags.Tag{tags.Prod{L: arg, R: cont}}}
	default:
		panic(fmt.Sprintf("cps: unknown source type %T", t))
	}
}

// Convert CPS-converts a typechecked source program whose main expression
// has type int.
func Convert(p source.Program) (Program, error) {
	mainTy, err := source.CheckProgram(p)
	if err != nil {
		return Program{}, err
	}
	if !source.TypeEqual(mainTy, source.IntT{}) {
		return Program{}, fmt.Errorf("cps: program result type is %s, want int", mainTy)
	}
	c := &converter{topFuns: make(names.Set)}
	for _, f := range p.Funs {
		c.topFuns.Add(f.Name)
	}
	// Rename all local binders apart so that a local can never collide
	// with (and hence shadow) a top-level function name; after renaming,
	// any variable occurrence of a top-level name is a FunRef.
	p = c.renameProgram(p)
	top := make(source.Env, len(p.Funs))
	for _, f := range p.Funs {
		top[f.Name] = f.Type()
	}
	out := Program{}
	for _, f := range p.Funs {
		body, err := c.convertFunBody(top, f)
		if err != nil {
			return Program{}, err
		}
		out.Funs = append(out.Funs, body)
	}
	main, err := c.convert(top, p.Main, func(v Value) (Term, error) {
		return Halt{V: v}, nil
	})
	if err != nil {
		return Program{}, err
	}
	out.Main = main
	return out, nil
}

// MustConvert is Convert for programs known to be well-typed.
func MustConvert(p source.Program) Program {
	out, err := Convert(p)
	if err != nil {
		panic(err)
	}
	return out
}

type converter struct {
	supply  names.Supply
	topFuns names.Set
}

// renameProgram freshens every local binder in the source program.
func (c *converter) renameProgram(p source.Program) source.Program {
	out := source.Program{Funs: make([]source.FunDef, len(p.Funs))}
	for i, f := range p.Funs {
		np := c.fresh(f.Param)
		out.Funs[i] = source.FunDef{
			Name: f.Name, Param: np, ParamType: f.ParamType, Result: f.Result,
			Body: c.renameExpr(f.Body, map[names.Name]names.Name{f.Param: np}),
		}
	}
	out.Main = c.renameExpr(p.Main, map[names.Name]names.Name{})
	return out
}

func (c *converter) renameExpr(e source.Expr, sub map[names.Name]names.Name) source.Expr {
	switch e := e.(type) {
	case source.Var:
		if n, ok := sub[e.Name]; ok {
			return source.Var{Name: n}
		}
		return e
	case source.IntLit:
		return e
	case source.Lam:
		np := c.fresh(e.Param)
		inner := extendRename(sub, e.Param, np)
		return source.Lam{Param: np, ParamType: e.ParamType, Body: c.renameExpr(e.Body, inner)}
	case source.App:
		return source.App{Fn: c.renameExpr(e.Fn, sub), Arg: c.renameExpr(e.Arg, sub)}
	case source.Pair:
		return source.Pair{L: c.renameExpr(e.L, sub), R: c.renameExpr(e.R, sub)}
	case source.Proj:
		return source.Proj{I: e.I, E: c.renameExpr(e.E, sub)}
	case source.Let:
		nx := c.fresh(e.X)
		inner := extendRename(sub, e.X, nx)
		return source.Let{X: nx, Rhs: c.renameExpr(e.Rhs, sub), Body: c.renameExpr(e.Body, inner)}
	case source.If0:
		return source.If0{Cond: c.renameExpr(e.Cond, sub), Then: c.renameExpr(e.Then, sub), Else: c.renameExpr(e.Else, sub)}
	case source.Bin:
		return source.Bin{Op: e.Op, L: c.renameExpr(e.L, sub), R: c.renameExpr(e.R, sub)}
	default:
		panic(fmt.Sprintf("cps: unknown expr %T", e))
	}
}

func extendRename(sub map[names.Name]names.Name, old, new names.Name) map[names.Name]names.Name {
	out := make(map[names.Name]names.Name, len(sub)+1)
	for k, v := range sub {
		out[k] = v
	}
	out[old] = new
	return out
}

// metaK is the compile-time continuation: it receives the value of the
// expression just converted and produces the rest of the term.
type metaK func(Value) (Term, error)

func (c *converter) fresh(base names.Name) names.Name { return c.supply.Fresh(base) }

func (c *converter) convertFunBody(top source.Env, f source.FunDef) (FunDef, error) {
	// f(x:τ1):τ2 = e  ⇒  f(p : ⟦τ1⟧ × (⟦τ2⟧)→0) =
	//   let x = π1 p in let k = π2 p in ⟦e⟧(λr. k(r))
	p := c.fresh("p")
	k := c.fresh("k")
	env := top.Extend(f.Param, f.ParamType)
	body, err := c.convert(env, f.Body, func(v Value) (Term, error) {
		return App{Fn: Var{Name: k}, Arg: v}, nil
	})
	if err != nil {
		return FunDef{}, fmt.Errorf("in function %s: %w", f.Name, err)
	}
	paramTag := tags.Prod{
		L: ConvertType(f.ParamType),
		R: tags.Code{Args: []tags.Tag{ConvertType(f.Result)}},
	}
	return FunDef{
		Name:      f.Name,
		Param:     p,
		ParamType: paramTag,
		Body: LetProj{X: f.Param, I: 1, V: Var{Name: p},
			Body: LetProj{X: k, I: 2, V: Var{Name: p}, Body: body}},
	}, nil
}

func (c *converter) convert(env source.Env, e source.Expr, k metaK) (Term, error) {
	switch e := e.(type) {
	case source.Var:
		if c.topFuns.Has(e.Name) {
			return k(FunRef{Name: e.Name})
		}
		return k(Var{Name: e.Name})
	case source.IntLit:
		return k(Num{N: e.N})
	case source.Lam:
		lam, err := c.convertLam(env, e)
		if err != nil {
			return nil, err
		}
		return k(lam)
	case source.App:
		return c.convert(env, e.Fn, func(fn Value) (Term, error) {
			return c.convert(env, e.Arg, func(arg Value) (Term, error) {
				// Reify the rest of the computation as a continuation.
				resTy, err := source.Infer(env, e)
				if err != nil {
					return nil, err
				}
				r := c.fresh("r")
				rest, err := k(Var{Name: r})
				if err != nil {
					return nil, err
				}
				cont := Lam{Param: r, ParamType: ConvertType(resTy), Body: rest}
				kv := c.fresh("kv")
				pa := c.fresh("pa")
				return LetVal{X: kv, V: cont,
					Body: LetVal{X: pa, V: Pair{L: arg, R: Var{Name: kv}},
						Body: App{Fn: fn, Arg: Var{Name: pa}}}}, nil
			})
		})
	case source.Pair:
		return c.convert(env, e.L, func(l Value) (Term, error) {
			return c.convert(env, e.R, func(r Value) (Term, error) {
				x := c.fresh("pr")
				rest, err := k(Var{Name: x})
				if err != nil {
					return nil, err
				}
				return LetVal{X: x, V: Pair{L: l, R: r}, Body: rest}, nil
			})
		})
	case source.Proj:
		return c.convert(env, e.E, func(v Value) (Term, error) {
			x := c.fresh("pj")
			rest, err := k(Var{Name: x})
			if err != nil {
				return nil, err
			}
			return LetProj{X: x, I: e.I, V: v, Body: rest}, nil
		})
	case source.Let:
		return c.convert(env, e.Rhs, func(v Value) (Term, error) {
			rhsTy, err := source.Infer(env, e.Rhs)
			if err != nil {
				return nil, err
			}
			rest, err := c.convert(env.Extend(e.X, rhsTy), e.Body, k)
			if err != nil {
				return nil, err
			}
			return LetVal{X: e.X, V: v, Body: rest}, nil
		})
	case source.If0:
		return c.convert(env, e.Cond, func(v Value) (Term, error) {
			// Reify the join point so k is not duplicated.
			resTy, err := source.Infer(env, e.Then)
			if err != nil {
				return nil, err
			}
			r := c.fresh("jr")
			rest, err := k(Var{Name: r})
			if err != nil {
				return nil, err
			}
			j := c.fresh("join")
			callJoin := func(rv Value) (Term, error) {
				return App{Fn: Var{Name: j}, Arg: rv}, nil
			}
			thn, err := c.convert(env, e.Then, callJoin)
			if err != nil {
				return nil, err
			}
			els, err := c.convert(env, e.Else, callJoin)
			if err != nil {
				return nil, err
			}
			join := Lam{Param: r, ParamType: ConvertType(resTy), Body: rest}
			return LetVal{X: j, V: join, Body: If0{V: v, Then: thn, Else: els}}, nil
		})
	case source.Bin:
		return c.convert(env, e.L, func(l Value) (Term, error) {
			return c.convert(env, e.R, func(r Value) (Term, error) {
				x := c.fresh("ar")
				rest, err := k(Var{Name: x})
				if err != nil {
					return nil, err
				}
				return LetArith{X: x, Op: e.Op, L: l, R: r, Body: rest}, nil
			})
		})
	default:
		panic(fmt.Sprintf("cps: unknown expr %T", e))
	}
}

func (c *converter) convertLam(env source.Env, e source.Lam) (Value, error) {
	resTy, err := source.Infer(env.Extend(e.Param, e.ParamType), e.Body)
	if err != nil {
		return Lam{}, err
	}
	p := c.fresh("p")
	k := c.fresh("k")
	body, err := c.convert(env.Extend(e.Param, e.ParamType), e.Body, func(v Value) (Term, error) {
		return App{Fn: Var{Name: k}, Arg: v}, nil
	})
	if err != nil {
		return Lam{}, err
	}
	paramTag := tags.Prod{
		L: ConvertType(e.ParamType),
		R: tags.Code{Args: []tags.Tag{ConvertType(resTy)}},
	}
	return Lam{Param: p, ParamType: paramTag,
		Body: LetProj{X: e.Param, I: 1, V: Var{Name: p},
			Body: LetProj{X: k, I: 2, V: Var{Name: p}, Body: body}}}, nil
}
