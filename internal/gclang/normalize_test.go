package gclang

import (
	"testing"

	"psgc/internal/kinds"
	"psgc/internal/names"
	"psgc/internal/tags"
)

var (
	rv  = Region(RVar{Name: "r"})
	rv2 = Region(RVar{Name: "r2"})
)

func mustNF(t *testing.T, d Dialect, ty Type) Type {
	t.Helper()
	nf, err := NormalizeType(d, ty)
	if err != nil {
		t.Fatalf("NormalizeType(%s): %v", ty, err)
	}
	return nf
}

func mustEq(t *testing.T, d Dialect, a, b Type) {
	t.Helper()
	ok, err := TypeEqual(d, a, b)
	if err != nil {
		t.Fatalf("TypeEqual(%s, %s): %v", a, b, err)
	}
	if !ok {
		t.Fatalf("TypeEqual(%s, %s) = false, want true", a, b)
	}
}

func mustNeq(t *testing.T, d Dialect, a, b Type) {
	t.Helper()
	ok, err := TypeEqual(d, a, b)
	if err != nil {
		t.Fatalf("TypeEqual(%s, %s): %v", a, b, err)
	}
	if ok {
		t.Fatalf("TypeEqual(%s, %s) = true, want false", a, b)
	}
}

func TestMReductionBase(t *testing.T) {
	// M_r(Int) = int
	mustEq(t, Base, MT{Rs: []Region{rv}, Tag: tags.Int{}}, IntT{})

	// M_r(Int × Int) = (int × int) at r
	got := mustNF(t, Base, MT{Rs: []Region{rv}, Tag: tags.Prod{L: tags.Int{}, R: tags.Int{}}})
	want := AtT{Body: ProdT{L: IntT{}, R: IntT{}}, R: rv}
	mustEq(t, Base, got, want)

	// M_r(∃t.t) = (∃t:Ω.M_r(t)) at r — inner M is stuck.
	got = mustNF(t, Base, MT{Rs: []Region{rv}, Tag: tags.Exist{Bound: "t", Body: tags.Var{Name: "t"}}})
	want = AtT{Body: ExistT{Bound: "t", Kind: kinds.Omega{}, Body: MT{Rs: []Region{rv}, Tag: tags.Var{Name: "t"}}}, R: rv}
	mustEq(t, Base, got, want)

	// M_r((Int)→0) = ∀[][r'](M_r'(Int))→0 at cd — independent of r.
	got = mustNF(t, Base, MT{Rs: []Region{rv}, Tag: tags.Code{Args: []tags.Tag{tags.Int{}}}})
	at, ok := got.(AtT)
	if !ok || !RegionEqual(at.R, CDRegion) {
		t.Fatalf("M(code) = %s, want code at cd", got)
	}
	code, ok := at.Body.(CodeT)
	if !ok || len(code.RParams) != 1 || len(code.Params) != 1 {
		t.Fatalf("M(code) body = %s", at.Body)
	}
	mustEq(t, Base, code.Params[0], IntT{})
	// And the r index really doesn't matter.
	other := mustNF(t, Base, MT{Rs: []Region{rv2}, Tag: tags.Code{Args: []tags.Tag{tags.Int{}}}})
	mustEq(t, Base, got, other)
}

func TestMReductionStuckOnVariable(t *testing.T) {
	stuckM := MT{Rs: []Region{rv}, Tag: tags.Var{Name: "t"}}
	nf := mustNF(t, Base, stuckM)
	if _, ok := nf.(MT); !ok {
		t.Fatalf("M_r(t) should be stuck, got %s", nf)
	}
	// But the embedded tag still β-normalizes: M_r((λu.u) t) = M_r(t).
	app := MT{Rs: []Region{rv}, Tag: tags.App{
		Fn:  tags.Lam{Param: "u", Body: tags.Var{Name: "u"}},
		Arg: tags.Var{Name: "t"},
	}}
	mustEq(t, Base, app, stuckM)
}

func TestMReductionForw(t *testing.T) {
	// Forw adds the tag bit: M_r(Int×Int) = (left(int × int)) at r.
	got := mustNF(t, Forw, MT{Rs: []Region{rv}, Tag: tags.Prod{L: tags.Int{}, R: tags.Int{}}})
	want := AtT{Body: LeftT{Body: ProdT{L: IntT{}, R: IntT{}}}, R: rv}
	mustEq(t, Forw, got, want)
}

func TestCReduction(t *testing.T) {
	// C_r,r2(Int×Int) = (left(C×C) + right(M_r2)) at r.
	got := mustNF(t, Forw, CT{From: rv, To: rv2, Tag: tags.Prod{L: tags.Int{}, R: tags.Int{}}})
	at, ok := got.(AtT)
	if !ok || !RegionEqual(at.R, rv) {
		t.Fatalf("C(pair) = %s", got)
	}
	sum, ok := at.Body.(SumT)
	if !ok {
		t.Fatalf("C(pair) body = %s, want sum", at.Body)
	}
	right, ok := sum.R.(RightT)
	if !ok {
		t.Fatalf("sum right = %s", sum.R)
	}
	// The right branch is the forwarded pointer: M_r2(Int×Int) — a
	// reference into the to-space.
	wantFwd := MT{Rs: []Region{rv2}, Tag: tags.Prod{L: tags.Int{}, R: tags.Int{}}}
	mustEq(t, Forw, right.Body, wantFwd)

	// C(Int) and C(code) coincide with M.
	mustEq(t, Forw, CT{From: rv, To: rv2, Tag: tags.Int{}}, IntT{})
	codeTag := tags.Code{Args: []tags.Tag{tags.Int{}}}
	mustEq(t, Forw,
		CT{From: rv, To: rv2, Tag: codeTag},
		MT{Rs: []Region{rv}, Tag: codeTag})
}

func TestMReductionGen(t *testing.T) {
	ry, ro := Region(RVar{Name: "ry"}), Region(RVar{Name: "ro"})
	// M_ry,ro(Int×Int) = ∃r∈{ry,ro}.((M_r,ro × M_r,ro) at r)
	got := mustNF(t, Gen, MT{Rs: []Region{ry, ro}, Tag: tags.Prod{L: tags.Int{}, R: tags.Int{}}})
	ex, ok := got.(ExistRT)
	if !ok || len(ex.Delta) != 2 {
		t.Fatalf("gen M(pair) = %s", got)
	}
	// With ρy = ρo the bound collapses to one region.
	got2 := mustNF(t, Gen, MT{Rs: []Region{ro, ro}, Tag: tags.Prod{L: tags.Int{}, R: tags.Int{}}})
	ex2, ok := got2.(ExistRT)
	if !ok || len(ex2.Delta) != 1 {
		t.Fatalf("gen M(pair) with equal indices = %s", got2)
	}
}

func TestGenSubtyping(t *testing.T) {
	ry, ro := Region(RVar{Name: "ry"}), Region(RVar{Name: "ro"})
	tv := tags.Var{Name: "t"}
	old := MT{Rs: []Region{ro, ro}, Tag: tv}
	young := MT{Rs: []Region{ry, ro}, Tag: tv}

	ok, err := Assignable(Gen, nil, old, young)
	if err != nil || !ok {
		t.Fatalf("M_ro,ro(t) ≤ M_ry,ro(t) = %v, %v; want true", ok, err)
	}
	// Not the other way.
	ok, err = Assignable(Gen, nil, young, old)
	if err != nil || ok {
		t.Fatalf("M_ry,ro(t) ≤ M_ro,ro(t) = %v, %v; want false", ok, err)
	}
	// And the reduced (determinate-tag) forms are also in the relation.
	pt := tags.Prod{L: tags.Int{}, R: tags.Int{}}
	ok, err = Assignable(Gen, nil, MT{Rs: []Region{ro, ro}, Tag: pt}, MT{Rs: []Region{ry, ro}, Tag: pt})
	if err != nil || !ok {
		t.Fatalf("reduced gen subtyping failed: %v, %v", ok, err)
	}
}

func TestForwSubtyping(t *testing.T) {
	l := LeftT{Body: IntT{}}
	r := RightT{Body: ProdT{L: IntT{}, R: IntT{}}}
	sum := SumT{L: l, R: r}
	if ok, _ := Assignable(Forw, nil, l, sum); !ok {
		t.Errorf("left ≤ sum failed")
	}
	if ok, _ := Assignable(Forw, nil, r, sum); !ok {
		t.Errorf("right ≤ sum failed")
	}
	if ok, _ := Assignable(Forw, nil, IntT{}, sum); ok {
		t.Errorf("int ≤ sum should fail")
	}
	if ok, _ := Assignable(Base, nil, l, sum); ok {
		t.Errorf("sum subtyping must be Forw-only")
	}
}

func TestAlphaEquivalenceOfTypes(t *testing.T) {
	a := ExistT{Bound: "t", Kind: kinds.Omega{}, Body: MT{Rs: []Region{rv}, Tag: tags.Var{Name: "t"}}}
	b := ExistT{Bound: "u", Kind: kinds.Omega{}, Body: MT{Rs: []Region{rv}, Tag: tags.Var{Name: "u"}}}
	mustEq(t, Base, a, b)

	c := CodeT{RParams: []names.Name{"a"}, Params: []Type{AtT{Body: IntT{}, R: RVar{Name: "a"}}}}
	d := CodeT{RParams: []names.Name{"b"}, Params: []Type{AtT{Body: IntT{}, R: RVar{Name: "b"}}}}
	mustEq(t, Base, c, d)
	mustNeq(t, Base, c, CodeT{RParams: []names.Name{"a"}, Params: []Type{IntT{}}})
}

func TestTypeSubstitutionCaptureAvoidance(t *testing.T) {
	// (∃t:Ω. M_r(t × s))[t/s] must not capture: binder renamed.
	ty := ExistT{Bound: "t", Kind: kinds.Omega{}, Body: MT{Rs: []Region{rv}, Tag: tags.Prod{L: tags.Var{Name: "t"}, R: tags.Var{Name: "s"}}}}
	got := Subst1Tag("s", tags.Var{Name: "t"}).Type(ty)
	want := ExistT{Bound: "u", Kind: kinds.Omega{}, Body: MT{Rs: []Region{rv}, Tag: tags.Prod{L: tags.Var{Name: "u"}, R: tags.Var{Name: "t"}}}}
	mustEq(t, Base, got, want)
}

func TestRegionSubstitutionInType(t *testing.T) {
	ty := MT{Rs: []Region{rv}, Tag: tags.Var{Name: "t"}}
	nu := Region(RName{Name: 1})
	got := Subst1Reg("r", nu).Type(ty)
	mustEq(t, Base, got, MT{Rs: []Region{nu}, Tag: tags.Var{Name: "t"}})
}
