package gclang

import (
	"fmt"

	"psgc/internal/names"
	"psgc/internal/tags"
)

// scopes tracks the bound names of each namespace during a free-variable
// traversal.
type scopes struct {
	vals, tagvs, regs, types names.Set
}

func newScopes() *scopes {
	return &scopes{
		vals:  make(names.Set),
		tagvs: make(names.Set),
		regs:  make(names.Set),
		types: make(names.Set),
	}
}

func (sc *scopes) with(set names.Set, ns []names.Name, f func()) {
	added := make([]names.Name, 0, len(ns))
	for _, n := range ns {
		if !set.Has(n) {
			set.Add(n)
			added = append(added, n)
		}
	}
	f()
	for _, n := range added {
		set.Remove(n)
	}
}

// freeAcc accumulates the free names of λGC syntax into a freeSets.
type freeAcc struct {
	out *freeSets
}

// FreeNames returns the free names of a term in all four namespaces:
// term variables, tag variables, region variables, and type variables.
func FreeNames(e Term) (vals, tagvs, regs, types names.Set) {
	fs := &freeSets{
		vals:  make(names.Set),
		tagvs: make(names.Set),
		regs:  make(names.Set),
		types: make(names.Set),
	}
	acc := &freeAcc{out: fs}
	acc.term(e, newScopes())
	return fs.vals, fs.tagvs, fs.regs, fs.types
}

// FreeValueNames returns the free names of a value in all four namespaces.
func FreeValueNames(v Value) (vals, tagvs, regs, types names.Set) {
	fs := &freeSets{
		vals:  make(names.Set),
		tagvs: make(names.Set),
		regs:  make(names.Set),
		types: make(names.Set),
	}
	acc := &freeAcc{out: fs}
	acc.value(v, newScopes())
	return fs.vals, fs.tagvs, fs.regs, fs.types
}

func (a *freeAcc) tag(t tags.Tag, sc *scopes) {
	for n := range tags.FreeVars(t) {
		if !sc.tagvs.Has(n) {
			a.out.tagvs.Add(n)
		}
	}
}

func (a *freeAcc) tagList(ts []tags.Tag, sc *scopes) {
	for _, t := range ts {
		a.tag(t, sc)
	}
}

func (a *freeAcc) region(r Region, sc *scopes) {
	if rv, ok := r.(RVar); ok {
		if !sc.regs.Has(rv.Name) {
			a.out.regs.Add(rv.Name)
		}
	}
}

func (a *freeAcc) regionList(rs []Region, sc *scopes) {
	for _, r := range rs {
		a.region(r, sc)
	}
}

func (a *freeAcc) typ(t Type, sc *scopes) {
	switch t := t.(type) {
	case IntT:
	case ProdT:
		a.typ(t.L, sc)
		a.typ(t.R, sc)
	case CodeT:
		sc.with(sc.tagvs, tparamNames(t.TParams), func() {
			sc.with(sc.regs, t.RParams, func() {
				for _, p := range t.Params {
					a.typ(p, sc)
				}
			})
		})
	case ExistT:
		sc.with(sc.tagvs, []names.Name{t.Bound}, func() { a.typ(t.Body, sc) })
	case AtT:
		a.typ(t.Body, sc)
		a.region(t.R, sc)
	case MT:
		a.regionList(t.Rs, sc)
		a.tag(t.Tag, sc)
	case CT:
		a.region(t.From, sc)
		a.region(t.To, sc)
		a.tag(t.Tag, sc)
	case AlphaT:
		if !sc.types.Has(t.Name) {
			a.out.types.Add(t.Name)
		}
	case ExistAlphaT:
		a.regionList(t.Delta, sc)
		sc.with(sc.types, []names.Name{t.Bound}, func() { a.typ(t.Body, sc) })
	case TransT:
		a.tagList(t.Tags, sc)
		a.region(t.R, sc)
		a.regionList(t.Rs, sc)
		for _, p := range t.Params {
			a.typ(p, sc)
		}
	case LeftT:
		a.typ(t.Body, sc)
	case RightT:
		a.typ(t.Body, sc)
	case SumT:
		a.typ(t.L, sc)
		a.typ(t.R, sc)
	case ExistRT:
		a.regionList(t.Delta, sc)
		sc.with(sc.regs, []names.Name{t.Bound}, func() { a.typ(t.Body, sc) })
	default:
		panic(fmt.Sprintf("gclang: unknown type %T", t))
	}
}

func (a *freeAcc) value(v Value, sc *scopes) {
	switch v := v.(type) {
	case Num, AddrV:
	case Var:
		if !sc.vals.Has(v.Name) {
			a.out.vals.Add(v.Name)
		}
	case PairV:
		a.value(v.L, sc)
		a.value(v.R, sc)
	case PackTag:
		a.tag(v.Tag, sc)
		a.value(v.Val, sc)
		sc.with(sc.tagvs, []names.Name{v.Bound}, func() { a.typ(v.Body, sc) })
	case PackAlpha:
		a.regionList(v.Delta, sc)
		a.typ(v.Hidden, sc)
		a.value(v.Val, sc)
		sc.with(sc.types, []names.Name{v.Bound}, func() { a.typ(v.Body, sc) })
	case PackRegion:
		a.regionList(v.Delta, sc)
		a.region(v.R, sc)
		a.value(v.Val, sc)
		sc.with(sc.regs, []names.Name{v.Bound}, func() { a.typ(v.Body, sc) })
	case TAppV:
		a.value(v.Val, sc)
		a.tagList(v.Tags, sc)
		a.regionList(v.Rs, sc)
	case LamV:
		sc.with(sc.tagvs, tparamNames(v.TParams), func() {
			sc.with(sc.regs, v.RParams, func() {
				pnames := make([]names.Name, len(v.Params))
				for i, p := range v.Params {
					pnames[i] = p.Name
					a.typ(p.Ty, sc)
				}
				sc.with(sc.vals, pnames, func() { a.term(v.Body, sc) })
			})
		})
	case InlV:
		a.value(v.Val, sc)
	case InrV:
		a.value(v.Val, sc)
	default:
		panic(fmt.Sprintf("gclang: unknown value %T", v))
	}
}

func (a *freeAcc) op(o Op, sc *scopes) {
	switch o := o.(type) {
	case ValOp:
		a.value(o.V, sc)
	case ProjOp:
		a.value(o.V, sc)
	case PutOp:
		a.region(o.R, sc)
		a.value(o.V, sc)
		if o.Anno != nil {
			a.typ(o.Anno, sc)
		}
	case GetOp:
		a.value(o.V, sc)
	case StripOp:
		a.value(o.V, sc)
	case ArithOp:
		a.value(o.L, sc)
		a.value(o.R, sc)
	default:
		panic(fmt.Sprintf("gclang: unknown op %T", o))
	}
}

func (a *freeAcc) term(e Term, sc *scopes) {
	switch e := e.(type) {
	case AppT:
		a.value(e.Fn, sc)
		a.tagList(e.Tags, sc)
		a.regionList(e.Rs, sc)
		for _, v := range e.Args {
			a.value(v, sc)
		}
	case LetT:
		a.op(e.Op, sc)
		sc.with(sc.vals, []names.Name{e.X}, func() { a.term(e.Body, sc) })
	case HaltT:
		a.value(e.V, sc)
	case IfGCT:
		a.region(e.R, sc)
		a.term(e.Full, sc)
		a.term(e.Else, sc)
	case OpenTagT:
		a.value(e.V, sc)
		sc.with(sc.tagvs, []names.Name{e.T}, func() {
			sc.with(sc.vals, []names.Name{e.X}, func() { a.term(e.Body, sc) })
		})
	case OpenAlphaT:
		a.value(e.V, sc)
		sc.with(sc.types, []names.Name{e.A}, func() {
			sc.with(sc.vals, []names.Name{e.X}, func() { a.term(e.Body, sc) })
		})
	case LetRegionT:
		sc.with(sc.regs, []names.Name{e.R}, func() { a.term(e.Body, sc) })
	case OnlyT:
		a.regionList(e.Delta, sc)
		a.term(e.Body, sc)
	case TypecaseT:
		a.tag(e.Tag, sc)
		a.term(e.IntArm, sc)
		sc.with(sc.tagvs, []names.Name{e.TL}, func() { a.term(e.LamArm, sc) })
		sc.with(sc.tagvs, []names.Name{e.T1, e.T2}, func() { a.term(e.ProdArm, sc) })
		sc.with(sc.tagvs, []names.Name{e.Te}, func() { a.term(e.ExistArm, sc) })
	case IfLeftT:
		a.value(e.V, sc)
		sc.with(sc.vals, []names.Name{e.X}, func() {
			a.term(e.L, sc)
			a.term(e.R, sc)
		})
	case SetT:
		a.value(e.Dst, sc)
		a.value(e.Src, sc)
		a.term(e.Body, sc)
	case WidenT:
		a.value(e.V, sc)
		a.region(e.To, sc)
		if e.From != nil {
			a.region(e.From, sc)
		}
		a.tag(e.Tag, sc)
		sc.with(sc.vals, []names.Name{e.X}, func() { a.term(e.Body, sc) })
	case OpenRegionT:
		a.value(e.V, sc)
		sc.with(sc.regs, []names.Name{e.R}, func() {
			sc.with(sc.vals, []names.Name{e.X}, func() { a.term(e.Body, sc) })
		})
	case IfRegT:
		a.region(e.R1, sc)
		a.region(e.R2, sc)
		a.term(e.Then, sc)
		a.term(e.Else, sc)
	case If0T:
		a.value(e.V, sc)
		a.term(e.Then, sc)
		a.term(e.Else, sc)
	default:
		panic(fmt.Sprintf("gclang: unknown term %T", e))
	}
}
