package gclang_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"psgc"
	"psgc/internal/gclang"
	"psgc/internal/gen"
	"psgc/internal/source"
	"psgc/internal/workload"
)

// coStep drives both machines in lockstep, comparing the pending call,
// step count, memory counters, and emitted step event at every step, and
// the final result plus the entire memory contents at halt. StepEvents are
// fixed-size comparable structs, so the comparison is exact: both engines
// must classify every transition identically (same kind, same address,
// same word count, same step number — or no event at all).
func coStep(t *testing.T, sm *gclang.Machine, em *gclang.EnvMachine, fuel int) {
	t.Helper()
	var sEv, eEv gclang.StepEvent
	sPrev, ePrev := sm.Event, em.Event
	sm.Event = func(ev gclang.StepEvent) {
		sEv = ev
		if sPrev != nil {
			sPrev(ev)
		}
	}
	em.Event = func(ev gclang.StepEvent) {
		eEv = ev
		if ePrev != nil {
			ePrev(ev)
		}
	}
	for !sm.Halted {
		if fuel <= 0 {
			t.Fatalf("out of fuel at step %d", sm.Steps)
		}
		fuel--
		sa, sok := sm.PendingCall()
		ea, eok := em.PendingCall()
		if sok != eok || sa != ea {
			t.Fatalf("step %d: PendingCall: subst %v,%v env %v,%v", sm.Steps, sa, sok, ea, eok)
		}
		sEv, eEv = gclang.StepEvent{}, gclang.StepEvent{}
		if err := sm.Step(); err != nil {
			t.Fatalf("subst step %d: %v", sm.Steps, err)
		}
		if err := em.Step(); err != nil {
			t.Fatalf("env step %d: %v", em.Steps, err)
		}
		if sm.Steps != em.Steps || sm.Halted != em.Halted {
			t.Fatalf("diverged: subst step %d halted %v, env step %d halted %v",
				sm.Steps, sm.Halted, em.Steps, em.Halted)
		}
		if sm.Mem.Stats() != em.Mem.Stats() {
			t.Fatalf("step %d: stats: subst %+v env %+v", sm.Steps, sm.Mem.Stats(), em.Mem.Stats())
		}
		if sEv != eEv {
			t.Fatalf("step %d: step event:\n  subst: %+v\n  env:   %+v", sm.Steps, sEv, eEv)
		}
	}
	if !em.Halted {
		t.Fatal("env machine not halted when subst machine is")
	}
	if sm.Result.String() != em.Result.String() {
		t.Fatalf("results: subst %s env %s", sm.Result, em.Result)
	}
	sc, ec := sm.Mem.Cells(), em.Mem.Cells()
	if len(sc) != len(ec) {
		t.Fatalf("cell counts: subst %d env %d", len(sc), len(ec))
	}
	for i := range sc {
		if sc[i] != ec[i] {
			t.Fatalf("cell %d: addr %s vs %s", i, sc[i], ec[i])
		}
		sv, _ := sm.Mem.Get(sc[i])
		ev, _ := em.Mem.Get(ec[i])
		// Pool handles are machine-local: compare through each machine's
		// own pools.
		if ss, es := sm.Pool.Decode(sv).String(), em.Pool.Decode(ev).String(); ss != es {
			t.Fatalf("cell %s: subst %s env %s", sc[i], ss, es)
		}
	}
}

func newEnginePair(d gclang.Dialect, p gclang.Program, capacity int) (*gclang.Machine, *gclang.EnvMachine) {
	sm := gclang.NewMachine(d, p, capacity)
	sm.Mem.SetAutoGrow(true)
	em := gclang.NewEnvMachine(d, p, capacity)
	em.Mem.SetAutoGrow(true)
	return sm, em
}

// TestEnvMachineAgreesWithSubst co-steps the environment machine against
// the substitution machine over every dialect's certified collector and a
// randomized population of generated source programs, requiring identical
// traces, step counts, memory counters, results, and final heaps.
func TestEnvMachineAgreesWithSubst(t *testing.T) {
	t.Run("collectors", func(t *testing.T) {
		for _, d := range []gclang.Dialect{gclang.Base, gclang.Forw, gclang.Gen} {
			for _, tc := range []struct {
				shape workload.Shape
				size  int
			}{{workload.List, 24}, {workload.Tree, 4}, {workload.DAG, 4}} {
				t.Run(fmt.Sprintf("%s/%s/%d", d, tc.shape, tc.size), func(t *testing.T) {
					c, err := workload.BuildCollectOnce(d, tc.shape, tc.size)
					if err != nil {
						t.Fatal(err)
					}
					sm, em := newEnginePair(d, c.Prog, 0)
					coStep(t, sm, em, 2_000_000)
				})
			}
		}
	})

	t.Run("populations", func(t *testing.T) {
		collectors := []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational}
		r := rand.New(rand.NewSource(11))
		want := 25
		if testing.Short() {
			want = 8
		}
		ran := 0
		for attempts := 0; ran < want && attempts < 300; attempts++ {
			p := gen.Program(r, gen.DefaultConfig)
			ev := source.Evaluator{Fuel: 2_000_000}
			if _, err := ev.RunInt(p); err != nil {
				continue
			}
			ran++
			for _, col := range collectors {
				c, err := psgc.CompileProgram(p, col)
				if err != nil {
					t.Fatalf("program %d (%s): compile: %v", ran, col, err)
				}
				sm, em := newEnginePair(col.Dialect(), c.Prog, 16)
				// Attach a GC-event recorder to each engine: the timelines
				// (collection spans, alloc/copy/forward/scan/region_free
				// events) must also be identical.
				rs, re := c.Recorder(), c.Recorder()
				rs.Attach(sm)
				re.AttachEnv(em)
				coStep(t, sm, em, 40_000_000)
				tls, tle := rs.Timeline(), re.Timeline()
				if !reflect.DeepEqual(tls, tle) {
					t.Fatalf("program %d (%s): timelines diverged:\nsubst: %+v\nenv:   %+v",
						ran, col, tls, tle)
				}
			}
		}
		if ran < want {
			t.Fatalf("only %d/%d generated programs terminated", ran, want)
		}
	})
}
