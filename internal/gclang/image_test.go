package gclang_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"psgc/internal/gclang"
	"psgc/internal/regions"
	"psgc/internal/workload"
)

// runEnvToHalt runs a fresh env machine on the given backend to completion
// and returns it.
func runEnvToHalt(t *testing.T, b regions.Backend, d gclang.Dialect, p gclang.Program) *gclang.EnvMachine {
	t.Helper()
	m := gclang.NewEnvMachineOn(b, d, p, 0)
	m.Mem.SetAutoGrow(true)
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

// gobRoundTrip pushes the image through its serialized form, as a real
// checkpoint does.
func gobRoundTrip(t *testing.T, img gclang.MachineImage) gclang.MachineImage {
	t.Helper()
	gclang.RegisterGob()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		t.Fatalf("encode image: %v", err)
	}
	var out gclang.MachineImage
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatalf("decode image: %v", err)
	}
	return out
}

// imageAt steps a fresh env machine to the given step count and images it.
func imageAt(t *testing.T, b regions.Backend, d gclang.Dialect, p gclang.Program, steps int) gclang.MachineImage {
	t.Helper()
	m := gclang.NewEnvMachineOn(b, d, p, 0)
	m.Mem.SetAutoGrow(true)
	for m.Steps < steps && !m.Halted {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Halted {
		t.Fatalf("halted at step %d before checkpoint point %d", m.Steps, steps)
	}
	img, err := m.Image()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestEnvImageCrossBackendResume(t *testing.T) {
	for _, d := range []gclang.Dialect{gclang.Base, gclang.Forw, gclang.Gen} {
		c, err := workload.BuildCollectOnce(d, workload.List, 16)
		if err != nil {
			t.Fatal(err)
		}
		ref := runEnvToHalt(t, regions.BackendMap, d, c.Prog)
		for _, pair := range [][2]regions.Backend{
			{regions.BackendMap, regions.BackendArena},
			{regions.BackendArena, regions.BackendMap},
			{regions.BackendMap, regions.BackendMap},
			{regions.BackendArena, regions.BackendArena},
		} {
			from, to := pair[0], pair[1]
			t.Run(fmt.Sprintf("%s/%s_to_%s", d, from, to), func(t *testing.T) {
				img := gobRoundTrip(t, imageAt(t, from, d, c.Prog, ref.Steps/2))
				res, err := gclang.RestoreEnvMachine(to, d, c.Prog, img)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := res.Run(2_000_000); err != nil {
					t.Fatal(err)
				}
				if res.Result.String() != ref.Result.String() {
					t.Fatalf("result %s, uninterrupted %s", res.Result, ref.Result)
				}
				if res.Steps != ref.Steps {
					t.Fatalf("steps %d, uninterrupted %d", res.Steps, ref.Steps)
				}
				if res.Mem.Stats() != ref.Mem.Stats() {
					t.Fatalf("stats %+v, uninterrupted %+v", res.Mem.Stats(), ref.Mem.Stats())
				}
			})
		}
	}
}

func TestRestoreOracleAgreesWithResumedEnv(t *testing.T) {
	d := gclang.Forw
	c, err := workload.BuildCollectOnce(d, workload.Tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref := runEnvToHalt(t, regions.BackendMap, d, c.Prog)
	img := gobRoundTrip(t, imageAt(t, regions.BackendArena, d, c.Prog, ref.Steps/2))

	env, err := gclang.RestoreEnvMachine(regions.BackendArena, d, c.Prog, img)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := gclang.RestoreOracle(c.Prog, img)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Steps != env.Steps {
		t.Fatalf("restored step counts differ: oracle %d env %d", oracle.Steps, env.Steps)
	}
	if oracle.Mem.Stats() != env.Mem.Stats() {
		t.Fatalf("restored stats differ: oracle %+v env %+v", oracle.Mem.Stats(), env.Mem.Stats())
	}
	// Co-step both to halt: identical counters every step, identical end.
	for !oracle.Halted {
		if err := oracle.Step(); err != nil {
			t.Fatalf("oracle step %d: %v", oracle.Steps, err)
		}
		if err := env.Step(); err != nil {
			t.Fatalf("env step %d: %v", env.Steps, err)
		}
		if oracle.Steps != env.Steps || oracle.Halted != env.Halted {
			t.Fatalf("diverged: oracle step %d halted %v, env step %d halted %v",
				oracle.Steps, oracle.Halted, env.Steps, env.Halted)
		}
		if oracle.Mem.Stats() != env.Mem.Stats() {
			t.Fatalf("step %d: stats: oracle %+v env %+v", oracle.Steps, oracle.Mem.Stats(), env.Mem.Stats())
		}
	}
	if oracle.Result.String() != ref.Result.String() || !env.Halted {
		t.Fatalf("oracle result %s, uninterrupted %s", oracle.Result, ref.Result)
	}
}

func TestSubstImageRoundTrip(t *testing.T) {
	d := gclang.Base
	c, err := workload.BuildCollectOnce(d, workload.List, 16)
	if err != nil {
		t.Fatal(err)
	}
	ref := gclang.NewMachine(d, c.Prog, 0)
	ref.Mem.SetAutoGrow(true)
	if _, err := ref.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	m := gclang.NewMachineOn(regions.BackendArena, d, c.Prog, 0)
	m.Mem.SetAutoGrow(true)
	for m.Steps < ref.Steps/2 {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	img, err := m.Image()
	if err != nil {
		t.Fatal(err)
	}
	res, err := gclang.RestoreMachine(regions.BackendMap, d, c.Prog, gobRoundTrip(t, img))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if res.Result.String() != ref.Result.String() || res.Steps != ref.Steps || res.Mem.Stats() != ref.Mem.Stats() {
		t.Fatalf("resumed run diverged: %s/%d/%+v vs %s/%d/%+v",
			res.Result, res.Steps, res.Mem.Stats(), ref.Result, ref.Steps, ref.Mem.Stats())
	}
}

func TestRestoreRejectsTamperedImages(t *testing.T) {
	d := gclang.Base
	c, err := workload.BuildCollectOnce(d, workload.List, 16)
	if err != nil {
		t.Fatal(err)
	}
	ref := runEnvToHalt(t, regions.BackendMap, d, c.Prog)
	fresh := func() gclang.MachineImage {
		return imageAt(t, regions.BackendMap, d, c.Prog, ref.Steps/2)
	}
	cases := []struct {
		name   string
		tamper func(*gclang.MachineImage)
	}{
		{"no control term", func(img *gclang.MachineImage) { img.Ctrl = nil }},
		{"negative steps", func(img *gclang.MachineImage) { img.Steps = -1 }},
		{"heap counter lie", func(img *gclang.MachineImage) { img.Heap.Stats.Puts++ }},
		{"lam pool mismatch", func(img *gclang.MachineImage) {
			img.Pool.Lams = append(img.Pool.Lams, gclang.LamV{})
		}},
		{"cd cell swapped", func(img *gclang.MachineImage) {
			img.Heap.Regions[0].Cells[0] = gclang.NumCell(7)
		}},
		{"env handle out of range", func(img *gclang.MachineImage) {
			for n := range img.EnvCells {
				img.EnvCells[n] = gclang.Cell{Tag: gclang.CellVar, A: 1 << 40}
				break
			}
		}},
		{"pool cell cycle", func(img *gclang.MachineImage) {
			// A pool cell whose payload references itself violates the
			// append-order invariant.
			img.Pool.Cells = append(img.Pool.Cells, gclang.Cell{
				Tag: gclang.CellPair,
				A:   uint64(len(img.Pool.Cells))<<2 | 2,
				B:   0 << 2,
			})
		}},
		{"unknown tag in heap", func(img *gclang.MachineImage) {
			last := len(img.Heap.Regions) - 1
			cells := img.Heap.Regions[last].Cells
			if len(cells) == 0 {
				t.Skip("no data cells at checkpoint")
			}
			cells[0] = gclang.Cell{Tag: 99}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := fresh()
			tc.tamper(&img)
			if _, err := gclang.RestoreEnvMachine(regions.BackendMap, d, c.Prog, img); err == nil {
				t.Fatal("tampered image restored")
			}
		})
	}

	t.Run("dialect mismatch", func(t *testing.T) {
		img := fresh()
		if _, err := gclang.RestoreEnvMachine(regions.BackendMap, gclang.Gen, c.Prog, img); err == nil {
			t.Fatal("image restored under wrong dialect")
		}
	})
	t.Run("env image as subst machine", func(t *testing.T) {
		img := fresh()
		if len(img.EnvCells) == 0 {
			t.Skip("empty environment at checkpoint")
		}
		if _, err := gclang.RestoreMachine(regions.BackendMap, d, c.Prog, img); err == nil {
			t.Fatal("environment image restored as substitution machine")
		}
	})
}

func TestImageFingerprintTracksContent(t *testing.T) {
	d := gclang.Base
	c, err := workload.BuildCollectOnce(d, workload.List, 16)
	if err != nil {
		t.Fatal(err)
	}
	ref := runEnvToHalt(t, regions.BackendMap, d, c.Prog)
	a := imageAt(t, regions.BackendMap, d, c.Prog, ref.Steps/2)
	b := imageAt(t, regions.BackendArena, d, c.Prog, ref.Steps/2)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same state on different backends fingerprints differently")
	}
	b.Heap.Regions[len(b.Heap.Regions)-1].Pattern ^= 1 << 40
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint blind to heap tampering")
	}
}
