package gclang

import (
	"fmt"

	"psgc/internal/kinds"
	"psgc/internal/names"
	"psgc/internal/regions"
	"psgc/internal/tags"
)

// MemType is the memory type Ψ assigning a type to every allocated cell.
type MemType map[regions.Addr]Type

// Clone returns an independent copy.
func (p MemType) Clone() MemType {
	out := make(MemType, len(p))
	for a, t := range p {
		out[a] = t
	}
	return out
}

// Restrict returns Ψ|∆: the entries whose region is in keep or is cd.
func (p MemType) Restrict(keep map[regions.Name]bool) MemType {
	out := make(MemType)
	for a, t := range p {
		if a.Region == regions.CD || keep[a.Region] {
			out[a] = t
		}
	}
	return out
}

// Env carries the static environments Ψ; ∆; Θ; Φ; Γ of the typing
// judgments (Fig. 6). Extension methods copy, so environments may be
// shared freely.
type Env struct {
	Psi   MemType
	Delta map[Region]bool
	Theta tags.KindEnv
	Phi   map[names.Name][]Region
	Gamma map[names.Name]Type

	// RBounds records, for region variables introduced by opening a
	// bounded existential ∃r∈∆ (λGCgen), the bound ∆. The generational
	// subtype rule M_{r,ρo}(τ) ≤ M_{ρy,ρo}(τ) needs r's bound to be
	// contained in {ρy, ρo} — this is what lets Fig. 11's copy recurse on
	// components allocated "somewhere in {young, old}" (see Lemma D.4's
	// appeal to subtyping on M).
	RBounds map[names.Name][]Region
}

// NewEnv returns the environment Ψ; ∆; ·; ·; · used for whole programs
// and machine states: the given memory type with its domain as ∆.
func NewEnv(psi MemType) *Env {
	delta := map[Region]bool{Region(CDRegion): true}
	for a := range psi {
		delta[Region(RName{Name: a.Region})] = true
	}
	return &Env{
		Psi:     psi,
		Delta:   delta,
		Theta:   tags.KindEnv{},
		Phi:     map[names.Name][]Region{},
		Gamma:   map[names.Name]Type{},
		RBounds: map[names.Name][]Region{},
	}
}

func (e *Env) clone() *Env {
	out := &Env{
		Psi:     e.Psi,
		Delta:   make(map[Region]bool, len(e.Delta)),
		Theta:   make(tags.KindEnv, len(e.Theta)),
		Phi:     make(map[names.Name][]Region, len(e.Phi)),
		Gamma:   make(map[names.Name]Type, len(e.Gamma)),
		RBounds: make(map[names.Name][]Region, len(e.RBounds)),
	}
	for r := range e.Delta {
		out.Delta[r] = true
	}
	for n, k := range e.Theta {
		out.Theta[n] = k
	}
	for n, d := range e.Phi {
		out.Phi[n] = d
	}
	for n, t := range e.Gamma {
		out.Gamma[n] = t
	}
	for n, b := range e.RBounds {
		out.RBounds[n] = b
	}
	return out
}

func (e *Env) withVar(x names.Name, t Type) *Env {
	out := e.clone()
	out.Gamma[x] = t
	return out
}

func (e *Env) withTag(t names.Name, k kinds.Kind) *Env {
	out := e.clone()
	out.Theta[t] = k
	return out
}

func (e *Env) withRegion(r Region) *Env {
	out := e.clone()
	out.Delta[r] = true
	return out
}

func (e *Env) withAlpha(a names.Name, delta []Region) *Env {
	out := e.clone()
	out.Phi[a] = delta
	return out
}

func (e *Env) hasRegion(r Region) bool {
	if RegionEqual(r, CDRegion) {
		return true
	}
	return e.Delta[r]
}

// substEnv applies a substitution to Γ and Φ's region bounds and ∆
// (used by typecase refinement and ifreg unification).
func (e *Env) substEnv(s *Subst) *Env {
	out := e.clone()
	for n, t := range out.Gamma {
		out.Gamma[n] = s.Type(t)
	}
	for n, d := range out.Phi {
		out.Phi[n] = s.RegionList(d)
	}
	for n, b := range out.RBounds {
		out.RBounds[n] = s.RegionList(b)
	}
	delta := make(map[Region]bool, len(out.Delta))
	for r := range out.Delta {
		delta[s.Region(r)] = true
	}
	out.Delta = delta
	return out
}

// Checker typechecks λGC syntax under a dialect. It also elaborates the
// checked term: put sites are annotated with the static type of the stored
// value, and widen sites with the source region, so the machine can
// maintain the ghost memory type Ψ (DESIGN.md).
type Checker struct {
	Dialect Dialect
}

// errf builds a located error.
func errf(where fmt.Stringer, format string, args ...any) error {
	return fmt.Errorf("%s: in %s", fmt.Sprintf(format, args...), where)
}

func (c *Checker) dialectAtLeast(where fmt.Stringer, want Dialect, form string) error {
	if c.Dialect != want {
		return errf(where, "%s is a %s construct, not available in %s", form, want, c.Dialect)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Type well-formedness  ∆; Θ; Φ ⊢ σ  (Fig. 6 right column)
// ---------------------------------------------------------------------------

// CheckTypeWF implements ∆; Θ; Φ ⊢ σ.
func (c *Checker) CheckTypeWF(env *Env, t Type) error {
	switch t := t.(type) {
	case IntT:
		return nil
	case ProdT:
		if err := c.CheckTypeWF(env, t.L); err != nil {
			return err
		}
		return c.CheckTypeWF(env, t.R)
	case CodeT:
		// Code types bind their own regions and tag parameters; they are
		// region-closed ({~r} replaces ∆) but may mention outer tag
		// variables — M_ρ(τ→0) reduces to ∀[][r](M_r(τ))→0 at cd with τ's
		// free tag variables intact, so gc's own f parameter type needs Θ.
		inner := NewEnv(nil)
		inner.Psi = env.Psi
		for n, k := range env.Theta {
			inner.Theta[n] = k
		}
		for _, tp := range t.TParams {
			inner.Theta[tp.Name] = tp.Kind
		}
		for _, r := range t.RParams {
			inner.Delta[Region(RVar{Name: r})] = true
		}
		for _, p := range t.Params {
			if err := c.CheckTypeWF(inner, p); err != nil {
				return err
			}
		}
		return nil
	case ExistT:
		return c.CheckTypeWF(env.withTag(t.Bound, t.Kind), t.Body)
	case AtT:
		if !env.hasRegion(t.R) {
			return errf(t, "region %s not in scope", t.R)
		}
		return c.CheckTypeWF(env, t.Body)
	case MT:
		if len(t.Rs) != c.Dialect.MArity() {
			return errf(t, "M takes %d region(s) in %s", c.Dialect.MArity(), c.Dialect)
		}
		for _, r := range t.Rs {
			if !env.hasRegion(r) {
				return errf(t, "region %s not in scope", r)
			}
		}
		if err := tagOmega(env.Theta, t.Tag); err != nil {
			return errf(t, "%v", err)
		}
		return nil
	case CT:
		if err := c.dialectAtLeast(t, Forw, "C"); err != nil {
			return err
		}
		if !env.hasRegion(t.From) || !env.hasRegion(t.To) {
			return errf(t, "region not in scope")
		}
		if err := tagOmega(env.Theta, t.Tag); err != nil {
			return errf(t, "%v", err)
		}
		return nil
	case AlphaT:
		delta, ok := env.Phi[t.Name]
		if !ok {
			return errf(t, "unbound type variable %s", t.Name)
		}
		for _, r := range delta {
			if !env.hasRegion(r) {
				return errf(t, "type variable %s constrained to dead region %s", t.Name, r)
			}
		}
		return nil
	case ExistAlphaT:
		for _, r := range t.Delta {
			if !env.hasRegion(r) {
				return errf(t, "region %s not in scope", r)
			}
		}
		return c.CheckTypeWF(env.withAlpha(t.Bound, t.Delta), t.Body)
	case TransT:
		if !env.hasRegion(t.R) {
			return errf(t, "region %s not in scope", t.R)
		}
		for _, r := range t.Rs {
			if !env.hasRegion(r) {
				return errf(t, "region %s not in scope", r)
			}
		}
		for _, tg := range t.Tags {
			if _, err := tags.Check(env.Theta, tg); err != nil {
				return errf(t, "%v", err)
			}
		}
		// Fully applied: params are checked in the ambient scope.
		for _, p := range t.Params {
			if err := c.CheckTypeWF(env, p); err != nil {
				return err
			}
		}
		return nil
	case LeftT:
		if err := c.dialectAtLeast(t, Forw, "left"); err != nil {
			return err
		}
		return c.CheckTypeWF(env, t.Body)
	case RightT:
		if err := c.dialectAtLeast(t, Forw, "right"); err != nil {
			return err
		}
		return c.CheckTypeWF(env, t.Body)
	case SumT:
		if err := c.dialectAtLeast(t, Forw, "sum"); err != nil {
			return err
		}
		if _, ok := t.L.(LeftT); !ok {
			return errf(t, "sum's first component must be a left type")
		}
		if _, ok := t.R.(RightT); !ok {
			return errf(t, "sum's second component must be a right type")
		}
		if err := c.CheckTypeWF(env, t.L); err != nil {
			return err
		}
		return c.CheckTypeWF(env, t.R)
	case ExistRT:
		if err := c.dialectAtLeast(t, Gen, "∃r∈∆"); err != nil {
			return err
		}
		for _, r := range t.Delta {
			if !env.hasRegion(r) {
				return errf(t, "region %s not in scope", r)
			}
		}
		return c.CheckTypeWF(env.withRegion(RVar{Name: t.Bound}), t.Body)
	default:
		panic(fmt.Sprintf("gclang: unknown type %T", t))
	}
}

func tagOmega(theta tags.KindEnv, t tags.Tag) error {
	k, err := tags.Check(theta, t)
	if err != nil {
		return err
	}
	if !k.Equal(kinds.Omega{}) {
		return fmt.Errorf("tag %s has kind %s, want Ω", t, k)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Value typing  Ψ; ∆; Θ; Φ; Γ ⊢ v : σ
// ---------------------------------------------------------------------------

// SynthValue computes the type of a value.
func (c *Checker) SynthValue(env *Env, v Value) (Type, error) {
	switch v := v.(type) {
	case Num:
		return IntT{}, nil
	case Var:
		t, ok := env.Gamma[v.Name]
		if !ok {
			return nil, errf(v, "unbound variable %s", v.Name)
		}
		return t, nil
	case AddrV:
		t, ok := env.Psi[v.Addr]
		if !ok {
			return nil, errf(v, "address %s not in Ψ", v.Addr)
		}
		return AtT{Body: t, R: RName{Name: v.Addr.Region}}, nil
	case PairV:
		l, err := c.SynthValue(env, v.L)
		if err != nil {
			return nil, err
		}
		r, err := c.SynthValue(env, v.R)
		if err != nil {
			return nil, err
		}
		return ProdT{L: l, R: r}, nil
	case PackTag:
		k, err := tags.Check(env.Theta, v.Tag)
		if err != nil {
			return nil, errf(v, "%v", err)
		}
		if !k.Equal(v.Kind) {
			return nil, errf(v, "witness tag has kind %s, package declares %s", k, v.Kind)
		}
		want := Subst1Tag(v.Bound, v.Tag).Type(v.Body)
		if err := c.CheckValue(env, v.Val, want); err != nil {
			return nil, err
		}
		res := ExistT{Bound: v.Bound, Kind: v.Kind, Body: v.Body}
		if err := c.CheckTypeWF(env, res); err != nil {
			return nil, err
		}
		return res, nil
	case PackAlpha:
		// ∆'; Θ; Φ|∆' ⊢ σ1 and v : σ2[σ1/α].
		inner := env.clone()
		inner.Delta = map[Region]bool{Region(CDRegion): true}
		for _, r := range v.Delta {
			if !env.hasRegion(r) {
				return nil, errf(v, "region %s not in scope", r)
			}
			inner.Delta[r] = true
		}
		for a, d := range env.Phi {
			for _, r := range d {
				if !inner.Delta[r] {
					delete(inner.Phi, a)
					break
				}
			}
		}
		if err := c.CheckTypeWF(inner, v.Hidden); err != nil {
			return nil, err
		}
		want := Subst1Type(v.Bound, v.Hidden).Type(v.Body)
		if err := c.CheckValue(env, v.Val, want); err != nil {
			return nil, err
		}
		res := ExistAlphaT{Bound: v.Bound, Delta: v.Delta, Body: v.Body}
		if err := c.CheckTypeWF(env, res); err != nil {
			return nil, err
		}
		return res, nil
	case PackRegion:
		if err := c.dialectAtLeast(v, Gen, "region package"); err != nil {
			return nil, err
		}
		inBound := false
		for _, r := range v.Delta {
			if !env.hasRegion(r) {
				return nil, errf(v, "region %s not in scope", r)
			}
			if RegionEqual(r, v.R) {
				inBound = true
			}
		}
		if !inBound {
			return nil, errf(v, "witness region %s not in bound", v.R)
		}
		want := AtT{Body: Subst1Reg(v.Bound, v.R).Type(v.Body), R: v.R}
		if err := c.CheckValue(env, v.Val, want); err != nil {
			return nil, err
		}
		res := ExistRT{Bound: v.Bound, Delta: v.Delta, Body: v.Body}
		if err := c.CheckTypeWF(env, res); err != nil {
			return nil, err
		}
		return res, nil
	case TAppV:
		ft, err := c.SynthValue(env, v.Val)
		if err != nil {
			return nil, err
		}
		nf, err := NormalizeType(c.Dialect, ft)
		if err != nil {
			return nil, errf(v, "%v", err)
		}
		at, ok := nf.(AtT)
		if !ok {
			return nil, errf(v, "tag application head has type %s, want code at ρ", nf)
		}
		code, ok := at.Body.(CodeT)
		if !ok {
			return nil, errf(v, "tag application head has type %s, want code at ρ", nf)
		}
		if len(v.Tags) != len(code.TParams) {
			return nil, errf(v, "tag application supplies %d tags, code expects %d", len(v.Tags), len(code.TParams))
		}
		if len(v.Rs) != len(code.RParams) {
			return nil, errf(v, "tag application supplies %d regions, code expects %d", len(v.Rs), len(code.RParams))
		}
		sub := &Subst{Tags: map[names.Name]tags.Tag{}, Regs: map[names.Name]Region{}}
		for i, tg := range v.Tags {
			k, err := tags.Check(env.Theta, tg)
			if err != nil {
				return nil, errf(v, "%v", err)
			}
			if !k.Equal(code.TParams[i].Kind) {
				return nil, errf(v, "tag %s has kind %s, want %s", tg, k, code.TParams[i].Kind)
			}
			sub.Tags[code.TParams[i].Name] = tg
		}
		for i, r := range v.Rs {
			if !env.hasRegion(r) {
				return nil, errf(v, "region %s not in scope", r)
			}
			sub.Regs[code.RParams[i]] = r
		}
		params := make([]Type, len(code.Params))
		for i, p := range code.Params {
			params[i] = sub.Type(p)
		}
		return TransT{Tags: v.Tags, Rs: v.Rs, Params: params, R: at.R}, nil
	case LamV:
		// Ψ|cd; cd,~r; ~t:κ; ·; ~x:σ ⊢ e.
		return c.synthLam(env, v)
	case InlV:
		if err := c.dialectAtLeast(v, Forw, "inl"); err != nil {
			return nil, err
		}
		t, err := c.SynthValue(env, v.Val)
		if err != nil {
			return nil, err
		}
		return LeftT{Body: t}, nil
	case InrV:
		if err := c.dialectAtLeast(v, Forw, "inr"); err != nil {
			return nil, err
		}
		t, err := c.SynthValue(env, v.Val)
		if err != nil {
			return nil, err
		}
		return RightT{Body: t}, nil
	default:
		panic(fmt.Sprintf("gclang: unknown value %T", v))
	}
}

// synthLam checks a code block and returns its code type. The body is
// checked under Ψ|cd, the block's own binders, and nothing else: code is
// fully closed (Fig. 6).
func (c *Checker) synthLam(env *Env, v LamV) (Type, error) {
	inner := NewEnv(env.Psi.Restrict(nil))
	for _, tp := range v.TParams {
		inner.Theta[tp.Name] = tp.Kind
	}
	for _, r := range v.RParams {
		inner.Delta[Region(RVar{Name: r})] = true
	}
	for _, p := range v.Params {
		if err := c.CheckTypeWF(inner, p.Ty); err != nil {
			return nil, fmt.Errorf("parameter %s: %w", p.Name, err)
		}
		inner.Gamma[p.Name] = p.Ty
	}
	if _, err := c.CheckTerm(inner, v.Body); err != nil {
		return nil, err
	}
	params := make([]Type, len(v.Params))
	for i, p := range v.Params {
		params[i] = p.Ty
	}
	return CodeT{TParams: v.TParams, RParams: v.RParams, Params: params}, nil
}

// CheckValue checks a value against an expected type, pushing the
// expectation through pairs and tag-bit injections so that subsumption
// applies below constructors.
func (c *Checker) CheckValue(env *Env, v Value, want Type) error {
	nf, err := NormalizeType(c.Dialect, want)
	if err != nil {
		return errf(v, "%v", err)
	}
	switch vv := v.(type) {
	case PairV:
		if p, ok := nf.(ProdT); ok {
			if err := c.CheckValue(env, vv.L, p.L); err != nil {
				return err
			}
			return c.CheckValue(env, vv.R, p.R)
		}
	case PackTag:
		// Check-mode: the package introduces the EXPECTED existential
		// (its recorded Body annotation may be a different but equal
		// view — e.g. the M form where a widened context expects C).
		if ex, ok := nf.(ExistT); ok && ex.Kind.Equal(vv.Kind) {
			k, err := tags.Check(env.Theta, vv.Tag)
			if err != nil {
				return errf(v, "%v", err)
			}
			if !k.Equal(ex.Kind) {
				return errf(v, "witness tag has kind %s, want %s", k, ex.Kind)
			}
			return c.CheckValue(env, vv.Val, Subst1Tag(ex.Bound, vv.Tag).Type(ex.Body))
		}
	case PackRegion:
		if ex, ok := nf.(ExistRT); ok {
			inBound := false
			for _, r := range ex.Delta {
				if RegionEqual(r, vv.R) {
					inBound = true
					break
				}
			}
			if !inBound {
				return errf(v, "witness region %s not in expected bound", vv.R)
			}
			want := AtT{Body: Subst1Reg(ex.Bound, vv.R).Type(ex.Body), R: vv.R}
			return c.CheckValue(env, vv.Val, want)
		}
	case InlV:
		switch w := nf.(type) {
		case LeftT:
			return c.CheckValue(env, vv.Val, w.Body)
		case SumT:
			return c.CheckValue(env, v, w.L)
		}
	case InrV:
		switch w := nf.(type) {
		case RightT:
			return c.CheckValue(env, vv.Val, w.Body)
		case SumT:
			return c.CheckValue(env, v, w.R)
		}
	}
	got, err := c.SynthValue(env, v)
	if err != nil {
		return err
	}
	ok, err := Assignable(c.Dialect, env.RBounds, got, nf)
	if err != nil {
		return errf(v, "%v", err)
	}
	if !ok {
		return errf(v, "has type %s, want %s", got, nf)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Operation typing  Ψ; ∆; Θ; Φ; Γ ⊢ op : σ
// ---------------------------------------------------------------------------

// SynthOp computes the type of an operation, returning the (possibly
// elaborated) operation alongside.
func (c *Checker) SynthOp(env *Env, op Op) (Op, Type, error) {
	switch op := op.(type) {
	case ValOp:
		t, err := c.SynthValue(env, op.V)
		return op, t, err
	case ProjOp:
		t, err := c.SynthValue(env, op.V)
		if err != nil {
			return nil, nil, err
		}
		nf, err := NormalizeType(c.Dialect, t)
		if err != nil {
			return nil, nil, errf(op, "%v", err)
		}
		p, ok := nf.(ProdT)
		if !ok {
			return nil, nil, errf(op, "projection from non-pair type %s", nf)
		}
		if op.I == 1 {
			return op, p.L, nil
		}
		if op.I == 2 {
			return op, p.R, nil
		}
		return nil, nil, errf(op, "bad projection index %d", op.I)
	case PutOp:
		if !env.hasRegion(op.R) {
			return nil, nil, errf(op, "put into region %s not in scope", op.R)
		}
		t, err := c.SynthValue(env, op.V)
		if err != nil {
			return nil, nil, err
		}
		return PutOp{R: op.R, V: op.V, Anno: t}, AtT{Body: t, R: op.R}, nil
	case GetOp:
		t, err := c.SynthValue(env, op.V)
		if err != nil {
			return nil, nil, err
		}
		nf, err := NormalizeType(c.Dialect, t)
		if err != nil {
			return nil, nil, errf(op, "%v", err)
		}
		at, ok := nf.(AtT)
		if !ok {
			return nil, nil, errf(op, "get from non-reference type %s", nf)
		}
		return op, at.Body, nil
	case StripOp:
		if err := c.dialectAtLeast(op, Forw, "strip"); err != nil {
			return nil, nil, err
		}
		t, err := c.SynthValue(env, op.V)
		if err != nil {
			return nil, nil, err
		}
		nf, err := NormalizeType(c.Dialect, t)
		if err != nil {
			return nil, nil, errf(op, "%v", err)
		}
		switch w := nf.(type) {
		case LeftT:
			return op, w.Body, nil
		case RightT:
			return op, w.Body, nil
		default:
			return nil, nil, errf(op, "strip of type %s, want left/right", nf)
		}
	case ArithOp:
		if err := c.CheckValue(env, op.L, IntT{}); err != nil {
			return nil, nil, err
		}
		if err := c.CheckValue(env, op.R, IntT{}); err != nil {
			return nil, nil, err
		}
		return op, IntT{}, nil
	default:
		panic(fmt.Sprintf("gclang: unknown op %T", op))
	}
}
