package gclang

import (
	"fmt"
	"time"

	"psgc/internal/fault"
	"psgc/internal/regions"
)

// injectFaults applies the machine-level injection points before a step.
// Only the environment machine carries these hooks: the substitution
// machine is the semantic oracle and stays clean, which is what makes
// injected corruption detectable by co-checking.
func (m *EnvMachine) injectFaults(r *fault.Registry) error {
	if d, ok := r.Fire(fault.MachineStall); ok && d > 0 {
		time.Sleep(d)
	}
	if r.Should(fault.MachineStep) {
		return fmt.Errorf("gclang: %w at step %d", fault.ErrInjected, m.Steps)
	}
	if r.Should(fault.HeapCorrupt) {
		m.corruptCell()
	}
	return nil
}

// corruptPoison is the value injected heap corruption writes: a number a
// well-typed program never computes, so a later read either misbehaves
// (wrong result, detectable by the oracle) or violates the tag discipline
// and sticks the machine.
var corruptPoison = Num{N: 0xBEEF}

// corruptCell overwrites the most recently allocated data cell via
// regions.Corrupt, which records no statistics — the damage is invisible
// to the counter identities and only surfaces through behavior.
func (m *EnvMachine) corruptCell() {
	order := m.Mem.Regions()
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n == regions.CD {
			continue
		}
		size := m.Mem.Size(n)
		if size == 0 {
			continue
		}
		m.Mem.Corrupt(regions.Addr{Region: n, Off: size - 1}, corruptPoison)
		return
	}
}
