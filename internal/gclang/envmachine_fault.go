package gclang

import (
	"fmt"
	"time"

	"psgc/internal/fault"
	"psgc/internal/regions"
)

// injectFaults applies the machine-level injection points before a step.
// Only the environment machine carries these hooks: the substitution
// machine is the semantic oracle and stays clean, which is what makes
// injected corruption detectable by co-checking.
func (m *EnvMachine) injectFaults(r *fault.Registry) error {
	if d, ok := r.Fire(fault.MachineStall); ok && d > 0 {
		time.Sleep(d)
	}
	if r.Should(fault.MachineStep) {
		return fmt.Errorf("gclang: %w at step %d", fault.ErrInjected, m.Steps)
	}
	if r.Should(fault.HeapCorrupt) {
		m.corruptCell()
	}
	return nil
}

// corruptCell flips the tag bits of the most recently allocated data cell
// via regions.Peek/Corrupt, which record no statistics — the damage is
// invisible to the counter identities and only surfaces through behavior.
// This is the bit-flip the packed representation makes meaningful: XOR-ing
// the low tag bits turns a number into a code handle, an address into a
// sum injection, a pair into the other injection, a package into a poison
// handle — so a later read either sticks the machine on a tag check or
// produces a value the clean map oracle visibly disagrees with (at latest
// at the co-checker's cell-by-cell halt compare).
func (m *EnvMachine) corruptCell() {
	order := m.Mem.Regions()
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n == regions.CD {
			continue
		}
		size := m.Mem.Size(n)
		if size == 0 {
			continue
		}
		a := regions.Addr{Region: n, Off: size - 1}
		if c, ok := m.Mem.Peek(a); ok {
			c.Tag ^= 0x7
			m.Mem.Corrupt(a, c)
		}
		return
	}
}
