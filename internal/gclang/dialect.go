// Package gclang implements λGC, the typed target language in which the
// garbage collector itself is written (paper §4–§6), together with its two
// extensions: λGCforw with forwarding pointers (§7) and λGCgen with
// generations (§8).
//
// The three calculi share most of their syntax, so the package implements
// one superset language gated by a Dialect: constructs outside the selected
// dialect are rejected by the typechecker, which keeps each paper calculus
// checkable as itself while avoiding three near-identical implementations.
//
// The package provides
//   - the syntax of regions, types, values, operations and terms (Fig. 2
//     plus the §7/§8 extensions),
//   - the type-level reduction of the built-in M and C operators and
//     normalization-based type equality (§2.2, §6.3),
//   - the static semantics (Figs. 6, 7, 8, 10) as a typechecker that also
//     elaborates allocation sites with the type information the
//     preservation checker needs,
//   - the allocation-semantics abstract machine (Fig. 5 plus the §7/§8
//     rules) over the region substrate, instrumented with a "ghost" memory
//     type Ψ so that machine states can be re-checked for well-formedness
//     after every step (Defs. 6.3 and 7.1) — the executable counterpart of
//     the paper's type-preservation proofs.
package gclang

// Dialect selects which of the paper's calculi the checker enforces.
type Dialect int

// The three calculi of the paper.
const (
	// Base is λGC (§4–§6): the plain stop-and-copy collector language.
	Base Dialect = iota
	// Forw is λGCforw (§7): Base plus tag bits (inl/inr/strip/ifleft),
	// sum types, memory assignment, and the widen cast.
	Forw
	// Gen is λGCgen (§8): Base plus bounded existentials over regions
	// (∃r∈∆.σ at r), region packages, and the ifreg region test. The M
	// operator takes two region indices (young, old).
	Gen
)

func (d Dialect) String() string {
	switch d {
	case Base:
		return "λGC"
	case Forw:
		return "λGCforw"
	case Gen:
		return "λGCgen"
	default:
		return "Dialect(?)"
	}
}

// MArity returns how many region indices the M type operator takes in
// this dialect: M_ρ(τ) in Base and Forw, M_ρy,ρo(τ) in Gen.
func (d Dialect) MArity() int {
	if d == Gen {
		return 2
	}
	return 1
}
