package gclang

import (
	"errors"
	"fmt"

	"psgc/internal/names"
	"psgc/internal/regions"
	"psgc/internal/tags"
)

// Machine executes λGC terms under the allocation semantics of Fig. 5
// (extended with the §7/§8 rules and the workload extension).
//
// When Ghost is enabled the machine maintains the memory type Ψ alongside
// the memory — recording each put's elaborated annotation, restricting Ψ at
// only, and applying the T operator of the widen soundness proof (§7.1) at
// widen — so that every intermediate state can be re-checked for
// well-formedness. This is the executable counterpart of the paper's
// preservation proofs; see DESIGN.md.
type Machine struct {
	Dialect Dialect
	Mem     regions.Store[Cell]
	Term    Term

	// Pool holds the typed side pools backing the packed cells in Mem. The
	// substitution machine rewrites terms over boxed Values internally —
	// that is what makes it the readable oracle — and encodes/decodes at
	// its memory boundary: Encode on Put/Set, Decode on Get.
	Pool *Pools

	// Ghost enables Ψ maintenance. Programs must have been elaborated by
	// the checker (put annotations present) for ghost mode to work.
	Ghost bool
	Psi   MemType

	// Steps counts machine transitions taken so far.
	Steps int

	// Halted and Result are set once the program reaches halt v.
	Halted bool
	Result Value

	// Trace, if non-nil, is called after every step with the term that was
	// just reduced (the machine's effects — puts, sets, region frees — are
	// already applied, and m.Term is the next term). On the substitution
	// machine the pre-step term exists anyway, so the hook is free; event
	// consumers should prefer Event, which both machines share.
	Trace func(m *Machine, before Term)

	// Event, if non-nil, is called after every classified step with a
	// fixed-size StepEvent (see events.go). Emitting one allocates
	// nothing, so the hook is cheap enough to stay installed on every
	// run — it is how internal/obs builds timelines and profiles.
	Event func(StepEvent)

	// ev is the scratch event the step rules fill when Event is set.
	ev StepEvent
}

// ErrStuck is returned when no reduction applies — a progress violation
// for well-typed programs.
var ErrStuck = errors.New("gclang: machine stuck")

// ErrFuel is returned by Run when the step budget is exhausted.
var ErrFuel = errors.New("gclang: out of fuel")

// NewMachine loads a program into a fresh map-backed memory with the given
// region capacity (the ifgc fullness threshold). Code blocks are installed
// in the cd region at offsets matching their indices, as the paper's
// translation assumes.
func NewMachine(d Dialect, p Program, capacity int) *Machine {
	return NewMachineOn(regions.BackendMap, d, p, capacity)
}

// NewMachineOn is NewMachine over the selected memory backend.
func NewMachineOn(b regions.Backend, d Dialect, p Program, capacity int) *Machine {
	m := &Machine{
		Dialect: d,
		Mem:     regions.NewStore[Cell](b, capacity),
		Pool:    NewPools(),
		Term:    p.Main,
		Psi:     MemType{},
	}
	for i, nf := range p.Code {
		addr, err := m.Mem.Put(regions.CD, m.Pool.LamCell(nf.Fun))
		if err != nil || addr.Off != i {
			panic(fmt.Sprintf("gclang: code install failed: %v", err))
		}
		params := make([]Type, len(nf.Fun.Params))
		for j, prm := range nf.Fun.Params {
			params[j] = prm.Ty
		}
		m.Psi[addr] = CodeT{TParams: nf.Fun.TParams, RParams: nf.Fun.RParams, Params: params}
	}
	return m
}

// Run steps the machine until halt, an error, or the fuel limit.
func (m *Machine) Run(fuel int) (Value, error) {
	for !m.Halted {
		if fuel <= 0 {
			return nil, ErrFuel
		}
		fuel--
		if err := m.Step(); err != nil {
			return nil, err
		}
	}
	return m.Result, nil
}

// RunInt runs the machine and requires an integer result.
func (m *Machine) RunInt(fuel int) (int, error) {
	v, err := m.Run(fuel)
	if err != nil {
		return 0, err
	}
	n, ok := v.(Num)
	if !ok {
		return 0, fmt.Errorf("gclang: halt with non-integer %s", v)
	}
	return n.N, nil
}

func stuck(e Term, format string, args ...any) error {
	return fmt.Errorf("%w: %s: in %s", ErrStuck, fmt.Sprintf(format, args...), e)
}

// PendingCall reports the code address about to be invoked when the current
// term is a call whose head is an address. It allocates nothing; run loops
// use it to count collector entries.
func (m *Machine) PendingCall() (regions.Addr, bool) {
	if app, ok := m.Term.(AppT); ok {
		if a, ok := app.Fn.(AddrV); ok {
			return a.Addr, true
		}
	}
	return regions.Addr{}, false
}

// Step performs one machine transition. An error leaves the machine state
// unchanged: rules validate their side conditions before applying memory
// effects, so m.Term, m.Steps, and the trace stay consistent. (The only
// bookkeeping touched before an error can surface is the Gets counter on a
// call whose fetched cell then fails validation.)
func (m *Machine) Step() error {
	if m.Halted {
		return errors.New("gclang: step after halt")
	}
	before := m.Term
	if m.Event != nil {
		m.ev.Kind = StepNone
	}
	next, err := m.step(m.Term)
	if err != nil {
		return err
	}
	m.Term = next
	m.Steps++
	if m.Trace != nil {
		m.Trace(m, before)
	}
	if m.Event != nil && m.ev.Kind != StepNone {
		m.ev.Step = m.Steps
		m.Event(m.ev)
	}
	return nil
}

func (m *Machine) step(e Term) (Term, error) {
	switch e := e.(type) {
	case HaltT:
		m.Halted = true
		m.Result = e.V
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepHalt}
		}
		return e, nil
	case AppT:
		return m.stepApp(e)
	case LetT:
		v, err := m.stepOp(e.Op)
		if err != nil {
			return nil, fmt.Errorf("%w: in %s", err, e.Op)
		}
		return (&Subst{Vals: map[names.Name]Value{e.X: v}, Closed: true}).Term(e.Body), nil
	case IfGCT:
		rn, ok := e.R.(RName)
		if !ok {
			return nil, stuck(e, "ifgc on region variable %s", e.R)
		}
		if m.Mem.Full(rn.Name) {
			return e.Full, nil
		}
		return e.Else, nil
	case OpenTagT:
		pk, ok := e.V.(PackTag)
		if !ok {
			return nil, stuck(e, "open of non-package %s", e.V)
		}
		s := &Subst{
			Tags:   map[names.Name]tags.Tag{e.T: pk.Tag},
			Vals:   map[names.Name]Value{e.X: pk.Val},
			Closed: true,
		}
		return s.Term(e.Body), nil
	case OpenAlphaT:
		pk, ok := e.V.(PackAlpha)
		if !ok {
			return nil, stuck(e, "open of non-package %s", e.V)
		}
		s := &Subst{
			Types:  map[names.Name]Type{e.A: pk.Hidden},
			Vals:   map[names.Name]Value{e.X: pk.Val},
			Closed: true,
		}
		return s.Term(e.Body), nil
	case LetRegionT:
		nu := m.Mem.NewRegion()
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepNewRegion, Addr: regions.Addr{Region: nu}}
		}
		return (&Subst{Regs: map[names.Name]Region{e.R: RName{Name: nu}}, Closed: true}).Term(e.Body), nil
	case OnlyT:
		keep := make([]regions.Name, 0, len(e.Delta))
		keepSet := map[regions.Name]bool{}
		for _, r := range e.Delta {
			rn, ok := r.(RName)
			if !ok {
				return nil, stuck(e, "only with region variable %s", r)
			}
			keep = append(keep, rn.Name)
			keepSet[rn.Name] = true
		}
		if err := m.Mem.Only(keep); err != nil {
			return nil, stuck(e, "%v", err)
		}
		if m.Ghost {
			m.Psi = m.Psi.Restrict(keepSet)
		}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepOnly}
		}
		return e.Body, nil
	case TypecaseT:
		return m.stepTypecase(e)
	case IfLeftT:
		switch v := e.V.(type) {
		case InlV:
			return (&Subst{Vals: map[names.Name]Value{e.X: v}, Closed: true}).Term(e.L), nil
		case InrV:
			// Note: Fig. 5's printed rule sends inr to e_l; that is a typo
			// in the paper (the typing rule gives x type σ2 in e_r).
			return (&Subst{Vals: map[names.Name]Value{e.X: v}, Closed: true}).Term(e.R), nil
		default:
			return nil, stuck(e, "ifleft on untagged value %s", e.V)
		}
	case SetT:
		dst, ok := e.Dst.(AddrV)
		if !ok {
			return nil, stuck(e, "set destination %s is not an address", e.Dst)
		}
		if err := m.Mem.Set(dst.Addr, m.Pool.Encode(e.Src)); err != nil {
			return nil, stuck(e, "%v", err)
		}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepSet, Addr: dst.Addr}
		}
		return e.Body, nil
	case WidenT:
		// Operationally a no-op (§7.1): the cast re-views memory.
		if m.Ghost {
			from, ok1 := e.From.(RName)
			to, ok2 := e.To.(RName)
			if !ok1 || !ok2 {
				return nil, stuck(e, "widen with unresolved regions")
			}
			if err := m.widenGhost(from.Name, to.Name); err != nil {
				return nil, err
			}
		}
		return (&Subst{Vals: map[names.Name]Value{e.X: e.V}, Closed: true}).Term(e.Body), nil
	case OpenRegionT:
		pk, ok := e.V.(PackRegion)
		if !ok {
			return nil, stuck(e, "open of non-region-package %s", e.V)
		}
		s := &Subst{
			Regs:   map[names.Name]Region{e.R: pk.R},
			Vals:   map[names.Name]Value{e.X: pk.Val},
			Closed: true,
		}
		return s.Term(e.Body), nil
	case IfRegT:
		n1, ok1 := e.R1.(RName)
		n2, ok2 := e.R2.(RName)
		if !ok1 || !ok2 {
			return nil, stuck(e, "ifreg on region variables")
		}
		if n1 == n2 {
			return e.Then, nil
		}
		return e.Else, nil
	case If0T:
		n, ok := e.V.(Num)
		if !ok {
			return nil, stuck(e, "if0 on non-integer %s", e.V)
		}
		if n.N == 0 {
			return e.Then, nil
		}
		return e.Else, nil
	default:
		return nil, stuck(e, "no rule for %T", e)
	}
}

// stepApp implements function invocation: translucent heads first restore
// their recorded tags, then the code block is fetched from memory and its
// binders are instantiated.
func (m *Machine) stepApp(e AppT) (Term, error) {
	if ta, ok := e.Fn.(TAppV); ok {
		if len(e.Tags) != 0 || len(e.Rs) != 0 {
			return nil, stuck(e, "translucent call with extra tags or regions")
		}
		return AppT{Fn: ta.Val, Tags: ta.Tags, Rs: ta.Rs, Args: e.Args}, nil
	}
	addr, ok := e.Fn.(AddrV)
	if !ok {
		return nil, stuck(e, "call of non-address %s", e.Fn)
	}
	cell, err := m.Mem.Get(addr.Addr)
	if err != nil {
		return nil, stuck(e, "%v", err)
	}
	lam, ok := LamV{}, false
	if cell.Tag == CellLam {
		lam, ok = m.Pool.lamAt(cell.A)
	}
	if !ok {
		return nil, stuck(e, "call of non-code cell %s", addr.Addr)
	}
	if len(e.Tags) != len(lam.TParams) || len(e.Rs) != len(lam.RParams) || len(e.Args) != len(lam.Params) {
		return nil, stuck(e, "arity mismatch calling %s", addr.Addr)
	}
	if m.Event != nil {
		m.ev = StepEvent{Kind: StepCall, Addr: addr.Addr}
	}
	s := &Subst{
		Tags:   map[names.Name]tags.Tag{},
		Regs:   map[names.Name]Region{},
		Vals:   map[names.Name]Value{},
		Closed: true,
	}
	for i, tp := range lam.TParams {
		s.Tags[tp.Name] = e.Tags[i]
	}
	for i, r := range lam.RParams {
		s.Regs[r] = e.Rs[i]
	}
	for i, p := range lam.Params {
		s.Vals[p.Name] = e.Args[i]
	}
	return s.Term(lam.Body), nil
}

func (m *Machine) stepOp(op Op) (Value, error) {
	switch op := op.(type) {
	case ValOp:
		return op.V, nil
	case ProjOp:
		p, ok := op.V.(PairV)
		if !ok {
			return nil, fmt.Errorf("%w: projection from non-pair %s", ErrStuck, op.V)
		}
		if op.I == 1 {
			return p.L, nil
		}
		return p.R, nil
	case PutOp:
		rn, ok := op.R.(RName)
		if !ok {
			return nil, fmt.Errorf("%w: put into region variable %s", ErrStuck, op.R)
		}
		if m.Ghost && op.Anno == nil {
			// Validated before the Put: an erroring step must not leave a
			// partial memory effect behind (no step is counted and the trace
			// never fires, so m.Term and the counters must stay untouched).
			return nil, fmt.Errorf("gclang: ghost mode requires elaborated puts (missing annotation)")
		}
		addr, err := m.Mem.Put(rn.Name, m.Pool.Encode(op.V))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrStuck, err)
		}
		if m.Ghost {
			m.Psi[addr] = op.Anno
		}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepPut, Addr: addr, Words: ValueWords(op.V)}
		}
		return AddrV{Addr: addr}, nil
	case GetOp:
		a, ok := op.V.(AddrV)
		if !ok {
			return nil, fmt.Errorf("%w: get from non-address %s", ErrStuck, op.V)
		}
		cell, err := m.Mem.Get(a.Addr)
		if err != nil {
			return nil, err
		}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepGet, Addr: a.Addr}
		}
		return m.Pool.Decode(cell), nil
	case StripOp:
		switch v := op.V.(type) {
		case InlV:
			return v.Val, nil
		case InrV:
			return v.Val, nil
		default:
			return nil, fmt.Errorf("%w: strip of untagged value %s", ErrStuck, op.V)
		}
	case ArithOp:
		l, lok := op.L.(Num)
		r, rok := op.R.(Num)
		if !lok || !rok {
			return nil, fmt.Errorf("%w: arithmetic on non-integers", ErrStuck)
		}
		switch op.Kind {
		case Add:
			return Num{N: l.N + r.N}, nil
		case Sub:
			return Num{N: l.N - r.N}, nil
		case Mul:
			return Num{N: l.N * r.N}, nil
		default:
			return nil, fmt.Errorf("%w: unknown operator", ErrStuck)
		}
	default:
		return nil, fmt.Errorf("%w: unknown op %T", ErrStuck, op)
	}
}

// stepTypecase dispatches on the β-normal form of the scrutinee tag
// (Fig. 5's typecase rules collapse tag reduction into one step here).
func (m *Machine) stepTypecase(e TypecaseT) (Term, error) {
	nf, err := tags.Normalize(e.Tag)
	if err != nil {
		return nil, stuck(e, "%v", err)
	}
	switch t := nf.(type) {
	case tags.Int:
		return e.IntArm, nil
	case tags.Code:
		if len(t.Args) != 1 {
			return nil, stuck(e, "typecase on %d-ary code tag %s", len(t.Args), nf)
		}
		return (&Subst{Tags: map[names.Name]tags.Tag{e.TL: t.Args[0]}, Closed: true}).Term(e.LamArm), nil
	case tags.Prod:
		return (&Subst{Tags: map[names.Name]tags.Tag{e.T1: t.L, e.T2: t.R}, Closed: true}).Term(e.ProdArm), nil
	case tags.Exist:
		return (&Subst{Tags: map[names.Name]tags.Tag{e.Te: tags.Lam{Param: t.Bound, Body: t.Body}}, Closed: true}).Term(e.ExistArm), nil
	default:
		return nil, stuck(e, "typecase on open tag %s", nf)
	}
}
