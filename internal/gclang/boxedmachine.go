package gclang

import (
	"errors"
	"fmt"

	"psgc/internal/names"
	"psgc/internal/regions"
	"psgc/internal/tags"
)

// BoxedEnvMachine is the pre-packing environment machine, preserved
// verbatim over regions.Store[Value]: every heap cell is an
// interface-boxed Value, so every Put allocates on the host Go heap and
// the host collector scans the slab. It exists only as the measurement
// baseline for the packed-cell representation (BENCH_9's boxed-vs-packed
// rows), exactly as the legacy string-keyed store was kept as the PR 7
// baseline — it is reachable through Compiled.RunBoxed, never through the
// service, and the chaos fault points are not wired into it.
//
// Apart from the cell representation it is the same machine as EnvMachine
// (same step rules, same events, same counters); see that type's comment
// for the design. Keep the two in lockstep when touching step rules.
type BoxedEnvMachine struct {
	Dialect Dialect
	Mem     regions.Store[Value]

	// Ctrl is the current control term: a subterm of the loaded program (or
	// of a code block), interpreted relative to the environment.
	Ctrl Term

	// Steps counts machine transitions taken so far.
	Steps int

	// Halted and Result are set once the program reaches halt v.
	Halted bool
	Result Value

	// Event, if non-nil, is called after every classified step with a
	// fixed-size StepEvent, exactly as Machine.Event is (see events.go).
	Event func(StepEvent)

	// ev is the scratch event the step rules fill when Event is set.
	ev StepEvent

	// envVals is the term-variable namespace; the three syntax namespaces
	// and the shadow stacks live in the embedded resolver.
	envVals map[names.Name]Value

	resolver

	// Scratch buffers reused across calls for pre-clear operand resolution.
	scratchTags  []tags.Tag
	scratchRegs  []Region
	scratchVals  []Value
	scratchNames []regions.Name
}

// NewBoxedEnvMachine loads a program into a fresh map-backed boxed memory
// with the given region capacity.
func NewBoxedEnvMachine(d Dialect, p Program, capacity int) *BoxedEnvMachine {
	return NewBoxedEnvMachineOn(regions.BackendMap, d, p, capacity)
}

// NewBoxedEnvMachineOn is NewBoxedEnvMachine over the selected memory
// backend.
func NewBoxedEnvMachineOn(b regions.Backend, d Dialect, p Program, capacity int) *BoxedEnvMachine {
	m := &BoxedEnvMachine{
		Dialect: d,
		Mem:     regions.NewStore[Value](b, capacity),
		Ctrl:    p.Main,
		envVals: map[names.Name]Value{},
	}
	m.initResolver()
	for i, nf := range p.Code {
		addr, err := m.Mem.Put(regions.CD, nf.Fun)
		if err != nil || addr.Off != i {
			panic(fmt.Sprintf("gclang: code install failed: %v", err))
		}
	}
	return m
}

// Run steps the machine until halt, an error, or the fuel limit.
func (m *BoxedEnvMachine) Run(fuel int) (Value, error) {
	for !m.Halted {
		if fuel <= 0 {
			return nil, ErrFuel
		}
		fuel--
		if err := m.Step(); err != nil {
			return nil, err
		}
	}
	return m.Result, nil
}

// RunInt runs the machine and requires an integer result.
func (m *BoxedEnvMachine) RunInt(fuel int) (int, error) {
	v, err := m.Run(fuel)
	if err != nil {
		return 0, err
	}
	n, ok := v.(Num)
	if !ok {
		return 0, fmt.Errorf("gclang: halt with non-integer %s", v)
	}
	return n.N, nil
}

// PendingCall reports the code address about to be invoked when the control
// term is a call whose head is (or is bound to) an address. It allocates
// nothing; run loops use it to count collector entries.
func (m *BoxedEnvMachine) PendingCall() (regions.Addr, bool) {
	app, ok := m.Ctrl.(AppT)
	if !ok {
		return regions.Addr{}, false
	}
	fn := app.Fn
	if v, ok := fn.(Var); ok {
		if b, ok := m.envVals[v.Name]; ok {
			fn = b
		}
	}
	if a, ok := fn.(AddrV); ok {
		return a.Addr, true
	}
	return regions.Addr{}, false
}

// Step performs one machine transition. Like Machine.Step, an error leaves
// the machine state unchanged: rules validate their side conditions before
// applying memory effects.
func (m *BoxedEnvMachine) Step() error {
	if m.Halted {
		return errors.New("gclang: step after halt")
	}
	if m.Event != nil {
		m.ev.Kind = StepNone
	}
	next, err := m.step(m.Ctrl)
	if err != nil {
		return err
	}
	m.Ctrl = next
	m.Steps++
	if m.Event != nil && m.ev.Kind != StepNone {
		m.ev.Step = m.Steps
		m.Event(m.ev)
	}
	return nil
}

// step returns the next control term.
func (m *BoxedEnvMachine) step(e Term) (Term, error) {
	switch e := e.(type) {
	case HaltT:
		v := m.resolveValue(e.V)
		m.Halted = true
		m.Result = v
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepHalt}
		}
		return e, nil
	case AppT:
		return m.stepApp(e)
	case LetT:
		v, err := m.stepOp(e.Op)
		if err != nil {
			return nil, fmt.Errorf("%w: in %s", err, e.Op)
		}
		m.envVals[e.X] = v
		return e.Body, nil
	case IfGCT:
		rn, ok := m.resolveRegion(e.R).(RName)
		if !ok {
			return nil, stuck(e, "ifgc on region variable %s", e.R)
		}
		if m.Mem.Full(rn.Name) {
			return e.Full, nil
		}
		return e.Else, nil
	case OpenTagT:
		pk, ok := m.resolveValue(e.V).(PackTag)
		if !ok {
			return nil, stuck(e, "open of non-package %s", e.V)
		}
		m.envTags[e.T] = pk.Tag
		m.envVals[e.X] = pk.Val
		return e.Body, nil
	case OpenAlphaT:
		pk, ok := m.resolveValue(e.V).(PackAlpha)
		if !ok {
			return nil, stuck(e, "open of non-package %s", e.V)
		}
		m.envTyps[e.A] = pk.Hidden
		m.envVals[e.X] = pk.Val
		return e.Body, nil
	case LetRegionT:
		nu := m.Mem.NewRegion()
		m.envRegs[e.R] = RName{Name: nu}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepNewRegion, Addr: regions.Addr{Region: nu}}
		}
		return e.Body, nil
	case OnlyT:
		delta, _ := m.regionSlice(e.Delta)
		keep := m.scratchNames[:0]
		for _, r := range delta {
			rn, ok := r.(RName)
			if !ok {
				return nil, stuck(e, "only with region variable %s", r)
			}
			keep = append(keep, rn.Name)
		}
		m.scratchNames = keep
		if err := m.Mem.Only(keep); err != nil {
			return nil, stuck(e, "%v", err)
		}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepOnly}
		}
		return e.Body, nil
	case TypecaseT:
		return m.stepTypecase(e)
	case IfLeftT:
		switch v := m.resolveValue(e.V).(type) {
		case InlV:
			m.envVals[e.X] = v
			return e.L, nil
		case InrV:
			m.envVals[e.X] = v
			return e.R, nil
		default:
			return nil, stuck(e, "ifleft on untagged value %s", e.V)
		}
	case SetT:
		dst, ok := m.resolveValue(e.Dst).(AddrV)
		if !ok {
			return nil, stuck(e, "set destination %s is not an address", e.Dst)
		}
		src := m.resolveValue(e.Src)
		if err := m.Mem.Set(dst.Addr, src); err != nil {
			return nil, stuck(e, "%v", err)
		}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepSet, Addr: dst.Addr}
		}
		return e.Body, nil
	case WidenT:
		// Operationally a no-op (§7.1): the cast re-views memory. Ghost Ψ
		// maintenance lives in the substitution machine only.
		m.envVals[e.X] = m.resolveValue(e.V)
		return e.Body, nil
	case OpenRegionT:
		pk, ok := m.resolveValue(e.V).(PackRegion)
		if !ok {
			return nil, stuck(e, "open of non-region-package %s", e.V)
		}
		m.envRegs[e.R] = pk.R
		m.envVals[e.X] = pk.Val
		return e.Body, nil
	case IfRegT:
		n1, ok1 := m.resolveRegion(e.R1).(RName)
		n2, ok2 := m.resolveRegion(e.R2).(RName)
		if !ok1 || !ok2 {
			return nil, stuck(e, "ifreg on region variables")
		}
		if n1 == n2 {
			return e.Then, nil
		}
		return e.Else, nil
	case If0T:
		n, ok := m.resolveValue(e.V).(Num)
		if !ok {
			return nil, stuck(e, "if0 on non-integer %s", e.V)
		}
		if n.N == 0 {
			return e.Then, nil
		}
		return e.Else, nil
	default:
		return nil, stuck(e, "no rule for %T", e)
	}
}

// stepApp mirrors Machine.stepApp: translucent heads first restore their
// recorded tags in a step of their own, then the code block is fetched from
// memory and its binders are instantiated. The call protocol resolves every
// operand against the current environment first, then clears the
// environment and binds the parameters — code blocks are closed, so nothing
// else can be referenced from the body.
func (m *BoxedEnvMachine) stepApp(e AppT) (Term, error) {
	fn := m.resolveValue(e.Fn)
	if ta, ok := fn.(TAppV); ok {
		if len(e.Tags) != 0 || len(e.Rs) != 0 {
			return nil, stuck(e, "translucent call with extra tags or regions")
		}
		// The rewritten call is fully resolved, so re-resolving it on the
		// next step is the identity (and allocation-free).
		args, _ := m.valueSlice(e.Args)
		return AppT{Fn: ta.Val, Tags: ta.Tags, Rs: ta.Rs, Args: args}, nil
	}
	addr, ok := fn.(AddrV)
	if !ok {
		return nil, stuck(e, "call of non-address %s", fn)
	}
	cell, err := m.Mem.Get(addr.Addr)
	if err != nil {
		return nil, stuck(e, "%v", err)
	}
	lam, ok := cell.(LamV)
	if !ok {
		return nil, stuck(e, "call of non-code cell %s", addr.Addr)
	}
	if len(e.Tags) != len(lam.TParams) || len(e.Rs) != len(lam.RParams) || len(e.Args) != len(lam.Params) {
		return nil, stuck(e, "arity mismatch calling %s", addr.Addr)
	}
	if m.Event != nil {
		m.ev = StepEvent{Kind: StepCall, Addr: addr.Addr}
	}
	callTags := m.scratchTags[:0]
	for _, t := range e.Tags {
		rt, _ := m.tag(t)
		callTags = append(callTags, rt)
	}
	callRegs := m.scratchRegs[:0]
	for _, r := range e.Rs {
		rr, _ := m.region(r)
		callRegs = append(callRegs, rr)
	}
	callArgs := m.scratchVals[:0]
	for _, a := range e.Args {
		rv, _ := m.value(a)
		callArgs = append(callArgs, rv)
	}
	m.scratchTags, m.scratchRegs, m.scratchVals = callTags, callRegs, callArgs
	clear(m.envVals)
	clear(m.envTags)
	clear(m.envRegs)
	clear(m.envTyps)
	for i, tp := range lam.TParams {
		m.envTags[tp.Name] = callTags[i]
	}
	for i, r := range lam.RParams {
		m.envRegs[r] = callRegs[i]
	}
	for i, p := range lam.Params {
		m.envVals[p.Name] = callArgs[i]
	}
	return lam.Body, nil
}

// stepOp evaluates a let-bound operation, returning the bound value.
func (m *BoxedEnvMachine) stepOp(op Op) (Value, error) {
	switch op := op.(type) {
	case ValOp:
		v, _ := m.value(op.V)
		return v, nil
	case ProjOp:
		v, _ := m.value(op.V)
		p, ok := v.(PairV)
		if !ok {
			return nil, fmt.Errorf("%w: projection from non-pair %s", ErrStuck, v)
		}
		if op.I == 1 {
			return p.L, nil
		}
		return p.R, nil
	case PutOp:
		rn, ok := m.resolveRegion(op.R).(RName)
		if !ok {
			return nil, fmt.Errorf("%w: put into region variable %s", ErrStuck, op.R)
		}
		v, _ := m.value(op.V)
		addr, err := m.Mem.Put(rn.Name, v)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrStuck, err)
		}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepPut, Addr: addr, Words: ValueWords(v)}
		}
		return AddrV{Addr: addr}, nil
	case GetOp:
		v, _ := m.value(op.V)
		a, ok := v.(AddrV)
		if !ok {
			return nil, fmt.Errorf("%w: get from non-address %s", ErrStuck, v)
		}
		cell, err := m.Mem.Get(a.Addr)
		if err != nil {
			return nil, err
		}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepGet, Addr: a.Addr}
		}
		return cell, nil
	case StripOp:
		switch v := m.resolveValue(op.V).(type) {
		case InlV:
			return v.Val, nil
		case InrV:
			return v.Val, nil
		default:
			return nil, fmt.Errorf("%w: strip of untagged value %s", ErrStuck, v)
		}
	case ArithOp:
		lv, _ := m.value(op.L)
		rv, _ := m.value(op.R)
		l, lok := lv.(Num)
		r, rok := rv.(Num)
		if !lok || !rok {
			return nil, fmt.Errorf("%w: arithmetic on non-integers", ErrStuck)
		}
		switch op.Kind {
		case Add:
			return Num{N: l.N + r.N}, nil
		case Sub:
			return Num{N: l.N - r.N}, nil
		case Mul:
			return Num{N: l.N * r.N}, nil
		default:
			return nil, fmt.Errorf("%w: unknown operator", ErrStuck)
		}
	default:
		return nil, fmt.Errorf("%w: unknown op %T", ErrStuck, op)
	}
}

// stepTypecase dispatches on the β-normal form of the resolved scrutinee,
// exactly as Machine.stepTypecase does on the substituted one.
func (m *BoxedEnvMachine) stepTypecase(e TypecaseT) (Term, error) {
	nf, err := tags.Normalize(m.resolveTag(e.Tag))
	if err != nil {
		return nil, stuck(e, "%v", err)
	}
	switch t := nf.(type) {
	case tags.Int:
		return e.IntArm, nil
	case tags.Code:
		if len(t.Args) != 1 {
			return nil, stuck(e, "typecase on %d-ary code tag %s", len(t.Args), nf)
		}
		m.envTags[e.TL] = t.Args[0]
		return e.LamArm, nil
	case tags.Prod:
		m.envTags[e.T1] = t.L
		m.envTags[e.T2] = t.R
		return e.ProdArm, nil
	case tags.Exist:
		m.envTags[e.Te] = tags.Lam{Param: t.Bound, Body: t.Body}
		return e.ExistArm, nil
	default:
		return nil, stuck(e, "typecase on open tag %s", nf)
	}
}

func (m *BoxedEnvMachine) resolveValue(v Value) Value {
	out, _ := m.value(v)
	return out
}

// value resolves a value against the environment, returning the resolved
// form plus a changed flag; unchanged subtrees are returned as-is.
func (m *BoxedEnvMachine) value(v Value) (Value, bool) {
	switch v := v.(type) {
	case Num:
		return v, false
	case AddrV:
		return v, false
	case Var:
		// Term-variable binders never occur inside values (LamV resolves
		// through substView), so no shadow stack exists for this namespace.
		if r, ok := m.envVals[v.Name]; ok {
			return r, true
		}
		return v, false
	case PairV:
		l, cl := m.value(v.L)
		r, cr := m.value(v.R)
		if !cl && !cr {
			return v, false
		}
		return PairV{L: l, R: r}, true
	case PackTag:
		tg, ct := m.tag(v.Tag)
		val, cv := m.value(v.Val)
		m.shTags = append(m.shTags, v.Bound)
		body, cb := m.typ(v.Body)
		m.shTags = m.shTags[:len(m.shTags)-1]
		if !ct && !cv && !cb {
			return v, false
		}
		return PackTag{Bound: v.Bound, Kind: v.Kind, Tag: tg, Val: val, Body: body}, true
	case PackAlpha:
		delta, cd := m.regionSlice(v.Delta)
		hidden, ch := m.typ(v.Hidden)
		val, cv := m.value(v.Val)
		m.shTyps = append(m.shTyps, v.Bound)
		body, cb := m.typ(v.Body)
		m.shTyps = m.shTyps[:len(m.shTyps)-1]
		if !cd && !ch && !cv && !cb {
			return v, false
		}
		return PackAlpha{Bound: v.Bound, Delta: delta, Hidden: hidden, Val: val, Body: body}, true
	case PackRegion:
		delta, cd := m.regionSlice(v.Delta)
		r, cr := m.region(v.R)
		val, cv := m.value(v.Val)
		m.shRegs = append(m.shRegs, v.Bound)
		body, cb := m.typ(v.Body)
		m.shRegs = m.shRegs[:len(m.shRegs)-1]
		if !cd && !cr && !cv && !cb {
			return v, false
		}
		return PackRegion{Bound: v.Bound, Delta: delta, R: r, Val: val, Body: body}, true
	case TAppV:
		val, cv := m.value(v.Val)
		ts, ct := m.tagSlice(v.Tags)
		rs, cr := m.regionSlice(v.Rs)
		if !cv && !ct && !cr {
			return v, false
		}
		return TAppV{Val: val, Tags: ts, Rs: rs}, true
	case LamV:
		// Rare: code blocks live in cd and are closed; a literal block only
		// flows through the environment when a program embeds one in a value
		// position. Delegate its binder structure to the oracle substitution.
		return m.substView().Value(v), true
	case InlV:
		val, cv := m.value(v.Val)
		if !cv {
			return v, false
		}
		return InlV{Val: val}, true
	case InrV:
		val, cv := m.value(v.Val)
		if !cv {
			return v, false
		}
		return InrV{Val: val}, true
	default:
		panic(fmt.Sprintf("gclang: unknown value %T", v))
	}
}

// substView exposes the current environment as a closed simultaneous
// substitution for the rare LamV case. Safe to share the maps: a closed
// Subst never mutates them (drop copies).
func (m *BoxedEnvMachine) substView() *Subst {
	if len(m.shTags) != 0 || len(m.shRegs) != 0 || len(m.shTyps) != 0 {
		// Values never occur inside types, so a LamV is never resolved under
		// a shadowing binder; see the resolver ordering in value().
		panic("gclang: lam resolution under binder")
	}
	return &Subst{Vals: m.envVals, Tags: m.envTags, Regs: m.envRegs, Types: m.envTyps, Closed: true}
}

func (m *BoxedEnvMachine) valueSlice(vs []Value) ([]Value, bool) {
	var out []Value
	for i, v := range vs {
		rv, cv := m.value(v)
		if cv && out == nil {
			out = append([]Value(nil), vs...)
		}
		if out != nil {
			out[i] = rv
		}
	}
	if out == nil {
		return vs, false
	}
	return out, true
}
