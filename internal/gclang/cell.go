package gclang

import (
	"fmt"

	"psgc/internal/kinds"
	"psgc/internal/names"
	"psgc/internal/regions"
	"psgc/internal/tags"
)

// This file is the unboxed heap representation. PR 7's honest finding was
// that the flat arena's 3× win on the isolated op trace all but vanished
// end-to-end because heap cells were interface-boxed gclang.Values: every
// Put allocated on the host Go heap, and the host collector — not our
// substrate — dominated the run. The fix is the one §8 of the paper
// gestures at and every practical tag-checked runtime (the Fred runtime,
// the Hawblitzel–Petrank verified collectors) actually ships: cells become
// small fixed-size tagged structs with no pointers, so a region is a flat
// []Cell the host GC never scans, and the Cheney scavenge is a pure
// memmove-shaped copy.
//
// A Cell packs the λGC value forms as a tag word plus two payload words:
//
//	CellNum        A = the integer (int64 bits)
//	CellAddr       A = region name, B = offset (a logical ν.ℓ pair)
//	CellPair       A, B = packed words for the two components
//	CellInl/Inr    A = packed word for the payload
//	CellLam        A = index into the lams pool
//	CellVar        A = index into the vars pool (stuck programs only)
//	CellPackTag    A = index into the packTags descriptors, B = payload word
//	CellPackAlpha  A = index into the packAlphas descriptors, B = payload word
//	CellPackRegion A = index into the packRegions descriptors, B = payload word
//	CellTApp       A = index into the tapps descriptors, B = payload word
//
// The syntax-bearing forms (code blocks, existential packages, translucent
// applications) cannot be flattened into two words — they carry tags,
// types, and binder names — so that syntax lives in typed side pools owned
// by the machine, and the cell holds a pool index. Crucially the package
// forms split per-value state from per-type state: the payload travels in
// the cell's own B word (a packed word, like a pair component), while the
// pool entry is a *descriptor* holding only the resolved annotation
// (binder, witness, body type). Descriptors depend on nothing but the
// program text and the type-level environment, so the machine memoizes
// them (see packmemo.go) and thousands of packages minted by one collector
// loop share one descriptor — pool growth tracks distinct annotations, not
// allocation volume. Pools are append-only for the lifetime of a run and
// reclaimed wholesale with the machine, which is the region discipline
// applied to the metadata itself: the heap proper stays pointer-free, and
// the pool handles are just more bit patterns.
//
// Packed words (the A/B payloads of pairs and sums) carry their own 2-bit
// tag in the low bits so a pair of numbers or addresses costs no pool
// traffic at all:
//
//	wordKindNum   signed 62-bit integer, inline
//	wordKindAddr  region (32 bits) at bit 2, offset (30 bits) at bit 34
//	wordKindCell  index into the cells pool (nested or out-of-range forms)
//
// Decoding is defensive throughout: the chaos suite's machine.corrupt
// fault flips tag bits in stored cells, so every pool dereference is
// bounds-checked and an invalid handle decodes to a poison variable (which
// sticks the machine or diverges from the oracle) rather than panicking.

// CellTag discriminates the packed forms a heap cell can take. The zero
// value CellFree marks an unallocated or zeroed slab slot.
type CellTag uint8

const (
	CellFree CellTag = iota
	CellNum
	CellAddr
	CellPair
	CellInl
	CellInr
	CellLam
	CellVar
	CellPackTag
	CellPackAlpha
	CellPackRegion
	CellTApp
)

// Cell is one packed heap cell: a tag and two payload words, no pointers.
// Both machines run over regions.Store[Cell]; Values exist only at the
// machine↔term boundary (halt results, co-check compares, ghost
// re-annotation, well-formedness checks).
type Cell struct {
	Tag  CellTag
	A, B uint64
}

// NumCell packs an integer.
func NumCell(n int) Cell { return Cell{Tag: CellNum, A: uint64(int64(n))} }

// AddrCell packs a logical address ν.ℓ.
func AddrCell(a regions.Addr) Cell {
	return Cell{Tag: CellAddr, A: uint64(a.Region), B: uint64(int64(a.Off))}
}

// Num unpacks a CellNum payload.
func (c Cell) Num() int { return int(int64(c.A)) }

// Addr unpacks a CellAddr payload.
func (c Cell) Addr() regions.Addr {
	return regions.Addr{Region: regions.Name(uint32(c.A)), Off: int(int64(c.B))}
}

// Packed-word tags (low 2 bits of a pair/sum payload word).
const (
	wordKindNum  uint64 = 0
	wordKindAddr uint64 = 1
	wordKindCell uint64 = 2
	wordKindMask uint64 = 3
)

// Inline-payload limits for packed words.
const (
	wordNumMax  = int64(1) << 61 // signed 62-bit inline integer range
	wordAddrReg = uint64(1) << 32
	wordAddrOff = uint64(1) << 30
)

// corruptVar is the poison an invalid pool handle decodes to. It is not a
// value any program can construct (the source pipeline never emits '#'
// names), so a corrupted cell either sticks the machine or shows up as a
// cell-by-cell mismatch against the oracle.
var corruptVar = Var{Name: "#corrupt"}

// PackTagDesc is the pooled descriptor of a PackTag package: everything
// but the payload, which travels in the cell's B word.
type PackTagDesc struct {
	Bound names.Name
	Kind  kinds.Kind
	Tag   tags.Tag
	Body  Type
}

// PackAlphaDesc is the pooled descriptor of a PackAlpha package.
type PackAlphaDesc struct {
	Bound  names.Name
	Delta  []Region
	Hidden Type
	Body   Type
}

// PackRegionDesc is the pooled descriptor of a PackRegion package.
type PackRegionDesc struct {
	Bound names.Name
	Delta []Region
	R     Region
	Body  Type
}

// TAppDesc is the pooled descriptor of a TAppV (translucent application).
type TAppDesc struct {
	Tags []tags.Tag
	Rs   []Region
}

// Pools holds the typed side pools backing one machine's packed cells.
// Each machine owns its own Pools — pool indices are machine-local, so the
// co-checker compares heaps by decoding each side through its own pools,
// never by comparing handles.
type Pools struct {
	cells       []Cell
	vars        []names.Name
	lams        []LamV
	packTags    []PackTagDesc
	packAlphas  []PackAlphaDesc
	packRegions []PackRegionDesc
	tapps       []TAppDesc
}

// NewPools returns empty pools.
func NewPools() *Pools { return &Pools{} }

// LamCell pools a code block and returns its handle cell.
func (p *Pools) LamCell(l LamV) Cell {
	idx := uint64(len(p.lams))
	p.lams = append(p.lams, l)
	return Cell{Tag: CellLam, A: idx}
}

// VarCell pools a variable name (stuck programs can store unresolved
// variables) and returns its handle cell.
func (p *Pools) VarCell(n names.Name) Cell {
	idx := uint64(len(p.vars))
	p.vars = append(p.vars, n)
	return Cell{Tag: CellVar, A: idx}
}

func (p *Pools) lamAt(idx uint64) (LamV, bool) {
	if idx < uint64(len(p.lams)) {
		return p.lams[idx], true
	}
	return LamV{}, false
}

func (p *Pools) packTagAt(idx uint64) (PackTagDesc, bool) {
	if idx < uint64(len(p.packTags)) {
		return p.packTags[idx], true
	}
	return PackTagDesc{}, false
}

func (p *Pools) packAlphaAt(idx uint64) (PackAlphaDesc, bool) {
	if idx < uint64(len(p.packAlphas)) {
		return p.packAlphas[idx], true
	}
	return PackAlphaDesc{}, false
}

func (p *Pools) packRegionAt(idx uint64) (PackRegionDesc, bool) {
	if idx < uint64(len(p.packRegions)) {
		return p.packRegions[idx], true
	}
	return PackRegionDesc{}, false
}

func (p *Pools) tappAt(idx uint64) (TAppDesc, bool) {
	if idx < uint64(len(p.tapps)) {
		return p.tapps[idx], true
	}
	return TAppDesc{}, false
}

// wordOf packs c into a payload word, re-inlining numbers and addresses
// that fit so the common cons cells (pairs of integers or of addresses)
// never touch the cells pool.
func (p *Pools) wordOf(c Cell) uint64 {
	switch c.Tag {
	case CellNum:
		if n := int64(c.A); n >= -wordNumMax && n < wordNumMax {
			return uint64(n)<<2 | wordKindNum
		}
	case CellAddr:
		if c.A < wordAddrReg && c.B < wordAddrOff {
			return wordKindAddr | c.A<<2 | c.B<<34
		}
	}
	idx := uint64(len(p.cells))
	p.cells = append(p.cells, c)
	return idx<<2 | wordKindCell
}

// cellOfWord unpacks a payload word back into a cell. An out-of-range pool
// index (only corruption produces one) yields the CellFree poison.
func (p *Pools) cellOfWord(w uint64) Cell {
	switch w & wordKindMask {
	case wordKindNum:
		return Cell{Tag: CellNum, A: uint64(int64(w) >> 2)}
	case wordKindAddr:
		return Cell{Tag: CellAddr, A: (w >> 2) & 0xFFFF_FFFF, B: w >> 34}
	case wordKindCell:
		if idx := w >> 2; idx < uint64(len(p.cells)) {
			return p.cells[idx]
		}
	}
	return Cell{}
}

// Encode packs a closed value. Nested structure spills into the pools;
// the returned cell is safe to store in any Store[Cell].
func (p *Pools) Encode(v Value) Cell {
	switch v := v.(type) {
	case Num:
		return NumCell(v.N)
	case AddrV:
		return AddrCell(v.Addr)
	case Var:
		return p.VarCell(v.Name)
	case PairV:
		return Cell{Tag: CellPair, A: p.wordOf(p.Encode(v.L)), B: p.wordOf(p.Encode(v.R))}
	case InlV:
		return Cell{Tag: CellInl, A: p.wordOf(p.Encode(v.Val))}
	case InrV:
		return Cell{Tag: CellInr, A: p.wordOf(p.Encode(v.Val))}
	case LamV:
		return p.LamCell(v)
	// In the pooled cases the nested Encode runs first: it may append to the
	// cells pool the payload word spills into, so pack the payload before
	// reading any pool length.
	case PackTag:
		w := p.wordOf(p.Encode(v.Val))
		idx := uint64(len(p.packTags))
		p.packTags = append(p.packTags, PackTagDesc{
			Bound: v.Bound, Kind: v.Kind, Tag: v.Tag, Body: v.Body,
		})
		return Cell{Tag: CellPackTag, A: idx, B: w}
	case PackAlpha:
		w := p.wordOf(p.Encode(v.Val))
		idx := uint64(len(p.packAlphas))
		p.packAlphas = append(p.packAlphas, PackAlphaDesc{
			Bound: v.Bound, Delta: v.Delta, Hidden: v.Hidden, Body: v.Body,
		})
		return Cell{Tag: CellPackAlpha, A: idx, B: w}
	case PackRegion:
		w := p.wordOf(p.Encode(v.Val))
		idx := uint64(len(p.packRegions))
		p.packRegions = append(p.packRegions, PackRegionDesc{
			Bound: v.Bound, Delta: v.Delta, R: v.R, Body: v.Body,
		})
		return Cell{Tag: CellPackRegion, A: idx, B: w}
	case TAppV:
		w := p.wordOf(p.Encode(v.Val))
		idx := uint64(len(p.tapps))
		p.tapps = append(p.tapps, TAppDesc{Tags: v.Tags, Rs: v.Rs})
		return Cell{Tag: CellTApp, A: idx, B: w}
	default:
		panic(fmt.Sprintf("gclang: cannot encode value %T", v))
	}
}

// Decode unpacks a cell back into the boxed value form. Decoding never
// panics: corrupted handles (chaos tag flips) decode to a poison variable
// so the damage surfaces as a stuck step or an oracle mismatch, exactly
// the failure mode the co-checker is there to catch.
func (p *Pools) Decode(c Cell) Value {
	switch c.Tag {
	case CellNum:
		return Num{N: c.Num()}
	case CellAddr:
		return AddrV{Addr: c.Addr()}
	case CellPair:
		return PairV{L: p.Decode(p.cellOfWord(c.A)), R: p.Decode(p.cellOfWord(c.B))}
	case CellInl:
		return InlV{Val: p.Decode(p.cellOfWord(c.A))}
	case CellInr:
		return InrV{Val: p.Decode(p.cellOfWord(c.A))}
	case CellVar:
		if c.A < uint64(len(p.vars)) {
			return Var{Name: p.vars[c.A]}
		}
	case CellLam:
		if l, ok := p.lamAt(c.A); ok {
			return l
		}
	case CellPackTag:
		if pk, ok := p.packTagAt(c.A); ok {
			return PackTag{Bound: pk.Bound, Kind: pk.Kind, Tag: pk.Tag, Val: p.Decode(p.cellOfWord(c.B)), Body: pk.Body}
		}
	case CellPackAlpha:
		if pk, ok := p.packAlphaAt(c.A); ok {
			return PackAlpha{Bound: pk.Bound, Delta: pk.Delta, Hidden: pk.Hidden, Val: p.Decode(p.cellOfWord(c.B)), Body: pk.Body}
		}
	case CellPackRegion:
		if pk, ok := p.packRegionAt(c.A); ok {
			return PackRegion{Bound: pk.Bound, Delta: pk.Delta, R: pk.R, Val: p.Decode(p.cellOfWord(c.B)), Body: pk.Body}
		}
	case CellTApp:
		if ta, ok := p.tappAt(c.A); ok {
			return TAppV{Val: p.Decode(p.cellOfWord(c.B)), Tags: ta.Tags, Rs: ta.Rs}
		}
	}
	return corruptVar
}

// CellWords is ValueWords over the packed form: for every cell,
// CellWords(c) == ValueWords(p.Decode(c)), so the StepEvent word
// accounting (and everything downstream: profiler survival deciles,
// timeline bytes) is identical between boxed and packed runs.
func (p *Pools) CellWords(c Cell) int {
	switch c.Tag {
	case CellPair:
		return p.wordWords(c.A) + p.wordWords(c.B)
	case CellInl, CellInr:
		return p.wordWords(c.A)
	case CellPackTag, CellPackAlpha, CellPackRegion, CellTApp:
		return p.wordWords(c.B)
	}
	return 1
}

func (p *Pools) wordWords(w uint64) int {
	if w&wordKindMask == wordKindCell {
		if idx := w >> 2; idx < uint64(len(p.cells)) {
			return p.CellWords(p.cells[idx])
		}
	}
	return 1
}
