package gclang

import (
	"errors"
	"fmt"
	"unsafe"

	"psgc/internal/fault"
	"psgc/internal/names"
	"psgc/internal/regions"
	"psgc/internal/tags"
)

// EnvMachine executes λGC terms under the same allocation semantics as
// Machine, but resolves variables through environments instead of rewriting
// the term with a substitution at every transition.
//
// The design exploits two facts about λGC:
//
//   - Terms never return (the language is CPS): control only descends into
//     subterms or jumps to a code block, so no binding made inside a block
//     is ever needed after control leaves its scope. The machine therefore
//     needs no continuation stack, and shadowing can overwrite: once a
//     binder rebinds a name, the outer binding is dead.
//
//   - The machine only ever substitutes closed payloads (Subst.Closed):
//     values, tags, regions, and types flowing through the environment have
//     no free names, so sequential substitution coincides with environment
//     lookup (innermost wins) and no capture is possible.
//
// Since PR 9 the machine is cell-native: memory is regions.Store[Cell] and
// the term-variable environment binds packed cells, not boxed Values (see
// cell.go). Values appear only at the term boundary — literals in the
// control term are packed on first resolution, and the halt result is
// unpacked once. This is what lets the flat arena's contiguity show
// end-to-end: a steady-state step touches no host-GC-visible allocation at
// all, where the boxed machine paid one interface box per Put.
//
// Bindings are resolved eagerly: every value, tag, region, or type entering
// the environment is fully resolved against the current environment first,
// so stored payloads are always closed. Only term bodies stay unresolved —
// they are the typechecked artifact; closures exist only at machine level.
//
// Code blocks are closed, so a call resets the environment to exactly the
// call's bindings: the maps are cleared (retaining their buckets) and the
// parameters rebound, giving steady-state allocation-free stepping.
//
// The EnvMachine is observationally equivalent to Machine: same memory
// effects in the same order, same step counts, same regions.Memory counters
// (TestEnvMachineAgreesWithSubst co-steps both). Ghost mode (Ψ maintenance)
// is not supported here; ghost runs use the substitution machine, which
// remains the semantic oracle.
type EnvMachine struct {
	Dialect Dialect
	Mem     regions.Store[Cell]

	// Pool holds the typed side pools this machine's packed cells index
	// into. Pool handles are machine-local: cells from one machine are
	// meaningless under another machine's pools.
	Pool *Pools

	// Ctrl is the current control term: a subterm of the loaded program (or
	// of a code block), interpreted relative to the environment.
	Ctrl Term

	// Steps counts machine transitions taken so far.
	Steps int

	// Halted and Result are set once the program reaches halt v. Result is
	// the decoded (boxed) value — the one place a finished run pays a
	// decode.
	Halted bool
	Result Value

	// Event, if non-nil, is called after every classified step with a
	// fixed-size StepEvent, exactly as Machine.Event is (see events.go).
	// This replaces the old Trace hook, which synthesized a resolved
	// pre-step term per step — an allocation cost that made tracing
	// opt-in. Emitting a StepEvent allocates nothing, so the hook stays
	// installed on every request.
	Event func(StepEvent)

	// ev is the scratch event the step rules fill when Event is set.
	ev StepEvent

	// envCells is the term-variable namespace, binding packed cells. The
	// syntax namespaces and shadow stacks live in the embedded resolver.
	// Overwrite-on-shadow is sound because CPS control never returns to an
	// outer scope (see the type comment).
	envCells map[names.Name]Cell

	resolver

	// packMemo caches resolved pack descriptors per pack literal in the
	// program text (see packmemo.go): a collector loop re-packs under the
	// same type-level environment thousands of times, and a hit skips
	// both annotation resolution and pool growth.
	packMemo map[unsafe.Pointer]*nodeMemo

	// Scratch buffers reused across calls for pre-clear operand resolution.
	scratchTags  []tags.Tag
	scratchRegs  []Region
	scratchCells []Cell
	scratchNames []regions.Name
}

// NewEnvMachine loads a program into a fresh map-backed memory with the
// given region capacity, installing code blocks in the cd region at
// offsets matching their indices exactly as NewMachine does.
func NewEnvMachine(d Dialect, p Program, capacity int) *EnvMachine {
	return NewEnvMachineOn(regions.BackendMap, d, p, capacity)
}

// NewEnvMachineOn is NewEnvMachine over the selected memory backend.
func NewEnvMachineOn(b regions.Backend, d Dialect, p Program, capacity int) *EnvMachine {
	m := &EnvMachine{
		Dialect:  d,
		Mem:      regions.NewStore[Cell](b, capacity),
		Pool:     NewPools(),
		Ctrl:     p.Main,
		envCells: map[names.Name]Cell{},
		packMemo: map[unsafe.Pointer]*nodeMemo{},
	}
	m.initResolver()
	for i, nf := range p.Code {
		addr, err := m.Mem.Put(regions.CD, m.Pool.LamCell(nf.Fun))
		if err != nil || addr.Off != i {
			panic(fmt.Sprintf("gclang: code install failed: %v", err))
		}
	}
	return m
}

// Run steps the machine until halt, an error, or the fuel limit.
func (m *EnvMachine) Run(fuel int) (Value, error) {
	for !m.Halted {
		if fuel <= 0 {
			return nil, ErrFuel
		}
		fuel--
		if err := m.Step(); err != nil {
			return nil, err
		}
	}
	return m.Result, nil
}

// RunInt runs the machine and requires an integer result.
func (m *EnvMachine) RunInt(fuel int) (int, error) {
	v, err := m.Run(fuel)
	if err != nil {
		return 0, err
	}
	n, ok := v.(Num)
	if !ok {
		return 0, fmt.Errorf("gclang: halt with non-integer %s", v)
	}
	return n.N, nil
}

// PendingCall reports the code address about to be invoked when the control
// term is a call whose head is (or is bound to) an address. It allocates
// nothing; run loops use it to count collector entries.
func (m *EnvMachine) PendingCall() (regions.Addr, bool) {
	app, ok := m.Ctrl.(AppT)
	if !ok {
		return regions.Addr{}, false
	}
	switch fn := app.Fn.(type) {
	case Var:
		if c, ok := m.envCells[fn.Name]; ok && c.Tag == CellAddr {
			return c.Addr(), true
		}
	case AddrV:
		return fn.Addr, true
	}
	return regions.Addr{}, false
}

// Step performs one machine transition. Like Machine.Step, an error leaves
// the machine state unchanged: rules validate their side conditions before
// applying memory effects.
func (m *EnvMachine) Step() error {
	if m.Halted {
		return errors.New("gclang: step after halt")
	}
	if r := fault.Installed(); r != nil {
		if err := m.injectFaults(r); err != nil {
			return err
		}
	}
	if m.Event != nil {
		m.ev.Kind = StepNone
	}
	next, err := m.step(m.Ctrl)
	if err != nil {
		return err
	}
	m.Ctrl = next
	m.Steps++
	if m.Event != nil && m.ev.Kind != StepNone {
		m.ev.Step = m.Steps
		m.Event(m.ev)
	}
	return nil
}

// step returns the next control term.
func (m *EnvMachine) step(e Term) (Term, error) {
	switch e := e.(type) {
	case HaltT:
		c := m.cellOf(e.V)
		m.Halted = true
		m.Result = m.Pool.Decode(c)
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepHalt}
		}
		return e, nil
	case AppT:
		return m.stepApp(e)
	case LetT:
		c, err := m.stepOp(e.Op)
		if err != nil {
			return nil, fmt.Errorf("%w: in %s", err, e.Op)
		}
		m.envCells[e.X] = c
		return e.Body, nil
	case IfGCT:
		rn, ok := m.resolveRegion(e.R).(RName)
		if !ok {
			return nil, stuck(e, "ifgc on region variable %s", e.R)
		}
		if m.Mem.Full(rn.Name) {
			return e.Full, nil
		}
		return e.Else, nil
	case OpenTagT:
		c := m.cellOf(e.V)
		pk, ok := PackTagDesc{}, false
		if c.Tag == CellPackTag {
			pk, ok = m.Pool.packTagAt(c.A)
		}
		if !ok {
			return nil, stuck(e, "open of non-package %s", e.V)
		}
		m.envTags[e.T] = pk.Tag
		m.envCells[e.X] = m.Pool.cellOfWord(c.B)
		return e.Body, nil
	case OpenAlphaT:
		c := m.cellOf(e.V)
		pk, ok := PackAlphaDesc{}, false
		if c.Tag == CellPackAlpha {
			pk, ok = m.Pool.packAlphaAt(c.A)
		}
		if !ok {
			return nil, stuck(e, "open of non-package %s", e.V)
		}
		m.envTyps[e.A] = pk.Hidden
		m.envCells[e.X] = m.Pool.cellOfWord(c.B)
		return e.Body, nil
	case LetRegionT:
		nu := m.Mem.NewRegion()
		m.envRegs[e.R] = RName{Name: nu}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepNewRegion, Addr: regions.Addr{Region: nu}}
		}
		return e.Body, nil
	case OnlyT:
		delta, _ := m.regionSlice(e.Delta)
		keep := m.scratchNames[:0]
		for _, r := range delta {
			rn, ok := r.(RName)
			if !ok {
				return nil, stuck(e, "only with region variable %s", r)
			}
			keep = append(keep, rn.Name)
		}
		m.scratchNames = keep
		if err := m.Mem.Only(keep); err != nil {
			return nil, stuck(e, "%v", err)
		}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepOnly}
		}
		return e.Body, nil
	case TypecaseT:
		return m.stepTypecase(e)
	case IfLeftT:
		c := m.cellOf(e.V)
		switch c.Tag {
		case CellInl:
			m.envCells[e.X] = c
			return e.L, nil
		case CellInr:
			m.envCells[e.X] = c
			return e.R, nil
		default:
			return nil, stuck(e, "ifleft on untagged value %s", e.V)
		}
	case SetT:
		dst := m.cellOf(e.Dst)
		if dst.Tag != CellAddr {
			return nil, stuck(e, "set destination %s is not an address", e.Dst)
		}
		src := m.cellOf(e.Src)
		if err := m.Mem.Set(dst.Addr(), src); err != nil {
			return nil, stuck(e, "%v", err)
		}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepSet, Addr: dst.Addr()}
		}
		return e.Body, nil
	case WidenT:
		// Operationally a no-op (§7.1): the cast re-views memory. Ghost Ψ
		// maintenance lives in the substitution machine only.
		m.envCells[e.X] = m.cellOf(e.V)
		return e.Body, nil
	case OpenRegionT:
		c := m.cellOf(e.V)
		pk, ok := PackRegionDesc{}, false
		if c.Tag == CellPackRegion {
			pk, ok = m.Pool.packRegionAt(c.A)
		}
		if !ok {
			return nil, stuck(e, "open of non-region-package %s", e.V)
		}
		m.envRegs[e.R] = pk.R
		m.envCells[e.X] = m.Pool.cellOfWord(c.B)
		return e.Body, nil
	case IfRegT:
		n1, ok1 := m.resolveRegion(e.R1).(RName)
		n2, ok2 := m.resolveRegion(e.R2).(RName)
		if !ok1 || !ok2 {
			return nil, stuck(e, "ifreg on region variables")
		}
		if n1 == n2 {
			return e.Then, nil
		}
		return e.Else, nil
	case If0T:
		c := m.cellOf(e.V)
		if c.Tag != CellNum {
			return nil, stuck(e, "if0 on non-integer %s", e.V)
		}
		if c.Num() == 0 {
			return e.Then, nil
		}
		return e.Else, nil
	default:
		return nil, stuck(e, "no rule for %T", e)
	}
}

// tappHeadName is the reserved binding a translucent-call rewrite parks
// the unwrapped head cell under for the immediately following call step.
const tappHeadName names.Name = "#tapp-head"

// stepApp mirrors Machine.stepApp: translucent heads first restore their
// recorded tags in a step of their own, then the code block is fetched from
// memory and its binders are instantiated. The call protocol resolves every
// operand against the current environment first, then clears the
// environment and binds the parameters — code blocks are closed, so nothing
// else can be referenced from the body.
func (m *EnvMachine) stepApp(e AppT) (Term, error) {
	fc := m.cellOf(e.Fn)
	if fc.Tag == CellTApp {
		if len(e.Tags) != 0 || len(e.Rs) != 0 {
			return nil, stuck(e, "translucent call with extra tags or regions")
		}
		ta, ok := m.Pool.tappAt(fc.A)
		if !ok {
			return nil, stuck(e, "call through corrupted translucent handle")
		}
		// The pooled head is fully resolved; the arguments are left in the
		// rewritten call for the next step to resolve — the environment
		// cannot change between the rewrite and the call, so the lazy
		// resolution coincides with the boxed machine's eager one. The head
		// itself stays a cell, bound under a reserved name no program can
		// shadow ('#' never survives the pipeline): decoding it to a Value
		// would hand cellOf a dynamically built value, and the descriptor
		// memo's identity keying relies on only seeing program-tree nodes.
		m.envCells[tappHeadName] = m.Pool.cellOfWord(fc.B)
		return AppT{Fn: Var{Name: tappHeadName}, Tags: ta.Tags, Rs: ta.Rs, Args: e.Args}, nil
	}
	if fc.Tag != CellAddr {
		return nil, stuck(e, "call of non-address %s", m.Pool.Decode(fc))
	}
	addr := fc.Addr()
	cc, err := m.Mem.Get(addr)
	if err != nil {
		return nil, stuck(e, "%v", err)
	}
	lam, ok := LamV{}, false
	if cc.Tag == CellLam {
		lam, ok = m.Pool.lamAt(cc.A)
	}
	if !ok {
		return nil, stuck(e, "call of non-code cell %s", addr)
	}
	if len(e.Tags) != len(lam.TParams) || len(e.Rs) != len(lam.RParams) || len(e.Args) != len(lam.Params) {
		return nil, stuck(e, "arity mismatch calling %s", addr)
	}
	if m.Event != nil {
		m.ev = StepEvent{Kind: StepCall, Addr: addr}
	}
	callTags := m.scratchTags[:0]
	for _, t := range e.Tags {
		rt, _ := m.tag(t)
		callTags = append(callTags, rt)
	}
	callRegs := m.scratchRegs[:0]
	for _, r := range e.Rs {
		rr, _ := m.region(r)
		callRegs = append(callRegs, rr)
	}
	callCells := m.scratchCells[:0]
	for _, a := range e.Args {
		callCells = append(callCells, m.cellOf(a))
	}
	m.scratchTags, m.scratchRegs, m.scratchCells = callTags, callRegs, callCells
	clear(m.envCells)
	clear(m.envTags)
	clear(m.envRegs)
	clear(m.envTyps)
	for i, tp := range lam.TParams {
		m.envTags[tp.Name] = callTags[i]
	}
	for i, r := range lam.RParams {
		m.envRegs[r] = callRegs[i]
	}
	for i, p := range lam.Params {
		m.envCells[p.Name] = callCells[i]
	}
	return lam.Body, nil
}

// stepOp evaluates a let-bound operation, returning the bound cell.
func (m *EnvMachine) stepOp(op Op) (Cell, error) {
	switch op := op.(type) {
	case ValOp:
		return m.cellOf(op.V), nil
	case ProjOp:
		c := m.cellOf(op.V)
		if c.Tag != CellPair {
			return Cell{}, fmt.Errorf("%w: projection from non-pair %s", ErrStuck, m.Pool.Decode(c))
		}
		if op.I == 1 {
			return m.Pool.cellOfWord(c.A), nil
		}
		return m.Pool.cellOfWord(c.B), nil
	case PutOp:
		rn, ok := m.resolveRegion(op.R).(RName)
		if !ok {
			return Cell{}, fmt.Errorf("%w: put into region variable %s", ErrStuck, op.R)
		}
		c := m.cellOf(op.V)
		addr, err := m.Mem.Put(rn.Name, c)
		if err != nil {
			return Cell{}, fmt.Errorf("%w: %v", ErrStuck, err)
		}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepPut, Addr: addr, Words: m.Pool.CellWords(c)}
		}
		return AddrCell(addr), nil
	case GetOp:
		c := m.cellOf(op.V)
		if c.Tag != CellAddr {
			return Cell{}, fmt.Errorf("%w: get from non-address %s", ErrStuck, m.Pool.Decode(c))
		}
		a := c.Addr()
		cell, err := m.Mem.Get(a)
		if err != nil {
			return Cell{}, err
		}
		if m.Event != nil {
			m.ev = StepEvent{Kind: StepGet, Addr: a}
		}
		return cell, nil
	case StripOp:
		c := m.cellOf(op.V)
		switch c.Tag {
		case CellInl, CellInr:
			return m.Pool.cellOfWord(c.A), nil
		default:
			return Cell{}, fmt.Errorf("%w: strip of untagged value %s", ErrStuck, m.Pool.Decode(c))
		}
	case ArithOp:
		l := m.cellOf(op.L)
		r := m.cellOf(op.R)
		if l.Tag != CellNum || r.Tag != CellNum {
			return Cell{}, fmt.Errorf("%w: arithmetic on non-integers", ErrStuck)
		}
		switch op.Kind {
		case Add:
			return NumCell(l.Num() + r.Num()), nil
		case Sub:
			return NumCell(l.Num() - r.Num()), nil
		case Mul:
			return NumCell(l.Num() * r.Num()), nil
		default:
			return Cell{}, fmt.Errorf("%w: unknown operator", ErrStuck)
		}
	default:
		return Cell{}, fmt.Errorf("%w: unknown op %T", ErrStuck, op)
	}
}

// stepTypecase dispatches on the β-normal form of the resolved scrutinee,
// exactly as Machine.stepTypecase does on the substituted one.
func (m *EnvMachine) stepTypecase(e TypecaseT) (Term, error) {
	nf, err := tags.Normalize(m.resolveTag(e.Tag))
	if err != nil {
		return nil, stuck(e, "%v", err)
	}
	switch t := nf.(type) {
	case tags.Int:
		return e.IntArm, nil
	case tags.Code:
		if len(t.Args) != 1 {
			return nil, stuck(e, "typecase on %d-ary code tag %s", len(t.Args), nf)
		}
		m.envTags[e.TL] = t.Args[0]
		return e.LamArm, nil
	case tags.Prod:
		m.envTags[e.T1] = t.L
		m.envTags[e.T2] = t.R
		return e.ProdArm, nil
	case tags.Exist:
		m.envTags[e.Te] = tags.Lam{Param: t.Bound, Body: t.Body}
		return e.ExistArm, nil
	default:
		return nil, stuck(e, "typecase on open tag %s", nf)
	}
}

// cellOf resolves a term-position value against the environment and packs
// it. It is the packed counterpart of the boxed machine's value(): term
// variables come straight out of envCells (already packed, already
// closed), literals pack inline when they fit, and the syntax-bearing
// forms resolve their tag/region/type components through the shared
// resolver before pooling. Steady-state steps (variables, small literals)
// allocate nothing.
func (m *EnvMachine) cellOf(v Value) Cell {
	// The interface data pointer identifies the syntax node v was read
	// from; the pack cases key their descriptor memo on it.
	key := ifaceData(v)
	switch v := v.(type) {
	case Num:
		return NumCell(v.N)
	case AddrV:
		return AddrCell(v.Addr)
	case Var:
		// Term-variable binders never occur inside values (LamV resolves
		// through substView), so no shadow stack exists for this namespace.
		if c, ok := m.envCells[v.Name]; ok {
			return c
		}
		return m.Pool.VarCell(v.Name)
	case PairV:
		l := m.cellOf(v.L)
		r := m.cellOf(v.R)
		return Cell{Tag: CellPair, A: m.Pool.wordOf(l), B: m.Pool.wordOf(r)}
	case InlV:
		return Cell{Tag: CellInl, A: m.Pool.wordOf(m.cellOf(v.Val))}
	case InrV:
		return Cell{Tag: CellInr, A: m.Pool.wordOf(m.cellOf(v.Val))}
	// In the pack cases the payload is packed first (it may spill into the
	// cells pool) and the descriptor second, memoized per literal: on a
	// hit the annotation is not re-resolved and the pool does not grow.
	case PackTag:
		val := m.cellOf(v.Val)
		desc, nm, hit := m.memoLookup(key, CellPackTag, v.Bound)
		if !hit {
			tg, _ := m.tag(v.Tag)
			m.shTags = append(m.shTags, v.Bound)
			body, _ := m.typ(v.Body)
			m.shTags = m.shTags[:len(m.shTags)-1]
			desc = uint64(len(m.Pool.packTags))
			m.Pool.packTags = append(m.Pool.packTags, PackTagDesc{
				Bound: v.Bound, Kind: v.Kind, Tag: tg, Body: body,
			})
			m.memoStore(nm, desc, v)
		}
		return Cell{Tag: CellPackTag, A: desc, B: m.Pool.wordOf(val)}
	case PackAlpha:
		val := m.cellOf(v.Val)
		desc, nm, hit := m.memoLookup(key, CellPackAlpha, v.Bound)
		if !hit {
			delta, _ := m.regionSlice(v.Delta)
			hidden, _ := m.typ(v.Hidden)
			m.shTyps = append(m.shTyps, v.Bound)
			body, _ := m.typ(v.Body)
			m.shTyps = m.shTyps[:len(m.shTyps)-1]
			desc = uint64(len(m.Pool.packAlphas))
			m.Pool.packAlphas = append(m.Pool.packAlphas, PackAlphaDesc{
				Bound: v.Bound, Delta: delta, Hidden: hidden, Body: body,
			})
			m.memoStore(nm, desc, v)
		}
		return Cell{Tag: CellPackAlpha, A: desc, B: m.Pool.wordOf(val)}
	case PackRegion:
		val := m.cellOf(v.Val)
		desc, nm, hit := m.memoLookup(key, CellPackRegion, v.Bound)
		if !hit {
			delta, _ := m.regionSlice(v.Delta)
			r, _ := m.region(v.R)
			m.shRegs = append(m.shRegs, v.Bound)
			body, _ := m.typ(v.Body)
			m.shRegs = m.shRegs[:len(m.shRegs)-1]
			desc = uint64(len(m.Pool.packRegions))
			m.Pool.packRegions = append(m.Pool.packRegions, PackRegionDesc{
				Bound: v.Bound, Delta: delta, R: r, Body: body,
			})
			m.memoStore(nm, desc, v)
		}
		return Cell{Tag: CellPackRegion, A: desc, B: m.Pool.wordOf(val)}
	case TAppV:
		val := m.cellOf(v.Val)
		desc, nm, hit := m.memoLookup(key, CellTApp, "")
		if !hit {
			ts, _ := m.tagSlice(v.Tags)
			rs, _ := m.regionSlice(v.Rs)
			desc = uint64(len(m.Pool.tapps))
			m.Pool.tapps = append(m.Pool.tapps, TAppDesc{Tags: ts, Rs: rs})
			m.memoStore(nm, desc, v)
		}
		return Cell{Tag: CellTApp, A: desc, B: m.Pool.wordOf(val)}
	case LamV:
		// Rare: code blocks live in cd and are closed; a literal block only
		// flows through the environment when a program embeds one in a value
		// position. Delegate its binder structure to the oracle substitution.
		resolved, ok := m.substView().Value(v).(LamV)
		if !ok {
			panic("gclang: lam resolution changed value form")
		}
		return m.Pool.LamCell(resolved)
	default:
		panic(fmt.Sprintf("gclang: unknown value %T", v))
	}
}

// substView exposes the current environment as a closed simultaneous
// substitution for the rare LamV case. The term-variable namespace is
// decoded into a fresh map — an allocation the literal-code-block path can
// afford (it never executes in pipeline-compiled programs).
func (m *EnvMachine) substView() *Subst {
	if len(m.shTags) != 0 || len(m.shRegs) != 0 || len(m.shTyps) != 0 {
		// Values never occur inside types, so a LamV is never resolved under
		// a shadowing binder; see the resolver ordering in cellOf().
		panic("gclang: lam resolution under binder")
	}
	vals := make(map[names.Name]Value, len(m.envCells))
	for n, c := range m.envCells {
		vals[n] = m.Pool.Decode(c)
	}
	return &Subst{Vals: vals, Tags: m.envTags, Regs: m.envRegs, Types: m.envTyps, Closed: true}
}
