package gclang

import (
	"math/rand"
	"testing"

	"psgc/internal/kinds"
	"psgc/internal/names"
	"psgc/internal/tags"
)

// randomClosedTag builds a random closed tag of kind Ω.
func randomClosedTag(r *rand.Rand, depth int) tags.Tag {
	if depth <= 0 {
		return tags.Int{}
	}
	switch r.Intn(5) {
	case 0:
		return tags.Int{}
	case 1:
		return tags.Prod{L: randomClosedTag(r, depth-1), R: randomClosedTag(r, depth-1)}
	case 2:
		return tags.Code{Args: []tags.Tag{randomClosedTag(r, depth-1)}}
	case 3:
		return tags.Exist{Bound: "u", Body: tags.Prod{L: tags.Var{Name: "u"}, R: randomClosedTag(r, depth-1)}}
	default:
		// A redex that normalizes away.
		return tags.App{
			Fn:  tags.Lam{Param: "u", Body: tags.Var{Name: "u"}},
			Arg: randomClosedTag(r, depth-1),
		}
	}
}

// randomMType builds a random type built from M applications over closed
// tags, products, and at-forms — the types the mutator traffics in.
func randomMType(r *rand.Rand, d Dialect, depth int) Type {
	rho := Region(RName{Name: 1})
	rho2 := Region(RName{Name: 2})
	var mt Type
	if d == Gen {
		mt = MT{Rs: []Region{rho, rho2}, Tag: randomClosedTag(r, depth)}
	} else {
		mt = MT{Rs: []Region{rho}, Tag: randomClosedTag(r, depth)}
	}
	if depth > 0 && r.Intn(3) == 0 {
		return ProdT{L: mt, R: randomMType(r, d, depth-1)}
	}
	return mt
}

// Property: type normalization is idempotent in every dialect.
func TestNormalizeTypeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, d := range []Dialect{Base, Forw, Gen} {
		for i := 0; i < 200; i++ {
			ty := randomMType(r, d, 4)
			n1, err := NormalizeType(d, ty)
			if err != nil {
				t.Fatalf("%v: %v", d, err)
			}
			n2, err := NormalizeType(d, n1)
			if err != nil {
				t.Fatalf("%v: %v", d, err)
			}
			if !newEqEnv().typeEq(n1, n2) {
				t.Fatalf("%v: normalization not idempotent:\n%s\nvs\n%s", d, n1, n2)
			}
		}
	}
}

// Property: TypeEqual is reflexive and symmetric on random M-types, and
// a type never equals its pairing with int.
func TestTypeEqualProperties(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for _, d := range []Dialect{Base, Forw, Gen} {
		for i := 0; i < 150; i++ {
			a := randomMType(r, d, 3)
			b := randomMType(r, d, 3)
			if ok, err := TypeEqual(d, a, a); err != nil || !ok {
				t.Fatalf("%v: reflexivity failed for %s: %v", d, a, err)
			}
			ab, err1 := TypeEqual(d, a, b)
			ba, err2 := TypeEqual(d, b, a)
			if err1 != nil || err2 != nil || ab != ba {
				t.Fatalf("%v: symmetry failed for %s vs %s", d, a, b)
			}
			bigger := ProdT{L: a, R: IntT{}}
			if ok, _ := TypeEqual(d, a, bigger); ok {
				t.Fatalf("%v: %s equal to its pairing", d, a)
			}
		}
	}
}

// Property: Assignable is reflexive and contains TypeEqual.
func TestAssignableContainsEqual(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, d := range []Dialect{Base, Forw, Gen} {
		for i := 0; i < 150; i++ {
			a := randomMType(r, d, 3)
			ok, err := Assignable(d, nil, a, a)
			if err != nil || !ok {
				t.Fatalf("%v: Assignable not reflexive for %s: %v", d, a, err)
			}
		}
	}
}

// Property: the M operator's expansion never mentions the dead "code
// lives at cd" region incorrectly — every M normal form is well formed
// in an environment containing its index regions.
func TestMNormalFormsWellFormed(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for _, d := range []Dialect{Base, Forw, Gen} {
		c := &Checker{Dialect: d}
		for i := 0; i < 150; i++ {
			ty := randomMType(r, d, 3)
			nf, err := NormalizeType(d, ty)
			if err != nil {
				t.Fatal(err)
			}
			env := NewEnv(nil)
			env.Delta[Region(RName{Name: 1})] = true
			env.Delta[Region(RName{Name: 2})] = true
			if err := c.CheckTypeWF(env, nf); err != nil {
				t.Fatalf("%v: normal form ill-formed: %v\n%s", d, err, nf)
			}
		}
	}
}

// Property: substituting a fresh variable for itself is the identity on
// collector code blocks (the largest terms in the system), and the
// closed fast path agrees with the safe path for closed payloads.
func TestSubstIdentityAndClosedAgreement(t *testing.T) {
	// Use the basic collector's copy block as a large, binder-rich term.
	copyBody := buildCopyLikeTerm()
	idSub := &Subst{Regs: map[names.Name]Region{"zz-not-free": RName{Name: 9}}}
	if got := idSub.Term(copyBody); got.String() != copyBody.String() {
		t.Fatalf("substitution for non-free variable changed the term")
	}
	// Closed and safe paths agree for a closed region payload.
	safe := &Subst{Regs: map[names.Name]Region{"r1": RName{Name: 1}}}
	fast := &Subst{Regs: map[names.Name]Region{"r1": RName{Name: 1}}, Closed: true}
	if safe.Term(copyBody).String() != fast.Term(copyBody).String() {
		t.Fatalf("closed substitution diverges from safe substitution")
	}
}

// buildCopyLikeTerm constructs a binder-rich term standing in for
// collector code (uses typecase, opens, puts, and region variables).
func buildCopyLikeTerm() Term {
	tagT := tags.Var{Name: "t"}
	return TypecaseT{
		Tag:    tagT,
		IntArm: HaltT{V: Num{N: 0}},
		TL:     "tλ",
		LamArm: HaltT{V: Num{N: 1}},
		T1:     "t1", T2: "t2",
		ProdArm: LetT{X: "y", Op: GetOp{V: Var{Name: "x"}},
			Body: LetT{X: "p", Op: PutOp{R: RVar{Name: "r1"}, V: Var{Name: "y"}},
				Body: OpenTagT{V: Var{Name: "q"}, T: "u", X: "w",
					Body: HaltT{V: Num{N: 2}}}}},
		Te: "te",
		ExistArm: LetRegionT{R: "rr",
			Body: OnlyT{Delta: []Region{RVar{Name: "rr"}},
				Body: HaltT{V: Num{N: 3}}}},
	}
}

// Property: FreeNames reports exactly the variables substitution can
// reach: after substituting every free term variable, none remain.
func TestFreeNamesClosedAfterSubstitution(t *testing.T) {
	term := buildCopyLikeTerm()
	vals, _, regs, _ := FreeNames(term)
	sub := &Subst{Vals: map[names.Name]Value{}, Regs: map[names.Name]Region{}}
	for v := range vals {
		sub.Vals[v] = Num{N: 7}
	}
	for r := range regs {
		sub.Regs[r] = RName{Name: 1}
	}
	out := sub.Term(term)
	vals2, _, regs2, _ := FreeNames(out)
	if len(vals2) != 0 || len(regs2) != 0 {
		t.Fatalf("free names remain after substituting all: vals=%v regs=%v", vals2, regs2)
	}
}

// Property: capture-avoiding substitution renames binders when a free
// variable of the payload would be captured, preserving α-equivalence of
// types.
func TestTypeSubstCapture(t *testing.T) {
	// ∃u:Ω. M_ν1(u × t)  with t := u  must not capture.
	ty := ExistT{Bound: "u", Kind: kinds.Omega{},
		Body: MT{Rs: []Region{RName{Name: 1}}, Tag: tags.Prod{L: tags.Var{Name: "u"}, R: tags.Var{Name: "t"}}}}
	got := Subst1Tag("t", tags.Var{Name: "u"}).Type(ty)
	want := ExistT{Bound: "w", Kind: kinds.Omega{},
		Body: MT{Rs: []Region{RName{Name: 1}}, Tag: tags.Prod{L: tags.Var{Name: "w"}, R: tags.Var{Name: "u"}}}}
	ok, err := TypeEqual(Base, got, want)
	if err != nil || !ok {
		t.Fatalf("capture-avoidance failed: got %s", got)
	}
}
