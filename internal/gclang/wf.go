package gclang

import (
	"fmt"

	"psgc/internal/kinds"
	"psgc/internal/regions"
)

var omegaKind = kinds.Kind(kinds.Omega{})

// This file implements machine-state well-formedness, Definition 6.3
// relaxed to Definition 7.1: a state (M, e) is well formed when some
// sufficient subset M̄ ⊆ M is typed by Ψ and e typechecks under Ψ. We take
// M̄ to be the cells reachable from e (plus the whole code region), which
// is sufficient by construction: execution can only touch reachable cells.

// collectAddrs gathers every address literal occurring in a term.
func collectAddrs(e Term, out map[regions.Addr]bool) {
	w := addrWalker{out: out}
	w.term(e)
}

type addrWalker struct {
	out map[regions.Addr]bool
}

func (w addrWalker) value(v Value) {
	switch v := v.(type) {
	case Num, Var:
	case AddrV:
		w.out[v.Addr] = true
	case PairV:
		w.value(v.L)
		w.value(v.R)
	case PackTag:
		w.value(v.Val)
	case PackAlpha:
		w.value(v.Val)
	case PackRegion:
		w.value(v.Val)
	case TAppV:
		w.value(v.Val)
	case LamV:
		w.term(v.Body)
	case InlV:
		w.value(v.Val)
	case InrV:
		w.value(v.Val)
	default:
		panic(fmt.Sprintf("gclang: unknown value %T", v))
	}
}

func (w addrWalker) op(o Op) {
	switch o := o.(type) {
	case ValOp:
		w.value(o.V)
	case ProjOp:
		w.value(o.V)
	case PutOp:
		w.value(o.V)
	case GetOp:
		w.value(o.V)
	case StripOp:
		w.value(o.V)
	case ArithOp:
		w.value(o.L)
		w.value(o.R)
	default:
		panic(fmt.Sprintf("gclang: unknown op %T", o))
	}
}

func (w addrWalker) term(e Term) {
	switch e := e.(type) {
	case AppT:
		w.value(e.Fn)
		for _, a := range e.Args {
			w.value(a)
		}
	case LetT:
		w.op(e.Op)
		w.term(e.Body)
	case HaltT:
		w.value(e.V)
	case IfGCT:
		w.term(e.Full)
		w.term(e.Else)
	case OpenTagT:
		w.value(e.V)
		w.term(e.Body)
	case OpenAlphaT:
		w.value(e.V)
		w.term(e.Body)
	case LetRegionT:
		w.term(e.Body)
	case OnlyT:
		w.term(e.Body)
	case TypecaseT:
		w.term(e.IntArm)
		w.term(e.LamArm)
		w.term(e.ProdArm)
		w.term(e.ExistArm)
	case IfLeftT:
		w.value(e.V)
		w.term(e.L)
		w.term(e.R)
	case SetT:
		w.value(e.Dst)
		w.value(e.Src)
		w.term(e.Body)
	case WidenT:
		w.value(e.V)
		w.term(e.Body)
	case OpenRegionT:
		w.value(e.V)
		w.term(e.Body)
	case IfRegT:
		w.term(e.Then)
		w.term(e.Else)
	case If0T:
		w.value(e.V)
		w.term(e.Then)
		w.term(e.Else)
	default:
		panic(fmt.Sprintf("gclang: unknown term %T", e))
	}
}

// Reachable computes the set of addresses reachable from the current term
// through memory cells.
func (m *Machine) Reachable() map[regions.Addr]bool {
	seen := map[regions.Addr]bool{}
	frontier := map[regions.Addr]bool{}
	collectAddrs(m.Term, frontier)
	for len(frontier) > 0 {
		next := map[regions.Addr]bool{}
		for a := range frontier {
			if seen[a] {
				continue
			}
			seen[a] = true
			cell, err := m.Mem.Get(a)
			if err != nil {
				continue // dangling: the wf check reports it
			}
			found := map[regions.Addr]bool{}
			w := addrWalker{out: found}
			w.value(m.Pool.Decode(cell))
			for f := range found {
				if !seen[f] {
					next[f] = true
				}
			}
		}
		frontier = next
	}
	return seen
}

// StateError describes a well-formedness violation of a machine state.
type StateError struct {
	Step int
	Msg  string
}

func (e *StateError) Error() string {
	return fmt.Sprintf("gclang: ill-formed state after step %d: %s", e.Step, e.Msg)
}

// CheckState verifies well-formedness of the machine's current state
// (Defs. 6.3 / 7.1): every reachable cell's contents check against its
// ghost Ψ entry, and the current term typechecks under Ψ. The memory
// statistics are unaffected (reads bypass the counters' Get path would
// skew them only negligibly; we accept the skew for simplicity).
func (m *Machine) CheckState() error {
	if !m.Ghost {
		return fmt.Errorf("gclang: CheckState requires ghost mode")
	}
	c := &Checker{Dialect: m.Dialect}
	reach := m.Reachable()

	// Ψ̄: ghost entries for reachable cells plus all of cd.
	psiBar := MemType{}
	for a, t := range m.Psi {
		if a.Region == regions.CD || reach[a] {
			psiBar[a] = t
		}
	}

	// Every reachable non-code cell must have a ghost entry and its
	// contents must check at that type. (Code cells were checked at
	// program-check time and are immutable; re-checking them every step
	// would be prohibitively slow and cannot fail.)
	// Live-but-empty regions still belong to ∆.
	env := NewEnv(psiBar)
	for _, rn := range m.Mem.Regions() {
		env.Delta[Region(RName{Name: rn})] = true
	}
	for a := range reach {
		t, ok := psiBar[a]
		if !ok {
			return &StateError{Step: m.Steps, Msg: fmt.Sprintf("reachable cell %s has no Ψ entry", a)}
		}
		if a.Region == regions.CD {
			continue
		}
		cell, err := m.Mem.Get(a)
		if err != nil {
			return &StateError{Step: m.Steps, Msg: fmt.Sprintf("reachable cell %s is dangling: %v", a, err)}
		}
		if err := c.CheckValue(env, m.Pool.Decode(cell), t); err != nil {
			return &StateError{Step: m.Steps, Msg: fmt.Sprintf("cell %s does not check against Ψ type %s: %v", a, t, err)}
		}
	}

	// The current term must typecheck: Ψ; Dom(Ψ); ·; ·; · ⊢ e.
	if m.Halted {
		return nil
	}
	if _, err := c.CheckTerm(env, m.Term); err != nil {
		return &StateError{Step: m.Steps, Msg: fmt.Sprintf("term does not typecheck: %v", err)}
	}
	return nil
}
