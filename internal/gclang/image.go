package gclang

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"unsafe"

	"psgc/internal/names"
	"psgc/internal/regions"
	"psgc/internal/tags"
)

// This file makes a paused machine first-class data: an Image captures the
// complete execution state of a machine at a step boundary — control term,
// environment, side pools, and heap — and a Restore rebuilds a runnable
// machine from one, on any memory backend. The paper's thesis is that GC
// state is ordinary typed data; a checkpoint takes that seriously for the
// whole machine configuration. Two disciplines follow:
//
//   - Images are taken only between steps. Mid-step state (shadow stacks
//     pushed during resolution, a scavenge in flight) is never observable
//     in an image, so a restored machine is in a state the step relation
//     could legitimately have produced.
//
//   - Nothing in an image extends the trusted computing base. Restoring
//     re-validates everything the way the peer-cache import does: the heap
//     image is checked against the substrate's counter identities, every
//     cell is bounds-checked against the pools it indexes (using the
//     append-order invariant that a pooled cell only references
//     earlier-pooled cells), and the code-block pool is not deserialized at
//     all — it is replaced wholesale by the locally certified program's
//     blocks, exactly as the peer import replaces the collector prefix.
//
// What is deliberately NOT serialized: the descriptor memo (a pure cache,
// rebuilt on demand; resumed runs re-learn it with no observable effect),
// event hooks (re-attached by the caller), and ghost state (ghost runs are
// a verification mode, not a production mode, and are refused).

// PoolImage is the serializable form of a machine's side pools. The Lams
// pool is carried only as a length: restore replaces it with the certified
// program's code blocks (see RestoreEnvMachine).
type PoolImage struct {
	Cells       []Cell
	Vars        []names.Name
	Lams        []LamV
	PackTags    []PackTagDesc
	PackAlphas  []PackAlphaDesc
	PackRegions []PackRegionDesc
	TApps       []TAppDesc
}

// MachineImage is the complete serializable state of a paused machine.
// Substitution-machine images have nil environment maps (their state is
// entirely in the control term); environment-machine images carry the four
// binder namespaces.
type MachineImage struct {
	Dialect Dialect
	Ctrl    Term
	Steps   int

	EnvCells map[names.Name]Cell
	EnvTags  map[names.Name]tags.Tag
	EnvRegs  map[names.Name]Region
	EnvTyps  map[names.Name]Type

	Pool PoolImage
	Heap regions.Image[Cell]
}

// Image captures the machine's state at the current step boundary. It is
// an error to image a halted machine (there is nothing left to resume) or
// one paused mid-resolution (cannot happen between Step calls).
func (m *EnvMachine) Image() (MachineImage, error) {
	if m.Halted {
		return MachineImage{}, fmt.Errorf("gclang: image of halted machine")
	}
	if len(m.shTags) != 0 || len(m.shRegs) != 0 || len(m.shTyps) != 0 {
		return MachineImage{}, fmt.Errorf("gclang: image mid-resolution")
	}
	img := MachineImage{
		Dialect:  m.Dialect,
		Ctrl:     m.Ctrl,
		Steps:    m.Steps,
		EnvCells: make(map[names.Name]Cell, len(m.envCells)),
		EnvTags:  make(map[names.Name]tags.Tag, len(m.envTags)),
		EnvRegs:  make(map[names.Name]Region, len(m.envRegs)),
		EnvTyps:  make(map[names.Name]Type, len(m.envTyps)),
		Pool:     m.Pool.image(),
		Heap:     regions.Snapshot[Cell](m.Mem),
	}
	for n, c := range m.envCells {
		img.EnvCells[n] = c
	}
	for n, t := range m.envTags {
		img.EnvTags[n] = t
	}
	for n, r := range m.envRegs {
		img.EnvRegs[n] = r
	}
	for n, t := range m.envTyps {
		img.EnvTyps[n] = t
	}
	return img, nil
}

// Image captures the substitution machine's state at the current step
// boundary. Ghost machines are refused: Ψ is verification state, and ghost
// runs are never the production engine a checkpoint would resume.
func (m *Machine) Image() (MachineImage, error) {
	if m.Halted {
		return MachineImage{}, fmt.Errorf("gclang: image of halted machine")
	}
	if m.Ghost {
		return MachineImage{}, fmt.Errorf("gclang: image of ghost machine")
	}
	return MachineImage{
		Dialect: m.Dialect,
		Ctrl:    m.Term,
		Steps:   m.Steps,
		Pool:    m.Pool.image(),
		Heap:    regions.Snapshot[Cell](m.Mem),
	}, nil
}

// image deep-copies the pool slices. Descriptor innards (types, tag lists)
// are immutable once pooled, so they are shared, not copied.
func (p *Pools) image() PoolImage {
	return PoolImage{
		Cells:       append([]Cell(nil), p.cells...),
		Vars:        append([]names.Name(nil), p.vars...),
		Lams:        append([]LamV(nil), p.lams...),
		PackTags:    append([]PackTagDesc(nil), p.packTags...),
		PackAlphas:  append([]PackAlphaDesc(nil), p.packAlphas...),
		PackRegions: append([]PackRegionDesc(nil), p.packRegions...),
		TApps:       append([]TAppDesc(nil), p.tapps...),
	}
}

// RestoreEnvMachine rebuilds a runnable environment machine from an image,
// on the given backend, against the locally certified program p. The image
// is untrusted: the heap image must satisfy the substrate's counter
// identities, every cell must validate against the pools it indexes, and
// the cd region must contain exactly p's code blocks, whose pool entries
// are replaced with the local (typechecked) ones.
func RestoreEnvMachine(b regions.Backend, d Dialect, p Program, img MachineImage) (*EnvMachine, error) {
	if err := validateImage(p, &img); err != nil {
		return nil, err
	}
	if d != img.Dialect {
		return nil, fmt.Errorf("gclang: restore: image dialect %v, want %v", img.Dialect, d)
	}
	mem, err := regions.Restore[Cell](b, img.Heap)
	if err != nil {
		return nil, fmt.Errorf("gclang: restore: %w", err)
	}
	m := &EnvMachine{
		Dialect:  d,
		Mem:      mem,
		Pool:     poolFromImage(p, img.Pool),
		Ctrl:     img.Ctrl,
		Steps:    img.Steps,
		envCells: make(map[names.Name]Cell, len(img.EnvCells)),
		packMemo: map[unsafe.Pointer]*nodeMemo{},
	}
	m.initResolver()
	for n, c := range img.EnvCells {
		m.envCells[n] = c
	}
	for n, t := range img.EnvTags {
		m.envTags[n] = t
	}
	for n, r := range img.EnvRegs {
		m.envRegs[n] = r
	}
	for n, t := range img.EnvTyps {
		m.envTyps[n] = t
	}
	return m, nil
}

// RestoreMachine rebuilds a runnable substitution machine from an image.
// Substitution images carry no environment; an image with one is rejected
// rather than silently dropped.
func RestoreMachine(b regions.Backend, d Dialect, p Program, img MachineImage) (*Machine, error) {
	if len(img.EnvCells)+len(img.EnvTags)+len(img.EnvRegs)+len(img.EnvTyps) != 0 {
		return nil, fmt.Errorf("gclang: restore: substitution image carries an environment")
	}
	if err := validateImage(p, &img); err != nil {
		return nil, err
	}
	if d != img.Dialect {
		return nil, fmt.Errorf("gclang: restore: image dialect %v, want %v", img.Dialect, d)
	}
	mem, err := regions.Restore[Cell](b, img.Heap)
	if err != nil {
		return nil, fmt.Errorf("gclang: restore: %w", err)
	}
	return newRestoredMachine(d, p, mem, poolFromImage(p, img.Pool), img.Ctrl, img.Steps), nil
}

// ClosedCtrl returns the control term with the current environment applied
// as a closed simultaneous substitution — the term a substitution machine
// at this same state would be holding. Only legal at a step boundary.
func (m *EnvMachine) ClosedCtrl() Term {
	return m.substView().Term(m.Ctrl)
}

// RestoreOracle rebuilds a substitution machine from an *environment*
// image: the environment is folded into the control term by substitution,
// the heap is restored onto the map backend (the oracle's substrate), and
// the pools are shared with no environment left over. A co-checked resume
// uses this so both engines start from the identical configuration — same
// heap cells, same counters — and the per-step counter comparison stays
// exact across the checkpoint.
func RestoreOracle(p Program, img MachineImage) (*Machine, error) {
	env, err := RestoreEnvMachine(regions.BackendMap, img.Dialect, p, img)
	if err != nil {
		return nil, err
	}
	return newRestoredMachine(env.Dialect, p, env.Mem, env.Pool, env.ClosedCtrl(), env.Steps), nil
}

func newRestoredMachine(d Dialect, p Program, mem regions.Store[Cell], pool *Pools, term Term, steps int) *Machine {
	m := &Machine{
		Dialect: d,
		Mem:     mem,
		Pool:    pool,
		Term:    term,
		Psi:     MemType{},
		Steps:   steps,
	}
	// Rebuild the code-region Ψ entries NewMachineOn installs; non-ghost
	// machines never read Ψ, but the invariant that cd is typed is cheap.
	for i, nf := range p.Code {
		params := make([]Type, len(nf.Fun.Params))
		for j, prm := range nf.Fun.Params {
			params[j] = prm.Ty
		}
		m.Psi[regions.Addr{Region: regions.CD, Off: i}] = CodeT{
			TParams: nf.Fun.TParams, RParams: nf.Fun.RParams, Params: params,
		}
	}
	return m
}

// poolFromImage rebuilds pools from an image, substituting the certified
// program's code blocks for the serialized lam pool (whose length was
// already checked by validateImage). The blob's own lam bodies are never
// executed.
func poolFromImage(p Program, pi PoolImage) *Pools {
	lams := make([]LamV, len(p.Code))
	for i, nf := range p.Code {
		lams[i] = nf.Fun
	}
	return &Pools{
		cells:       append([]Cell(nil), pi.Cells...),
		vars:        append([]names.Name(nil), pi.Vars...),
		lams:        lams,
		packTags:    append([]PackTagDesc(nil), pi.PackTags...),
		packAlphas:  append([]PackAlphaDesc(nil), pi.PackAlphas...),
		packRegions: append([]PackRegionDesc(nil), pi.PackRegions...),
		tapps:       append([]TAppDesc(nil), pi.TApps...),
	}
}

// ValidateImage checks an untrusted image without building a machine —
// the checkpoint decoder calls it so corruption is rejected at decode
// time, before any caller commits to a resume. Restore runs the same
// checks again.
func ValidateImage(p Program, img *MachineImage) error {
	return validateImage(p, img)
}

// validateImage checks everything about an untrusted image that the
// machines' defensive decoding does not already cover: the heap image's
// counter identities, per-cell bounds against the pools, the acyclicity of
// the cells pool (entry i may only reference entries < i — the append
// order Encode produces), and the cd region matching the certified
// program block-for-block.
func validateImage(p Program, img *MachineImage) error {
	if img.Ctrl == nil {
		return fmt.Errorf("gclang: restore: image has no control term")
	}
	if img.Steps < 0 {
		return fmt.Errorf("gclang: restore: negative step count %d", img.Steps)
	}
	if err := img.Heap.Validate(); err != nil {
		return fmt.Errorf("gclang: restore: %w", err)
	}
	if len(img.Pool.Lams) != len(p.Code) {
		return fmt.Errorf("gclang: restore: image pools %d code blocks, program has %d",
			len(img.Pool.Lams), len(p.Code))
	}
	pool := &img.Pool
	for i, c := range pool.Cells {
		if err := validateCell(c, i, pool); err != nil {
			return fmt.Errorf("gclang: restore: pool cell %d: %w", i, err)
		}
	}
	limit := len(pool.Cells)
	for ri := range img.Heap.Regions {
		r := &img.Heap.Regions[ri]
		if r.Name == regions.CD {
			if len(r.Cells) != len(p.Code) {
				return fmt.Errorf("gclang: restore: cd region has %d cells, program has %d code blocks",
					len(r.Cells), len(p.Code))
			}
			for i, c := range r.Cells {
				if c != (Cell{Tag: CellLam, A: uint64(i)}) {
					return fmt.Errorf("gclang: restore: cd cell %d is not code block %d", i, i)
				}
			}
			continue
		}
		for i, c := range r.Cells {
			if err := validateCell(c, limit, pool); err != nil {
				return fmt.Errorf("gclang: restore: heap cell %s.%d: %w", r.Name, i, err)
			}
		}
	}
	for n, c := range img.EnvCells {
		if err := validateCell(c, limit, pool); err != nil {
			return fmt.Errorf("gclang: restore: environment binding %s: %w", n, err)
		}
	}
	return nil
}

// validateCell bounds-checks one cell against the pools. cellLimit is the
// largest cells-pool index the cell's payload words may reference: for the
// pool entry at index i it is i itself (acyclicity), for heap and
// environment cells it is the full pool length. Unused payload words must
// be zero — Encode never leaves residue, so nonzero residue is corruption.
func validateCell(c Cell, cellLimit int, pool *PoolImage) error {
	switch c.Tag {
	case CellNum:
		if c.B != 0 {
			return fmt.Errorf("num cell with nonzero residue")
		}
	case CellAddr:
		// A dangling address (into a reclaimed region) is legal — dead
		// bindings may hold one — so only representability is checked.
		if c.A >= 1<<32 || int64(c.B) < 0 {
			return fmt.Errorf("address cell out of range")
		}
	case CellPair:
		if err := validateWord(c.A, cellLimit); err != nil {
			return err
		}
		return validateWord(c.B, cellLimit)
	case CellInl, CellInr:
		if err := validateWord(c.A, cellLimit); err != nil {
			return err
		}
		if c.B != 0 {
			return fmt.Errorf("sum cell with nonzero residue")
		}
	case CellVar:
		if c.A >= uint64(len(pool.Vars)) || c.B != 0 {
			return fmt.Errorf("var handle out of range")
		}
	case CellLam:
		if c.A >= uint64(len(pool.Lams)) || c.B != 0 {
			return fmt.Errorf("lam handle out of range")
		}
	case CellPackTag:
		if c.A >= uint64(len(pool.PackTags)) {
			return fmt.Errorf("packtag handle out of range")
		}
		return validateWord(c.B, cellLimit)
	case CellPackAlpha:
		if c.A >= uint64(len(pool.PackAlphas)) {
			return fmt.Errorf("packalpha handle out of range")
		}
		return validateWord(c.B, cellLimit)
	case CellPackRegion:
		if c.A >= uint64(len(pool.PackRegions)) {
			return fmt.Errorf("packregion handle out of range")
		}
		return validateWord(c.B, cellLimit)
	case CellTApp:
		if c.A >= uint64(len(pool.TApps)) {
			return fmt.Errorf("tapp handle out of range")
		}
		return validateWord(c.B, cellLimit)
	default:
		return fmt.Errorf("unknown cell tag %d", c.Tag)
	}
	return nil
}

func validateWord(w uint64, cellLimit int) error {
	switch w & wordKindMask {
	case wordKindNum, wordKindAddr:
		return nil
	case wordKindCell:
		if idx := w >> 2; idx >= uint64(cellLimit) {
			return fmt.Errorf("payload word references cell %d, limit %d", idx, cellLimit)
		}
		return nil
	default:
		return fmt.Errorf("payload word with invalid kind")
	}
}

// Fingerprint hashes the image's machine-state content — heap layout and
// cells, pooled cells, environment value bindings, step count — with
// FNV-64a. The checkpoint wire format stores it in the header so a decoder
// can detect body corruption that gob happens to survive. Environment maps
// are folded in sorted order, so the fingerprint is deterministic.
func (img *MachineImage) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(x uint64) {
		binary.BigEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	wcell := func(c Cell) { w64(uint64(c.Tag)); w64(c.A); w64(c.B) }
	w64(uint64(img.Steps))
	w64(uint64(img.Heap.Counter))
	w64(uint64(len(img.Heap.Regions)))
	for i := range img.Heap.Regions {
		r := &img.Heap.Regions[i]
		w64(uint64(r.Name))
		w64(r.Pattern)
		w64(uint64(len(r.Cells)))
		for _, c := range r.Cells {
			wcell(c)
		}
	}
	w64(uint64(len(img.Pool.Cells)))
	for _, c := range img.Pool.Cells {
		wcell(c)
	}
	ns := make([]string, 0, len(img.EnvCells))
	for n := range img.EnvCells {
		ns = append(ns, string(n))
	}
	sort.Strings(ns)
	w64(uint64(len(ns)))
	for _, n := range ns {
		w64(uint64(len(n)))
		h.Write([]byte(n))
		wcell(img.EnvCells[names.Name(n)])
	}
	return h.Sum64()
}
