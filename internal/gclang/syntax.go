package gclang

import (
	"fmt"
	"strings"

	"psgc/internal/kinds"
	"psgc/internal/names"
	"psgc/internal/regions"
	"psgc/internal/tags"
)

// ---------------------------------------------------------------------------
// Regions ρ ::= ν | r
// ---------------------------------------------------------------------------

// Region is a region expression: a region variable r or a runtime region
// name ν.
type Region interface {
	isRegion()
	String() string
}

// RVar is a region variable r.
type RVar struct {
	Name names.Name
}

// RName is a concrete runtime region name ν.
type RName struct {
	Name regions.Name
}

func (RVar) isRegion()  {}
func (RName) isRegion() {}

func (r RVar) String() string  { return r.Name.String() }
func (r RName) String() string { return r.Name.String() }

// CDRegion is the distinguished code region cd.
var CDRegion = RName{Name: regions.CD}

// RegionEqual reports syntactic equality of region expressions.
func RegionEqual(a, b Region) bool { return a == b }

// ---------------------------------------------------------------------------
// Types σ (Fig. 2, plus §7 and §8 forms)
// ---------------------------------------------------------------------------

// Type is a λGC type.
type Type interface {
	isType()
	String() string
}

// IntT is int.
type IntT struct{}

// ProdT is σ1 × σ2.
type ProdT struct {
	L, R Type
}

// TParam is a tag-variable binder t : κ of a code type or value.
type TParam struct {
	Name names.Name
	Kind kinds.Kind
}

// CodeT is the fully closed code type ∀[t:κ…][r…](σ…)→0.
type CodeT struct {
	TParams []TParam
	RParams []names.Name
	Params  []Type
}

// ExistT is ∃t:κ.σ, the existential over tags used for closures.
type ExistT struct {
	Bound names.Name
	Kind  kinds.Kind
	Body  Type
}

// AtT is σ at ρ, the type of a reference to a ρ-allocated σ.
type AtT struct {
	Body Type
	R    Region
}

// MT is the built-in type operator M: M_ρ(τ) in Base/Forw (one region) and
// M_ρy,ρo(τ) in Gen (two regions). It encapsulates the contract between
// mutator and collector (§4.2, §7, §8).
type MT struct {
	Rs  []Region
	Tag tags.Tag
}

// CT is the collector's view C_ρ,ρ'(τ) of mutator data during a collection
// (§7, λGCforw only).
type CT struct {
	From, To Region
	Tag      tags.Tag
}

// AlphaT is a type variable α, constrained by the Φ environment to mention
// only a fixed set of regions.
type AlphaT struct {
	Name names.Name
}

// ExistAlphaT is ∃α:∆.σ, the existential over region-constrained type
// variables needed to closure-convert the polymorphic-recursive copy (§6.1).
type ExistAlphaT struct {
	Bound names.Name
	Delta []Region
	Body  Type
}

// TransT is the translucent code type ∀⟦τ…⟧⟦ρ…⟧(σ…)→ρ0: a code pointer
// living in region ρ that has been instantiated at the recorded tags AND
// regions, leaving only value arguments to supply (§6.1). The recorded
// tags make typed closure conversion of copy possible. The paper keeps
// the region parameters abstract (∀⟦τ⟧[r](σ)→0) and relies on every call
// site re-supplying the same regions; we pre-apply them instead, which is
// the same discipline made explicit and lets region substitution commute
// with the closure types (see the collector package).
type TransT struct {
	Tags   []tags.Tag
	Rs     []Region
	Params []Type
	R      Region
}

// LeftT is left σ: an object carrying an inl tag bit (§7).
type LeftT struct {
	Body Type
}

// RightT is right σ: an object carrying an inr tag bit (§7).
type RightT struct {
	Body Type
}

// SumT is left σ1 + right σ2 (§7). L must be a LeftT and R a RightT; the
// checker enforces this shape.
type SumT struct {
	L, R Type
}

// ExistRT is the bounded existential over regions ∃r∈∆.(σ at r) (§8).
// Body is the σ under the binder; the "at r" wrapper is implicit in the
// form, as in the paper's grammar.
type ExistRT struct {
	Bound names.Name
	Delta []Region
	Body  Type
}

func (IntT) isType()        {}
func (ProdT) isType()       {}
func (CodeT) isType()       {}
func (ExistT) isType()      {}
func (AtT) isType()         {}
func (MT) isType()          {}
func (CT) isType()          {}
func (AlphaT) isType()      {}
func (ExistAlphaT) isType() {}
func (TransT) isType()      {}
func (LeftT) isType()       {}
func (RightT) isType()      {}
func (SumT) isType()        {}
func (ExistRT) isType()     {}

func regionList(rs []Region) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}

func tagList(ts []tags.Tag) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

func typeList(ts []Type) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

func nameList(ns []names.Name) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = n.String()
	}
	return strings.Join(parts, ", ")
}

func (IntT) String() string { return "int" }

func (t ProdT) String() string { return fmt.Sprintf("(%s × %s)", t.L, t.R) }

func (t CodeT) String() string {
	tps := make([]string, len(t.TParams))
	for i, tp := range t.TParams {
		tps[i] = fmt.Sprintf("%s:%s", tp.Name, tp.Kind)
	}
	return fmt.Sprintf("∀[%s][%s](%s)→0", strings.Join(tps, ", "), nameList(t.RParams), typeList(t.Params))
}

func (t ExistT) String() string {
	return fmt.Sprintf("∃%s:%s.%s", t.Bound, t.Kind, t.Body)
}

func (t AtT) String() string { return fmt.Sprintf("(%s at %s)", t.Body, t.R) }

func (t MT) String() string {
	return fmt.Sprintf("M[%s](%s)", regionList(t.Rs), t.Tag)
}

func (t CT) String() string {
	return fmt.Sprintf("C[%s,%s](%s)", t.From, t.To, t.Tag)
}

func (t AlphaT) String() string { return t.Name.String() }

func (t ExistAlphaT) String() string {
	return fmt.Sprintf("∃%s:{%s}.%s", t.Bound, regionList(t.Delta), t.Body)
}

func (t TransT) String() string {
	return fmt.Sprintf("∀⟦%s⟧⟦%s⟧(%s)→%s0", tagList(t.Tags), regionList(t.Rs), typeList(t.Params), t.R)
}

func (t LeftT) String() string  { return fmt.Sprintf("left %s", t.Body) }
func (t RightT) String() string { return fmt.Sprintf("right %s", t.Body) }

func (t SumT) String() string { return fmt.Sprintf("(%s + %s)", t.L, t.R) }

func (t ExistRT) String() string {
	return fmt.Sprintf("∃%s∈{%s}.(%s at %s)", t.Bound, regionList(t.Delta), t.Body, t.Bound)
}

// ---------------------------------------------------------------------------
// Values v (Fig. 2 plus extensions)
// ---------------------------------------------------------------------------

// Value is a λGC value.
type Value interface {
	isValue()
	String() string
}

// Num is an integer literal n.
type Num struct {
	N int
}

// Var is a term variable x.
type Var struct {
	Name names.Name
}

// AddrV is a memory reference ν.ℓ.
type AddrV struct {
	Addr regions.Addr
}

// PairV is (v1, v2).
type PairV struct {
	L, R Value
}

// PackTag is the existential package ⟨t = τ, v : σ⟩ of type ∃t:κ.σ.
// Body is the σ with Bound free.
type PackTag struct {
	Bound names.Name
	Kind  kinds.Kind
	Tag   tags.Tag
	Val   Value
	Body  Type
}

// PackAlpha is ⟨α : ∆ = σ1, v : σ2⟩ of type ∃α:∆.σ2 (§6.1).
type PackAlpha struct {
	Bound  names.Name
	Delta  []Region
	Hidden Type
	Val    Value
	Body   Type
}

// PackRegion is ⟨r ∈ ∆ = ρ, v : σ⟩ of type ∃r∈∆.(σ at r) (§8).
type PackRegion struct {
	Bound names.Name
	Delta []Region
	R     Region
	Val   Value
	Body  Type
}

// TAppV is the tag-and-region instantiation v⟦τ…⟧⟦ρ…⟧ producing a
// translucent code value (§6.1).
type TAppV struct {
	Val  Value
	Tags []tags.Tag
	Rs   []Region
}

// Param is a term-variable binder x : σ of a code value.
type Param struct {
	Name names.Name
	Ty   Type
}

// LamV is a code block λ[t:κ…][r…](x:σ…).e. It is not itself callable: it
// must be put into the cd region to obtain a function pointer (§4.3).
type LamV struct {
	TParams []TParam
	RParams []names.Name
	Params  []Param
	Body    Term
}

// InlV is inl v, an object tagged with the "not forwarded" bit (§7).
type InlV struct {
	Val Value
}

// InrV is inr v, an object tagged with the "forwarded" bit (§7).
type InrV struct {
	Val Value
}

func (Num) isValue()        {}
func (Var) isValue()        {}
func (AddrV) isValue()      {}
func (PairV) isValue()      {}
func (PackTag) isValue()    {}
func (PackAlpha) isValue()  {}
func (PackRegion) isValue() {}
func (TAppV) isValue()      {}
func (LamV) isValue()       {}
func (InlV) isValue()       {}
func (InrV) isValue()       {}

func (v Num) String() string   { return fmt.Sprintf("%d", v.N) }
func (v Var) String() string   { return v.Name.String() }
func (v AddrV) String() string { return v.Addr.String() }

func (v PairV) String() string { return fmt.Sprintf("(%s, %s)", v.L, v.R) }

func (v PackTag) String() string {
	return fmt.Sprintf("⟨%s=%s, %s : %s⟩", v.Bound, v.Tag, v.Val, v.Body)
}

func (v PackAlpha) String() string {
	return fmt.Sprintf("⟨%s:{%s}=%s, %s : %s⟩", v.Bound, regionList(v.Delta), v.Hidden, v.Val, v.Body)
}

func (v PackRegion) String() string {
	return fmt.Sprintf("⟨%s∈{%s}=%s, %s : %s⟩", v.Bound, regionList(v.Delta), v.R, v.Val, v.Body)
}

func (v TAppV) String() string {
	return fmt.Sprintf("%s⟦%s⟧⟦%s⟧", v.Val, tagList(v.Tags), regionList(v.Rs))
}

func (v LamV) String() string {
	tps := make([]string, len(v.TParams))
	for i, tp := range v.TParams {
		tps[i] = fmt.Sprintf("%s:%s", tp.Name, tp.Kind)
	}
	ps := make([]string, len(v.Params))
	for i, p := range v.Params {
		ps[i] = fmt.Sprintf("%s:%s", p.Name, p.Ty)
	}
	return fmt.Sprintf("λ[%s][%s](%s). %s", strings.Join(tps, ", "), nameList(v.RParams), strings.Join(ps, ", "), v.Body)
}

func (v InlV) String() string { return fmt.Sprintf("inl %s", v.Val) }
func (v InrV) String() string { return fmt.Sprintf("inr %s", v.Val) }

// ---------------------------------------------------------------------------
// Operations op ::= v | πi v | put[ρ]v | get v | strip v | arith
// ---------------------------------------------------------------------------

// Op is a let-bindable operation.
type Op interface {
	isOp()
	String() string
}

// ValOp binds a value.
type ValOp struct {
	V Value
}

// ProjOp is πi v (I is 1 or 2).
type ProjOp struct {
	I int
	V Value
}

// PutOp allocates v in region R. Anno is filled in by the typechecker's
// elaboration pass with the static type of V; the machine records it in
// the ghost memory type Ψ so machine states stay checkable (see DESIGN.md).
type PutOp struct {
	R    Region
	V    Value
	Anno Type
}

// GetOp dereferences a reference value.
type GetOp struct {
	V Value
}

// StripOp removes a tag bit: strip (inl v) = strip (inr v) = v (§7).
type StripOp struct {
	V Value
}

// ArithKind is an integer operator of the workload extension.
type ArithKind int

// Arithmetic operators.
const (
	Add ArithKind = iota
	Sub
	Mul
)

func (k ArithKind) String() string {
	switch k {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	default:
		return "?"
	}
}

// ArithOp is integer arithmetic (workload extension, see DESIGN.md).
type ArithOp struct {
	Kind ArithKind
	L, R Value
}

func (ValOp) isOp()   {}
func (ProjOp) isOp()  {}
func (PutOp) isOp()   {}
func (GetOp) isOp()   {}
func (StripOp) isOp() {}
func (ArithOp) isOp() {}

func (o ValOp) String() string  { return o.V.String() }
func (o ProjOp) String() string { return fmt.Sprintf("π%d %s", o.I, o.V) }
func (o PutOp) String() string  { return fmt.Sprintf("put[%s]%s", o.R, o.V) }
func (o GetOp) String() string  { return fmt.Sprintf("get %s", o.V) }
func (o StripOp) String() string {
	return fmt.Sprintf("strip %s", o.V)
}
func (o ArithOp) String() string { return fmt.Sprintf("%s %s %s", o.L, o.Kind, o.R) }

// ---------------------------------------------------------------------------
// Terms e (Fig. 2 plus §7/§8 forms and the workload extension)
// ---------------------------------------------------------------------------

// Term is a λGC term. Terms never return; execution ends with halt.
type Term interface {
	isTerm()
	String() string
}

// AppT is the call v[τ…][ρ…](v…).
type AppT struct {
	Fn   Value
	Tags []tags.Tag
	Rs   []Region
	Args []Value
}

// LetT is let x = op in e.
type LetT struct {
	X    names.Name
	Op   Op
	Body Term
}

// HaltT halts with an integer result.
type HaltT struct {
	V Value
}

// IfGCT is ifgc ρ e1 e2: run e1 if region ρ is full, else e2.
type IfGCT struct {
	R          Region
	Full, Else Term
}

// OpenTagT is open v as ⟨t, x⟩ in e for tag existentials.
type OpenTagT struct {
	V    Value
	T, X names.Name
	Body Term
}

// OpenAlphaT is open v as ⟨α, x⟩ in e for type existentials (§6.1).
type OpenAlphaT struct {
	V    Value
	A, X names.Name
	Body Term
}

// LetRegionT is let region r in e.
type LetRegionT struct {
	R    names.Name
	Body Term
}

// OnlyT is only ∆ in e: reclaim every region not in ∆ (cd is implicit).
type OnlyT struct {
	Delta []Region
	Body  Term
}

// TypecaseT is the refining typecase on a tag (§6.4):
//
//	typecase τ of (e_int ; tλ.e_λ ; t1 t2.e_× ; te.e_∃)
//
// TL is the λ-arm's argument-tag binder: when the scrutinee is a variable
// t, the arm is checked with t refined to (tλ)→0. The paper's printed rule
// leaves the λ arm unrefined, but its own collectors (Figs. 4, 9, 11)
// return x : M_ρ(t) at type M_ρ'(t) in that arm, which is only derivable
// once t is known to be a code tag (M then ignores the region index); we
// therefore implement the refining variant, unary because λCLOS functions
// are unary.
type TypecaseT struct {
	Tag      tags.Tag
	IntArm   Term
	TL       names.Name
	LamArm   Term
	T1, T2   names.Name
	ProdArm  Term
	Te       names.Name
	ExistArm Term
}

// IfLeftT is ifleft x = v e_l e_r: branch on a tag bit (§7).
type IfLeftT struct {
	X    names.Name
	V    Value
	L, R Term
}

// SetT is set v1 := v2 ; e — the forwarding-pointer install (§7).
type SetT struct {
	Dst, Src Value
	Body     Term
}

// WidenT is let x = widen[ρ'][τ](v) in e: the collector's cast from the
// mutator view M_ρ(τ) to the collector view C_ρ,ρ'(τ) (§7.1). From is
// filled in by the typechecker's elaboration (the ρ of v's type) so the
// machine can apply the T operator to the ghost Ψ.
type WidenT struct {
	X    names.Name
	To   Region
	Tag  tags.Tag
	V    Value
	Body Term
	From Region
}

// OpenRegionT is open v as ⟨r, x⟩ in e for bounded region existentials (§8).
type OpenRegionT struct {
	V    Value
	R, X names.Name
	Body Term
}

// IfRegT is ifreg (ρ1 = ρ2) e1 e2 (§8). In the then-branch the checker
// unifies the compared regions by substitution, per Fig. 10.
type IfRegT struct {
	R1, R2     Region
	Then, Else Term
}

// If0T branches on an integer being zero (workload extension).
type If0T struct {
	V          Value
	Then, Else Term
}

func (AppT) isTerm()        {}
func (LetT) isTerm()        {}
func (HaltT) isTerm()       {}
func (IfGCT) isTerm()       {}
func (OpenTagT) isTerm()    {}
func (OpenAlphaT) isTerm()  {}
func (LetRegionT) isTerm()  {}
func (OnlyT) isTerm()       {}
func (TypecaseT) isTerm()   {}
func (IfLeftT) isTerm()     {}
func (SetT) isTerm()        {}
func (WidenT) isTerm()      {}
func (OpenRegionT) isTerm() {}
func (IfRegT) isTerm()      {}
func (If0T) isTerm()        {}

func (e AppT) String() string {
	return fmt.Sprintf("%s[%s][%s](%s)", e.Fn, tagList(e.Tags), regionList(e.Rs), valueList(e.Args))
}

func valueList(vs []Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}

func (e LetT) String() string {
	return fmt.Sprintf("let %s = %s in\n%s", e.X, e.Op, e.Body)
}

func (e HaltT) String() string { return fmt.Sprintf("halt %s", e.V) }

func (e IfGCT) String() string {
	return fmt.Sprintf("ifgc %s (%s) (%s)", e.R, e.Full, e.Else)
}

func (e OpenTagT) String() string {
	return fmt.Sprintf("open %s as ⟨%s, %s⟩ in\n%s", e.V, e.T, e.X, e.Body)
}

func (e OpenAlphaT) String() string {
	return fmt.Sprintf("open %s as ⟨%s, %s⟩ in\n%s", e.V, e.A, e.X, e.Body)
}

func (e LetRegionT) String() string {
	return fmt.Sprintf("let region %s in\n%s", e.R, e.Body)
}

func (e OnlyT) String() string {
	return fmt.Sprintf("only {%s} in\n%s", regionList(e.Delta), e.Body)
}

func (e TypecaseT) String() string {
	return fmt.Sprintf("typecase %s of\n  int ⇒ %s\n  λ%s ⇒ %s\n  %s×%s ⇒ %s\n  ∃%s ⇒ %s",
		e.Tag, e.IntArm, e.TL, e.LamArm, e.T1, e.T2, e.ProdArm, e.Te, e.ExistArm)
}

func (e IfLeftT) String() string {
	return fmt.Sprintf("ifleft %s = %s (%s) (%s)", e.X, e.V, e.L, e.R)
}

func (e SetT) String() string {
	return fmt.Sprintf("set %s := %s ;\n%s", e.Dst, e.Src, e.Body)
}

func (e WidenT) String() string {
	return fmt.Sprintf("let %s = widen[%s][%s](%s) in\n%s", e.X, e.To, e.Tag, e.V, e.Body)
}

func (e OpenRegionT) String() string {
	return fmt.Sprintf("open %s as ⟨%s, %s⟩ in\n%s", e.V, e.R, e.X, e.Body)
}

func (e IfRegT) String() string {
	return fmt.Sprintf("ifreg (%s = %s) (%s) (%s)", e.R1, e.R2, e.Then, e.Else)
}

func (e If0T) String() string {
	return fmt.Sprintf("if0 %s (%s) (%s)", e.V, e.Then, e.Else)
}

// NamedFun is a code block with a name, installed in the cd region at the
// offset equal to its index in the program's Code list.
type NamedFun struct {
	Name names.Name
	Fun  LamV
}

// Program is a complete λGC program: code blocks for the cd region plus
// the main term. Code values reference each other and main references them
// through cd addresses (AddrV at region cd), mirroring the paper's memory
// configuration {cd ↦ {ℓ ↦ f …}}.
type Program struct {
	Code []NamedFun
	Main Term
}

// CodeAddr returns the cd address of the i-th code block.
func CodeAddr(i int) AddrV {
	return AddrV{Addr: regions.Addr{Region: regions.CD, Off: i}}
}
