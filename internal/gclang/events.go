package gclang

import "psgc/internal/regions"

// StepKind classifies the machine transitions that observers care about:
// the ones with a memory effect or a control transfer into code. All other
// transitions (conditionals, opens, projections, arithmetic, the
// translucent-call rewrite) carry no observable GC behaviour and emit no
// event — both machines agree on that classification step for step.
type StepKind uint8

const (
	// StepNone marks an unclassified transition; no event is emitted.
	StepNone StepKind = iota
	// StepCall is a call whose head resolved to a code address (Addr is
	// the code cell invoked). The translucent rewrite step preceding a
	// resolved call is not a StepCall.
	StepCall
	// StepPut is an allocation: Addr is the new cell, Words its size
	// under the 64-bit-word model (ValueWords).
	StepPut
	// StepGet is a let-bound read (Addr is the cell read). The code fetch
	// inside a call is part of StepCall, not a StepGet, mirroring the
	// timeline classification.
	StepGet
	// StepSet is a cell overwrite — the forwarding-pointer install of §7.
	// Addr is the overwritten cell.
	StepSet
	// StepNewRegion is a "let region" execution; Addr.Region is the fresh
	// region's name.
	StepNewRegion
	// StepOnly is an "only ∆" reclamation. The event does not enumerate
	// the freed regions (that would allocate); observers diff the live
	// set against the store, which the hook hands them.
	StepOnly
	// StepHalt is the halt transition.
	StepHalt
)

// StepEvent is one classified machine transition. It is a fixed-size value
// — no pointers, no strings — so emitting one allocates nothing and the
// hook is cheap enough to leave installed on every request. Step is the
// 1-based machine step that performed the transition.
type StepEvent struct {
	Step  int
	Kind  StepKind
	Addr  regions.Addr
	Words int
}

// ValueWords returns the number of machine words value v occupies in a
// cell under the 64-bit-word model of the E4 space-overhead experiment.
// Sum and existential wrappers are tag bits and erased forms, costing no
// words.
func ValueWords(v Value) int {
	switch v := v.(type) {
	case PairV:
		return ValueWords(v.L) + ValueWords(v.R)
	case InlV:
		return ValueWords(v.Val)
	case InrV:
		return ValueWords(v.Val)
	case PackTag:
		return ValueWords(v.Val)
	case PackAlpha:
		return ValueWords(v.Val)
	case PackRegion:
		return ValueWords(v.Val)
	case TAppV:
		return ValueWords(v.Val)
	default: // Num, AddrV, LamV, Var
		return 1
	}
}
