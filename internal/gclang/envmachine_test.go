package gclang

import (
	"strings"
	"testing"

	"psgc/internal/kinds"
	"psgc/internal/tags"
)

// compareEngines runs a program on both machines in lockstep, requiring
// identical step counts, memory counters, final results, and final memory
// contents. It returns the (shared) result value. Programs are run
// unelaborated: the machines don't need annotations outside ghost mode.
func compareEngines(t *testing.T, d Dialect, p Program, capacity, fuel int) Value {
	t.Helper()
	sm := NewMachine(d, p, capacity)
	em := NewEnvMachine(d, p, capacity)
	for !sm.Halted {
		if fuel <= 0 {
			t.Fatalf("out of fuel at step %d", sm.Steps)
		}
		fuel--
		if err := sm.Step(); err != nil {
			t.Fatalf("subst step %d: %v", sm.Steps, err)
		}
		if err := em.Step(); err != nil {
			t.Fatalf("env step %d: %v", em.Steps, err)
		}
		if sm.Steps != em.Steps || sm.Halted != em.Halted {
			t.Fatalf("machines diverged: subst step %d halted %v, env step %d halted %v",
				sm.Steps, sm.Halted, em.Steps, em.Halted)
		}
		if sm.Mem.Stats() != em.Mem.Stats() {
			t.Fatalf("step %d: stats diverged: subst %+v env %+v", sm.Steps, sm.Mem.Stats(), em.Mem.Stats())
		}
	}
	if !em.Halted {
		t.Fatalf("env machine not halted when subst machine is")
	}
	if sm.Result.String() != em.Result.String() {
		t.Fatalf("results diverged: subst %s env %s", sm.Result, em.Result)
	}
	sc, ec := sm.Mem.Cells(), em.Mem.Cells()
	if len(sc) != len(ec) {
		t.Fatalf("cell counts diverged: subst %d env %d", len(sc), len(ec))
	}
	for i := range sc {
		if sc[i] != ec[i] {
			t.Fatalf("cell %d: addr %s vs %s", i, sc[i], ec[i])
		}
		sv, _ := sm.Mem.Get(sc[i])
		ev, _ := em.Mem.Get(ec[i])
		// Pool handles are machine-local: compare through each machine's
		// own pools.
		if ss, es := sm.Pool.Decode(sv).String(), em.Pool.Decode(ev).String(); ss != es {
			t.Fatalf("cell %s: subst %s env %s", sc[i], ss, es)
		}
	}
	return em.Result
}

func TestEnvMachinePairAllocation(t *testing.T) {
	prog := Program{Main: LetRegionT{R: "r", Body: LetT{
		X: "p", Op: PutOp{R: RVar{Name: "r"}, V: PairV{L: Num{N: 1}, R: Num{N: 2}}},
		Body: LetT{X: "x", Op: GetOp{V: Var{Name: "p"}},
			Body: LetT{X: "a", Op: ProjOp{I: 1, V: Var{Name: "x"}},
				Body: LetT{X: "b", Op: ProjOp{I: 2, V: Var{Name: "x"}},
					Body: LetT{X: "s", Op: ArithOp{Kind: Add, L: Var{Name: "a"}, R: Var{Name: "b"}},
						Body: HaltT{V: Var{Name: "s"}}}}}}}}}
	v := compareEngines(t, Base, prog, 0, 100)
	if n, ok := v.(Num); !ok || n.N != 3 {
		t.Fatalf("result = %s, want 3", v)
	}
}

func TestEnvMachineCallClearsFrame(t *testing.T) {
	// The call must reset the environment: g's body references only its own
	// parameter, and a stale binding for "x" from main must not leak in.
	g := LamV{RParams: []nameN{"r"}, Params: []Param{{Name: "x", Ty: IntT{}}},
		Body: HaltT{V: Var{Name: "x"}}}
	prog := Program{
		Code: []NamedFun{{Name: "g", Fun: g}},
		Main: LetRegionT{R: "r", Body: LetT{X: "x", Op: ValOp{V: Num{N: 7}},
			Body: AppT{Fn: CodeAddr(0), Rs: []Region{RVar{Name: "r"}}, Args: []Value{Num{N: 42}}}}},
	}
	v := compareEngines(t, Base, prog, 0, 100)
	if n := v.(Num); n.N != 42 {
		t.Fatalf("result = %d, want 42 (stale frame leaked)", n.N)
	}
}

func TestEnvMachineShadowingRebinds(t *testing.T) {
	// Successive lets rebind the same name; each op must resolve against
	// the binding in force before its own bind takes effect.
	prog := Program{Main: LetT{X: "x", Op: ValOp{V: Num{N: 1}},
		Body: LetT{X: "x", Op: ArithOp{Kind: Add, L: Var{Name: "x"}, R: Num{N: 1}},
			Body: LetT{X: "x", Op: ArithOp{Kind: Add, L: Var{Name: "x"}, R: Var{Name: "x"}},
				Body: HaltT{V: Var{Name: "x"}}}}}}
	v := compareEngines(t, Base, prog, 0, 100)
	if n := v.(Num); n.N != 4 {
		t.Fatalf("result = %d, want 4", n.N)
	}
}

func TestEnvMachineTypecase(t *testing.T) {
	analyze := LamV{
		TParams: []TParam{{Name: "t", Kind: kinds.Omega{}}},
		RParams: []nameN{"r"},
		Params:  []Param{{Name: "x", Ty: IntT{}}},
		Body: TypecaseT{
			Tag:    tags.Var{Name: "t"},
			IntArm: HaltT{V: Num{N: 1}},
			TL:     "tl",
			LamArm: HaltT{V: Num{N: 2}},
			T1:     "t1", T2: "t2", ProdArm: HaltT{V: Num{N: 3}},
			Te: "te", ExistArm: HaltT{V: Num{N: 4}},
		},
	}
	cases := []struct {
		tag  tags.Tag
		want int
	}{
		{tags.Int{}, 1},
		{tags.Code{Args: []tags.Tag{tags.Int{}}}, 2},
		{tags.Prod{L: tags.Int{}, R: tags.Int{}}, 3},
		{tags.Exist{Bound: "u", Body: tags.Var{Name: "u"}}, 4},
	}
	for _, cse := range cases {
		prog := Program{
			Code: []NamedFun{{Name: "analyze", Fun: analyze}},
			Main: LetRegionT{R: "r", Body: AppT{Fn: CodeAddr(0), Tags: []tags.Tag{cse.tag}, Rs: []Region{RVar{Name: "r"}}, Args: []Value{Num{N: 0}}}},
		}
		v := compareEngines(t, Base, prog, 0, 100)
		if n := v.(Num); n.N != cse.want {
			t.Errorf("typecase %s = %d, want %d", cse.tag, n.N, cse.want)
		}
	}
}

func TestEnvMachinePackShadowsTagBinder(t *testing.T) {
	// Inside f, the environment binds t := Int. The packed value's Tag field
	// mentions t (resolved to Int), while its Body mentions t under the
	// pack's own binder t (shadowed — must stay a variable). After open, a
	// typecase on the opened tag observes which resolution happened.
	f := LamV{
		TParams: []TParam{{Name: "t", Kind: kinds.Omega{}}},
		RParams: []nameN{"r"},
		Params:  []Param{{Name: "x", Ty: IntT{}}},
		Body: LetT{X: "q", Op: ValOp{V: PackTag{
			Bound: "t", Kind: kinds.Omega{}, Tag: tags.Var{Name: "t"}, Val: Num{N: 5},
			Body: MT{Rs: []Region{RVar{Name: "r"}}, Tag: tags.Var{Name: "t"}},
		}},
			Body: OpenTagT{V: Var{Name: "q"}, T: "u", X: "y",
				Body: TypecaseT{
					Tag:    tags.Var{Name: "u"},
					IntArm: HaltT{V: Num{N: 1}},
					TL:     "tl", LamArm: HaltT{V: Num{N: 2}},
					T1: "t1", T2: "t2", ProdArm: HaltT{V: Num{N: 3}},
					Te: "te", ExistArm: HaltT{V: Num{N: 4}},
				}}},
	}
	prog := Program{
		Code: []NamedFun{{Name: "f", Fun: f}},
		Main: LetRegionT{R: "r", Body: AppT{Fn: CodeAddr(0), Tags: []tags.Tag{tags.Int{}},
			Rs: []Region{RVar{Name: "r"}}, Args: []Value{Num{N: 0}}}},
	}
	v := compareEngines(t, Base, prog, 0, 100)
	if n := v.(Num); n.N != 1 {
		t.Fatalf("opened tag dispatched to arm %d, want 1 (int): pack Tag field mis-resolved", n.N)
	}
}

func TestEnvMachineGenConstructs(t *testing.T) {
	body := LetT{
		X: "p", Op: PutOp{R: RVar{Name: "ry"}, V: PairV{L: Num{N: 1}, R: Num{N: 2}}},
		Body: LetT{X: "q", Op: ValOp{V: PackRegion{
			Bound: "r", Delta: []Region{RVar{Name: "ry"}, RVar{Name: "ro"}}, R: RVar{Name: "ry"},
			Val:  Var{Name: "p"},
			Body: ProdT{L: IntT{}, R: IntT{}},
		}},
			Body: OpenRegionT{V: Var{Name: "q"}, R: "r'", X: "x",
				Body: IfRegT{R1: RVar{Name: "r'"}, R2: RVar{Name: "ro"},
					Then: HaltT{V: Num{N: 1}},
					Else: HaltT{V: Num{N: 2}}}}}}
	prog := Program{Main: LetRegionT{R: "ry", Body: LetRegionT{R: "ro", Body: body}}}
	v := compareEngines(t, Gen, prog, 0, 200)
	if n := v.(Num); n.N != 2 {
		t.Fatalf("ifreg: young region compared equal to old")
	}
}

func TestEnvMachineForwConstructs(t *testing.T) {
	prog := Program{Main: LetRegionT{R: "r", Body: LetT{
		X: "p", Op: PutOp{R: RVar{Name: "r"}, V: InlV{Val: PairV{L: Num{N: 4}, R: Num{N: 5}}}},
		Body: LetT{X: "y", Op: GetOp{V: Var{Name: "p"}},
			Body: LetT{X: "s", Op: StripOp{V: Var{Name: "y"}},
				Body: LetT{X: "a", Op: ProjOp{I: 2, V: Var{Name: "s"}},
					Body: HaltT{V: Var{Name: "a"}}}}}}}}
	if v := compareEngines(t, Forw, prog, 0, 100); v.(Num).N != 5 {
		t.Errorf("strip/proj failed")
	}
}

func TestEnvMachineOnlyReclaims(t *testing.T) {
	prog := Program{Main: LetRegionT{R: "r1", Body: LetRegionT{R: "r2",
		Body: LetT{X: "p", Op: PutOp{R: RVar{Name: "r1"}, V: PairV{L: Num{N: 1}, R: Num{N: 2}}},
			Body: OnlyT{Delta: []Region{RVar{Name: "r2"}}, Body: HaltT{V: Num{N: 0}}}}}}}
	em := NewEnvMachine(Base, prog, 0)
	if _, err := em.Run(100); err != nil {
		t.Fatal(err)
	}
	if em.Mem.Stats().RegionsReclaimed != 1 || em.Mem.Stats().CellsReclaimed != 1 {
		t.Errorf("stats = %+v", em.Mem.Stats())
	}
}

func TestEnvMachinePendingCall(t *testing.T) {
	f := LamV{RParams: []nameN{"r"}, Params: []Param{{Name: "x", Ty: IntT{}}},
		Body: HaltT{V: Var{Name: "x"}}}
	// The call head is a let-bound variable, so PendingCall must look
	// through the environment.
	prog := Program{
		Code: []NamedFun{{Name: "f", Fun: f}},
		Main: LetRegionT{R: "r", Body: LetT{X: "g", Op: ValOp{V: CodeAddr(0)},
			Body: AppT{Fn: Var{Name: "g"}, Rs: []Region{RVar{Name: "r"}}, Args: []Value{Num{N: 1}}}}},
	}
	em := NewEnvMachine(Base, prog, 0)
	sm := NewMachine(Base, prog, 0)
	sawEnv, sawSubst := false, false
	for !sm.Halted {
		ea, eok := em.PendingCall()
		sa, sok := sm.PendingCall()
		if eok != sok || ea != sa {
			t.Fatalf("step %d: PendingCall disagrees: env %v,%v subst %v,%v", sm.Steps, ea, eok, sa, sok)
		}
		if eok {
			sawEnv = true
			if ea != CodeAddr(0).Addr {
				t.Fatalf("PendingCall = %v, want cd.0", ea)
			}
		}
		if sok {
			sawSubst = true
		}
		if err := sm.Step(); err != nil {
			t.Fatal(err)
		}
		if err := em.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !sawEnv || !sawSubst {
		t.Fatalf("PendingCall never fired (env %v subst %v)", sawEnv, sawSubst)
	}
}

// TestGhostPutErrorLeavesStateConsistent is the regression test for the
// error-path bug: a ghost-mode put with a missing annotation used to apply
// the memory effect before failing, leaving the Puts counter ahead of the
// (unchanged) term and trace.
func TestGhostPutErrorLeavesStateConsistent(t *testing.T) {
	// Built by hand, not via the checker, so the PutOp has no annotation.
	prog := Program{Main: LetRegionT{R: "r", Body: LetT{
		X: "p", Op: PutOp{R: RVar{Name: "r"}, V: Num{N: 1}},
		Body: HaltT{V: Num{N: 0}}}}}
	m := NewMachine(Base, prog, 0)
	m.Ghost = true
	traced := 0
	m.Trace = func(*Machine, Term) { traced++ }
	if err := m.Step(); err != nil { // let region: fine
		t.Fatal(err)
	}
	termBefore := m.Term
	stepsBefore := m.Steps
	putsBefore := m.Mem.Stats().Puts
	err := m.Step() // the unannotated put must fail...
	if err == nil || !strings.Contains(err.Error(), "annotation") {
		t.Fatalf("expected missing-annotation error, got %v", err)
	}
	// ...without any partial effect.
	if m.Mem.Stats().Puts != putsBefore {
		t.Errorf("puts = %d, want %d (effect applied on error path)", m.Mem.Stats().Puts, putsBefore)
	}
	if m.Steps != stepsBefore {
		t.Errorf("steps advanced to %d on a failed step", m.Steps)
	}
	if m.Term != termBefore {
		t.Errorf("term rewritten on a failed step")
	}
	if traced != 1 {
		t.Errorf("trace fired %d times, want 1 (failed steps are not traced)", traced)
	}
}

func TestProgramSize(t *testing.T) {
	prog := Program{Main: LetRegionT{R: "r", Body: LetT{
		X: "p", Op: PutOp{R: RVar{Name: "r"}, V: PairV{L: Num{N: 1}, R: Num{N: 2}}},
		Body: HaltT{V: Var{Name: "p"}}}}}
	// letregion(1) + let(1) + put(1) + pair(1)+nums(2) + halt(1) + var(1) = 8
	if got := ProgramSize(prog); got != 8 {
		t.Fatalf("ProgramSize = %d, want 8", got)
	}
	withCode := Program{
		Code: []NamedFun{{Name: "f", Fun: LamV{Params: []Param{{Name: "x", Ty: IntT{}}},
			Body: HaltT{V: Var{Name: "x"}}}}},
		Main: prog.Main,
	}
	// lam(1) + param(1) + halt(1) + var(1) = 4 more
	if got := ProgramSize(withCode); got != 12 {
		t.Fatalf("ProgramSize with code = %d, want 12", got)
	}
}
