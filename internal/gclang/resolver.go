package gclang

import (
	"fmt"

	"psgc/internal/names"
	"psgc/internal/tags"
)

// resolver is the tag/region/type resolution layer shared by the packed
// EnvMachine and the boxed BoxedEnvMachine: environment lookup with shadow
// tracking for the three syntax namespaces. Every method returns the
// resolved syntax plus a changed flag; unchanged subtrees are returned
// as-is, so resolving closed syntax allocates nothing. Resolution is the
// environment-based reading of the machine's closed substitutions:
// innermost binding wins, binders under which we descend only shadow
// (Subst with Closed set never renames). Value resolution is not shared —
// the packed machine resolves straight into cells, the boxed machine into
// Values — so it lives with each machine.
type resolver struct {
	// The three syntax binder namespaces. Overwrite-on-shadow is sound
	// because CPS control never returns to an outer scope (see the
	// EnvMachine type comment).
	envTags map[names.Name]tags.Tag
	envRegs map[names.Name]Region
	envTyps map[names.Name]Type

	// Shadow stacks for binders crossed while resolving inside tags, types,
	// and pack bodies (resolution walks under binders without extending the
	// environment).
	shTags []names.Name
	shRegs []names.Name
	shTyps []names.Name
}

func (m *resolver) initResolver() {
	m.envTags = map[names.Name]tags.Tag{}
	m.envRegs = map[names.Name]Region{}
	m.envTyps = map[names.Name]Type{}
}

func shadowed(stack []names.Name, n names.Name) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == n {
			return true
		}
	}
	return false
}

func (m *resolver) resolveTag(t tags.Tag) tags.Tag {
	out, _ := m.tag(t)
	return out
}

func (m *resolver) resolveRegion(r Region) Region {
	out, _ := m.region(r)
	return out
}

func (m *resolver) tag(t tags.Tag) (tags.Tag, bool) {
	if len(m.envTags) == 0 {
		return t, false
	}
	return m.tag1(t)
}

func (m *resolver) tag1(t tags.Tag) (tags.Tag, bool) {
	switch t := t.(type) {
	case tags.Int:
		return t, false
	case tags.Var:
		if shadowed(m.shTags, t.Name) {
			return t, false
		}
		if r, ok := m.envTags[t.Name]; ok {
			return r, true
		}
		return t, false
	case tags.Prod:
		l, cl := m.tag1(t.L)
		r, cr := m.tag1(t.R)
		if !cl && !cr {
			return t, false
		}
		return tags.Prod{L: l, R: r}, true
	case tags.Code:
		args, ca := m.tagSlice1(t.Args)
		if !ca {
			return t, false
		}
		return tags.Code{Args: args}, true
	case tags.Exist:
		m.shTags = append(m.shTags, t.Bound)
		body, cb := m.tag1(t.Body)
		m.shTags = m.shTags[:len(m.shTags)-1]
		if !cb {
			return t, false
		}
		return tags.Exist{Bound: t.Bound, Body: body}, true
	case tags.Lam:
		m.shTags = append(m.shTags, t.Param)
		body, cb := m.tag1(t.Body)
		m.shTags = m.shTags[:len(m.shTags)-1]
		if !cb {
			return t, false
		}
		return tags.Lam{Param: t.Param, Body: body}, true
	case tags.App:
		fn, cf := m.tag1(t.Fn)
		arg, ca := m.tag1(t.Arg)
		if !cf && !ca {
			return t, false
		}
		return tags.App{Fn: fn, Arg: arg}, true
	default:
		panic(fmt.Sprintf("gclang: unknown tag %T", t))
	}
}

func (m *resolver) region(r Region) (Region, bool) {
	if rv, ok := r.(RVar); ok {
		if shadowed(m.shRegs, rv.Name) {
			return r, false
		}
		if repl, ok := m.envRegs[rv.Name]; ok {
			return repl, true
		}
	}
	return r, false
}

// typ resolves a type. Term variables cannot occur in types, so when the
// environment binds only values the type is unchanged — the same
// short-circuit Subst.Type relies on, and just as load-bearing here.
func (m *resolver) typ(t Type) (Type, bool) {
	if len(m.envTags) == 0 && len(m.envRegs) == 0 && len(m.envTyps) == 0 {
		return t, false
	}
	return m.typ1(t)
}

func (m *resolver) typ1(t Type) (Type, bool) {
	switch t := t.(type) {
	case IntT:
		return t, false
	case ProdT:
		l, cl := m.typ1(t.L)
		r, cr := m.typ1(t.R)
		if !cl && !cr {
			return t, false
		}
		return ProdT{L: l, R: r}, true
	case CodeT:
		// The tag and region binders scope over Params.
		for _, tp := range t.TParams {
			m.shTags = append(m.shTags, tp.Name)
		}
		m.shRegs = append(m.shRegs, t.RParams...)
		params, cp := m.typeSlice1(t.Params)
		m.shRegs = m.shRegs[:len(m.shRegs)-len(t.RParams)]
		m.shTags = m.shTags[:len(m.shTags)-len(t.TParams)]
		if !cp {
			return t, false
		}
		return CodeT{TParams: t.TParams, RParams: t.RParams, Params: params}, true
	case ExistT:
		m.shTags = append(m.shTags, t.Bound)
		body, cb := m.typ1(t.Body)
		m.shTags = m.shTags[:len(m.shTags)-1]
		if !cb {
			return t, false
		}
		return ExistT{Bound: t.Bound, Kind: t.Kind, Body: body}, true
	case AtT:
		body, cb := m.typ1(t.Body)
		r, cr := m.region(t.R)
		if !cb && !cr {
			return t, false
		}
		return AtT{Body: body, R: r}, true
	case MT:
		rs, cr := m.regionSlice(t.Rs)
		tg, ct := m.tag(t.Tag)
		if !cr && !ct {
			return t, false
		}
		return MT{Rs: rs, Tag: tg}, true
	case CT:
		from, cf := m.region(t.From)
		to, ct := m.region(t.To)
		tg, cg := m.tag(t.Tag)
		if !cf && !ct && !cg {
			return t, false
		}
		return CT{From: from, To: to, Tag: tg}, true
	case AlphaT:
		if shadowed(m.shTyps, t.Name) {
			return t, false
		}
		if repl, ok := m.envTyps[t.Name]; ok {
			return repl, true
		}
		return t, false
	case ExistAlphaT:
		delta, cd := m.regionSlice(t.Delta)
		m.shTyps = append(m.shTyps, t.Bound)
		body, cb := m.typ1(t.Body)
		m.shTyps = m.shTyps[:len(m.shTyps)-1]
		if !cd && !cb {
			return t, false
		}
		return ExistAlphaT{Bound: t.Bound, Delta: delta, Body: body}, true
	case TransT:
		ts, ct := m.tagSlice(t.Tags)
		rs, cr := m.regionSlice(t.Rs)
		params, cp := m.typeSlice1(t.Params)
		r, c0 := m.region(t.R)
		if !ct && !cr && !cp && !c0 {
			return t, false
		}
		return TransT{Tags: ts, Rs: rs, Params: params, R: r}, true
	case LeftT:
		body, cb := m.typ1(t.Body)
		if !cb {
			return t, false
		}
		return LeftT{Body: body}, true
	case RightT:
		body, cb := m.typ1(t.Body)
		if !cb {
			return t, false
		}
		return RightT{Body: body}, true
	case SumT:
		l, cl := m.typ1(t.L)
		r, cr := m.typ1(t.R)
		if !cl && !cr {
			return t, false
		}
		return SumT{L: l, R: r}, true
	case ExistRT:
		delta, cd := m.regionSlice(t.Delta)
		m.shRegs = append(m.shRegs, t.Bound)
		body, cb := m.typ1(t.Body)
		m.shRegs = m.shRegs[:len(m.shRegs)-1]
		if !cd && !cb {
			return t, false
		}
		return ExistRT{Bound: t.Bound, Delta: delta, Body: body}, true
	default:
		panic(fmt.Sprintf("gclang: unknown type %T", t))
	}
}

func (m *resolver) tagSlice(ts []tags.Tag) ([]tags.Tag, bool) {
	if len(m.envTags) == 0 {
		return ts, false
	}
	return m.tagSlice1(ts)
}

func (m *resolver) tagSlice1(ts []tags.Tag) ([]tags.Tag, bool) {
	var out []tags.Tag
	for i, t := range ts {
		rt, ct := m.tag1(t)
		if ct && out == nil {
			out = append([]tags.Tag(nil), ts...)
		}
		if out != nil {
			out[i] = rt
		}
	}
	if out == nil {
		return ts, false
	}
	return out, true
}

func (m *resolver) regionSlice(rs []Region) ([]Region, bool) {
	var out []Region
	for i, r := range rs {
		rr, cr := m.region(r)
		if cr && out == nil {
			out = append([]Region(nil), rs...)
		}
		if out != nil {
			out[i] = rr
		}
	}
	if out == nil {
		return rs, false
	}
	return out, true
}

func (m *resolver) typeSlice1(ts []Type) ([]Type, bool) {
	var out []Type
	for i, t := range ts {
		rt, ct := m.typ1(t)
		if ct && out == nil {
			out = append([]Type(nil), ts...)
		}
		if out != nil {
			out[i] = rt
		}
	}
	if out == nil {
		return ts, false
	}
	return out, true
}
