package gclang

import (
	"fmt"

	"psgc/internal/kinds"
	"psgc/internal/names"
	"psgc/internal/tags"
)

// The M and C type operators are hard-wired Typerecs (§4.2, §6.3): they
// reduce by case analysis on the (β-normalized) head of their tag argument
// and are stuck when the head is a tag variable — exactly the situation
// ∃α.S(α) of §2.2.1. NormalizeType expands every determinate M/C redex and
// β-normalizes all embedded tags, producing the normal forms on which type
// equality and subtyping are defined.

// reduceM expands one layer of M_ρ…(τ) once τ's head is determinate.
// It returns (nil, nil) when the operator is stuck (variable head).
func reduceM(d Dialect, rs []Region, tag tags.Tag) (Type, error) {
	nf, err := tags.Normalize(tag)
	if err != nil {
		return nil, err
	}
	switch t := nf.(type) {
	case tags.Int:
		return IntT{}, nil
	case tags.Code:
		return mCode(d, t), nil
	case tags.Prod:
		switch d {
		case Base:
			rho := rs[0]
			return AtT{Body: ProdT{L: MT{Rs: []Region{rho}, Tag: t.L}, R: MT{Rs: []Region{rho}, Tag: t.R}}, R: rho}, nil
		case Forw:
			rho := rs[0]
			return AtT{Body: LeftT{Body: ProdT{L: MT{Rs: []Region{rho}, Tag: t.L}, R: MT{Rs: []Region{rho}, Tag: t.R}}}, R: rho}, nil
		default: // Gen
			r := freshRegionVar("ρg", rs)
			inner := []Region{RVar{Name: r}, rs[1]}
			return ExistRT{Bound: r, Delta: genDelta(rs),
				Body: ProdT{L: MT{Rs: inner, Tag: t.L}, R: MT{Rs: inner, Tag: t.R}}}, nil
		}
	case tags.Exist:
		switch d {
		case Base:
			rho := rs[0]
			return AtT{Body: ExistT{Bound: t.Bound, Kind: kinds.Omega{}, Body: MT{Rs: []Region{rho}, Tag: t.Body}}, R: rho}, nil
		case Forw:
			rho := rs[0]
			return AtT{Body: LeftT{Body: ExistT{Bound: t.Bound, Kind: kinds.Omega{}, Body: MT{Rs: []Region{rho}, Tag: t.Body}}}, R: rho}, nil
		default: // Gen
			r := freshRegionVar("ρg", rs)
			inner := []Region{RVar{Name: r}, rs[1]}
			return ExistRT{Bound: r, Delta: genDelta(rs),
				Body: ExistT{Bound: t.Bound, Kind: kinds.Omega{}, Body: MT{Rs: inner, Tag: t.Body}}}, nil
		}
	default:
		// Variable or application head: stuck.
		return nil, nil
	}
}

// mCode builds M(τ→0): code always lives in cd and rebinds its own region
// parameters, so the expansion is independent of the operator's indices.
func mCode(d Dialect, t tags.Code) Type {
	if d == Gen {
		ry, ro := names.Name("ρym"), names.Name("ρom")
		inner := []Region{RVar{Name: ry}, RVar{Name: ro}}
		params := make([]Type, len(t.Args))
		for i, a := range t.Args {
			params[i] = MT{Rs: inner, Tag: a}
		}
		return AtT{Body: CodeT{RParams: []names.Name{ry, ro}, Params: params}, R: CDRegion}
	}
	r := names.Name("ρm")
	params := make([]Type, len(t.Args))
	for i, a := range t.Args {
		params[i] = MT{Rs: []Region{RVar{Name: r}}, Tag: a}
	}
	return AtT{Body: CodeT{RParams: []names.Name{r}, Params: params}, R: CDRegion}
}

// genDelta is the bound {ρy, ρo} of the region existential introduced by
// the generational M, collapsed when both indices coincide.
func genDelta(rs []Region) []Region {
	if RegionEqual(rs[0], rs[1]) {
		return []Region{rs[0]}
	}
	return []Region{rs[0], rs[1]}
}

// freshRegionVar picks a deterministic binder name that does not collide
// with any region variable in avoid.
func freshRegionVar(base names.Name, avoid []Region) names.Name {
	used := make(names.Set)
	for _, r := range avoid {
		if rv, ok := r.(RVar); ok {
			used.Add(rv.Name)
		}
	}
	n := base
	for used.Has(n) {
		n += "'"
	}
	return n
}

// reduceC expands one layer of C_ρ,ρ'(τ) (§7). Returns (nil, nil) when
// stuck.
func reduceC(from, to Region, tag tags.Tag) (Type, error) {
	nf, err := tags.Normalize(tag)
	if err != nil {
		return nil, err
	}
	switch t := nf.(type) {
	case tags.Int:
		return IntT{}, nil
	case tags.Code:
		return mCode(Forw, t), nil
	case tags.Prod:
		return AtT{Body: SumT{
			L: LeftT{Body: ProdT{L: CT{From: from, To: to, Tag: t.L}, R: CT{From: from, To: to, Tag: t.R}}},
			R: RightT{Body: MT{Rs: []Region{to}, Tag: nf}},
		}, R: from}, nil
	case tags.Exist:
		return AtT{Body: SumT{
			L: LeftT{Body: ExistT{Bound: t.Bound, Kind: kinds.Omega{}, Body: CT{From: from, To: to, Tag: t.Body}}},
			R: RightT{Body: MT{Rs: []Region{to}, Tag: nf}},
		}, R: from}, nil
	default:
		return nil, nil
	}
}

// NormalizeType reduces every determinate M/C application in t and
// β-normalizes all embedded tags. The result is the normal form used for
// type equality. The dialect selects the M reduction rules.
func NormalizeType(d Dialect, t Type) (Type, error) {
	switch t := t.(type) {
	case IntT, AlphaT:
		return t, nil
	case ProdT:
		l, err := NormalizeType(d, t.L)
		if err != nil {
			return nil, err
		}
		r, err := NormalizeType(d, t.R)
		if err != nil {
			return nil, err
		}
		return ProdT{L: l, R: r}, nil
	case CodeT:
		params, err := normalizeTypes(d, t.Params)
		if err != nil {
			return nil, err
		}
		return CodeT{TParams: t.TParams, RParams: t.RParams, Params: params}, nil
	case ExistT:
		body, err := NormalizeType(d, t.Body)
		if err != nil {
			return nil, err
		}
		return ExistT{Bound: t.Bound, Kind: t.Kind, Body: body}, nil
	case AtT:
		body, err := NormalizeType(d, t.Body)
		if err != nil {
			return nil, err
		}
		return AtT{Body: body, R: t.R}, nil
	case MT:
		red, err := reduceM(d, t.Rs, t.Tag)
		if err != nil {
			return nil, err
		}
		if red == nil {
			nf, err := tags.Normalize(t.Tag)
			if err != nil {
				return nil, err
			}
			return MT{Rs: t.Rs, Tag: nf}, nil
		}
		return NormalizeType(d, red)
	case CT:
		red, err := reduceC(t.From, t.To, t.Tag)
		if err != nil {
			return nil, err
		}
		if red == nil {
			nf, err := tags.Normalize(t.Tag)
			if err != nil {
				return nil, err
			}
			return CT{From: t.From, To: t.To, Tag: nf}, nil
		}
		return NormalizeType(d, red)
	case ExistAlphaT:
		body, err := NormalizeType(d, t.Body)
		if err != nil {
			return nil, err
		}
		return ExistAlphaT{Bound: t.Bound, Delta: t.Delta, Body: body}, nil
	case TransT:
		params, err := normalizeTypes(d, t.Params)
		if err != nil {
			return nil, err
		}
		ntags := make([]tags.Tag, len(t.Tags))
		for i, tg := range t.Tags {
			nf, err := tags.Normalize(tg)
			if err != nil {
				return nil, err
			}
			ntags[i] = nf
		}
		return TransT{Tags: ntags, Rs: t.Rs, Params: params, R: t.R}, nil
	case LeftT:
		body, err := NormalizeType(d, t.Body)
		if err != nil {
			return nil, err
		}
		return LeftT{Body: body}, nil
	case RightT:
		body, err := NormalizeType(d, t.Body)
		if err != nil {
			return nil, err
		}
		return RightT{Body: body}, nil
	case SumT:
		l, err := NormalizeType(d, t.L)
		if err != nil {
			return nil, err
		}
		r, err := NormalizeType(d, t.R)
		if err != nil {
			return nil, err
		}
		return SumT{L: l, R: r}, nil
	case ExistRT:
		body, err := NormalizeType(d, t.Body)
		if err != nil {
			return nil, err
		}
		return ExistRT{Bound: t.Bound, Delta: t.Delta, Body: body}, nil
	default:
		panic(fmt.Sprintf("gclang: unknown type %T", t))
	}
}

func normalizeTypes(d Dialect, ts []Type) ([]Type, error) {
	out := make([]Type, len(ts))
	for i, t := range ts {
		nt, err := NormalizeType(d, t)
		if err != nil {
			return nil, err
		}
		out[i] = nt
	}
	return out, nil
}
