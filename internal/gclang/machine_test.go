package gclang

import (
	"strings"
	"testing"

	"psgc/internal/kinds"
	"psgc/internal/names"
	"psgc/internal/tags"
)

type nameN = names.Name

// checkAndLoad typechecks a program and loads it into a ghost-mode machine.
func checkAndLoad(t *testing.T, d Dialect, p Program, capacity int) *Machine {
	t.Helper()
	c := &Checker{Dialect: d}
	elab, _, err := c.CheckProgram(p)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	m := NewMachine(d, elab, capacity)
	m.Ghost = true
	return m
}

// runChecked runs the machine to completion, re-checking state
// well-formedness after every step (the empirical preservation theorem).
func runChecked(t *testing.T, m *Machine, fuel int) Value {
	t.Helper()
	for !m.Halted {
		if fuel <= 0 {
			t.Fatalf("out of fuel")
		}
		fuel--
		if err := m.Step(); err != nil {
			t.Fatalf("step %d: %v", m.Steps, err)
		}
		if err := m.CheckState(); err != nil {
			t.Fatalf("preservation violated: %v\nterm: %s", err, m.Term)
		}
	}
	return m.Result
}

func TestMachinePairAllocation(t *testing.T) {
	// let region r in let p = put[r](1,2) in let x = get p in
	// let a = π1 x in let b = π2 x in let s = a+b in halt s
	prog := Program{Main: LetRegionT{R: "r", Body: LetT{
		X: "p", Op: PutOp{R: RVar{Name: "r"}, V: PairV{L: Num{N: 1}, R: Num{N: 2}}},
		Body: LetT{X: "x", Op: GetOp{V: Var{Name: "p"}},
			Body: LetT{X: "a", Op: ProjOp{I: 1, V: Var{Name: "x"}},
				Body: LetT{X: "b", Op: ProjOp{I: 2, V: Var{Name: "x"}},
					Body: LetT{X: "s", Op: ArithOp{Kind: Add, L: Var{Name: "a"}, R: Var{Name: "b"}},
						Body: HaltT{V: Var{Name: "s"}}}}}}}}}
	m := checkAndLoad(t, Base, prog, 0)
	v := runChecked(t, m, 100)
	if n, ok := v.(Num); !ok || n.N != 3 {
		t.Fatalf("result = %s, want 3", v)
	}
	if m.Mem.Stats().Puts != 1 {
		t.Errorf("puts = %d, want 1", m.Mem.Stats().Puts)
	}
}

func TestMachineCall(t *testing.T) {
	// f = λ[][r](x:int). halt x;  main = let region r in cd.0[][r](42)
	f := LamV{RParams: []nameN{"r"}, Params: []Param{{Name: "x", Ty: IntT{}}},
		Body: HaltT{V: Var{Name: "x"}}}
	prog := Program{
		Code: []NamedFun{{Name: "f", Fun: f}},
		Main: LetRegionT{R: "r", Body: AppT{Fn: CodeAddr(0), Rs: []Region{RVar{Name: "r"}}, Args: []Value{Num{N: 42}}}},
	}
	m := checkAndLoad(t, Base, prog, 0)
	v := runChecked(t, m, 100)
	if n, ok := v.(Num); !ok || n.N != 42 {
		t.Fatalf("result = %s, want 42", v)
	}
}

func TestMachinePolymorphicCall(t *testing.T) {
	// id = λ[t:Ω][r](x:M_r(t)). halt 0 — polymorphic over the tag.
	id := LamV{
		TParams: []TParam{{Name: "t", Kind: kinds.Omega{}}},
		RParams: []nameN{"r"},
		Params:  []Param{{Name: "x", Ty: MT{Rs: []Region{RVar{Name: "r"}}, Tag: tags.Var{Name: "t"}}}},
		Body:    HaltT{V: Num{N: 0}},
	}
	// main: let region r in let p = put[r](1,2) in cd.0[Int×Int][r](p)
	pairTag := tags.Prod{L: tags.Int{}, R: tags.Int{}}
	prog := Program{
		Code: []NamedFun{{Name: "id", Fun: id}},
		Main: LetRegionT{R: "r", Body: LetT{
			X: "p", Op: PutOp{R: RVar{Name: "r"}, V: PairV{L: Num{N: 1}, R: Num{N: 2}}},
			Body: AppT{Fn: CodeAddr(0), Tags: []tags.Tag{pairTag}, Rs: []Region{RVar{Name: "r"}}, Args: []Value{Var{Name: "p"}}},
		}},
	}
	m := checkAndLoad(t, Base, prog, 0)
	runChecked(t, m, 100)
}

func TestMachineTypecase(t *testing.T) {
	// analyze = λ[t:Ω][r](x:int). typecase t of int⇒halt 1; λ⇒halt 2; ×⇒halt 3; ∃⇒halt 4
	analyze := LamV{
		TParams: []TParam{{Name: "t", Kind: kinds.Omega{}}},
		RParams: []nameN{"r"},
		Params:  []Param{{Name: "x", Ty: IntT{}}},
		Body: TypecaseT{
			Tag:    tags.Var{Name: "t"},
			IntArm: HaltT{V: Num{N: 1}},
			TL:     "tl",
			LamArm: HaltT{V: Num{N: 2}},
			T1:     "t1", T2: "t2", ProdArm: HaltT{V: Num{N: 3}},
			Te: "te", ExistArm: HaltT{V: Num{N: 4}},
		},
	}
	cases := []struct {
		tag  tags.Tag
		want int
	}{
		{tags.Int{}, 1},
		{tags.Code{Args: []tags.Tag{tags.Int{}}}, 2},
		{tags.Prod{L: tags.Int{}, R: tags.Int{}}, 3},
		{tags.Exist{Bound: "u", Body: tags.Var{Name: "u"}}, 4},
	}
	for _, cse := range cases {
		prog := Program{
			Code: []NamedFun{{Name: "analyze", Fun: analyze}},
			Main: LetRegionT{R: "r", Body: AppT{Fn: CodeAddr(0), Tags: []tags.Tag{cse.tag}, Rs: []Region{RVar{Name: "r"}}, Args: []Value{Num{N: 0}}}},
		}
		m := checkAndLoad(t, Base, prog, 0)
		v := runChecked(t, m, 100)
		if n := v.(Num); n.N != cse.want {
			t.Errorf("typecase %s = %d, want %d", cse.tag, n.N, cse.want)
		}
	}
}

func TestMachineTypecaseRefinement(t *testing.T) {
	// The product arm uses the refined components: it projects from x once
	// it learns t = t1 × t2. Only typeable thanks to refinement.
	analyze := LamV{
		TParams: []TParam{{Name: "t", Kind: kinds.Omega{}}},
		RParams: []nameN{"r"},
		Params:  []Param{{Name: "x", Ty: MT{Rs: []Region{RVar{Name: "r"}}, Tag: tags.Var{Name: "t"}}}},
		Body: TypecaseT{
			Tag:    tags.Var{Name: "t"},
			IntArm: HaltT{V: Var{Name: "x"}}, // x : M_r(Int) = int after refinement
			TL:     "tl",
			LamArm: HaltT{V: Num{N: 0}},
			T1:     "t1", T2: "t2",
			ProdArm: LetT{X: "y", Op: GetOp{V: Var{Name: "x"}},
				Body: LetT{X: "a", Op: ProjOp{I: 1, V: Var{Name: "y"}},
					Body: HaltT{V: Num{N: 7}}}},
			Te: "te", ExistArm: HaltT{V: Num{N: 0}},
		},
	}
	pairTag := tags.Prod{L: tags.Int{}, R: tags.Int{}}
	prog := Program{
		Code: []NamedFun{{Name: "analyze", Fun: analyze}},
		Main: LetRegionT{R: "r", Body: LetT{
			X: "p", Op: PutOp{R: RVar{Name: "r"}, V: PairV{L: Num{N: 5}, R: Num{N: 6}}},
			Body: AppT{Fn: CodeAddr(0), Tags: []tags.Tag{pairTag}, Rs: []Region{RVar{Name: "r"}}, Args: []Value{Var{Name: "p"}}},
		}},
	}
	m := checkAndLoad(t, Base, prog, 0)
	v := runChecked(t, m, 100)
	if n := v.(Num); n.N != 7 {
		t.Errorf("got %d, want 7", n.N)
	}
}

func TestMachineOnlyReclaims(t *testing.T) {
	// Allocate in r1, move on with only {r2}: r1 reclaimed.
	prog := Program{Main: LetRegionT{R: "r1", Body: LetRegionT{R: "r2",
		Body: LetT{X: "p", Op: PutOp{R: RVar{Name: "r1"}, V: PairV{L: Num{N: 1}, R: Num{N: 2}}},
			Body: OnlyT{Delta: []Region{RVar{Name: "r2"}}, Body: HaltT{V: Num{N: 0}}}}}}}
	m := checkAndLoad(t, Base, prog, 0)
	runChecked(t, m, 100)
	if m.Mem.Stats().RegionsReclaimed != 1 || m.Mem.Stats().CellsReclaimed != 1 {
		t.Errorf("stats = %+v", m.Mem.Stats())
	}
}

func TestMachineIfGC(t *testing.T) {
	prog := Program{Main: LetRegionT{R: "r", Body: LetT{
		X: "p", Op: PutOp{R: RVar{Name: "r"}, V: PairV{L: Num{N: 1}, R: Num{N: 2}}},
		Body: IfGCT{R: RVar{Name: "r"}, Full: HaltT{V: Num{N: 1}}, Else: HaltT{V: Num{N: 0}}}}}}
	// With capacity 1 the region is full after one put.
	m := checkAndLoad(t, Base, prog, 1)
	if v := runChecked(t, m, 100); v.(Num).N != 1 {
		t.Errorf("full region not detected")
	}
	// With no capacity it is never full.
	m = checkAndLoad(t, Base, prog, 0)
	if v := runChecked(t, m, 100); v.(Num).N != 0 {
		t.Errorf("capacity-0 region reported full")
	}
}

func TestMachineExistentialPackage(t *testing.T) {
	// Package ⟨t=Int, 5 : M_r(t)⟩ : ∃t:Ω.M_r(t); open and halt payload
	// only typechecks because M_r(Int) = int.
	pk := PackTag{Bound: "t", Kind: kinds.Omega{}, Tag: tags.Int{}, Val: Num{N: 5},
		Body: MT{Rs: []Region{RVar{Name: "r"}}, Tag: tags.Var{Name: "t"}}}
	// halt x would NOT typecheck (x : M_r(t), t abstract) — so we merely
	// bind it and halt a constant.
	prog := Program{Main: LetRegionT{R: "r",
		Body: OpenTagT{V: pk, T: "t", X: "x", Body: HaltT{V: Num{N: 9}}}}}
	m := checkAndLoad(t, Base, prog, 0)
	if v := runChecked(t, m, 100); v.(Num).N != 9 {
		t.Errorf("existential open failed")
	}
}

func TestMachineForwConstructs(t *testing.T) {
	// Build inl (1,2) in r, ifleft on it, strip, project.
	prog := Program{Main: LetRegionT{R: "r", Body: LetT{
		X: "p", Op: PutOp{R: RVar{Name: "r"}, V: InlV{Val: PairV{L: Num{N: 4}, R: Num{N: 5}}}},
		Body: LetT{X: "y", Op: GetOp{V: Var{Name: "p"}},
			// y : left(int×int) — no sum here, so use strip directly.
			Body: LetT{X: "s", Op: StripOp{V: Var{Name: "y"}},
				Body: LetT{X: "a", Op: ProjOp{I: 2, V: Var{Name: "s"}},
					Body: HaltT{V: Var{Name: "a"}}}}}}}}
	m := checkAndLoad(t, Forw, prog, 0)
	if v := runChecked(t, m, 100); v.(Num).N != 5 {
		t.Errorf("strip/proj failed")
	}
}

func TestMachineGenConstructs(t *testing.T) {
	// Package a young-region pair as ∃r∈{ry,ro}, open it, ifreg on it.
	body := LetT{
		X: "p", Op: PutOp{R: RVar{Name: "ry"}, V: PairV{L: Num{N: 1}, R: Num{N: 2}}},
		Body: LetT{X: "q", Op: ValOp{V: PackRegion{
			Bound: "r", Delta: []Region{RVar{Name: "ry"}, RVar{Name: "ro"}}, R: RVar{Name: "ry"},
			Val:  Var{Name: "p"},
			Body: ProdT{L: IntT{}, R: IntT{}},
		}},
			Body: OpenRegionT{V: Var{Name: "q"}, R: "r'", X: "x",
				Body: IfRegT{R1: RVar{Name: "r'"}, R2: RVar{Name: "ro"},
					Then: HaltT{V: Num{N: 1}},
					Else: HaltT{V: Num{N: 2}}}}}}
	prog := Program{Main: LetRegionT{R: "ry", Body: LetRegionT{R: "ro", Body: body}}}
	m := checkAndLoad(t, Gen, prog, 0)
	if v := runChecked(t, m, 200); v.(Num).N != 2 {
		t.Errorf("ifreg: young region compared equal to old")
	}
}

func TestCheckerRejects(t *testing.T) {
	cases := []struct {
		name string
		d    Dialect
		p    Program
		want string
	}{
		{"halt non-int", Base,
			Program{Main: LetRegionT{R: "r", Body: LetT{X: "p", Op: PutOp{R: RVar{Name: "r"}, V: Num{N: 1}},
				Body: HaltT{V: Var{Name: "p"}}}}}, "want int"},
		{"unbound region", Base,
			Program{Main: LetT{X: "p", Op: PutOp{R: RVar{Name: "nope"}, V: Num{N: 1}}, Body: HaltT{V: Num{N: 0}}}},
			"not in scope"},
		{"proj from int", Base,
			Program{Main: LetT{X: "a", Op: ProjOp{I: 1, V: Num{N: 3}}, Body: HaltT{V: Num{N: 0}}}},
			"non-pair"},
		{"forw construct in base", Base,
			Program{Main: LetRegionT{R: "r", Body: LetT{X: "p", Op: PutOp{R: RVar{Name: "r"}, V: InlV{Val: Num{N: 1}}},
				Body: HaltT{V: Num{N: 0}}}}}, "not available"},
		{"gen construct in base", Base,
			Program{Main: LetRegionT{R: "r", Body: IfRegT{R1: RVar{Name: "r"}, R2: RVar{Name: "r"},
				Then: HaltT{V: Num{N: 0}}, Else: HaltT{V: Num{N: 0}}}}}, "not available"},
		{"only keeps dead var", Base,
			Program{Main: OnlyT{Delta: []Region{RVar{Name: "ghost"}}, Body: HaltT{V: Num{N: 0}}}},
			"not in scope"},
		{"use after only", Base,
			Program{Main: LetRegionT{R: "r1", Body: LetRegionT{R: "r2", Body: LetT{
				X: "p", Op: PutOp{R: RVar{Name: "r1"}, V: Num{N: 1}},
				Body: OnlyT{Delta: []Region{RVar{Name: "r2"}}, Body: LetT{
					X: "x", Op: GetOp{V: Var{Name: "p"}}, Body: HaltT{V: Num{N: 0}}}}}}}},
			"unbound variable"},
		{"call arity", Base,
			Program{
				Code: []NamedFun{{Name: "f", Fun: LamV{RParams: []nameN{"r"}, Params: []Param{{Name: "x", Ty: IntT{}}},
					Body: HaltT{V: Var{Name: "x"}}}}},
				Main: LetRegionT{R: "r", Body: AppT{Fn: CodeAddr(0), Rs: []Region{RVar{Name: "r"}},
					Args: []Value{Num{N: 1}, Num{N: 2}}}},
			}, "arguments"},
	}
	for _, cse := range cases {
		c := &Checker{Dialect: cse.d}
		_, _, err := c.CheckProgram(cse.p)
		if err == nil {
			t.Errorf("%s: checker accepted ill-typed program", cse.name)
			continue
		}
		if !strings.Contains(err.Error(), cse.want) {
			t.Errorf("%s: error %q does not mention %q", cse.name, err, cse.want)
		}
	}
}

func TestProgressOnWellTypedSteps(t *testing.T) {
	// A well-typed program must never get stuck (empirical progress).
	prog := Program{Main: LetRegionT{R: "r", Body: LetT{
		X: "p", Op: PutOp{R: RVar{Name: "r"}, V: PairV{L: Num{N: 1}, R: Num{N: 2}}},
		Body: LetT{X: "x", Op: GetOp{V: Var{Name: "p"}},
			Body: LetT{X: "a", Op: ProjOp{I: 1, V: Var{Name: "x"}},
				Body: If0T{V: Var{Name: "a"}, Then: HaltT{V: Num{N: 0}}, Else: HaltT{V: Num{N: 1}}}}}}}}
	m := checkAndLoad(t, Base, prog, 0)
	for !m.Halted {
		if err := m.Step(); err != nil {
			t.Fatalf("progress violated: %v", err)
		}
	}
}
