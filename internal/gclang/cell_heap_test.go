package gclang_test

import (
	"fmt"
	"testing"

	"psgc/internal/gclang"
	"psgc/internal/regions"
	"psgc/internal/workload"
)

// TestCellRoundTripProgramHeaps runs real compiled workloads to completion
// on both machines and both backends, then round-trips every live heap
// cell through a fresh set of pools: decode out of the machine's pools,
// re-encode into empty ones, decode again. The final heaps of actual
// collector executions are the richest cell population we have (forwarded
// sums, nested closure packages, translucent applications), so this is
// the end-to-end complement of the random-value property.
func TestCellRoundTripProgramHeaps(t *testing.T) {
	for _, d := range []gclang.Dialect{gclang.Base, gclang.Forw, gclang.Gen} {
		for _, be := range []regions.Backend{regions.BackendMap, regions.BackendArena} {
			t.Run(fmt.Sprintf("%s/%s", d, be), func(t *testing.T) {
				c, err := workload.BuildCollectOnce(d, workload.DAG, 5)
				if err != nil {
					t.Fatal(err)
				}
				m := gclang.NewEnvMachineOn(be, d, c.Prog, 0)
				if _, err := m.Run(2_000_000); err != nil {
					t.Fatal(err)
				}
				fresh := gclang.NewPools()
				cells := 0
				for _, a := range m.Mem.Cells() {
					cell, ok := m.Mem.Peek(a)
					if !ok {
						t.Fatalf("live cell %v not peekable", a)
					}
					v := m.Pool.Decode(cell)
					re := fresh.Encode(v)
					if got := fresh.Decode(re).String(); got != v.String() {
						t.Fatalf("cell %v:\n  in:  %s\n  out: %s", a, v, got)
					}
					if cw, vw := fresh.CellWords(re), gclang.ValueWords(v); cw != vw {
						t.Fatalf("cell %v (%s): CellWords %d, ValueWords %d", a, v, cw, vw)
					}
					cells++
				}
				if cells == 0 {
					t.Fatal("workload left no live cells to round-trip")
				}
			})
		}
	}
}
