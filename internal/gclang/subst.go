package gclang

import (
	"fmt"

	"psgc/internal/names"
	"psgc/internal/tags"
)

// Subst is a simultaneous substitution over λGC's four namespaces: term
// variables (values), tag variables, region variables, and type variables
// α. The machine substitutes closed payloads; the typechecker substitutes
// possibly open tags and regions (typecase refinement, ifreg unification),
// so substitution is capture-avoiding in every namespace.
type Subst struct {
	Vals  map[names.Name]Value
	Tags  map[names.Name]tags.Tag
	Regs  map[names.Name]Region
	Types map[names.Name]Type

	// Closed declares every replacement payload closed (no free names in
	// any namespace), as is always the case for the abstract machine's
	// substitutions: binders then only shadow and are never renamed, and
	// no free-variable scans are needed.
	Closed bool

	// Free names of the replacement payloads, per namespace, computed on
	// first use; binders matching these sets trigger α-renaming.
	avoid *freeSets
}

type freeSets struct {
	vals, tagvs, regs, types names.Set
}

// SubstVals builds a term-variable substitution.
func SubstVals(m map[names.Name]Value) *Subst { return &Subst{Vals: m} }

// SubstTags builds a tag-variable substitution.
func SubstTags(m map[names.Name]tags.Tag) *Subst { return &Subst{Tags: m} }

// SubstRegs builds a region-variable substitution.
func SubstRegs(m map[names.Name]Region) *Subst { return &Subst{Regs: m} }

// SubstTypes builds a type-variable (α) substitution.
func SubstTypes(m map[names.Name]Type) *Subst { return &Subst{Types: m} }

// Subst1Val substitutes a single value for x.
func Subst1Val(x names.Name, v Value) *Subst {
	return SubstVals(map[names.Name]Value{x: v})
}

// Subst1Tag substitutes a single tag for t.
func Subst1Tag(t names.Name, tg tags.Tag) *Subst {
	return SubstTags(map[names.Name]tags.Tag{t: tg})
}

// Subst1Reg substitutes a single region for r.
func Subst1Reg(r names.Name, rg Region) *Subst {
	return SubstRegs(map[names.Name]Region{r: rg})
}

// Subst1Type substitutes a single type for α.
func Subst1Type(a names.Name, ty Type) *Subst {
	return SubstTypes(map[names.Name]Type{a: ty})
}

func (s *Subst) empty() bool {
	return len(s.Vals) == 0 && len(s.Tags) == 0 && len(s.Regs) == 0 && len(s.Types) == 0
}

func (s *Subst) freeSets() *freeSets {
	if s.avoid != nil {
		return s.avoid
	}
	fs := &freeSets{
		vals:  make(names.Set),
		tagvs: make(names.Set),
		regs:  make(names.Set),
		types: make(names.Set),
	}
	if s.Closed {
		s.avoid = fs
		return fs
	}
	acc := &freeAcc{out: fs}
	for _, v := range s.Vals {
		acc.value(v, newScopes())
	}
	for _, t := range s.Tags {
		for n := range tags.FreeVars(t) {
			fs.tagvs.Add(n)
		}
	}
	for _, r := range s.Regs {
		acc.region(r, newScopes())
	}
	for _, ty := range s.Types {
		acc.typ(ty, newScopes())
	}
	s.avoid = fs
	return fs
}

// namespace identifies one of the four binder namespaces.
type namespace int

const (
	nsVal namespace = iota
	nsTag
	nsReg
	nsType
)

func (s *Subst) has(ns namespace, n names.Name) bool {
	switch ns {
	case nsVal:
		_, ok := s.Vals[n]
		return ok
	case nsTag:
		_, ok := s.Tags[n]
		return ok
	case nsReg:
		_, ok := s.Regs[n]
		return ok
	default:
		_, ok := s.Types[n]
		return ok
	}
}

func (s *Subst) avoidSet(ns namespace) names.Set {
	fs := s.freeSets()
	switch ns {
	case nsVal:
		return fs.vals
	case nsTag:
		return fs.tagvs
	case nsReg:
		return fs.regs
	default:
		return fs.types
	}
}

// drop returns a substitution identical to s but without entries for the
// given names in namespace ns (used when a binder shadows).
func (s *Subst) drop(ns namespace, ns2 ...names.Name) *Subst {
	needs := false
	for _, n := range ns2 {
		if s.has(ns, n) {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	out := &Subst{Vals: s.Vals, Tags: s.Tags, Regs: s.Regs, Types: s.Types, Closed: s.Closed}
	switch ns {
	case nsVal:
		out.Vals = copyMapWithout(s.Vals, ns2)
	case nsTag:
		out.Tags = copyMapWithout(s.Tags, ns2)
	case nsReg:
		out.Regs = copyMapWithout(s.Regs, ns2)
	default:
		out.Types = copyMapWithout(s.Types, ns2)
	}
	return out
}

func copyMapWithout[V any](m map[names.Name]V, drop []names.Name) map[names.Name]V {
	out := make(map[names.Name]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	for _, n := range drop {
		delete(out, n)
	}
	return out
}

// binder processes one binder in namespace ns: it narrows the substitution,
// and if the binder name would capture a free name of a replacement, it
// renames the binder, returning the (possibly fresh) name, the narrowed
// substitution, and a pre-substitution to apply to the binder's scope
// (nil when no renaming is needed).
func (s *Subst) binder(ns namespace, n names.Name) (names.Name, *Subst, *Subst) {
	inner := s.drop(ns, n)
	if inner.empty() {
		return n, inner, nil
	}
	if !inner.avoidSet(ns).Has(n) {
		return n, inner, nil
	}
	fresh := n
	avoid := inner.avoidSet(ns)
	for avoid.Has(fresh) {
		fresh += "'"
	}
	var pre *Subst
	switch ns {
	case nsVal:
		pre = Subst1Val(n, Var{Name: fresh})
	case nsTag:
		pre = Subst1Tag(n, tags.Var{Name: fresh})
	case nsReg:
		pre = Subst1Reg(n, RVar{Name: fresh})
	default:
		pre = Subst1Type(n, AlphaT{Name: fresh})
	}
	return fresh, inner, pre
}

// binders processes a list of binders in one namespace, returning the new
// names, the narrowed substitution, and the composed pre-substitution
// (applied to the scope before the narrowed substitution).
func (s *Subst) binders(ns namespace, list []names.Name) ([]names.Name, *Subst, *Subst) {
	out := append([]names.Name(nil), list...)
	inner := s.drop(ns, list...)
	if inner.empty() {
		return out, inner, nil
	}
	avoid := inner.avoidSet(ns)
	var pre *Subst
	for i, n := range list {
		if !avoid.Has(n) {
			continue
		}
		fresh := n
		for avoid.Has(fresh) {
			fresh += "'"
		}
		out[i] = fresh
		if pre == nil {
			pre = &Subst{}
		}
		switch ns {
		case nsVal:
			if pre.Vals == nil {
				pre.Vals = map[names.Name]Value{}
			}
			pre.Vals[n] = Var{Name: fresh}
		case nsTag:
			if pre.Tags == nil {
				pre.Tags = map[names.Name]tags.Tag{}
			}
			pre.Tags[n] = tags.Var{Name: fresh}
		case nsReg:
			if pre.Regs == nil {
				pre.Regs = map[names.Name]Region{}
			}
			pre.Regs[n] = RVar{Name: fresh}
		default:
			if pre.Types == nil {
				pre.Types = map[names.Name]Type{}
			}
			pre.Types[n] = AlphaT{Name: fresh}
		}
	}
	return out, inner, pre
}

// Tag applies the substitution to a tag.
func (s *Subst) Tag(t tags.Tag) tags.Tag {
	if len(s.Tags) == 0 {
		return t
	}
	if s.Closed {
		return tags.SubstAllClosed(t, s.Tags)
	}
	return tags.SubstAll(t, s.Tags)
}

// TagList applies the substitution to a tag list.
func (s *Subst) TagList(ts []tags.Tag) []tags.Tag {
	if len(s.Tags) == 0 {
		return ts
	}
	out := make([]tags.Tag, len(ts))
	for i, t := range ts {
		out[i] = s.Tag(t)
	}
	return out
}

// Region applies the substitution to a region expression.
func (s *Subst) Region(r Region) Region {
	if rv, ok := r.(RVar); ok {
		if repl, ok := s.Regs[rv.Name]; ok {
			return repl
		}
	}
	return r
}

// RegionList applies the substitution to a region list.
func (s *Subst) RegionList(rs []Region) []Region {
	out := make([]Region, len(rs))
	for i, r := range rs {
		out[i] = s.Region(r)
	}
	return out
}

// Type applies the substitution to a type. Term variables cannot occur in
// types, so a value-only substitution returns the type unchanged — this
// short-circuit matters: the machine substitutes values at every let, and
// rebuilding every annotation each step would make execution cubic.
func (s *Subst) Type(t Type) Type {
	if len(s.Tags) == 0 && len(s.Regs) == 0 && len(s.Types) == 0 {
		return t
	}
	switch t := t.(type) {
	case IntT:
		return t
	case ProdT:
		return ProdT{L: s.Type(t.L), R: s.Type(t.R)}
	case CodeT:
		// Code types are fully closed except for their own binders; the
		// tag binders scope over Params, region binders likewise.
		inner := s.drop(nsTag, tparamNames(t.TParams)...)
		rps, inner2, pre := inner.binders(nsReg, t.RParams)
		params := t.Params
		if pre != nil {
			params = applyTypes(pre, params)
		}
		return CodeT{TParams: t.TParams, RParams: rps, Params: applyTypes(inner2, params)}
	case ExistT:
		b, inner, pre := s.binder(nsTag, t.Bound)
		body := t.Body
		if pre != nil {
			body = pre.Type(body)
		}
		return ExistT{Bound: b, Kind: t.Kind, Body: inner.Type(body)}
	case AtT:
		return AtT{Body: s.Type(t.Body), R: s.Region(t.R)}
	case MT:
		return MT{Rs: s.RegionList(t.Rs), Tag: s.Tag(t.Tag)}
	case CT:
		return CT{From: s.Region(t.From), To: s.Region(t.To), Tag: s.Tag(t.Tag)}
	case AlphaT:
		if repl, ok := s.Types[t.Name]; ok {
			return repl
		}
		return t
	case ExistAlphaT:
		b, inner, pre := s.binder(nsType, t.Bound)
		body := t.Body
		if pre != nil {
			body = pre.Type(body)
		}
		return ExistAlphaT{Bound: b, Delta: s.RegionList(t.Delta), Body: inner.Type(body)}
	case TransT:
		return TransT{Tags: s.TagList(t.Tags), Rs: s.RegionList(t.Rs), Params: applyTypes(s, t.Params), R: s.Region(t.R)}
	case LeftT:
		return LeftT{Body: s.Type(t.Body)}
	case RightT:
		return RightT{Body: s.Type(t.Body)}
	case SumT:
		return SumT{L: s.Type(t.L), R: s.Type(t.R)}
	case ExistRT:
		b, inner, pre := s.binder(nsReg, t.Bound)
		body := t.Body
		if pre != nil {
			body = pre.Type(body)
		}
		return ExistRT{Bound: b, Delta: s.RegionList(t.Delta), Body: inner.Type(body)}
	default:
		panic(fmt.Sprintf("gclang: unknown type %T", t))
	}
}

func applyTypes(s *Subst, ts []Type) []Type {
	out := make([]Type, len(ts))
	for i, t := range ts {
		out[i] = s.Type(t)
	}
	return out
}

func tparamNames(tps []TParam) []names.Name {
	out := make([]names.Name, len(tps))
	for i, tp := range tps {
		out[i] = tp.Name
	}
	return out
}

// Value applies the substitution to a value.
func (s *Subst) Value(v Value) Value {
	if s.empty() {
		return v
	}
	switch v := v.(type) {
	case Num, AddrV:
		return v
	case Var:
		if repl, ok := s.Vals[v.Name]; ok {
			return repl
		}
		return v
	case PairV:
		return PairV{L: s.Value(v.L), R: s.Value(v.R)}
	case PackTag:
		b, inner, pre := s.binder(nsTag, v.Bound)
		body := v.Body
		if pre != nil {
			body = pre.Type(body)
		}
		return PackTag{Bound: b, Kind: v.Kind, Tag: s.Tag(v.Tag), Val: s.Value(v.Val), Body: inner.Type(body)}
	case PackAlpha:
		b, inner, pre := s.binder(nsType, v.Bound)
		body := v.Body
		if pre != nil {
			body = pre.Type(body)
		}
		return PackAlpha{Bound: b, Delta: s.RegionList(v.Delta), Hidden: s.Type(v.Hidden),
			Val: s.Value(v.Val), Body: inner.Type(body)}
	case PackRegion:
		b, inner, pre := s.binder(nsReg, v.Bound)
		body := v.Body
		if pre != nil {
			body = pre.Type(body)
		}
		return PackRegion{Bound: b, Delta: s.RegionList(v.Delta), R: s.Region(v.R),
			Val: s.Value(v.Val), Body: inner.Type(body)}
	case TAppV:
		return TAppV{Val: s.Value(v.Val), Tags: s.TagList(v.Tags), Rs: s.RegionList(v.Rs)}
	case LamV:
		// λ[t:κ][r](x:σ).e binds tags, regions and params over both the
		// parameter types and the body.
		innerT := s.drop(nsTag, tparamNames(v.TParams)...)
		rps, innerR, preR := innerT.binders(nsReg, v.RParams)
		params := v.Params
		body := v.Body
		if preR != nil {
			params = applyParams(preR, params)
			body = preR.Term(body)
		}
		pnames := make([]names.Name, len(params))
		for i, p := range params {
			pnames[i] = p.Name
		}
		pns, innerV, preV := innerR.binders(nsVal, pnames)
		if preV != nil {
			body = preV.Term(body)
		}
		outParams := make([]Param, len(params))
		for i, p := range params {
			outParams[i] = Param{Name: pns[i], Ty: innerR.Type(p.Ty)}
		}
		return LamV{TParams: v.TParams, RParams: rps, Params: outParams, Body: innerV.Term(body)}
	case InlV:
		return InlV{Val: s.Value(v.Val)}
	case InrV:
		return InrV{Val: s.Value(v.Val)}
	default:
		panic(fmt.Sprintf("gclang: unknown value %T", v))
	}
}

func applyParams(s *Subst, ps []Param) []Param {
	out := make([]Param, len(ps))
	for i, p := range ps {
		out[i] = Param{Name: p.Name, Ty: s.Type(p.Ty)}
	}
	return out
}

// Op applies the substitution to an operation.
func (s *Subst) Op(o Op) Op {
	switch o := o.(type) {
	case ValOp:
		return ValOp{V: s.Value(o.V)}
	case ProjOp:
		return ProjOp{I: o.I, V: s.Value(o.V)}
	case PutOp:
		var anno Type
		if o.Anno != nil {
			anno = s.Type(o.Anno)
		}
		return PutOp{R: s.Region(o.R), V: s.Value(o.V), Anno: anno}
	case GetOp:
		return GetOp{V: s.Value(o.V)}
	case StripOp:
		return StripOp{V: s.Value(o.V)}
	case ArithOp:
		return ArithOp{Kind: o.Kind, L: s.Value(o.L), R: s.Value(o.R)}
	default:
		panic(fmt.Sprintf("gclang: unknown op %T", o))
	}
}

// Term applies the substitution to a term.
func (s *Subst) Term(e Term) Term {
	if s.empty() {
		return e
	}
	switch e := e.(type) {
	case AppT:
		return AppT{Fn: s.Value(e.Fn), Tags: s.TagList(e.Tags), Rs: s.RegionList(e.Rs), Args: s.values(e.Args)}
	case LetT:
		op := s.Op(e.Op)
		x, inner, pre := s.binder(nsVal, e.X)
		body := e.Body
		if pre != nil {
			body = pre.Term(body)
		}
		return LetT{X: x, Op: op, Body: inner.Term(body)}
	case HaltT:
		return HaltT{V: s.Value(e.V)}
	case IfGCT:
		return IfGCT{R: s.Region(e.R), Full: s.Term(e.Full), Else: s.Term(e.Else)}
	case OpenTagT:
		v := s.Value(e.V)
		t, innerT, preT := s.binder(nsTag, e.T)
		body := e.Body
		if preT != nil {
			body = preT.Term(body)
		}
		x, innerV, preV := innerT.binder(nsVal, e.X)
		if preV != nil {
			body = preV.Term(body)
		}
		return OpenTagT{V: v, T: t, X: x, Body: innerV.Term(body)}
	case OpenAlphaT:
		v := s.Value(e.V)
		a, innerA, preA := s.binder(nsType, e.A)
		body := e.Body
		if preA != nil {
			body = preA.Term(body)
		}
		x, innerV, preV := innerA.binder(nsVal, e.X)
		if preV != nil {
			body = preV.Term(body)
		}
		return OpenAlphaT{V: v, A: a, X: x, Body: innerV.Term(body)}
	case LetRegionT:
		r, inner, pre := s.binder(nsReg, e.R)
		body := e.Body
		if pre != nil {
			body = pre.Term(body)
		}
		return LetRegionT{R: r, Body: inner.Term(body)}
	case OnlyT:
		return OnlyT{Delta: s.RegionList(e.Delta), Body: s.Term(e.Body)}
	case TypecaseT:
		tag := s.Tag(e.Tag)
		intArm := s.Term(e.IntArm)
		tl, innerL, preL := s.binder(nsTag, e.TL)
		lamArm := e.LamArm
		if preL != nil {
			lamArm = preL.Term(lamArm)
		}
		lamArm = innerL.Term(lamArm)
		prodBinders, innerP, preP := s.binders(nsTag, []names.Name{e.T1, e.T2})
		prodArm := e.ProdArm
		if preP != nil {
			prodArm = preP.Term(prodArm)
		}
		prodArm = innerP.Term(prodArm)
		te, innerE, preE := s.binder(nsTag, e.Te)
		existArm := e.ExistArm
		if preE != nil {
			existArm = preE.Term(existArm)
		}
		existArm = innerE.Term(existArm)
		return TypecaseT{Tag: tag, IntArm: intArm, TL: tl, LamArm: lamArm,
			T1: prodBinders[0], T2: prodBinders[1], ProdArm: prodArm,
			Te: te, ExistArm: existArm}
	case IfLeftT:
		v := s.Value(e.V)
		x, inner, pre := s.binder(nsVal, e.X)
		l, r := e.L, e.R
		if pre != nil {
			l = pre.Term(l)
			r = pre.Term(r)
		}
		return IfLeftT{X: x, V: v, L: inner.Term(l), R: inner.Term(r)}
	case SetT:
		return SetT{Dst: s.Value(e.Dst), Src: s.Value(e.Src), Body: s.Term(e.Body)}
	case WidenT:
		v := s.Value(e.V)
		var from Region
		if e.From != nil {
			from = s.Region(e.From)
		}
		x, inner, pre := s.binder(nsVal, e.X)
		body := e.Body
		if pre != nil {
			body = pre.Term(body)
		}
		return WidenT{X: x, To: s.Region(e.To), Tag: s.Tag(e.Tag), V: v,
			Body: inner.Term(body), From: from}
	case OpenRegionT:
		v := s.Value(e.V)
		r, innerR, preR := s.binder(nsReg, e.R)
		body := e.Body
		if preR != nil {
			body = preR.Term(body)
		}
		x, innerV, preV := innerR.binder(nsVal, e.X)
		if preV != nil {
			body = preV.Term(body)
		}
		return OpenRegionT{V: v, R: r, X: x, Body: innerV.Term(body)}
	case IfRegT:
		return IfRegT{R1: s.Region(e.R1), R2: s.Region(e.R2), Then: s.Term(e.Then), Else: s.Term(e.Else)}
	case If0T:
		return If0T{V: s.Value(e.V), Then: s.Term(e.Then), Else: s.Term(e.Else)}
	default:
		panic(fmt.Sprintf("gclang: unknown term %T", e))
	}
}

func (s *Subst) values(vs []Value) []Value {
	out := make([]Value, len(vs))
	for i, v := range vs {
		out[i] = s.Value(v)
	}
	return out
}
