package gclang

import (
	"fmt"
	"unsafe"

	"psgc/internal/names"
	"psgc/internal/tags"
)

// Descriptor memoization for the packed machine's hot path.
//
// A collector loop mints thousands of packages per collection, and each
// one used to re-resolve its type annotation (witness tag, existential
// body) against the environment and append a fresh pool entry — profiles
// showed that resolution, not mutator work, dominating whole-run time on
// the packed machine. But a descriptor (see cell.go) depends on exactly
// two things: the pack literal in the program text and the type-level
// environment it resolves under. Both recur: the literal is a fixed tree
// node, and a copy loop re-enters its code block with the same handful of
// region and tag bindings for every cell it copies. So the machine keeps,
// per pack literal, a small cache of (type-level environment → descriptor
// index); a hit skips resolution and pool growth entirely, which is what
// lets a collection's packages share one descriptor.
//
// The cache key is the identity of the pack literal: the data pointer of
// its Value interface. Program syntax is built once and retained by the
// machine for its lifetime, so tree-node pointers are stable and never
// reused. The machine only ever packs literals from the program tree —
// decoded values re-enter control flow solely as translucent call heads,
// which are code values, not packages — so dynamically built values do
// not reach this cache. Hits additionally verify the recorded bindings
// value-by-value (below), so a colliding key costs a miss, never a wrong
// descriptor... provided the colliding node resolves identically under
// identical environments, which is exactly what the per-binding check
// cannot distinguish; the binder-name guard in lookup narrows that
// further.
//
// Validity is checked by value, not by generation: a snapshot records
// the bindings of the annotation's free variables — computed once per
// literal by a syntax walk that mirrors the resolver's shadow discipline
// — and a hit requires those bindings (including absences) to match the
// current environment. Resolution only ever consults the free variables
// of what it resolves, so comparing exactly those names is as sound as
// comparing the whole environment and far cheaper: a pack annotation
// typically mentions one or two region variables and a witness tag,
// while the environment carries every binding the program has built up.
// Equality is structural identity (stricter than α-equivalence) — a
// false negative costs one redundant resolution, never correctness. The
// term-variable environment is irrelevant: term variables cannot occur
// in types, the same fact resolver.typ's short-circuit rests on.

// memoCap bounds the environments remembered per pack literal. A copy
// loop cycles through one environment per (from, to, tag) combination —
// a handful — while each new collection's fresh to-region retires the
// previous collection's entries; replace-oldest keeps the window tight.
const memoCap = 16

// A binding records what the environment said about one free variable of
// the annotation when the descriptor was resolved; ok distinguishes "bound
// to this" from "unbound" (an unbound variable resolves to itself, so it
// must still be unbound for the entry to apply).
type regBinding struct {
	n  names.Name
	r  Region
	ok bool
}

type tagBinding struct {
	n  names.Name
	t  tags.Tag
	ok bool
}

type typBinding struct {
	n  names.Name
	t  Type
	ok bool
}

// memoEntry is one resolved descriptor together with the bindings of the
// annotation's free variables it was resolved under.
type memoEntry struct {
	regs []regBinding
	tags []tagBinding
	typs []typBinding
	desc uint64
}

// freeVars holds the free variables of a pack literal's annotation, split
// by namespace. Computed once per literal (the annotation is fixed
// syntax) and deduplicated; order is irrelevant.
type freeVars struct {
	tags []names.Name
	regs []names.Name
	typs []names.Name
}

// nodeMemo is the per-literal cache: which pack form the literal is (a
// guard against key collisions), the annotation's free variables, and a
// replace-oldest ring of entries.
type nodeMemo struct {
	kind    CellTag
	bound   names.Name
	fv      freeVars
	fvSet   bool
	entries []memoEntry
	next    int
}

// ifaceData returns the data pointer of a Value interface — the identity
// of the syntax node it was read from. Safe because gclang syntax nodes
// are multi-word structs: the interface data word is always a pointer to
// the boxed copy made when the tree was built.
func ifaceData(v Value) unsafe.Pointer {
	return (*[2]unsafe.Pointer)(unsafe.Pointer(&v))[1]
}

// memoLookup finds a descriptor for the pack literal identified by key,
// valid under the current type-level environment. On a miss it returns
// the nodeMemo to record the freshly resolved descriptor into (nil when
// memoization does not apply, e.g. under shadowing binders).
func (m *EnvMachine) memoLookup(key unsafe.Pointer, kind CellTag, bound names.Name) (uint64, *nodeMemo, bool) {
	if len(m.shTags)+len(m.shRegs)+len(m.shTyps) != 0 {
		// Resolving under a shadow stack (a pack nested inside another
		// annotation): rare, and the stack state would have to join the
		// key. Resolve unmemoized.
		return 0, nil, false
	}
	nm := m.packMemo[key]
	if nm == nil {
		nm = &nodeMemo{kind: kind, bound: bound}
		m.packMemo[key] = nm
	} else if nm.kind != kind || nm.bound != bound {
		// The key identifies a different literal than it used to (only
		// possible for a non-tree value, which the machine never packs);
		// reset rather than trust any recorded entry.
		*nm = nodeMemo{kind: kind, bound: bound}
	}
	for i := range nm.entries {
		if m.memoValid(&nm.entries[i]) {
			return nm.entries[i].desc, nm, true
		}
	}
	return 0, nm, false
}

// memoStore records a freshly resolved descriptor under a snapshot of the
// annotation's free-variable bindings. The literal is passed so the free
// variables can be computed on the node's first store.
func (m *EnvMachine) memoStore(nm *nodeMemo, desc uint64, v Value) {
	if nm == nil {
		return
	}
	if !nm.fvSet {
		nm.fv = packFreeVars(v)
		nm.fvSet = true
	}
	e := memoEntry{desc: desc}
	if n := len(nm.fv.regs); n > 0 {
		e.regs = make([]regBinding, n)
		for i, name := range nm.fv.regs {
			r, ok := m.envRegs[name]
			e.regs[i] = regBinding{n: name, r: r, ok: ok}
		}
	}
	if n := len(nm.fv.tags); n > 0 {
		e.tags = make([]tagBinding, n)
		for i, name := range nm.fv.tags {
			t, ok := m.envTags[name]
			e.tags[i] = tagBinding{n: name, t: t, ok: ok}
		}
	}
	if n := len(nm.fv.typs); n > 0 {
		e.typs = make([]typBinding, n)
		for i, name := range nm.fv.typs {
			t, ok := m.envTyps[name]
			e.typs[i] = typBinding{n: name, t: t, ok: ok}
		}
	}
	if len(nm.entries) < memoCap {
		nm.entries = append(nm.entries, e)
		return
	}
	nm.entries[nm.next] = e
	nm.next = (nm.next + 1) % memoCap
}

// memoValid reports whether the entry's free-variable bindings match the
// current environment — bound names must carry structurally identical
// values, unbound names must still be unbound.
func (m *EnvMachine) memoValid(e *memoEntry) bool {
	for i := range e.regs {
		b := &e.regs[i]
		if r, ok := m.envRegs[b.n]; ok != b.ok || (ok && r != b.r) {
			return false
		}
	}
	for i := range e.tags {
		b := &e.tags[i]
		if t, ok := m.envTags[b.n]; ok != b.ok || (ok && !tagIdentical(t, b.t)) {
			return false
		}
	}
	for i := range e.typs {
		b := &e.typs[i]
		if t, ok := m.envTyps[b.n]; ok != b.ok || (ok && !typeIdentical(t, b.t)) {
			return false
		}
	}
	return true
}

// fvWalker accumulates the free variables of annotation syntax under the
// same shadow discipline the resolver uses (see tag1/typ1 in
// resolver.go): a name is free exactly when the resolver would consult
// the environment for it. Unknown syntax forms panic, as they do in the
// resolver — silently skipping one would under-approximate the free set
// and let a stale descriptor validate.
type fvWalker struct {
	fv     freeVars
	shTags []names.Name
	shRegs []names.Name
	shTyps []names.Name
}

func appendName(ns []names.Name, n names.Name) []names.Name {
	for _, have := range ns {
		if have == n {
			return ns
		}
	}
	return append(ns, n)
}

func (w *fvWalker) tag(t tags.Tag) {
	switch t := t.(type) {
	case tags.Int:
	case tags.Var:
		if !shadowed(w.shTags, t.Name) {
			w.fv.tags = appendName(w.fv.tags, t.Name)
		}
	case tags.Prod:
		w.tag(t.L)
		w.tag(t.R)
	case tags.Code:
		for _, a := range t.Args {
			w.tag(a)
		}
	case tags.Exist:
		w.shTags = append(w.shTags, t.Bound)
		w.tag(t.Body)
		w.shTags = w.shTags[:len(w.shTags)-1]
	case tags.Lam:
		w.shTags = append(w.shTags, t.Param)
		w.tag(t.Body)
		w.shTags = w.shTags[:len(w.shTags)-1]
	case tags.App:
		w.tag(t.Fn)
		w.tag(t.Arg)
	default:
		panic(fmt.Sprintf("gclang: unknown tag %T", t))
	}
}

func (w *fvWalker) region(r Region) {
	if rv, ok := r.(RVar); ok && !shadowed(w.shRegs, rv.Name) {
		w.fv.regs = appendName(w.fv.regs, rv.Name)
	}
}

func (w *fvWalker) regions(rs []Region) {
	for _, r := range rs {
		w.region(r)
	}
}

func (w *fvWalker) typ(t Type) {
	switch t := t.(type) {
	case IntT:
	case ProdT:
		w.typ(t.L)
		w.typ(t.R)
	case CodeT:
		for _, tp := range t.TParams {
			w.shTags = append(w.shTags, tp.Name)
		}
		w.shRegs = append(w.shRegs, t.RParams...)
		for _, p := range t.Params {
			w.typ(p)
		}
		w.shRegs = w.shRegs[:len(w.shRegs)-len(t.RParams)]
		w.shTags = w.shTags[:len(w.shTags)-len(t.TParams)]
	case ExistT:
		w.shTags = append(w.shTags, t.Bound)
		w.typ(t.Body)
		w.shTags = w.shTags[:len(w.shTags)-1]
	case AtT:
		w.typ(t.Body)
		w.region(t.R)
	case MT:
		w.regions(t.Rs)
		w.tag(t.Tag)
	case CT:
		w.region(t.From)
		w.region(t.To)
		w.tag(t.Tag)
	case AlphaT:
		if !shadowed(w.shTyps, t.Name) {
			w.fv.typs = appendName(w.fv.typs, t.Name)
		}
	case ExistAlphaT:
		w.regions(t.Delta)
		w.shTyps = append(w.shTyps, t.Bound)
		w.typ(t.Body)
		w.shTyps = w.shTyps[:len(w.shTyps)-1]
	case TransT:
		for _, tg := range t.Tags {
			w.tag(tg)
		}
		w.regions(t.Rs)
		for _, p := range t.Params {
			w.typ(p)
		}
		w.region(t.R)
	case LeftT:
		w.typ(t.Body)
	case RightT:
		w.typ(t.Body)
	case SumT:
		w.typ(t.L)
		w.typ(t.R)
	case ExistRT:
		w.regions(t.Delta)
		w.shRegs = append(w.shRegs, t.Bound)
		w.typ(t.Body)
		w.shRegs = w.shRegs[:len(w.shRegs)-1]
	default:
		panic(fmt.Sprintf("gclang: unknown type %T", t))
	}
}

// packFreeVars computes the free variables of a pack literal's annotation
// — exactly the names cellOf's miss path can ask the environment for,
// with the pack's own binder shadowed over the part it scopes (mirroring
// the shadow pushes in cellOf).
func packFreeVars(v Value) freeVars {
	var w fvWalker
	switch v := v.(type) {
	case PackTag:
		w.tag(v.Tag)
		w.shTags = append(w.shTags, v.Bound)
		w.typ(v.Body)
	case PackAlpha:
		w.regions(v.Delta)
		w.typ(v.Hidden)
		w.shTyps = append(w.shTyps, v.Bound)
		w.typ(v.Body)
	case PackRegion:
		w.regions(v.Delta)
		w.region(v.R)
		w.shRegs = append(w.shRegs, v.Bound)
		w.typ(v.Body)
	case TAppV:
		for _, t := range v.Tags {
			w.tag(t)
		}
		w.regions(v.Rs)
	default:
		panic(fmt.Sprintf("gclang: free variables of non-pack value %T", v))
	}
	return w.fv
}

// tagIdentical is allocation-free structural identity on tags — stricter
// than tags.Equal's α-equivalence, which is fine for cache validity:
// mistaking identical for different costs a re-resolution, nothing more.
func tagIdentical(a, b tags.Tag) bool {
	switch a := a.(type) {
	case tags.Int:
		_, ok := b.(tags.Int)
		return ok
	case tags.Var:
		bb, ok := b.(tags.Var)
		return ok && a.Name == bb.Name
	case tags.Prod:
		bb, ok := b.(tags.Prod)
		return ok && tagIdentical(a.L, bb.L) && tagIdentical(a.R, bb.R)
	case tags.Code:
		bb, ok := b.(tags.Code)
		return ok && tagsIdentical(a.Args, bb.Args)
	case tags.Exist:
		bb, ok := b.(tags.Exist)
		return ok && a.Bound == bb.Bound && tagIdentical(a.Body, bb.Body)
	case tags.Lam:
		bb, ok := b.(tags.Lam)
		return ok && a.Param == bb.Param && tagIdentical(a.Body, bb.Body)
	case tags.App:
		bb, ok := b.(tags.App)
		return ok && tagIdentical(a.Fn, bb.Fn) && tagIdentical(a.Arg, bb.Arg)
	default:
		return false
	}
}

func tagsIdentical(a, b []tags.Tag) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !tagIdentical(a[i], b[i]) {
			return false
		}
	}
	return true
}

func regionsIdentical(a, b []Region) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func typesIdentical(a, b []Type) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !typeIdentical(a[i], b[i]) {
			return false
		}
	}
	return true
}

// typeIdentical is allocation-free structural identity on types.
func typeIdentical(a, b Type) bool {
	switch a := a.(type) {
	case IntT:
		_, ok := b.(IntT)
		return ok
	case ProdT:
		bb, ok := b.(ProdT)
		return ok && typeIdentical(a.L, bb.L) && typeIdentical(a.R, bb.R)
	case CodeT:
		bb, ok := b.(CodeT)
		if !ok || len(a.TParams) != len(bb.TParams) || len(a.RParams) != len(bb.RParams) {
			return false
		}
		for i := range a.TParams {
			if a.TParams[i].Name != bb.TParams[i].Name || !a.TParams[i].Kind.Equal(bb.TParams[i].Kind) {
				return false
			}
		}
		for i := range a.RParams {
			if a.RParams[i] != bb.RParams[i] {
				return false
			}
		}
		return typesIdentical(a.Params, bb.Params)
	case ExistT:
		bb, ok := b.(ExistT)
		return ok && a.Bound == bb.Bound && a.Kind.Equal(bb.Kind) && typeIdentical(a.Body, bb.Body)
	case AtT:
		bb, ok := b.(AtT)
		return ok && a.R == bb.R && typeIdentical(a.Body, bb.Body)
	case MT:
		bb, ok := b.(MT)
		return ok && regionsIdentical(a.Rs, bb.Rs) && tagIdentical(a.Tag, bb.Tag)
	case CT:
		bb, ok := b.(CT)
		return ok && a.From == bb.From && a.To == bb.To && tagIdentical(a.Tag, bb.Tag)
	case AlphaT:
		bb, ok := b.(AlphaT)
		return ok && a.Name == bb.Name
	case ExistAlphaT:
		bb, ok := b.(ExistAlphaT)
		return ok && a.Bound == bb.Bound && regionsIdentical(a.Delta, bb.Delta) && typeIdentical(a.Body, bb.Body)
	case TransT:
		bb, ok := b.(TransT)
		return ok && a.R == bb.R && tagsIdentical(a.Tags, bb.Tags) &&
			regionsIdentical(a.Rs, bb.Rs) && typesIdentical(a.Params, bb.Params)
	case LeftT:
		bb, ok := b.(LeftT)
		return ok && typeIdentical(a.Body, bb.Body)
	case RightT:
		bb, ok := b.(RightT)
		return ok && typeIdentical(a.Body, bb.Body)
	case SumT:
		bb, ok := b.(SumT)
		return ok && typeIdentical(a.L, bb.L) && typeIdentical(a.R, bb.R)
	case ExistRT:
		bb, ok := b.(ExistRT)
		return ok && a.Bound == bb.Bound && regionsIdentical(a.Delta, bb.Delta) && typeIdentical(a.Body, bb.Body)
	default:
		return false
	}
}
