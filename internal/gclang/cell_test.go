package gclang

import (
	"fmt"
	"math/rand"
	"testing"

	"psgc/internal/kinds"
	"psgc/internal/names"
	"psgc/internal/regions"
	"psgc/internal/tags"
)

// genCellValue builds a random storable value covering every packed form,
// including payloads past the inline word ranges (62-bit numbers, 30-bit
// offsets) so the cells-pool spill path is exercised.
func genCellValue(r *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Num{N: r.Intn(2001) - 1000}
		case 1:
			// Full-range int: about half of these overflow the 62-bit
			// inline range and must spill into the cells pool.
			return Num{N: int(r.Uint64())}
		case 2:
			return AddrV{Addr: regions.Addr{Region: regions.Name(r.Intn(1 << 16)), Off: r.Intn(1 << 12)}}
		default:
			// Offsets at and past 2^30 cannot inline into a packed word.
			return AddrV{Addr: regions.Addr{Region: regions.Name(r.Intn(8)), Off: (1 << 30) - 2 + r.Intn(5)}}
		}
	}
	rv := func() Value { return genCellValue(r, depth-1) }
	rname := func() Region { return RVar{Name: names.Name(fmt.Sprintf("r%d", r.Intn(4)))} }
	switch r.Intn(10) {
	case 0:
		return PairV{L: rv(), R: rv()}
	case 1:
		return InlV{Val: rv()}
	case 2:
		return InrV{Val: rv()}
	case 3:
		return Var{Name: names.Name(fmt.Sprintf("x%d", r.Intn(8)))}
	case 4:
		return PackTag{Bound: "t", Kind: kinds.Omega{}, Tag: tags.Int{}, Val: rv(), Body: IntT{}}
	case 5:
		return PackAlpha{Bound: "a", Delta: []Region{rname()}, Hidden: IntT{}, Val: rv(), Body: IntT{}}
	case 6:
		return PackRegion{Bound: "p", Delta: []Region{rname()}, R: rname(), Val: rv(), Body: IntT{}}
	case 7:
		return TAppV{Val: rv(), Tags: []tags.Tag{tags.Int{}}, Rs: []Region{rname()}}
	case 8:
		return LamV{RParams: []names.Name{"r"}, Params: []Param{{Name: "x", Ty: IntT{}}},
			Body: HaltT{V: rv()}}
	default:
		return rv()
	}
}

// TestCellRoundTripRandom is the exhaustive pack/unpack property: for every
// generated value, Decode∘Encode is the identity (up to String, which pins
// the full structure) and the packed word accounting matches the boxed
// ValueWords the StepEvent identities are built on.
func TestCellRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	p := NewPools()
	for i := 0; i < 2000; i++ {
		v := genCellValue(r, 1+r.Intn(4))
		c := p.Encode(v)
		got := p.Decode(c)
		if got.String() != v.String() {
			t.Fatalf("round trip %d:\n  in:  %s\n  out: %s", i, v, got)
		}
		if cw, vw := p.CellWords(c), ValueWords(v); cw != vw {
			t.Fatalf("value %d (%s): CellWords %d, ValueWords %d", i, v, cw, vw)
		}
	}
}

// TestCellRoundTripNestedPackages pins the pool-append ordering: encoding
// a package whose payload is itself a pooled form must hand back a handle
// to the outer entry, not to whatever the nested Encode appended.
func TestCellRoundTripNestedPackages(t *testing.T) {
	inner := PairV{L: TAppV{Val: AddrV{Addr: regions.Addr{Region: regions.CD, Off: 3}},
		Tags: []tags.Tag{tags.Int{}}, Rs: []Region{RVar{Name: "r"}}}, R: Num{N: 2}}
	v := Value(inner)
	for i, b := range []names.Name{"ka", "ke", "k2", "k1"} {
		v = PackTag{Bound: b, Kind: kinds.Omega{}, Tag: tags.Int{}, Val: v, Body: IntT{}}
		p := NewPools()
		c := p.Encode(v)
		if got := p.Decode(c); got.String() != v.String() {
			t.Fatalf("depth %d:\n  in:  %s\n  out: %s", i+1, v, got)
		}
	}
}

// TestCellWordInlineBounds checks the 2-bit-tagged payload words at their
// inline limits: numbers within ±2^61 and addresses with region < 2^32,
// offset < 2^30 pack inline (no pool growth); anything past spills.
func TestCellWordInlineBounds(t *testing.T) {
	p := NewPools()
	inline := []Cell{
		NumCell(int(wordNumMax - 1)),
		NumCell(int(-wordNumMax)),
		NumCell(0),
		AddrCell(regions.Addr{Region: regions.Name(1<<32 - 1), Off: 1<<30 - 1}),
		AddrCell(regions.Addr{}),
	}
	for _, c := range inline {
		w := p.wordOf(c)
		if len(p.cells) != 0 {
			t.Fatalf("cell %+v spilled into the pool", c)
		}
		if got := p.cellOfWord(w); got != c {
			t.Fatalf("inline word round trip: %+v -> %#x -> %+v", c, w, got)
		}
	}
	spill := []Cell{
		NumCell(int(wordNumMax)),
		NumCell(int(-wordNumMax - 1)),
		AddrCell(regions.Addr{Region: regions.Name(1), Off: 1 << 30}),
	}
	for i, c := range spill {
		w := p.wordOf(c)
		if len(p.cells) != i+1 {
			t.Fatalf("cell %+v did not spill (pool %d)", c, len(p.cells))
		}
		if got := p.cellOfWord(w); got != c {
			t.Fatalf("spilled word round trip: %+v -> %#x -> %+v", c, w, got)
		}
	}
}

// TestCellDecodeNeverPanics feeds Decode corrupted cells — out-of-range
// pool handles, invalid word kinds, and the chaos fault's exact tag flip —
// and requires a poison value, never a panic.
func TestCellDecodeNeverPanics(t *testing.T) {
	p := NewPools()
	for tag := CellFree; tag <= CellTApp; tag++ {
		c := Cell{Tag: tag, A: 1 << 40, B: 1 << 40}
		_ = p.Decode(c) // must not panic on garbage handles
		_ = p.CellWords(c)
	}
	// Invalid word kind 3 inside a pair payload.
	bad := Cell{Tag: CellPair, A: 3, B: 7}
	if got := p.Decode(bad); got.String() != (PairV{L: corruptVar, R: corruptVar}).String() {
		t.Fatalf("invalid word kinds decoded to %s", got)
	}
	// The machine.corrupt fault flips the low tag bits of a stored cell;
	// every valid tag must map to a different tag and decode without
	// panicking.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		c := p.Encode(genCellValue(r, 2))
		flipped := c
		flipped.Tag ^= 0x7
		if flipped.Tag == c.Tag {
			t.Fatalf("tag flip fixed point at %v", c.Tag)
		}
		_ = p.Decode(flipped)
		_ = p.CellWords(flipped)
	}
}

// TestStoreCellBackendConformance drives the map and arena backends over
// an identical random schedule of packed-cell operations and requires
// bit-identical observables: issued names and addresses, statistics,
// region sets, and raw cell contents.
func TestStoreCellBackendConformance(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	p := NewPools() // shared pool: handles must agree bit-for-bit across stores
	m := regions.NewStore[Cell](regions.BackendMap, 16)
	a := regions.NewStore[Cell](regions.BackendArena, 16)
	m.SetAutoGrow(true)
	a.SetAutoGrow(true)

	var live []regions.Name
	var addrs []regions.Addr
	for round := 0; round < 40; round++ {
		mn, an := m.NewRegion(), a.NewRegion()
		if mn != an {
			t.Fatalf("round %d: names diverged: map %s arena %s", round, mn, an)
		}
		live = append(live, mn)
		for i := 0; i < 5+r.Intn(20); i++ {
			n := live[r.Intn(len(live))]
			c := p.Encode(genCellValue(r, 1+r.Intn(3)))
			ma, err1 := m.Put(n, c)
			aa, err2 := a.Put(n, c)
			if (err1 == nil) != (err2 == nil) || ma != aa {
				t.Fatalf("put: map %v,%v arena %v,%v", ma, err1, aa, err2)
			}
			if err1 == nil {
				addrs = append(addrs, ma)
			}
		}
		for i := 0; i < 5 && len(addrs) > 0; i++ {
			ad := addrs[r.Intn(len(addrs))]
			mv, err1 := m.Get(ad)
			av, err2 := a.Get(ad)
			if (err1 == nil) != (err2 == nil) || mv != av {
				t.Fatalf("get %v: map %+v,%v arena %+v,%v", ad, mv, err1, av, err2)
			}
			if err1 == nil && r.Intn(2) == 0 {
				c := p.Encode(genCellValue(r, 1))
				if e1, e2 := m.Set(ad, c), a.Set(ad, c); (e1 == nil) != (e2 == nil) {
					t.Fatalf("set %v: map %v arena %v", ad, e1, e2)
				}
			}
		}
		if r.Intn(3) == 0 && len(live) > 1 {
			// Condemn a random suffix of the live regions.
			keepN := r.Intn(len(live))
			keep := append([]regions.Name(nil), live[:keepN]...)
			if e1, e2 := m.Only(keep), a.Only(keep); (e1 == nil) != (e2 == nil) {
				t.Fatalf("only: map %v arena %v", e1, e2)
			}
			live = live[:keepN]
			kept := addrs[:0]
			for _, ad := range addrs {
				if m.Has(ad.Region) {
					kept = append(kept, ad)
				}
			}
			addrs = kept
		}
		if m.Stats() != a.Stats() {
			t.Fatalf("round %d: stats: map %+v arena %+v", round, m.Stats(), a.Stats())
		}
	}
	mc, ac := m.Cells(), a.Cells()
	if len(mc) != len(ac) {
		t.Fatalf("final heap: map %d cells arena %d", len(mc), len(ac))
	}
	for i := range mc {
		if mc[i] != ac[i] {
			t.Fatalf("cell order %d: map %v arena %v", i, mc[i], ac[i])
		}
		mv, _ := m.Peek(mc[i])
		av, _ := a.Peek(ac[i])
		if mv != av {
			t.Fatalf("cell %v: map %+v arena %+v", mc[i], mv, av)
		}
	}
}

// TestArenaPackedCellZeroAllocs is the PR's allocation gate on the
// substrate: once the slabs are warm, arena Put, Get, and Set over packed
// cells must not allocate on the host heap at all — that is the whole
// point of the pointer-free Cell representation.
func TestArenaPackedCellZeroAllocs(t *testing.T) {
	ar := regions.NewArena[Cell](0)
	keep := ar.NewRegion()
	const warm = 4096
	for i := 0; i < warm; i++ {
		ar.Put(keep, NumCell(i))
	}
	// Two junk fills with scavenging flips size both slabs past the
	// measured loop's needs.
	for flip := 0; flip < 2; flip++ {
		junk := ar.NewRegion()
		for i := 0; i < warm; i++ {
			ar.Put(junk, NumCell(i))
		}
		if err := ar.Only([]regions.Name{keep}); err != nil {
			t.Fatal(err)
		}
	}
	fresh := ar.NewRegion()
	var sink Cell
	allocs := testing.AllocsPerRun(100, func() {
		a, err := ar.Put(fresh, NumCell(7))
		if err != nil {
			t.Fatal(err)
		}
		c, err := ar.Get(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := ar.Set(a, c); err != nil {
			t.Fatal(err)
		}
		sink = c
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("arena Put/Get/Set allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestEnvMachineStepLoopZeroAllocs gates the machine layer: a warm
// environment machine stepping a mutator loop (call, get, arith, set,
// branch) over the packed arena must allocate nothing per iteration.
func TestEnvMachineStepLoopZeroAllocs(t *testing.T) {
	loop := LamV{RParams: []names.Name{"r"},
		Params: []Param{{Name: "x", Ty: IntT{}}, {Name: "a", Ty: IntT{}}},
		Body: LetT{X: "v", Op: GetOp{V: Var{Name: "a"}},
			Body: LetT{X: "y", Op: ArithOp{Kind: Sub, L: Var{Name: "x"}, R: Num{N: 1}},
				Body: SetT{Dst: Var{Name: "a"}, Src: Var{Name: "y"},
					Body: If0T{V: Var{Name: "y"},
						Then: HaltT{V: Var{Name: "y"}},
						Else: AppT{Fn: CodeAddr(0), Rs: []Region{RVar{Name: "r"}},
							Args: []Value{Var{Name: "y"}, Var{Name: "a"}}}}}}}}
	prog := Program{
		Code: []NamedFun{{Name: "loop", Fun: loop}},
		Main: LetRegionT{R: "r", Body: LetT{X: "a", Op: PutOp{R: RVar{Name: "r"}, V: Num{N: 0}},
			Body: AppT{Fn: CodeAddr(0), Rs: []Region{RVar{Name: "r"}},
				Args: []Value{Num{N: 1 << 30}, Var{Name: "a"}}}}}}
	m := NewEnvMachineOn(regions.BackendArena, Base, prog, 0)
	// Warm: size the env maps and scratch buffers through several
	// iterations of the 5-step loop body.
	for i := 0; i < 200; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 5; i++ {
			if err := m.Step(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if m.Halted {
		t.Fatal("loop halted inside the measurement window")
	}
	if allocs != 0 {
		t.Fatalf("env machine loop allocated %.1f allocs/op, want 0", allocs)
	}
}
