package gclang

import (
	"fmt"

	"psgc/internal/names"
	"psgc/internal/tags"
)

// eqEnv tracks binder correspondences for α-equivalence across the three
// binding namespaces that occur in types.
type eqEnv struct {
	tagsA, tagsB map[names.Name]int
	regsA, regsB map[names.Name]int
	alphA, alphB map[names.Name]int
	depth        int
}

func newEqEnv() *eqEnv {
	return &eqEnv{
		tagsA: map[names.Name]int{}, tagsB: map[names.Name]int{},
		regsA: map[names.Name]int{}, regsB: map[names.Name]int{},
		alphA: map[names.Name]int{}, alphB: map[names.Name]int{},
	}
}

func (e *eqEnv) clone() *eqEnv {
	out := newEqEnv()
	for k, v := range e.tagsA {
		out.tagsA[k] = v
	}
	for k, v := range e.tagsB {
		out.tagsB[k] = v
	}
	for k, v := range e.regsA {
		out.regsA[k] = v
	}
	for k, v := range e.regsB {
		out.regsB[k] = v
	}
	for k, v := range e.alphA {
		out.alphA[k] = v
	}
	for k, v := range e.alphB {
		out.alphB[k] = v
	}
	out.depth = e.depth
	return out
}

func (e *eqEnv) bindTags(a, b []names.Name) *eqEnv {
	out := e.clone()
	for i := range a {
		out.tagsA[a[i]] = out.depth
		out.tagsB[b[i]] = out.depth
		out.depth++
	}
	return out
}

func (e *eqEnv) bindRegs(a, b []names.Name) *eqEnv {
	out := e.clone()
	for i := range a {
		out.regsA[a[i]] = out.depth
		out.regsB[b[i]] = out.depth
		out.depth++
	}
	return out
}

func (e *eqEnv) bindAlphas(a, b names.Name) *eqEnv {
	out := e.clone()
	out.alphA[a] = out.depth
	out.alphB[b] = out.depth
	out.depth++
	return out
}

func (e *eqEnv) regionEq(a, b Region) bool {
	av, aok := a.(RVar)
	bv, bok := b.(RVar)
	if aok != bok {
		return false
	}
	if !aok {
		return a == b
	}
	ia, ba := e.regsA[av.Name]
	ib, bb := e.regsB[bv.Name]
	if ba != bb {
		return false
	}
	if ba {
		return ia == ib
	}
	return av.Name == bv.Name
}

func (e *eqEnv) regionsEq(a, b []Region) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !e.regionEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// tagEq compares tags under the binder correspondence by renaming bound
// variables to canonical names before using tags.Equal. Tag binders from
// the type level are rare and shallow, so the rename-and-compare approach
// keeps the logic simple.
func (e *eqEnv) tagEq(a, b tags.Tag) bool {
	subA := make(map[names.Name]tags.Tag, len(e.tagsA))
	for n, d := range e.tagsA {
		subA[n] = tags.Var{Name: names.Name(fmt.Sprintf("τ#%d", d))}
	}
	subB := make(map[names.Name]tags.Tag, len(e.tagsB))
	for n, d := range e.tagsB {
		subB[n] = tags.Var{Name: names.Name(fmt.Sprintf("τ#%d", d))}
	}
	return tags.Equal(tags.SubstAll(a, subA), tags.SubstAll(b, subB))
}

func (e *eqEnv) typeEq(a, b Type) bool {
	switch a := a.(type) {
	case IntT:
		_, ok := b.(IntT)
		return ok
	case ProdT:
		bp, ok := b.(ProdT)
		return ok && e.typeEq(a.L, bp.L) && e.typeEq(a.R, bp.R)
	case CodeT:
		bc, ok := b.(CodeT)
		if !ok || len(a.TParams) != len(bc.TParams) || len(a.RParams) != len(bc.RParams) || len(a.Params) != len(bc.Params) {
			return false
		}
		for i := range a.TParams {
			if !a.TParams[i].Kind.Equal(bc.TParams[i].Kind) {
				return false
			}
		}
		inner := e.bindTags(tparamNames(a.TParams), tparamNames(bc.TParams)).
			bindRegs(a.RParams, bc.RParams)
		for i := range a.Params {
			if !inner.typeEq(a.Params[i], bc.Params[i]) {
				return false
			}
		}
		return true
	case ExistT:
		be, ok := b.(ExistT)
		if !ok || !a.Kind.Equal(be.Kind) {
			return false
		}
		inner := e.bindTags([]names.Name{a.Bound}, []names.Name{be.Bound})
		return inner.typeEq(a.Body, be.Body)
	case AtT:
		ba, ok := b.(AtT)
		return ok && e.regionEq(a.R, ba.R) && e.typeEq(a.Body, ba.Body)
	case MT:
		bm, ok := b.(MT)
		return ok && e.regionsEq(a.Rs, bm.Rs) && e.tagEq(a.Tag, bm.Tag)
	case CT:
		bc, ok := b.(CT)
		return ok && e.regionEq(a.From, bc.From) && e.regionEq(a.To, bc.To) && e.tagEq(a.Tag, bc.Tag)
	case AlphaT:
		bv, ok := b.(AlphaT)
		if !ok {
			return false
		}
		ia, ba := e.alphA[a.Name]
		ib, bb := e.alphB[bv.Name]
		if ba != bb {
			return false
		}
		if ba {
			return ia == ib
		}
		return a.Name == bv.Name
	case ExistAlphaT:
		be, ok := b.(ExistAlphaT)
		if !ok || !e.regionsEq(a.Delta, be.Delta) {
			return false
		}
		inner := e.bindAlphas(a.Bound, be.Bound)
		return inner.typeEq(a.Body, be.Body)
	case TransT:
		bt, ok := b.(TransT)
		if !ok || len(a.Tags) != len(bt.Tags) || !e.regionsEq(a.Rs, bt.Rs) ||
			len(a.Params) != len(bt.Params) || !e.regionEq(a.R, bt.R) {
			return false
		}
		for i := range a.Tags {
			if !e.tagEq(a.Tags[i], bt.Tags[i]) {
				return false
			}
		}
		for i := range a.Params {
			if !e.typeEq(a.Params[i], bt.Params[i]) {
				return false
			}
		}
		return true
	case LeftT:
		bl, ok := b.(LeftT)
		return ok && e.typeEq(a.Body, bl.Body)
	case RightT:
		br, ok := b.(RightT)
		return ok && e.typeEq(a.Body, br.Body)
	case SumT:
		bs, ok := b.(SumT)
		return ok && e.typeEq(a.L, bs.L) && e.typeEq(a.R, bs.R)
	case ExistRT:
		be, ok := b.(ExistRT)
		if !ok || !e.regionsEq(a.Delta, be.Delta) {
			return false
		}
		inner := e.bindRegs([]names.Name{a.Bound}, []names.Name{be.Bound})
		return inner.typeEq(a.Body, be.Body)
	default:
		panic(fmt.Sprintf("gclang: unknown type %T", a))
	}
}

// TypeEqual reports equality of types up to M/C reduction, tag
// β-reduction, and α-equivalence.
func TypeEqual(d Dialect, a, b Type) (bool, error) {
	na, err := NormalizeType(d, a)
	if err != nil {
		return false, err
	}
	nb, err := NormalizeType(d, b)
	if err != nil {
		return false, err
	}
	return newEqEnv().typeEq(na, nb), nil
}

// Assignable reports whether a value of type sub may be used where type
// sup is expected. Beyond equality, λGCforw admits the tag-bit injection
// left σ1 ≤ left σ1 + right σ2 (Fig. 8), and λGCgen admits the bounded
// width subtyping on region existentials together with its lifting to the
// stuck M operator: M_ρ,ρo(τ) ≤ M_ρy,ρo(τ) when ρ ∈ {ρy, ρo} (used when
// the fully-promoted result of a minor collection flows back to a mutator
// expecting young-or-old data, §8 and Lemma D.4).
//
// bounds carries the ∆-bounds of region variables opened from bounded
// existentials (λGCgen): a variable r with bound ∆r counts as a member of
// a region set when every element of ∆r is (Fig. 11's recursion on
// components allocated "somewhere in {young, old}" needs this).
func Assignable(d Dialect, bounds map[names.Name][]Region, sub, sup Type) (bool, error) {
	ns, err := NormalizeType(d, sub)
	if err != nil {
		return false, err
	}
	np, err := NormalizeType(d, sup)
	if err != nil {
		return false, err
	}
	return assignable{d: d, bounds: bounds}.nf(newEqEnv(), ns, np), nil
}

type assignable struct {
	d      Dialect
	bounds map[names.Name][]Region
}

// inSet reports whether region r is a member of set under the binder
// correspondence, either directly or through its recorded bound.
func (a assignable) inSet(env *eqEnv, r Region, set []Region) bool {
	for _, s := range set {
		if env.regionEq(r, s) {
			return true
		}
	}
	if rv, ok := r.(RVar); ok {
		if b, ok := a.bounds[rv.Name]; ok && len(b) > 0 {
			for _, br := range b {
				if !a.inSet(env, br, set) {
					return false
				}
			}
			return true
		}
	}
	return false
}

// nf works on normal forms.
func (a assignable) nf(env *eqEnv, sub, sup Type) bool {
	d := a.d
	if env.typeEq(sub, sup) {
		return true
	}
	switch d {
	case Forw:
		if sum, ok := sup.(SumT); ok {
			switch sub := sub.(type) {
			case LeftT:
				return env.typeEq(sub, sum.L)
			case RightT:
				return env.typeEq(sub, sum.R)
			}
		}
		return false
	case Gen:
		switch sup := sup.(type) {
		case MT:
			sm, ok := sub.(MT)
			if !ok || len(sm.Rs) != 2 || len(sup.Rs) != 2 {
				return false
			}
			if !env.regionEq(sm.Rs[1], sup.Rs[1]) || !env.tagEq(sm.Tag, sup.Tag) {
				return false
			}
			return a.inSet(env, sm.Rs[0], sup.Rs)
		case ExistRT:
			se, ok := sub.(ExistRT)
			if !ok {
				return false
			}
			// ∆sub ⊆ ∆sup (under the binder correspondence and bounds).
			for _, r := range se.Delta {
				if !a.inSet(env, r, sup.Delta) {
					return false
				}
			}
			inner := env.bindRegs([]names.Name{se.Bound}, []names.Name{sup.Bound})
			return a.nf(inner, se.Body, sup.Body)
		case ProdT:
			sp, ok := sub.(ProdT)
			return ok && a.nf(env, sp.L, sup.L) && a.nf(env, sp.R, sup.R)
		case ExistT:
			se, ok := sub.(ExistT)
			if !ok || !se.Kind.Equal(sup.Kind) {
				return false
			}
			inner := env.bindTags([]names.Name{se.Bound}, []names.Name{sup.Bound})
			return a.nf(inner, se.Body, sup.Body)
		case AtT:
			sa, ok := sub.(AtT)
			return ok && env.regionEq(sa.R, sup.R) && a.nf(env, sa.Body, sup.Body)
		}
		return false
	default:
		return false
	}
}
