package gclang

import (
	"encoding/gob"
	"sync"

	"psgc/internal/kinds"
	"psgc/internal/tags"
)

var gobOnce sync.Once

// RegisterGob registers with encoding/gob every concrete type reachable
// from a Program or a MachineImage through an interface field (regions,
// types, values, operations, terms, tags, kinds). Both wire formats built
// on gob — the peer compiled-entry cache and the checkpoint blob — call
// this before encoding or decoding; it is idempotent and safe from
// multiple packages.
func RegisterGob() {
	gobOnce.Do(func() {
		for _, v := range []any{
			// regions
			RVar{}, RName{},
			// types
			IntT{}, ProdT{}, CodeT{}, ExistT{},
			AtT{}, MT{}, CT{}, AlphaT{},
			ExistAlphaT{}, TransT{}, LeftT{},
			RightT{}, SumT{}, ExistRT{},
			// values
			Num{}, Var{}, AddrV{}, PairV{},
			PackTag{}, PackAlpha{}, PackRegion{},
			TAppV{}, LamV{}, InlV{}, InrV{},
			// operations
			ValOp{}, ProjOp{}, PutOp{}, GetOp{},
			StripOp{}, ArithOp{},
			// terms
			AppT{}, LetT{}, HaltT{}, IfGCT{},
			OpenTagT{}, OpenAlphaT{}, LetRegionT{},
			OnlyT{}, TypecaseT{}, IfLeftT{}, SetT{},
			WidenT{}, OpenRegionT{}, IfRegT{}, If0T{},
			// tags
			tags.Var{}, tags.Int{}, tags.Prod{}, tags.Code{}, tags.Exist{},
			tags.Lam{}, tags.App{},
			// kinds
			kinds.Omega{}, kinds.Arrow{},
		} {
			gob.Register(v)
		}
	})
}
