package gclang

import (
	"fmt"

	"psgc/internal/kinds"
	"psgc/internal/names"
	"psgc/internal/regions"
	"psgc/internal/tags"
)

// CheckTerm implements the term typing judgment Ψ; ∆; Θ; Φ; Γ ⊢ e
// (Figs. 6, 8, 10). It returns an elaborated copy of the term in which
// every put is annotated with the type of the stored value and every widen
// with its source region.
func (c *Checker) CheckTerm(env *Env, e Term) (Term, error) {
	switch e := e.(type) {
	case AppT:
		return c.checkApp(env, e)
	case LetT:
		op, t, err := c.SynthOp(env, e.Op)
		if err != nil {
			return nil, err
		}
		body, err := c.CheckTerm(env.withVar(e.X, t), e.Body)
		if err != nil {
			return nil, err
		}
		return LetT{X: e.X, Op: op, Body: body}, nil
	case HaltT:
		if err := c.CheckValue(env, e.V, IntT{}); err != nil {
			return nil, err
		}
		return e, nil
	case IfGCT:
		if !env.hasRegion(e.R) {
			return nil, errf(e, "ifgc on region %s not in scope", e.R)
		}
		full, err := c.CheckTerm(env, e.Full)
		if err != nil {
			return nil, err
		}
		els, err := c.CheckTerm(env, e.Else)
		if err != nil {
			return nil, err
		}
		return IfGCT{R: e.R, Full: full, Else: els}, nil
	case OpenTagT:
		t, err := c.SynthValue(env, e.V)
		if err != nil {
			return nil, err
		}
		nf, err := NormalizeType(c.Dialect, t)
		if err != nil {
			return nil, errf(e, "%v", err)
		}
		ex, ok := nf.(ExistT)
		if !ok {
			return nil, errf(e, "open of type %s, want ∃t:κ.σ", nf)
		}
		bodyTy := Subst1Tag(ex.Bound, tags.Var{Name: e.T}).Type(ex.Body)
		inner := env.withTag(e.T, ex.Kind).withVar(e.X, bodyTy)
		body, err := c.CheckTerm(inner, e.Body)
		if err != nil {
			return nil, err
		}
		return OpenTagT{V: e.V, T: e.T, X: e.X, Body: body}, nil
	case OpenAlphaT:
		t, err := c.SynthValue(env, e.V)
		if err != nil {
			return nil, err
		}
		nf, err := NormalizeType(c.Dialect, t)
		if err != nil {
			return nil, errf(e, "%v", err)
		}
		ex, ok := nf.(ExistAlphaT)
		if !ok {
			return nil, errf(e, "open of type %s, want ∃α:∆.σ", nf)
		}
		bodyTy := Subst1Type(ex.Bound, AlphaT{Name: e.A}).Type(ex.Body)
		inner := env.withAlpha(e.A, ex.Delta).withVar(e.X, bodyTy)
		body, err := c.CheckTerm(inner, e.Body)
		if err != nil {
			return nil, err
		}
		return OpenAlphaT{V: e.V, A: e.A, X: e.X, Body: body}, nil
	case LetRegionT:
		body, err := c.CheckTerm(env.withRegion(RVar{Name: e.R}), e.Body)
		if err != nil {
			return nil, err
		}
		return LetRegionT{R: e.R, Body: body}, nil
	case OnlyT:
		return c.checkOnly(env, e)
	case TypecaseT:
		return c.checkTypecase(env, e)
	case IfLeftT:
		if err := c.dialectAtLeast(e, Forw, "ifleft"); err != nil {
			return nil, err
		}
		t, err := c.SynthValue(env, e.V)
		if err != nil {
			return nil, err
		}
		nf, err := NormalizeType(c.Dialect, t)
		if err != nil {
			return nil, errf(e, "%v", err)
		}
		switch nf := nf.(type) {
		case SumT:
			l, err := c.CheckTerm(env.withVar(e.X, nf.L), e.L)
			if err != nil {
				return nil, err
			}
			r, err := c.CheckTerm(env.withVar(e.X, nf.R), e.R)
			if err != nil {
				return nil, err
			}
			return IfLeftT{X: e.X, V: e.V, L: l, R: r}, nil
		case LeftT:
			// Runtime form: the scrutinee is an immediate inl v, whose
			// synthesized type is the bare left component. Only the taken
			// branch is derivable (the preservation proof types exactly
			// that branch via subsumption), so we check it alone.
			l, err := c.CheckTerm(env.withVar(e.X, nf), e.L)
			if err != nil {
				return nil, err
			}
			return IfLeftT{X: e.X, V: e.V, L: l, R: e.R}, nil
		case RightT:
			r, err := c.CheckTerm(env.withVar(e.X, nf), e.R)
			if err != nil {
				return nil, err
			}
			return IfLeftT{X: e.X, V: e.V, L: e.L, R: r}, nil
		default:
			return nil, errf(e, "ifleft on type %s, want a sum", nf)
		}
	case SetT:
		if err := c.dialectAtLeast(e, Forw, "set"); err != nil {
			return nil, err
		}
		t, err := c.SynthValue(env, e.Dst)
		if err != nil {
			return nil, err
		}
		nf, err := NormalizeType(c.Dialect, t)
		if err != nil {
			return nil, errf(e, "%v", err)
		}
		at, ok := nf.(AtT)
		if !ok {
			return nil, errf(e, "set destination has type %s, want σ at ρ", nf)
		}
		if err := c.CheckValue(env, e.Src, at.Body); err != nil {
			return nil, err
		}
		body, err := c.CheckTerm(env, e.Body)
		if err != nil {
			return nil, err
		}
		return SetT{Dst: e.Dst, Src: e.Src, Body: body}, nil
	case WidenT:
		return c.checkWiden(env, e)
	case OpenRegionT:
		if err := c.dialectAtLeast(e, Gen, "region open"); err != nil {
			return nil, err
		}
		t, err := c.SynthValue(env, e.V)
		if err != nil {
			return nil, err
		}
		nf, err := NormalizeType(c.Dialect, t)
		if err != nil {
			return nil, errf(e, "%v", err)
		}
		ex, ok := nf.(ExistRT)
		if !ok {
			return nil, errf(e, "open of type %s, want ∃r∈∆.(σ at r)", nf)
		}
		r := RVar{Name: e.R}
		bodyTy := AtT{Body: Subst1Reg(ex.Bound, Region(r)).Type(ex.Body), R: r}
		inner := env.withRegion(r).withVar(e.X, bodyTy)
		inner.RBounds[e.R] = ex.Delta
		body, err := c.CheckTerm(inner, e.Body)
		if err != nil {
			return nil, err
		}
		return OpenRegionT{V: e.V, R: e.R, X: e.X, Body: body}, nil
	case IfRegT:
		return c.checkIfReg(env, e)
	case If0T:
		if err := c.CheckValue(env, e.V, IntT{}); err != nil {
			return nil, err
		}
		thn, err := c.CheckTerm(env, e.Then)
		if err != nil {
			return nil, err
		}
		els, err := c.CheckTerm(env, e.Else)
		if err != nil {
			return nil, err
		}
		return If0T{V: e.V, Then: thn, Else: els}, nil
	default:
		panic(fmt.Sprintf("gclang: unknown term %T", e))
	}
}

// checkApp handles v[~τ][~ρ](~v) for both code-at-ρ heads and translucent
// heads (Fig. 6).
func (c *Checker) checkApp(env *Env, e AppT) (Term, error) {
	ft, err := c.SynthValue(env, e.Fn)
	if err != nil {
		return nil, err
	}
	nf, err := NormalizeType(c.Dialect, ft)
	if err != nil {
		return nil, errf(e, "%v", err)
	}
	for _, r := range e.Rs {
		if !env.hasRegion(r) {
			return nil, errf(e, "region argument %s not in scope", r)
		}
	}
	switch head := nf.(type) {
	case AtT:
		code, ok := head.Body.(CodeT)
		if !ok {
			return nil, errf(e, "call of non-code type %s", nf)
		}
		if len(e.Tags) != len(code.TParams) {
			return nil, errf(e, "call supplies %d tags, code expects %d", len(e.Tags), len(code.TParams))
		}
		if len(e.Rs) != len(code.RParams) {
			return nil, errf(e, "call supplies %d regions, code expects %d", len(e.Rs), len(code.RParams))
		}
		if len(e.Args) != len(code.Params) {
			return nil, errf(e, "call supplies %d arguments, code expects %d", len(e.Args), len(code.Params))
		}
		sub := &Subst{Tags: map[names.Name]tags.Tag{}, Regs: map[names.Name]Region{}}
		for i, tg := range e.Tags {
			k, err := tags.Check(env.Theta, tg)
			if err != nil {
				return nil, errf(e, "%v", err)
			}
			if !k.Equal(code.TParams[i].Kind) {
				return nil, errf(e, "tag argument %s has kind %s, want %s", tg, k, code.TParams[i].Kind)
			}
			sub.Tags[code.TParams[i].Name] = tg
		}
		for i, r := range e.Rs {
			sub.Regs[code.RParams[i]] = r
		}
		for i, a := range e.Args {
			if err := c.CheckValue(env, a, sub.Type(code.Params[i])); err != nil {
				return nil, fmt.Errorf("argument %d of call: %w", i+1, err)
			}
		}
		return e, nil
	case TransT:
		if len(e.Tags) != 0 || len(e.Rs) != 0 {
			return nil, errf(e, "translucent call must not supply tags or regions (already applied)")
		}
		if len(e.Args) != len(head.Params) {
			return nil, errf(e, "call supplies %d arguments, code expects %d", len(e.Args), len(head.Params))
		}
		for i, a := range e.Args {
			if err := c.CheckValue(env, a, head.Params[i]); err != nil {
				return nil, fmt.Errorf("argument %d of call: %w", i+1, err)
			}
		}
		return e, nil
	default:
		return nil, errf(e, "call of non-code type %s", nf)
	}
}

// checkOnly handles only ∆ in e: the body is checked with Ψ, ∆, Φ and Γ
// restricted to the kept regions plus cd (Fig. 6).
func (c *Checker) checkOnly(env *Env, e OnlyT) (Term, error) {
	keepNames := map[regions.Name]bool{}
	keep := map[Region]bool{Region(CDRegion): true}
	for _, r := range e.Delta {
		if !env.hasRegion(r) {
			return nil, errf(e, "only keeps region %s not in scope", r)
		}
		keep[r] = true
		if rn, ok := r.(RName); ok {
			keepNames[rn.Name] = true
		}
	}
	inner := env.clone()
	inner.Psi = env.Psi.Restrict(keepNames)
	inner.Delta = keep
	for a, d := range env.Phi {
		for _, r := range d {
			if !keep[r] && !RegionEqual(r, CDRegion) {
				delete(inner.Phi, a)
				break
			}
		}
	}
	for x, t := range env.Gamma {
		// Test the normal form: M_ρ(τ→0) mentions ρ syntactically but
		// normalizes to a cd-resident code type, and such variables
		// survive the restriction (Fig. 12's gcend keeps f across only).
		nf, err := NormalizeType(c.Dialect, t)
		if err != nil || c.CheckTypeWF(inner, nf) != nil {
			delete(inner.Gamma, x)
			continue
		}
		inner.Gamma[x] = nf
	}
	body, err := c.CheckTerm(inner, e.Body)
	if err != nil {
		return nil, err
	}
	return OnlyT{Delta: e.Delta, Body: body}, nil
}

// checkTypecase handles the refining typecase (Fig. 6 and §6.4). When the
// scrutinee is a tag variable, each arm is checked with the variable
// refined away; when it is determinate only the matching arm is checked;
// when it is stuck but not a variable all arms are checked unrefined.
func (c *Checker) checkTypecase(env *Env, e TypecaseT) (Term, error) {
	if err := tagOmega(env.Theta, e.Tag); err != nil {
		return nil, errf(e, "%v", err)
	}
	nf, err := tags.Normalize(e.Tag)
	if err != nil {
		return nil, errf(e, "%v", err)
	}
	out := e
	switch t := nf.(type) {
	case tags.Int:
		arm, err := c.CheckTerm(env, e.IntArm)
		if err != nil {
			return nil, err
		}
		out.IntArm = arm
		return out, nil
	case tags.Code:
		if len(t.Args) != 1 {
			return nil, errf(e, "typecase on %d-ary code tag; only unary λCLOS code tags are analyzable", len(t.Args))
		}
		sub := Subst1Tag(e.TL, t.Args[0])
		arm, err := c.CheckTerm(env, sub.Term(e.LamArm))
		if err != nil {
			return nil, err
		}
		out.LamArm = arm
		return out, nil
	case tags.Prod:
		sub := SubstTags(map[names.Name]tags.Tag{e.T1: t.L, e.T2: t.R})
		arm, err := c.CheckTerm(env, sub.Term(e.ProdArm))
		if err != nil {
			return nil, err
		}
		out.ProdArm = arm
		return out, nil
	case tags.Exist:
		sub := Subst1Tag(e.Te, tags.Lam{Param: t.Bound, Body: t.Body})
		arm, err := c.CheckTerm(env, sub.Term(e.ExistArm))
		if err != nil {
			return nil, err
		}
		out.ExistArm = arm
		return out, nil
	case tags.Var:
		// Refining case: substitute the discovered head for t in each arm
		// and in Γ (Fig. 6). The λ arm learns nothing (argument tags are
		// unknowable), matching the paper's rule.
		refine := func(repl tags.Tag, arm Term, extra *Env) (Term, error) {
			sub := Subst1Tag(t.Name, repl)
			e2 := extra.substEnv(sub)
			return c.CheckTerm(e2, sub.Term(arm))
		}
		intArm, err := refine(tags.Int{}, e.IntArm, env)
		if err != nil {
			return nil, fmt.Errorf("typecase int arm: %w", err)
		}
		lamEnv := env.withTag(e.TL, kinds.Omega{})
		lamArm, err := refine(tags.Code{Args: []tags.Tag{tags.Var{Name: e.TL}}}, e.LamArm, lamEnv)
		if err != nil {
			return nil, fmt.Errorf("typecase λ arm: %w", err)
		}
		prodEnv := env.withTag(e.T1, kinds.Omega{}).withTag(e.T2, kinds.Omega{})
		prodArm, err := refine(tags.Prod{L: tags.Var{Name: e.T1}, R: tags.Var{Name: e.T2}}, e.ProdArm, prodEnv)
		if err != nil {
			return nil, fmt.Errorf("typecase × arm: %w", err)
		}
		existEnv := env.withTag(e.Te, kinds.OmegaToOmega)
		freshT := names.Name("t∃")
		existWitness := tags.Exist{Bound: freshT, Body: tags.App{Fn: tags.Var{Name: e.Te}, Arg: tags.Var{Name: freshT}}}
		existArm, err := refine(existWitness, e.ExistArm, existEnv)
		if err != nil {
			return nil, fmt.Errorf("typecase ∃ arm: %w", err)
		}
		out.IntArm, out.LamArm, out.ProdArm, out.ExistArm = intArm, lamArm, prodArm, existArm
		return out, nil
	default:
		// Stuck application: check all arms without refinement.
		intArm, err := c.CheckTerm(env, e.IntArm)
		if err != nil {
			return nil, err
		}
		lamArm, err := c.CheckTerm(env.withTag(e.TL, kinds.Omega{}), e.LamArm)
		if err != nil {
			return nil, err
		}
		prodEnv := env.withTag(e.T1, kinds.Omega{}).withTag(e.T2, kinds.Omega{})
		prodArm, err := c.CheckTerm(prodEnv, e.ProdArm)
		if err != nil {
			return nil, err
		}
		existEnv := env.withTag(e.Te, kinds.OmegaToOmega)
		existArm, err := c.CheckTerm(existEnv, e.ExistArm)
		if err != nil {
			return nil, err
		}
		out.IntArm, out.LamArm, out.ProdArm, out.ExistArm = intArm, lamArm, prodArm, existArm
		return out, nil
	}
}

// checkWiden handles the collector's cast (Fig. 8): v must have type
// M_ρ(τ); the body is typed under only x : C_ρ,ρ'(τ), Ψ|cd and the regions
// {cd, ρ, ρ'} — x stands for the entire heap (§7.1).
func (c *Checker) checkWiden(env *Env, e WidenT) (Term, error) {
	if err := c.dialectAtLeast(e, Forw, "widen"); err != nil {
		return nil, err
	}
	if !env.hasRegion(e.To) {
		return nil, errf(e, "widen target region %s not in scope", e.To)
	}
	if err := tagOmega(env.Theta, e.Tag); err != nil {
		return nil, errf(e, "%v", err)
	}
	vt, err := c.SynthValue(env, e.V)
	if err != nil {
		return nil, err
	}
	nf, err := NormalizeType(c.Dialect, vt)
	if err != nil {
		return nil, errf(e, "%v", err)
	}
	// Recover ρ from the shape of v's type and verify it is M_ρ(τ).
	var from Region
	switch w := nf.(type) {
	case AtT:
		from = w.R
	case MT:
		from = w.Rs[0]
	case IntT:
		from = e.To // ints are region-free; any ρ works
	default:
		return nil, errf(e, "widen of type %s, want M_ρ(τ)", nf)
	}
	ok, err := TypeEqual(c.Dialect, nf, MT{Rs: []Region{from}, Tag: e.Tag})
	if err != nil {
		return nil, errf(e, "%v", err)
	}
	if !ok {
		return nil, errf(e, "widen argument has type %s, want M_%s(%s)", nf, from, e.Tag)
	}
	inner := env.clone()
	inner.Psi = env.Psi.Restrict(nil)
	inner.Delta = map[Region]bool{Region(CDRegion): true, from: true, e.To: true}
	for a, d := range env.Phi {
		for _, r := range d {
			if !inner.Delta[r] {
				delete(inner.Phi, a)
				break
			}
		}
	}
	inner.Gamma = map[names.Name]Type{e.X: CT{From: from, To: e.To, Tag: e.Tag}}
	body, err := c.CheckTerm(inner, e.Body)
	if err != nil {
		return nil, err
	}
	return WidenT{X: e.X, To: e.To, Tag: e.Tag, V: e.V, Body: body, From: from}, nil
}

// checkIfReg handles ifreg (ρ1 = ρ2) e1 e2 (Fig. 10): the then-branch is
// checked with the two regions identified by substitution.
func (c *Checker) checkIfReg(env *Env, e IfRegT) (Term, error) {
	if err := c.dialectAtLeast(e, Gen, "ifreg"); err != nil {
		return nil, err
	}
	if !env.hasRegion(e.R1) || !env.hasRegion(e.R2) {
		return nil, errf(e, "ifreg region not in scope")
	}
	v1, ok1 := e.R1.(RVar)
	v2, ok2 := e.R2.(RVar)
	var thenErr error
	var thn Term
	switch {
	case ok1 && ok2:
		// Both variables: unify by substituting r2 for r1 (the paper's
		// rule uses a fresh variable; picking r2 as the representative is
		// equivalent and keeps the elaborated branch's annotations in
		// terms of a real binder the machine will instantiate).
		sub := Subst1Reg(v1.Name, Region(v2))
		inner := env.substEnv(sub)
		thn, thenErr = c.CheckTerm(inner, sub.Term(e.Then))
	case ok1 && !ok2:
		sub := Subst1Reg(v1.Name, e.R2)
		thn, thenErr = c.CheckTerm(env.substEnv(sub), sub.Term(e.Then))
	case !ok1 && ok2:
		sub := Subst1Reg(v2.Name, e.R1)
		thn, thenErr = c.CheckTerm(env.substEnv(sub), sub.Term(e.Then))
	default:
		// Two concrete names: only the reachable branch is checked.
		if RegionEqual(e.R1, e.R2) {
			thn, thenErr = c.CheckTerm(env, e.Then)
			if thenErr != nil {
				return nil, thenErr
			}
			return IfRegT{R1: e.R1, R2: e.R2, Then: thn, Else: e.Else}, nil
		}
		els, err := c.CheckTerm(env, e.Else)
		if err != nil {
			return nil, err
		}
		return IfRegT{R1: e.R1, R2: e.R2, Then: e.Then, Else: els}, nil
	}
	if thenErr != nil {
		return nil, fmt.Errorf("ifreg then-branch: %w", thenErr)
	}
	els, err := c.CheckTerm(env, e.Else)
	if err != nil {
		return nil, err
	}
	return IfRegT{R1: e.R1, R2: e.R2, Then: thn, Else: els}, nil
}

// CheckProgram typechecks a whole program: it synthesizes the code region
// type Ψcd from the code blocks' annotations, checks every block and the
// main term, and returns the elaborated program.
func (c *Checker) CheckProgram(p Program) (Program, MemType, error) {
	return c.CheckProgramPrefix(p, 0)
}

// CheckProgramPrefix is CheckProgram for a program whose first trusted
// code blocks have already been checked and elaborated — the shared
// verified-collector prefix. Trusted blocks still contribute their code
// types to Ψcd (so the rest of the program may call into them), but they
// are copied through unchanged instead of being re-verified.
func (c *Checker) CheckProgramPrefix(p Program, trusted int) (Program, MemType, error) {
	if trusted < 0 || trusted > len(p.Code) {
		return Program{}, nil, fmt.Errorf("gclang: trusted prefix %d out of range [0,%d]", trusted, len(p.Code))
	}
	psi := MemType{}
	for i, nf := range p.Code {
		params := make([]Type, len(nf.Fun.Params))
		for j, prm := range nf.Fun.Params {
			params[j] = prm.Ty
		}
		psi[regions.Addr{Region: regions.CD, Off: i}] = CodeT{
			TParams: nf.Fun.TParams, RParams: nf.Fun.RParams, Params: params,
		}
	}
	out := Program{Code: make([]NamedFun, len(p.Code)), Main: p.Main}
	for i, nf := range p.Code {
		if i < trusted {
			out.Code[i] = nf
			continue
		}
		env := NewEnv(psi)
		if _, err := c.SynthValue(env, nf.Fun); err != nil {
			return Program{}, nil, fmt.Errorf("code block %s: %w", nf.Name, err)
		}
		// Re-check to obtain the elaborated body (SynthValue discards it).
		elab, err := c.elaborateLam(env, nf.Fun)
		if err != nil {
			return Program{}, nil, fmt.Errorf("code block %s: %w", nf.Name, err)
		}
		out.Code[i] = NamedFun{Name: nf.Name, Fun: elab}
	}
	env := NewEnv(psi)
	main, err := c.CheckTerm(env, p.Main)
	if err != nil {
		return Program{}, nil, fmt.Errorf("main term: %w", err)
	}
	out.Main = main
	return out, psi, nil
}

// elaborateLam re-checks a code block's body, returning the block with the
// elaborated body.
func (c *Checker) elaborateLam(env *Env, v LamV) (LamV, error) {
	inner := NewEnv(env.Psi.Restrict(nil))
	for _, tp := range v.TParams {
		inner.Theta[tp.Name] = tp.Kind
	}
	for _, r := range v.RParams {
		inner.Delta[Region(RVar{Name: r})] = true
	}
	for _, p := range v.Params {
		inner.Gamma[p.Name] = p.Ty
	}
	body, err := c.CheckTerm(inner, v.Body)
	if err != nil {
		return LamV{}, err
	}
	return LamV{TParams: v.TParams, RParams: v.RParams, Params: v.Params, Body: body}, nil
}
