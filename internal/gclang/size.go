package gclang

import "psgc/internal/tags"

// ProgramSize returns the number of AST nodes in a program: every term,
// value, and operation counts one, and embedded tags count via tags.Size.
// Type annotations are excluded — they track term size closely, and the
// count only needs to be a monotone weight (the service's compiled-program
// cache uses it for size-aware admission).
func ProgramSize(p Program) int {
	n := TermSize(p.Main)
	for _, nf := range p.Code {
		n += ValueSize(nf.Fun)
	}
	return n
}

// TermSize counts the AST nodes of a term (see ProgramSize).
func TermSize(e Term) int {
	switch e := e.(type) {
	case AppT:
		n := 1 + valuesSize(e.Args)
		for _, t := range e.Tags {
			n += tags.Size(t)
		}
		return n
	case LetT:
		return 1 + opSize(e.Op) + TermSize(e.Body)
	case HaltT:
		return 1 + ValueSize(e.V)
	case IfGCT:
		return 1 + TermSize(e.Full) + TermSize(e.Else)
	case OpenTagT:
		return 1 + ValueSize(e.V) + TermSize(e.Body)
	case OpenAlphaT:
		return 1 + ValueSize(e.V) + TermSize(e.Body)
	case LetRegionT:
		return 1 + TermSize(e.Body)
	case OnlyT:
		return 1 + TermSize(e.Body)
	case TypecaseT:
		return 1 + tags.Size(e.Tag) + TermSize(e.IntArm) + TermSize(e.LamArm) +
			TermSize(e.ProdArm) + TermSize(e.ExistArm)
	case IfLeftT:
		return 1 + ValueSize(e.V) + TermSize(e.L) + TermSize(e.R)
	case SetT:
		return 1 + ValueSize(e.Dst) + ValueSize(e.Src) + TermSize(e.Body)
	case WidenT:
		return 1 + tags.Size(e.Tag) + ValueSize(e.V) + TermSize(e.Body)
	case OpenRegionT:
		return 1 + ValueSize(e.V) + TermSize(e.Body)
	case IfRegT:
		return 1 + TermSize(e.Then) + TermSize(e.Else)
	case If0T:
		return 1 + ValueSize(e.V) + TermSize(e.Then) + TermSize(e.Else)
	default:
		return 1
	}
}

// ValueSize counts the AST nodes of a value (see ProgramSize).
func ValueSize(v Value) int {
	switch v := v.(type) {
	case PairV:
		return 1 + ValueSize(v.L) + ValueSize(v.R)
	case PackTag:
		return 1 + tags.Size(v.Tag) + ValueSize(v.Val)
	case PackAlpha:
		return 1 + ValueSize(v.Val)
	case PackRegion:
		return 1 + ValueSize(v.Val)
	case TAppV:
		n := 1 + ValueSize(v.Val)
		for _, t := range v.Tags {
			n += tags.Size(t)
		}
		return n
	case LamV:
		return 1 + len(v.Params) + TermSize(v.Body)
	case InlV:
		return 1 + ValueSize(v.Val)
	case InrV:
		return 1 + ValueSize(v.Val)
	default:
		return 1
	}
}

func valuesSize(vs []Value) int {
	n := 0
	for _, v := range vs {
		n += ValueSize(v)
	}
	return n
}

func opSize(op Op) int {
	switch op := op.(type) {
	case ValOp:
		return 1 + ValueSize(op.V)
	case ProjOp:
		return 1 + ValueSize(op.V)
	case PutOp:
		return 1 + ValueSize(op.V)
	case GetOp:
		return 1 + ValueSize(op.V)
	case StripOp:
		return 1 + ValueSize(op.V)
	case ArithOp:
		return 1 + ValueSize(op.L) + ValueSize(op.R)
	default:
		return 1
	}
}
