package gclang

import (
	"errors"
	"testing"

	"psgc/internal/tags"
)

// The machine must fail loudly — never panic, never silently continue —
// on ill-formed states that the typechecker would have rejected. These
// are the "untyped programs get stuck" half of the progress story.

func runRaw(t *testing.T, d Dialect, main Term) error {
	t.Helper()
	m := NewMachine(d, Program{Main: main}, 0)
	_, err := m.Run(1000)
	return err
}

func TestMachineStuckCases(t *testing.T) {
	cases := []struct {
		name string
		d    Dialect
		main Term
	}{
		{"call non-address", Base, AppT{Fn: Num{N: 1}}},
		{"proj from int", Base, LetT{X: "x", Op: ProjOp{I: 1, V: Num{N: 1}}, Body: HaltT{V: Num{N: 0}}}},
		{"get from int", Base, LetT{X: "x", Op: GetOp{V: Num{N: 1}}, Body: HaltT{V: Num{N: 0}}}},
		{"put into unresolved region", Base, LetT{X: "x", Op: PutOp{R: RVar{Name: "r"}, V: Num{N: 1}}, Body: HaltT{V: Num{N: 0}}}},
		{"arith on pair", Base, LetT{X: "x", Op: ArithOp{Kind: Add, L: PairV{L: Num{N: 1}, R: Num{N: 2}}, R: Num{N: 1}}, Body: HaltT{V: Num{N: 0}}}},
		{"if0 on pair", Base, If0T{V: PairV{L: Num{N: 1}, R: Num{N: 2}}, Then: HaltT{V: Num{N: 0}}, Else: HaltT{V: Num{N: 0}}}},
		{"open non-package", Base, OpenTagT{V: Num{N: 3}, T: "t", X: "x", Body: HaltT{V: Num{N: 0}}}},
		{"typecase on open tag", Base, TypecaseT{Tag: tags.Var{Name: "t"},
			IntArm: HaltT{V: Num{N: 0}}, TL: "tl", LamArm: HaltT{V: Num{N: 0}},
			T1: "a", T2: "b", ProdArm: HaltT{V: Num{N: 0}}, Te: "te", ExistArm: HaltT{V: Num{N: 0}}}},
		{"ifleft on int", Forw, IfLeftT{X: "x", V: Num{N: 1}, L: HaltT{V: Num{N: 0}}, R: HaltT{V: Num{N: 0}}}},
		{"strip int", Forw, LetT{X: "x", Op: StripOp{V: Num{N: 1}}, Body: HaltT{V: Num{N: 0}}}},
		{"set non-address", Forw, SetT{Dst: Num{N: 1}, Src: Num{N: 2}, Body: HaltT{V: Num{N: 0}}}},
		{"ifreg on vars", Gen, IfRegT{R1: RVar{Name: "a"}, R2: RVar{Name: "b"}, Then: HaltT{V: Num{N: 0}}, Else: HaltT{V: Num{N: 0}}}},
		{"open non-region-package", Gen, OpenRegionT{V: Num{N: 1}, R: "r", X: "x", Body: HaltT{V: Num{N: 0}}}},
	}
	for _, c := range cases {
		err := runRaw(t, c.d, c.main)
		if err == nil {
			t.Errorf("%s: machine did not report an error", c.name)
			continue
		}
		if !errors.Is(err, ErrStuck) {
			t.Errorf("%s: error %v is not ErrStuck", c.name, err)
		}
	}
}

func TestMachineDanglingAddress(t *testing.T) {
	// Reading a reclaimed cell must error, not return stale data.
	m := NewMachine(Base, Program{Main: HaltT{V: Num{N: 0}}}, 0)
	r := m.Mem.NewRegion()
	a, _ := m.Mem.Put(r, m.Pool.Encode(Num{N: 7}))
	m.Mem.Only(nil)
	m.Term = LetT{X: "x", Op: GetOp{V: AddrV{Addr: a}}, Body: HaltT{V: Num{N: 0}}}
	if err := m.Step(); err == nil {
		t.Errorf("dangling get succeeded")
	}
}

func TestMachineFuel(t *testing.T) {
	// A self-looping code block runs out of fuel, not stack.
	loop := LamV{RParams: []nameN{"r"}, Params: []Param{{Name: "x", Ty: IntT{}}},
		Body: AppT{Fn: CodeAddr(0), Rs: []Region{RVar{Name: "r"}}, Args: []Value{Var{Name: "x"}}}}
	p := Program{Code: []NamedFun{{Name: "loop", Fun: loop}},
		Main: LetRegionT{R: "r", Body: AppT{Fn: CodeAddr(0), Rs: []Region{RVar{Name: "r"}}, Args: []Value{Num{N: 0}}}}}
	m := NewMachine(Base, p, 0)
	if _, err := m.Run(500); !errors.Is(err, ErrFuel) {
		t.Errorf("want ErrFuel, got %v", err)
	}
}

func TestStepAfterHalt(t *testing.T) {
	m := NewMachine(Base, Program{Main: HaltT{V: Num{N: 3}}}, 0)
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); err == nil {
		t.Errorf("step after halt succeeded")
	}
}

func TestGhostRequiresElaboration(t *testing.T) {
	// Running an unelaborated put in ghost mode must fail loudly rather
	// than corrupt Ψ.
	m := NewMachine(Base, Program{Main: LetRegionT{R: "r",
		Body: LetT{X: "x", Op: PutOp{R: RVar{Name: "r"}, V: Num{N: 1}},
			Body: HaltT{V: Num{N: 0}}}}}, 0)
	m.Ghost = true
	_, err := m.Run(100)
	if err == nil {
		t.Errorf("ghost mode accepted an unelaborated put")
	}
}

func TestCheckStateRequiresGhost(t *testing.T) {
	m := NewMachine(Base, Program{Main: HaltT{V: Num{N: 0}}}, 0)
	if err := m.CheckState(); err == nil {
		t.Errorf("CheckState without ghost mode succeeded")
	}
}

func TestReachabilityThroughCells(t *testing.T) {
	m := NewMachine(Base, Program{Main: HaltT{V: Num{N: 0}}}, 0)
	r := m.Mem.NewRegion()
	inner, _ := m.Mem.Put(r, m.Pool.Encode(Num{N: 1}))
	outer, _ := m.Mem.Put(r, m.Pool.Encode(PairV{L: AddrV{Addr: inner}, R: Num{N: 2}}))
	unrelated, _ := m.Mem.Put(r, m.Pool.Encode(Num{N: 9}))
	m.Term = HaltT{V: AddrV{Addr: outer}}
	reach := m.Reachable()
	if !reach[outer] || !reach[inner] {
		t.Errorf("transitive reachability broken: %v", reach)
	}
	if reach[unrelated] {
		t.Errorf("unreachable cell reported reachable")
	}
}
