package gclang

import (
	"fmt"

	"psgc/internal/names"
	"psgc/internal/regions"
	"psgc/internal/tags"
)

// This file implements the ghost-Ψ counterpart of the widen soundness
// argument (§7.1, Appendix C): the T operator that re-types every live
// mutator cell from the M_ρ(τ) view to the C_ρ,ρ'(τ) view. The machine
// applies it when widen executes; any cell it cannot re-type is dropped
// from Ψ, matching Definition 7.1's restriction to a well-typed sufficient
// subset (ill-typed garbage is permitted as long as it is unreachable —
// the well-formedness checker verifies reachable cells only).

// typeToTag inverts the M mapping on component types: it recovers the
// source tag of a type that is the M-image of some tag with respect to
// region from. Elaborated annotations keep M-forms intact, so the common
// cases are direct; the remainder re-derives tags structurally.
func typeToTag(t Type, from Region) (tags.Tag, bool) {
	switch t := t.(type) {
	case IntT:
		return tags.Int{}, true
	case MT:
		if len(t.Rs) >= 1 && RegionEqual(t.Rs[0], from) {
			return t.Tag, true
		}
		return nil, false
	case AtT:
		// M(τ→0) = ∀[][r](M_r(τ…))→0 at cd.
		if !RegionEqual(t.R, CDRegion) {
			// M(τ1×τ2)/M(∃t.τ) images sit at `from`.
			if !RegionEqual(t.R, from) {
				return nil, false
			}
			return payloadToTag(t.Body, from)
		}
		code, ok := t.Body.(CodeT)
		if !ok || len(code.TParams) != 0 || len(code.RParams) != 1 {
			return nil, false
		}
		inner := RVar{Name: code.RParams[0]}
		args := make([]tags.Tag, len(code.Params))
		for i, p := range code.Params {
			tg, ok := typeToTag(p, inner)
			if !ok {
				return nil, false
			}
			args[i] = tg
		}
		return tags.Code{Args: args}, true
	default:
		return nil, false
	}
}

// payloadToTag recovers the tag of a heap cell's payload type under the
// λGCforw M mapping: cells hold left(σ1 × σ2) or left(∃t.σ).
func payloadToTag(t Type, from Region) (tags.Tag, bool) {
	l, ok := t.(LeftT)
	if !ok {
		return nil, false
	}
	switch body := l.Body.(type) {
	case ProdT:
		lt, ok := typeToTag(body.L, from)
		if !ok {
			return nil, false
		}
		rt, ok := typeToTag(body.R, from)
		if !ok {
			return nil, false
		}
		return tags.Prod{L: lt, R: rt}, true
	case ExistT:
		bt, ok := typeToTagUnder(body.Body, from, body.Bound)
		if !ok {
			return nil, false
		}
		return tags.Exist{Bound: body.Bound, Body: bt}, true
	default:
		return nil, false
	}
}

// typeToTagUnder is typeToTag beneath one tag binder: occurrences of
// M_from(bound-var) invert to the variable itself.
func typeToTagUnder(t Type, from Region, bound names.Name) (tags.Tag, bool) {
	return typeToTag(t, from)
}

// widenGhost applies T_{from,to} to Ψ: every cell in region from whose
// recorded type is the payload of M_from(τ) for some τ is re-typed as the
// payload of C_{from,to}(τ); cells that do not invert are dropped (garbage
// per Def. 7.1); cells outside {cd, from, to} are dropped (the widen rule
// restricts the region context to exactly those).
func (m *Machine) widenGhost(from, to regions.Name) error {
	fromR := Region(RName{Name: from})
	toR := Region(RName{Name: to})
	next := MemType{}
	for addr, t := range m.Psi {
		switch addr.Region {
		case regions.CD:
			next[addr] = t
		case from:
			tag, ok := payloadToTag(t, fromR)
			if !ok {
				continue // unreachable garbage; wf check verifies
			}
			// Re-annotate the stored value itself: package bodies recorded
			// at allocation time use the M view and must be cast to the C
			// view along with Ψ (§7.1: the cast systematically converts
			// the whole heap). This rewrite only touches type annotations,
			// never the runtime data, so widen stays a no-op operationally.
			// Peek/Corrupt rather than Get/Set: this rewrite is ghost
			// bookkeeping, not program memory traffic, and must not move
			// the counters the co-checker compares. The packed cell is
			// decoded, re-annotated, and re-encoded — the one place the
			// ghost machine round-trips a stored cell through the boxed
			// form.
			if cell, ok := m.Mem.Peek(addr); ok {
				widened := widenValue(m.Pool.Decode(cell), fromR, toR)
				if !m.Mem.Corrupt(addr, m.Pool.Encode(widened)) {
					return fmt.Errorf("gclang: widen ghost: lost cell %s", addr)
				}
			}
			// Sanity: the original type must really be the M payload.
			same, err := TypeEqual(Forw, AtT{Body: t, R: fromR}, MT{Rs: []Region{fromR}, Tag: tag})
			if err != nil {
				return fmt.Errorf("gclang: widen ghost: %v", err)
			}
			if !same {
				continue
			}
			next[addr] = cPayload(fromR, toR, tag)
		case to:
			// The to-space is empty at widen time in the paper's collector;
			// any cells here are not re-typed.
			next[addr] = t
		default:
			// Outside the widen rule's region context: dropped.
		}
	}
	m.Psi = next
	return nil
}

// widenValue rewrites the type annotations embedded in a heap value from
// the M_from view to the C_from,to view. Runtime structure is unchanged.
func widenValue(v Value, from, to Region) Value {
	switch v := v.(type) {
	case Num, Var, AddrV, LamV, TAppV:
		return v
	case PairV:
		return PairV{L: widenValue(v.L, from, to), R: widenValue(v.R, from, to)}
	case InlV:
		return InlV{Val: widenValue(v.Val, from, to)}
	case InrV:
		return InrV{Val: widenValue(v.Val, from, to)}
	case PackTag:
		return PackTag{Bound: v.Bound, Kind: v.Kind, Tag: v.Tag,
			Val: widenValue(v.Val, from, to), Body: widenType(v.Body, from, to)}
	case PackAlpha:
		return PackAlpha{Bound: v.Bound, Delta: v.Delta,
			Hidden: widenType(v.Hidden, from, to),
			Val:    widenValue(v.Val, from, to), Body: widenType(v.Body, from, to)}
	case PackRegion:
		return PackRegion{Bound: v.Bound, Delta: v.Delta, R: v.R,
			Val: widenValue(v.Val, from, to), Body: widenType(v.Body, from, to)}
	default:
		panic(fmt.Sprintf("gclang: unknown value %T", v))
	}
}

// widenType replaces every M_from(τ) node by C_from,to(τ); other structure
// is preserved.
func widenType(t Type, from, to Region) Type {
	switch t := t.(type) {
	case IntT, AlphaT, CodeT, TransT:
		return t
	case ProdT:
		return ProdT{L: widenType(t.L, from, to), R: widenType(t.R, from, to)}
	case ExistT:
		return ExistT{Bound: t.Bound, Kind: t.Kind, Body: widenType(t.Body, from, to)}
	case AtT:
		return AtT{Body: widenType(t.Body, from, to), R: t.R}
	case MT:
		if len(t.Rs) == 1 && RegionEqual(t.Rs[0], from) {
			if _, isCode := t.Tag.(tags.Code); !isCode {
				return CT{From: from, To: to, Tag: t.Tag}
			}
		}
		return t
	case CT:
		return t
	case ExistAlphaT:
		return ExistAlphaT{Bound: t.Bound, Delta: t.Delta, Body: widenType(t.Body, from, to)}
	case LeftT:
		return LeftT{Body: widenType(t.Body, from, to)}
	case RightT:
		return RightT{Body: widenType(t.Body, from, to)}
	case SumT:
		return SumT{L: widenType(t.L, from, to), R: widenType(t.R, from, to)}
	case ExistRT:
		return ExistRT{Bound: t.Bound, Delta: t.Delta, Body: widenType(t.Body, from, to)}
	default:
		panic(fmt.Sprintf("gclang: unknown type %T", t))
	}
}

// cPayload builds the cell payload of C_{from,to}(τ) for a pair or
// existential tag (§7): left(C…) + right(M_to(τ)).
func cPayload(from, to Region, tag tags.Tag) Type {
	nf := tags.MustNormalize(tag)
	switch t := nf.(type) {
	case tags.Prod:
		return SumT{
			L: LeftT{Body: ProdT{
				L: CT{From: from, To: to, Tag: t.L},
				R: CT{From: from, To: to, Tag: t.R},
			}},
			R: RightT{Body: MT{Rs: []Region{to}, Tag: nf}},
		}
	case tags.Exist:
		return SumT{
			L: LeftT{Body: ExistT{Bound: t.Bound, Kind: omegaKind, Body: CT{From: from, To: to, Tag: t.Body}}},
			R: RightT{Body: MT{Rs: []Region{to}, Tag: nf}},
		}
	default:
		panic(fmt.Sprintf("gclang: cPayload on non-boxed tag %s", nf))
	}
}
