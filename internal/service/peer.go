package service

// The backend half of the fleet's shared compiled-program cache tier.
//
// Compiles are deterministic and keyed by (source hash, collector), so any
// node's compiled entry is as good as any other's. When this node misses
// its local cache it asks the gate's peer-fetch endpoint whether a sibling
// already paid the compile; the gate answers with the sibling's exported
// entry, which this node re-certifies through the λGC typechecker before
// running (psgc.ImportCompiled). The reverse direction is GET /cache/export,
// which serves this node's own entries to the rest of the fleet.

import (
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"runtime/debug"
	"time"

	"psgc"
	"psgc/internal/obs"
)

// peerClient fetches compiled entries through the fleet gate.
type peerClient struct {
	url    string // the gate's peer-fetch endpoint
	self   string // this node's identity, so the gate skips the requester
	client *http.Client
}

// maxPeerEntryBytes bounds an imported payload; an entry bigger than this
// is cheaper to recompile than to ship.
const maxPeerEntryBytes = 64 << 20

// SetPeerFetch points the server at a gate peer-fetch endpoint (empty url
// disables). Safe to call at any time; typically once at startup, or by
// tests that construct the gate after its backends.
func (s *Server) SetPeerFetch(url, self string) {
	if url == "" {
		s.peer.Store(nil)
		return
	}
	s.peer.Store(&peerClient{
		url:    url,
		self:   self,
		client: &http.Client{Timeout: time.Duration(s.cfg.PeerTimeoutMs) * time.Millisecond},
	})
}

// peerFetch asks the gate for a sibling's compiled entry. It reports
// (nil, false) on any failure — peer fetching is strictly an optimization,
// so every error path falls back to compiling locally.
func (s *Server) peerFetch(hash string, col psgc.Collector) (*psgc.Compiled, bool) {
	pc := s.peer.Load()
	if pc == nil {
		return nil, false
	}
	q := url.Values{}
	q.Set("hash", hash)
	q.Set("collector", col.String())
	if pc.self != "" {
		q.Set("exclude", pc.self)
	}
	resp, err := pc.client.Get(pc.url + "?" + q.Encode())
	if err != nil {
		s.metrics.PeerMisses.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		s.metrics.PeerMisses.Add(1)
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerEntryBytes))
	if err != nil {
		s.metrics.PeerMisses.Add(1)
		return nil, false
	}
	c, err := psgc.ImportCompiled(data)
	if err != nil {
		// A payload that fails the certifying import counts separately:
		// it means a peer (or the wire) handed us something broken, which
		// is an incident-worthy signal, not a routine miss.
		s.metrics.PeerImportErrors.Add(1)
		s.guard.incidents.Record(obs.Incident{
			Kind: "peer_import_rejected", Subject: hash,
			Detail: fmt.Sprintf("collector %s: %v", col, err),
		})
		return nil, false
	}
	if c.Collector != col {
		s.metrics.PeerImportErrors.Add(1)
		return nil, false
	}
	s.metrics.PeerHits.Add(1)
	return c, true
}

// handleCacheExport serves one compiled entry to the fleet:
// GET /cache/export?hash=<hex sha256>&collector=<name>. 404 on a miss; the
// lookup does not touch SLRU recency, so peer traffic cannot promote or
// demote entries.
func (s *Server) handleCacheExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeResponse(w, &response{status: http.StatusMethodNotAllowed,
			body: errorBody{Error: "use GET"}})
		return
	}
	col, err := parseCollector(r.URL.Query().Get("collector"))
	if err != nil {
		s.writeResponse(w, &response{status: http.StatusBadRequest,
			body: errorBody{Error: err.Error()}})
		return
	}
	var k cacheKey
	raw, err := hex.DecodeString(r.URL.Query().Get("hash"))
	if err != nil || len(raw) != len(k.hash) {
		s.writeResponse(w, &response{status: http.StatusBadRequest,
			body: errorBody{Error: "hash must be a hex sha256"}})
		return
	}
	copy(k.hash[:], raw)
	k.col = col
	c, ok := s.cache.peek(k)
	if !ok {
		s.writeResponse(w, &response{status: http.StatusNotFound,
			body: errorBody{Error: "no compiled entry for that key"}})
		return
	}
	data, err := c.Export()
	if err != nil {
		s.writeResponse(w, &response{status: http.StatusInternalServerError,
			body: errorBody{Error: "export: " + err.Error()}})
		return
	}
	s.metrics.PeerExports.Add(1)
	s.countOutcome(http.StatusOK)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Psgc-Source-Hash", r.URL.Query().Get("hash"))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// buildInfo reports what this binary is, for /healthz: the Go toolchain
// and, when the binary was built from a VCS checkout, the revision.
func buildInfo() map[string]any {
	out := map[string]any{"go": runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Path != "" {
		out["module"] = bi.Main.Path
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev := kv.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
			out["revision"] = rev
		case "vcs.modified":
			out["dirty"] = kv.Value == "true"
		}
	}
	return out
}
