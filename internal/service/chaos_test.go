//go:build chaos

package service

// The full chaos matrix, selected with `go test -tags chaos -run Chaos`:
// every fault point hammered concurrently over the E1 workload, plus the
// cross-cutting invariants — no panic escapes a worker, partial results
// stay well-formed, the PR-2 timeline/counter identities hold under
// faults that must not disturb them, and the cache stays coherent after
// eviction storms. The fast default-on slice is chaos_smoke_test.go.

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"psgc/internal/fault"
	"psgc/internal/workload"
)

// chaosPoints is the hammering matrix: one entry per fault point, with the
// statuses that count as well-formed under that fault and whether the run
// is forced through the oracle co-check (corruption must never surface a
// wrong value, only a divergence).
var chaosPoints = []struct {
	name    string
	reg     *fault.Registry
	cocheck bool
	allowed map[int]bool
}{
	{"compile.parse", fault.NewRegistry(101).Enable(fault.CompileParse, 0.4), false,
		map[int]bool{http.StatusOK: true, http.StatusInternalServerError: true}},
	{"machine.step", fault.NewRegistry(102).Enable(fault.MachineStep, 0.0005), false,
		map[int]bool{http.StatusOK: true, http.StatusInternalServerError: true}},
	{"machine.stall", fault.NewRegistry(103).EnableDelay(fault.MachineStall, 0.001, time.Millisecond), false,
		map[int]bool{http.StatusOK: true}},
	{"machine.corrupt", fault.NewRegistry(104).Enable(fault.HeapCorrupt, 0.5), true,
		map[int]bool{http.StatusOK: true}},
	{"worker.panic", fault.NewRegistry(105).Enable(fault.WorkerPanic, 0.4), false,
		map[int]bool{http.StatusOK: true, http.StatusInternalServerError: true}},
	{"worker.latency", fault.NewRegistry(106).EnableDelay(fault.WorkerLatency, 1, time.Millisecond), false,
		map[int]bool{http.StatusOK: true}},
	{"cache.evict", fault.NewRegistry(107).Enable(fault.CacheEvict, 0.8), false,
		map[int]bool{http.StatusOK: true}},
	{"policy.flip", fault.NewRegistry(108).Enable(fault.PolicyFlip, 1), true,
		map[int]bool{http.StatusOK: true}},
}

var chaosCollectors = []string{"basic", "forwarding", "generational"}

// chaosBackends alternates the memory substrate across the matrix so every
// fault point fires against the arena as well as the map backend —
// machine.corrupt in particular must land on arena slabs and still be
// caught by the map-substrate oracle.
var chaosBackends = []string{"map", "arena"}

// chaosPolicies alternates the decision path: static runs pin the request's
// collector, adaptive runs route through the policy engine — which is the
// surface the policy.flip fault perturbs.
var chaosPolicies = []string{"static", "adaptive"}

// TestChaosMatrix hammers every fault point with concurrent mixed-collector,
// mixed-backend traffic and asserts the service never leaves its
// well-formed envelope.
func TestChaosMatrix(t *testing.T) {
	for _, p := range chaosPoints {
		t.Run(p.name, func(t *testing.T) {
			fault.Install(p.reg)
			t.Cleanup(func() { fault.Install(nil) })
			s, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 32, CacheSize: 8})

			const goroutines, perG = 4, 6
			var wg sync.WaitGroup
			errs := make(chan string, goroutines*perG)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						n := 10 + (g*perG+i)%12
						col := chaosCollectors[(g+i)%len(chaosCollectors)]
						status, body := postJSONNoFatal(ts.URL+"/run", RunRequest{
							CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(n), Collector: col},
							Capacity:       intp(40),
							CoCheck:        p.cocheck,
							Backend:        chaosBackends[(g+i)%len(chaosBackends)],
							Policy:         chaosPolicies[(g+2*i)%len(chaosPolicies)],
						})
						if !p.allowed[status] {
							errs <- string(body)
							continue
						}
						if status == http.StatusOK {
							var rr RunResponse
							if err := json.Unmarshal(body, &rr); err != nil {
								errs <- "unparseable 200: " + string(body)
							} else if rr.Value != n*(n+1)/2 {
								errs <- "wrong value under " + p.name + ": " + string(body)
							}
						} else {
							var eb errorBody
							if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
								errs <- "unparseable error body: " + string(body)
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Errorf("%s: %s", p.name, e)
			}

			// The invariants: no panic escaped a worker (the pool still
			// serves), and the cache is coherent whatever the fault did.
			fault.Install(nil)
			status, body := postJSONNoFatal(ts.URL+"/run", RunRequest{
				CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(15)},
				Capacity:       intp(40),
			})
			if status != http.StatusOK {
				t.Fatalf("pool did not survive %s: status %d: %s", p.name, status, body)
			}
			if err := s.cache.coherent(); err != nil {
				t.Errorf("cache incoherent after %s: %v", p.name, err)
			}
		})
	}
}

// TestChaosTimelineIdentity asserts the PR-2 counter identities — timeline
// steps equal machine steps, spans equal collections, and allocs+copies
// equal puts minus code installs — on traced runs under the fault points
// that must not disturb accounting (latency, stalls, eviction storms).
// Synthetic heap corruption deliberately bypasses the stats counters for
// the same reason: damage must surface behaviorally, not arithmetically.
func TestChaosTimelineIdentity(t *testing.T) {
	fault.Install(fault.NewRegistry(9).
		EnableDelay(fault.WorkerLatency, 0.5, time.Millisecond).
		EnableDelay(fault.MachineStall, 0.0005, time.Millisecond).
		Enable(fault.CacheEvict, 0.5))
	t.Cleanup(func() { fault.Install(nil) })
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16, CacheSize: 4})

	for _, col := range chaosCollectors {
		status, body := postJSONNoFatal(ts.URL+"/compile", CompileRequest{Source: allocHeavy, Collector: col})
		if status != http.StatusOK {
			t.Fatalf("%s compile: %d: %s", col, status, body)
		}
		var cr CompileResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}

		status, body = postJSONNoFatal(ts.URL+"/run?trace=1", RunRequest{
			CompileRequest: CompileRequest{Source: allocHeavy, Collector: col},
			Capacity:       intp(24),
		})
		if status != http.StatusOK {
			t.Fatalf("%s traced run: %d: %s", col, status, body)
		}
		var rr RunResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Trace == nil || rr.Trace.Timeline == nil {
			t.Fatalf("%s: traced run has no timeline", col)
		}
		tl := rr.Trace.Timeline
		if tl.Steps != rr.Stats.Steps {
			t.Errorf("%s: timeline steps %d vs stats %d under faults", col, tl.Steps, rr.Stats.Steps)
		}
		if rr.Stats.Collections < 1 || len(tl.Collections) != rr.Stats.Collections {
			t.Errorf("%s: %d spans for %d collections under faults", col, len(tl.Collections), rr.Stats.Collections)
		}
		if got, want := tl.Allocs+tl.Copies, rr.Stats.Puts-cr.CodeBlocks; got != want {
			t.Errorf("%s: allocs+copies = %d, puts-code = %d under faults", col, got, want)
		}
	}
}

// TestChaosCorruptionNeverWrongValue runs every collector × backend with
// certain corruption under full co-check sampling: the oracle's value must
// be served on every single response, and each diverged program must open
// its own breaker. The corruption is a tag-bit flip in a packed heap cell,
// so the arena rows specifically pin that flipping bits in the flat slab
// is caught cell-by-cell by the clean map-substrate oracle.
func TestChaosCorruptionNeverWrongValue(t *testing.T) {
	fault.Install(fault.NewRegistry(13).Enable(fault.HeapCorrupt, 1))
	t.Cleanup(func() { fault.Install(nil) })
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16, CoCheckSample: 1})

	diverged := 0
	cases := 0
	for i, col := range chaosCollectors {
		for _, be := range chaosBackends {
			cases++
			n := 22 + i
			status, body := postJSONNoFatal(ts.URL+"/run", RunRequest{
				CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(n), Collector: col},
				Capacity:       intp(40),
				Backend:        be,
			})
			if status != http.StatusOK {
				t.Fatalf("%s/%s: status %d: %s", col, be, status, body)
			}
			var rr RunResponse
			if err := json.Unmarshal(body, &rr); err != nil {
				t.Fatal(err)
			}
			if rr.Value != n*(n+1)/2 {
				t.Errorf("%s/%s: value %d under certain corruption, want the oracle's %d", col, be, rr.Value, n*(n+1)/2)
			}
			if rr.Diverged {
				diverged++
			}
		}
	}
	if diverged == 0 {
		t.Errorf("certain corruption across %d collector×backend cases produced no divergence", cases)
	}
	if got := s.metrics.BreakersOpen.Load(); got == 0 {
		t.Error("no breaker opened for diverged programs")
	}
}

// TestChaosWatchdogStallStorm pairs a certain per-step stall with the
// watchdog: every run must come back as a 504 carrying well-formed partial
// statistics, and the pool must be fully alive afterwards.
func TestChaosWatchdogStallStorm(t *testing.T) {
	fault.Install(fault.NewRegistry(17).EnableDelay(fault.MachineStall, 1, time.Millisecond))
	t.Cleanup(func() { fault.Install(nil) })
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16, WatchdogMs: 30})

	for i := 0; i < 3; i++ {
		status, body := postJSONNoFatal(ts.URL+"/run", RunRequest{
			CompileRequest: CompileRequest{Source: allocHeavy},
			Capacity:       intp(40),
			ProgressSteps:  20,
		})
		if status != http.StatusGatewayTimeout {
			t.Fatalf("stalled run %d: status %d: %s", i, status, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(eb.Error, "watchdog") || eb.Partial == nil || eb.Partial.Steps <= 0 {
			t.Errorf("stalled run %d: malformed watchdog response: %s", i, body)
		}
	}
	if got := s.metrics.WatchdogStalls.Load(); got != 3 {
		t.Errorf("watchdog stalls = %d, want 3", got)
	}

	fault.Install(nil)
	status, body := postJSONNoFatal(ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy},
		Capacity:       intp(40),
	})
	if status != http.StatusOK {
		t.Fatalf("pool did not survive the stall storm: %d: %s", status, body)
	}
}

// TestChaosStormCoherenceConcurrent floods the cache with concurrent
// compiles of distinct programs while every compile also fires an eviction
// storm, then re-derives the SLRU invariants.
func TestChaosStormCoherenceConcurrent(t *testing.T) {
	fault.Install(fault.NewRegistry(19).Enable(fault.CacheEvict, 0.5))
	t.Cleanup(func() { fault.Install(nil) })
	s, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 64, CacheSize: 6})

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				n := 8 + (g*8+i)%16
				col := chaosCollectors[(g+i)%len(chaosCollectors)]
				status, body := postJSONNoFatal(ts.URL+"/compile", CompileRequest{Source: workload.AllocHeavySrc(n), Collector: col})
				if status != http.StatusOK {
					errs <- string(body)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("compile under storm: %s", e)
	}
	if err := s.cache.coherent(); err != nil {
		t.Errorf("cache incoherent after concurrent storms: %v", err)
	}
	if got := s.cache.len(); got > 6 {
		t.Errorf("cache holds %d entries, cap is 6", got)
	}
}

// TestChaosPolicyFlipNeutral is the policy ∉ TCB demonstration: with the
// policy.flip fault certain, every warm adaptive decision is rotated to a
// collector the profile did not pick — and the program's value, the oracle
// co-check, and the PR-2 timeline identities must all be indifferent to it.
func TestChaosPolicyFlipNeutral(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16})

	// Warm the profile for both workloads with clean static runs first.
	srcs := []struct {
		src  string
		want int
	}{{allocHeavy, 30 * 31 / 2}, {workload.SharedDAGSrc(6), 4}}
	for _, tc := range srcs {
		for _, col := range chaosCollectors {
			status, body := postJSONNoFatal(ts.URL+"/run", RunRequest{
				CompileRequest: CompileRequest{Source: tc.src, Collector: col},
				Capacity:       intp(24),
			})
			if status != http.StatusOK {
				t.Fatalf("warm-up %s: %d: %s", col, status, body)
			}
		}
	}

	fault.Install(fault.NewRegistry(23).Enable(fault.PolicyFlip, 1))
	t.Cleanup(func() { fault.Install(nil) })

	flipped := 0
	for _, tc := range srcs {
		status, body := postJSONNoFatal(ts.URL+"/run?trace=1&cocheck=1", RunRequest{
			CompileRequest: CompileRequest{Source: tc.src, Collector: "basic"},
			Capacity:       intp(24),
			Policy:         "adaptive",
		})
		if status != http.StatusOK {
			t.Fatalf("flipped adaptive run: %d: %s", status, body)
		}
		var rr RunResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Value != tc.want {
			t.Errorf("flipped policy changed the value: %d, want %d", rr.Value, tc.want)
		}
		if !rr.CoChecked || rr.Diverged {
			t.Errorf("flipped run cochecked=%v diverged=%v, want clean co-check", rr.CoChecked, rr.Diverged)
		}
		d := rr.Decision
		if d == nil || !d.Flipped || !strings.Contains(d.Reason, "policy.flip") {
			t.Fatalf("decision not flipped under certain fault: %+v", d)
		}
		if d.Collector != rr.Collector {
			t.Errorf("run used %q but the (flipped) decision says %q", rr.Collector, d.Collector)
		}
		if flippedDecision := d.Flipped; flippedDecision {
			flipped++
		}

		// Timeline identities survive the flip: the events the profile and
		// timeline count come from the machine that actually ran.
		status, cbody := postJSONNoFatal(ts.URL+"/compile", CompileRequest{Source: tc.src, Collector: rr.Collector})
		if status != http.StatusOK {
			t.Fatalf("compile %s: %d: %s", rr.Collector, status, cbody)
		}
		var cr CompileResponse
		if err := json.Unmarshal(cbody, &cr); err != nil {
			t.Fatal(err)
		}
		tl := rr.Trace.Timeline
		if tl == nil {
			t.Fatal("flipped traced run has no timeline")
		}
		if tl.Steps != rr.Stats.Steps {
			t.Errorf("timeline steps %d vs stats %d under flip", tl.Steps, rr.Stats.Steps)
		}
		if len(tl.Collections) != rr.Stats.Collections {
			t.Errorf("%d spans for %d collections under flip", len(tl.Collections), rr.Stats.Collections)
		}
		if got, want := tl.Allocs+tl.Copies, rr.Stats.Puts-cr.CodeBlocks; got != want {
			t.Errorf("allocs+copies = %d, puts-code = %d under flip", got, want)
		}
	}
	if flipped != len(srcs) {
		t.Errorf("%d of %d adaptive decisions flipped under a certain fault", flipped, len(srcs))
	}
	if got := s.Metrics().PolicyFlips.Load(); int(got) != flipped {
		t.Errorf("PolicyFlips metric %d, want %d", got, flipped)
	}
}
