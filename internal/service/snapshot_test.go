package service

// Tests for the checkpoint/resume surface (PR 10): POST /snapshot pausing
// a live stream, POST /resume re-certifying and continuing the run on any
// backend, the double-resume idempotency guard, the checkpoint.corrupt
// chaos point, the operator endpoints, and the persistent incident log.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"psgc"
	"psgc/internal/fault"
	"psgc/internal/obs"
)

// doJSON drives one endpoint with an arbitrary method (DELETE, PUT).
func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// startStream launches a streaming run and returns the live response plus
// the trace ID the server minted for it. The caller owns resp.Body.
func startStream(t *testing.T, ts *httptest.Server, req RunRequest) (*http.Response, string) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/run?stream=1", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, out.Bytes())
	}
	trace := resp.Header.Get("X-Trace-Id")
	if trace == "" {
		t.Fatal("stream response has no X-Trace-Id header")
	}
	return resp, trace
}

// nextSSE reads the next complete event off a live stream.
func nextSSE(sc *bufio.Scanner) (sseEvent, bool) {
	var cur sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != nil {
				return cur, true
			}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = append(cur.data, strings.TrimPrefix(line, "data: ")...)
		}
	}
	return cur, false
}

func sseScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return sc
}

// stallSteps slows every machine step so a streaming run is still alive
// when the test's /snapshot arrives.
func stallSteps(t *testing.T, reg *fault.Registry) {
	t.Helper()
	if reg == nil {
		reg = fault.NewRegistry(1)
	}
	fault.Install(reg.EnableDelay(fault.MachineStall, 0.05, 200*time.Microsecond))
	t.Cleanup(func() { fault.Install(nil) })
}

// makeCheckpointBlob builds a mid-run checkpoint through the psgc API,
// with a pinned trace identity, for driving /resume without a live server.
func makeCheckpointBlob(t *testing.T, traceID string) []byte {
	t.Helper()
	c, err := psgc.Compile(allocHeavy, psgc.Forwarding)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.Run(psgc.RunOptions{Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	cp := psgc.NewCheckpointer()
	requested := false
	_, err = c.Run(psgc.RunOptions{
		Capacity:       32,
		Checkpointer:   cp,
		CheckpointMeta: psgc.CheckpointMeta{SourceHash: SourceHash(allocHeavy), TraceID: traceID},
		ProgressEvery:  50,
		Progress: func(p psgc.Progress) bool {
			if !requested && p.Steps >= ref.Steps/2 {
				requested = true
				cp.Request()
			}
			return true
		},
	})
	if !errors.Is(err, psgc.ErrCheckpointed) {
		t.Fatalf("run did not pause at the checkpoint: %v", err)
	}
	ck := <-cp.Checkpoints()
	blob, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestSnapshotResumeMigration is the acceptance scenario: a streaming run
// on the arena backend is paused by POST /snapshot at a step boundary, its
// stream ends with a "checkpointed" event, and POST /resume continues it
// on the map backend with a bit-identical result — same value, same
// machine-step and GC counters as the uninterrupted run.
func TestSnapshotResumeMigration(t *testing.T) {
	stallSteps(t, nil)
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	// Uninterrupted reference run (map backend).
	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy, Collector: "forwarding"},
		Capacity:       intp(32),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run: %d (%s)", resp.StatusCode, body)
	}
	ref := decode[RunResponse](t, body)

	// Live streaming run on the arena backend.
	stream, trace := startStream(t, ts, RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy, Collector: "forwarding"},
		Capacity:       intp(32),
		Backend:        "arena",
		ProgressSteps:  100,
	})
	defer stream.Body.Close()
	sc := sseScanner(stream.Body)
	if ev, ok := nextSSE(sc); !ok || ev.name != "progress" {
		t.Fatalf("first stream event %q (ok=%v), want progress", ev.name, ok)
	}

	// Pause it at the next step boundary.
	sresp, sbody := postJSON(t, ts.URL+"/snapshot", SnapshotRequest{TraceID: trace})
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d (%s)", sresp.StatusCode, sbody)
	}
	snap := decode[SnapshotResponse](t, sbody)
	if snap.Backend != "arena" || snap.Collector != "forwarding" || snap.Steps <= 0 || len(snap.Blob) == 0 {
		t.Fatalf("snapshot %+v: want arena/forwarding, positive steps, non-empty blob", snap)
	}
	if snap.SourceHash != ref.SourceHash {
		t.Errorf("snapshot hash %s, want %s", snap.SourceHash, ref.SourceHash)
	}

	// The interrupted stream's terminal event is "checkpointed", not a
	// result and not an error: the run moved, it did not fail.
	var last sseEvent
	for {
		ev, ok := nextSSE(sc)
		if !ok {
			break
		}
		last = ev
	}
	if last.name != "checkpointed" {
		t.Fatalf("terminal stream event %q (%s), want checkpointed", last.name, last.data)
	}
	ckd := decode[CheckpointedResponse](t, last.data)
	if !ckd.Checkpointed || ckd.Steps != snap.Steps || ckd.TraceID != trace {
		t.Errorf("checkpointed event %+v does not match snapshot (steps %d, trace %s)", ckd, snap.Steps, trace)
	}

	// Resume on the other backend: the migration must be invisible in the
	// result.
	rresp, rbody := postJSON(t, ts.URL+"/resume", ResumeRequest{Blob: snap.Blob, Backend: "map"})
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("resume: %d (%s)", rresp.StatusCode, rbody)
	}
	rr := decode[RunResponse](t, rbody)
	if rr.Value != ref.Value {
		t.Errorf("resumed value %d, want %d", rr.Value, ref.Value)
	}
	if rr.Stats != ref.Stats {
		t.Errorf("resumed stats diverged:\n  resumed       %+v\n  uninterrupted %+v", rr.Stats, ref.Stats)
	}
	if !rr.Resumed || rr.ResumedFromStep != snap.Steps {
		t.Errorf("resumed/from = %v/%d, want true/%d", rr.Resumed, rr.ResumedFromStep, snap.Steps)
	}
	if rr.Backend != "map" {
		t.Errorf("resumed backend %q, want map", rr.Backend)
	}
	if rr.TraceID != trace {
		t.Errorf("resumed trace %q, want the original run's %q", rr.TraceID, trace)
	}
	if got := s.metrics.Snapshots.Load(); got != 1 {
		t.Errorf("snapshots counter = %d, want 1", got)
	}
	if got := s.metrics.Resumes.Load(); got != 1 {
		t.Errorf("resumes counter = %d, want 1", got)
	}
}

// TestSnapshotMisses pins the miss paths: an unknown trace is 404, a
// registered run that never reaches another step boundary is 410 after
// SnapshotWaitMs, and a request without a trace ID is 400.
func TestSnapshotMisses(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, SnapshotWaitMs: 50})

	resp, body := postJSON(t, ts.URL+"/snapshot", SnapshotRequest{TraceID: "no-such-run"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: %d (%s), want 404", resp.StatusCode, body)
	}

	s.registerLive("stalled-run", psgc.NewCheckpointer())
	defer s.unregisterLive("stalled-run")
	resp, body = postJSON(t, ts.URL+"/snapshot", SnapshotRequest{TraceID: "stalled-run"})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("boundary timeout: %d (%s), want 410", resp.StatusCode, body)
	}
	if got := s.metrics.SnapshotMisses.Load(); got != 2 {
		t.Errorf("snapshot_misses = %d, want 2", got)
	}

	resp, body = postJSON(t, ts.URL+"/snapshot", SnapshotRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing trace_id: %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestResumeRejectsCorruptBlob flips one bit in a valid checkpoint and
// posts garbage outright: both must be refused with 422 and a
// checkpoint_rejected incident — never a resumed machine.
func TestResumeRejectsCorruptBlob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	blob := makeCheckpointBlob(t, "corrupt-run")
	blob[len(blob)/2] ^= 0x40
	resp, body := postJSON(t, ts.URL+"/resume", ResumeRequest{Blob: blob})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bit-flipped blob: %d (%s), want 422", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts.URL+"/resume", ResumeRequest{Blob: []byte("not a checkpoint")})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("garbage blob: %d (%s), want 422", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts.URL+"/resume", ResumeRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty blob: %d (%s), want 400", resp.StatusCode, body)
	}

	if got := s.metrics.ResumesRejected.Load(); got != 2 {
		t.Errorf("resumes_rejected = %d, want 2", got)
	}
	incidents := s.guard.incidents.Snapshot()
	rejected := 0
	for _, in := range incidents {
		if in.Kind == "checkpoint_rejected" {
			rejected++
		}
	}
	if rejected != 2 {
		t.Errorf("checkpoint_rejected incidents = %d (%+v), want 2", rejected, incidents)
	}
}

// TestSnapshotCorruptFaultPoint drives the checkpoint.corrupt chaos point
// end to end: the fault flips a bit in the blob /snapshot returns, and
// /resume must detect it.
func TestSnapshotCorruptFaultPoint(t *testing.T) {
	stallSteps(t, fault.NewRegistry(1).Enable(fault.CheckpointCorrupt, 1))
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	stream, trace := startStream(t, ts, RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy, Collector: "basic"},
		Capacity:       intp(32),
		ProgressSteps:  100,
	})
	defer stream.Body.Close()
	sc := sseScanner(stream.Body)
	if ev, ok := nextSSE(sc); !ok || ev.name != "progress" {
		t.Fatalf("first stream event %q (ok=%v), want progress", ev.name, ok)
	}
	sresp, sbody := postJSON(t, ts.URL+"/snapshot", SnapshotRequest{TraceID: trace})
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d (%s)", sresp.StatusCode, sbody)
	}
	snap := decode[SnapshotResponse](t, sbody)
	io.Copy(io.Discard, stream.Body)

	rresp, rbody := postJSON(t, ts.URL+"/resume", ResumeRequest{Blob: snap.Blob})
	if rresp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupted snapshot resumed: %d (%s), want 422", rresp.StatusCode, rbody)
	}
	if got := s.metrics.ResumesRejected.Load(); got != 1 {
		t.Errorf("resumes_rejected = %d, want 1", got)
	}
}

// TestResumeDuplicateRejected pins the idempotency guard the gate's
// migration retries rely on: the same snapshot resumes once; a replay is
// 409.
func TestResumeDuplicateRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	blob := makeCheckpointBlob(t, "dup-run")

	resp, body := postJSON(t, ts.URL+"/resume", ResumeRequest{Blob: blob})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first resume: %d (%s)", resp.StatusCode, body)
	}
	rr := decode[RunResponse](t, body)
	if !rr.Resumed || rr.TraceID != "dup-run" {
		t.Errorf("first resume %+v, want resumed under trace dup-run", rr)
	}

	resp, body = postJSON(t, ts.URL+"/resume", ResumeRequest{Blob: blob})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("replayed resume: %d (%s), want 409", resp.StatusCode, body)
	}
	if got := s.metrics.ResumesDuplicate.Load(); got != 1 {
		t.Errorf("resumes_duplicate = %d, want 1", got)
	}
}

// TestAdminBreakers opens a breaker through a forced divergence, then
// exercises the operator surface: list, delete a bogus hash, delete the
// real one.
func TestAdminBreakers(t *testing.T) {
	fault.Install(fault.NewRegistry(1).Enable(fault.HeapCorrupt, 1))
	defer fault.Install(nil)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CoCheckSample: 1})

	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy, Collector: "forwarding"},
		Capacity:       intp(40),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diverging run: %d (%s)", resp.StatusCode, body)
	}
	rr := decode[RunResponse](t, body)
	if !rr.Diverged {
		t.Fatal("heap corruption did not force a divergence")
	}

	resp, body = doJSON(t, http.MethodGet, ts.URL+"/admin/breakers", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list breakers: %d (%s)", resp.StatusCode, body)
	}
	br := decode[BreakersResponse](t, body)
	if len(br.Breakers) != 1 || br.Breakers[0].SourceHash != rr.SourceHash {
		t.Fatalf("breakers %+v, want exactly the diverged program %s", br.Breakers, rr.SourceHash)
	}

	resp, body = doJSON(t, http.MethodDelete, ts.URL+"/admin/breakers?hash=feedface", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown hash: %d (%s), want 404", resp.StatusCode, body)
	}

	resp, body = doJSON(t, http.MethodDelete, ts.URL+"/admin/breakers?hash="+rr.SourceHash, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete breaker: %d (%s)", resp.StatusCode, body)
	}
	cleared := decode[BreakersResponse](t, body)
	if cleared.Cleared != 1 || len(cleared.Breakers) != 0 {
		t.Errorf("delete response %+v, want cleared=1 and no open breakers", cleared)
	}
	if got := s.metrics.BreakersOpen.Load(); got != 0 {
		t.Errorf("breakers gauge = %d, want 0 after the clear", got)
	}
	found := false
	for _, in := range s.guard.incidents.Snapshot() {
		if in.Kind == "breaker_cleared" {
			found = true
		}
	}
	if !found {
		t.Error("clearing a breaker recorded no breaker_cleared incident")
	}

	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/admin/breakers", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /admin/breakers: %d, want 405", resp.StatusCode)
	}
}

// TestAdminCoCheck retunes the live co-check sample rate over HTTP.
func TestAdminCoCheck(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, body := doJSON(t, http.MethodGet, ts.URL+"/admin/cocheck", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get cocheck: %d (%s)", resp.StatusCode, body)
	}
	if cc := decode[CoCheckResponse](t, body); cc.Sample != 0 {
		t.Errorf("initial sample %v, want 0", cc.Sample)
	}

	resp, body = doJSON(t, http.MethodPut, ts.URL+"/admin/cocheck", CoCheckRequest{Sample: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put cocheck: %d (%s)", resp.StatusCode, body)
	}
	if cc := decode[CoCheckResponse](t, body); cc.Sample != 0.5 {
		t.Errorf("sample after PUT 0.5 = %v", cc.Sample)
	}
	if !s.guard.shouldCoCheck() {
		t.Error("first run after retune not sampled at rate 0.5")
	}

	resp, body = doJSON(t, http.MethodPut, ts.URL+"/admin/cocheck", CoCheckRequest{Sample: 1.5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range sample: %d (%s), want 400", resp.StatusCode, body)
	}
	if cc := decode[CoCheckResponse](t, mustBody(t, ts.URL+"/admin/cocheck")); cc.Sample != 0.5 {
		t.Errorf("rejected PUT changed the rate to %v", cc.Sample)
	}

	resp, body = doJSON(t, http.MethodPut, ts.URL+"/admin/cocheck", CoCheckRequest{Sample: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disable cocheck: %d (%s)", resp.StatusCode, body)
	}
	if s.guard.shouldCoCheck() {
		t.Error("sampling still on after PUT 0")
	}
}

func mustBody(t *testing.T, url string) []byte {
	t.Helper()
	_, body := getJSON(t, url)
	return body
}

// TestIncidentLogSurvivesRestart is the persistence replay test: incidents
// recorded under -incident-dir are JSONL on disk and reload on boot.
func TestIncidentLogSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 4, IncidentDir: dir}

	boot := func() (*Server, *httptest.Server) {
		s := New(cfg)
		return s, httptest.NewServer(s)
	}
	shutdown := func(s *Server, ts *httptest.Server) {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}

	s1, ts1 := boot()
	resp, body := postJSON(t, ts1.URL+"/resume", ResumeRequest{Blob: []byte("junk")})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("junk blob: %d (%s), want 422", resp.StatusCode, body)
	}
	if got := s1.guard.incidents.Total(); got != 1 {
		t.Fatalf("first process logged %d incidents, want 1", got)
	}
	shutdown(s1, ts1)

	// Second process on the same directory replays the incident, and its
	// own incidents append rather than truncate.
	s2, ts2 := boot()
	replayed := s2.guard.incidents.Snapshot()
	if len(replayed) != 1 || replayed[0].Kind != "checkpoint_rejected" {
		t.Fatalf("replayed incidents %+v, want the checkpoint_rejected from the first process", replayed)
	}
	s2.guard.incidents.Record(obs.Incident{Kind: "second_boot", Detail: "appended after replay"})
	shutdown(s2, ts2)

	s3, ts3 := boot()
	defer shutdown(s3, ts3)
	kinds := []string{}
	for _, in := range s3.guard.incidents.Snapshot() {
		kinds = append(kinds, in.Kind)
	}
	if fmt.Sprint(kinds) != "[checkpoint_rejected second_boot]" {
		t.Fatalf("third boot replayed %v, want both incidents in order", kinds)
	}
}
