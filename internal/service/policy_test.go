package service

import (
	"net/http"
	"strings"
	"testing"

	"psgc/internal/policy"
	"psgc/internal/workload"
)

// runReq builds a small-capacity run request so every test run exercises
// the collectors and produces a meaningful profile.
func runReq(src, collector, pol string) RunRequest {
	cap := 24
	return RunRequest{
		CompileRequest: CompileRequest{Source: src, Collector: collector},
		Capacity:       &cap,
		Policy:         pol,
	}
}

// TestRunPolicyAdaptive drives the whole loop over HTTP: a cold adaptive
// run falls back to the request's collector, static runs accumulate a
// profile, and a warm adaptive run decides from it — with the decision
// reported in the response and the value unchanged throughout.
func TestRunPolicyAdaptive(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	want := 30 * 31 / 2

	// Cold: no profile for the hash yet, fallback to the request.
	resp, body := postJSON(t, ts.URL+"/run", runReq(allocHeavy, "basic", "adaptive"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold adaptive run: status %d: %s", resp.StatusCode, body)
	}
	cold := decode[RunResponse](t, body)
	if cold.Value != want {
		t.Fatalf("cold adaptive value %d, want %d", cold.Value, want)
	}
	if cold.Policy != policy.Adaptive || cold.Decision == nil {
		t.Fatalf("cold adaptive response missing decision: %+v", cold)
	}
	if cold.Decision.Runs != 0 || cold.Collector != "basic" {
		t.Fatalf("cold decision should fall back to basic with 0 runs: %+v", cold.Decision)
	}

	// Warm the profile (the cold adaptive run above also fed it).
	for i := 0; i < 2; i++ {
		resp, body = postJSON(t, ts.URL+"/run", runReq(allocHeavy, "basic", "static"))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("static warm-up run: status %d: %s", resp.StatusCode, body)
		}
		warm := decode[RunResponse](t, body)
		if warm.Policy != policy.Static || warm.Decision != nil {
			t.Fatalf("static run reported %q with decision %+v", warm.Policy, warm.Decision)
		}
	}

	resp, body = postJSON(t, ts.URL+"/run", runReq(allocHeavy, "basic", "adaptive"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm adaptive run: status %d: %s", resp.StatusCode, body)
	}
	got := decode[RunResponse](t, body)
	if got.Value != want {
		t.Fatalf("warm adaptive value %d, want %d", got.Value, want)
	}
	d := got.Decision
	if d == nil || d.Runs == 0 {
		t.Fatalf("warm adaptive decision not profile-backed: %+v", d)
	}
	if d.Collector != got.Collector {
		t.Fatalf("response collector %q != decided %q", got.Collector, d.Collector)
	}
	if d.Reason == "" || strings.Contains(d.Reason, "cold") {
		t.Fatalf("warm decision reason %q", d.Reason)
	}
	if s.Metrics().PolicyDecisions.Load() != 2 || s.Metrics().PolicyCold.Load() != 1 {
		t.Fatalf("decision counters: decisions %d cold %d, want 2 and 1",
			s.Metrics().PolicyDecisions.Load(), s.Metrics().PolicyCold.Load())
	}
	if n := s.Metrics().ProfiledRuns.Load(); n != 4 {
		t.Fatalf("profiled runs %d, want 4 (every completed run feeds the store)", n)
	}
}

// TestRunPolicyValidation pins the knob's precedence and error paths: the
// query parameter beats the body, and unknown names are 400s.
func TestRunPolicyValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, body := postJSON(t, ts.URL+"/run?policy=adaptive", runReq(allocHeavy, "basic", "static"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := decode[RunResponse](t, body); got.Policy != policy.Adaptive {
		t.Fatalf("?policy=adaptive did not override body static: %q", got.Policy)
	}

	resp, body = postJSON(t, ts.URL+"/run?policy=bogus", runReq(allocHeavy, "basic", ""))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus policy: status %d: %s", resp.StatusCode, body)
	}
	if e := decode[errorBody](t, body); !strings.Contains(e.Error, "bogus") {
		t.Fatalf("error %q does not name the bad policy", e.Error)
	}
}

// TestRunPolicyAdaptiveCoChecked proves policy is correctness-neutral on
// the strongest oracle we have: an adaptive run co-stepped against the
// substitution machine returns the oracle-verified value with no
// divergence.
func TestRunPolicyAdaptiveCoChecked(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	// Build profiles for both workloads first.
	shared := workload.SharedDAGSrc(6)
	for _, src := range []string{allocHeavy, shared} {
		for _, col := range []string{"basic", "forwarding"} {
			resp, body := postJSON(t, ts.URL+"/run", runReq(src, col, "static"))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("warm-up: status %d: %s", resp.StatusCode, body)
			}
		}
	}
	for _, tc := range []struct {
		src  string
		want int
	}{{allocHeavy, 30 * 31 / 2}, {shared, 4}} {
		resp, body := postJSON(t, ts.URL+"/run?cocheck=1", runReq(tc.src, "basic", "adaptive"))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("co-checked adaptive run: status %d: %s", resp.StatusCode, body)
		}
		got := decode[RunResponse](t, body)
		if got.Value != tc.want {
			t.Fatalf("co-checked adaptive value %d, want %d", got.Value, tc.want)
		}
		if !got.CoChecked || got.Diverged {
			t.Fatalf("cochecked=%v diverged=%v, want co-checked and clean", got.CoChecked, got.Diverged)
		}
	}
	if n := s.Metrics().CoCheckDivergences.Load(); n != 0 {
		t.Fatalf("%d divergences under adaptive policy, want 0", n)
	}
}

// TestHealthzPolicyExposure pins the operator view: per-hash profile
// summaries with the last decision, the store's segment sizes, and the
// engine counters all surface in /healthz.
func TestHealthzPolicyExposure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, DefaultPolicy: "adaptive"})
	resp, body := postJSON(t, ts.URL+"/run", runReq(allocHeavy, "basic", ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	if got := decode[RunResponse](t, body); got.Policy != policy.Adaptive {
		t.Fatalf("DefaultPolicy adaptive not applied: %q", got.Policy)
	}

	hresp, hbody := getJSON(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", hresp.StatusCode)
	}
	h := decode[map[string]any](t, hbody)
	if h["default_policy"] != "adaptive" {
		t.Fatalf("healthz default_policy = %v", h["default_policy"])
	}
	pol, ok := h["policy"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no policy section: %v", h)
	}
	if pol["profiles"].(float64) != 1 || pol["profiled_runs"].(float64) != 1 {
		t.Fatalf("policy section %v, want 1 profile from 1 run", pol)
	}
	programs, ok := pol["programs"].([]any)
	if !ok || len(programs) != 1 {
		t.Fatalf("policy programs %v, want one entry", pol["programs"])
	}
	prog := programs[0].(map[string]any)
	if prog["hash"] != SourceHash(allocHeavy) {
		t.Fatalf("program hash %v, want %s", prog["hash"], SourceHash(allocHeavy))
	}
	if prog["decision"] == nil {
		t.Fatalf("program entry carries no decision: %v", prog)
	}
	_ = s
}

// TestMetricsPolicyFamilies pins the Prometheus and JSON exposure of the
// policy counters.
func TestMetricsPolicyFamilies(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	resp, body := postJSON(t, ts.URL+"/run", runReq(allocHeavy, "basic", "adaptive"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}

	mresp, mbody := getJSON(t, ts.URL+"/metrics?format=prometheus")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", mresp.StatusCode)
	}
	text := string(mbody)
	for _, family := range []string{
		"psgc_profiled_runs_total 1",
		`psgc_policy_decisions_total{outcome="decided"} 1`,
		`psgc_policy_decisions_total{outcome="cold"} 1`,
		`psgc_policy_chosen_total{collector="basic"} 1`,
	} {
		if !strings.Contains(text, family) {
			t.Errorf("prometheus output missing %q", family)
		}
	}

	jresp, jbody := getJSON(t, ts.URL+"/metrics")
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics json: status %d", jresp.StatusCode)
	}
	j := decode[map[string]any](t, jbody)
	pol, ok := j["policy"].(map[string]any)
	if !ok || pol["decisions"].(float64) != 1 {
		t.Fatalf("json metrics policy section %v", j["policy"])
	}
}

// TestBatchPolicy runs a mixed-policy batch: static and adaptive items
// resolve independently and an invalid policy fails only its item.
func TestBatchPolicy(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	req := BatchRequest{Items: []RunRequest{
		runReq(allocHeavy, "basic", "static"),
		runReq(allocHeavy, "basic", "adaptive"),
		runReq(allocHeavy, "basic", "bogus"),
	}}
	resp, body := postJSON(t, ts.URL+"/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	out := decode[BatchResponse](t, body)
	if len(out.Items) != 3 {
		t.Fatalf("batch items %d, want 3", len(out.Items))
	}
	if out.Items[0].Run == nil || out.Items[0].Run.Policy != policy.Static {
		t.Fatalf("item 0: %+v", out.Items[0])
	}
	if out.Items[1].Run == nil || out.Items[1].Run.Decision == nil {
		t.Fatalf("item 1 (adaptive): %+v", out.Items[1])
	}
	if out.Items[2].Error == nil || out.Items[2].Status != http.StatusBadRequest {
		t.Fatalf("item 2 (bogus policy): %+v", out.Items[2])
	}
	if out.Completed != 2 || out.Failed != 1 {
		t.Fatalf("completed %d failed %d, want 2 and 1", out.Completed, out.Failed)
	}
}
