package service

// Operator endpoints. Breakers open automatically (a co-checked divergence
// pins the program to the oracle) but only an operator closes them; the
// co-check sample rate is retunable on a live node so an incident can be
// investigated at rate 1 without a restart.
//
//	GET    /admin/breakers   list open per-program circuit breakers
//	DELETE /admin/breakers   close one (?hash=...) or all breakers
//	GET    /admin/cocheck    report the live co-check sample rate
//	PUT    /admin/cocheck    set the sample rate {"sample": 0..1}

import (
	"fmt"
	"net/http"
)

// BreakersResponse is the GET/DELETE /admin/breakers body.
type BreakersResponse struct {
	Breakers []breakerState `json:"breakers"`
	// Cleared reports how many breakers a DELETE closed.
	Cleared int    `json:"cleared,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
}

func (s *Server) handleAdminBreakers(w http.ResponseWriter, r *http.Request) {
	traceID := s.traceRequest(w, r)
	switch r.Method {
	case http.MethodGet:
		s.writeResponse(w, &response{status: http.StatusOK,
			body: BreakersResponse{Breakers: s.guard.openBreakers(), TraceID: traceID}})
	case http.MethodDelete:
		hash := r.URL.Query().Get("hash")
		n := s.guard.clearBreakers(hash, traceID)
		if n == 0 && hash != "" {
			s.writeResponse(w, &response{status: http.StatusNotFound,
				body: errorBody{Error: fmt.Sprintf("no open breaker for hash %q", hash), TraceID: traceID}})
			return
		}
		s.metrics.BreakersOpen.Add(int64(-n))
		s.writeResponse(w, &response{status: http.StatusOK,
			body: BreakersResponse{Breakers: s.guard.openBreakers(), Cleared: n, TraceID: traceID}})
	default:
		w.Header().Set("Allow", "GET, DELETE")
		s.writeResponse(w, &response{status: http.StatusMethodNotAllowed,
			body: errorBody{Error: "use GET or DELETE", TraceID: traceID}})
	}
}

// CoCheckRequest is the PUT /admin/cocheck body; CoCheckResponse reports
// the rate now in force (rounded to the deterministic 1-in-N sampling the
// guardrails actually apply).
type CoCheckRequest struct {
	Sample float64 `json:"sample"`
}

type CoCheckResponse struct {
	Sample  float64 `json:"sample"`
	TraceID string  `json:"trace_id,omitempty"`
}

func (s *Server) handleAdminCoCheck(w http.ResponseWriter, r *http.Request) {
	traceID := s.traceRequest(w, r)
	switch r.Method {
	case http.MethodGet:
		s.writeResponse(w, &response{status: http.StatusOK,
			body: CoCheckResponse{Sample: s.guard.sampleRate(), TraceID: traceID}})
	case http.MethodPut:
		var req CoCheckRequest
		if !s.decode(w, r, &req, traceID) {
			return
		}
		if req.Sample < 0 || req.Sample > 1 {
			s.writeResponse(w, &response{status: http.StatusBadRequest,
				body: errorBody{Error: fmt.Sprintf("sample %v out of range [0,1]", req.Sample), TraceID: traceID}})
			return
		}
		s.guard.setSample(req.Sample)
		s.writeResponse(w, &response{status: http.StatusOK,
			body: CoCheckResponse{Sample: s.guard.sampleRate(), TraceID: traceID}})
	default:
		w.Header().Set("Allow", "GET, PUT")
		s.writeResponse(w, &response{status: http.StatusMethodNotAllowed,
			body: errorBody{Error: "use GET or PUT", TraceID: traceID}})
	}
}
