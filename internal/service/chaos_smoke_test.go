package service

// The default-on slice of the chaos suite: every fault point gets a quick
// workout inside the ordinary `go test ./...` run. The heavier matrix —
// concurrency hammering, timeline identities under sustained faults, storm
// coherence — lives in chaos_test.go behind the `chaos` build tag. All
// names match -run Chaos so CI selects the full suite with one pattern.

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"psgc/internal/fault"
	"psgc/internal/workload"
)

// chaosWant is the value of workload.AllocHeavySrc(n): build n sums n..1.
func chaosWant(n int) int { return n * (n + 1) / 2 }

// wellFormedRun decodes a response that must be either a successful run or
// a structured injected-fault error, and fails the test on anything else.
// It returns the RunResponse for 200s and a zero value otherwise.
func wellFormedRun(t *testing.T, status int, body []byte) (RunResponse, bool) {
	t.Helper()
	switch status {
	case http.StatusOK:
		return decode[RunResponse](t, body), true
	case http.StatusInternalServerError:
		eb := decode[errorBody](t, body)
		if !strings.Contains(eb.Error, "injected fault") {
			t.Errorf("500 without an injected-fault error: %s", body)
		}
		if eb.Panic {
			t.Errorf("injected fault misreported as a panic: %s", body)
		}
		return RunResponse{}, false
	default:
		t.Errorf("status %d is not in the fault's well-formed set: %s", status, body)
		return RunResponse{}, false
	}
}

// TestChaosSmokeCompileFault injects parse-phase failures and asserts the
// service degrades to clean 500s, never caching a poisoned entry.
func TestChaosSmokeCompileFault(t *testing.T) {
	fault.Install(fault.NewRegistry(7).Enable(fault.CompileParse, 0.5))
	t.Cleanup(func() { fault.Install(nil) })
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	oks, fails := 0, 0
	for i := 0; i < 8; i++ {
		n := 8 + i // distinct sources so every request exercises the compiler
		status, body := postJSONNoFatal(ts.URL+"/run", RunRequest{
			CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(n)},
			Capacity:       intp(40),
		})
		if rr, ok := wellFormedRun(t, status, body); ok {
			oks++
			if rr.Value != chaosWant(n) {
				t.Errorf("build %d = %d, want %d", n, rr.Value, chaosWant(n))
			}
		} else {
			fails++
		}
	}
	if oks == 0 || fails == 0 {
		t.Errorf("8 draws at prob 0.5 produced %d successes / %d injected failures; fault point seems miswired", oks, fails)
	}

	// With the registry gone the same server compiles everything again.
	fault.Install(nil)
	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(9)},
		Capacity:       intp(40),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos run: status %d: %s", resp.StatusCode, body)
	}
}

// TestChaosSmokeMachineStepFault injects env-machine step errors mid-run.
func TestChaosSmokeMachineStepFault(t *testing.T) {
	fault.Install(fault.NewRegistry(3).Enable(fault.MachineStep, 0.0005))
	t.Cleanup(func() { fault.Install(nil) })
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	oks, fails := 0, 0
	for i := 0; i < 6; i++ {
		status, body := postJSONNoFatal(ts.URL+"/run", RunRequest{
			CompileRequest: CompileRequest{Source: allocHeavy, Collector: "forwarding"},
			Capacity:       intp(40),
		})
		if rr, ok := wellFormedRun(t, status, body); ok {
			oks++
			if rr.Value != chaosWant(30) {
				t.Errorf("value %d, want %d", rr.Value, chaosWant(30))
			}
		} else {
			fails++
		}
	}
	if oks+fails != 6 {
		t.Fatalf("lost responses: %d ok + %d failed of 6", oks, fails)
	}
}

// TestChaosSmokeCorruptionCoChecked corrupts the env machine's heap under
// forced co-checking: the oracle must win every time.
func TestChaosSmokeCorruptionCoChecked(t *testing.T) {
	fault.Install(fault.NewRegistry(11).Enable(fault.HeapCorrupt, 0.5))
	t.Cleanup(func() { fault.Install(nil) })
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	for i := 0; i < 4; i++ {
		n := 20 + i // distinct programs: a tripped breaker must not mask later draws
		status, body := postJSONNoFatal(ts.URL+"/run", RunRequest{
			CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(n)},
			Capacity:       intp(40),
			CoCheck:        true,
			// Alternate substrates: corruption of arena slabs must be caught
			// by the map-backend oracle exactly like map corruption is.
			Backend: []string{"map", "arena"}[i%2],
		})
		rr, ok := wellFormedRun(t, status, body)
		if !ok {
			t.Fatalf("co-checked run failed outright: %d %s", status, body)
		}
		if rr.Value != chaosWant(n) {
			t.Errorf("build %d = %d under corruption, want the oracle's %d", n, rr.Value, chaosWant(n))
		}
	}
	if s.metrics.CoCheckDivergences.Load() == 0 {
		t.Error("four corrupted co-checked runs produced no divergence; corruption point seems miswired")
	}
}

// TestChaosSmokeWorkerPanic asserts a panicking worker is contained: a
// structured 500, a ticked counter, and a pool that keeps serving.
func TestChaosSmokeWorkerPanic(t *testing.T) {
	fault.Install(fault.NewRegistry(1).Enable(fault.WorkerPanic, 1))
	t.Cleanup(func() { fault.Install(nil) })
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy},
		Capacity:       intp(40),
	})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%s), want 500", resp.StatusCode, body)
	}
	if eb := decode[errorBody](t, body); !eb.Panic {
		t.Errorf("panic 500 not marked panic: %s", body)
	}
	if got := s.metrics.Panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}

	fault.Install(nil)
	resp, body = postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy},
		Capacity:       intp(40),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pool did not survive the panic: status %d: %s", resp.StatusCode, body)
	}
}

// TestChaosSmokeLatencyAndStall injects worker-level and per-step latency;
// with no watchdog configured both only slow the run down.
func TestChaosSmokeLatencyAndStall(t *testing.T) {
	fault.Install(fault.NewRegistry(5).
		EnableDelay(fault.WorkerLatency, 1, time.Millisecond).
		EnableDelay(fault.MachineStall, 0.002, time.Millisecond))
	t.Cleanup(func() { fault.Install(nil) })
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy, Collector: "generational"},
		Capacity:       intp(40),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want a slow 200", resp.StatusCode, body)
	}
	if rr := decode[RunResponse](t, body); rr.Value != chaosWant(30) {
		t.Errorf("value %d, want %d", rr.Value, chaosWant(30))
	}
}

// TestChaosSmokeEvictionStorm fires the cache-eviction storm on every
// compile and asserts the cache stays coherent and the service correct.
func TestChaosSmokeEvictionStorm(t *testing.T) {
	fault.Install(fault.NewRegistry(2).Enable(fault.CacheEvict, 1))
	t.Cleanup(func() { fault.Install(nil) })
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, CacheSize: 4})

	for i := 0; i < 6; i++ {
		n := 10 + i
		status, body := postJSONNoFatal(ts.URL+"/run", RunRequest{
			CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(n)},
			Capacity:       intp(40),
		})
		if status != http.StatusOK {
			t.Fatalf("run %d under storms: status %d: %s", i, status, body)
		}
		if rr := decode[RunResponse](t, body); rr.Value != chaosWant(n) {
			t.Errorf("build %d = %d under storms, want %d", n, rr.Value, chaosWant(n))
		}
	}
	if err := s.cache.coherent(); err != nil {
		t.Errorf("cache incoherent after eviction storms: %v", err)
	}
}
