package service

import (
	"net/http"
	"testing"

	"psgc/internal/workload"
)

// TestBackendSelection covers the request-level substrate switch: the
// configured default applies when a request names none, the body field
// selects per request, and the ?backend= query parameter wins over both.
func TestBackendSelection(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	src := workload.AllocHeavySrc(10)

	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: src},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	rr := decode[RunResponse](t, body)
	if rr.Backend != "map" {
		t.Errorf("backend %q, want the map default", rr.Backend)
	}
	want := rr.Value

	resp, body = postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: src},
		Backend:        "arena",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arena run: status %d: %s", resp.StatusCode, body)
	}
	rr = decode[RunResponse](t, body)
	if rr.Backend != "arena" {
		t.Errorf("backend %q, want the requested arena", rr.Backend)
	}
	if rr.Value != want {
		t.Errorf("arena value %d, map value %d — substrates must agree", rr.Value, want)
	}

	resp, body = postJSON(t, ts.URL+"/run?backend=map", RunRequest{
		CompileRequest: CompileRequest{Source: src},
		Backend:        "arena",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("override run: status %d: %s", resp.StatusCode, body)
	}
	if rr = decode[RunResponse](t, body); rr.Backend != "map" {
		t.Errorf("backend %q, want the map query override", rr.Backend)
	}

	resp, body = postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: src},
		Backend:        "quantum",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus backend: status %d: %s", resp.StatusCode, body)
	}
}

// TestDefaultBackendAppliesToRuns checks a node configured to default to
// the arena serves it, reports it in /healthz, and co-checked arena runs
// still answer correctly (the oracle stays on the map substrate).
func TestDefaultBackendAppliesToRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, DefaultBackend: "arena"})
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	h := decode[map[string]any](t, body)
	if h["default_backend"] != "arena" {
		t.Errorf("default_backend = %v, want arena", h["default_backend"])
	}
	bs, ok := h["backends"].([]any)
	if !ok || len(bs) != 2 || bs[0] != "map" || bs[1] != "arena" {
		t.Errorf("backends = %v, want [map arena]", h["backends"])
	}

	resp, body = postJSON(t, ts.URL+"/run?cocheck=1", RunRequest{
		CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(10)},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	rr := decode[RunResponse](t, body)
	if rr.Backend != "arena" || !rr.CoChecked || rr.Diverged {
		t.Errorf("backend %q cochecked %v diverged %v, want arena/true/false",
			rr.Backend, rr.CoChecked, rr.Diverged)
	}
	if rr.Value != 55 {
		t.Errorf("value %d, want 55", rr.Value)
	}
}
