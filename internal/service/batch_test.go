package service

import (
	"net/http"
	"testing"
	"time"

	"psgc/internal/fault"
	"psgc/internal/workload"
)

// TestBatchRunsInOrder drives a mixed batch and checks every item lands in
// input order with the result /run would have produced.
func TestBatchRunsInOrder(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16})

	items := []RunRequest{
		{CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(10), Collector: "basic"}},
		{CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(20), Collector: "forwarding"}},
		{CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(30), Collector: "generational"}},
		{CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(15)}, Engine: "subst"},
	}
	resp, body := postJSON(t, ts.URL+"/batch", BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	br := decode[BatchResponse](t, body)
	if br.Completed != len(items) || br.Failed != 0 || len(br.Items) != len(items) {
		t.Fatalf("batch outcome: completed=%d failed=%d items=%d, want %d/0/%d",
			br.Completed, br.Failed, len(br.Items), len(items), len(items))
	}
	wants := []int{chaosWant(10), chaosWant(20), chaosWant(30), chaosWant(15)}
	for i, it := range br.Items {
		if it.Status != http.StatusOK || it.Run == nil {
			t.Fatalf("item %d: status %d run=%v error=%+v", i, it.Status, it.Run, it.Error)
		}
		if it.Run.Value != wants[i] {
			t.Errorf("item %d: value %d, want %d", i, it.Run.Value, wants[i])
		}
	}
	if br.Items[3].Run.Engine != "subst" {
		t.Errorf("item 3 engine %q, want the requested subst", br.Items[3].Run.Engine)
	}
	if got := s.metrics.BatchRequests.Load(); got != 1 {
		t.Errorf("batch request counter = %d, want 1", got)
	}
	if got := s.metrics.BatchItems.Load(); got != int64(len(items)) {
		t.Errorf("batch item counter = %d, want %d", got, len(items))
	}
}

// TestBatchItemValidation checks per-item failures (bad collector, bad
// engine, stream inside a batch) are isolated 400s while valid siblings
// still run.
func TestBatchItemValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	items := []RunRequest{
		{CompileRequest: CompileRequest{Source: "1 + 2", Collector: "marksweep"}},
		{CompileRequest: CompileRequest{Source: "1 + 2"}},
		{CompileRequest: CompileRequest{Source: "1 + 2"}, Stream: true},
		{CompileRequest: CompileRequest{Source: "1 + 2"}, Engine: "quantum"},
	}
	resp, body := postJSON(t, ts.URL+"/batch", BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	br := decode[BatchResponse](t, body)
	if br.Completed != 1 || br.Failed != 3 {
		t.Fatalf("completed=%d failed=%d, want 1/3: %s", br.Completed, br.Failed, body)
	}
	for _, i := range []int{0, 2, 3} {
		if br.Items[i].Status != http.StatusBadRequest || br.Items[i].Error == nil {
			t.Errorf("item %d: status %d error=%+v, want isolated 400", i, br.Items[i].Status, br.Items[i].Error)
		}
	}
	if br.Items[1].Status != http.StatusOK || br.Items[1].Run == nil || br.Items[1].Run.Value != 3 {
		t.Errorf("valid sibling did not run: %+v", br.Items[1])
	}
}

// TestBatchLimits checks the envelope validation: no items and too many
// items are whole-batch 400s.
func TestBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, MaxBatchItems: 2})

	resp, body := postJSON(t, ts.URL+"/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d (%s), want 400", resp.StatusCode, body)
	}
	three := BatchRequest{Items: []RunRequest{
		{CompileRequest: CompileRequest{Source: "1"}},
		{CompileRequest: CompileRequest{Source: "2"}},
		{CompileRequest: CompileRequest{Source: "3"}},
	}}
	resp, body = postJSON(t, ts.URL+"/batch", three)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestChaosBatchWorkerPanicIsolation injects a worker panic that (under
// the seeded registry, single worker, one Bernoulli draw per job) fires on
// exactly the second item, and checks the blast radius is that item alone:
// its siblings complete, the batch is well-formed, the pool survives.
func TestChaosBatchWorkerPanicIsolation(t *testing.T) {
	// Seed 55 at p=0.5 draws [no, fire, no, no] — item 1 panics.
	fault.Install(fault.NewRegistry(55).Enable(fault.WorkerPanic, 0.5))
	defer fault.Install(nil)

	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	items := []RunRequest{
		{CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(10)}},
		{CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(20)}},
		{CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(30)}},
		{CompileRequest: CompileRequest{Source: workload.AllocHeavySrc(40)}},
	}
	resp, body := postJSON(t, ts.URL+"/batch", BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	br := decode[BatchResponse](t, body)
	if br.Completed != 3 || br.Failed != 1 {
		t.Fatalf("completed=%d failed=%d, want 3/1: %s", br.Completed, br.Failed, body)
	}
	bad := br.Items[1]
	if bad.Status != http.StatusInternalServerError || bad.Error == nil || !bad.Error.Panic {
		t.Fatalf("panicked item: %+v, want a structured panic 500", bad)
	}
	for _, i := range []int{0, 2, 3} {
		it := br.Items[i]
		if it.Status != http.StatusOK || it.Run == nil {
			t.Errorf("item %d caught the blast: status %d error=%+v", i, it.Status, it.Error)
		}
	}
	if got := s.metrics.Panics.Load(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}

	// The worker survived the panic: the same batch runs clean once the
	// fault is gone.
	fault.Install(nil)
	resp, body = postJSON(t, ts.URL+"/batch", BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos batch: status %d: %s", resp.StatusCode, body)
	}
	if br := decode[BatchResponse](t, body); br.Failed != 0 {
		t.Errorf("post-chaos batch still failing: %s", body)
	}
}

// TestChaosBatchWatchdogStallIsolation stalls every machine step by 1ms;
// only the long item accumulates past the watchdog budget, so it alone is
// cut to a 504 with well-formed partial statistics while its short
// siblings finish normally.
func TestChaosBatchWatchdogStallIsolation(t *testing.T) {
	fault.Install(fault.NewRegistry(1).EnableDelay(fault.MachineStall, 1, time.Millisecond))
	defer fault.Install(nil)

	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, WatchdogMs: 150})
	items := []RunRequest{
		{CompileRequest: CompileRequest{Source: "1 + 2"}},
		{CompileRequest: CompileRequest{Source: allocHeavy}, Capacity: intp(40), ProgressSteps: 20},
		{CompileRequest: CompileRequest{Source: "2 + 3"}},
	}
	resp, body := postJSON(t, ts.URL+"/batch", BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	br := decode[BatchResponse](t, body)
	if br.Completed != 2 || br.Failed != 1 {
		t.Fatalf("completed=%d failed=%d, want 2/1: %s", br.Completed, br.Failed, body)
	}
	stalled := br.Items[1]
	if stalled.Status != http.StatusGatewayTimeout || stalled.Error == nil {
		t.Fatalf("stalled item: %+v, want a watchdog 504", stalled)
	}
	if stalled.Error.Partial == nil || stalled.Error.Partial.Steps <= 0 {
		t.Errorf("watchdog 504 without well-formed partial stats: %+v", stalled.Error)
	}
	for _, i := range []int{0, 2} {
		if br.Items[i].Status != http.StatusOK || br.Items[i].Run == nil {
			t.Errorf("short item %d caught the stall: %+v", i, br.Items[i])
		}
	}
	if got := s.metrics.WatchdogStalls.Load(); got != 1 {
		t.Errorf("watchdog stall counter = %d, want 1", got)
	}
}
