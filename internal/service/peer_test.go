package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"psgc"
	"psgc/internal/workload"
)

// TestCacheExportEndpoint checks /cache/export serves a re-importable
// compiled entry for cached keys and clean errors otherwise.
func TestCacheExportEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	src := workload.AllocHeavySrc(12)
	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: src, Collector: "forwarding"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming run: status %d: %s", resp.StatusCode, body)
	}
	hash := decode[RunResponse](t, body).SourceHash

	resp, raw := getJSON(t, fmt.Sprintf("%s/cache/export?hash=%s&collector=forwarding", ts.URL, hash))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("export content type %q", ct)
	}
	imp, err := psgc.ImportCompiled(raw)
	if err != nil {
		t.Fatalf("exported entry does not import: %v", err)
	}
	res, err := imp.Run(psgc.RunOptions{Capacity: 24})
	if err != nil {
		t.Fatal(err)
	}
	if want := chaosWant(12); res.Value != want {
		t.Errorf("imported entry computed %d, want %d", res.Value, want)
	}

	// Same hash, different collector: a distinct cache key, so a miss.
	resp, raw = getJSON(t, fmt.Sprintf("%s/cache/export?hash=%s&collector=basic", ts.URL, hash))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("uncached collector: status %d (%s), want 404", resp.StatusCode, raw)
	}
	resp, raw = getJSON(t, ts.URL+"/cache/export?hash=zz&collector=basic")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed hash: status %d (%s), want 400", resp.StatusCode, raw)
	}
}

// TestPeerFetchOnMiss points a server at a stub peer endpoint and checks a
// cache miss is served from the peer instead of the compiler — and that a
// peer serving garbage is rejected and the compile happens anyway.
func TestPeerFetchOnMiss(t *testing.T) {
	src := workload.AllocHeavySrc(18)
	c, err := psgc.Compile(src, psgc.Basic)
	if err != nil {
		t.Fatal(err)
	}
	exported, err := c.Export()
	if err != nil {
		t.Fatal(err)
	}

	var peerCalls int
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		peerCalls++
		if got := r.URL.Query().Get("hash"); got != SourceHash(src) {
			t.Errorf("peer fetch hash %q, want %q", got, SourceHash(src))
		}
		w.Write(exported)
	}))
	defer peer.Close()

	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8,
		PeerFetchURL: peer.URL, PeerSelf: "http://self.test"})
	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: src, Collector: "basic"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	if rr := decode[RunResponse](t, body); rr.Value != chaosWant(18) {
		t.Errorf("peer-served run computed %d, want %d", rr.Value, chaosWant(18))
	}
	if peerCalls != 1 {
		t.Errorf("peer endpoint called %d times, want 1", peerCalls)
	}
	if got := s.metrics.PeerHits.Load(); got != 1 {
		t.Errorf("peer hit counter = %d, want 1", got)
	}
	// The imported entry is now cached: a rerun stays local.
	resp, body = postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: src, Collector: "basic"},
	})
	if resp.StatusCode != http.StatusOK || !decode[RunResponse](t, body).Cached {
		t.Errorf("rerun after peer import not served from local cache: %s", body)
	}
	if peerCalls != 1 {
		t.Errorf("rerun went back to the peer (%d calls)", peerCalls)
	}

	// A peer that serves garbage is an import error, not a failure: the
	// run falls back to compiling locally.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "these are not the bytes you are looking for")
	}))
	defer garbage.Close()
	s2, ts2 := newTestServer(t, Config{Workers: 1, QueueDepth: 8, PeerFetchURL: garbage.URL})
	resp, body = postJSON(t, ts2.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: src, Collector: "basic"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run with garbage peer: status %d: %s", resp.StatusCode, body)
	}
	if got := s2.metrics.PeerImportErrors.Load(); got != 1 {
		t.Errorf("peer import error counter = %d, want 1", got)
	}
}

// TestHealthzReportsEngineAndBuild pins the satellite fix: /healthz must
// say what engine runs by default and which build is serving.
func TestHealthzReportsEngineAndBuild(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, DefaultEngine: "subst"})
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	h := decode[map[string]any](t, body)
	if h["default_engine"] != "subst" {
		t.Errorf("default_engine = %v, want subst", h["default_engine"])
	}
	build, ok := h["build"].(map[string]any)
	if !ok || build["go"] == "" {
		t.Errorf("healthz build info missing: %v", h["build"])
	}
}

// TestDefaultEngineAppliesToRuns checks the configured default engine is
// used when a request names none, and the query override still wins.
func TestDefaultEngineAppliesToRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, DefaultEngine: "subst"})
	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: "1 + 2"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	if rr := decode[RunResponse](t, body); rr.Engine != "subst" {
		t.Errorf("engine %q, want the configured default subst", rr.Engine)
	}
	resp, body = postJSON(t, ts.URL+"/run?engine=env", RunRequest{
		CompileRequest: CompileRequest{Source: "1 + 2"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run with override: status %d: %s", resp.StatusCode, body)
	}
	if rr := decode[RunResponse](t, body); rr.Engine != "env" {
		t.Errorf("engine %q, want the env override", rr.Engine)
	}
}
