package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

const allocHeavy = `
fun build (n : int) : int =
  if0 n then 0
  else let p = (n, (n, n)) in fst p + build (n - 1)
do build 30
`

// postJSON drives one endpoint of a real httptest server.
func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func decode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("bad response %s: %v", data, err)
	}
	return v
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// TestCompileRunInterpretRoundTrip drives compile, a cache-hit recompile,
// run (agreeing with /interpret), and a cache-hit rerun through a real
// HTTP server.
func TestCompileRunInterpretRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	resp, body := postJSON(t, ts.URL+"/compile", CompileRequest{Source: allocHeavy, Collector: "forwarding"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d: %s", resp.StatusCode, body)
	}
	cr := decode[CompileResponse](t, body)
	if cr.Cached || cr.CodeBlocks == 0 || cr.SourceHash == "" {
		t.Fatalf("first compile response: %+v", cr)
	}

	resp, body = postJSON(t, ts.URL+"/compile", CompileRequest{Source: allocHeavy, Collector: "forwarding"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recompile: status %d: %s", resp.StatusCode, body)
	}
	if cr2 := decode[CompileResponse](t, body); !cr2.Cached {
		t.Fatalf("second compile of identical source not served from cache: %+v", cr2)
	}

	resp, body = postJSON(t, ts.URL+"/interpret", CompileRequest{Source: allocHeavy})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interpret: status %d: %s", resp.StatusCode, body)
	}
	want := decode[InterpretResponse](t, body).Value

	cap := 40
	resp, body = postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy, Collector: "forwarding"},
		Capacity:       &cap,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	rr := decode[RunResponse](t, body)
	if rr.Value != want {
		t.Fatalf("run value %d, interpreter says %d", rr.Value, want)
	}
	if !rr.Cached {
		t.Errorf("run after compile should hit the compiled-program cache")
	}
	if rr.Stats.Collections == 0 {
		t.Errorf("capacity 40 should force collections, got %+v", rr.Stats)
	}

	if hits := s.metrics.CacheHits.Load(); hits < 2 {
		t.Errorf("cache hits = %d, want >= 2", hits)
	}
}

// TestQueueFull429 fills the one-worker, one-slot queue with blocking jobs
// and asserts the next request is shed with 429 and Retry-After.
func TestQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	block := make(chan struct{})
	started := make(chan struct{})
	occupy := func(signal chan struct{}) *job {
		return &job{do: func() *response {
			if signal != nil {
				close(signal)
			}
			<-block
			return &response{status: http.StatusOK, body: struct{}{}}
		}, done: make(chan *response, 1)}
	}
	// One job running, one waiting: the queue is now full.
	s.metrics.EnterQueue()
	s.jobs <- occupy(started)
	<-started
	s.metrics.EnterQueue()
	s.jobs <- occupy(nil)

	resp, body := postJSON(t, ts.URL+"/interpret", CompileRequest{Source: "1 + 2"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}
	if got := s.metrics.Rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	close(block)

	// With the pool drained the same request succeeds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ = postJSON(t, ts.URL+"/interpret", CompileRequest{Source: "1 + 2"})
		if resp.StatusCode == http.StatusOK || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queue never drained: status %d", resp.StatusCode)
	}
}

// TestDeadlineExceededRun maps a tiny deadline onto a tiny fuel budget and
// asserts the 504 carries the partial execution's diagnostics.
func TestDeadlineExceededRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, StepsPerMilli: 10})

	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy},
		DeadlineMs:     1, // 10 steps of budget: nowhere near enough
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	eb := decode[errorBody](t, body)
	if eb.Partial == nil {
		t.Fatalf("deadline response has no partial diagnostics: %s", body)
	}
	if eb.Partial.Steps != 10 {
		t.Errorf("partial steps = %d, want the 10-step budget", eb.Partial.Steps)
	}
	if got := s.metrics.Deadlines.Load(); got != 1 {
		t.Errorf("deadline counter = %d, want 1", got)
	}
}

// TestWorkerPanicBecomes500 injects a panicking job and asserts the pool
// survives and the response is a structured 500.
func TestWorkerPanicBecomes500(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	j := &job{do: func() *response { panic("boom") }, done: make(chan *response, 1)}
	s.metrics.EnterQueue()
	s.jobs <- j
	resp := <-j.done
	if resp.status != http.StatusInternalServerError {
		t.Fatalf("panic job status %d, want 500", resp.status)
	}
	eb, ok := resp.body.(errorBody)
	if !ok || !eb.Panic {
		t.Fatalf("panic job body %+v, want structured panic error", resp.body)
	}
	if got := s.metrics.Panics.Load(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}

	// The worker survived the panic and still serves requests.
	httpResp, body := postJSON(t, ts.URL+"/interpret", CompileRequest{Source: "2 * 21"})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("pool dead after panic: status %d (%s)", httpResp.StatusCode, body)
	}
	if v := decode[InterpretResponse](t, body).Value; v != 42 {
		t.Fatalf("interpret after panic = %d, want 42", v)
	}
}

// TestBadRequests exercises the 400/405 paths.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, _ := postJSON(t, ts.URL+"/compile", CompileRequest{Source: "1", Collector: "marksweep"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown collector: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/compile", CompileRequest{Source: "fun f (x : int) : int = y\ndo 1"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ill-typed program: status %d, want 400", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status %d, want 405", getResp.StatusCode)
	}
}

// TestHealthzAndMetrics asserts both observability endpoints render and
// that the verified-collector typecheck counter is visible and stays at
// one over many compiles.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	for i := 0; i < 3; i++ {
		src := fmt.Sprintf("%d + %d", i, i)
		if resp, body := postJSON(t, ts.URL+"/run", RunRequest{
			CompileRequest: CompileRequest{Source: src, Collector: "basic"},
		}); resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Errorf("healthz status = %v", health["status"])
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	checks := metrics["collector_typechecks"].(map[string]any)
	if n := checks["basic"].(float64); n != 1 {
		t.Errorf("metrics report %v basic-collector typechecks, want exactly 1 per process", n)
	}
	reqs := metrics["requests"].(map[string]any)
	if n := reqs["run"].(float64); n != 3 {
		t.Errorf("metrics report %v run requests, want 3", n)
	}
	lat := metrics["run_latency_ms"].(map[string]any)
	if n := lat["count"].(float64); n != 3 {
		t.Errorf("run latency histogram count %v, want 3", n)
	}
}

// TestConcurrentRunsSharedCache hammers one source from many goroutines so
// the LRU hands the same *psgc.Compiled to every worker — run under -race
// this is the service-level concurrency guarantee.
func TestConcurrentRunsSharedCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	resp, body := postJSON(t, ts.URL+"/interpret", CompileRequest{Source: allocHeavy})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interpret: %d (%s)", resp.StatusCode, body)
	}
	want := decode[InterpretResponse](t, body).Value

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cap := 40
			resp, body := postJSON(t, ts.URL+"/run", RunRequest{
				CompileRequest: CompileRequest{Source: allocHeavy, Collector: "generational"},
				Capacity:       &cap,
			})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, body)
				return
			}
			if rr := decode[RunResponse](t, body); rr.Value != want {
				errs <- fmt.Sprintf("value %d, want %d", rr.Value, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestGracefulShutdown asserts Shutdown waits for in-flight work and that
// the drained server refuses new work with 503.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	j := &job{do: func() *response {
		close(started)
		<-block
		return &response{status: http.StatusOK, body: struct{}{}}
	}, done: make(chan *response, 1)}
	s.metrics.EnterQueue()
	s.jobs <- j
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned (%v) while a job was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(block)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if (<-j.done).status != http.StatusOK {
		t.Errorf("in-flight job did not complete")
	}

	resp, body := postJSON(t, ts.URL+"/interpret", CompileRequest{Source: "1"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown request: status %d (%s), want 503", resp.StatusCode, body)
	}
}

// TestFuelBudget pins the deadline→fuel arithmetic.
func TestFuelBudget(t *testing.T) {
	s := New(Config{DefaultFuel: 1000, StepsPerMilli: 10})
	defer s.Shutdown(context.Background())
	cases := []struct{ fuel, deadline, want int }{
		{0, 0, 1000},  // defaults
		{200, 0, 200}, // explicit fuel
		{0, 5, 50},    // deadline-mapped
		{200, 5, 50},  // smaller of the two
		{30, 5, 30},   // fuel tighter than deadline
		{0, 1000, 1000} /* deadline looser than default */}
	for _, c := range cases {
		if got := s.fuelBudget(c.fuel, c.deadline); got != c.want {
			t.Errorf("fuelBudget(%d, %d) = %d, want %d", c.fuel, c.deadline, got, c.want)
		}
	}
}
