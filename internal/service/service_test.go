package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"psgc"
	"psgc/internal/obs"
	"psgc/internal/workload"
)

var allocHeavy = workload.AllocHeavySrc(30)

// postJSON drives one endpoint of a real httptest server.
func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func decode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("bad response %s: %v", data, err)
	}
	return v
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// TestCompileRunInterpretRoundTrip drives compile, a cache-hit recompile,
// run (agreeing with /interpret), and a cache-hit rerun through a real
// HTTP server.
func TestCompileRunInterpretRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	resp, body := postJSON(t, ts.URL+"/compile", CompileRequest{Source: allocHeavy, Collector: "forwarding"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d: %s", resp.StatusCode, body)
	}
	cr := decode[CompileResponse](t, body)
	if cr.Cached || cr.CodeBlocks == 0 || cr.SourceHash == "" {
		t.Fatalf("first compile response: %+v", cr)
	}

	resp, body = postJSON(t, ts.URL+"/compile", CompileRequest{Source: allocHeavy, Collector: "forwarding"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recompile: status %d: %s", resp.StatusCode, body)
	}
	if cr2 := decode[CompileResponse](t, body); !cr2.Cached {
		t.Fatalf("second compile of identical source not served from cache: %+v", cr2)
	}

	resp, body = postJSON(t, ts.URL+"/interpret", CompileRequest{Source: allocHeavy})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interpret: status %d: %s", resp.StatusCode, body)
	}
	want := decode[InterpretResponse](t, body).Value

	cap := 40
	resp, body = postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy, Collector: "forwarding"},
		Capacity:       &cap,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	rr := decode[RunResponse](t, body)
	if rr.Value != want {
		t.Fatalf("run value %d, interpreter says %d", rr.Value, want)
	}
	if !rr.Cached {
		t.Errorf("run after compile should hit the compiled-program cache")
	}
	if rr.Stats.Collections == 0 {
		t.Errorf("capacity 40 should force collections, got %+v", rr.Stats)
	}

	if hits := s.metrics.CacheHits.Load(); hits < 2 {
		t.Errorf("cache hits = %d, want >= 2", hits)
	}
}

// TestQueueFull429 fills the one-worker, one-slot queue with blocking jobs
// and asserts the next request is shed with 429 and Retry-After.
func TestQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	block := make(chan struct{})
	started := make(chan struct{})
	occupy := func(signal chan struct{}) *job {
		return &job{do: func() *response {
			if signal != nil {
				close(signal)
			}
			<-block
			return &response{status: http.StatusOK, body: struct{}{}}
		}, done: make(chan *response, 1)}
	}
	// One job running, one waiting: the queue is now full.
	s.metrics.EnterQueue()
	s.jobs <- occupy(started)
	<-started
	s.metrics.EnterQueue()
	s.jobs <- occupy(nil)

	resp, body := postJSON(t, ts.URL+"/interpret", CompileRequest{Source: "1 + 2"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	retryAfter(t, resp) // parseable, positive

	if got := s.metrics.Rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	close(block)

	// With the pool drained the same request succeeds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ = postJSON(t, ts.URL+"/interpret", CompileRequest{Source: "1 + 2"})
		if resp.StatusCode == http.StatusOK || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queue never drained: status %d", resp.StatusCode)
	}
}

// TestDeadlineExceededRun maps a tiny deadline onto a tiny fuel budget and
// asserts the 504 carries the partial execution's diagnostics.
func TestDeadlineExceededRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, StepsPerMilli: 10})

	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy},
		DeadlineMs:     1, // 10 steps of budget: nowhere near enough
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	eb := decode[errorBody](t, body)
	if eb.Partial == nil {
		t.Fatalf("deadline response has no partial diagnostics: %s", body)
	}
	if eb.Partial.Steps != 10 {
		t.Errorf("partial steps = %d, want the 10-step budget", eb.Partial.Steps)
	}
	if got := s.metrics.Deadlines.Load(); got != 1 {
		t.Errorf("deadline counter = %d, want 1", got)
	}
}

// TestWorkerPanicBecomes500 injects a panicking job and asserts the pool
// survives and the response is a structured 500.
func TestWorkerPanicBecomes500(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	j := &job{do: func() *response { panic("boom") }, done: make(chan *response, 1)}
	s.metrics.EnterQueue()
	s.jobs <- j
	resp := <-j.done
	if resp.status != http.StatusInternalServerError {
		t.Fatalf("panic job status %d, want 500", resp.status)
	}
	eb, ok := resp.body.(errorBody)
	if !ok || !eb.Panic {
		t.Fatalf("panic job body %+v, want structured panic error", resp.body)
	}
	if got := s.metrics.Panics.Load(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}

	// The worker survived the panic and still serves requests.
	httpResp, body := postJSON(t, ts.URL+"/interpret", CompileRequest{Source: "2 * 21"})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("pool dead after panic: status %d (%s)", httpResp.StatusCode, body)
	}
	if v := decode[InterpretResponse](t, body).Value; v != 42 {
		t.Fatalf("interpret after panic = %d, want 42", v)
	}
}

// TestBadRequests exercises the 400/405 paths.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, _ := postJSON(t, ts.URL+"/compile", CompileRequest{Source: "1", Collector: "marksweep"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown collector: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/compile", CompileRequest{Source: "fun f (x : int) : int = y\ndo 1"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ill-typed program: status %d, want 400", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status %d, want 405", getResp.StatusCode)
	}
}

// TestHealthzAndMetrics asserts both observability endpoints render and
// that the verified-collector typecheck counter is visible and stays at
// one over many compiles.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	for i := 0; i < 3; i++ {
		src := fmt.Sprintf("%d + %d", i, i)
		if resp, body := postJSON(t, ts.URL+"/run", RunRequest{
			CompileRequest: CompileRequest{Source: src, Collector: "basic"},
		}); resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Errorf("healthz status = %v", health["status"])
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	checks := metrics["collector_typechecks"].(map[string]any)
	if n := checks["basic"].(float64); n != 1 {
		t.Errorf("metrics report %v basic-collector typechecks, want exactly 1 per process", n)
	}
	reqs := metrics["requests"].(map[string]any)
	if n := reqs["run"].(float64); n != 3 {
		t.Errorf("metrics report %v run requests, want 3", n)
	}
	lat := metrics["run_latency_ms"].(map[string]any)
	if n := lat["count"].(float64); n != 3 {
		t.Errorf("run latency histogram count %v, want 3", n)
	}
}

// TestConcurrentRunsSharedCache hammers one source from many goroutines so
// the LRU hands the same *psgc.Compiled to every worker — run under -race
// this is the service-level concurrency guarantee.
func TestConcurrentRunsSharedCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	resp, body := postJSON(t, ts.URL+"/interpret", CompileRequest{Source: allocHeavy})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interpret: %d (%s)", resp.StatusCode, body)
	}
	want := decode[InterpretResponse](t, body).Value

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cap := 40
			resp, body := postJSON(t, ts.URL+"/run", RunRequest{
				CompileRequest: CompileRequest{Source: allocHeavy, Collector: "generational"},
				Capacity:       &cap,
			})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, body)
				return
			}
			if rr := decode[RunResponse](t, body); rr.Value != want {
				errs <- fmt.Sprintf("value %d, want %d", rr.Value, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestGracefulShutdown asserts Shutdown waits for in-flight work and that
// the drained server refuses new work with 503.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	j := &job{do: func() *response {
		close(started)
		<-block
		return &response{status: http.StatusOK, body: struct{}{}}
	}, done: make(chan *response, 1)}
	s.metrics.EnterQueue()
	s.jobs <- j
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned (%v) while a job was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(block)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if (<-j.done).status != http.StatusOK {
		t.Errorf("in-flight job did not complete")
	}

	resp, body := postJSON(t, ts.URL+"/interpret", CompileRequest{Source: "1"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown request: status %d (%s), want 503", resp.StatusCode, body)
	}
}

// TestFuelBudget pins the deadline→fuel arithmetic.
func TestFuelBudget(t *testing.T) {
	s := New(Config{DefaultFuel: 1000, StepsPerMilli: 10})
	defer s.Shutdown(context.Background())
	cases := []struct{ fuel, deadline, want int }{
		{0, 0, 1000},  // defaults
		{200, 0, 200}, // explicit fuel
		{0, 5, 50},    // deadline-mapped
		{200, 5, 50},  // smaller of the two
		{30, 5, 30},   // fuel tighter than deadline
		{0, 1000, 1000} /* deadline looser than default */}
	for _, c := range cases {
		if got := s.fuelBudget(c.fuel, c.deadline); got != c.want {
			t.Errorf("fuelBudget(%d, %d) = %d, want %d", c.fuel, c.deadline, got, c.want)
		}
	}
}

// ---------------------------------------------------------------------------
// Observability: tracing, streaming, Prometheus, singleflight
// ---------------------------------------------------------------------------

// TestRunTraceTimeline asserts /run?trace=1 returns a GC-event timeline
// whose counts agree with the machine's own statistics: at least one
// collection span, allocs+copies equal to the puts counter minus the code
// installs, and spans matching the collection count.
func TestRunTraceTimeline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	resp, body := postJSON(t, ts.URL+"/compile", CompileRequest{Source: allocHeavy, Collector: "forwarding"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d (%s)", resp.StatusCode, body)
	}
	codeBlocks := decode[CompileResponse](t, body).CodeBlocks

	cap := 24
	resp, body = postJSON(t, ts.URL+"/run?trace=1", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy, Collector: "forwarding"},
		Capacity:       &cap,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d (%s)", resp.StatusCode, body)
	}
	rr := decode[RunResponse](t, body)
	if rr.Trace == nil || rr.Trace.Timeline == nil {
		t.Fatalf("traced run has no trace report: %s", body)
	}
	if len(rr.Trace.Pipeline) == 0 {
		t.Errorf("trace report has no pipeline spans")
	}
	tl := rr.Trace.Timeline
	if rr.Stats.Collections < 1 || len(tl.Collections) != rr.Stats.Collections {
		t.Errorf("%d collection spans for %d collections", len(tl.Collections), rr.Stats.Collections)
	}
	if tl.Steps != rr.Stats.Steps {
		t.Errorf("timeline steps %d, run stats say %d", tl.Steps, rr.Stats.Steps)
	}
	if got, want := tl.Allocs+tl.Copies, rr.Stats.Puts-codeBlocks; got != want {
		t.Errorf("allocs+copies = %d, puts minus code installs = %d", got, want)
	}
	kinds := map[string]int{}
	for _, ev := range tl.Events {
		kinds[ev.Kind]++
	}
	for _, kind := range []string{obs.KindAlloc, obs.KindCopy, obs.KindForward, obs.KindCollectStart} {
		if kinds[kind] == 0 {
			t.Errorf("timeline has no %q events: %v", kind, kinds)
		}
	}

	// The trace ID is in both the header and the body, and they agree.
	if rr.TraceID == "" || resp.Header.Get("X-Trace-Id") != rr.TraceID {
		t.Errorf("trace ID header %q, body %q", resp.Header.Get("X-Trace-Id"), rr.TraceID)
	}

	// An untraced run of the same program carries no trace report.
	resp, body = postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy, Collector: "forwarding"},
		Capacity:       &cap,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("untraced run: %d (%s)", resp.StatusCode, body)
	}
	if rr := decode[RunResponse](t, body); rr.Trace != nil {
		t.Errorf("untraced run has a trace report")
	}
}

// TestDeadlineTraceReport asserts a fuel-killed traced run still reports
// the timeline up to the cutoff.
func TestDeadlineTraceReport(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, StepsPerMilli: 100})

	resp, body := postJSON(t, ts.URL+"/run?trace=1", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy},
		DeadlineMs:     1,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	eb := decode[errorBody](t, body)
	if eb.Trace == nil || eb.Trace.Timeline == nil {
		t.Fatalf("deadline response has no trace: %s", body)
	}
	if eb.Trace.Timeline.Steps != 100 {
		t.Errorf("cutoff timeline at step %d, want the 100-step budget", eb.Trace.Timeline.Steps)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data []byte
}

// readSSE parses an SSE body into events.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var (
		events []sseEvent
		cur    sseEvent
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != nil {
				events = append(events, cur)
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = append(cur.data, strings.TrimPrefix(line, "data: ")...)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return events
}

// TestRunStreamSSE drives /run?stream=1 and asserts the stream carries
// monotonically progressing snapshots and ends with a result event whose
// body matches the non-streaming response shape.
func TestRunStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	cap := 24
	payload, err := json.Marshal(RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy, Collector: "forwarding"},
		Capacity:       &cap,
		ProgressSteps:  500,
		Trace:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/run?stream=1", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}

	events := readSSE(t, resp.Body)
	if len(events) < 2 {
		t.Fatalf("stream delivered %d events, want progress plus a result", len(events))
	}
	last := events[len(events)-1]
	if last.name != "result" {
		t.Fatalf("final event %q (%s), want result", last.name, last.data)
	}

	var prevSteps int
	progressed := 0
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Fatalf("unexpected event %q before the result", ev.name)
		}
		var p psgc.Progress
		if err := json.Unmarshal(ev.data, &p); err != nil {
			t.Fatalf("bad progress payload %s: %v", ev.data, err)
		}
		if p.Steps < prevSteps {
			t.Errorf("progress went backwards: %d after %d", p.Steps, prevSteps)
		}
		prevSteps = p.Steps
		progressed++
	}
	if progressed == 0 {
		t.Errorf("no progress events before the result")
	}

	rr := decode[RunResponse](t, last.data)
	if rr.Stats.Collections == 0 || rr.Trace == nil {
		t.Errorf("streamed result lacks collections or trace: %s", last.data)
	}
	if rr.Stats.Steps < prevSteps {
		t.Errorf("final steps %d behind last progress %d", rr.Stats.Steps, prevSteps)
	}
}

// TestMetricsPrometheus asserts the content-negotiated /metrics exposition
// parses as valid Prometheus text format and reflects request traffic.
func TestMetricsPrometheus(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	cap := 24
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts.URL+"/run", RunRequest{
			CompileRequest: CompileRequest{Source: allocHeavy, Collector: "forwarding"},
			Capacity:       &cap,
		}); resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: %d (%s)", i, resp.StatusCode, body)
		}
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q, want the 0.0.4 text exposition", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(data)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, data)
	}

	reqs := fams["psgc_requests_total"]
	if reqs == nil {
		t.Fatal("no psgc_requests_total family")
	}
	found := false
	for _, s := range reqs.Samples {
		if s.Labels["endpoint"] == "run" {
			found = true
			if s.Value != 2 {
				t.Errorf("run requests %v, want 2", s.Value)
			}
		}
	}
	if !found {
		t.Errorf("no endpoint=run sample in %+v", reqs.Samples)
	}
	if fams["psgc_run_latency_ms"] == nil || fams["psgc_run_latency_ms"].Type != "histogram" {
		t.Errorf("run latency histogram missing or mistyped")
	}
	for _, s := range fams["psgc_collections_total"].Samples {
		if s.Labels["collector"] == "forwarding" && s.Value == 0 {
			t.Errorf("forwarding collections counter still 0 after collecting runs")
		}
	}

	// ?format=prometheus negotiates the same representation; the default
	// stays JSON.
	resp2, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("?format=prometheus Content-Type %q", ct)
	}
	resp3, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if ct := resp3.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("default Content-Type %q, want JSON", ct)
	}
}

// TestFlightGroupSingleCompile is the deterministic singleflight contract:
// with a leader parked inside the compile, N followers join its flight and
// the compile function runs exactly once.
func TestFlightGroupSingleCompile(t *testing.T) {
	var g flightGroup
	k := keyFor("shared", psgc.Basic)
	want := &psgc.Compiled{}

	entered := make(chan struct{})
	release := make(chan struct{})
	calls := 0
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c, _, err, coalesced := g.do(k, func() (*psgc.Compiled, []obs.PhaseSpan, error) {
			calls++
			close(entered)
			<-release
			return want, nil, nil
		})
		if c != want || err != nil || coalesced {
			t.Errorf("leader got (%v, %v, coalesced=%v)", c, err, coalesced)
		}
	}()
	<-entered

	const followers = 8
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _, err, coalesced := g.do(k, func() (*psgc.Compiled, []obs.PhaseSpan, error) {
				t.Error("follower ran the compile")
				return nil, nil, nil
			})
			if c != want || err != nil || !coalesced {
				t.Errorf("follower got (%v, %v, coalesced=%v)", c, err, coalesced)
			}
		}()
	}
	// Followers must be inside do before the leader finishes for the test
	// to mean anything; give them a moment to park on the done channel.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone
	if calls != 1 {
		t.Errorf("compile ran %d times, want exactly 1", calls)
	}

	// The flight is gone: the next miss runs a fresh compile.
	_, _, _, coalesced := g.do(k, func() (*psgc.Compiled, []obs.PhaseSpan, error) {
		calls++
		return want, nil, nil
	})
	if coalesced || calls != 2 {
		t.Errorf("post-flight call: coalesced=%v calls=%d", coalesced, calls)
	}
}

// TestCompiledCoalesces pins the server's compile path against an in-flight
// compile: every concurrent miss joins the flight and is counted as
// coalesced, not as a compile.
func TestCompiledCoalesces(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	_ = ts

	src := "40 + 2"
	k := keyFor(src, psgc.Basic)
	call := &flightCall{done: make(chan struct{})}
	s.flights.mu.Lock()
	s.flights.inflight = map[cacheKey]*flightCall{k: call}
	s.flights.mu.Unlock()

	const waiters = 4
	var wg, entered sync.WaitGroup
	entered.Add(waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered.Done()
			c, _, cached, err := s.compiled(src, psgc.Basic)
			if err != nil || c == nil || !cached {
				t.Errorf("coalesced compile got (%v, cached=%v, %v)", c, cached, err)
			}
		}()
	}
	// Wait for every waiter to be on its way into the flight before
	// completing it; the LRU stays empty until then, so they can only park
	// on the injected call.
	entered.Wait()
	time.Sleep(50 * time.Millisecond)

	real, spans, err := psgc.CompileTraced(src, psgc.Basic)
	if err != nil {
		t.Fatal(err)
	}
	call.compiled, call.pipeline = real, spans
	s.flights.mu.Lock()
	delete(s.flights.inflight, k)
	s.flights.mu.Unlock()
	close(call.done)
	wg.Wait()

	if got := s.metrics.CacheCoalesced.Load(); got != waiters {
		t.Errorf("coalesced counter %d, want %d", got, waiters)
	}
	if got := s.metrics.CacheMisses.Load(); got != 0 {
		t.Errorf("miss counter %d, want 0 — nobody compiled", got)
	}
}

// TestConcurrentCompileAccounting hammers one fresh source over HTTP and
// checks the cache accounting identity: every request is a hit, a
// coalesced wait, or an actual compile.
func TestConcurrentCompileAccounting(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 8, QueueDepth: 32})

	const clients = 12
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/compile", CompileRequest{Source: allocHeavy + "\n", Collector: "generational"})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("compile: %d (%s)", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()

	hits := s.metrics.CacheHits.Load()
	misses := s.metrics.CacheMisses.Load()
	coalesced := s.metrics.CacheCoalesced.Load()
	if hits+misses+coalesced != clients {
		t.Errorf("hits %d + misses %d + coalesced %d != %d requests", hits, misses, coalesced, clients)
	}
	if misses < 1 {
		t.Errorf("nobody compiled: misses = %d", misses)
	}
}
