package service

import (
	"fmt"
	"testing"

	"psgc"
	"psgc/internal/gclang"
)

// compiledOfLets builds a *psgc.Compiled whose program is a chain of n
// trivial lets, giving it an AST weight of 3n+2 (let + valop + num each,
// plus halt + num).
func compiledOfLets(n int) *psgc.Compiled {
	var body gclang.Term = gclang.HaltT{V: gclang.Num{N: 0}}
	for i := 0; i < n; i++ {
		body = gclang.LetT{X: "x", Op: gclang.ValOp{V: gclang.Num{N: 1}}, Body: body}
	}
	return &psgc.Compiled{Prog: gclang.Program{Main: body}}
}

func key(i int) cacheKey { return keyFor(fmt.Sprintf("src-%d", i), psgc.Basic) }

func TestCacheWeightEvictsInLRUOrder(t *testing.T) {
	small := compiledOfLets(1) // weight 5
	sw := gclang.ProgramSize(small.Prog)
	c := newCompiledCache(10, 4*sw) // room for four small entries
	for i := 0; i < 4; i++ {
		if ev := c.add(key(i), small, nil); ev != 0 {
			t.Fatalf("add %d evicted %d", i, ev)
		}
	}
	// A big entry worth three small ones forces out the three least
	// recently used — and only those.
	big := compiledOfLets(4) // weight 14: fits only alongside one small entry
	if ev := c.add(key(4), big, nil); ev != 3 {
		t.Fatalf("big add evicted %d entries, want 3", ev)
	}
	for i, want := range []bool{false, false, false, true, true} {
		_, _, ok := c.get(key(i))
		if ok != want {
			t.Errorf("entry %d cached = %v, want %v (LRU order violated)", i, ok, want)
		}
	}
	if got := c.totalWeight(); got > 4*sw {
		t.Errorf("weight %d over budget %d", got, 4*sw)
	}
}

func TestCacheOversizedNewestStays(t *testing.T) {
	small := compiledOfLets(1)
	c := newCompiledCache(10, 3*gclang.ProgramSize(small.Prog))
	c.add(key(0), small, nil)
	c.add(key(1), small, nil)
	// An entry that alone exceeds the whole budget evicts everything else
	// but is still admitted: the program ran, keep it for repeats.
	huge := compiledOfLets(100)
	if ev := c.add(key(2), huge, nil); ev != 2 {
		t.Fatalf("huge add evicted %d, want 2", ev)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if _, _, ok := c.get(key(2)); !ok {
		t.Fatal("oversized newest entry was evicted")
	}
}

func TestCacheEntryCapWithoutWeightBudget(t *testing.T) {
	c := newCompiledCache(2, 0) // weight budget disabled
	c.add(key(0), compiledOfLets(50), nil)
	c.add(key(1), compiledOfLets(50), nil)
	if ev := c.add(key(2), compiledOfLets(50), nil); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if _, _, ok := c.get(key(0)); ok {
		t.Error("LRU entry survived entry-cap eviction")
	}
}

func TestCacheGetPromotes(t *testing.T) {
	small := compiledOfLets(1)
	c := newCompiledCache(2, 0)
	c.add(key(0), small, nil)
	c.add(key(1), small, nil)
	c.get(key(0)) // key 0 is now most recently used
	c.add(key(2), small, nil)
	if _, _, ok := c.get(key(0)); !ok {
		t.Error("recently used entry evicted")
	}
	if _, _, ok := c.get(key(1)); ok {
		t.Error("least recently used entry survived")
	}
}

// TestCacheSegmentation pins the SLRU mechanics: admissions land in
// probation, a hit promotes to protected, and protected overflow demotes
// back to probation rather than evicting.
func TestCacheSegmentation(t *testing.T) {
	small := compiledOfLets(1)
	c := newCompiledCache(10, 0)
	for i := 0; i < 4; i++ {
		c.add(key(i), small, nil)
	}
	if prob, prot, _ := c.segments(); prob != 4 || prot != 0 {
		t.Fatalf("segments after adds = (%d,%d), want (4,0)", prob, prot)
	}
	c.get(key(1))
	c.get(key(2))
	prob, prot, protW := c.segments()
	if prob != 2 || prot != 2 {
		t.Fatalf("segments after two hits = (%d,%d), want (2,2)", prob, prot)
	}
	if want := 2 * gclang.ProgramSize(small.Prog); protW != want {
		t.Errorf("protected weight = %d, want %d", protW, want)
	}
	// protected cap for max=10 is 8 entries; promote more than that and the
	// LRU protected entries must fall back to probation, not disappear.
	c = newCompiledCache(10, 0)
	for i := 0; i < 10; i++ {
		c.add(key(i), small, nil)
		c.get(key(i))
	}
	prob, prot, _ = c.segments()
	if prot != 8 || prob != 2 {
		t.Errorf("segments after 10 promotions = (%d,%d), want (2,8)", prob, prot)
	}
	if c.len() != 10 {
		t.Errorf("len = %d, want 10 (demotion must not evict)", c.len())
	}
	if err := c.coherent(); err != nil {
		t.Error(err)
	}
}

// TestCacheStormSparesProtected is the property the SLRU upgrade buys:
// an eviction storm (the cache.evict fault) flushes probation but cannot
// touch entries with demonstrated reuse.
func TestCacheStormSparesProtected(t *testing.T) {
	small := compiledOfLets(1)
	c := newCompiledCache(10, 0)
	for i := 0; i < 6; i++ {
		c.add(key(i), small, nil)
	}
	c.get(key(0)) // the one hot program
	if ev := c.storm(); ev != 5 {
		t.Fatalf("storm evicted %d, want the 5 probationary entries", ev)
	}
	if _, _, ok := c.get(key(0)); !ok {
		t.Error("hot (protected) entry lost to the storm")
	}
	for i := 1; i < 6; i++ {
		if _, _, ok := c.get(key(i)); ok {
			t.Errorf("probationary entry %d survived the storm", i)
		}
	}
	if err := c.coherent(); err != nil {
		t.Error(err)
	}
	if got := c.totalWeight(); got != gclang.ProgramSize(small.Prog) {
		t.Errorf("weight after storm = %d, want one entry's worth", got)
	}
}

// TestCacheProtectedSpillsWhenProbationEmpty covers the eviction edge
// where the only probationary entry is the fresh admission: the spill
// must come from the protected tail, never the new entry.
func TestCacheProtectedSpillsWhenProbationEmpty(t *testing.T) {
	small := compiledOfLets(1)
	c := newCompiledCache(2, 0)
	c.add(key(0), small, nil)
	c.get(key(0))
	c.add(key(1), small, nil)
	c.get(key(1)) // both cached entries now protected
	if ev := c.add(key(2), small, nil); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if _, _, ok := c.get(key(2)); !ok {
		t.Error("fresh admission was evicted")
	}
	if _, _, ok := c.get(key(0)); ok {
		t.Error("protected LRU entry survived a full-cache admission")
	}
	if err := c.coherent(); err != nil {
		t.Error(err)
	}
}

func TestCacheRefreshAdjustsWeight(t *testing.T) {
	c := newCompiledCache(10, 0)
	c.add(key(0), compiledOfLets(10), nil)
	w1 := c.totalWeight()
	c.add(key(0), compiledOfLets(2), nil) // refresh with a smaller program
	w2 := c.totalWeight()
	if want := gclang.ProgramSize(compiledOfLets(2).Prog); w2 != want {
		t.Errorf("weight after refresh = %d, want %d (was %d)", w2, want, w1)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}
