package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"psgc"
	"psgc/internal/gclang"
	"psgc/internal/obs"
)

// cacheKey identifies a compiled program: the hash of its source text plus
// the collector it is linked against.
type cacheKey struct {
	hash [sha256.Size]byte
	col  psgc.Collector
}

func keyFor(src string, col psgc.Collector) cacheKey {
	return cacheKey{hash: sha256.Sum256([]byte(src)), col: col}
}

// SourceHash returns the hex source hash the service reports to clients,
// so repeat submissions can be correlated with cache behavior.
func SourceHash(src string) string {
	h := sha256.Sum256([]byte(src))
	return hex.EncodeToString(h[:])
}

// compiledCache is a segmented LRU (SLRU) of ready-to-run compiled
// programs. A *psgc.Compiled is immutable, so one entry may be handed to
// any number of concurrent workers; the lock only guards the bookkeeping.
//
// Segmentation splits the cache into a probationary segment (where every
// admission lands) and a protected segment (entries that were hit at least
// once after admission). Eviction always drains the probationary tail
// first, so a storm of one-shot programs — or an injected cache.evict
// fault — can only flush probation: programs that have demonstrated reuse
// stay resident. The protected segment is capped at protectedShare of each
// budget; overflow demotes its LRU entries back to probation (most
// recently used side), where they must earn another hit to return.
//
// Admission is size-aware, as before the upgrade: each entry is weighted
// by the AST size of its elaborated λGC program (gclang.ProgramSize), and
// eviction runs while the cache exceeds the entry-count cap or the total
// weight budget. One huge program can therefore displace many small ones,
// but never itself: the entry just admitted always stays, even when it
// alone exceeds the budget.
type compiledCache struct {
	mu        sync.Mutex
	max       int // entry-count cap; 0 = unlimited
	maxWeight int // total-weight budget; 0 = unlimited
	weight    int // current total weight

	// probation and protected are the two recency lists (front = most
	// recently used); values are *cacheEntry. entries indexes both.
	probation  *list.List
	protected  *list.List
	protWeight int
	entries    map[cacheKey]*list.Element
}

// protectedShare is the fraction of each budget (entries and weight) the
// protected segment may hold — the classic SLRU ~80/20 split.
const protectedShare = 0.8

type cacheEntry struct {
	key      cacheKey
	compiled *psgc.Compiled
	weight   int
	// pipeline holds the phase spans of the compile that produced the
	// entry, so traced cache hits can still report what the compile cost.
	pipeline []obs.PhaseSpan
	// protected marks which segment the entry lives in.
	protected bool
}

func newCompiledCache(max, maxWeight int) *compiledCache {
	return &compiledCache{
		max:       max,
		maxWeight: maxWeight,
		probation: list.New(),
		protected: list.New(),
		entries:   make(map[cacheKey]*list.Element),
	}
}

func protectedCap(budget int) int {
	if budget <= 0 {
		return 0 // unlimited, like the budget itself
	}
	c := int(protectedShare * float64(budget))
	if c < 1 {
		c = 1
	}
	return c
}

// get returns the cached program and its compile spans for the key. A hit
// in probation promotes the entry to the protected segment; a protected
// hit refreshes its recency.
func (c *compiledCache) get(k cacheKey) (*psgc.Compiled, []obs.PhaseSpan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.protected {
		c.protected.MoveToFront(el)
	} else {
		c.probation.Remove(el)
		e.protected = true
		c.entries[k] = c.protected.PushFront(e)
		c.protWeight += e.weight
		c.demoteOverflow()
	}
	return e.compiled, e.pipeline, true
}

// peek returns the cached program for the key without touching recency or
// segment state, so fleet peer-export traffic cannot promote entries into
// the protected segment (or keep one-shot programs alive past their turn).
func (c *compiledCache) peek(k cacheKey) (*psgc.Compiled, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).compiled, true
}

// demoteOverflow moves protected LRU entries back to probation (MRU side)
// while the protected segment is over its share of the caps. A lone
// protected entry is never demoted: with nothing to make room for, the
// churn would only strip its protection.
func (c *compiledCache) demoteOverflow() {
	overCap := func() bool {
		if pc := protectedCap(c.max); pc > 0 && c.protected.Len() > pc {
			return true
		}
		if pw := protectedCap(c.maxWeight); pw > 0 && c.protWeight > pw {
			return true
		}
		return false
	}
	for c.protected.Len() > 1 && overCap() {
		el := c.protected.Back()
		c.protected.Remove(el)
		e := el.Value.(*cacheEntry)
		e.protected = false
		c.protWeight -= e.weight
		c.entries[e.key] = c.probation.PushFront(e)
	}
}

// add inserts (or refreshes) an entry, evicting while the cache is over
// the entry cap or the weight budget — probationary tail first, protected
// tail only when probation holds nothing but the new entry. Returns the
// number of evictions.
func (c *compiledCache) add(k cacheKey, compiled *psgc.Compiled, pipeline []obs.PhaseSpan) int {
	w := gclang.ProgramSize(compiled.Prog)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		e := el.Value.(*cacheEntry)
		c.weight += w - e.weight
		if e.protected {
			c.protWeight += w - e.weight
			c.protected.MoveToFront(el)
		} else {
			c.probation.MoveToFront(el)
		}
		e.compiled = compiled
		e.weight = w
		e.pipeline = pipeline
		c.demoteOverflow()
		return 0
	}
	newEl := c.probation.PushFront(&cacheEntry{key: k, compiled: compiled, weight: w, pipeline: pipeline})
	c.entries[k] = newEl
	c.weight += w
	evicted := 0
	for c.size() > 1 &&
		((c.max > 0 && c.size() > c.max) || (c.maxWeight > 0 && c.weight > c.maxWeight)) {
		victim := c.probation.Back()
		if victim == newEl {
			// Probation holds only the fresh admission; spill from the
			// protected tail instead of evicting what we just added.
			victim = c.protected.Back()
		}
		if victim == nil {
			break
		}
		c.evict(victim)
		evicted++
	}
	return evicted
}

// evict removes one element from whichever segment holds it.
func (c *compiledCache) evict(el *list.Element) {
	e := el.Value.(*cacheEntry)
	if e.protected {
		c.protected.Remove(el)
		c.protWeight -= e.weight
	} else {
		c.probation.Remove(el)
	}
	delete(c.entries, e.key)
	c.weight -= e.weight
}

// storm flushes the entire probationary segment — the cache.evict fault:
// a scan flood arrives and every entry without demonstrated reuse goes.
// Protected entries survive, which is the property the SLRU upgrade buys.
// Returns the number of evictions.
func (c *compiledCache) storm() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	evicted := 0
	for c.probation.Len() > 0 {
		c.evict(c.probation.Back())
		evicted++
	}
	return evicted
}

func (c *compiledCache) size() int { return c.probation.Len() + c.protected.Len() }

// len reports the number of cached programs.
func (c *compiledCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size()
}

// totalWeight reports the summed ProgramSize weight of the cached programs.
func (c *compiledCache) totalWeight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.weight
}

// segments reports (probation entries, protected entries, protected
// weight) for /healthz and the coherence checks in the chaos suite.
func (c *compiledCache) segments() (probation, protected, protWeight int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.probation.Len(), c.protected.Len(), c.protWeight
}

// coherent re-derives the cached invariants from scratch and reports the
// first violation, for the chaos suite: the index must cover exactly the
// two lists, the weights must re-add, and every entry's segment flag must
// match the list it is on.
func (c *compiledCache) coherent() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := 0
	weight, protWeight := 0, 0
	for el := c.probation.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if e.protected {
			return errCoherence("probation entry flagged protected")
		}
		if c.entries[e.key] != el {
			return errCoherence("probation entry not indexed")
		}
		weight += e.weight
		seen++
	}
	for el := c.protected.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if !e.protected {
			return errCoherence("protected entry flagged probationary")
		}
		if c.entries[e.key] != el {
			return errCoherence("protected entry not indexed")
		}
		weight += e.weight
		protWeight += e.weight
		seen++
	}
	if seen != len(c.entries) {
		return errCoherence("index size disagrees with the segments")
	}
	if weight != c.weight {
		return errCoherence("total weight out of sync")
	}
	if protWeight != c.protWeight {
		return errCoherence("protected weight out of sync")
	}
	return nil
}

type errCoherence string

func (e errCoherence) Error() string { return "cache incoherent: " + string(e) }

// flightGroup coalesces concurrent compiles of the same key (singleflight):
// when two requests miss the cache on one (source hash, collector) at the
// same time, only the first runs the pipeline; the rest wait for its
// result. Errors propagate to every waiter but are not retained — the next
// request after the flight lands retries the compile.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[cacheKey]*flightCall
}

type flightCall struct {
	done     chan struct{}
	compiled *psgc.Compiled
	pipeline []obs.PhaseSpan
	err      error
}

// do runs fn once per key among concurrent callers. coalesced reports
// whether this caller waited on another caller's fn instead of running it.
func (g *flightGroup) do(k cacheKey, fn func() (*psgc.Compiled, []obs.PhaseSpan, error)) (c *psgc.Compiled, pipeline []obs.PhaseSpan, err error, coalesced bool) {
	g.mu.Lock()
	if g.inflight == nil {
		g.inflight = map[cacheKey]*flightCall{}
	}
	if call, ok := g.inflight[k]; ok {
		g.mu.Unlock()
		<-call.done
		return call.compiled, call.pipeline, call.err, true
	}
	call := &flightCall{done: make(chan struct{})}
	g.inflight[k] = call
	g.mu.Unlock()

	call.compiled, call.pipeline, call.err = fn()

	g.mu.Lock()
	delete(g.inflight, k)
	g.mu.Unlock()
	close(call.done)
	return call.compiled, call.pipeline, call.err, false
}
