package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"psgc"
)

// cacheKey identifies a compiled program: the hash of its source text plus
// the collector it is linked against.
type cacheKey struct {
	hash [sha256.Size]byte
	col  psgc.Collector
}

func keyFor(src string, col psgc.Collector) cacheKey {
	return cacheKey{hash: sha256.Sum256([]byte(src)), col: col}
}

// SourceHash returns the hex source hash the service reports to clients,
// so repeat submissions can be correlated with cache behavior.
func SourceHash(src string) string {
	h := sha256.Sum256([]byte(src))
	return hex.EncodeToString(h[:])
}

// compiledCache is an LRU of ready-to-run compiled programs. A *psgc.Compiled
// is immutable, so one entry may be handed to any number of concurrent
// workers; the lock only guards the LRU bookkeeping.
type compiledCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[cacheKey]*list.Element
}

type cacheEntry struct {
	key      cacheKey
	compiled *psgc.Compiled
}

func newCompiledCache(max int) *compiledCache {
	return &compiledCache{
		max:     max,
		order:   list.New(),
		entries: make(map[cacheKey]*list.Element),
	}
}

// get returns the cached program for the key, marking it most recently
// used.
func (c *compiledCache) get(k cacheKey) (*psgc.Compiled, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).compiled, true
}

// add inserts (or refreshes) an entry, evicting the least recently used
// entry beyond the capacity. Returns the number of evictions.
func (c *compiledCache) add(k cacheKey, compiled *psgc.Compiled) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).compiled = compiled
		return 0
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, compiled: compiled})
	evicted := 0
	for c.max > 0 && c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// len reports the number of cached programs.
func (c *compiledCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
