package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"psgc"
	"psgc/internal/gclang"
	"psgc/internal/obs"
)

// cacheKey identifies a compiled program: the hash of its source text plus
// the collector it is linked against.
type cacheKey struct {
	hash [sha256.Size]byte
	col  psgc.Collector
}

func keyFor(src string, col psgc.Collector) cacheKey {
	return cacheKey{hash: sha256.Sum256([]byte(src)), col: col}
}

// SourceHash returns the hex source hash the service reports to clients,
// so repeat submissions can be correlated with cache behavior.
func SourceHash(src string) string {
	h := sha256.Sum256([]byte(src))
	return hex.EncodeToString(h[:])
}

// compiledCache is an LRU of ready-to-run compiled programs. A *psgc.Compiled
// is immutable, so one entry may be handed to any number of concurrent
// workers; the lock only guards the LRU bookkeeping.
//
// Admission is size-aware: each entry is weighted by the AST size of its
// elaborated λGC program (gclang.ProgramSize), and eviction runs while the
// cache exceeds the entry-count cap or the total weight budget. One huge
// program can therefore displace many small ones, but never itself: the
// most recently used entry always stays, even when it alone exceeds the
// budget.
type compiledCache struct {
	mu        sync.Mutex
	max       int        // entry-count cap; 0 = unlimited
	maxWeight int        // total-weight budget; 0 = unlimited
	weight    int        // current total weight
	order     *list.List // front = most recently used; values are *cacheEntry
	entries   map[cacheKey]*list.Element
}

type cacheEntry struct {
	key      cacheKey
	compiled *psgc.Compiled
	weight   int
	// pipeline holds the phase spans of the compile that produced the
	// entry, so traced cache hits can still report what the compile cost.
	pipeline []obs.PhaseSpan
}

func newCompiledCache(max, maxWeight int) *compiledCache {
	return &compiledCache{
		max:       max,
		maxWeight: maxWeight,
		order:     list.New(),
		entries:   make(map[cacheKey]*list.Element),
	}
}

// get returns the cached program and its compile spans for the key,
// marking it most recently used.
func (c *compiledCache) get(k cacheKey) (*psgc.Compiled, []obs.PhaseSpan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.compiled, e.pipeline, true
}

// add inserts (or refreshes) an entry, evicting least recently used
// entries while the cache is over the entry cap or the weight budget.
// Returns the number of evictions.
func (c *compiledCache) add(k cacheKey, compiled *psgc.Compiled, pipeline []obs.PhaseSpan) int {
	w := gclang.ProgramSize(compiled.Prog)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.weight += w - e.weight
		e.compiled = compiled
		e.weight = w
		e.pipeline = pipeline
		return 0
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, compiled: compiled, weight: w, pipeline: pipeline})
	c.weight += w
	evicted := 0
	// Never evict the entry just admitted (order.Len() > 1): an oversized
	// program still runs, it just won't keep company.
	for c.order.Len() > 1 &&
		((c.max > 0 && c.order.Len() > c.max) || (c.maxWeight > 0 && c.weight > c.maxWeight)) {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		delete(c.entries, e.key)
		c.weight -= e.weight
		evicted++
	}
	return evicted
}

// len reports the number of cached programs.
func (c *compiledCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// totalWeight reports the summed ProgramSize weight of the cached programs.
func (c *compiledCache) totalWeight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.weight
}

// flightGroup coalesces concurrent compiles of the same key (singleflight):
// when two requests miss the LRU on one (source hash, collector) at the
// same time, only the first runs the pipeline; the rest wait for its
// result. Errors propagate to every waiter but are not retained — the next
// request after the flight lands retries the compile.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[cacheKey]*flightCall
}

type flightCall struct {
	done     chan struct{}
	compiled *psgc.Compiled
	pipeline []obs.PhaseSpan
	err      error
}

// do runs fn once per key among concurrent callers. coalesced reports
// whether this caller waited on another caller's fn instead of running it.
func (g *flightGroup) do(k cacheKey, fn func() (*psgc.Compiled, []obs.PhaseSpan, error)) (c *psgc.Compiled, pipeline []obs.PhaseSpan, err error, coalesced bool) {
	g.mu.Lock()
	if g.inflight == nil {
		g.inflight = map[cacheKey]*flightCall{}
	}
	if call, ok := g.inflight[k]; ok {
		g.mu.Unlock()
		<-call.done
		return call.compiled, call.pipeline, call.err, true
	}
	call := &flightCall{done: make(chan struct{})}
	g.inflight[k] = call
	g.mu.Unlock()

	call.compiled, call.pipeline, call.err = fn()

	g.mu.Lock()
	delete(g.inflight, k)
	g.mu.Unlock()
	close(call.done)
	return call.compiled, call.pipeline, call.err, false
}
