package service

// Checkpoint/resume over HTTP: POST /snapshot pauses a live streaming run
// at its next step boundary and returns the serialized checkpoint blob;
// POST /resume re-certifies a blob and continues the run — on this node,
// on any backend. Together with the gate's migration loop this is how an
// in-flight run moves off a degrading backend without losing a step.
//
// The trust story mirrors the peer cache tier (PR 6): a blob is untrusted
// input no matter who posted it. psgc.DecodeCheckpoint re-checks the
// checksum, re-certifies the collector prefix against this process's own
// verified collector, re-typechecks the mutator, and re-validates the heap
// image cell by cell. A corrupt or tampered blob is a 422 plus a
// "checkpoint_rejected" incident — never a panic, never a resumed machine
// that could compute a wrong answer.

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"psgc"
	"psgc/internal/fault"
	"psgc/internal/obs"
	"psgc/internal/regions"
)

// registerLive makes a streaming run snapshotable under its trace ID.
func (s *Server) registerLive(traceID string, cp *psgc.Checkpointer) {
	s.liveMu.Lock()
	s.live[traceID] = cp
	s.liveMu.Unlock()
}

func (s *Server) unregisterLive(traceID string) {
	s.liveMu.Lock()
	delete(s.live, traceID)
	s.liveMu.Unlock()
}

func (s *Server) lookupLive(traceID string) (*psgc.Checkpointer, bool) {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	cp, ok := s.live[traceID]
	return cp, ok
}

// reserveResume claims a snapshot identity (trace@step) for resumption.
// It reports false if that snapshot was already resumed — the double-resume
// guard that keeps the gate's migration retries idempotent.
func (s *Server) reserveResume(key string) bool {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	if s.resumed[key] {
		return false
	}
	s.resumed[key] = true
	return true
}

// releaseResume returns a reservation after an admission failure (queue
// full, shutdown), so the client's retry is not mistaken for a duplicate.
func (s *Server) releaseResume(key string) {
	s.liveMu.Lock()
	delete(s.resumed, key)
	s.liveMu.Unlock()
}

// SnapshotRequest asks POST /snapshot to pause the streaming run with the
// given trace ID at its next step boundary.
type SnapshotRequest struct {
	TraceID string `json:"trace_id"`
}

// SnapshotResponse carries the paused run's serialized checkpoint. Blob is
// base64 in JSON (Go's []byte encoding) and is exactly what POST /resume
// accepts.
type SnapshotResponse struct {
	TraceID    string `json:"trace_id"`
	SourceHash string `json:"source_hash,omitempty"`
	Collector  string `json:"collector"`
	Backend    string `json:"backend"`
	Engine     string `json:"engine"`
	Steps      int    `json:"steps"`
	Blob       []byte `json:"blob"`
}

// CheckpointedResponse is the terminal body of a streaming run that was
// paused by POST /snapshot: the run did not fail, it moved. SSE streams
// deliver it as a "checkpointed" event so relays know to expect the run's
// result from wherever the blob is resumed.
type CheckpointedResponse struct {
	Checkpointed bool   `json:"checkpointed"`
	SourceHash   string `json:"source_hash,omitempty"`
	Steps        int    `json:"steps"`
	TraceID      string `json:"trace_id,omitempty"`
}

// ResumeRequest is the POST /resume payload. Blob is a checkpoint as
// returned by POST /snapshot (or psgc -checkpoint). The zero value of
// every other field resumes the run exactly as it was: same backend, the
// checkpoint's remaining fuel.
type ResumeRequest struct {
	Blob []byte `json:"blob"`
	// Backend overrides the substrate the run resumes on ("map", "arena");
	// empty keeps the checkpoint's origin backend. Cross-backend resume is
	// bit-identical — the heap image is the backend-neutral canonical form.
	Backend string `json:"backend"`
	// Fuel / DeadlineMs bound the remaining execution like /run's fields;
	// both zero inherit the checkpoint's remaining fuel.
	Fuel       int `json:"fuel"`
	DeadlineMs int `json:"deadline_ms"`
	// Stream serves the resumed run over SSE (equivalent to ?stream=1).
	Stream bool `json:"stream"`
	// ProgressSteps is the SSE progress cadence in machine steps.
	ProgressSteps int `json:"progress_steps"`
	// CoCheck forces the resumed run into the oracle co-check; the oracle
	// is rebuilt from the same snapshot (equivalent to ?cocheck=1).
	CoCheck bool `json:"cocheck"`
}

// handleSnapshot pauses a live streaming run and returns its checkpoint.
// Snapshots are legal only at step boundaries — the machine delivers the
// checkpoint at its next boundary, never mid-scavenge — so the handler
// waits up to SnapshotWaitMs for the run to reach one.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	traceID := s.traceRequest(w, r)
	if !s.requirePost(w, r) {
		return
	}
	var req SnapshotRequest
	if !s.decode(w, r, &req, traceID) {
		return
	}
	if req.TraceID == "" {
		s.writeResponse(w, &response{status: http.StatusBadRequest,
			body: errorBody{Error: "missing trace_id", TraceID: traceID}})
		return
	}
	cp, ok := s.lookupLive(req.TraceID)
	if !ok {
		s.metrics.SnapshotMisses.Add(1)
		s.writeResponse(w, &response{status: http.StatusNotFound,
			body: errorBody{Error: fmt.Sprintf("no live streaming run with trace id %q", req.TraceID), TraceID: traceID}})
		return
	}
	cp.Request()
	select {
	case ck := <-cp.Checkpoints():
		blob, err := ck.Encode()
		if err != nil {
			s.writeResponse(w, &response{status: http.StatusInternalServerError,
				body: errorBody{Error: "encode checkpoint: " + err.Error(), TraceID: traceID}})
			return
		}
		// Chaos point: storage/transport corruption of the blob after the
		// run paused. Restore must reject it — incident + 422 at /resume,
		// never a resumed run with a wrong answer.
		if fault.Should(fault.CheckpointCorrupt) && len(blob) > 0 {
			blob[len(blob)/2] ^= 0x40
		}
		s.metrics.Snapshots.Add(1)
		s.writeResponse(w, &response{status: http.StatusOK, body: SnapshotResponse{
			TraceID:    req.TraceID,
			SourceHash: ck.SourceHash,
			Collector:  ck.Collector.String(),
			Backend:    ck.Backend.String(),
			Engine:     ck.Engine.String(),
			Steps:      ck.Steps,
			Blob:       blob,
		}})
	case <-time.After(time.Duration(s.cfg.SnapshotWaitMs) * time.Millisecond):
		// The run halted (or errored) before reaching another boundary;
		// its stream already carries the final answer.
		s.metrics.SnapshotMisses.Add(1)
		s.writeResponse(w, &response{status: http.StatusGone,
			body: errorBody{Error: fmt.Sprintf("run %q finished or reached no step boundary within %dms", req.TraceID, s.cfg.SnapshotWaitMs), TraceID: traceID}})
	case <-r.Context().Done():
	}
}

// handleResume re-certifies a checkpoint blob and continues the run.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	reqTrace := s.traceRequest(w, r)
	if !s.requirePost(w, r) {
		return
	}
	var req ResumeRequest
	if !s.decodeWithin(w, r, &req, reqTrace, s.cfg.MaxResumeBytes) {
		return
	}
	if v := r.URL.Query().Get("backend"); v != "" {
		req.Backend = v
	}
	if req.Backend != "" {
		if _, err := regions.ParseBackend(req.Backend); err != nil {
			s.writeResponse(w, &response{status: http.StatusBadRequest,
				body: errorBody{Error: err.Error(), TraceID: reqTrace}})
			return
		}
	}
	req.CoCheck = flagged(r, "cocheck", req.CoCheck)
	stream := flagged(r, "stream", req.Stream)
	if len(req.Blob) == 0 {
		s.writeResponse(w, &response{status: http.StatusBadRequest,
			body: errorBody{Error: "missing blob", TraceID: reqTrace}})
		return
	}
	ck, err := psgc.DecodeCheckpoint(req.Blob)
	if err != nil {
		// The certifying decoder refused the blob: corruption, truncation,
		// or tampering. 422 — the request was well-formed JSON, the
		// checkpoint inside it was not acceptable.
		s.metrics.ResumesRejected.Add(1)
		s.guard.incidents.Record(obs.Incident{
			Kind:    "checkpoint_rejected",
			TraceID: reqTrace,
			Detail:  err.Error(),
		})
		s.writeResponse(w, &response{status: http.StatusUnprocessableEntity,
			body: errorBody{Error: err.Error(), TraceID: reqTrace}})
		return
	}
	// The resumed run keeps the original run's identity; the migration key
	// is (trace, step) so re-migrating the same run later — from a later
	// snapshot — is allowed, while replaying this snapshot is not.
	runTrace := ck.TraceID
	if runTrace == "" {
		runTrace = reqTrace
	}
	w.Header().Set("X-Trace-Id", runTrace)
	key := fmt.Sprintf("%s@%d", runTrace, ck.Steps)
	if !s.reserveResume(key) {
		s.metrics.ResumesDuplicate.Add(1)
		s.writeResponse(w, &response{status: http.StatusConflict,
			body: errorBody{Error: fmt.Sprintf("snapshot %s already resumed", key), TraceID: runTrace}})
		return
	}
	if stream {
		if s.overloaded() {
			s.releaseResume(key)
			s.metrics.Shed.Add(1)
			w.Header().Set("Retry-After", "1")
			s.writeResponse(w, &response{status: http.StatusTooManyRequests,
				body: errorBody{Error: "degraded under load: stream requests are shed, retry later", TraceID: runTrace}})
			return
		}
		s.metrics.StreamRequests.Add(1)
		cp := psgc.NewCheckpointer()
		s.registerLive(runTrace, cp)
		defer s.unregisterLive(runTrace)
		if !s.streamJob(w, r, runTrace, func(progress func(psgc.Progress) bool) *response {
			return s.doResume(ck, req, runTrace, progress, cp)
		}) {
			s.releaseResume(key)
		}
		return
	}
	j := &job{done: make(chan *response, 1), traceID: runTrace}
	j.do = func() *response { return s.doResume(ck, req, runTrace, nil, nil) }
	if !s.enqueue(w, j) {
		s.releaseResume(key)
		return
	}
	select {
	case resp := <-j.done:
		s.writeResponse(w, resp)
	case <-r.Context().Done():
	}
}

// doResume executes a decoded (already re-certified) checkpoint on a pool
// worker, mirroring doRun's budgets, guardrails, and response shapes.
func (s *Server) doResume(ck *psgc.Checkpoint, req ResumeRequest, traceID string, progress func(psgc.Progress) bool, cp *psgc.Checkpointer) *response {
	col := ck.Collector
	hash := ck.SourceHash
	backend := ck.Backend
	if req.Backend != "" {
		b, err := regions.ParseBackend(req.Backend)
		if err != nil {
			return &response{status: http.StatusBadRequest, body: errorBody{Error: err.Error(), TraceID: traceID}}
		}
		backend = b
	}
	opts := psgc.RunOptions{
		Backend:      backend,
		Checkpointer: cp,
		CheckpointMeta: psgc.CheckpointMeta{
			SourceHash: hash,
			TraceID:    traceID,
		},
	}
	if req.Fuel > 0 || req.DeadlineMs > 0 {
		opts.Fuel = s.fuelBudget(req.Fuel, req.DeadlineMs)
	}
	// With opts.Fuel zero the run inherits the checkpoint's remaining
	// fuel — an interrupted budget stays a budget across the migration.
	engine := ck.Engine
	diverged := false
	if engine == psgc.EngineEnv {
		// Sampled co-check on resume: the substitution oracle is rebuilt
		// from the same snapshot, so the resumed run re-enters the lockstep
		// differential exactly where the original left it. A breaker-open
		// program cannot be pinned to the oracle here — the image dictates
		// the engine — so it is co-checked unconditionally instead.
		if req.CoCheck || s.guard.breakerOpen(hash) || s.guard.shouldCoCheck() {
			opts.CoCheck = true
			s.metrics.CoCheckRuns.Add(1)
			opts.OnDivergence = func(d psgc.Divergence) {
				diverged = true
				engine = psgc.EngineSubst // the oracle finishes the run
				s.metrics.CoCheckDivergences.Add(1)
				if s.guard.trip(hash, col.String(), traceID, d) {
					s.metrics.BreakersOpen.Add(1)
				}
			}
		}
	}
	// The profiler resumes from the checkpoint's aggregate (restored
	// inside Run), so the completed profile spans the whole logical run.
	prof := ck.Compiled().Profiler()
	opts.Profiler = prof
	if req.ProgressSteps > 0 {
		opts.ProgressEvery = req.ProgressSteps
	}
	stalled := false
	if s.cfg.WatchdogMs > 0 {
		deadline := time.Now().Add(time.Duration(s.cfg.WatchdogMs) * time.Millisecond)
		if opts.ProgressEvery == 0 {
			opts.ProgressEvery = watchdogProgressEvery
		}
		inner := progress
		progress = func(p psgc.Progress) bool {
			if time.Now().After(deadline) {
				stalled = true
				return false
			}
			if inner != nil {
				return inner(p)
			}
			return true
		}
	}
	opts.Progress = progress
	s.metrics.Resumes.Add(1)
	t0 := time.Now()
	res, err := ck.Resume(opts)
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	s.metrics.RunLatency.Observe(ms)
	// The machine's counters continue from the checkpoint; only the steps
	// executed here are new traffic on this node.
	s.metrics.MachineSteps[col].Add(int64(res.Steps - ck.Steps))
	s.metrics.Collections[col].Add(int64(res.Collections - ck.Collections))
	if err != nil {
		if errors.Is(err, psgc.ErrOutOfFuel) {
			s.metrics.Deadlines.Add(1)
			partial := statsOf(res)
			return &response{status: http.StatusGatewayTimeout,
				body: errorBody{Error: err.Error(), Partial: &partial, TraceID: traceID}}
		}
		if errors.Is(err, psgc.ErrCanceled) {
			partial := statsOf(res)
			if stalled {
				s.metrics.WatchdogStalls.Add(1)
				s.guard.incidents.Record(obs.Incident{
					Kind: "watchdog_stall", TraceID: traceID, Subject: hash,
					Detail: fmt.Sprintf("resumed run cut after %d steps at the %dms budget", res.Steps, s.cfg.WatchdogMs),
				})
				return &response{status: http.StatusGatewayTimeout,
					body: errorBody{Error: fmt.Sprintf("watchdog: run stalled past %dms; partial result attached", s.cfg.WatchdogMs),
						Partial: &partial, TraceID: traceID}}
			}
			s.metrics.Canceled.Add(1)
			return &response{status: statusClientClosedRequest,
				body: errorBody{Error: err.Error(), Partial: &partial, TraceID: traceID}}
		}
		if errors.Is(err, psgc.ErrCheckpointed) {
			// Re-migration: the resumed run was itself paused by a later
			// POST /snapshot.
			return &response{status: http.StatusOK, body: CheckpointedResponse{
				Checkpointed: true,
				SourceHash:   hash,
				Steps:        res.Steps,
				TraceID:      traceID,
			}}
		}
		return &response{status: http.StatusInternalServerError,
			body: errorBody{Error: err.Error(), TraceID: traceID}}
	}
	s.adaptive.Observe(hash, col.String(), prof.Profile())
	s.metrics.ProfiledRuns.Add(1)
	return &response{status: http.StatusOK, body: RunResponse{
		Value:           res.Value,
		Collector:       col.String(),
		Engine:          engine.String(),
		Backend:         backend.String(),
		SourceHash:      hash,
		Fuel:            opts.Fuel,
		RunMs:           ms,
		CoChecked:       opts.CoCheck,
		Diverged:        diverged,
		Resumed:         true,
		ResumedFromStep: ck.Steps,
		Stats:           statsOf(res),
		TraceID:         traceID,
	}}
}
