package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"psgc/internal/fault"
)

// intp is shorthand for the optional capacity field.
func intp(n int) *int { return &n }

// getJSON drives one GET endpoint and returns the response plus body.
func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func mustUnmarshal(t *testing.T, data []byte, into any) {
	t.Helper()
	if err := json.Unmarshal(data, into); err != nil {
		t.Fatalf("bad response %s: %v", data, err)
	}
}

// newHTTPServer wraps an already-built Server in an httptest listener
// without the double-Shutdown the newTestServer cleanup would add.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// postJSONNoFatal is postJSON for goroutines, where t.Fatal is illegal.
func postJSONNoFatal(url string, body any) (int, []byte) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, []byte(err.Error())
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return resp.StatusCode, []byte(err.Error())
	}
	return resp.StatusCode, out.Bytes()
}

// retryAfter asserts the response carries a parseable, positive
// Retry-After header and returns its value in seconds.
func retryAfter(t *testing.T, resp *http.Response) int {
	t.Helper()
	raw := resp.Header.Get("Retry-After")
	if raw == "" {
		t.Fatalf("%d response without Retry-After header", resp.StatusCode)
	}
	secs, err := strconv.Atoi(raw)
	if err != nil || secs <= 0 {
		t.Fatalf("Retry-After %q is not a positive integer", raw)
	}
	return secs
}

// TestCoCheckSamplingRate pins the deterministic every-Nth sampler that
// implements CoCheckSample.
func TestCoCheckSamplingRate(t *testing.T) {
	cases := []struct {
		sample float64
		wantOf int // co-checks per 100 runs
	}{
		{0, 0}, {1, 100}, {0.5, 50}, {0.25, 25}, {0.01, 1},
	}
	for _, c := range cases {
		g := newGuardrails(c.sample, nil)
		got := 0
		for i := 0; i < 100; i++ {
			if g.shouldCoCheck() {
				got++
			}
		}
		if got != c.wantOf {
			t.Errorf("sample %v: %d co-checks per 100 runs, want %d", c.sample, got, c.wantOf)
		}
	}
	// The first run must be in the sample, so a freshly configured server
	// co-checks immediately rather than after 1/s warm-up runs.
	if g := newGuardrails(0.1, nil); !g.shouldCoCheck() {
		t.Error("first run not sampled at rate 0.1")
	}
}

// TestCoCheckDivergenceFallback is the acceptance scenario: synthetic heap
// corruption in the env machine forces an env/oracle divergence on a
// co-checked run, and the service must (1) record an incident, (2) serve
// the request from the oracle with the correct result, (3) open a
// circuit breaker visible in /healthz, and (4) increment
// psgc_cocheck_divergences_total.
func TestCoCheckDivergenceFallback(t *testing.T) {
	fault.Install(fault.NewRegistry(1).Enable(fault.HeapCorrupt, 1))
	defer fault.Install(nil)

	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CoCheckSample: 1})

	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy, Collector: "forwarding"},
		Capacity:       intp(40),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	rr := decode[RunResponse](t, body)
	if rr.Value != 465 {
		t.Errorf("value %d, want the oracle's 465", rr.Value)
	}
	if !rr.CoChecked || !rr.Diverged {
		t.Errorf("cochecked/diverged = %v/%v, want true/true", rr.CoChecked, rr.Diverged)
	}
	if rr.Engine != "subst" {
		t.Errorf("engine %q, want subst (oracle fallback)", rr.Engine)
	}
	if got := s.metrics.CoCheckDivergences.Load(); got != 1 {
		t.Errorf("divergence counter = %d, want 1", got)
	}
	if got := s.metrics.BreakersOpen.Load(); got != 1 {
		t.Errorf("breakers gauge = %d, want 1", got)
	}

	// The incident is recorded and the breaker is visible in /healthz.
	hresp, hbody := getJSON(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}
	var health struct {
		CoCheckDivergences int64 `json:"cocheck_divergences"`
		OpenBreakers       []struct {
			SourceHash  string `json:"source_hash"`
			Collector   string `json:"collector"`
			Divergences int    `json:"divergences"`
			LastDetail  string `json:"last_detail"`
		} `json:"open_breakers"`
		Incidents []struct {
			Kind    string `json:"kind"`
			Subject string `json:"subject"`
		} `json:"incidents"`
		Chaos map[string]any `json:"chaos"`
	}
	mustUnmarshal(t, hbody, &health)
	if health.CoCheckDivergences != 1 {
		t.Errorf("healthz cocheck_divergences = %d, want 1", health.CoCheckDivergences)
	}
	if len(health.OpenBreakers) != 1 {
		t.Fatalf("healthz open_breakers = %+v, want exactly one", health.OpenBreakers)
	}
	b := health.OpenBreakers[0]
	if b.SourceHash != rr.SourceHash || b.Collector != "forwarding" || b.Divergences != 1 || b.LastDetail == "" {
		t.Errorf("breaker %+v does not match the diverged run (hash %s)", b, rr.SourceHash)
	}
	if len(health.Incidents) != 1 || health.Incidents[0].Kind != "engine_divergence" || health.Incidents[0].Subject != rr.SourceHash {
		t.Errorf("incidents = %+v, want one engine_divergence for %s", health.Incidents, rr.SourceHash)
	}
	if health.Chaos == nil {
		t.Error("healthz does not surface the installed chaos registry")
	}

	// The Prometheus exposition carries the divergence counter.
	promReq, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics?format=prometheus", nil)
	promResp, err := http.DefaultClient.Do(promReq)
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := promResp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	for _, want := range []string{"psgc_cocheck_divergences_total 1", "psgc_breakers_open 1", "psgc_cocheck_runs_total 1"} {
		if !strings.Contains(sb.String(), want+"\n") {
			t.Errorf("exposition lacks %q", want)
		}
	}

	// The breaker now pins the program to the oracle: the next run is not
	// co-checked (no second divergence), served by subst, still correct.
	resp, body = postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy, Collector: "forwarding"},
		Capacity:       intp(40),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("breaker-pinned run: status %d: %s", resp.StatusCode, body)
	}
	rr2 := decode[RunResponse](t, body)
	if rr2.Engine != "subst" || rr2.CoChecked || rr2.Diverged {
		t.Errorf("breaker-pinned run = engine %q cochecked %v diverged %v, want subst/false/false",
			rr2.Engine, rr2.CoChecked, rr2.Diverged)
	}
	if rr2.Value != 465 {
		t.Errorf("breaker-pinned value %d, want 465", rr2.Value)
	}
	if got := s.metrics.CoCheckDivergences.Load(); got != 1 {
		t.Errorf("divergence counter moved to %d on a breaker-pinned run", got)
	}
}

// TestCoCheckCleanRunsStayOnEnv asserts co-checking without faults keeps
// the env engine's answer and opens nothing.
func TestCoCheckCleanRunsStayOnEnv(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CoCheckSample: 1})
	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy},
		Capacity:       intp(40),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	rr := decode[RunResponse](t, body)
	if !rr.CoChecked || rr.Diverged || rr.Engine != "env" {
		t.Errorf("clean co-checked run = %+v, want cochecked env run without divergence", rr)
	}
	if got := s.metrics.BreakersOpen.Load(); got != 0 {
		t.Errorf("breakers open = %d after a clean run", got)
	}
}

// TestDrain503RetryAfter asserts a draining server answers with 503 plus a
// parseable, positive Retry-After (the 429 sibling assertion lives in
// TestQueueFull429).
func TestDrain503RetryAfter(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	ts := newHTTPServer(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/interpret", CompileRequest{Source: "1 + 2"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	retryAfter(t, resp)
}

// TestWatchdogStallBecomesPartial injects a per-step stall and asserts the
// watchdog converts the hung run into a 504 with well-formed partial
// statistics instead of a worker held hostage.
func TestWatchdogStallBecomesPartial(t *testing.T) {
	fault.Install(fault.NewRegistry(1).EnableDelay(fault.MachineStall, 1, time.Millisecond))
	defer fault.Install(nil)

	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, WatchdogMs: 40})
	resp, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy},
		Capacity:       intp(40),
		ProgressSteps:  20,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	eb := decode[errorBody](t, body)
	if !strings.Contains(eb.Error, "watchdog") {
		t.Errorf("error %q does not name the watchdog", eb.Error)
	}
	if eb.Partial == nil || eb.Partial.Steps <= 0 {
		t.Errorf("watchdog 504 without well-formed partial stats: %s", body)
	}
	if got := s.metrics.WatchdogStalls.Load(); got != 1 {
		t.Errorf("watchdog stall counter = %d, want 1", got)
	}
	if got := s.metrics.Deadlines.Load(); got != 0 {
		t.Errorf("watchdog stall was misclassified as a fuel deadline (%d)", got)
	}

	// Uninstall the stall: the same server must serve the program normally
	// (no breaker involvement — a stall is not a divergence).
	fault.Install(nil)
	resp, body = postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy},
		Capacity:       intp(40),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-stall run: status %d: %s", resp.StatusCode, body)
	}
}

// TestShedObservabilityUnderLoad drives the degradation mode: at the shed
// threshold, traced and streamed runs get 429 + Retry-After while the
// queue is still accepting plain work.
func TestShedObservabilityUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, ShedThreshold: 0.25})

	block := make(chan struct{})
	started := make(chan struct{})
	s.metrics.EnterQueue()
	s.jobs <- &job{do: func() *response {
		close(started)
		<-block
		return &response{status: http.StatusOK, body: struct{}{}}
	}, done: make(chan *response, 1)}
	<-started
	var unblockOnce sync.Once
	unblock := func() { unblockOnce.Do(func() { close(block) }) }
	defer unblock()

	// Queue depth 1 ≥ 0.25×4: degradation mode is on.
	hresp, hbody := getJSON(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK {
		t.Fatal("healthz unavailable")
	}
	var health struct {
		Degradation string `json:"degradation_mode"`
	}
	mustUnmarshal(t, hbody, &health)
	if health.Degradation != "shedding_observability" {
		t.Errorf("degradation_mode = %q, want shedding_observability", health.Degradation)
	}

	for _, variant := range []string{"?trace=1", "?stream=1"} {
		resp, body := postJSON(t, ts.URL+"/run"+variant, RunRequest{
			CompileRequest: CompileRequest{Source: allocHeavy},
		})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s under load: status %d (%s), want 429", variant, resp.StatusCode, body)
		}
		retryAfter(t, resp)
	}
	if got := s.metrics.Shed.Load(); got != 2 {
		t.Errorf("shed counter = %d, want 2", got)
	}

	// A plain run is NOT shed: it queues behind the blocker and completes
	// once the blocker exits.
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		resp, body := postJSONNoFatal(ts.URL+"/run", RunRequest{
			CompileRequest: CompileRequest{Source: allocHeavy},
			Capacity:       intp(40),
		})
		done <- result{resp, body}
	}()
	time.Sleep(50 * time.Millisecond) // let it enqueue behind the blocker
	unblock()
	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("plain run under load: status %d (%s), want 200", r.status, r.body)
	}
}

// TestStreamClientDisconnectMidCollection is the SSE cancellation
// regression: a client that vanishes while the machine is collecting must
// free the worker at the next progress tick and leave the counters
// consistent (one canceled run, queue drained back to zero).
func TestStreamClientDisconnectMidCollection(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	// A fixed undersized capacity makes the live set exceed the heap at
	// every function entry: the machine collects continuously and only the
	// fuel budget would ever end the run — perfect for disconnecting mid-
	// collection.
	resp, err := http.Post(ts.URL+"/run?stream=1", "application/json",
		strings.NewReader(`{"source":`+strconv.Quote(allocHeavy)+`,"capacity":8,"fixed":true,"progress_steps":200}`))
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sawCollection := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"collections":`) && !strings.Contains(line, `"collections":0`) {
			sawCollection = true
			break
		}
	}
	if !sawCollection {
		t.Fatal("stream ended before any collection was reported")
	}
	resp.Body.Close() // disconnect mid-run, mid-collection-storm

	// The worker must notice at its next progress tick and come back.
	deadline := time.Now().Add(10 * time.Second)
	for s.metrics.QueueDepth.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d := s.metrics.QueueDepth.Load(); d != 0 {
		t.Fatalf("queue depth still %d after disconnect; worker not freed", d)
	}
	deadline = time.Now().Add(10 * time.Second)
	for s.metrics.Canceled.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.metrics.Canceled.Load(); got != 1 {
		t.Fatalf("canceled counter = %d, want 1", got)
	}

	// The freed worker serves the next request promptly.
	resp2, body := postJSON(t, ts.URL+"/run", RunRequest{
		CompileRequest: CompileRequest{Source: allocHeavy},
		Capacity:       intp(40),
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("run after disconnect: status %d (%s)", resp2.StatusCode, body)
	}
	if got := s.metrics.Panics.Load(); got != 0 {
		t.Errorf("panics = %d after disconnect, want 0", got)
	}
}
