// Package service turns the certified-GC compile-and-run pipeline into a
// long-lived concurrent HTTP service — the first scaling step of the
// ROADMAP's production north star, and the verification-as-a-service
// framing of Hawblitzel & Petrank applied to this reproduction: the
// typechecker run that certifies each collector happens once per process
// (collector.Load) and is observable at /metrics, instead of being paid on
// every request.
//
// Endpoints (request/response bodies are JSON unless negotiated otherwise;
// see README.md):
//
//	POST /compile    compile a program, report cache/typecheck behavior
//	                 (?trace=1 adds pipeline-phase spans)
//	POST /run        compile (or reuse) and execute on the λGC machine
//	                 (?trace=1 adds the GC-event timeline; ?stream=1
//	                 streams progress over SSE)
//	POST /interpret  run the reference evaluator (no regions, no GC)
//	GET  /healthz    liveness + queue snapshot
//	GET  /metrics    the metrics registry — JSON by default, Prometheus
//	                 text exposition with Accept: text/plain (or
//	                 ?format=prometheus)
//
// Requests are executed by a bounded worker pool. When the queue is full
// the service sheds load with HTTP 429 rather than queueing unboundedly;
// per-request deadlines are mapped onto machine fuel budgets (the machine
// is deterministic, so steps — not wall clock — are the enforceable
// resource); worker panics become structured 500s; Shutdown drains the
// pool gracefully. Every request gets a trace ID, returned in the
// X-Trace-Id header and the response body, and carried through the worker
// pool so queued work stays attributable.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"psgc"
	"psgc/internal/fault"
	"psgc/internal/obs"
	"psgc/internal/policy"
	"psgc/internal/regions"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Workers is the worker-pool size (default 4).
	Workers int
	// QueueDepth bounds jobs waiting for a worker; a full queue rejects
	// with 429 (default 64).
	QueueDepth int
	// CacheSize is the compiled-program LRU capacity in entries
	// (default 128).
	CacheSize int
	// CacheWeight bounds the summed AST size (gclang.ProgramSize) of the
	// cached programs, so a few huge programs cannot pin as much memory as
	// 128 typical ones. 0 uses the default of 512k AST nodes; negative
	// disables the weight budget (entry count still applies).
	CacheWeight int
	// Capacity is the default region capacity for /run requests that do
	// not specify one (default 64).
	Capacity int
	// DefaultFuel is the machine step budget for /run requests that
	// specify neither fuel nor a deadline (default psgc.DefaultFuel).
	DefaultFuel int
	// StepsPerMilli converts a request deadline into a fuel budget
	// (default 25000 machine steps per millisecond — sized to the slower
	// substitution engine, so deadlines stay conservative for requests
	// that opt out of the default environment engine).
	StepsPerMilli int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxResumeBytes bounds POST /resume bodies separately: they carry a
	// checkpoint heap image, which routinely dwarfs a source program
	// (default 64 MiB).
	MaxResumeBytes int64
	// CoCheckSample is the fraction of env-engine /run requests co-stepped
	// against the substitution oracle (sampled oracle co-checking). 0
	// disables; 1 co-checks every run. Sampling is deterministic: a rate of
	// s checks every round(1/s)-th run.
	CoCheckSample float64
	// WatchdogMs is the per-run wall-clock stall budget: a run exceeding it
	// is cut at its next progress tick and answered as a 504 with partial
	// statistics, instead of holding a worker hostage. 0 disables.
	WatchdogMs int
	// ShedThreshold is the queue-utilization fraction at or above which
	// trace/stream requests (the expensive observability tier) are shed
	// with 429 before plain runs are. 0 selects the default of 0.75;
	// negative disables shedding.
	ShedThreshold float64
	// DefaultEngine is the engine /run uses when the request names none:
	// "env" (the default) or "subst". Surfaced in /healthz so operators can
	// tell what a node is defaulting to.
	DefaultEngine string
	// DefaultBackend is the memory substrate /run uses when the request
	// names none: "map" (the default) or "arena" (contiguous slabs with
	// Cheney two-finger scavenging). Surfaced in /healthz.
	DefaultBackend string
	// PeerFetchURL, when non-empty, is the fleet gate's peer-fetch endpoint
	// (e.g. http://gate:8373/peer/compiled). On a local compiled-cache miss
	// the server asks it for another node's compiled entry before paying the
	// compile; the import is re-certified by the λGC typechecker.
	PeerFetchURL string
	// PeerSelf identifies this node to the peer-fetch endpoint so the gate
	// never asks the requester for its own miss. Typically the node's
	// advertised base URL.
	PeerSelf string
	// PeerTimeoutMs bounds one peer fetch (default 2000). A slow or dead
	// gate must never cost more than a fraction of the compile it avoids.
	PeerTimeoutMs int
	// MaxBatchItems caps the run items one /batch request may carry
	// (default 256).
	MaxBatchItems int
	// DefaultPolicy is the run policy /run uses when the request names
	// none: "static" (the default — the request's collector and capacity
	// are used as given) or "adaptive" (the profile-driven engine picks
	// the collector and initial capacity per program). Surfaced in
	// /healthz.
	DefaultPolicy string
	// ProfileCapacity bounds the per-program profile store in program
	// hashes (default obs.DefaultProfileCapacity). Profiles are recorded
	// for every run regardless of policy; the store is what the adaptive
	// policy reads.
	ProfileCapacity int
	// IncidentDir, when non-empty, persists the incident log as JSON lines
	// in <dir>/incidents.jsonl. Incidents recorded by previous processes
	// are replayed on boot, so divergences and rejected checkpoints
	// survive restarts.
	IncidentDir string
	// SnapshotWaitMs bounds how long POST /snapshot waits for the paused
	// run to reach a step boundary and deliver its checkpoint
	// (default 2000).
	SnapshotWaitMs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.CacheWeight == 0 {
		c.CacheWeight = 512 * 1024
	} else if c.CacheWeight < 0 {
		c.CacheWeight = 0
	}
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	if c.DefaultFuel <= 0 {
		c.DefaultFuel = psgc.DefaultFuel
	}
	if c.StepsPerMilli <= 0 {
		c.StepsPerMilli = 25_000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxResumeBytes <= 0 {
		c.MaxResumeBytes = 64 << 20
	}
	if c.ShedThreshold == 0 {
		c.ShedThreshold = 0.75
	} else if c.ShedThreshold < 0 {
		c.ShedThreshold = 0
	}
	if _, err := psgc.ParseEngine(c.DefaultEngine); err != nil {
		c.DefaultEngine = psgc.EngineEnv.String()
	}
	b, err := regions.ParseBackend(c.DefaultBackend)
	if err != nil {
		b = regions.BackendMap
	}
	c.DefaultBackend = b.String()
	if c.PeerTimeoutMs <= 0 {
		c.PeerTimeoutMs = 2000
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if p, err := policy.Parse(c.DefaultPolicy); err != nil {
		c.DefaultPolicy = policy.Static
	} else {
		c.DefaultPolicy = p
	}
	if c.ProfileCapacity <= 0 {
		c.ProfileCapacity = obs.DefaultProfileCapacity
	}
	if c.SnapshotWaitMs <= 0 {
		c.SnapshotWaitMs = 2000
	}
	return c
}

// Server is the compile-and-run service. Create with New, serve via
// ServeHTTP (it is an http.Handler), stop with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	cache   *compiledCache
	flights flightGroup
	metrics *Metrics
	guard   *guardrails
	start   time.Time
	build   map[string]any

	// profiles is the always-on per-program profile store; adaptive is
	// the policy engine reading it. Every run feeds profiles regardless of
	// its policy, so an operator can flip DefaultPolicy to adaptive on a
	// warm node and get informed decisions immediately.
	profiles *obs.ProfileStore
	adaptive *policy.Engine

	// peer is the fleet peer-fetch client, swappable at runtime (the gate's
	// address may only be known after the backend starts).
	peer atomic.Pointer[peerClient]

	// liveMu guards the checkpoint/resume state: live maps the trace ID of
	// each in-flight streaming run to the Checkpointer that can pause it
	// (POST /snapshot), and resumed records which snapshots (trace@step)
	// have already been resumed so a duplicate resume is rejected instead
	// of running the work twice.
	liveMu  sync.Mutex
	live    map[string]*psgc.Checkpointer
	resumed map[string]bool

	// mu guards jobs against Shutdown closing the channel while a
	// request goroutine is submitting.
	mu       sync.RWMutex
	jobs     chan *job
	shutdown bool
	wg       sync.WaitGroup
}

// job is one unit of pool work; done is buffered so an abandoned client
// never blocks a worker. traceID follows the job through the pool so
// panics and responses stay attributable to the request.
type job struct {
	do      func() *response
	done    chan *response
	traceID string
}

// response is a finished job: an HTTP status plus a JSON-encodable body.
type response struct {
	status int
	body   any
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	// The incident log persists to IncidentDir when configured, replaying
	// the previous process's incidents on boot. A directory that cannot be
	// opened degrades to in-memory logging with the failure recorded as
	// the first incident — observability must not take the service down.
	var incidents *obs.IncidentLog
	if cfg.IncidentDir != "" {
		var err error
		incidents, err = obs.OpenIncidentLog(0, filepath.Join(cfg.IncidentDir, "incidents.jsonl"))
		if err != nil {
			incidents = obs.NewIncidentLog(0)
			incidents.Record(obs.Incident{
				Kind:   "incident_log_open_failed",
				Detail: err.Error(),
			})
		}
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   newCompiledCache(cfg.CacheSize, cfg.CacheWeight),
		metrics: &Metrics{},
		guard:   newGuardrails(cfg.CoCheckSample, incidents),
		start:   time.Now(),
		live:    map[string]*psgc.Checkpointer{},
		resumed: map[string]bool{},
		jobs:    make(chan *job, cfg.QueueDepth),
	}
	s.profiles = obs.NewProfileStore(cfg.ProfileCapacity)
	s.adaptive = policy.NewEngine(s.profiles)
	s.build = buildInfo()
	s.mux.HandleFunc("/compile", s.handleCompile)
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/interpret", s.handleInterpret)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/cache/export", s.handleCacheExport)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/resume", s.handleResume)
	s.mux.HandleFunc("/admin/breakers", s.handleAdminBreakers)
	s.mux.HandleFunc("/admin/cocheck", s.handleAdminCoCheck)
	if cfg.PeerFetchURL != "" {
		s.SetPeerFetch(cfg.PeerFetchURL, cfg.PeerSelf)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Metrics exposes the registry (for embedding binaries and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Profiles exposes the per-program profile store (for embedding binaries
// and tests).
func (s *Server) Profiles() *obs.ProfileStore { return s.profiles }

// PolicyEngine exposes the adaptive policy engine (for embedding binaries
// and tests).
func (s *Server) PolicyEngine() *policy.Engine { return s.adaptive }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown stops accepting work, drains the queue, and waits for in-flight
// jobs, up to the context's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.shutdown {
		s.shutdown = true
		close(s.jobs)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.guard.incidents.Close()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker drains the job queue, converting panics into structured 500s.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		j.done <- s.runJob(j)
		s.metrics.LeaveQueue()
	}
}

func (s *Server) runJob(j *job) (resp *response) {
	defer func() {
		if p := recover(); p != nil {
			s.metrics.Panics.Add(1)
			resp = &response{status: http.StatusInternalServerError,
				body: errorBody{Error: fmt.Sprintf("internal panic: %v", p), Panic: true, TraceID: j.traceID}}
		}
	}()
	// Chaos points: injected queue latency and worker panics. The panic
	// deliberately fires inside the recover above — the chaos suite asserts
	// no panic ever escapes a worker.
	fault.Sleep(fault.WorkerLatency)
	if fault.Should(fault.WorkerPanic) {
		panic(fmt.Sprintf("%v in worker", fault.ErrInjected))
	}
	return j.do()
}

// enqueueOutcome classifies a tryEnqueue attempt.
type enqueueOutcome int

const (
	enqueueOK enqueueOutcome = iota
	enqueueShutdown
	enqueueFull
)

// tryEnqueue places a job on the worker pool without touching any HTTP
// state, so both the per-request and the batch paths share one admission
// policy.
func (s *Server) tryEnqueue(j *job) enqueueOutcome {
	s.mu.RLock()
	if s.shutdown {
		s.mu.RUnlock()
		return enqueueShutdown
	}
	s.metrics.EnterQueue()
	select {
	case s.jobs <- j:
		s.mu.RUnlock()
		return enqueueOK
	default:
		s.mu.RUnlock()
		s.metrics.LeaveQueue()
		s.metrics.Rejected.Add(1)
		return enqueueFull
	}
}

// enqueue places a job on the worker pool, writing a 503 during shutdown
// or a 429 when the queue is full. It reports whether the job was
// accepted.
func (s *Server) enqueue(w http.ResponseWriter, j *job) bool {
	switch s.tryEnqueue(j) {
	case enqueueShutdown:
		// A draining instance will not come back; tell clients when a
		// replacement is worth trying.
		w.Header().Set("Retry-After", "5")
		s.writeResponse(w, &response{status: http.StatusServiceUnavailable,
			body: errorBody{Error: "server is shutting down", TraceID: j.traceID}})
		return false
	case enqueueFull:
		w.Header().Set("Retry-After", "1")
		s.writeResponse(w, &response{status: http.StatusTooManyRequests,
			body: errorBody{Error: "queue full, retry later", TraceID: j.traceID}})
		return false
	}
	return true
}

// submit enqueues do on the worker pool and writes its response, shedding
// load with 429 when the queue is full and 503 during shutdown.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, traceID string, do func() *response) {
	j := &job{do: do, done: make(chan *response, 1), traceID: traceID}
	if !s.enqueue(w, j) {
		return
	}
	select {
	case resp := <-j.done:
		s.writeResponse(w, resp)
	case <-r.Context().Done():
		// Client abandoned the request; the worker finishes into the
		// buffered channel and moves on.
	}
}

// ---------------------------------------------------------------------------
// Request / response shapes
// ---------------------------------------------------------------------------

// CompileRequest is the POST /compile (and /run) source payload.
type CompileRequest struct {
	// Source is the program text of the simply-typed source language.
	Source string `json:"source"`
	// Collector is "basic", "forwarding", or "generational" (default
	// "basic").
	Collector string `json:"collector"`
}

// CompileResponse reports a compilation.
type CompileResponse struct {
	Collector  string  `json:"collector"`
	SourceHash string  `json:"source_hash"`
	Cached     bool    `json:"cached"`
	CodeBlocks int     `json:"code_blocks"`
	CompileMs  float64 `json:"compile_ms"`
	TraceID    string  `json:"trace_id,omitempty"`
	// Pipeline holds the compile's per-phase spans when tracing was
	// requested; for cache hits they are the spans of the compile that
	// produced the cached entry.
	Pipeline []obs.PhaseSpan `json:"pipeline,omitempty"`
}

// RunRequest is the POST /run payload.
type RunRequest struct {
	CompileRequest
	// Capacity overrides the region capacity (nil = server default;
	// 0 disables collection).
	Capacity *int `json:"capacity"`
	// Fixed disables the survivor-driven heap growth policy.
	Fixed bool `json:"fixed"`
	// Fuel bounds machine steps (0 = server default).
	Fuel int `json:"fuel"`
	// DeadlineMs maps a wall-clock budget onto a fuel budget via the
	// server's StepsPerMilli rate; the smaller of Fuel and the mapped
	// budget wins.
	DeadlineMs int `json:"deadline_ms"`
	// Trace includes the pipeline spans and GC-event timeline in the
	// response (equivalent to the ?trace=1 query parameter).
	Trace bool `json:"trace"`
	// MaxEvents caps the retained timeline event log (default 10000;
	// totals and collection spans are always exact).
	MaxEvents int `json:"max_events"`
	// Stream serves the run over SSE with progress events (equivalent to
	// the ?stream=1 query parameter).
	Stream bool `json:"stream"`
	// ProgressSteps is the SSE progress cadence in machine steps
	// (default 50000; progress is also emitted at every collection).
	ProgressSteps int `json:"progress_steps"`
	// Engine selects the execution engine: "env" (default) or "subst"
	// (the substitution-stepping oracle). Equivalent to the ?engine=
	// query parameter, which takes precedence.
	Engine string `json:"engine"`
	// CoCheck forces this run into the oracle co-check regardless of the
	// server's sample rate (equivalent to ?cocheck=1). Only meaningful for
	// the env engine; slower, but a divergence can never produce a wrong
	// answer — the oracle's result is always the one returned.
	CoCheck bool `json:"cocheck"`
	// Backend selects the memory substrate: "map" (the default) or
	// "arena". Equivalent to the ?backend= query parameter, which takes
	// precedence. Co-checked runs always keep the oracle on the map
	// backend, so a co-checked arena run is a cross-substrate differential.
	Backend string `json:"backend"`
	// Policy selects the run policy: "static" (the default — the
	// request's collector and capacity are used as given) or "adaptive"
	// (the profile-driven engine picks the collector and initial capacity
	// from the program's accumulated profile, falling back to the
	// request's choices for a cold hash). Equivalent to the ?policy=
	// query parameter, which takes precedence. Policy is outside the TCB:
	// it can cost time, never correctness.
	Policy string `json:"policy"`
}

// RunStats is the observable execution statistics, present in both
// successful responses and deadline-exceeded diagnostics.
type RunStats struct {
	Steps            int `json:"steps"`
	Collections      int `json:"collections"`
	Puts             int `json:"puts"`
	RegionsReclaimed int `json:"regions_reclaimed"`
	CellsReclaimed   int `json:"cells_reclaimed"`
	MaxLiveCells     int `json:"max_live_cells"`
	LiveCells        int `json:"live_cells"`
}

func statsOf(res psgc.Result) RunStats {
	return RunStats{
		Steps:            res.Steps,
		Collections:      res.Collections,
		Puts:             res.Stats.Puts,
		RegionsReclaimed: res.Stats.RegionsReclaimed,
		CellsReclaimed:   res.Stats.CellsReclaimed,
		MaxLiveCells:     res.Stats.MaxLiveCells,
		LiveCells:        res.LiveCells,
	}
}

// TraceReport is the observability payload attached to traced runs: the
// compile pipeline's phase spans and the GC-event timeline.
type TraceReport struct {
	Pipeline []obs.PhaseSpan `json:"pipeline,omitempty"`
	Timeline *obs.Timeline   `json:"timeline"`
}

// RunResponse reports an execution.
type RunResponse struct {
	Value      int     `json:"value"`
	Collector  string  `json:"collector"`
	Engine     string  `json:"engine"`
	Backend    string  `json:"backend"`
	SourceHash string  `json:"source_hash"`
	Cached     bool    `json:"cached"`
	Fuel       int     `json:"fuel"`
	RunMs      float64 `json:"run_ms"`
	// CoChecked marks runs that were co-stepped against the oracle
	// (sampled, forced, or breaker-pinned runs report their engine instead).
	CoChecked bool `json:"cochecked,omitempty"`
	// Diverged marks co-checked runs where the engines disagreed; the
	// value is the oracle's.
	Diverged bool `json:"diverged,omitempty"`
	// Resumed marks runs continued from a checkpoint by POST /resume;
	// ResumedFromStep is the step the checkpoint was captured at. Stats
	// and Value cover the whole logical run, so a resumed run's response
	// is bit-identical to an uninterrupted one's.
	Resumed         bool `json:"resumed,omitempty"`
	ResumedFromStep int  `json:"resumed_from_step,omitempty"`
	// Policy reports the run policy that configured this execution, and
	// Decision the adaptive engine's resolved choice (nil for static runs).
	// A decided collector overrides the request's, so Collector above
	// always reports what actually ran.
	Policy   string           `json:"policy,omitempty"`
	Decision *policy.Decision `json:"decision,omitempty"`
	Stats    RunStats         `json:"stats"`
	TraceID  string           `json:"trace_id,omitempty"`
	Trace    *TraceReport     `json:"trace,omitempty"`
}

// InterpretResponse reports a reference-evaluator run.
type InterpretResponse struct {
	Value   int    `json:"value"`
	TraceID string `json:"trace_id,omitempty"`
}

// errorBody is the structured error payload.
type errorBody struct {
	Error string `json:"error"`
	// Panic marks errors recovered from worker panics.
	Panic bool `json:"panic,omitempty"`
	// Partial carries the statistics of a deadline-killed run.
	Partial *RunStats `json:"partial,omitempty"`
	// TraceID attributes the error to a request.
	TraceID string `json:"trace_id,omitempty"`
	// Trace carries the timeline recorded up to the point a traced run
	// was cut off by its fuel budget.
	Trace *TraceReport `json:"trace,omitempty"`
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

func parseCollector(name string) (psgc.Collector, error) {
	switch name {
	case "", "basic":
		return psgc.Basic, nil
	case "forwarding":
		return psgc.Forwarding, nil
	case "generational":
		return psgc.Generational, nil
	default:
		return 0, fmt.Errorf("unknown collector %q (want basic, forwarding, or generational)", name)
	}
}

// traceRequest assigns the request a trace ID and exposes it in the
// response headers before any body is written. A well-formed incoming
// X-Trace-Id is honored — the gate stamps streams with its own IDs so a
// later POST /snapshot can name the run it wants paused — anything else
// gets a fresh one.
func (s *Server) traceRequest(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get("X-Trace-Id")
	if !validTraceID(id) {
		id = obs.NewTraceID()
	}
	w.Header().Set("X-Trace-Id", id)
	return id
}

// validTraceID bounds what this server accepts as a caller-supplied trace
// ID: short and header/JSON-safe.
func validTraceID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// decode parses a JSON body with the configured size limit.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any, traceID string) bool {
	return s.decodeWithin(w, r, into, traceID, s.cfg.MaxBodyBytes)
}

// decodeWithin parses a JSON body under an explicit size limit (the
// resume path carries heap images and gets its own, larger bound).
func (s *Server) decodeWithin(w http.ResponseWriter, r *http.Request, into any, traceID string, limit int64) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.writeResponse(w, &response{status: http.StatusBadRequest,
			body: errorBody{Error: "bad request body: " + err.Error(), TraceID: traceID}})
		return false
	}
	return true
}

func (s *Server) requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeResponse(w, &response{status: http.StatusMethodNotAllowed,
			body: errorBody{Error: "use POST"}})
		return false
	}
	return true
}

// compiled fetches a ready-to-run program from the LRU or compiles and
// caches it, coalescing concurrent compiles of the same key so N
// simultaneous misses run the pipeline once. The returned bool reports
// whether this request avoided a compile (LRU hit or coalesced onto an
// in-flight one); the spans describe the compile that produced the
// program.
func (s *Server) compiled(src string, col psgc.Collector) (*psgc.Compiled, []obs.PhaseSpan, bool, error) {
	// Chaos point: an eviction storm flushes the probationary segment
	// before this request touches the cache, so a hit here proves the
	// entry had earned protection.
	if fault.Should(fault.CacheEvict) {
		if n := s.cache.storm(); n > 0 {
			s.metrics.CacheEvicted.Add(int64(n))
		}
	}
	k := keyFor(src, col)
	if c, spans, ok := s.cache.get(k); ok {
		s.metrics.CacheHits.Add(1)
		return c, spans, true, nil
	}
	c, spans, err, coalesced := s.flights.do(k, func() (*psgc.Compiled, []obs.PhaseSpan, error) {
		s.metrics.CacheMisses.Add(1)
		// Fleet peer cache tier: before paying the compile, ask the gate
		// whether another node already holds this entry. The singleflight
		// wrapper means N concurrent misses cost at most one peer round trip.
		if c, ok := s.peerFetch(SourceHash(src), col); ok {
			if n := s.cache.add(k, c, nil); n > 0 {
				s.metrics.CacheEvicted.Add(int64(n))
			}
			return c, nil, nil
		}
		c, spans, err := psgc.CompileTraced(src, col)
		if err != nil {
			return nil, spans, err
		}
		if n := s.cache.add(k, c, spans); n > 0 {
			s.metrics.CacheEvicted.Add(int64(n))
		}
		return c, spans, nil
	})
	if coalesced {
		s.metrics.CacheCoalesced.Add(1)
	}
	return c, spans, coalesced, err
}

// compileStatus maps a compile error onto an HTTP status: errors in the
// user's program are 400s; a pipeline bug (the compiled program failing
// λGC typechecking, a broken collector) or an injected infrastructure
// fault is a 500 — the program may be fine.
func compileStatus(err error) int {
	if strings.Contains(err.Error(), "internal error") || errors.Is(err, fault.ErrInjected) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// flagged reports whether a boolean request knob is on, either via its
// query parameter ("1" or "true") or the decoded body field.
func flagged(r *http.Request, name string, body bool) bool {
	if body {
		return true
	}
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true"
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.metrics.CompileRequests.Add(1)
	traceID := s.traceRequest(w, r)
	if !s.requirePost(w, r) {
		return
	}
	var req CompileRequest
	if !s.decode(w, r, &req, traceID) {
		return
	}
	col, err := parseCollector(req.Collector)
	if err != nil {
		s.writeResponse(w, &response{status: http.StatusBadRequest,
			body: errorBody{Error: err.Error(), TraceID: traceID}})
		return
	}
	trace := flagged(r, "trace", false)
	s.submit(w, r, traceID, func() *response {
		t0 := time.Now()
		c, spans, hit, err := s.compiled(req.Source, col)
		if err != nil {
			return &response{status: compileStatus(err), body: errorBody{Error: err.Error(), TraceID: traceID}}
		}
		ms := float64(time.Since(t0)) / float64(time.Millisecond)
		s.metrics.CompileLatency.Observe(ms)
		resp := CompileResponse{
			Collector:  col.String(),
			SourceHash: SourceHash(req.Source),
			Cached:     hit,
			CodeBlocks: len(c.Prog.Code),
			CompileMs:  ms,
			TraceID:    traceID,
		}
		if trace {
			resp.Pipeline = spans
		}
		return &response{status: http.StatusOK, body: resp}
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.metrics.RunRequests.Add(1)
	traceID := s.traceRequest(w, r)
	if !s.requirePost(w, r) {
		return
	}
	var req RunRequest
	if !s.decode(w, r, &req, traceID) {
		return
	}
	col, err := parseCollector(req.Collector)
	if err != nil {
		s.writeResponse(w, &response{status: http.StatusBadRequest,
			body: errorBody{Error: err.Error(), TraceID: traceID}})
		return
	}
	if v := r.URL.Query().Get("engine"); v != "" {
		req.Engine = v
	}
	if req.Engine == "" {
		req.Engine = s.cfg.DefaultEngine
	}
	if _, err := psgc.ParseEngine(req.Engine); err != nil {
		s.writeResponse(w, &response{status: http.StatusBadRequest,
			body: errorBody{Error: err.Error(), TraceID: traceID}})
		return
	}
	if v := r.URL.Query().Get("backend"); v != "" {
		req.Backend = v
	}
	if req.Backend == "" {
		req.Backend = s.cfg.DefaultBackend
	}
	if _, err := regions.ParseBackend(req.Backend); err != nil {
		s.writeResponse(w, &response{status: http.StatusBadRequest,
			body: errorBody{Error: err.Error(), TraceID: traceID}})
		return
	}
	if v := r.URL.Query().Get("policy"); v != "" {
		req.Policy = v
	}
	if req.Policy == "" {
		req.Policy = s.cfg.DefaultPolicy
	}
	if _, err := policy.Parse(req.Policy); err != nil {
		s.writeResponse(w, &response{status: http.StatusBadRequest,
			body: errorBody{Error: err.Error(), TraceID: traceID}})
		return
	}
	req.CoCheck = flagged(r, "cocheck", req.CoCheck)
	trace := flagged(r, "trace", req.Trace)
	stream := flagged(r, "stream", req.Stream)
	// Graceful degradation: when the queue is nearly full, the expensive
	// observability tier (traced and streamed runs) is shed first so plain
	// runs keep landing. 429 + Retry-After, like a full queue.
	if (trace || stream) && s.overloaded() {
		s.metrics.Shed.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeResponse(w, &response{status: http.StatusTooManyRequests,
			body: errorBody{Error: "degraded under load: trace/stream requests are shed, retry later or drop the trace", TraceID: traceID}})
		return
	}
	if stream {
		s.streamRun(w, r, req, col, trace, traceID)
		return
	}
	s.submit(w, r, traceID, func() *response {
		return s.doRun(req, col, trace, traceID, nil, nil)
	})
}

// overloaded reports whether queue utilization has reached the shed
// threshold (the service's degradation mode).
func (s *Server) overloaded() bool {
	if s.cfg.ShedThreshold <= 0 {
		return false
	}
	return float64(s.metrics.QueueDepth.Load()) >= s.cfg.ShedThreshold*float64(s.cfg.QueueDepth)
}

// doRun is the shared run path behind the JSON and SSE variants of /run:
// compile (or fetch), execute with the request's fuel budget, record
// metrics, and shape the response. progress, if non-nil, receives
// execution snapshots and can cancel the run by returning false. cp, if
// non-nil, lets POST /snapshot pause this run at a step boundary; the run
// then answers with a CheckpointedResponse instead of a result.
func (s *Server) doRun(req RunRequest, col psgc.Collector, trace bool, traceID string, progress func(psgc.Progress) bool, cp *psgc.Checkpointer) *response {
	// Validated in handleRun; re-parsed here so doRun stands alone.
	engine, err := psgc.ParseEngine(req.Engine)
	if err != nil {
		return &response{status: http.StatusBadRequest, body: errorBody{Error: err.Error(), TraceID: traceID}}
	}
	backend, err := regions.ParseBackend(req.Backend)
	if err != nil {
		return &response{status: http.StatusBadRequest, body: errorBody{Error: err.Error(), TraceID: traceID}}
	}
	polName, err := policy.Parse(req.Policy)
	if err != nil {
		return &response{status: http.StatusBadRequest, body: errorBody{Error: err.Error(), TraceID: traceID}}
	}
	hash := SourceHash(req.Source)
	// The collector is baked in at link time, so the adaptive decision
	// must land before the compile: the engine turns the hash's
	// accumulated profile into a collector and capacity, falling back to
	// the request's choices for a cold hash.
	capacity := s.cfg.Capacity
	if req.Capacity != nil {
		capacity = *req.Capacity
	}
	var decision *policy.Decision
	if polName == policy.Adaptive {
		d := s.adaptive.Decide(hash, col.String(), capacity)
		s.metrics.PolicyDecisions.Add(1)
		if d.Runs == 0 {
			s.metrics.PolicyCold.Add(1)
		}
		if d.Flipped {
			s.metrics.PolicyFlips.Add(1)
		}
		if dc, err := parseCollector(d.Collector); err == nil {
			col = dc
			s.metrics.PolicyChosen[dc].Add(1)
		}
		capacity = d.Capacity
		decision = &d
	}
	c, spans, hit, err := s.compiled(req.Source, col)
	if err != nil {
		return &response{status: compileStatus(err), body: errorBody{Error: err.Error(), TraceID: traceID}}
	}
	opts := psgc.RunOptions{
		Capacity:      capacity,
		FixedCapacity: req.Fixed,
		Backend:       backend,
		Policy:        polName,
		Decision:      decision,
		Checkpointer:  cp,
		CheckpointMeta: psgc.CheckpointMeta{
			SourceHash: hash,
			TraceID:    traceID,
		},
	}
	diverged := false
	if engine == psgc.EngineEnv {
		if s.guard.breakerOpen(hash) {
			// This program diverged on a co-checked run before: pin it to
			// the oracle. The response's engine field reports the truth.
			engine = psgc.EngineSubst
		} else if req.CoCheck || s.guard.shouldCoCheck() {
			opts.CoCheck = true
			s.metrics.CoCheckRuns.Add(1)
			opts.OnDivergence = func(d psgc.Divergence) {
				diverged = true
				engine = psgc.EngineSubst // the oracle finishes the run
				s.metrics.CoCheckDivergences.Add(1)
				if s.guard.trip(hash, col.String(), traceID, d) {
					s.metrics.BreakersOpen.Add(1)
				}
			}
		}
	}
	opts.Engine = engine
	opts.Fuel = s.fuelBudget(req.Fuel, req.DeadlineMs)
	// Always-on profiling: every run carries the allocation-free profiler
	// and feeds the per-program store the adaptive policy reads.
	prof := c.Profiler()
	opts.Profiler = prof
	var rec *obs.Recorder
	if trace {
		rec = c.Recorder()
		if req.MaxEvents > 0 {
			rec.MaxEvents = req.MaxEvents
		}
		opts.Recorder = rec
	}
	if req.ProgressSteps > 0 {
		opts.ProgressEvery = req.ProgressSteps
	}
	// The watchdog rides the Progress callback: the machine is cut at the
	// first tick past the wall-clock budget and the run is answered as a
	// budgeted partial result instead of a hung worker.
	stalled := false
	if s.cfg.WatchdogMs > 0 {
		deadline := time.Now().Add(time.Duration(s.cfg.WatchdogMs) * time.Millisecond)
		if opts.ProgressEvery == 0 {
			opts.ProgressEvery = watchdogProgressEvery
		}
		inner := progress
		progress = func(p psgc.Progress) bool {
			if time.Now().After(deadline) {
				stalled = true
				return false
			}
			if inner != nil {
				return inner(p)
			}
			return true
		}
	}
	opts.Progress = progress
	var report *TraceReport
	t0 := time.Now()
	res, err := c.Run(opts)
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	s.metrics.RunLatency.Observe(ms)
	s.metrics.MachineSteps[col].Add(int64(res.Steps))
	s.metrics.Collections[col].Add(int64(res.Collections))
	if rec != nil {
		report = &TraceReport{Pipeline: spans, Timeline: rec.Timeline()}
	}
	if err != nil {
		if errors.Is(err, psgc.ErrOutOfFuel) {
			// The deadline (as a fuel budget) expired: report the
			// partial execution so the client can see how far it got.
			s.metrics.Deadlines.Add(1)
			partial := statsOf(res)
			return &response{status: http.StatusGatewayTimeout,
				body: errorBody{Error: err.Error(), Partial: &partial, TraceID: traceID, Trace: report}}
		}
		if errors.Is(err, psgc.ErrCanceled) {
			partial := statsOf(res)
			if stalled {
				s.metrics.WatchdogStalls.Add(1)
				s.guard.incidents.Record(obs.Incident{
					Kind: "watchdog_stall", TraceID: traceID, Subject: hash,
					Detail: fmt.Sprintf("cut after %d steps at the %dms budget", res.Steps, s.cfg.WatchdogMs),
				})
				return &response{status: http.StatusGatewayTimeout,
					body: errorBody{Error: fmt.Sprintf("watchdog: run stalled past %dms; partial result attached", s.cfg.WatchdogMs),
						Partial: &partial, TraceID: traceID, Trace: report}}
			}
			// The streaming client went away mid-run; nobody is left to
			// read this, but classify it as a client-side termination.
			s.metrics.Canceled.Add(1)
			return &response{status: statusClientClosedRequest,
				body: errorBody{Error: err.Error(), Partial: &partial, TraceID: traceID}}
		}
		if errors.Is(err, psgc.ErrCheckpointed) {
			// POST /snapshot paused this run at a step boundary; the
			// checkpoint itself is delivered through the Checkpointer. The
			// stream answers with a "checkpointed" event so relays know the
			// run will continue elsewhere.
			return &response{status: http.StatusOK, body: CheckpointedResponse{
				Checkpointed: true,
				SourceHash:   hash,
				Steps:        res.Steps,
				TraceID:      traceID,
			}}
		}
		return &response{status: http.StatusInternalServerError,
			body: errorBody{Error: err.Error(), TraceID: traceID}}
	}
	// Only completed runs feed the profile store: a partial profile from
	// a fuel- or watchdog-killed run would skew the per-program aggregates
	// the adaptive policy decides from.
	s.adaptive.Observe(hash, col.String(), prof.Profile())
	s.metrics.ProfiledRuns.Add(1)
	if decision != nil {
		// A cold decision was made before the hash had a profile entry to
		// hang it on; now that the run has admitted the hash, re-record it
		// so /healthz shows the decision alongside the fresh profile.
		s.profiles.SetDecision(hash, *decision)
	}
	return &response{status: http.StatusOK, body: RunResponse{
		Value:      res.Value,
		Collector:  col.String(),
		Engine:     engine.String(),
		Backend:    backend.String(),
		SourceHash: hash,
		Cached:     hit,
		Fuel:       opts.Fuel,
		RunMs:      ms,
		CoChecked:  opts.CoCheck,
		Diverged:   diverged,
		Policy:     polName,
		Decision:   decision,
		Stats:      statsOf(res),
		TraceID:    traceID,
		Trace:      report,
	}}
}

// watchdogProgressEvery is the Progress cadence a watchdog-enabled run
// uses when the request did not choose one: frequent enough to catch a
// stall within tens of milliseconds of healthy stepping, coarse enough to
// stay invisible in the latency histograms.
const watchdogProgressEvery = 2_000

// statusClientClosedRequest is nginx's conventional status for a client
// that disconnected before the response (no stdlib constant exists).
const statusClientClosedRequest = 499

// streamRun serves one /run request over Server-Sent Events: "progress"
// events while the machine executes, then a final "result" (or "error")
// event carrying the same JSON body the non-streaming endpoint returns.
// Queue rejection and shutdown still answer with plain JSON status codes —
// the stream only starts once the job is accepted. While the run is live
// it is registered under its trace ID so POST /snapshot can pause it; a
// paused run ends the stream with a "checkpointed" event instead of a
// result.
func (s *Server) streamRun(w http.ResponseWriter, r *http.Request, req RunRequest, col psgc.Collector, trace bool, traceID string) {
	s.metrics.StreamRequests.Add(1)
	cp := psgc.NewCheckpointer()
	s.registerLive(traceID, cp)
	defer s.unregisterLive(traceID)
	s.streamJob(w, r, traceID, func(progress func(psgc.Progress) bool) *response {
		return s.doRun(req, col, trace, traceID, progress, cp)
	})
}

// streamJob runs one pool job over SSE, pumping "progress" events and the
// final "result"/"error"/"checkpointed" event. Shared by /run?stream=1 and
// /resume?stream=1. It reports whether the job was admitted to the pool
// (a rejected job has already been answered with plain JSON).
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, traceID string, run func(progress func(psgc.Progress) bool) *response) bool {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeResponse(w, &response{status: http.StatusInternalServerError,
			body: errorBody{Error: "streaming unsupported by this connection", TraceID: traceID}})
		return false
	}
	var cancelled atomic.Bool
	events := make(chan psgc.Progress, 16)
	j := &job{traceID: traceID, done: make(chan *response, 1)}
	j.do = func() *response {
		defer close(events)
		return run(func(ev psgc.Progress) bool {
			if cancelled.Load() {
				return false
			}
			select {
			case events <- ev:
			default: // never block the machine on a slow client
			}
			return true
		})
	}
	if !s.enqueue(w, j) {
		return false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				events = nil // drained; the final response is next
				continue
			}
			writeSSE(w, fl, "progress", ev)
		case resp := <-j.done:
			s.countOutcome(resp.status)
			name := "result"
			if resp.status >= 400 {
				name = "error"
			} else if _, ck := resp.body.(CheckpointedResponse); ck {
				name = "checkpointed"
			}
			writeSSE(w, fl, name, resp.body)
			return true
		case <-r.Context().Done():
			// Client gone: tell the machine to stop at its next progress
			// tick; the worker finishes into the buffered done channel.
			cancelled.Store(true)
			return true
		}
	}
}

// writeSSE writes one Server-Sent Event with a JSON data payload.
func writeSSE(w io.Writer, fl http.Flusher, event string, data any) {
	b, err := json.Marshal(data)
	if err != nil {
		b = []byte(`{"error":"encode failure"}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	fl.Flush()
}

// fuelBudget resolves a request's fuel: explicit fuel, a deadline mapped
// through StepsPerMilli, or the server default — whichever is smallest of
// those specified.
func (s *Server) fuelBudget(fuel, deadlineMs int) int {
	budget := s.cfg.DefaultFuel
	if fuel > 0 && fuel < budget {
		budget = fuel
	}
	if deadlineMs > 0 {
		if mapped := deadlineMs * s.cfg.StepsPerMilli; mapped < budget {
			budget = mapped
		}
	}
	return budget
}

func (s *Server) handleInterpret(w http.ResponseWriter, r *http.Request) {
	s.metrics.InterpretRequests.Add(1)
	traceID := s.traceRequest(w, r)
	if !s.requirePost(w, r) {
		return
	}
	var req CompileRequest
	if !s.decode(w, r, &req, traceID) {
		return
	}
	s.submit(w, r, traceID, func() *response {
		t0 := time.Now()
		n, err := psgc.Interpret(req.Source)
		s.metrics.InterpretLatency.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
		if err != nil {
			return &response{status: http.StatusBadRequest, body: errorBody{Error: err.Error(), TraceID: traceID}}
		}
		return &response{status: http.StatusOK, body: InterpretResponse{Value: n, TraceID: traceID}}
	})
}

// backendNames lists the memory substrates this build can serve, for the
// healthz inventory.
func backendNames() []string {
	bs := regions.Backends()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.String()
	}
	return names
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	status := "ok"
	if s.shutdown {
		status = "shutting_down"
	}
	s.mu.RUnlock()
	degradation := "normal"
	if s.overloaded() {
		degradation = "shedding_observability"
	}
	probation, protected, _ := s.cache.segments()
	body := map[string]any{
		"status": status,
		// What this node is running and defaulting to (PR 6): when a
		// co-check incident pins a hash to subst, operators need to see at a
		// glance what engine everything else still defaults to, and which
		// build is serving.
		"default_engine": s.cfg.DefaultEngine,
		// The memory substrate this node defaults to, and the ones it can
		// serve (PR 7): ?backend= selects per request.
		"default_backend": s.cfg.DefaultBackend,
		"backends":        backendNames(),
		// The run policy this node defaults to (PR 8): ?policy= selects per
		// request; the adaptive engine's decisions and the profile store
		// feeding it are detailed under "policy" below.
		"default_policy":  s.cfg.DefaultPolicy,
		"policies":        []string{policy.Static, policy.Adaptive},
		"build":           s.build,
		"uptime_ms":       time.Since(s.start).Milliseconds(),
		"workers":         s.cfg.Workers,
		"queue_depth":     s.metrics.QueueDepth.Load(),
		"queue_capacity":  s.cfg.QueueDepth,
		"cache_entries":   s.cache.len(),
		"cache_weight":    s.cache.totalWeight(),
		"cache_probation": probation,
		"cache_protected": protected,
		// Guardrail state (PR 5): the co-check sample rate (live value —
		// PUT /admin/cocheck can retune it), what it has caught, and how
		// degraded the instance currently is.
		"cocheck_sample":      s.guard.sampleRate(),
		"cocheck_divergences": s.metrics.CoCheckDivergences.Load(),
		"open_breakers":       s.guard.openBreakers(),
		"watchdog_ms":         s.cfg.WatchdogMs,
		"watchdog_stalls":     s.metrics.WatchdogStalls.Load(),
		"degradation_mode":    degradation,
		"incidents":           s.guard.incidents.Snapshot(),
	}
	pprob, pprot := s.profiles.Segments()
	body["policy"] = map[string]any{
		"counts":            s.adaptive.Counts(),
		"profiled_runs":     s.metrics.ProfiledRuns.Load(),
		"profiles":          s.profiles.Len(),
		"profile_probation": pprob,
		"profile_protected": pprot,
		"profile_evictions": s.profiles.Evictions(),
		// Per-hash profile summaries with the decision last made for each
		// hash, most-recently-used first.
		"programs": s.profiles.Snapshot(8),
	}
	if pc := s.peer.Load(); pc != nil {
		body["peer_fetch"] = map[string]any{
			"url":    pc.url,
			"self":   pc.self,
			"hits":   s.metrics.PeerHits.Load(),
			"misses": s.metrics.PeerMisses.Load(),
		}
	}
	if reg := fault.Installed(); reg != nil {
		body["chaos"] = reg.Snapshot()
	}
	s.writeResponse(w, &response{status: http.StatusOK, body: body})
}

// wantsPrometheus decides the /metrics representation: the Prometheus text
// exposition for scrape-style requests (Accept: text/plain or OpenMetrics,
// or ?format=prometheus), JSON otherwise.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		s.countOutcome(http.StatusOK)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = s.metrics.WritePrometheus(w)
		return
	}
	s.writeResponse(w, &response{status: http.StatusOK, body: s.metrics.Snapshot()})
}

// countOutcome records a response's outcome class.
func (s *Server) countOutcome(status int) {
	switch {
	case status < 300:
		s.metrics.OK.Add(1)
	case status == http.StatusTooManyRequests:
		// counted at the rejection site
	case status < 500:
		s.metrics.ClientErrors.Add(1)
	default:
		s.metrics.ServerErrors.Add(1)
	}
}

// writeResponse writes one JSON response and records the outcome.
func (s *Server) writeResponse(w http.ResponseWriter, resp *response) {
	s.countOutcome(resp.status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp.body)
}
