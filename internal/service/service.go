// Package service turns the certified-GC compile-and-run pipeline into a
// long-lived concurrent HTTP service — the first scaling step of the
// ROADMAP's production north star, and the verification-as-a-service
// framing of Hawblitzel & Petrank applied to this reproduction: the
// typechecker run that certifies each collector happens once per process
// (collector.Load) and is observable at /metrics, instead of being paid on
// every request.
//
// Endpoints (all request/response bodies are JSON; see README.md):
//
//	POST /compile    compile a program, report cache/typecheck behavior
//	POST /run        compile (or reuse) and execute on the λGC machine
//	POST /interpret  run the reference evaluator (no regions, no GC)
//	GET  /healthz    liveness + queue snapshot
//	GET  /metrics    the full metrics registry
//
// Requests are executed by a bounded worker pool. When the queue is full
// the service sheds load with HTTP 429 rather than queueing unboundedly;
// per-request deadlines are mapped onto machine fuel budgets (the machine
// is deterministic, so steps — not wall clock — are the enforceable
// resource); worker panics become structured 500s; Shutdown drains the
// pool gracefully.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"psgc"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Workers is the worker-pool size (default 4).
	Workers int
	// QueueDepth bounds jobs waiting for a worker; a full queue rejects
	// with 429 (default 64).
	QueueDepth int
	// CacheSize is the compiled-program LRU capacity in entries
	// (default 128).
	CacheSize int
	// Capacity is the default region capacity for /run requests that do
	// not specify one (default 64).
	Capacity int
	// DefaultFuel is the machine step budget for /run requests that
	// specify neither fuel nor a deadline (default psgc.DefaultFuel).
	DefaultFuel int
	// StepsPerMilli converts a request deadline into a fuel budget
	// (default 25000 machine steps per millisecond — conservative for
	// the substitution-based machine).
	StepsPerMilli int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	if c.DefaultFuel <= 0 {
		c.DefaultFuel = psgc.DefaultFuel
	}
	if c.StepsPerMilli <= 0 {
		c.StepsPerMilli = 25_000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server is the compile-and-run service. Create with New, serve via
// ServeHTTP (it is an http.Handler), stop with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	cache   *compiledCache
	metrics *Metrics
	start   time.Time

	// mu guards jobs against Shutdown closing the channel while a
	// request goroutine is submitting.
	mu       sync.RWMutex
	jobs     chan *job
	shutdown bool
	wg       sync.WaitGroup
}

// job is one unit of pool work; done is buffered so an abandoned client
// never blocks a worker.
type job struct {
	do   func() *response
	done chan *response
}

// response is a finished job: an HTTP status plus a JSON-encodable body.
type response struct {
	status int
	body   any
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   newCompiledCache(cfg.CacheSize),
		metrics: &Metrics{},
		start:   time.Now(),
		jobs:    make(chan *job, cfg.QueueDepth),
	}
	s.mux.HandleFunc("/compile", s.handleCompile)
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/interpret", s.handleInterpret)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Metrics exposes the registry (for embedding binaries and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown stops accepting work, drains the queue, and waits for in-flight
// jobs, up to the context's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.shutdown {
		s.shutdown = true
		close(s.jobs)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker drains the job queue, converting panics into structured 500s.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		j.done <- s.runJob(j)
		s.metrics.LeaveQueue()
	}
}

func (s *Server) runJob(j *job) (resp *response) {
	defer func() {
		if p := recover(); p != nil {
			s.metrics.Panics.Add(1)
			resp = &response{status: http.StatusInternalServerError,
				body: errorBody{Error: fmt.Sprintf("internal panic: %v", p), Panic: true}}
		}
	}()
	return j.do()
}

// submit enqueues do on the worker pool and writes its response, shedding
// load with 429 when the queue is full and 503 during shutdown.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, do func() *response) {
	j := &job{do: do, done: make(chan *response, 1)}
	s.mu.RLock()
	if s.shutdown {
		s.mu.RUnlock()
		s.writeResponse(w, &response{status: http.StatusServiceUnavailable,
			body: errorBody{Error: "server is shutting down"}})
		return
	}
	s.metrics.EnterQueue()
	select {
	case s.jobs <- j:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.metrics.LeaveQueue()
		s.metrics.Rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeResponse(w, &response{status: http.StatusTooManyRequests,
			body: errorBody{Error: "queue full, retry later"}})
		return
	}
	select {
	case resp := <-j.done:
		s.writeResponse(w, resp)
	case <-r.Context().Done():
		// Client abandoned the request; the worker finishes into the
		// buffered channel and moves on.
	}
}

// ---------------------------------------------------------------------------
// Request / response shapes
// ---------------------------------------------------------------------------

// CompileRequest is the POST /compile (and /run) source payload.
type CompileRequest struct {
	// Source is the program text of the simply-typed source language.
	Source string `json:"source"`
	// Collector is "basic", "forwarding", or "generational" (default
	// "basic").
	Collector string `json:"collector"`
}

// CompileResponse reports a compilation.
type CompileResponse struct {
	Collector  string  `json:"collector"`
	SourceHash string  `json:"source_hash"`
	Cached     bool    `json:"cached"`
	CodeBlocks int     `json:"code_blocks"`
	CompileMs  float64 `json:"compile_ms"`
}

// RunRequest is the POST /run payload.
type RunRequest struct {
	CompileRequest
	// Capacity overrides the region capacity (nil = server default;
	// 0 disables collection).
	Capacity *int `json:"capacity"`
	// Fixed disables the survivor-driven heap growth policy.
	Fixed bool `json:"fixed"`
	// Fuel bounds machine steps (0 = server default).
	Fuel int `json:"fuel"`
	// DeadlineMs maps a wall-clock budget onto a fuel budget via the
	// server's StepsPerMilli rate; the smaller of Fuel and the mapped
	// budget wins.
	DeadlineMs int `json:"deadline_ms"`
}

// RunStats is the observable execution statistics, present in both
// successful responses and deadline-exceeded diagnostics.
type RunStats struct {
	Steps            int `json:"steps"`
	Collections      int `json:"collections"`
	Puts             int `json:"puts"`
	RegionsReclaimed int `json:"regions_reclaimed"`
	CellsReclaimed   int `json:"cells_reclaimed"`
	MaxLiveCells     int `json:"max_live_cells"`
	LiveCells        int `json:"live_cells"`
}

func statsOf(res psgc.Result) RunStats {
	return RunStats{
		Steps:            res.Steps,
		Collections:      res.Collections,
		Puts:             res.Stats.Puts,
		RegionsReclaimed: res.Stats.RegionsReclaimed,
		CellsReclaimed:   res.Stats.CellsReclaimed,
		MaxLiveCells:     res.Stats.MaxLiveCells,
		LiveCells:        res.LiveCells,
	}
}

// RunResponse reports an execution.
type RunResponse struct {
	Value      int      `json:"value"`
	Collector  string   `json:"collector"`
	SourceHash string   `json:"source_hash"`
	Cached     bool     `json:"cached"`
	Fuel       int      `json:"fuel"`
	RunMs      float64  `json:"run_ms"`
	Stats      RunStats `json:"stats"`
}

// InterpretResponse reports a reference-evaluator run.
type InterpretResponse struct {
	Value int `json:"value"`
}

// errorBody is the structured error payload.
type errorBody struct {
	Error string `json:"error"`
	// Panic marks errors recovered from worker panics.
	Panic bool `json:"panic,omitempty"`
	// Partial carries the statistics of a deadline-killed run.
	Partial *RunStats `json:"partial,omitempty"`
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

func parseCollector(name string) (psgc.Collector, error) {
	switch name {
	case "", "basic":
		return psgc.Basic, nil
	case "forwarding":
		return psgc.Forwarding, nil
	case "generational":
		return psgc.Generational, nil
	default:
		return 0, fmt.Errorf("unknown collector %q (want basic, forwarding, or generational)", name)
	}
}

// decode parses a JSON body with the configured size limit.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.writeResponse(w, &response{status: http.StatusBadRequest,
			body: errorBody{Error: "bad request body: " + err.Error()}})
		return false
	}
	return true
}

func (s *Server) requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeResponse(w, &response{status: http.StatusMethodNotAllowed,
			body: errorBody{Error: "use POST"}})
		return false
	}
	return true
}

// compiled fetches a ready-to-run program from the LRU or compiles and
// caches it. The returned bool reports a cache hit.
func (s *Server) compiled(src string, col psgc.Collector) (*psgc.Compiled, bool, error) {
	k := keyFor(src, col)
	if c, ok := s.cache.get(k); ok {
		s.metrics.CacheHits.Add(1)
		return c, true, nil
	}
	s.metrics.CacheMisses.Add(1)
	c, err := psgc.Compile(src, col)
	if err != nil {
		return nil, false, err
	}
	if n := s.cache.add(k, c); n > 0 {
		s.metrics.CacheEvicted.Add(int64(n))
	}
	return c, false, nil
}

// compileStatus maps a compile error onto an HTTP status: errors in the
// user's program are 400s; a pipeline bug (the compiled program failing
// λGC typechecking, a broken collector) is a 500.
func compileStatus(err error) int {
	if strings.Contains(err.Error(), "internal error") {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.metrics.CompileRequests.Add(1)
	if !s.requirePost(w, r) {
		return
	}
	var req CompileRequest
	if !s.decode(w, r, &req) {
		return
	}
	col, err := parseCollector(req.Collector)
	if err != nil {
		s.writeResponse(w, &response{status: http.StatusBadRequest, body: errorBody{Error: err.Error()}})
		return
	}
	s.submit(w, r, func() *response {
		t0 := time.Now()
		c, hit, err := s.compiled(req.Source, col)
		if err != nil {
			return &response{status: compileStatus(err), body: errorBody{Error: err.Error()}}
		}
		ms := float64(time.Since(t0)) / float64(time.Millisecond)
		s.metrics.CompileLatency.Observe(ms)
		return &response{status: http.StatusOK, body: CompileResponse{
			Collector:  col.String(),
			SourceHash: SourceHash(req.Source),
			Cached:     hit,
			CodeBlocks: len(c.Prog.Code),
			CompileMs:  ms,
		}}
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.metrics.RunRequests.Add(1)
	if !s.requirePost(w, r) {
		return
	}
	var req RunRequest
	if !s.decode(w, r, &req) {
		return
	}
	col, err := parseCollector(req.Collector)
	if err != nil {
		s.writeResponse(w, &response{status: http.StatusBadRequest, body: errorBody{Error: err.Error()}})
		return
	}
	s.submit(w, r, func() *response {
		c, hit, err := s.compiled(req.Source, col)
		if err != nil {
			return &response{status: compileStatus(err), body: errorBody{Error: err.Error()}}
		}
		opts := psgc.RunOptions{Capacity: s.cfg.Capacity, FixedCapacity: req.Fixed}
		if req.Capacity != nil {
			opts.Capacity = *req.Capacity
		}
		opts.Fuel = s.fuelBudget(req.Fuel, req.DeadlineMs)
		t0 := time.Now()
		res, err := c.Run(opts)
		ms := float64(time.Since(t0)) / float64(time.Millisecond)
		s.metrics.RunLatency.Observe(ms)
		s.metrics.MachineSteps[col].Add(int64(res.Steps))
		s.metrics.Collections[col].Add(int64(res.Collections))
		if err != nil {
			if errors.Is(err, psgc.ErrOutOfFuel) {
				// The deadline (as a fuel budget) expired: report the
				// partial execution so the client can see how far it got.
				s.metrics.Deadlines.Add(1)
				partial := statsOf(res)
				return &response{status: http.StatusGatewayTimeout,
					body: errorBody{Error: err.Error(), Partial: &partial}}
			}
			return &response{status: http.StatusInternalServerError, body: errorBody{Error: err.Error()}}
		}
		return &response{status: http.StatusOK, body: RunResponse{
			Value:      res.Value,
			Collector:  col.String(),
			SourceHash: SourceHash(req.Source),
			Cached:     hit,
			Fuel:       opts.Fuel,
			RunMs:      ms,
			Stats:      statsOf(res),
		}}
	})
}

// fuelBudget resolves a request's fuel: explicit fuel, a deadline mapped
// through StepsPerMilli, or the server default — whichever is smallest of
// those specified.
func (s *Server) fuelBudget(fuel, deadlineMs int) int {
	budget := s.cfg.DefaultFuel
	if fuel > 0 && fuel < budget {
		budget = fuel
	}
	if deadlineMs > 0 {
		if mapped := deadlineMs * s.cfg.StepsPerMilli; mapped < budget {
			budget = mapped
		}
	}
	return budget
}

func (s *Server) handleInterpret(w http.ResponseWriter, r *http.Request) {
	s.metrics.InterpretRequests.Add(1)
	if !s.requirePost(w, r) {
		return
	}
	var req CompileRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.submit(w, r, func() *response {
		n, err := psgc.Interpret(req.Source)
		if err != nil {
			return &response{status: http.StatusBadRequest, body: errorBody{Error: err.Error()}}
		}
		return &response{status: http.StatusOK, body: InterpretResponse{Value: n}}
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	status := "ok"
	if s.shutdown {
		status = "shutting_down"
	}
	s.mu.RUnlock()
	s.writeResponse(w, &response{status: http.StatusOK, body: map[string]any{
		"status":         status,
		"uptime_ms":      time.Since(s.start).Milliseconds(),
		"workers":        s.cfg.Workers,
		"queue_depth":    s.metrics.QueueDepth.Load(),
		"queue_capacity": s.cfg.QueueDepth,
		"cache_entries":  s.cache.len(),
	}})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeResponse(w, &response{status: http.StatusOK, body: s.metrics.Snapshot()})
}

// writeResponse writes one JSON response and records the outcome.
func (s *Server) writeResponse(w http.ResponseWriter, resp *response) {
	switch {
	case resp.status < 300:
		s.metrics.OK.Add(1)
	case resp.status == http.StatusTooManyRequests:
		// counted at the rejection site
	case resp.status < 500:
		s.metrics.ClientErrors.Add(1)
	default:
		s.metrics.ServerErrors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp.body)
}
