package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"psgc/internal/obs"
)

// TestQueueHighTideConcurrent hammers EnterQueue/LeaveQueue from many
// goroutines; under -race this is the contract that the gauge and the
// high-tide CAS loop are safe, and the final state must be exact.
func TestQueueHighTideConcurrent(t *testing.T) {
	var m Metrics
	const workers = 32
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
	)
	start.Add(1)
	done.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			for j := 0; j < 200; j++ {
				m.EnterQueue()
				m.LeaveQueue()
			}
		}()
	}
	start.Done()
	done.Wait()
	if d := m.QueueDepth.Load(); d != 0 {
		t.Errorf("queue depth %d after balanced enter/leave, want 0", d)
	}
	high := m.QueueHighTide.Load()
	if high < 1 || high > workers {
		t.Errorf("high tide %d, want within [1, %d]", high, workers)
	}
}

// TestHighTideNeverDecreases pins the CAS loop against a racing larger
// value: the mark only moves up.
func TestHighTideNeverDecreases(t *testing.T) {
	var m Metrics
	for i := 0; i < 5; i++ {
		m.EnterQueue()
	}
	for i := 0; i < 5; i++ {
		m.LeaveQueue()
	}
	m.EnterQueue()
	m.LeaveQueue()
	if high := m.QueueHighTide.Load(); high != 5 {
		t.Errorf("high tide %d after peak of 5, want 5", high)
	}
}

// TestHistogramBuckets pins the boundary semantics: bounds are inclusive
// upper bounds (le), so an observation exactly on a bound lands in that
// bound's bucket.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(1)    // le=1 bucket (first)
	h.Observe(1.5)  // le=2
	h.Observe(5000) // le=5000 (last finite)
	h.Observe(5001) // overflow
	h.Observe(0)    // le=1

	wantCounts := map[int]int64{0: 2, 1: 1, len(histBounds) - 1: 1, len(histBounds): 1}
	for i := range h.counts {
		want := wantCounts[i]
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d count %d, want %d", i, got, want)
		}
	}
	if n := h.count.Load(); n != 5 {
		t.Errorf("count %d, want 5", n)
	}

	snap := h.snapshot()
	if snap["count"].(int64) != 5 {
		t.Errorf("snapshot count = %v", snap["count"])
	}
	buckets := snap["buckets_ms"].(map[string]int64)
	if buckets["1"] != 2 || buckets["2"] != 1 || buckets["+Inf"] != 1 {
		t.Errorf("snapshot buckets = %v", buckets)
	}
}

// fixedMetrics returns a registry with deterministic values for the golden
// renderings.
func fixedMetrics() *Metrics {
	var m Metrics
	m.CompileRequests.Store(2)
	m.RunRequests.Store(5)
	m.InterpretRequests.Store(1)
	m.StreamRequests.Store(1)
	m.OK.Store(7)
	m.ClientErrors.Store(1)
	m.QueueHighTide.Store(3)
	m.CacheHits.Store(4)
	m.CacheMisses.Store(2)
	m.CacheCoalesced.Store(1)
	m.MachineSteps[1].Store(1000)
	m.Collections[1].Store(6)
	m.RunLatency.Observe(1.5)
	m.RunLatency.Observe(30)
	return &m
}

// TestSnapshotJSONGolden pins the JSON rendering's shape and the
// deterministic values. The collector_typechecks block is process-global
// (it depends on which tests compiled first), so only its presence is
// checked.
func TestSnapshotJSONGolden(t *testing.T) {
	snap := fixedMetrics().Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}

	reqs := round["requests"].(map[string]any)
	for key, want := range map[string]float64{"compile": 2, "run": 5, "interpret": 1, "stream": 1} {
		if got := reqs[key].(float64); got != want {
			t.Errorf("requests.%s = %v, want %v", key, got, want)
		}
	}
	cache := round["compiled_cache"].(map[string]any)
	for key, want := range map[string]float64{"hits": 4, "misses": 2, "coalesced": 1, "evicted": 0} {
		if got := cache[key].(float64); got != want {
			t.Errorf("compiled_cache.%s = %v, want %v", key, got, want)
		}
	}
	if _, ok := round["collector_typechecks"].(map[string]any); !ok {
		t.Errorf("snapshot lacks collector_typechecks")
	}
	lat := round["run_latency_ms"].(map[string]any)
	if got := lat["count"].(float64); got != 2 {
		t.Errorf("run latency count = %v, want 2", got)
	}
	if got := lat["sum_ms"].(float64); got != 31.5 {
		t.Errorf("run latency sum = %v, want 31.5", got)
	}
	forw := round["per_collector"].(map[string]any)["forwarding"].(map[string]any)
	if forw["machine_steps"].(float64) != 1000 || forw["collections"].(float64) != 6 {
		t.Errorf("per_collector.forwarding = %v", forw)
	}
}

// TestWritePrometheusGolden pins the exposition line by line, excluding the
// process-global typecheck counters whose values depend on test order.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedMetrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "typechecks") {
			continue
		}
		got = append(got, line)
	}
	want := strings.Split(`# HELP psgc_requests_total Requests received, by endpoint.
# TYPE psgc_requests_total counter
psgc_requests_total{endpoint="compile"} 2
psgc_requests_total{endpoint="run"} 5
psgc_requests_total{endpoint="interpret"} 1
# HELP psgc_stream_requests_total Run requests served over SSE.
# TYPE psgc_stream_requests_total counter
psgc_stream_requests_total 1
# HELP psgc_responses_total Responses sent, by outcome.
# TYPE psgc_responses_total counter
psgc_responses_total{outcome="ok"} 7
psgc_responses_total{outcome="client_error"} 1
psgc_responses_total{outcome="server_error"} 0
psgc_responses_total{outcome="rejected"} 0
psgc_responses_total{outcome="deadline"} 0
psgc_responses_total{outcome="panic"} 0
# HELP psgc_queue_depth Jobs waiting or running right now.
# TYPE psgc_queue_depth gauge
psgc_queue_depth 0
# HELP psgc_queue_high_tide Maximum observed queue depth.
# TYPE psgc_queue_high_tide gauge
psgc_queue_high_tide 3
# HELP psgc_compiled_cache_total Compiled-program LRU events.
# TYPE psgc_compiled_cache_total counter
psgc_compiled_cache_total{event="hit"} 4
psgc_compiled_cache_total{event="miss"} 2
psgc_compiled_cache_total{event="coalesced"} 1
psgc_compiled_cache_total{event="evicted"} 0
# HELP psgc_machine_steps_total Machine transitions executed, by collector.
# TYPE psgc_machine_steps_total counter
psgc_machine_steps_total{collector="basic"} 0
psgc_machine_steps_total{collector="forwarding"} 1000
psgc_machine_steps_total{collector="generational"} 0
# HELP psgc_collections_total Collector invocations, by collector.
# TYPE psgc_collections_total counter
psgc_collections_total{collector="basic"} 0
psgc_collections_total{collector="forwarding"} 6
psgc_collections_total{collector="generational"} 0`, "\n")

	// The latency histograms follow; spot-check the run histogram rather
	// than pinning every zero bucket.
	if len(got) < len(want) {
		t.Fatalf("exposition too short: %d lines, want at least %d:\n%s", len(got), len(want), buf.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\ngot:  %q\nwant: %q", i+1, got[i], want[i])
		}
	}
	text := buf.String()
	for _, line := range []string{
		`psgc_run_latency_ms_bucket{le="2"} 1`,
		`psgc_run_latency_ms_bucket{le="50"} 2`,
		`psgc_run_latency_ms_bucket{le="+Inf"} 2`,
		`psgc_run_latency_ms_sum 31.5`,
		`psgc_run_latency_ms_count 2`,
		`psgc_interpret_latency_ms_count 0`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("exposition lacks %q", line)
		}
	}

	// And the whole thing must be scrapeable by the validating parser.
	if _, err := obs.ParseExposition(buf.Bytes()); err != nil {
		t.Errorf("exposition does not parse: %v", err)
	}
}
