package service

import (
	"encoding/json"
	"sync/atomic"

	"psgc/internal/collector"
	"psgc/internal/gclang"
)

// Metrics is the service's lightweight metrics registry: atomic counters,
// gauges, and fixed-bucket latency histograms, rendered as JSON at
// GET /metrics. It deliberately avoids external metrics dependencies —
// everything is stdlib atomics.
type Metrics struct {
	// Per-endpoint request counters.
	CompileRequests   atomic.Int64
	RunRequests       atomic.Int64
	InterpretRequests atomic.Int64

	// Outcome counters.
	OK           atomic.Int64 // 2xx responses
	ClientErrors atomic.Int64 // 4xx responses other than 429
	ServerErrors atomic.Int64 // 5xx responses
	Rejected     atomic.Int64 // 429: queue full
	Deadlines    atomic.Int64 // runs killed by the fuel budget
	Panics       atomic.Int64 // worker panics converted to 500s

	// Queue and cache state.
	QueueDepth    atomic.Int64 // jobs waiting or running right now (gauge)
	QueueHighTide atomic.Int64 // max observed queue depth
	CacheHits     atomic.Int64 // compiled-program LRU hits
	CacheMisses   atomic.Int64 // compiled-program LRU misses
	CacheEvicted  atomic.Int64 // LRU evictions

	// Machine traffic, per collector (indexed by psgc.Collector).
	MachineSteps [3]atomic.Int64
	Collections  [3]atomic.Int64

	// Latency histograms.
	CompileLatency Histogram
	RunLatency     Histogram
}

// EnterQueue records a job entering the queue and maintains the high-tide
// mark.
func (m *Metrics) EnterQueue() {
	d := m.QueueDepth.Add(1)
	for {
		high := m.QueueHighTide.Load()
		if d <= high || m.QueueHighTide.CompareAndSwap(high, d) {
			return
		}
	}
}

// LeaveQueue records a job leaving the queue (done or abandoned).
func (m *Metrics) LeaveQueue() { m.QueueDepth.Add(-1) }

// histBounds are the histogram bucket upper bounds in milliseconds; the
// final implicit bucket is +Inf.
var histBounds = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Histogram is a fixed-bucket latency histogram over milliseconds.
type Histogram struct {
	counts [len(histBounds) + 1]atomic.Int64
	count  atomic.Int64
	sumUs  atomic.Int64 // sum in microseconds, to keep atomics integral
}

// Observe records one measurement, in milliseconds.
func (h *Histogram) Observe(ms float64) {
	i := 0
	for i < len(histBounds) && ms > histBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumUs.Add(int64(ms * 1000))
}

// snapshot renders the histogram for JSON.
func (h *Histogram) snapshot() map[string]any {
	buckets := make(map[string]int64, len(histBounds)+1)
	for i, b := range histBounds {
		buckets[formatFloat(b)] = h.counts[i].Load()
	}
	buckets["+Inf"] = h.counts[len(histBounds)].Load()
	n := h.count.Load()
	out := map[string]any{
		"count":      n,
		"sum_ms":     float64(h.sumUs.Load()) / 1000,
		"buckets_ms": buckets,
	}
	if n > 0 {
		out["mean_ms"] = float64(h.sumUs.Load()) / 1000 / float64(n)
	}
	return out
}

func formatFloat(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

// Snapshot renders the whole registry as a JSON-encodable map. The
// verified-collector typecheck counters come straight from the collector
// package, making the once-per-process certification observable.
func (m *Metrics) Snapshot() map[string]any {
	perCollector := map[string]any{}
	for i, name := range []string{"basic", "forwarding", "generational"} {
		perCollector[name] = map[string]int64{
			"machine_steps": m.MachineSteps[i].Load(),
			"collections":   m.Collections[i].Load(),
		}
	}
	return map[string]any{
		"requests": map[string]int64{
			"compile":   m.CompileRequests.Load(),
			"run":       m.RunRequests.Load(),
			"interpret": m.InterpretRequests.Load(),
		},
		"responses": map[string]int64{
			"ok":            m.OK.Load(),
			"client_errors": m.ClientErrors.Load(),
			"server_errors": m.ServerErrors.Load(),
			"rejected":      m.Rejected.Load(),
			"deadlines":     m.Deadlines.Load(),
			"panics":        m.Panics.Load(),
		},
		"queue": map[string]int64{
			"depth":     m.QueueDepth.Load(),
			"high_tide": m.QueueHighTide.Load(),
		},
		"compiled_cache": map[string]int64{
			"hits":    m.CacheHits.Load(),
			"misses":  m.CacheMisses.Load(),
			"evicted": m.CacheEvicted.Load(),
		},
		"collector_typechecks": map[string]int64{
			"basic":        collector.Typechecks(gclang.Base),
			"forwarding":   collector.Typechecks(gclang.Forw),
			"generational": collector.Typechecks(gclang.Gen),
		},
		"per_collector":      perCollector,
		"compile_latency_ms": m.CompileLatency.snapshot(),
		"run_latency_ms":     m.RunLatency.snapshot(),
	}
}
