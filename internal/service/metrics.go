package service

import (
	"encoding/json"
	"io"
	"sync/atomic"

	"psgc/internal/collector"
	"psgc/internal/gclang"
	"psgc/internal/obs"
)

// Metrics is the service's lightweight metrics registry: atomic counters,
// gauges, and fixed-bucket latency histograms, rendered as JSON at
// GET /metrics. It deliberately avoids external metrics dependencies —
// everything is stdlib atomics.
type Metrics struct {
	// Per-endpoint request counters. StreamRequests counts the subset of
	// run requests served over SSE.
	CompileRequests   atomic.Int64
	RunRequests       atomic.Int64
	InterpretRequests atomic.Int64
	StreamRequests    atomic.Int64

	// Outcome counters.
	OK           atomic.Int64 // 2xx responses
	ClientErrors atomic.Int64 // 4xx responses other than 429
	ServerErrors atomic.Int64 // 5xx responses
	Rejected     atomic.Int64 // 429: queue full
	Deadlines    atomic.Int64 // runs killed by the fuel budget
	Panics       atomic.Int64 // worker panics converted to 500s

	// Queue and cache state.
	QueueDepth     atomic.Int64 // jobs waiting or running right now (gauge)
	QueueHighTide  atomic.Int64 // max observed queue depth
	CacheHits      atomic.Int64 // compiled-program LRU hits
	CacheMisses    atomic.Int64 // LRU misses that actually compiled
	CacheCoalesced atomic.Int64 // LRU misses that joined an in-flight compile
	CacheEvicted   atomic.Int64 // LRU evictions

	// Machine traffic, per collector (indexed by psgc.Collector).
	MachineSteps [3]atomic.Int64
	Collections  [3]atomic.Int64

	// Guardrail counters (PR 5).
	CoCheckRuns        atomic.Int64 // runs co-stepped against the oracle
	CoCheckDivergences atomic.Int64 // co-checked runs that diverged
	BreakersOpen       atomic.Int64 // per-program circuit breakers open (gauge)
	WatchdogStalls     atomic.Int64 // runs cut short by the wall-clock watchdog
	Shed               atomic.Int64 // trace/stream requests shed under overload
	Canceled           atomic.Int64 // runs canceled by client disconnect

	// Fleet counters (PR 6): the peer compiled-program cache tier and the
	// batch endpoint.
	PeerHits         atomic.Int64 // local cache misses satisfied by a peer's entry
	PeerMisses       atomic.Int64 // peer fetches that found nothing and fell back to compiling
	PeerImportErrors atomic.Int64 // peer payloads rejected by the certifying import
	PeerExports      atomic.Int64 // compiled entries served to peers via /cache/export
	BatchRequests    atomic.Int64 // /batch requests
	BatchItems       atomic.Int64 // run items carried by /batch requests

	// Checkpoint/resume counters (PR 10): POST /snapshot pauses, blob
	// resumes, and the restore path's defenses.
	Snapshots        atomic.Int64 // runs paused and serialized by POST /snapshot
	SnapshotMisses   atomic.Int64 // snapshot requests that found no live run or timed out
	Resumes          atomic.Int64 // checkpoints resumed by POST /resume
	ResumesRejected  atomic.Int64 // blobs the certifying decoder refused (422)
	ResumesDuplicate atomic.Int64 // duplicate resumes of an already-resumed snapshot (409)

	// Adaptive-policy counters (PR 8). PolicyChosen is indexed by the
	// decided psgc.Collector.
	ProfiledRuns    atomic.Int64    // completed runs folded into the profile store
	PolicyDecisions atomic.Int64    // adaptive decisions made
	PolicyCold      atomic.Int64    // decisions that fell back (no profile yet)
	PolicyFlips     atomic.Int64    // decisions perturbed by the policy.flip fault
	PolicyChosen    [3]atomic.Int64 // decisions by chosen collector

	// Latency histograms.
	CompileLatency   Histogram
	RunLatency       Histogram
	InterpretLatency Histogram
}

// EnterQueue records a job entering the queue and maintains the high-tide
// mark.
func (m *Metrics) EnterQueue() {
	d := m.QueueDepth.Add(1)
	for {
		high := m.QueueHighTide.Load()
		if d <= high || m.QueueHighTide.CompareAndSwap(high, d) {
			return
		}
	}
}

// LeaveQueue records a job leaving the queue (done or abandoned).
func (m *Metrics) LeaveQueue() { m.QueueDepth.Add(-1) }

// histBounds are the histogram bucket upper bounds in milliseconds; the
// final implicit bucket is +Inf.
var histBounds = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Histogram is a fixed-bucket latency histogram over milliseconds.
type Histogram struct {
	counts [len(histBounds) + 1]atomic.Int64
	count  atomic.Int64
	sumUs  atomic.Int64 // sum in microseconds, to keep atomics integral
}

// Observe records one measurement, in milliseconds.
func (h *Histogram) Observe(ms float64) {
	i := 0
	for i < len(histBounds) && ms > histBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumUs.Add(int64(ms * 1000))
}

// snapshot renders the histogram for JSON.
func (h *Histogram) snapshot() map[string]any {
	buckets := make(map[string]int64, len(histBounds)+1)
	for i, b := range histBounds {
		buckets[formatFloat(b)] = h.counts[i].Load()
	}
	buckets["+Inf"] = h.counts[len(histBounds)].Load()
	n := h.count.Load()
	out := map[string]any{
		"count":      n,
		"sum_ms":     float64(h.sumUs.Load()) / 1000,
		"buckets_ms": buckets,
	}
	if n > 0 {
		out["mean_ms"] = float64(h.sumUs.Load()) / 1000 / float64(n)
	}
	return out
}

func formatFloat(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

// Snapshot renders the whole registry as a JSON-encodable map. The
// verified-collector typecheck counters come straight from the collector
// package, making the once-per-process certification observable.
func (m *Metrics) Snapshot() map[string]any {
	perCollector := map[string]any{}
	for i, name := range []string{"basic", "forwarding", "generational"} {
		perCollector[name] = map[string]int64{
			"machine_steps": m.MachineSteps[i].Load(),
			"collections":   m.Collections[i].Load(),
		}
	}
	return map[string]any{
		"requests": map[string]int64{
			"compile":   m.CompileRequests.Load(),
			"run":       m.RunRequests.Load(),
			"interpret": m.InterpretRequests.Load(),
			"stream":    m.StreamRequests.Load(),
		},
		"responses": map[string]int64{
			"ok":            m.OK.Load(),
			"client_errors": m.ClientErrors.Load(),
			"server_errors": m.ServerErrors.Load(),
			"rejected":      m.Rejected.Load(),
			"deadlines":     m.Deadlines.Load(),
			"panics":        m.Panics.Load(),
		},
		"queue": map[string]int64{
			"depth":     m.QueueDepth.Load(),
			"high_tide": m.QueueHighTide.Load(),
		},
		"compiled_cache": map[string]int64{
			"hits":      m.CacheHits.Load(),
			"misses":    m.CacheMisses.Load(),
			"coalesced": m.CacheCoalesced.Load(),
			"evicted":   m.CacheEvicted.Load(),
		},
		"collector_typechecks": map[string]int64{
			"basic":        collector.Typechecks(gclang.Base),
			"forwarding":   collector.Typechecks(gclang.Forw),
			"generational": collector.Typechecks(gclang.Gen),
		},
		"guardrails": map[string]int64{
			"cocheck_runs":        m.CoCheckRuns.Load(),
			"cocheck_divergences": m.CoCheckDivergences.Load(),
			"breakers_open":       m.BreakersOpen.Load(),
			"watchdog_stalls":     m.WatchdogStalls.Load(),
			"shed":                m.Shed.Load(),
			"canceled":            m.Canceled.Load(),
		},
		"peer_cache": map[string]int64{
			"hits":          m.PeerHits.Load(),
			"misses":        m.PeerMisses.Load(),
			"import_errors": m.PeerImportErrors.Load(),
			"exports":       m.PeerExports.Load(),
		},
		"batch": map[string]int64{
			"requests": m.BatchRequests.Load(),
			"items":    m.BatchItems.Load(),
		},
		"checkpoint": map[string]int64{
			"snapshots":         m.Snapshots.Load(),
			"snapshot_misses":   m.SnapshotMisses.Load(),
			"resumes":           m.Resumes.Load(),
			"resumes_rejected":  m.ResumesRejected.Load(),
			"resumes_duplicate": m.ResumesDuplicate.Load(),
		},
		"policy": map[string]any{
			"profiled_runs": m.ProfiledRuns.Load(),
			"decisions":     m.PolicyDecisions.Load(),
			"cold":          m.PolicyCold.Load(),
			"flips":         m.PolicyFlips.Load(),
			"chosen": map[string]int64{
				"basic":        m.PolicyChosen[0].Load(),
				"forwarding":   m.PolicyChosen[1].Load(),
				"generational": m.PolicyChosen[2].Load(),
			},
		},
		"per_collector":        perCollector,
		"compile_latency_ms":   m.CompileLatency.snapshot(),
		"run_latency_ms":       m.RunLatency.snapshot(),
		"interpret_latency_ms": m.InterpretLatency.snapshot(),
	}
}

// collectorNames and collectorDialects index psgc.Collector values for the
// per-collector families.
var (
	collectorNames    = [...]string{"basic", "forwarding", "generational"}
	collectorDialects = [...]gclang.Dialect{gclang.Base, gclang.Forw, gclang.Gen}
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (the content-negotiated GET /metrics alternative to Snapshot's
// JSON). Families are written in a fixed order so the output is
// byte-stable for golden tests.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	p := obs.NewPromWriter(w)
	p.Counter("psgc_requests_total", "Requests received, by endpoint.",
		obs.Sample{Labels: []obs.Label{{Name: "endpoint", Value: "compile"}}, Value: float64(m.CompileRequests.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "endpoint", Value: "run"}}, Value: float64(m.RunRequests.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "endpoint", Value: "interpret"}}, Value: float64(m.InterpretRequests.Load())},
	)
	p.Counter("psgc_stream_requests_total", "Run requests served over SSE.",
		obs.Sample{Value: float64(m.StreamRequests.Load())})
	p.Counter("psgc_responses_total", "Responses sent, by outcome.",
		obs.Sample{Labels: []obs.Label{{Name: "outcome", Value: "ok"}}, Value: float64(m.OK.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "outcome", Value: "client_error"}}, Value: float64(m.ClientErrors.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "outcome", Value: "server_error"}}, Value: float64(m.ServerErrors.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "outcome", Value: "rejected"}}, Value: float64(m.Rejected.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "outcome", Value: "deadline"}}, Value: float64(m.Deadlines.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "outcome", Value: "panic"}}, Value: float64(m.Panics.Load())},
	)
	p.Gauge("psgc_queue_depth", "Jobs waiting or running right now.",
		obs.Sample{Value: float64(m.QueueDepth.Load())})
	p.Gauge("psgc_queue_high_tide", "Maximum observed queue depth.",
		obs.Sample{Value: float64(m.QueueHighTide.Load())})
	p.Counter("psgc_compiled_cache_total", "Compiled-program LRU events.",
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "hit"}}, Value: float64(m.CacheHits.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "miss"}}, Value: float64(m.CacheMisses.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "coalesced"}}, Value: float64(m.CacheCoalesced.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "evicted"}}, Value: float64(m.CacheEvicted.Load())},
	)
	typechecks := make([]obs.Sample, 0, len(collectorNames))
	steps := make([]obs.Sample, 0, len(collectorNames))
	collections := make([]obs.Sample, 0, len(collectorNames))
	for i, name := range collectorNames {
		label := []obs.Label{{Name: "collector", Value: name}}
		typechecks = append(typechecks, obs.Sample{Labels: label,
			Value: float64(collector.Typechecks(collectorDialects[i]))})
		steps = append(steps, obs.Sample{Labels: label, Value: float64(m.MachineSteps[i].Load())})
		collections = append(collections, obs.Sample{Labels: label, Value: float64(m.Collections[i].Load())})
	}
	p.Counter("psgc_collector_typechecks_total",
		"Collector build-and-verify runs (the verified-collector cache keeps this at 1).",
		typechecks...)
	p.Counter("psgc_machine_steps_total", "Machine transitions executed, by collector.", steps...)
	p.Counter("psgc_collections_total", "Collector invocations, by collector.", collections...)
	p.Counter("psgc_cocheck_runs_total", "Runs co-stepped against the substitution oracle.",
		obs.Sample{Value: float64(m.CoCheckRuns.Load())})
	p.Counter("psgc_cocheck_divergences_total", "Co-checked runs where the engines diverged.",
		obs.Sample{Value: float64(m.CoCheckDivergences.Load())})
	p.Gauge("psgc_breakers_open", "Per-program circuit breakers currently open.",
		obs.Sample{Value: float64(m.BreakersOpen.Load())})
	p.Counter("psgc_watchdog_stalls_total", "Runs cut short by the wall-clock watchdog.",
		obs.Sample{Value: float64(m.WatchdogStalls.Load())})
	p.Counter("psgc_shed_total", "Trace/stream requests shed under overload.",
		obs.Sample{Value: float64(m.Shed.Load())})
	p.Counter("psgc_canceled_total", "Runs canceled by client disconnect.",
		obs.Sample{Value: float64(m.Canceled.Load())})
	p.Counter("psgc_peer_cache_total", "Peer compiled-program cache tier events.",
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "hit"}}, Value: float64(m.PeerHits.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "miss"}}, Value: float64(m.PeerMisses.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "import_error"}}, Value: float64(m.PeerImportErrors.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "export"}}, Value: float64(m.PeerExports.Load())},
	)
	p.Counter("psgc_batch_requests_total", "Batch requests received.",
		obs.Sample{Value: float64(m.BatchRequests.Load())})
	p.Counter("psgc_batch_items_total", "Run items carried by batch requests.",
		obs.Sample{Value: float64(m.BatchItems.Load())})
	p.Counter("psgc_checkpoint_total", "Checkpoint/resume events, by kind.",
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "snapshot"}}, Value: float64(m.Snapshots.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "snapshot_miss"}}, Value: float64(m.SnapshotMisses.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "resume"}}, Value: float64(m.Resumes.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "resume_rejected"}}, Value: float64(m.ResumesRejected.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "resume_duplicate"}}, Value: float64(m.ResumesDuplicate.Load())},
	)
	p.Counter("psgc_profiled_runs_total", "Completed runs folded into the profile store.",
		obs.Sample{Value: float64(m.ProfiledRuns.Load())})
	p.Counter("psgc_policy_decisions_total", "Adaptive policy decisions, by outcome.",
		obs.Sample{Labels: []obs.Label{{Name: "outcome", Value: "decided"}}, Value: float64(m.PolicyDecisions.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "outcome", Value: "cold"}}, Value: float64(m.PolicyCold.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "outcome", Value: "flipped"}}, Value: float64(m.PolicyFlips.Load())},
	)
	chosen := make([]obs.Sample, 0, len(collectorNames))
	for i, name := range collectorNames {
		chosen = append(chosen, obs.Sample{Labels: []obs.Label{{Name: "collector", Value: name}},
			Value: float64(m.PolicyChosen[i].Load())})
	}
	p.Counter("psgc_policy_chosen_total", "Adaptive policy decisions, by chosen collector.", chosen...)
	m.CompileLatency.writeProm(p, "psgc_compile_latency_ms", "Compile latency in milliseconds.")
	m.RunLatency.writeProm(p, "psgc_run_latency_ms", "Run latency in milliseconds.")
	m.InterpretLatency.writeProm(p, "psgc_interpret_latency_ms", "Interpret latency in milliseconds.")
	return p.Err()
}

// writeProm renders the histogram as a Prometheus histogram family.
func (h *Histogram) writeProm(p *obs.PromWriter, name, help string) {
	counts := make([]int64, len(histBounds)+1)
	for i := range counts {
		counts[i] = h.counts[i].Load()
	}
	p.Histogram(name, help, histBounds[:], counts, float64(h.sumUs.Load())/1000)
}
