package service

// POST /batch: run many programs in one request. Each item becomes its own
// worker-pool job, so the pool's existing per-job machinery — panic
// recovery, watchdog stalls, fuel budgets, breakers — isolates failures to
// the item that caused them: a batch response is well-formed even when half
// its items panicked. Items land on the queue under the same admission
// policy as single runs; when the queue fills mid-batch the remaining items
// are rejected per-item with 429 bodies rather than failing the whole batch.

import (
	"fmt"
	"net/http"

	"psgc"
	"psgc/internal/obs"
	"psgc/internal/policy"
	"psgc/internal/regions"
)

// BatchRequest is the POST /batch payload: an ordered list of run items.
type BatchRequest struct {
	Items []RunRequest `json:"items"`
}

// BatchItemResult is one item's outcome, in input order. Exactly one of
// Run and Error is set, matching what /run would have returned for the
// item on its own; Status is the HTTP status /run would have used.
type BatchItemResult struct {
	Status int          `json:"status"`
	Run    *RunResponse `json:"run,omitempty"`
	Error  *errorBody   `json:"error,omitempty"`
}

// BatchResponse reports a whole batch. The response status is 200 whenever
// the batch itself was admitted, even if every item failed — per-item
// outcomes live in Items.
type BatchResponse struct {
	TraceID   string            `json:"trace_id"`
	Items     []BatchItemResult `json:"items"`
	Completed int               `json:"completed"`
	Failed    int               `json:"failed"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.BatchRequests.Add(1)
	traceID := s.traceRequest(w, r)
	if !s.requirePost(w, r) {
		return
	}
	var req BatchRequest
	if !s.decode(w, r, &req, traceID) {
		return
	}
	if len(req.Items) == 0 {
		s.writeResponse(w, &response{status: http.StatusBadRequest,
			body: errorBody{Error: "batch has no items", TraceID: traceID}})
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.writeResponse(w, &response{status: http.StatusBadRequest,
			body: errorBody{Error: fmt.Sprintf("batch has %d items, max %d", len(req.Items), s.cfg.MaxBatchItems), TraceID: traceID}})
		return
	}
	s.metrics.BatchItems.Add(int64(len(req.Items)))

	// Fan the items out onto the pool. Validation failures and queue
	// rejections resolve immediately; admitted items resolve through their
	// job's done channel. pending[i] is nil for already-resolved items.
	results := make([]BatchItemResult, len(req.Items))
	pending := make([]*job, len(req.Items))
	for i, item := range req.Items {
		itemID := obs.NewTraceID()
		if item.Stream {
			results[i] = batchItemError(http.StatusBadRequest,
				errorBody{Error: "stream is not supported inside a batch", TraceID: itemID})
			continue
		}
		col, err := parseCollector(item.Collector)
		if err != nil {
			results[i] = batchItemError(http.StatusBadRequest,
				errorBody{Error: err.Error(), TraceID: itemID})
			continue
		}
		if item.Engine == "" {
			item.Engine = s.cfg.DefaultEngine
		}
		if _, err := psgc.ParseEngine(item.Engine); err != nil {
			results[i] = batchItemError(http.StatusBadRequest,
				errorBody{Error: err.Error(), TraceID: itemID})
			continue
		}
		if item.Backend == "" {
			item.Backend = s.cfg.DefaultBackend
		}
		if _, err := regions.ParseBackend(item.Backend); err != nil {
			results[i] = batchItemError(http.StatusBadRequest,
				errorBody{Error: err.Error(), TraceID: itemID})
			continue
		}
		if item.Policy == "" {
			item.Policy = s.cfg.DefaultPolicy
		}
		if _, err := policy.Parse(item.Policy); err != nil {
			results[i] = batchItemError(http.StatusBadRequest,
				errorBody{Error: err.Error(), TraceID: itemID})
			continue
		}
		item := item // each job closes over its own copy
		j := &job{
			do:      func() *response { return s.doRun(item, col, item.Trace, itemID, nil, nil) },
			done:    make(chan *response, 1),
			traceID: itemID,
		}
		switch s.tryEnqueue(j) {
		case enqueueShutdown:
			// A draining instance admits nothing further; the items already
			// queued still finish below, and the unqueued tail is reported
			// item-by-item so the partial batch stays well-formed.
			results[i] = batchItemError(http.StatusServiceUnavailable,
				errorBody{Error: "server is shutting down", TraceID: itemID})
		case enqueueFull:
			results[i] = batchItemError(http.StatusTooManyRequests,
				errorBody{Error: "queue full, retry later", TraceID: itemID})
		default:
			pending[i] = j
		}
	}
	for i, j := range pending {
		if j == nil {
			continue
		}
		resp := <-j.done
		results[i] = batchItemResult(resp)
	}

	out := BatchResponse{TraceID: traceID, Items: results}
	for _, it := range results {
		if it.Error != nil {
			out.Failed++
		} else {
			out.Completed++
		}
	}
	s.writeResponse(w, &response{status: http.StatusOK, body: out})
}

func batchItemError(status int, body errorBody) BatchItemResult {
	return BatchItemResult{Status: status, Error: &body}
}

// batchItemResult converts a worker response into the item shape. Worker
// bodies are either RunResponse (success) or errorBody (every failure
// path, including recovered panics and watchdog cuts).
func batchItemResult(resp *response) BatchItemResult {
	switch b := resp.body.(type) {
	case RunResponse:
		return BatchItemResult{Status: resp.status, Run: &b}
	case errorBody:
		return BatchItemResult{Status: resp.status, Error: &b}
	default:
		return BatchItemResult{Status: resp.status,
			Error: &errorBody{Error: fmt.Sprintf("unexpected worker response %T", resp.body)}}
	}
}
