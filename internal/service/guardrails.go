package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"psgc"
	"psgc/internal/obs"
)

// guardrails is the runtime-protection state layered over the worker pool:
// the co-check sampler, the per-program circuit breakers, and the incident
// log they feed. The paper's soundness theorems say a verified collector
// cannot corrupt the heap; the guardrails are the operational analogue —
// if the fast engine ever disagrees with the substitution oracle on a
// sampled run, the request is served by the oracle and the program is
// pinned to it until an operator intervenes.
type guardrails struct {
	// sampleEvery co-checks every Nth env-engine run (deterministic
	// counter-based sampling, so tests and capacity planning see an exact
	// rate); 0 disables co-checking. Atomic because PUT /admin/cocheck
	// retunes it on a live server.
	sampleEvery atomic.Int64
	counter     atomic.Int64

	mu sync.Mutex
	// breakers maps a program's source hash to its open breaker. A breaker
	// opens on the first observed divergence and stays open until an
	// operator clears it (DELETE /admin/breakers): a program that diverged
	// once is evidence of an engine bug, and correctness beats speed until
	// someone looks.
	breakers  map[string]*breakerState
	incidents *obs.IncidentLog
}

// breakerState describes one open per-program circuit breaker, as
// surfaced in /healthz.
type breakerState struct {
	SourceHash  string    `json:"source_hash"`
	Collector   string    `json:"collector"`
	OpenedAt    time.Time `json:"opened_at"`
	Divergences int       `json:"divergences"`
	LastDetail  string    `json:"last_detail"`
}

// newGuardrails builds the guardrail state. incidents may be nil for a
// plain in-memory log; the server passes a persistent one when
// Config.IncidentDir is set.
func newGuardrails(sample float64, incidents *obs.IncidentLog) *guardrails {
	if incidents == nil {
		incidents = obs.NewIncidentLog(0)
	}
	g := &guardrails{
		breakers:  map[string]*breakerState{},
		incidents: incidents,
	}
	g.setSample(sample)
	return g
}

// setSample retunes the co-check sample rate (clamped to [0,1]; 0
// disables).
func (g *guardrails) setSample(sample float64) {
	var every int64
	if sample > 0 {
		if sample > 1 {
			sample = 1
		}
		every = int64(1/sample + 0.5)
		if every < 1 {
			every = 1
		}
	}
	g.sampleEvery.Store(every)
}

// sampleRate reports the effective co-check rate (1/sampleEvery).
func (g *guardrails) sampleRate() float64 {
	every := g.sampleEvery.Load()
	if every <= 0 {
		return 0
	}
	return 1 / float64(every)
}

// shouldCoCheck reports whether this env-engine run is in the sample.
func (g *guardrails) shouldCoCheck() bool {
	every := g.sampleEvery.Load()
	if every <= 0 {
		return false
	}
	return (g.counter.Add(1)-1)%every == 0
}

// breakerOpen reports whether the program's breaker is open.
func (g *guardrails) breakerOpen(hash string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, open := g.breakers[hash]
	return open
}

// trip records a divergence: an incident in the log and an opened (or
// re-confirmed) breaker. Reports whether this call newly opened one.
func (g *guardrails) trip(hash, col, traceID string, d psgc.Divergence) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.incidents.Record(obs.Incident{
		Kind:    "engine_divergence",
		TraceID: traceID,
		Subject: hash,
		Detail:  d.String(),
	})
	if b, ok := g.breakers[hash]; ok {
		b.Divergences++
		b.LastDetail = d.Detail
		return false
	}
	g.breakers[hash] = &breakerState{
		SourceHash:  hash,
		Collector:   col,
		OpenedAt:    time.Now(),
		Divergences: 1,
		LastDetail:  d.Detail,
	}
	return true
}

// clearBreakers closes the breaker for one hash ("" clears them all),
// recording the operator action as an incident. Reports how many closed.
func (g *guardrails) clearBreakers(hash, traceID string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	if hash == "" {
		n = len(g.breakers)
		g.breakers = map[string]*breakerState{}
	} else if _, ok := g.breakers[hash]; ok {
		delete(g.breakers, hash)
		n = 1
	}
	if n > 0 {
		g.incidents.Record(obs.Incident{
			Kind:    "breaker_cleared",
			TraceID: traceID,
			Subject: hash,
			Detail:  fmt.Sprintf("operator cleared %d breaker(s)", n),
		})
	}
	return n
}

// openBreakers lists the open breakers sorted by source hash, for /healthz.
func (g *guardrails) openBreakers() []breakerState {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]breakerState, 0, len(g.breakers))
	for _, b := range g.breakers {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SourceHash < out[j].SourceHash })
	return out
}
