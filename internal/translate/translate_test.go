package translate

import (
	"strings"
	"testing"

	"psgc/internal/clos"
	"psgc/internal/collector"
	"psgc/internal/gclang"
	"psgc/internal/source"
	"psgc/internal/tags"
)

// link builds the collector for a dialect and returns the layout and
// options for Translate.
func link(d gclang.Dialect) (*collector.Layout, Options) {
	l := &collector.Layout{}
	opts := Options{Dialect: d}
	switch d {
	case gclang.Base:
		b := collector.BuildBasic(l)
		opts.GC = l.Addr(b.GC)
	case gclang.Forw:
		f := collector.BuildForw(l)
		opts.GC = l.Addr(f.GC)
	case gclang.Gen:
		g := collector.BuildGen(l)
		opts.Minor = l.Addr(g.Minor)
		opts.Major = l.Addr(g.Major)
	}
	return l, opts
}

// sample is a λCLOS program using pairs, packages, arithmetic, if0, and a
// function call; result 42.
func sample() clos.Program {
	addfn := clos.FunDef{
		Name: "addfn", Param: "p",
		ParamType: tags.Prod{L: tags.Int{}, R: tags.Int{}},
		Body: clos.LetProj{X: "a", I: 1, V: clos.Var{Name: "p"},
			Body: clos.LetProj{X: "b", I: 2, V: clos.Var{Name: "p"},
				Body: clos.LetArith{X: "s", Op: source.OpAdd, L: clos.Var{Name: "a"}, R: clos.Var{Name: "b"},
					Body: clos.Halt{V: clos.Var{Name: "s"}}}}},
	}
	pk := clos.Pack{Bound: "t", Witness: tags.Int{},
		Val:  clos.PairV{L: clos.Num{N: 2}, R: clos.Num{N: 40}},
		Body: tags.Prod{L: tags.Var{Name: "t"}, R: tags.Int{}}}
	main := clos.LetVal{X: "c", V: pk,
		Body: clos.Open{V: clos.Var{Name: "c"}, T: "u", X: "w",
			Body: clos.LetProj{X: "x2", I: 2, V: clos.Var{Name: "w"},
				Body: clos.If0{V: clos.Num{N: 0},
					Then: clos.LetVal{X: "pa", V: clos.PairV{L: clos.Num{N: 2}, R: clos.Var{Name: "x2"}},
						Body: clos.App{Fn: clos.FunV{Name: "addfn"}, Arg: clos.Var{Name: "pa"}}},
					Else: clos.Halt{V: clos.Num{N: 0}}}}}}
	return clos.Program{Funs: []clos.FunDef{addfn}, Main: main}
}

func TestTranslateAllDialects(t *testing.T) {
	p := sample()
	want, _, err := clos.Run(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []gclang.Dialect{gclang.Base, gclang.Forw, gclang.Gen} {
		l, opts := link(d)
		gp, err := Translate(p, l, opts)
		if err != nil {
			t.Fatalf("%v: translate: %v", d, err)
		}
		checker := &gclang.Checker{Dialect: d}
		elab, _, err := checker.CheckProgram(gp)
		if err != nil {
			t.Fatalf("%v: translated program does not typecheck: %v", d, err)
		}
		m := gclang.NewMachine(d, elab, 0)
		n, err := m.RunInt(1_000_000)
		if err != nil {
			t.Fatalf("%v: run: %v", d, err)
		}
		if n != want {
			t.Fatalf("%v: result %d, want %d", d, n, want)
		}
	}
}

func TestTranslateInsertsGCChecks(t *testing.T) {
	p := sample()
	l, opts := link(gclang.Base)
	gp, err := Translate(p, l, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The translated addfn must begin with ifgc calling the collector
	// with itself and its argument (Fig. 3).
	fun := gp.Code[l.Offset("addfn")].Fun
	ifgc, ok := fun.Body.(gclang.IfGCT)
	if !ok {
		t.Fatalf("translated function does not start with ifgc: %s", fun.Body)
	}
	call, ok := ifgc.Full.(gclang.AppT)
	if !ok {
		t.Fatalf("ifgc full-branch is not a collector call: %s", ifgc.Full)
	}
	if a, ok := call.Fn.(gclang.AddrV); !ok || a != opts.GC {
		t.Errorf("full-branch calls %s, want the collector entry", call.Fn)
	}
	if len(call.Args) != 2 {
		t.Errorf("collector call has %d args, want (self, argument)", len(call.Args))
	}
	if self, ok := call.Args[0].(gclang.AddrV); !ok || self != l.Addr("addfn") {
		t.Errorf("collector restart continuation is %s, want the function itself", call.Args[0])
	}
}

func TestTranslateGenUsesTwoChecks(t *testing.T) {
	p := sample()
	l, opts := link(gclang.Gen)
	gp, err := Translate(p, l, opts)
	if err != nil {
		t.Fatal(err)
	}
	fun := gp.Code[l.Offset("addfn")].Fun
	outer, ok := fun.Body.(gclang.IfGCT)
	if !ok {
		t.Fatalf("gen function does not start with ifgc")
	}
	if _, ok := outer.Else.(gclang.IfGCT); !ok {
		t.Fatalf("gen function lacks the second (minor) ifgc check")
	}
	s := fun.String()
	if !strings.Contains(s, "ifgc ro") || !strings.Contains(s, "ifgc ry") {
		t.Errorf("gen checks do not test both generations:\n%s", s)
	}
}

func TestRepresentations(t *testing.T) {
	// A pair allocation translates to a plain cell (base), an inl-tagged
	// cell (forw), and a region package around a nursery cell (gen).
	p := clos.Program{Main: clos.LetVal{X: "x",
		V:    clos.PairV{L: clos.Num{N: 1}, R: clos.Num{N: 2}},
		Body: clos.Halt{V: clos.Num{N: 0}}}}
	find := func(d gclang.Dialect) string {
		l, opts := link(d)
		gp, err := Translate(p, l, opts)
		if err != nil {
			t.Fatal(err)
		}
		return gp.Main.String()
	}
	base := find(gclang.Base)
	if strings.Contains(base, "inl") || strings.Contains(base, "∈") {
		t.Errorf("base representation has tag bits or region packages:\n%s", base)
	}
	forw := find(gclang.Forw)
	if !strings.Contains(forw, "inl") {
		t.Errorf("forw representation lacks the inl tag bit:\n%s", forw)
	}
	gen := find(gclang.Gen)
	if !strings.Contains(gen, "∈") {
		t.Errorf("gen representation lacks the region package:\n%s", gen)
	}
}

func TestTranslateRejectsIllTypedInput(t *testing.T) {
	bad := clos.Program{Main: clos.Halt{V: clos.Var{Name: "nope"}}}
	l, opts := link(gclang.Base)
	if _, err := Translate(bad, l, opts); err == nil {
		t.Errorf("ill-typed λCLOS accepted")
	}
}
