// Package translate implements the λCLOS → λGC translation of Fig. 3 and
// its §7/§8 variants: every data operation is rewritten to allocate into /
// fetch from the current region, and every function begins with an ifgc
// check that hands the function itself and its argument — the complete
// root set, thanks to CPS and closure conversion — to the collector.
//
// The dialect selects the data representation the M operator imposes:
//
//	Base: pairs and packages are plain region cells.
//	Forw: every boxed object carries an inl tag bit, reserving the
//	      distinguishing bit the collector needs for forwarding pointers.
//	Gen:  every boxed object is wrapped in a bounded region existential
//	      ∃r∈{ry,ro}, and allocation always targets the nursery.
package translate

import (
	"fmt"

	"psgc/internal/clos"
	"psgc/internal/collector"
	"psgc/internal/gclang"
	"psgc/internal/kinds"
	"psgc/internal/names"
	"psgc/internal/source"
	"psgc/internal/tags"
)

// Options configures a translation.
type Options struct {
	Dialect gclang.Dialect

	// Layout receives the translated mutator functions; it must already
	// contain the collector for the dialect. Entry addresses:
	GC    gclang.AddrV // base/forw collector entry
	Minor gclang.AddrV // gen: minor collection entry
	Major gclang.AddrV // gen: major collection entry
}

// Translate compiles a λCLOS program to λGC. The mutator's code blocks
// are appended to opts.Layout and the returned program's Code is the
// layout's full block list (collector first, mutator after).
func Translate(p clos.Program, l *collector.Layout, opts Options) (gclang.Program, error) {
	if err := clos.CheckProgram(p); err != nil {
		return gclang.Program{}, fmt.Errorf("translate: input: %w", err)
	}
	tr := &translator{opts: opts, layout: l,
		funs: map[names.Name]tags.Tag{}}
	for _, f := range p.Funs {
		tr.funs[f.Name] = tags.Code{Args: []tags.Tag{f.ParamType}}
	}
	// Reserve offsets for all mutator functions first (mutual recursion).
	for _, f := range p.Funs {
		l.Add(f.Name, gclang.LamV{})
	}
	for _, f := range p.Funs {
		fun, err := tr.fun(f)
		if err != nil {
			return gclang.Program{}, fmt.Errorf("translate: in %s: %w", f.Name, err)
		}
		l.Funs[l.Offset(f.Name)].Fun = fun
	}
	main, err := tr.main(p.Main)
	if err != nil {
		return gclang.Program{}, fmt.Errorf("translate: in main: %w", err)
	}
	return gclang.Program{Code: l.Funs, Main: main}, nil
}

type translator struct {
	opts   Options
	layout *collector.Layout
	funs   map[names.Name]tags.Tag
	supply names.Supply
}

// regionNames returns the mutator's region parameter names for the
// dialect ("r" for base/forw, "ry"/"ro" for gen).
func (tr *translator) regionNames() []names.Name {
	if tr.opts.Dialect == gclang.Gen {
		return []names.Name{"ry", "ro"}
	}
	return []names.Name{"r"}
}

func (tr *translator) regions() []gclang.Region {
	ns := tr.regionNames()
	out := make([]gclang.Region, len(ns))
	for i, n := range ns {
		out[i] = gclang.RVar{Name: n}
	}
	return out
}

// allocRegion is where the mutator allocates: the current region, or the
// nursery in the generational dialect.
func (tr *translator) allocRegion() gclang.Region { return tr.regions()[0] }

// mType is the dialect's M type for a tag at the mutator's regions.
func (tr *translator) mType(tag tags.Tag) gclang.Type {
	return gclang.MT{Rs: tr.regions(), Tag: tag}
}

// ctx carries the λCLOS typing environment through the translation; the
// generational representation needs component tags at allocation sites.
type ctx struct {
	env *clos.Env
}

func (tr *translator) newCtx(gamma map[names.Name]tags.Tag) *ctx {
	g := make(map[names.Name]tags.Tag, len(gamma))
	for k, v := range gamma {
		g[k] = v
	}
	return &ctx{env: &clos.Env{Theta: tags.KindEnv{}, Gamma: g, Funs: tr.funs}}
}

// wrap is a term-building prefix accumulated while translating values.
type wrap func(gclang.Term) gclang.Term

func idWrap(e gclang.Term) gclang.Term { return e }

func compose(a, b wrap) wrap {
	return func(e gclang.Term) gclang.Term { return a(b(e)) }
}

// value translates a λCLOS value, returning a binding prefix, the λGC
// value, and the value's λCLOS type (tag).
func (tr *translator) value(c *ctx, v clos.Value) (wrap, gclang.Value, tags.Tag, error) {
	switch v := v.(type) {
	case clos.Num:
		return idWrap, gclang.Num{N: v.N}, tags.Int{}, nil
	case clos.Var:
		t, ok := c.env.Gamma[v.Name]
		if !ok {
			return nil, nil, nil, fmt.Errorf("unbound variable %s", v.Name)
		}
		return idWrap, gclang.Var{Name: v.Name}, t, nil
	case clos.FunV:
		t, ok := tr.funs[v.Name]
		if !ok {
			return nil, nil, nil, fmt.Errorf("unknown function %s", v.Name)
		}
		return idWrap, tr.layout.Addr(v.Name), t, nil
	case clos.PairV:
		w1, g1, t1, err := tr.value(c, v.L)
		if err != nil {
			return nil, nil, nil, err
		}
		w2, g2, t2, err := tr.value(c, v.R)
		if err != nil {
			return nil, nil, nil, err
		}
		pre := compose(w1, w2)
		raw := gclang.Value(gclang.PairV{L: g1, R: g2})
		tag := tags.Tag(tags.Prod{L: t1, R: t2})
		w, gv := tr.alloc(pre, raw, tr.boxBody(tag))
		return w, gv, tag, nil
	case clos.Pack:
		wv, gv, _, err := tr.value(c, v.Val)
		if err != nil {
			return nil, nil, nil, err
		}
		tag := tags.Tag(tags.Exist{Bound: v.Bound, Body: v.Body})
		pk := gclang.PackTag{
			Bound: v.Bound, Kind: kinds.Omega{}, Tag: v.Witness, Val: gv,
			Body: tr.packBodyType(v.Body),
		}
		w, out := tr.alloc(wv, pk, tr.boxBody(tag))
		return w, out, tag, nil
	default:
		panic(fmt.Sprintf("translate: unknown value %T", v))
	}
}

// packBodyType is the type annotation of a translated existential
// package's payload: M at the current regions of the (open) body tag.
// In the gen dialect the cell is allocated in the nursery, so the young
// index is the nursery region itself.
func (tr *translator) packBodyType(body tags.Tag) gclang.Type {
	return tr.mType(body)
}

// boxBody returns, for the gen dialect, the region-existential body type
// of a boxed object of the given tag; nil in other dialects.
func (tr *translator) boxBody(tag tags.Tag) gclang.Type {
	if tr.opts.Dialect != gclang.Gen {
		return nil
	}
	rp := gclang.Region(gclang.RVar{Name: "rp"})
	ro := tr.regions()[1]
	switch t := tags.MustNormalize(tag).(type) {
	case tags.Prod:
		return gclang.ProdT{
			L: gclang.MT{Rs: []gclang.Region{rp, ro}, Tag: t.L},
			R: gclang.MT{Rs: []gclang.Region{rp, ro}, Tag: t.R},
		}
	case tags.Exist:
		return gclang.ExistT{Bound: t.Bound, Kind: kinds.Omega{},
			Body: gclang.MT{Rs: []gclang.Region{rp, ro}, Tag: t.Body}}
	default:
		panic(fmt.Sprintf("translate: boxBody on unboxed tag %s", tag))
	}
}

// alloc emits the dialect-specific allocation of a boxed object.
func (tr *translator) alloc(pre wrap, raw gclang.Value, genBody gclang.Type) (wrap, gclang.Value) {
	x := tr.supply.Fresh("h")
	switch tr.opts.Dialect {
	case gclang.Forw:
		raw = gclang.InlV{Val: raw}
	}
	if tr.opts.Dialect == gclang.Gen {
		pkName := tr.supply.Fresh("hp")
		w := func(e gclang.Term) gclang.Term {
			return pre(gclang.LetT{X: x, Op: gclang.PutOp{R: tr.allocRegion(), V: raw},
				Body: gclang.LetT{X: pkName, Op: gclang.ValOp{V: gclang.PackRegion{
					Bound: "rp", Delta: tr.regions(), R: tr.allocRegion(),
					Val: gclang.Var{Name: x}, Body: genBody,
				}}, Body: e}})
		}
		return w, gclang.Var{Name: pkName}
	}
	w := func(e gclang.Term) gclang.Term {
		return pre(gclang.LetT{X: x, Op: gclang.PutOp{R: tr.allocRegion(), V: raw}, Body: e})
	}
	return w, gclang.Var{Name: x}
}

// deref emits the dialect-specific fetch of a boxed object, binding the
// raw (pair or package) content to a fresh name passed to k.
func (tr *translator) deref(gv gclang.Value, k func(raw gclang.Value) gclang.Term) gclang.Term {
	y := tr.supply.Fresh("d")
	switch tr.opts.Dialect {
	case gclang.Base:
		return gclang.LetT{X: y, Op: gclang.GetOp{V: gv}, Body: k(gclang.Var{Name: y})}
	case gclang.Forw:
		s := tr.supply.Fresh("s")
		return gclang.LetT{X: y, Op: gclang.GetOp{V: gv},
			Body: gclang.LetT{X: s, Op: gclang.StripOp{V: gclang.Var{Name: y}},
				Body: k(gclang.Var{Name: s})}}
	default: // Gen
		rx := tr.supply.Fresh("rx")
		xp := tr.supply.Fresh("xp")
		return gclang.OpenRegionT{V: gv, R: rx, X: xp,
			Body: gclang.LetT{X: y, Op: gclang.GetOp{V: gclang.Var{Name: xp}},
				Body: k(gclang.Var{Name: y})}}
	}
}

// term translates a λCLOS term.
func (tr *translator) term(c *ctx, e clos.Term) (gclang.Term, error) {
	switch e := e.(type) {
	case clos.LetVal:
		w, gv, t, err := tr.value(c, e.V)
		if err != nil {
			return nil, err
		}
		c.env.Gamma[e.X] = t
		body, err := tr.term(c, e.Body)
		delete(c.env.Gamma, e.X)
		if err != nil {
			return nil, err
		}
		return w(gclang.LetT{X: e.X, Op: gclang.ValOp{V: gv}, Body: body}), nil
	case clos.LetProj:
		w, gv, t, err := tr.value(c, e.V)
		if err != nil {
			return nil, err
		}
		nf, err := tags.Normalize(t)
		if err != nil {
			return nil, err
		}
		p, ok := nf.(tags.Prod)
		if !ok {
			return nil, fmt.Errorf("projection from non-pair tag %s", nf)
		}
		picked := p.L
		if e.I == 2 {
			picked = p.R
		}
		c.env.Gamma[e.X] = picked
		body, err := tr.term(c, e.Body)
		delete(c.env.Gamma, e.X)
		if err != nil {
			return nil, err
		}
		return w(tr.deref(gv, func(raw gclang.Value) gclang.Term {
			return gclang.LetT{X: e.X, Op: gclang.ProjOp{I: e.I, V: raw}, Body: body}
		})), nil
	case clos.LetArith:
		wl, gl, _, err := tr.value(c, e.L)
		if err != nil {
			return nil, err
		}
		wr, gr, _, err := tr.value(c, e.R)
		if err != nil {
			return nil, err
		}
		c.env.Gamma[e.X] = tags.Int{}
		body, err := tr.term(c, e.Body)
		delete(c.env.Gamma, e.X)
		if err != nil {
			return nil, err
		}
		var kind gclang.ArithKind
		switch e.Op {
		case source.OpAdd:
			kind = gclang.Add
		case source.OpSub:
			kind = gclang.Sub
		case source.OpMul:
			kind = gclang.Mul
		}
		return compose(wl, wr)(gclang.LetT{X: e.X,
			Op: gclang.ArithOp{Kind: kind, L: gl, R: gr}, Body: body}), nil
	case clos.App:
		wf, gf, _, err := tr.value(c, e.Fn)
		if err != nil {
			return nil, err
		}
		wa, ga, _, err := tr.value(c, e.Arg)
		if err != nil {
			return nil, err
		}
		return compose(wf, wa)(gclang.AppT{Fn: gf, Rs: tr.regions(), Args: []gclang.Value{ga}}), nil
	case clos.Open:
		w, gv, t, err := tr.value(c, e.V)
		if err != nil {
			return nil, err
		}
		nf, err := tags.Normalize(t)
		if err != nil {
			return nil, err
		}
		ex, ok := nf.(tags.Exist)
		if !ok {
			return nil, fmt.Errorf("open of non-existential tag %s", nf)
		}
		c.env.Theta[e.T] = kinds.Omega{}
		c.env.Gamma[e.X] = tags.Subst(ex.Body, ex.Bound, tags.Var{Name: e.T})
		body, err := tr.term(c, e.Body)
		delete(c.env.Gamma, e.X)
		delete(c.env.Theta, e.T)
		if err != nil {
			return nil, err
		}
		return w(tr.deref(gv, func(raw gclang.Value) gclang.Term {
			return gclang.OpenTagT{V: raw, T: e.T, X: e.X, Body: body}
		})), nil
	case clos.If0:
		w, gv, _, err := tr.value(c, e.V)
		if err != nil {
			return nil, err
		}
		thn, err := tr.term(c, e.Then)
		if err != nil {
			return nil, err
		}
		els, err := tr.term(c, e.Else)
		if err != nil {
			return nil, err
		}
		return w(gclang.If0T{V: gv, Then: thn, Else: els}), nil
	case clos.Halt:
		w, gv, _, err := tr.value(c, e.V)
		if err != nil {
			return nil, err
		}
		return w(gclang.HaltT{V: gv}), nil
	default:
		panic(fmt.Sprintf("translate: unknown term %T", e))
	}
}

// fun translates a λCLOS function, inserting the ifgc collection check of
// Fig. 3: if the allocation region is full, call the collector with this
// very function as the return continuation and the argument as the root.
func (tr *translator) fun(f clos.FunDef) (gclang.LamV, error) {
	c := tr.newCtx(map[names.Name]tags.Tag{f.Param: f.ParamType})
	body, err := tr.term(c, f.Body)
	if err != nil {
		return gclang.LamV{}, err
	}
	self := tr.layout.Addr(f.Name)
	x := gclang.Var{Name: f.Param}
	var checked gclang.Term
	switch tr.opts.Dialect {
	case gclang.Gen:
		minor := gclang.AppT{Fn: tr.opts.Minor, Tags: []tags.Tag{f.ParamType},
			Rs: tr.regions(), Args: []gclang.Value{self, x}}
		major := gclang.AppT{Fn: tr.opts.Major, Tags: []tags.Tag{f.ParamType},
			Rs: tr.regions(), Args: []gclang.Value{self, x}}
		checked = gclang.IfGCT{R: tr.regions()[1], Full: major,
			Else: gclang.IfGCT{R: tr.regions()[0], Full: minor, Else: body}}
	default:
		gcCall := gclang.AppT{Fn: tr.opts.GC, Tags: []tags.Tag{f.ParamType},
			Rs: tr.regions(), Args: []gclang.Value{self, x}}
		checked = gclang.IfGCT{R: tr.regions()[0], Full: gcCall, Else: body}
	}
	return gclang.LamV{
		RParams: tr.regionNames(),
		Params:  []gclang.Param{{Name: f.Param, Ty: tr.mType(f.ParamType)}},
		Body:    checked,
	}, nil
}

// main translates the main term, allocating the initial region(s).
func (tr *translator) main(e clos.Term) (gclang.Term, error) {
	c := tr.newCtx(nil)
	body, err := tr.term(c, e)
	if err != nil {
		return nil, err
	}
	if tr.opts.Dialect == gclang.Gen {
		return gclang.LetRegionT{R: "ry", Body: gclang.LetRegionT{R: "ro", Body: body}}, nil
	}
	return gclang.LetRegionT{R: "r", Body: body}, nil
}
