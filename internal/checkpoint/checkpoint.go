// Package checkpoint is the versioned, self-validating wire format for a
// paused run: the machine image (control state, environment, pools, heap
// image with region pattern words), the elaborated program it executes,
// the attached profiler's aggregate state, and the run metadata needed to
// resume it — collector, backend, engine, fuel remaining, trace identity.
//
// The format is defensive end to end, mirroring the peer compiled-entry
// cache: a SHA-256 trailer covers every preceding byte, the header carries
// a machine-state fingerprint plus region/cell counts that are recomputed
// from the decoded body, and the decoded image itself is re-validated
// cell-by-cell (and the program re-typechecked) by the layers above before
// anything runs. A truncated, bit-flipped, or malicious blob is rejected
// with an error — never a panic, never a silently wrong resumed run.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"psgc/internal/gclang"
	"psgc/internal/obs"
)

func init() { gclang.RegisterGob() }

// FormatVersion is bumped whenever the blob layout or any serialized type
// changes incompatibly; decoding any other version is refused.
const FormatVersion = 1

// magic opens every checkpoint blob.
var magic = [8]byte{'p', 's', 'g', 'c', 'c', 'k', 'p', '1'}

// Header is the checkpoint metadata, serialized ahead of the body. Every
// field that is derivable from the body (steps, fingerprint, counts) is
// recomputed at decode time and must match — corruption that survives the
// checksum (or a mismatched header/body splice) is detected here.
type Header struct {
	FormatVersion int
	SourceHash    string
	Collector     string
	Backend       string
	Engine        string
	TraceID       string
	Steps         int
	Collections   int
	FuelRemaining int

	// CellSum fingerprints the machine image (heap layout and cells,
	// pooled cells, environment bindings); Regions and Cells count the
	// heap image.
	CellSum uint64
	Regions int
	Cells   int
}

// Snapshot is a complete paused run. Collector, Backend, and Engine are
// carried as names so this package stays below the psgc root package.
type Snapshot struct {
	SourceHash    string
	Collector     string
	Backend       string
	Engine        string
	TraceID       string
	Collections   int
	FuelRemaining int

	Machine  gclang.MachineImage
	Profiler *obs.ProfilerImage
	Program  gclang.Program
}

func heapCells(s *Snapshot) int {
	n := 0
	for i := range s.Machine.Heap.Regions {
		n += len(s.Machine.Heap.Regions[i].Cells)
	}
	return n
}

// Encode serializes the snapshot: magic, big-endian format version, one
// gob stream holding the header then the body, and a SHA-256 trailer over
// everything preceding it.
func Encode(s *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	var ver [4]byte
	binary.BigEndian.PutUint32(ver[:], FormatVersion)
	buf.Write(ver[:])
	enc := gob.NewEncoder(&buf)
	h := Header{
		FormatVersion: FormatVersion,
		SourceHash:    s.SourceHash,
		Collector:     s.Collector,
		Backend:       s.Backend,
		Engine:        s.Engine,
		TraceID:       s.TraceID,
		Steps:         s.Machine.Steps,
		Collections:   s.Collections,
		FuelRemaining: s.FuelRemaining,
		CellSum:       s.Machine.Fingerprint(),
		Regions:       len(s.Machine.Heap.Regions),
		Cells:         heapCells(s),
	}
	if err := enc.Encode(h); err != nil {
		return nil, fmt.Errorf("checkpoint: encode header: %w", err)
	}
	if err := enc.Encode(s); err != nil {
		return nil, fmt.Errorf("checkpoint: encode body: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

// Decode deserializes and validates a checkpoint blob, returning the
// header and snapshot. The checksum is verified before any gob decoding
// touches the payload, and every derivable header field is recomputed
// from the body and compared.
func Decode(data []byte) (*Header, *Snapshot, error) {
	const overhead = len(magic) + 4 + sha256.Size
	if len(data) < overhead {
		return nil, nil, fmt.Errorf("checkpoint: blob truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:len(magic)], magic[:]) {
		return nil, nil, fmt.Errorf("checkpoint: bad magic")
	}
	if v := binary.BigEndian.Uint32(data[len(magic) : len(magic)+4]); v != FormatVersion {
		return nil, nil, fmt.Errorf("checkpoint: format version %d, want %d", v, FormatVersion)
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], trailer) {
		return nil, nil, fmt.Errorf("checkpoint: checksum mismatch")
	}
	dec := gob.NewDecoder(bytes.NewReader(body[len(magic)+4:]))
	var h Header
	if err := dec.Decode(&h); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: decode header: %w", err)
	}
	if h.FormatVersion != FormatVersion {
		return nil, nil, fmt.Errorf("checkpoint: header version %d, want %d", h.FormatVersion, FormatVersion)
	}
	var s Snapshot
	if err := dec.Decode(&s); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: decode body: %w", err)
	}
	if err := crossCheck(&h, &s); err != nil {
		return nil, nil, err
	}
	return &h, &s, nil
}

// crossCheck verifies every header field that duplicates or derives from
// body content.
func crossCheck(h *Header, s *Snapshot) error {
	switch {
	case h.SourceHash != s.SourceHash,
		h.Collector != s.Collector,
		h.Backend != s.Backend,
		h.Engine != s.Engine,
		h.TraceID != s.TraceID,
		h.Collections != s.Collections,
		h.FuelRemaining != s.FuelRemaining:
		return fmt.Errorf("checkpoint: header metadata does not match body")
	case h.Steps != s.Machine.Steps:
		return fmt.Errorf("checkpoint: header steps %d, body %d", h.Steps, s.Machine.Steps)
	case h.Regions != len(s.Machine.Heap.Regions):
		return fmt.Errorf("checkpoint: header regions %d, body %d", h.Regions, len(s.Machine.Heap.Regions))
	case h.Cells != heapCells(s):
		return fmt.Errorf("checkpoint: header cells %d, body %d", h.Cells, heapCells(s))
	}
	if sum := s.Machine.Fingerprint(); h.CellSum != sum {
		return fmt.Errorf("checkpoint: machine fingerprint %016x, header %016x", sum, h.CellSum)
	}
	return nil
}
