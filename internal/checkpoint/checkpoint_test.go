package checkpoint

import (
	"crypto/sha256"
	"testing"

	"psgc/internal/gclang"
	"psgc/internal/regions"
	"psgc/internal/workload"
)

func snapshotFor(t *testing.T) *Snapshot {
	t.Helper()
	c, err := workload.BuildCollectOnce(gclang.Forw, workload.List, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := gclang.NewEnvMachineOn(regions.BackendArena, gclang.Forw, c.Prog, 0)
	m.Mem.SetAutoGrow(true)
	for i := 0; i < 200; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	img, err := m.Image()
	if err != nil {
		t.Fatal(err)
	}
	return &Snapshot{
		SourceHash:    "deadbeef",
		Collector:     "forwarding",
		Backend:       "arena",
		Engine:        "env",
		TraceID:       "trace-1",
		Collections:   3,
		FuelRemaining: 12345,
		Machine:       img,
		Program:       c.Prog,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := snapshotFor(t)
	blob, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	h, got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if h.Steps != s.Machine.Steps || h.Collector != "forwarding" || h.TraceID != "trace-1" ||
		h.FuelRemaining != 12345 || h.CellSum != s.Machine.Fingerprint() {
		t.Fatalf("header mismatch: %+v", h)
	}
	if got.Machine.Fingerprint() != s.Machine.Fingerprint() {
		t.Fatal("decoded machine image differs from the encoded one")
	}
	// The decoded image must restore and resume — the full path a resumed
	// run takes.
	res, err := gclang.RestoreEnvMachine(regions.BackendMap, gclang.Forw, got.Program, got.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s := snapshotFor(t)
	blob, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, data []byte) {
		t.Run(name, func(t *testing.T) {
			if _, _, err := Decode(data); err == nil {
				t.Fatal("corrupt blob decoded")
			}
		})
	}
	check("empty", nil)
	check("truncated header", blob[:20])
	check("truncated body", blob[:len(blob)/2])
	check("truncated trailer", blob[:len(blob)-1])
	for _, pos := range []int{0, 9, len(magic) + 4 + 3, len(blob) / 2, len(blob) - 5} {
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 0x40
		check("bit flip", mut)
	}
	// Splicing one blob's header+checksum discipline with altered metadata:
	// re-encode with a different trace, then swap trailers.
	s2 := *s
	s2.TraceID = "trace-2"
	blob2, err := Encode(&s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob2) == len(blob) {
		splice := append([]byte(nil), blob2[:len(blob2)-32]...)
		splice = append(splice, blob[len(blob)-32:]...)
		check("spliced trailer", splice)
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	s := snapshotFor(t)
	blob, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), blob...)
	mut[len(magic)+3] = 99 // version word
	// Re-seal so only the version is wrong, not the checksum.
	resealed := reseal(mut)
	if _, _, err := Decode(resealed); err == nil {
		t.Fatal("wrong-version blob decoded")
	}
}

func reseal(blob []byte) []byte {
	body := blob[:len(blob)-32]
	sum := sha256.Sum256(body)
	return append(append([]byte(nil), body...), sum[:]...)
}
