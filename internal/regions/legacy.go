package regions

import "fmt"

// BackendLegacyString identifies the seed's string-keyed substrate,
// retained as the benchmark baseline this package's flat backends are
// measured against. It is deliberately not selectable through ParseBackend
// and not listed by Backends: NewLegacyString is the only constructor, and
// the only client is the psgc-bench replay comparison.
const BackendLegacyString Backend = -1

const legacyCD = "cd"

// LegacyString reproduces the original substrate this repository seeded
// with, before region names were interned to dense uint32 ids: region
// names were strings ("ν17"), the store was a Go map keyed by those
// strings, and every Put re-derived the live-cell count with a full scan
// over the map to maintain the high-water mark. Each operation therefore
// hashes a string on the hottest path and Put is O(live regions).
//
// The Store interface now traffics in dense uint32 Names, so this store
// interns id → string once at NewRegion (exactly where the seed paid its
// fmt.Sprintf) and every subsequent operation performs the seed's string
// hash and map probe. Counter identities match the other backends
// bit-for-bit, so replayed traces are directly comparable.
type LegacyString[V any] struct {
	capacity int
	autoGrow bool
	stats    Stats

	regions map[string]*legacyRegion[V]
	names   []string // Name → string key, interned at creation
	order   []Name   // creation order, for deterministic iteration
	counter uint32
}

// A legacyRegion is a growable array of cells, as in the seed.
type legacyRegion[V any] struct {
	cells []V
}

// NewLegacyString returns a seed-substrate store containing only the code
// region cd.
func NewLegacyString[V any](capacity int) *LegacyString[V] {
	m := &LegacyString[V]{
		capacity: capacity,
		regions:  map[string]*legacyRegion[V]{legacyCD: {}},
		names:    []string{legacyCD},
		order:    []Name{CD},
	}
	return m
}

// Backend identifies the implementation.
func (m *LegacyString[V]) Backend() Backend { return BackendLegacyString }

// Stats returns the cumulative traffic counters.
func (m *LegacyString[V]) Stats() Stats { return m.stats }

// Capacity returns the per-region fullness threshold (see Store).
func (m *LegacyString[V]) Capacity() int { return m.capacity }

// AutoGrow reports whether the heap-growth policy is enabled.
func (m *LegacyString[V]) AutoGrow() bool { return m.autoGrow }

// SetAutoGrow enables the survivor-driven heap-growth policy (see Store).
func (m *LegacyString[V]) SetAutoGrow(on bool) { m.autoGrow = on }

// region resolves n to its string key and probes the map, paying the
// seed's per-operation string hash.
func (m *LegacyString[V]) region(n Name) (*legacyRegion[V], bool) {
	if int(n) >= len(m.names) {
		return nil, false
	}
	r, ok := m.regions[m.names[n]]
	return r, ok
}

// NewRegion allocates a fresh empty region and returns its name. The
// string key is minted here with the seed's fmt.Sprintf.
func (m *LegacyString[V]) NewRegion() Name {
	m.counter++
	n := Name(m.counter)
	key := fmt.Sprintf("ν%d", m.counter)
	m.regions[key] = &legacyRegion[V]{}
	m.names = append(m.names, key)
	m.order = append(m.order, n)
	m.stats.RegionsCreated++
	return n
}

// Has reports whether region n is live.
func (m *LegacyString[V]) Has(n Name) bool {
	_, ok := m.region(n)
	return ok
}

// Put allocates v in region n and returns its address. As in the seed, the
// high-water mark is re-derived with a full LiveCells scan on every put.
func (m *LegacyString[V]) Put(n Name, v V) (Addr, error) {
	r, ok := m.region(n)
	if !ok {
		return Addr{}, fmt.Errorf("regions: put into dead region %s", n)
	}
	r.cells = append(r.cells, v)
	m.stats.Puts++
	if live := m.LiveCells(); live > m.stats.MaxLiveCells {
		m.stats.MaxLiveCells = live
	}
	return Addr{Region: n, Off: len(r.cells) - 1}, nil
}

// Get dereferences a.
func (m *LegacyString[V]) Get(a Addr) (V, error) {
	var zero V
	r, ok := m.region(a.Region)
	if !ok {
		return zero, fmt.Errorf("regions: get from dead region %s", a.Region)
	}
	if a.Off < 0 || a.Off >= len(r.cells) {
		return zero, fmt.Errorf("regions: get from unallocated address %s", a)
	}
	m.stats.Gets++
	return r.cells[a.Off], nil
}

// Set overwrites the cell at a (the forwarding-pointer install of §7).
func (m *LegacyString[V]) Set(a Addr, v V) error {
	r, ok := m.region(a.Region)
	if !ok {
		return fmt.Errorf("regions: set in dead region %s", a.Region)
	}
	if a.Off < 0 || a.Off >= len(r.cells) {
		return fmt.Errorf("regions: set at unallocated address %s", a)
	}
	r.cells[a.Off] = v
	m.stats.Sets++
	return nil
}

// Peek reads the cell at a without counting a Get (see Store).
func (m *LegacyString[V]) Peek(a Addr) (V, bool) {
	r, ok := m.region(a.Region)
	if !ok || a.Off < 0 || a.Off >= len(r.cells) {
		var zero V
		return zero, false
	}
	return r.cells[a.Off], true
}

// Corrupt silently overwrites the cell at a, bypassing statistics (see
// Store).
func (m *LegacyString[V]) Corrupt(a Addr, v V) bool {
	r, ok := m.region(a.Region)
	if !ok || a.Off < 0 || a.Off >= len(r.cells) {
		return false
	}
	r.cells[a.Off] = v
	return true
}

// Only reclaims every region not listed in keep, allocating the seed's
// per-call keep set.
func (m *LegacyString[V]) Only(keep []Name) error {
	keepSet := map[Name]bool{CD: true}
	for _, n := range keep {
		if !m.Has(n) {
			return fmt.Errorf("regions: only keeps dead region %s", n)
		}
		keepSet[n] = true
	}
	var remaining []Name
	for _, n := range m.order {
		if keepSet[n] {
			remaining = append(remaining, n)
			continue
		}
		key := m.names[n]
		m.stats.RegionsReclaimed++
		m.stats.CellsReclaimed += len(m.regions[key].cells)
		delete(m.regions, key)
	}
	m.order = remaining
	if m.autoGrow && m.capacity > 0 {
		if live := m.LiveCells(); live > m.capacity/2 {
			m.capacity = 2 * live
		}
	}
	return nil
}

// Full reports whether region n has reached the fullness threshold.
func (m *LegacyString[V]) Full(n Name) bool {
	if m.capacity <= 0 {
		return false
	}
	r, ok := m.region(n)
	return ok && len(r.cells) >= m.capacity
}

// Size returns the number of cells allocated in region n (0 if dead).
func (m *LegacyString[V]) Size(n Name) int {
	r, ok := m.region(n)
	if !ok {
		return 0
	}
	return len(r.cells)
}

// LiveCells returns the number of live cells outside the code region,
// re-derived by a full map scan as in the seed.
func (m *LegacyString[V]) LiveCells() int {
	total := 0
	for key, r := range m.regions {
		if key == legacyCD {
			continue
		}
		total += len(r.cells)
	}
	return total
}

// Regions returns the live region names in creation order.
func (m *LegacyString[V]) Regions() []Name {
	return append([]Name(nil), m.order...)
}

// Cells returns the addresses of every live cell, in deterministic order.
func (m *LegacyString[V]) Cells() []Addr {
	var out []Addr
	for _, n := range m.order {
		for off := 0; off < m.Size(n); off++ {
			out = append(out, Addr{Region: n, Off: off})
		}
	}
	return out
}
