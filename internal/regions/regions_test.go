package regions

import (
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	m := New[int](0)
	r := m.NewRegion()
	a1, err := m.Put(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Put(r, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatalf("two puts returned the same address %s", a1)
	}
	if v, _ := m.Get(a1); v != 10 {
		t.Errorf("Get(%s) = %d, want 10", a1, v)
	}
	if v, _ := m.Get(a2); v != 20 {
		t.Errorf("Get(%s) = %d, want 20", a2, v)
	}
}

func TestSet(t *testing.T) {
	m := New[string](0)
	r := m.NewRegion()
	a, _ := m.Put(r, "old")
	if err := m.Set(a, "new"); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(a); v != "new" {
		t.Errorf("Get after Set = %q", v)
	}
	if err := m.Set(Addr{Region: r, Off: 99}, "x"); err == nil {
		t.Errorf("Set at unallocated offset succeeded")
	}
}

func TestOnlyReclaims(t *testing.T) {
	m := New[int](0)
	r1 := m.NewRegion()
	r2 := m.NewRegion()
	a1, _ := m.Put(r1, 1)
	a2, _ := m.Put(r2, 2)
	if err := m.Only([]Name{r2}); err != nil {
		t.Fatal(err)
	}
	if m.Has(r1) {
		t.Errorf("region %s should be reclaimed", r1)
	}
	if !m.Has(r2) || !m.Has(CD) {
		t.Errorf("kept regions missing")
	}
	if _, err := m.Get(a1); err == nil {
		t.Errorf("read from reclaimed region succeeded")
	}
	if v, err := m.Get(a2); err != nil || v != 2 {
		t.Errorf("read from kept region: %v, %v", v, err)
	}
	if m.Stats().RegionsReclaimed != 1 || m.Stats().CellsReclaimed != 1 {
		t.Errorf("stats: %+v", m.Stats())
	}
}

func TestOnlyAlwaysKeepsCD(t *testing.T) {
	m := New[int](0)
	a, _ := m.Put(CD, 7)
	if err := m.Only(nil); err != nil {
		t.Fatal(err)
	}
	if v, err := m.Get(a); err != nil || v != 7 {
		t.Errorf("cd cell lost: %v, %v", v, err)
	}
}

func TestOnlyDeadRegionErrors(t *testing.T) {
	m := New[int](0)
	r := m.NewRegion()
	if err := m.Only(nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Only([]Name{r}); err == nil {
		t.Errorf("only keeping a dead region should error")
	}
}

func TestFullness(t *testing.T) {
	m := New[int](2)
	r := m.NewRegion()
	if m.Full(r) {
		t.Errorf("empty region reported full")
	}
	m.Put(r, 1)
	if m.Full(r) {
		t.Errorf("1/2 region reported full")
	}
	m.Put(r, 2)
	if !m.Full(r) {
		t.Errorf("2/2 region not reported full")
	}
	// Puts beyond capacity still succeed (allocation never blocks).
	if _, err := m.Put(r, 3); err != nil {
		t.Errorf("put beyond capacity failed: %v", err)
	}
	unlimited := New[int](0)
	u := unlimited.NewRegion()
	unlimited.Put(u, 1)
	if unlimited.Full(u) {
		t.Errorf("capacity 0 must never be full")
	}
}

func TestDeadRegionOps(t *testing.T) {
	m := New[int](0)
	r := m.NewRegion()
	m.Only(nil)
	if _, err := m.Put(r, 1); err == nil {
		t.Errorf("put into dead region succeeded")
	}
	if _, err := m.Get(Addr{Region: r, Off: 0}); err == nil {
		t.Errorf("get from dead region succeeded")
	}
	if err := m.Set(Addr{Region: r, Off: 0}, 1); err == nil {
		t.Errorf("set in dead region succeeded")
	}
}

func TestFreshRegionNamesNeverRepeat(t *testing.T) {
	m := New[int](0)
	seen := map[Name]bool{}
	for i := 0; i < 100; i++ {
		n := m.NewRegion()
		if seen[n] {
			t.Fatalf("region name %s repeated", n)
		}
		seen[n] = true
		if i%3 == 0 {
			m.Only(nil) // reclaim everything; names must still be fresh
		}
	}
}

func TestCellsDeterministicOrder(t *testing.T) {
	m := New[int](0)
	r1 := m.NewRegion()
	r2 := m.NewRegion()
	m.Put(r1, 1)
	m.Put(r2, 2)
	m.Put(r1, 3)
	want := []Addr{{r1, 0}, {r1, 1}, {r2, 0}}
	got := m.Cells()
	if len(got) != len(want) {
		t.Fatalf("Cells() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Cells()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStatsCounts(t *testing.T) {
	m := New[int](0)
	r := m.NewRegion()
	a, _ := m.Put(r, 1)
	m.Put(r, 2)
	m.Get(a)
	m.Set(a, 3)
	s := m.Stats()
	if s.Puts != 2 || s.Gets != 1 || s.Sets != 1 || s.RegionsCreated != 1 {
		t.Errorf("stats: %+v", s)
	}
	if s.MaxLiveCells != 2 {
		t.Errorf("MaxLiveCells = %d, want 2", s.MaxLiveCells)
	}
}

// Property: any interleaving of puts into two regions preserves every
// value at the address put returned (no aliasing between regions, no
// overwrites by allocation).
func TestPutPreservesValuesProperty(t *testing.T) {
	f := func(vals []int16, intoFirst []bool) bool {
		m := New[int](0)
		r1, r2 := m.NewRegion(), m.NewRegion()
		type rec struct {
			a Addr
			v int
		}
		var recs []rec
		for i, v := range vals {
			r := r1
			if i < len(intoFirst) && !intoFirst[i] {
				r = r2
			}
			a, err := m.Put(r, int(v))
			if err != nil {
				return false
			}
			recs = append(recs, rec{a, int(v)})
		}
		for _, rc := range recs {
			got, err := m.Get(rc.a)
			if err != nil || got != rc.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLiveCellsExcludesCD(t *testing.T) {
	m := New[int](0)
	m.Put(CD, 1)
	r := m.NewRegion()
	m.Put(r, 2)
	if got := m.LiveCells(); got != 1 {
		t.Errorf("LiveCells = %d, want 1", got)
	}
}

func TestSortedNames(t *testing.T) {
	got := SortedNames([]Name{2, 1, 3})
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("SortedNames = %v", got)
	}
}
