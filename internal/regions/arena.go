package regions

import "fmt"

// Arena is the flat store: every non-code cell lives in one bump-allocated
// slab (the from-space), and reclamation runs as a Cheney two-finger
// scavenge into a second slab (the to-space), after which the spaces flip
// — the gc2/MPS protocol of SNIPPETS.md, at region granularity.
//
// Addressing: a region's cells occupy a window of the slab. Right after a
// scavenge every region is contiguous, so the window is (base, count) and
// a cell lookup is one slice index. Interleaved allocation into several
// regions breaks contiguity; the first non-adjacent put materializes a
// per-region slot table (off → slab index) and lookups pay one extra
// int32 load until the next scavenge restores contiguity.
//
// λGC addresses are logical pairs ν.ℓ, not slab indices, so evacuation
// never rewrites cell contents: the scan-finger fix redirects each
// surviving region's window to its to-space position instead of patching
// pointers cell by cell. Region liveness is flat membership in the keep
// set ∆ (the type system already proved what only ∆ retains), so the
// evacuation loop copies whole kept regions rather than tracing.
//
// The code region cd is immortal (§4.3) and kept in its own slab so
// scavenges never pay for program code.
type Arena[V any] struct {
	capacity int
	autoGrow bool
	stats    Stats

	cd    []V // code region cells, never scavenged
	space []V // from-space: every live non-code cell
	spare []V // to-space, retained across flips

	metas   []arenaMeta // indexed by Name; metas[CD] is a live marker only
	order   []Name      // live regions in creation order
	live    int         // live non-code cells, maintained incrementally
	garbage int         // dead cells still occupying from-space slots
	counter uint32

	scratch []Name // reusable survivor buffer for Only
}

// arenaMeta locates one region's cells inside the slab.
type arenaMeta struct {
	live    bool
	base    int32   // slab index of cell 0 while contiguous (slots == nil)
	count   int32   // cells allocated in the region
	newBase int32   // relocated base, valid between the scavenge's two fingers
	slots   []int32 // off → slab index; nil while the region is contiguous
}

// NewArena returns a flat arena store containing only the code region cd.
func NewArena[V any](capacity int) *Arena[V] {
	return &Arena[V]{
		capacity: capacity,
		metas:    []arenaMeta{{live: true}},
		order:    []Name{CD},
	}
}

// Backend identifies the implementation.
func (ar *Arena[V]) Backend() Backend { return BackendArena }

// Stats returns the cumulative traffic counters.
func (ar *Arena[V]) Stats() Stats { return ar.stats }

// Capacity returns the per-region fullness threshold (see Store).
func (ar *Arena[V]) Capacity() int { return ar.capacity }

// SetAutoGrow enables the survivor-driven heap-growth policy (see Store).
func (ar *Arena[V]) SetAutoGrow(on bool) { ar.autoGrow = on }

// NewRegion interns a fresh dense id and returns it.
func (ar *Arena[V]) NewRegion() Name {
	ar.counter++
	n := Name(ar.counter)
	ar.metas = append(ar.metas, arenaMeta{live: true})
	ar.order = append(ar.order, n)
	ar.stats.RegionsCreated++
	return n
}

// Has reports whether region n is live.
func (ar *Arena[V]) Has(n Name) bool {
	return int(n) < len(ar.metas) && ar.metas[n].live
}

// Put bump-allocates v at the end of the slab and records it in region n.
func (ar *Arena[V]) Put(n Name, v V) (Addr, error) {
	if n == CD {
		ar.cd = append(ar.cd, v)
		ar.stats.Puts++
		return Addr{Region: CD, Off: len(ar.cd) - 1}, nil
	}
	if !ar.Has(n) {
		return Addr{}, fmt.Errorf("regions: put into dead region %s", n)
	}
	meta := &ar.metas[n]
	idx := len(ar.space)
	ar.space = append(ar.space, v)
	switch {
	case meta.count == 0:
		meta.base = int32(idx)
	case meta.slots == nil && idx != int(meta.base)+int(meta.count):
		// Another region allocated since this one's last put: contiguity
		// is broken until the next scavenge, switch to explicit slots.
		meta.slots = make([]int32, meta.count, meta.count+1)
		for i := range meta.slots {
			meta.slots[i] = meta.base + int32(i)
		}
	}
	if meta.slots != nil {
		meta.slots = append(meta.slots, int32(idx))
	}
	off := int(meta.count)
	meta.count++
	ar.stats.Puts++
	ar.live++
	if ar.live > ar.stats.MaxLiveCells {
		ar.stats.MaxLiveCells = ar.live
	}
	return Addr{Region: n, Off: off}, nil
}

// cell resolves a to a slab pointer, or nil if a is not a live cell.
func (ar *Arena[V]) cell(a Addr) *V {
	if a.Region == CD {
		if a.Off < 0 || a.Off >= len(ar.cd) {
			return nil
		}
		return &ar.cd[a.Off]
	}
	if !ar.Has(a.Region) {
		return nil
	}
	meta := &ar.metas[a.Region]
	if a.Off < 0 || a.Off >= int(meta.count) {
		return nil
	}
	if meta.slots == nil {
		return &ar.space[int(meta.base)+a.Off]
	}
	return &ar.space[meta.slots[a.Off]]
}

// Get dereferences a.
func (ar *Arena[V]) Get(a Addr) (V, error) {
	if p := ar.cell(a); p != nil {
		ar.stats.Gets++
		return *p, nil
	}
	var zero V
	if !ar.Has(a.Region) {
		return zero, fmt.Errorf("regions: get from dead region %s", a.Region)
	}
	return zero, fmt.Errorf("regions: get from unallocated address %s", a)
}

// Set overwrites the cell at a (the forwarding-pointer install of §7).
func (ar *Arena[V]) Set(a Addr, v V) error {
	if p := ar.cell(a); p != nil {
		*p = v
		ar.stats.Sets++
		return nil
	}
	if !ar.Has(a.Region) {
		return fmt.Errorf("regions: set in dead region %s", a.Region)
	}
	return fmt.Errorf("regions: set at unallocated address %s", a)
}

// Peek reads the cell at a without counting a Get (see Store).
func (ar *Arena[V]) Peek(a Addr) (V, bool) {
	if p := ar.cell(a); p != nil {
		return *p, true
	}
	var zero V
	return zero, false
}

// Corrupt silently overwrites the cell at a, bypassing statistics (see
// Store).
func (ar *Arena[V]) Corrupt(a Addr, v V) bool {
	if p := ar.cell(a); p != nil {
		*p = v
		return true
	}
	return false
}

// Only reclaims every region not listed in keep. Reclamation is logical
// and O(condemned cells): each condemned region is marked dead where it
// stands and its slab slots become garbage. The physical Cheney scavenge
// that compacts the slab is deferred until garbage has grown to match the
// live set — every scavenge then halves the from-space, so its copy cost
// amortizes to O(1) per reclaimed cell, and the frequent collections whose
// survivors vastly outnumber their condemned set (the generational minor
// cycle) cost no more here than a map deletion would.
func (ar *Arena[V]) Only(keep []Name) error {
	for _, n := range keep {
		if !ar.Has(n) {
			return fmt.Errorf("regions: only keeps dead region %s", n)
		}
	}

	var zero V
	remaining := ar.scratch[:0]
	for _, n := range ar.order {
		if n == CD || keepsName(keep, n) {
			remaining = append(remaining, n)
			continue
		}
		meta := &ar.metas[n]
		dead := int(meta.count)
		// Zero the dead window so the host GC can free the values now;
		// the slots themselves are reclaimed at the next scavenge.
		if meta.slots == nil {
			for i := meta.base; i < meta.base+meta.count; i++ {
				ar.space[i] = zero
			}
		} else {
			for _, idx := range meta.slots {
				ar.space[idx] = zero
			}
		}
		ar.stats.RegionsReclaimed++
		ar.stats.CellsReclaimed += dead
		ar.live -= dead
		ar.garbage += dead
		*meta = arenaMeta{}
	}
	ar.scratch = ar.order[:0]
	ar.order = remaining

	if ar.garbage > 0 && ar.garbage >= ar.live {
		ar.scavenge()
	}

	if ar.autoGrow && ar.capacity > 0 && ar.live > ar.capacity/2 {
		ar.capacity = 2 * ar.live
	}
	return nil
}

// scavenge compacts the from-space with the Cheney two-finger protocol:
// every live region is evacuated to the to-space behind an allocation
// finger, then a scan finger walks the to-space fixing addressing until
// the fingers meet, and the spaces flip.
func (ar *Arena[V]) scavenge() {
	// Evacuation: copy each live region's cells into to-space in creation
	// order, advancing the allocation finger past each.
	to := ar.spare[:0]
	for _, n := range ar.order {
		if n == CD {
			continue
		}
		meta := &ar.metas[n]
		meta.newBase = int32(len(to))
		if meta.slots == nil {
			to = append(to, ar.space[meta.base:meta.base+meta.count]...)
		} else {
			for _, idx := range meta.slots {
				to = append(to, ar.space[idx])
			}
		}
	}
	alloc := len(to) // the allocation finger after the last evacuation

	// Scan: advance the scan finger over the evacuated cells until it
	// meets the allocation finger. λGC cell contents hold logical ν.ℓ
	// addresses that survive relocation unchanged, so the per-cell fix
	// reduces to redirecting each region's window to its to-space
	// position; evacuation made every survivor contiguous, so slot
	// tables are dropped.
	scan := 0
	for _, n := range ar.order {
		if n == CD {
			continue
		}
		meta := &ar.metas[n]
		if scan != int(meta.newBase) {
			panic(fmt.Sprintf("regions: scavenge fingers out of sync at %s: scan %d, base %d", n, scan, meta.newBase))
		}
		meta.base = meta.newBase
		meta.slots = nil
		scan += int(meta.count)
	}
	if scan != alloc {
		panic(fmt.Sprintf("regions: scavenge fingers never met: scan %d, alloc %d", scan, alloc))
	}

	// Flip: the old from-space becomes the next to-space. Clearing it
	// drops the dead cells' references for the host GC.
	clear(ar.space)
	ar.spare = ar.space[:0]
	ar.space = to
	ar.garbage = 0
}

// Full reports whether region n has reached the fullness threshold.
func (ar *Arena[V]) Full(n Name) bool {
	if ar.capacity <= 0 {
		return false
	}
	return ar.Size(n) >= ar.capacity
}

// Size returns the number of cells allocated in region n (0 if dead).
func (ar *Arena[V]) Size(n Name) int {
	if n == CD {
		return len(ar.cd)
	}
	if !ar.Has(n) {
		return 0
	}
	return int(ar.metas[n].count)
}

// LiveCells returns the number of live cells outside the code region.
func (ar *Arena[V]) LiveCells() int { return ar.live }

// Regions returns the live region names in creation order.
func (ar *Arena[V]) Regions() []Name {
	return append([]Name(nil), ar.order...)
}

// Cells returns the addresses of every live cell, in deterministic order.
func (ar *Arena[V]) Cells() []Addr {
	var out []Addr
	for _, n := range ar.order {
		for off := 0; off < ar.Size(n); off++ {
			out = append(out, Addr{Region: n, Off: off})
		}
	}
	return out
}
