package regions

import "fmt"

// Arena is the flat store: every non-code cell lives in one bump-allocated
// slab (the from-space), and reclamation runs as a Cheney two-finger
// scavenge into a second slab (the to-space), after which the spaces flip
// — the gc2/MPS protocol of SNIPPETS.md, at region granularity.
//
// Addressing uses §8's bit-pattern region encoding: a region's whole
// window descriptor is one uint64 pattern word — a live bit, a
// broken-contiguity bit, a 32-bit slab base, and a 30-bit cell count —
// so resolving a logical address ν.ℓ on the contiguous fast path is one
// word load, two shifts, and a slice index, with no per-region meta
// struct to chase. Right after a scavenge every region is contiguous.
// Interleaved allocation into several regions breaks contiguity; the
// first non-adjacent put sets the broken bit and materializes a
// per-region slot table (off → slab index) on the side, and lookups pay
// one extra int32 load until the next scavenge restores contiguity and
// drops every slot table wholesale.
//
// λGC addresses are logical pairs ν.ℓ, not slab indices, so evacuation
// never rewrites cell contents: the scan-finger fix redirects each
// surviving region's pattern word to its to-space position instead of
// patching pointers cell by cell. Region liveness is flat membership in
// the keep set ∆ (the type system already proved what only ∆ retains), so
// the evacuation loop copies whole kept regions rather than tracing.
//
// The code region cd is immortal (§4.3) and kept in its own slab so
// scavenges never pay for program code.
type Arena[V any] struct {
	capacity int
	autoGrow bool
	stats    Stats

	cd    []V // code region cells, never scavenged
	space []V // from-space: every live non-code cell
	spare []V // to-space, retained across flips

	pat     []uint64         // indexed by Name: packed window descriptors
	slots   map[Name][]int32 // off → slab index, only for broken regions
	order   []Name           // live regions in creation order
	live    int              // live non-code cells, maintained incrementally
	garbage int              // dead cells still occupying from-space slots
	counter uint32

	scratch  []Name  // reusable survivor buffer for Only
	newBases []int32 // scavenge scratch: relocated base per order position
}

// The §8 pattern word: liveness and contiguity are single bits, the slab
// window is (base, count) packed above them. pat[CD] is a live marker
// only — the code region has its own slab.
const (
	patLive       uint64 = 1 << 0
	patBroken     uint64 = 1 << 1
	patBaseShift         = 2
	patCountShift        = 34
	patBaseMask   uint64 = 1<<32 - 1 // 32-bit slab base
	patCountMax   uint64 = 1<<30 - 1 // 30-bit cell count
)

func patBase(w uint64) int  { return int((w >> patBaseShift) & patBaseMask) }
func patCount(w uint64) int { return int(w >> patCountShift) }

// NewArena returns a flat arena store containing only the code region cd.
func NewArena[V any](capacity int) *Arena[V] {
	return &Arena[V]{
		capacity: capacity,
		pat:      []uint64{patLive},
		slots:    map[Name][]int32{},
		order:    []Name{CD},
	}
}

// Backend identifies the implementation.
func (ar *Arena[V]) Backend() Backend { return BackendArena }

// Stats returns the cumulative traffic counters.
func (ar *Arena[V]) Stats() Stats { return ar.stats }

// Capacity returns the per-region fullness threshold (see Store).
func (ar *Arena[V]) Capacity() int { return ar.capacity }

// AutoGrow reports whether the heap-growth policy is enabled.
func (ar *Arena[V]) AutoGrow() bool { return ar.autoGrow }

// SetAutoGrow enables the survivor-driven heap-growth policy (see Store).
func (ar *Arena[V]) SetAutoGrow(on bool) { ar.autoGrow = on }

// NewRegion interns a fresh dense id and returns it.
func (ar *Arena[V]) NewRegion() Name {
	ar.counter++
	n := Name(ar.counter)
	ar.pat = append(ar.pat, patLive)
	ar.order = append(ar.order, n)
	ar.stats.RegionsCreated++
	return n
}

// Has reports whether region n is live.
func (ar *Arena[V]) Has(n Name) bool {
	return int(n) < len(ar.pat) && ar.pat[n]&patLive != 0
}

// Put bump-allocates v at the end of the slab and records it in region n.
func (ar *Arena[V]) Put(n Name, v V) (Addr, error) {
	if n == CD {
		ar.cd = append(ar.cd, v)
		ar.stats.Puts++
		return Addr{Region: CD, Off: len(ar.cd) - 1}, nil
	}
	if !ar.Has(n) {
		return Addr{}, fmt.Errorf("regions: put into dead region %s", n)
	}
	w := ar.pat[n]
	count := patCount(w)
	idx := len(ar.space)
	ar.space = append(ar.space, v)
	switch {
	case count == 0:
		if uint64(idx) > patBaseMask {
			panic(fmt.Sprintf("regions: arena slab exceeds the pattern word's base range at %d cells", idx))
		}
		w = w&^(patBaseMask<<patBaseShift) | uint64(idx)<<patBaseShift
	case w&patBroken == 0 && idx != patBase(w)+count:
		// Another region allocated since this one's last put: contiguity
		// is broken until the next scavenge, switch to explicit slots.
		sl := make([]int32, count, count+1)
		base := patBase(w)
		for i := range sl {
			sl[i] = int32(base + i)
		}
		ar.slots[n] = sl
		w |= patBroken
	}
	if w&patBroken != 0 {
		ar.slots[n] = append(ar.slots[n], int32(idx))
	}
	if uint64(count) >= patCountMax {
		panic(fmt.Sprintf("regions: region %s exceeds the pattern word's count range", n))
	}
	w += 1 << patCountShift
	ar.pat[n] = w
	ar.stats.Puts++
	ar.live++
	if ar.live > ar.stats.MaxLiveCells {
		ar.stats.MaxLiveCells = ar.live
	}
	return Addr{Region: n, Off: count}, nil
}

// cell resolves a to a slab pointer, or nil if a is not a live cell. The
// contiguous fast path is the point of the §8 encoding: one pattern-word
// load validates liveness and bounds and yields the slab index, with the
// unsigned Off compare also rejecting negative offsets.
func (ar *Arena[V]) cell(a Addr) *V {
	if a.Region == CD {
		if a.Off < 0 || a.Off >= len(ar.cd) {
			return nil
		}
		return &ar.cd[a.Off]
	}
	if int(a.Region) >= len(ar.pat) {
		return nil
	}
	w := ar.pat[a.Region]
	if w&patLive == 0 || uint64(a.Off) >= w>>patCountShift {
		return nil
	}
	if w&patBroken == 0 {
		return &ar.space[(w>>patBaseShift)&patBaseMask+uint64(a.Off)]
	}
	return &ar.space[ar.slots[a.Region][a.Off]]
}

// Get dereferences a.
func (ar *Arena[V]) Get(a Addr) (V, error) {
	if p := ar.cell(a); p != nil {
		ar.stats.Gets++
		return *p, nil
	}
	var zero V
	if !ar.Has(a.Region) {
		return zero, fmt.Errorf("regions: get from dead region %s", a.Region)
	}
	return zero, fmt.Errorf("regions: get from unallocated address %s", a)
}

// Set overwrites the cell at a (the forwarding-pointer install of §7).
func (ar *Arena[V]) Set(a Addr, v V) error {
	if p := ar.cell(a); p != nil {
		*p = v
		ar.stats.Sets++
		return nil
	}
	if !ar.Has(a.Region) {
		return fmt.Errorf("regions: set in dead region %s", a.Region)
	}
	return fmt.Errorf("regions: set at unallocated address %s", a)
}

// Peek reads the cell at a without counting a Get (see Store).
func (ar *Arena[V]) Peek(a Addr) (V, bool) {
	if p := ar.cell(a); p != nil {
		return *p, true
	}
	var zero V
	return zero, false
}

// Corrupt silently overwrites the cell at a, bypassing statistics (see
// Store).
func (ar *Arena[V]) Corrupt(a Addr, v V) bool {
	if p := ar.cell(a); p != nil {
		*p = v
		return true
	}
	return false
}

// Only reclaims every region not listed in keep. Reclamation is logical
// and O(condemned cells): each condemned region is marked dead where it
// stands and its slab slots become garbage. The physical Cheney scavenge
// that compacts the slab is deferred until garbage has grown to match the
// live set — every scavenge then halves the from-space, so its copy cost
// amortizes to O(1) per reclaimed cell, and the frequent collections whose
// survivors vastly outnumber their condemned set (the generational minor
// cycle) cost no more here than a map deletion would.
func (ar *Arena[V]) Only(keep []Name) error {
	for _, n := range keep {
		if !ar.Has(n) {
			return fmt.Errorf("regions: only keeps dead region %s", n)
		}
	}

	var zero V
	remaining := ar.scratch[:0]
	for _, n := range ar.order {
		if n == CD || keepsName(keep, n) {
			remaining = append(remaining, n)
			continue
		}
		w := ar.pat[n]
		dead := patCount(w)
		// Zero the dead window so the host GC can free the values now;
		// the slots themselves are reclaimed at the next scavenge. (With
		// pointer-free cells — the packed Cell representation — this
		// clear is a memset the host GC never revisits.)
		if w&patBroken == 0 {
			base := patBase(w)
			for i := base; i < base+dead; i++ {
				ar.space[i] = zero
			}
		} else {
			for _, idx := range ar.slots[n] {
				ar.space[idx] = zero
			}
			delete(ar.slots, n)
		}
		ar.stats.RegionsReclaimed++
		ar.stats.CellsReclaimed += dead
		ar.live -= dead
		ar.garbage += dead
		ar.pat[n] = 0
	}
	ar.scratch = ar.order[:0]
	ar.order = remaining

	if ar.garbage > 0 && ar.garbage >= ar.live {
		ar.scavenge()
	}

	if ar.autoGrow && ar.capacity > 0 && ar.live > ar.capacity/2 {
		ar.capacity = 2 * ar.live
	}
	return nil
}

// scavenge compacts the from-space with the Cheney two-finger protocol:
// every live region is evacuated to the to-space behind an allocation
// finger, then a scan finger walks the to-space fixing addressing until
// the fingers meet, and the spaces flip.
func (ar *Arena[V]) scavenge() {
	// Evacuation: copy each live region's cells into to-space in creation
	// order, advancing the allocation finger past each. The relocated
	// bases are staged per order position — the pattern words are only
	// rewritten by the scan finger below.
	to := ar.spare[:0]
	newBases := ar.newBases[:0]
	for _, n := range ar.order {
		if n == CD {
			newBases = append(newBases, 0)
			continue
		}
		w := ar.pat[n]
		newBases = append(newBases, int32(len(to)))
		if w&patBroken == 0 {
			base := patBase(w)
			to = append(to, ar.space[base:base+patCount(w)]...)
		} else {
			for _, idx := range ar.slots[n] {
				to = append(to, ar.space[idx])
			}
		}
	}
	alloc := len(to) // the allocation finger after the last evacuation

	// Scan: advance the scan finger over the evacuated cells until it
	// meets the allocation finger. λGC cell contents hold logical ν.ℓ
	// addresses that survive relocation unchanged, so the per-cell fix
	// reduces to repacking each region's pattern word at its to-space
	// position; evacuation made every survivor contiguous, so the broken
	// bits and the slot tables are dropped wholesale.
	scan := 0
	for i, n := range ar.order {
		if n == CD {
			continue
		}
		w := ar.pat[n]
		if scan != int(newBases[i]) {
			panic(fmt.Sprintf("regions: scavenge fingers out of sync at %s: scan %d, base %d", n, scan, newBases[i]))
		}
		ar.pat[n] = patLive | uint64(newBases[i])<<patBaseShift | uint64(patCount(w))<<patCountShift
		scan += patCount(w)
	}
	if scan != alloc {
		panic(fmt.Sprintf("regions: scavenge fingers never met: scan %d, alloc %d", scan, alloc))
	}
	clear(ar.slots)
	ar.newBases = newBases[:0]

	// Flip: the old from-space becomes the next to-space. Clearing it
	// drops the dead cells' contents for the host GC.
	clear(ar.space)
	ar.spare = ar.space[:0]
	ar.space = to
	ar.garbage = 0
}

// Full reports whether region n has reached the fullness threshold.
func (ar *Arena[V]) Full(n Name) bool {
	if ar.capacity <= 0 {
		return false
	}
	return ar.Size(n) >= ar.capacity
}

// Size returns the number of cells allocated in region n (0 if dead).
func (ar *Arena[V]) Size(n Name) int {
	if n == CD {
		return len(ar.cd)
	}
	if !ar.Has(n) {
		return 0
	}
	return patCount(ar.pat[n])
}

// LiveCells returns the number of live cells outside the code region.
func (ar *Arena[V]) LiveCells() int { return ar.live }

// Regions returns the live region names in creation order.
func (ar *Arena[V]) Regions() []Name {
	return append([]Name(nil), ar.order...)
}

// Cells returns the addresses of every live cell, in deterministic order.
func (ar *Arena[V]) Cells() []Addr {
	var out []Addr
	for _, n := range ar.order {
		for off := 0; off < ar.Size(n); off++ {
			out = append(out, Addr{Region: n, Off: off})
		}
	}
	return out
}
