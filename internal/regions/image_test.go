package regions

import "testing"

// buildStore drives a store through a representative history: code
// installs, region churn, interleaved puts (which break arena contiguity),
// sets, and reclamations.
func buildStore(t *testing.T, b Backend) Store[int] {
	t.Helper()
	s := NewStore[int](b, 4)
	s.SetAutoGrow(true)
	for i := 0; i < 3; i++ {
		if _, err := s.Put(CD, 100+i); err != nil {
			t.Fatal(err)
		}
	}
	r1 := s.NewRegion()
	r2 := s.NewRegion()
	for i := 0; i < 5; i++ {
		if _, err := s.Put(r1, i); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put(r2, 10*i); err != nil { // interleaved: breaks contiguity
			t.Fatal(err)
		}
	}
	if err := s.Set(Addr{Region: r1, Off: 2}, 999); err != nil {
		t.Fatal(err)
	}
	if err := s.Only([]Name{r2}); err != nil {
		t.Fatal(err)
	}
	r3 := s.NewRegion()
	for i := 0; i < 7; i++ {
		if _, err := s.Put(r3, 1000+i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get(Addr{Region: r3, Off: 0}); err != nil {
		t.Fatal(err)
	}
	return s
}

func sameObservable(t *testing.T, want, got Store[int]) {
	t.Helper()
	if want.Stats() != got.Stats() {
		t.Fatalf("stats: want %+v got %+v", want.Stats(), got.Stats())
	}
	if want.LiveCells() != got.LiveCells() {
		t.Fatalf("live cells: want %d got %d", want.LiveCells(), got.LiveCells())
	}
	if want.Capacity() != got.Capacity() {
		t.Fatalf("capacity: want %d got %d", want.Capacity(), got.Capacity())
	}
	wc, gc := want.Cells(), got.Cells()
	if len(wc) != len(gc) {
		t.Fatalf("cell count: want %d got %d", len(wc), len(gc))
	}
	for i, a := range wc {
		if gc[i] != a {
			t.Fatalf("cell %d: want addr %v got %v", i, a, gc[i])
		}
		wv, _ := want.Peek(a)
		gv, ok := got.Peek(a)
		if !ok || wv != gv {
			t.Fatalf("cell %v: want %d got %d (ok=%v)", a, wv, gv, ok)
		}
	}
}

// sameFuture drives both stores through the same post-restore history and
// requires identical addresses and counters — the property resumed runs
// rely on.
func sameFuture(t *testing.T, a, b Store[int]) {
	t.Helper()
	na, nb := a.NewRegion(), b.NewRegion()
	if na != nb {
		t.Fatalf("fresh region name: %v vs %v", na, nb)
	}
	for i := 0; i < 3; i++ {
		aa, err1 := a.Put(na, i)
		ab, err2 := b.Put(nb, i)
		if err1 != nil || err2 != nil || aa != ab {
			t.Fatalf("put %d: %v/%v addr %v vs %v", i, err1, err2, aa, ab)
		}
	}
	if err := a.Only([]Name{na}); err != nil {
		t.Fatal(err)
	}
	if err := b.Only([]Name{nb}); err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("post-restore stats: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestImageRoundTripAllBackendPairs(t *testing.T) {
	for _, from := range Backends() {
		for _, to := range Backends() {
			t.Run(from.String()+"_to_"+to.String(), func(t *testing.T) {
				src := buildStore(t, from)
				img := Snapshot(src)
				if err := img.Validate(); err != nil {
					t.Fatalf("snapshot does not validate: %v", err)
				}
				if !img.AutoGrow {
					t.Fatal("snapshot lost the auto-grow flag")
				}
				got, err := Restore(to, img)
				if err != nil {
					t.Fatal(err)
				}
				if got.Backend() != to {
					t.Fatalf("restored backend %v, want %v", got.Backend(), to)
				}
				if !got.AutoGrow() {
					t.Fatal("restore lost the auto-grow flag")
				}
				sameObservable(t, src, got)
				// A second restore from the same image must still work (the
				// image is not consumed) and the two must evolve identically.
				again, err := Restore(to, img)
				if err != nil {
					t.Fatal(err)
				}
				sameFuture(t, got, again)
			})
		}
	}
}

func TestImageRestoreMatchesOriginalFuture(t *testing.T) {
	// The restored store and the original must issue identical names,
	// addresses, and counters from here on — across backends.
	orig := buildStore(t, BackendMap)
	img := Snapshot(orig)
	restored, err := Restore(BackendArena, img)
	if err != nil {
		t.Fatal(err)
	}
	sameFuture(t, orig, restored)
}

func TestImageValidateRejectsCorruption(t *testing.T) {
	fresh := func() Image[int] { return Snapshot(buildStore(t, BackendArena)) }
	cases := []struct {
		name   string
		break_ func(*Image[int])
	}{
		{"counter drift", func(img *Image[int]) { img.Counter++ }},
		{"dead pattern", func(img *Image[int]) { img.Regions[1].Pattern &^= 1 }},
		{"broken pattern", func(img *Image[int]) { img.Regions[1].Pattern |= 2 }},
		{"count lie", func(img *Image[int]) { img.Regions[1].Pattern += 1 << 34 }},
		{"base lie", func(img *Image[int]) { img.Regions[2].Pattern += 1 << 2 }},
		{"cd missing", func(img *Image[int]) { img.Regions = img.Regions[1:] }},
		{"order flip", func(img *Image[int]) {
			img.Regions[1], img.Regions[2] = img.Regions[2], img.Regions[1]
		}},
		{"extra cell", func(img *Image[int]) {
			img.Regions[1].Cells = append(img.Regions[1].Cells, 7)
		}},
		{"puts conservation", func(img *Image[int]) { img.Stats.Puts++ }},
		{"negative counter", func(img *Image[int]) { img.Stats.Gets = -1 }},
		{"high-water lie", func(img *Image[int]) { img.Stats.MaxLiveCells = 0 }},
		{"phantom region", func(img *Image[int]) {
			img.Regions = append(img.Regions, RegionImage[int]{
				Name: img.Regions[len(img.Regions)-1].Name + 5, Pattern: 1,
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := fresh()
			tc.break_(&img)
			if err := img.Validate(); err == nil {
				t.Fatal("corrupted image validated")
			}
			for _, b := range Backends() {
				if _, err := Restore(b, img); err == nil {
					t.Fatalf("corrupted image restored onto %s", b)
				}
			}
		})
	}
}
