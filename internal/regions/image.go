package regions

import "fmt"

// This file is the serializable form of a store: a backend-neutral heap
// image that either backend can export and either backend can rebuild,
// which is what lets a checkpointed run migrate between fleet nodes whose
// substrates differ (arena → map and map → arena both work).
//
// The image is canonical: regions appear in creation order with cd first,
// and every region carries the §8 pattern word it would have immediately
// after a scavenge — live bit set, broken bit clear, base equal to the
// running total of the preceding regions' cells. The map backend has no
// slab, so it synthesizes the canonical words on export; the arena's
// physical layout (slot tables, garbage windows, from-space position) is
// deliberately not serialized, because it is unobservable: addresses are
// logical ν.ℓ pairs and the Stats counters never count physical moves. A
// restored arena therefore starts compact with zero garbage, which is a
// state any run could legally reach.
//
// Restore validates everything it is handed cell-count by cell-count —
// pattern words, creation-order names, the counter identity, and the
// conservation law Puts = cd + live + reclaimed — so a corrupted image is
// rejected with an error, never materialized into a store.

// RegionImage is one live region in an Image: its interned name, its
// canonical §8 pattern word, and its cells at dense offsets.
type RegionImage[V any] struct {
	Name    Name
	Pattern uint64
	Cells   []V
}

// Image is the serializable form of a Store: everything Restore needs to
// rebuild an observationally identical store on any backend.
type Image[V any] struct {
	// From records the exporting backend. Informational: an image restores
	// onto any backend regardless.
	From Backend
	// Capacity is the current fullness threshold (after any auto-growth).
	Capacity int
	// AutoGrow records whether the survivor-driven growth policy is on.
	AutoGrow bool
	// Counter is the next-region interning counter. Both backends issue
	// region names by incrementing it exactly once per NewRegion, so it
	// must equal Stats.RegionsCreated — Restore rejects images where the
	// identity fails.
	Counter uint32
	// Stats are the cumulative traffic counters at capture time. They are
	// restored directly (not replayed through Puts), so a resumed run's
	// counters continue bit-identically.
	Stats Stats
	// Regions holds the live regions in creation order, cd first.
	Regions []RegionImage[V]
}

// maxImageRegions bounds Counter in a restored image. The arena backend
// allocates one pattern word per interned name, so an unvalidated counter
// would let a hostile blob demand gigabytes; 1<<24 names (128 MiB of
// pattern words) is far beyond what the default 50M-step fuel budget can
// intern.
const maxImageRegions = 1 << 24

// Snapshot exports the store as a canonical Image. It reads cells through
// Peek, so taking a snapshot perturbs no counter the co-checker compares.
func Snapshot[V any](s Store[V]) Image[V] {
	names := s.Regions()
	img := Image[V]{
		From:     s.Backend(),
		Capacity: s.Capacity(),
		AutoGrow: s.AutoGrow(),
		Counter:  uint32(s.Stats().RegionsCreated),
		Stats:    s.Stats(),
		Regions:  make([]RegionImage[V], 0, len(names)),
	}
	base := 0
	for _, n := range names {
		size := s.Size(n)
		cells := make([]V, size)
		for off := 0; off < size; off++ {
			v, ok := s.Peek(Addr{Region: n, Off: off})
			if !ok {
				panic(fmt.Sprintf("regions: snapshot lost cell %s.%d", n, off))
			}
			cells[off] = v
		}
		pat := patLive | uint64(size)<<patCountShift
		if n != CD {
			pat |= uint64(base) << patBaseShift
			base += size
		} else {
			// cd keeps its own slab; its pattern word is a live marker only,
			// mirroring NewArena.
			pat = patLive
		}
		img.Regions = append(img.Regions, RegionImage[V]{Name: n, Pattern: pat, Cells: cells})
	}
	return img
}

// Validate checks the image's structural invariants without building a
// store. Restore calls it; external callers can use it to classify a blob
// before paying for reconstruction.
func (img *Image[V]) Validate() error {
	if len(img.Regions) == 0 || img.Regions[0].Name != CD {
		return fmt.Errorf("regions: image must list the code region first")
	}
	if img.Capacity < 0 {
		return fmt.Errorf("regions: image capacity %d is negative", img.Capacity)
	}
	if img.Counter > maxImageRegions {
		return fmt.Errorf("regions: image counter %d exceeds the %d-region limit", img.Counter, maxImageRegions)
	}
	st := img.Stats
	if st.Puts < 0 || st.Gets < 0 || st.Sets < 0 || st.RegionsCreated < 0 ||
		st.RegionsReclaimed < 0 || st.CellsReclaimed < 0 || st.MaxLiveCells < 0 {
		return fmt.Errorf("regions: image has negative counters: %+v", st)
	}
	if uint32(st.RegionsCreated) != img.Counter || st.RegionsCreated > maxImageRegions {
		return fmt.Errorf("regions: image counter %d does not match %d regions created", img.Counter, st.RegionsCreated)
	}
	live, base := 0, 0
	prev := Name(0)
	for i, r := range img.Regions {
		if i > 0 && r.Name <= prev {
			return fmt.Errorf("regions: image region %s out of creation order", r.Name)
		}
		prev = r.Name
		if uint32(r.Name) > img.Counter {
			return fmt.Errorf("regions: image region %s was never interned (counter %d)", r.Name, img.Counter)
		}
		if r.Pattern&patLive == 0 {
			return fmt.Errorf("regions: image region %s pattern word is not live", r.Name)
		}
		if r.Pattern&patBroken != 0 {
			return fmt.Errorf("regions: image region %s pattern word is broken (images are canonical)", r.Name)
		}
		if uint64(len(r.Cells)) > patCountMax {
			return fmt.Errorf("regions: image region %s has %d cells, beyond the pattern word's range", r.Name, len(r.Cells))
		}
		if r.Name == CD {
			if r.Pattern != patLive {
				return fmt.Errorf("regions: image cd pattern word %#x carries a window", r.Pattern)
			}
			continue
		}
		if patCount(r.Pattern) != len(r.Cells) {
			return fmt.Errorf("regions: image region %s pattern count %d does not match %d cells",
				r.Name, patCount(r.Pattern), len(r.Cells))
		}
		if patBase(r.Pattern) != base {
			return fmt.Errorf("regions: image region %s pattern base %d, want %d",
				r.Name, patBase(r.Pattern), base)
		}
		base += len(r.Cells)
		live += len(r.Cells)
	}
	if created, reclaimed := st.RegionsCreated, st.RegionsReclaimed; created-reclaimed != len(img.Regions)-1 {
		return fmt.Errorf("regions: image has %d live regions but counters say %d created - %d reclaimed",
			len(img.Regions)-1, created, reclaimed)
	}
	if st.MaxLiveCells < live {
		return fmt.Errorf("regions: image live cells %d exceed the high-water mark %d", live, st.MaxLiveCells)
	}
	// Conservation: every put is still live, in cd, or was reclaimed.
	if cd := len(img.Regions[0].Cells); st.Puts != cd+live+st.CellsReclaimed {
		return fmt.Errorf("regions: image fails put conservation: %d puts != %d cd + %d live + %d reclaimed",
			st.Puts, cd, live, st.CellsReclaimed)
	}
	return nil
}

// Restore builds a fresh store of the selected backend from a validated
// image. Cell slices are copied, so the image stays usable (a resume retry
// can restore it again) and the store owns its memory.
func Restore[V any](b Backend, img Image[V]) (Store[V], error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	switch b {
	case BackendMap:
		m := &Memory[V]{
			capacity: img.Capacity,
			autoGrow: img.AutoGrow,
			stats:    img.Stats,
			regions:  make(map[Name]*region[V], len(img.Regions)),
			counter:  img.Counter,
		}
		for _, r := range img.Regions {
			m.regions[r.Name] = &region[V]{cells: append([]V(nil), r.Cells...)}
			m.order = append(m.order, r.Name)
			if r.Name != CD {
				m.live += len(r.Cells)
			}
		}
		return m, nil
	case BackendArena:
		ar := &Arena[V]{
			capacity: img.Capacity,
			autoGrow: img.AutoGrow,
			stats:    img.Stats,
			pat:      make([]uint64, img.Counter+1),
			slots:    map[Name][]int32{},
			counter:  img.Counter,
		}
		for _, r := range img.Regions {
			ar.order = append(ar.order, r.Name)
			if r.Name == CD {
				ar.cd = append([]V(nil), r.Cells...)
				ar.pat[CD] = patLive
				continue
			}
			// The canonical base is exactly the compact slab position, so the
			// image's pattern word is the restored word verbatim.
			ar.pat[r.Name] = r.Pattern
			ar.space = append(ar.space, r.Cells...)
			ar.live += len(r.Cells)
		}
		return ar, nil
	default:
		return nil, fmt.Errorf("regions: cannot restore image onto backend %s", b)
	}
}
