package regions

import (
	"math/rand"
	"testing"
)

// forEachBackend runs a subtest against a fresh store of every backend,
// plus the seed's string-keyed store kept as the benchmark baseline — it
// is not selectable, but it must honor the same Store contract and counter
// identities for its replay numbers to mean anything.
func forEachBackend(t *testing.T, capacity int, f func(t *testing.T, s Store[int])) {
	t.Helper()
	for _, b := range Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			f(t, NewStore[int](b, capacity))
		})
	}
	t.Run(BackendLegacyString.String(), func(t *testing.T) {
		f(t, NewLegacyString[int](capacity))
	})
}

func TestBackendConformance(t *testing.T) {
	forEachBackend(t, 0, func(t *testing.T, s Store[int]) {
		r1 := s.NewRegion()
		r2 := s.NewRegion()
		if r1 != 1 || r2 != 2 {
			t.Fatalf("region ids = %d, %d; want 1, 2", r1, r2)
		}
		a1, err := s.Put(r1, 10)
		if err != nil {
			t.Fatal(err)
		}
		a2, _ := s.Put(r2, 20)
		a3, _ := s.Put(r1, 30) // interleaved: breaks arena contiguity
		ac, _ := s.Put(CD, 99)
		for _, c := range []struct {
			a    Addr
			want int
		}{{a1, 10}, {a2, 20}, {a3, 30}, {ac, 99}} {
			if v, err := s.Get(c.a); err != nil || v != c.want {
				t.Errorf("Get(%s) = %d, %v; want %d", c.a, v, err, c.want)
			}
		}
		if err := s.Set(a3, 31); err != nil {
			t.Fatal(err)
		}
		if v, _ := s.Get(a3); v != 31 {
			t.Errorf("Get after Set = %d", v)
		}
		if got := s.LiveCells(); got != 3 {
			t.Errorf("LiveCells = %d, want 3 (cd excluded)", got)
		}
		if got := s.Size(r1); got != 2 {
			t.Errorf("Size(r1) = %d, want 2", got)
		}
		if err := s.Only([]Name{r1}); err != nil {
			t.Fatal(err)
		}
		if s.Has(r2) || !s.Has(r1) || !s.Has(CD) {
			t.Errorf("Only kept the wrong regions")
		}
		if v, err := s.Get(a1); err != nil || v != 10 {
			t.Errorf("survivor cell: %d, %v", v, err)
		}
		if v, err := s.Get(ac); err != nil || v != 99 {
			t.Errorf("cd cell after Only: %d, %v", v, err)
		}
		if _, err := s.Get(a2); err == nil {
			t.Errorf("read from reclaimed region succeeded")
		}
		st := s.Stats()
		want := Stats{Puts: 4, Gets: 7, Sets: 1, RegionsCreated: 2,
			RegionsReclaimed: 1, CellsReclaimed: 1, MaxLiveCells: 3}
		if st != want {
			t.Errorf("stats = %+v, want %+v", st, want)
		}
		if err := s.Only([]Name{r2}); err == nil {
			t.Errorf("only keeping a dead region should error")
		}
		if s.Stats() != st {
			t.Errorf("erroring Only mutated stats: %+v", s.Stats())
		}
	})
}

func TestBackendPeekCorrupt(t *testing.T) {
	forEachBackend(t, 0, func(t *testing.T, s Store[int]) {
		r := s.NewRegion()
		a, _ := s.Put(r, 7)
		before := s.Stats()
		if v, ok := s.Peek(a); !ok || v != 7 {
			t.Errorf("Peek = %d, %v", v, ok)
		}
		if !s.Corrupt(a, 8) {
			t.Errorf("Corrupt of live cell failed")
		}
		if s.Stats() != before {
			t.Errorf("Peek/Corrupt moved counters: %+v", s.Stats())
		}
		if v, _ := s.Get(a); v != 8 {
			t.Errorf("corrupted cell reads %d", v)
		}
		if _, ok := s.Peek(Addr{Region: r, Off: 99}); ok {
			t.Errorf("Peek of unallocated cell succeeded")
		}
		if s.Corrupt(Addr{Region: 42, Off: 0}, 1) {
			t.Errorf("Corrupt of dead region succeeded")
		}
	})
}

func TestBackendFullnessAndAutoGrow(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, s Store[int]) {
		s.SetAutoGrow(true)
		r := s.NewRegion()
		s.Put(r, 1)
		if s.Full(r) {
			t.Errorf("1/2 region reported full")
		}
		s.Put(r, 2)
		if !s.Full(r) {
			t.Errorf("2/2 region not reported full")
		}
		// 2 survivors > capacity/2 = 1, so the capacity doubles to 4.
		if err := s.Only([]Name{r}); err != nil {
			t.Fatal(err)
		}
		if got := s.Capacity(); got != 4 {
			t.Errorf("capacity after growth = %d, want 4", got)
		}
		if s.Full(r) {
			t.Errorf("region full after growth")
		}
	})
}

func TestBackendCellsOrder(t *testing.T) {
	forEachBackend(t, 0, func(t *testing.T, s Store[int]) {
		r1 := s.NewRegion()
		r2 := s.NewRegion()
		s.Put(r1, 1)
		s.Put(r2, 2)
		s.Put(r1, 3)
		want := []Addr{{r1, 0}, {r1, 1}, {r2, 0}}
		got := s.Cells()
		if len(got) != len(want) {
			t.Fatalf("Cells() = %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Cells()[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	})
}

// TestBackendsAgreeRandomOps drives both backends through the same
// pseudo-random op sequence and asserts identical addresses, values,
// stats, and heap contents throughout — the substrate-level differential
// suite backing the bit-for-bit counter-identity requirement.
func TestBackendsAgreeRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New[int](8)
	m.SetAutoGrow(true)
	// Every other substrate is differentially tested against the map
	// reference: the arena, and the seed's string-keyed baseline.
	others := []Store[int]{NewArena[int](8), NewLegacyString[int](8)}
	for _, s := range others {
		s.SetAutoGrow(true)
	}

	var liveRegions []Name
	var liveAddrs []Addr
	newRegion := func() {
		nm := m.NewRegion()
		for _, s := range others {
			if ns := s.NewRegion(); ns != nm {
				t.Fatalf("NewRegion: map %s %s %s", nm, s.Backend(), ns)
			}
		}
		liveRegions = append(liveRegions, nm)
	}
	newRegion()
	for i := 0; i < 5000; i++ {
		switch op := rng.Intn(100); {
		case op < 5:
			newRegion()
		case op < 55: // put
			n := liveRegions[rng.Intn(len(liveRegions))]
			v := rng.Intn(1000)
			am, em := m.Put(n, v)
			for _, s := range others {
				if as, es := s.Put(n, v); as != am || (em == nil) != (es == nil) {
					t.Fatalf("Put(%s): map (%v,%v) %s (%v,%v)", n, am, em, s.Backend(), as, es)
				}
			}
			liveAddrs = append(liveAddrs, am)
		case op < 80 && len(liveAddrs) > 0: // get
			a := liveAddrs[rng.Intn(len(liveAddrs))]
			vm, em := m.Get(a)
			for _, s := range others {
				if vs, es := s.Get(a); vs != vm || (em == nil) != (es == nil) {
					t.Fatalf("Get(%s): map (%v,%v) %s (%v,%v)", a, vm, em, s.Backend(), vs, es)
				}
			}
		case op < 90 && len(liveAddrs) > 0: // set
			a := liveAddrs[rng.Intn(len(liveAddrs))]
			v := rng.Intn(1000)
			em := m.Set(a, v)
			for _, s := range others {
				if es := s.Set(a, v); (em == nil) != (es == nil) {
					t.Fatalf("Set(%s): map %v %s %v", a, em, s.Backend(), es)
				}
			}
		case op < 95: // only: keep a random 1-3 element subset
			keep := make([]Name, 0, 3)
			for _, n := range liveRegions {
				if rng.Intn(len(liveRegions)) < 2 {
					keep = append(keep, n)
				}
			}
			em := m.Only(keep)
			for _, s := range others {
				if es := s.Only(keep); (em == nil) != (es == nil) {
					t.Fatalf("Only(%v): map %v %s %v", keep, em, s.Backend(), es)
				}
			}
			liveRegions = liveRegions[:0]
			for _, n := range m.Regions() {
				if n != CD {
					liveRegions = append(liveRegions, n)
				}
			}
			if len(liveRegions) == 0 {
				newRegion()
			}
			liveAddrs = liveAddrs[:0]
			for _, a := range m.Cells() {
				liveAddrs = append(liveAddrs, a)
			}
		default: // observers
			n := liveRegions[rng.Intn(len(liveRegions))]
			for _, s := range others {
				if m.Full(n) != s.Full(n) || m.Size(n) != s.Size(n) ||
					m.LiveCells() != s.LiveCells() || m.Capacity() != s.Capacity() {
					t.Fatalf("observer mismatch on %s (%s)", n, s.Backend())
				}
			}
		}
		for _, s := range others {
			if m.Stats() != s.Stats() {
				t.Fatalf("op %d: stats diverged: map %+v %s %+v", i, m.Stats(), s.Backend(), s.Stats())
			}
		}
	}
	// Final heap: identical addresses and identical contents everywhere.
	mc := m.Cells()
	for _, s := range others {
		sc := s.Cells()
		if len(mc) != len(sc) {
			t.Fatalf("cells: map %d %s %d", len(mc), s.Backend(), len(sc))
		}
		for i := range mc {
			if mc[i] != sc[i] {
				t.Fatalf("cell %d: map %v %s %v", i, mc[i], s.Backend(), sc[i])
			}
			vm, _ := m.Peek(mc[i])
			vs, _ := s.Peek(sc[i])
			if vm != vs {
				t.Fatalf("cell %v: map %d %s %d", mc[i], vm, s.Backend(), vs)
			}
		}
	}
}

// TestArenaScavengeRestoresContiguity checks the flip-flop protocol's
// postcondition: interleaved allocation materializes slot tables; once
// garbage reaches the live-set size, the scavenge evacuates survivors
// contiguously and drops the tables. Smaller condemned sets reclaim
// logically without paying for a copy.
func TestArenaScavengeRestoresContiguity(t *testing.T) {
	ar := NewArena[int](0)
	r1, r2 := ar.NewRegion(), ar.NewRegion()
	for i := 0; i < 10; i++ {
		ar.Put(r1, i)
		ar.Put(r2, 100+i)
	}
	if ar.pat[r1]&patBroken == 0 || ar.pat[r2]&patBroken == 0 {
		t.Fatalf("interleaved regions should carry the broken bit")
	}
	if ar.slots[r1] == nil || ar.slots[r2] == nil {
		t.Fatalf("interleaved regions should carry slot tables")
	}
	junk := ar.NewRegion()
	for i := 0; i < 20; i++ {
		ar.Put(junk, -1)
	}
	// 20 condemned cells against 20 survivors: the threshold trips and the
	// spaces flip.
	if err := ar.Only([]Name{r1, r2}); err != nil {
		t.Fatal(err)
	}
	if ar.pat[r1]&patBroken != 0 || ar.pat[r2]&patBroken != 0 || len(ar.slots) != 0 {
		t.Errorf("scavenge left slot tables in place")
	}
	if patBase(ar.pat[r1]) != 0 || patBase(ar.pat[r2]) != 10 {
		t.Errorf("survivors not compacted: bases %d, %d", patBase(ar.pat[r1]), patBase(ar.pat[r2]))
	}
	if len(ar.space) != 20 {
		t.Errorf("to-space holds %d cells, want 20", len(ar.space))
	}
	for i := 0; i < 10; i++ {
		if v, err := ar.Get(Addr{Region: r1, Off: i}); err != nil || v != i {
			t.Errorf("r1.%d = %d, %v", i, v, err)
		}
		if v, err := ar.Get(Addr{Region: r2, Off: i}); err != nil || v != 100+i {
			t.Errorf("r2.%d = %d, %v", i, v, err)
		}
	}
	// Condemning r2 (10 cells) against 11 survivors stays under the
	// threshold: reclamation is logical, no flip, the garbage lingers.
	ar.Put(r1, 999)
	if err := ar.Only([]Name{r1}); err != nil {
		t.Fatal(err)
	}
	if ar.garbage != 10 || len(ar.space) != 21 {
		t.Errorf("small condemned set should defer the scavenge: garbage %d, space %d", ar.garbage, len(ar.space))
	}
	if v, err := ar.Get(Addr{Region: r1, Off: 10}); err != nil || v != 999 {
		t.Errorf("post-reclaim cell = %d, %v", v, err)
	}
	if ar.Has(r2) {
		t.Errorf("r2 survived the collection that condemned it")
	}
	// More junk pushes garbage past the live set; the flipped space is
	// reused and the second scavenge keeps working.
	junk2 := ar.NewRegion()
	for i := 0; i < 12; i++ {
		ar.Put(junk2, -2)
	}
	if err := ar.Only([]Name{r1}); err != nil {
		t.Fatal(err)
	}
	if ar.garbage != 0 || len(ar.space) != 11 || patBase(ar.pat[r1]) != 0 {
		t.Errorf("second scavenge: garbage %d, space %d, base %d", ar.garbage, len(ar.space), patBase(ar.pat[r1]))
	}
	if v, err := ar.Get(Addr{Region: r1, Off: 10}); err != nil || v != 999 {
		t.Errorf("post-flip cell = %d, %v", v, err)
	}
}

// TestTraceReplayAcrossBackends records a workload's op trace on the map
// backend and replays it on the arena, asserting identical stats and heap.
func TestTraceReplayAcrossBackends(t *testing.T) {
	tr := NewTrace[int](New[int](4))
	tr.SetAutoGrow(true)
	var regionsAlive []Name
	for round := 0; round < 20; round++ {
		n := tr.NewRegion()
		regionsAlive = append(regionsAlive, n)
		for i := 0; i < 8; i++ {
			a, err := tr.Put(n, round*100+i)
			if err != nil {
				t.Fatal(err)
			}
			tr.Get(a)
			tr.Full(n)
		}
		if len(regionsAlive) > 2 {
			if err := tr.Only(regionsAlive[len(regionsAlive)-2:]); err != nil {
				t.Fatal(err)
			}
			regionsAlive = regionsAlive[len(regionsAlive)-2:]
			tr.LiveCells()
		}
	}
	for _, b := range Backends() {
		s := NewStore[int](b, 4)
		s.SetAutoGrow(true)
		if err := Replay(tr.Ops, s); err != nil {
			t.Fatalf("replay on %s: %v", b, err)
		}
		if s.Stats() != tr.Stats() {
			t.Errorf("%s replay stats %+v, recorded %+v", b, s.Stats(), tr.Stats())
		}
		rc, tc := s.Cells(), tr.Cells()
		if len(rc) != len(tc) {
			t.Fatalf("%s replay heap %d cells, recorded %d", b, len(rc), len(tc))
		}
		for i := range rc {
			vr, _ := s.Peek(rc[i])
			vt, _ := tr.Peek(tc[i])
			if rc[i] != tc[i] || vr != vt {
				t.Fatalf("%s replay cell %d: %v=%d, recorded %v=%d", b, i, rc[i], vr, tc[i], vt)
			}
		}
	}
}

func TestParseBackend(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Backend
		err  bool
	}{{"", BackendMap, false}, {"map", BackendMap, false}, {"arena", BackendArena, false}, {"flat", 0, true}} {
		got, err := ParseBackend(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseBackend(%q) = %v, %v", c.in, got, err)
		}
	}
}
