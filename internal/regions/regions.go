// Package regions implements the region memory substrate of λGC's
// allocation semantics (paper §4.1, §6, Fig. 5).
//
// A memory M maps region names ν to regions; a region maps offsets ℓ to
// storable values; an address is a pair ν.ℓ. Allocation (put), reads (get),
// writes (set, used only by the forwarding-pointer collector), whole-region
// reclamation (only ∆), and the "is this region full" test observed by ifgc
// are all provided here. The code region cd is created with the memory,
// can never be reclaimed, and holds the program's functions (§4.3, §6.2).
//
// The memory is generic over the stored value type so the λGC machine and
// the untyped baseline collectors share one substrate and one set of
// statistics.
package regions

import (
	"fmt"
	"sort"
)

// Name is a runtime region name ν.
type Name string

// CD is the distinguished code region (§4.3). It always exists and is
// implicitly retained by only.
const CD Name = "cd"

// Addr is a memory address ν.ℓ.
type Addr struct {
	Region Name
	Off    int
}

func (a Addr) String() string { return fmt.Sprintf("%s.%d", a.Region, a.Off) }

// Stats counts memory traffic. All counters are cumulative over the life
// of the Memory.
type Stats struct {
	Puts             int // cells allocated
	Gets             int // cells read
	Sets             int // cells overwritten (forwarding installs)
	RegionsCreated   int // let region executions (excluding cd)
	RegionsReclaimed int // regions freed by only
	CellsReclaimed   int // cells freed by only
	MaxLiveCells     int // high-water mark of live non-code cells
}

// A region is a growable array of cells. Offsets are dense, so iteration
// order is deterministic and independent of Go map ordering.
type region[V any] struct {
	cells []V
}

// Memory is a region-structured store.
type Memory[V any] struct {
	// Capacity is the soft per-region fullness threshold observed by
	// Full (and hence by ifgc). Zero means regions never report full.
	// Puts beyond the capacity still succeed: the paper's semantics
	// never blocks allocation, fullness only triggers collection.
	Capacity int

	// AutoGrow enables the heap-growth policy a real collector needs:
	// after a reclamation (only ∆), if the survivors fill more than half
	// of the capacity, the capacity doubles to at least twice the live
	// size. Without growth, a mutator whose live set reaches the capacity
	// re-triggers a collection at every function entry forever (the
	// paper's gc re-runs the ifgc check on return, §5).
	AutoGrow bool

	// Stats accumulates traffic counters.
	Stats Stats

	regions map[Name]*region[V]
	order   []Name // creation order, for deterministic iteration
	counter int
}

// New returns a memory containing only the code region cd.
func New[V any](capacity int) *Memory[V] {
	m := &Memory[V]{Capacity: capacity, regions: make(map[Name]*region[V])}
	m.regions[CD] = &region[V]{}
	m.order = append(m.order, CD)
	return m
}

// NewRegion allocates a fresh empty region and returns its name
// (the ν of "let region r in e").
func (m *Memory[V]) NewRegion() Name {
	m.counter++
	n := Name(fmt.Sprintf("ν%d", m.counter))
	m.regions[n] = &region[V]{}
	m.order = append(m.order, n)
	m.Stats.RegionsCreated++
	return n
}

// Has reports whether region n is live.
func (m *Memory[V]) Has(n Name) bool {
	_, ok := m.regions[n]
	return ok
}

// Put allocates v in region n and returns its address.
func (m *Memory[V]) Put(n Name, v V) (Addr, error) {
	r, ok := m.regions[n]
	if !ok {
		return Addr{}, fmt.Errorf("regions: put into dead region %s", n)
	}
	r.cells = append(r.cells, v)
	m.Stats.Puts++
	if live := m.LiveCells(); live > m.Stats.MaxLiveCells {
		m.Stats.MaxLiveCells = live
	}
	return Addr{Region: n, Off: len(r.cells) - 1}, nil
}

// Get dereferences a.
func (m *Memory[V]) Get(a Addr) (V, error) {
	var zero V
	r, ok := m.regions[a.Region]
	if !ok {
		return zero, fmt.Errorf("regions: get from dead region %s", a.Region)
	}
	if a.Off < 0 || a.Off >= len(r.cells) {
		return zero, fmt.Errorf("regions: get from unallocated address %s", a)
	}
	m.Stats.Gets++
	return r.cells[a.Off], nil
}

// Set overwrites the cell at a (the forwarding-pointer install of §7).
func (m *Memory[V]) Set(a Addr, v V) error {
	r, ok := m.regions[a.Region]
	if !ok {
		return fmt.Errorf("regions: set in dead region %s", a.Region)
	}
	if a.Off < 0 || a.Off >= len(r.cells) {
		return fmt.Errorf("regions: set at unallocated address %s", a)
	}
	r.cells[a.Off] = v
	m.Stats.Sets++
	return nil
}

// Corrupt silently overwrites the cell at a, bypassing the statistics a
// Set would record. It exists solely for fault injection (internal/fault's
// machine.corrupt point): synthetic heap corruption must not perturb the
// counter identities that oracle co-checking compares, so the damage can
// only surface through later machine behavior. Reports whether a named a
// live cell.
func (m *Memory[V]) Corrupt(a Addr, v V) bool {
	r, ok := m.regions[a.Region]
	if !ok || a.Off < 0 || a.Off >= len(r.cells) {
		return false
	}
	r.cells[a.Off] = v
	return true
}

// Only reclaims every region not listed in keep ("only ∆ in e"). The code
// region is always retained, as in the paper's typing rule. Keeping an
// already-dead region name is an error (the static semantics prevents it).
func (m *Memory[V]) Only(keep []Name) error {
	keepSet := map[Name]bool{CD: true}
	for _, n := range keep {
		if !m.Has(n) {
			return fmt.Errorf("regions: only keeps dead region %s", n)
		}
		keepSet[n] = true
	}
	var remaining []Name
	for _, n := range m.order {
		if keepSet[n] {
			remaining = append(remaining, n)
			continue
		}
		m.Stats.RegionsReclaimed++
		m.Stats.CellsReclaimed += len(m.regions[n].cells)
		delete(m.regions, n)
	}
	m.order = remaining
	if m.AutoGrow && m.Capacity > 0 {
		if live := m.LiveCells(); live > m.Capacity/2 {
			m.Capacity = 2 * live
		}
	}
	return nil
}

// Full reports whether region n has reached the fullness threshold. It is
// the oracle behind ifgc's "if ρ is full" side condition (Fig. 5).
func (m *Memory[V]) Full(n Name) bool {
	if m.Capacity <= 0 {
		return false
	}
	r, ok := m.regions[n]
	return ok && len(r.cells) >= m.Capacity
}

// Size returns the number of cells allocated in region n (0 if dead).
func (m *Memory[V]) Size(n Name) int {
	r, ok := m.regions[n]
	if !ok {
		return 0
	}
	return len(r.cells)
}

// LiveCells returns the number of live cells outside the code region.
func (m *Memory[V]) LiveCells() int {
	total := 0
	for n, r := range m.regions {
		if n == CD {
			continue
		}
		total += len(r.cells)
	}
	return total
}

// Regions returns the live region names in creation order.
func (m *Memory[V]) Regions() []Name {
	return append([]Name(nil), m.order...)
}

// Cells returns the addresses of every live cell, in deterministic order.
func (m *Memory[V]) Cells() []Addr {
	var out []Addr
	for _, n := range m.order {
		for off := range m.regions[n].cells {
			out = append(out, Addr{Region: n, Off: off})
		}
	}
	return out
}

// SortedNames sorts region names lexicographically (a helper for stable
// diagnostics).
func SortedNames(ns []Name) []Name {
	out := append([]Name(nil), ns...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
