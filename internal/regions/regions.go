// Package regions implements the region memory substrate of λGC's
// allocation semantics (paper §4.1, §6, Fig. 5).
//
// A memory M maps region names ν to regions; a region maps offsets ℓ to
// storable values; an address is a pair ν.ℓ. Allocation (put), reads (get),
// writes (set, used only by the forwarding-pointer collector), whole-region
// reclamation (only ∆), and the "is this region full" test observed by ifgc
// are all provided here. The code region cd is created with the memory,
// can never be reclaimed, and holds the program's functions (§4.3, §6.2).
//
// Region names are dense uint32 ids (cd = 0), the bit-pattern region
// encoding the paper flags as the realistic refinement (§8). Two backends
// implement the Store interface over that representation: the map-backed
// Memory (one Go slice per region, regions in a map — the semantic
// reference the subst oracle and co-checker run on) and the flat Arena
// (all cells in one slab, reclamation by Cheney two-finger scavenge; see
// arena.go). Both are generic over the stored value type so the λGC
// machines and the untyped baseline collectors share one substrate and one
// set of statistics, and both maintain the Stats counters identically,
// bit for bit — the cross-backend differential suite depends on that.
package regions

import (
	"fmt"
	"sort"
)

// Name is a runtime region name ν: a dense id interned at creation.
type Name uint32

// CD is the distinguished code region (§4.3). It always exists and is
// implicitly retained by only.
const CD Name = 0

func (n Name) String() string {
	if n == CD {
		return "cd"
	}
	return fmt.Sprintf("ν%d", uint32(n))
}

// Addr is a memory address ν.ℓ. It carries no strings or pointers, so
// address comparison and hashing are word operations.
type Addr struct {
	Region Name
	Off    int
}

func (a Addr) String() string { return fmt.Sprintf("%s.%d", a.Region, a.Off) }

// Stats counts memory traffic. All counters are cumulative over the life
// of the store. Both backends update every counter at the same operations
// with the same values, so Stats from a map run and an arena run of the
// same program are equal as structs.
type Stats struct {
	Puts             int // cells allocated
	Gets             int // cells read
	Sets             int // cells overwritten (forwarding installs)
	RegionsCreated   int // let region executions (excluding cd)
	RegionsReclaimed int // regions freed by only
	CellsReclaimed   int // cells freed by only
	MaxLiveCells     int // high-water mark of live non-code cells
}

// Store is the memory substrate interface the λGC machines run over. The
// two implementations are the map-backed Memory (New) and the flat Arena
// (NewArena); NewStore selects by Backend. Implementations must issue the
// same Names in the same order (ν1, ν2, … in creation order) and maintain
// Stats identically, so that addresses, traces, and counters from
// different backends are directly comparable.
type Store[V any] interface {
	// NewRegion allocates a fresh empty region and returns its name
	// (the ν of "let region r in e").
	NewRegion() Name
	// Has reports whether region n is live.
	Has(n Name) bool
	// Put allocates v in region n and returns its address.
	Put(n Name, v V) (Addr, error)
	// Get dereferences a.
	Get(a Addr) (V, error)
	// Set overwrites the cell at a (the forwarding-pointer install of §7).
	Set(a Addr, v V) error
	// Peek reads the cell at a without counting a Get. It serves the
	// bookkeeping reads that are not part of the program's memory traffic
	// (ghost-mode re-annotation, diagnostics); the counter identities the
	// co-checker compares must not see them.
	Peek(a Addr) (V, bool)
	// Corrupt silently overwrites the cell at a, bypassing statistics.
	// It exists for fault injection (internal/fault's machine.corrupt
	// point) and for the same bookkeeping writes Peek serves on the read
	// side: synthetic heap corruption must not perturb the counter
	// identities that oracle co-checking compares, so the damage can only
	// surface through later machine behavior. Reports whether a named a
	// live cell.
	Corrupt(a Addr, v V) bool
	// Only reclaims every region not listed in keep ("only ∆ in e"). The
	// code region is always retained, as in the paper's typing rule.
	// Keeping an already-dead region name is an error (the static
	// semantics prevents it), and an erroring Only has no effect.
	Only(keep []Name) error
	// Full reports whether region n has reached the fullness threshold.
	// It is the oracle behind ifgc's "if ρ is full" side condition
	// (Fig. 5).
	Full(n Name) bool
	// Size returns the number of cells allocated in region n (0 if dead).
	Size(n Name) int
	// LiveCells returns the number of live cells outside the code region.
	LiveCells() int
	// Regions returns the live region names in creation order.
	Regions() []Name
	// Cells returns the addresses of every live cell, region-major in
	// creation order, offsets ascending.
	Cells() []Addr
	// Stats returns the cumulative traffic counters.
	Stats() Stats
	// Capacity returns the soft per-region fullness threshold observed by
	// Full (and hence by ifgc). Zero means regions never report full.
	// Puts beyond the capacity still succeed: the paper's semantics never
	// blocks allocation, fullness only triggers collection.
	Capacity() int
	// AutoGrow reports whether the heap-growth policy is enabled. Snapshot
	// records it so a restored store keeps the policy of the original.
	AutoGrow() bool
	// SetAutoGrow enables the heap-growth policy a real collector needs:
	// after a reclamation (only ∆), if the survivors fill more than half
	// of the capacity, the capacity doubles to at least twice the live
	// size. Without growth, a mutator whose live set reaches the capacity
	// re-triggers a collection at every function entry forever (the
	// paper's gc re-runs the ifgc check on return, §5).
	SetAutoGrow(on bool)
	// Backend identifies the implementation.
	Backend() Backend
}

// Backend selects a Store implementation.
type Backend int

const (
	// BackendMap is the map-backed Memory: one Go slice per region,
	// regions keyed by id in a map. The subst oracle and the co-checker's
	// oracle side always run on it.
	BackendMap Backend = iota
	// BackendArena is the flat Arena: all cells bump-allocated in one
	// slab, reclamation by Cheney two-finger scavenge into a to-space.
	BackendArena
)

func (b Backend) String() string {
	switch b {
	case BackendMap:
		return "map"
	case BackendArena:
		return "arena"
	case BackendLegacyString:
		return "legacy-string"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// ParseBackend parses a backend name. The empty string selects the map
// backend (the historical default).
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "map":
		return BackendMap, nil
	case "arena":
		return BackendArena, nil
	default:
		return 0, fmt.Errorf("regions: unknown backend %q (want map or arena)", s)
	}
}

// Backends lists the selectable backends.
func Backends() []Backend { return []Backend{BackendMap, BackendArena} }

// NewStore returns a fresh store of the selected backend containing only
// the code region cd.
func NewStore[V any](b Backend, capacity int) Store[V] {
	if b == BackendArena {
		return NewArena[V](capacity)
	}
	return New[V](capacity)
}

// A region is a growable array of cells. Offsets are dense, so iteration
// order is deterministic and independent of Go map ordering.
type region[V any] struct {
	cells []V
}

// Memory is the map-backed region store.
type Memory[V any] struct {
	capacity int
	autoGrow bool
	stats    Stats

	regions map[Name]*region[V]
	order   []Name // creation order, for deterministic iteration
	live    int    // live non-code cells, maintained incrementally
	counter uint32

	scratch []Name // reusable survivor buffer for Only
}

// New returns a map-backed memory containing only the code region cd.
func New[V any](capacity int) *Memory[V] {
	m := &Memory[V]{capacity: capacity, regions: make(map[Name]*region[V])}
	m.regions[CD] = &region[V]{}
	m.order = append(m.order, CD)
	return m
}

// Backend identifies the implementation.
func (m *Memory[V]) Backend() Backend { return BackendMap }

// Stats returns the cumulative traffic counters.
func (m *Memory[V]) Stats() Stats { return m.stats }

// Capacity returns the per-region fullness threshold (see Store).
func (m *Memory[V]) Capacity() int { return m.capacity }

// AutoGrow reports whether the heap-growth policy is enabled.
func (m *Memory[V]) AutoGrow() bool { return m.autoGrow }

// SetAutoGrow enables the survivor-driven heap-growth policy (see Store).
func (m *Memory[V]) SetAutoGrow(on bool) { m.autoGrow = on }

// NewRegion allocates a fresh empty region and returns its name.
func (m *Memory[V]) NewRegion() Name {
	m.counter++
	n := Name(m.counter)
	m.regions[n] = &region[V]{}
	m.order = append(m.order, n)
	m.stats.RegionsCreated++
	return n
}

// Has reports whether region n is live.
func (m *Memory[V]) Has(n Name) bool {
	_, ok := m.regions[n]
	return ok
}

// Put allocates v in region n and returns its address.
func (m *Memory[V]) Put(n Name, v V) (Addr, error) {
	r, ok := m.regions[n]
	if !ok {
		return Addr{}, fmt.Errorf("regions: put into dead region %s", n)
	}
	r.cells = append(r.cells, v)
	m.stats.Puts++
	if n != CD {
		m.live++
		if m.live > m.stats.MaxLiveCells {
			m.stats.MaxLiveCells = m.live
		}
	}
	return Addr{Region: n, Off: len(r.cells) - 1}, nil
}

// Get dereferences a.
func (m *Memory[V]) Get(a Addr) (V, error) {
	var zero V
	r, ok := m.regions[a.Region]
	if !ok {
		return zero, fmt.Errorf("regions: get from dead region %s", a.Region)
	}
	if a.Off < 0 || a.Off >= len(r.cells) {
		return zero, fmt.Errorf("regions: get from unallocated address %s", a)
	}
	m.stats.Gets++
	return r.cells[a.Off], nil
}

// Set overwrites the cell at a (the forwarding-pointer install of §7).
func (m *Memory[V]) Set(a Addr, v V) error {
	r, ok := m.regions[a.Region]
	if !ok {
		return fmt.Errorf("regions: set in dead region %s", a.Region)
	}
	if a.Off < 0 || a.Off >= len(r.cells) {
		return fmt.Errorf("regions: set at unallocated address %s", a)
	}
	r.cells[a.Off] = v
	m.stats.Sets++
	return nil
}

// Peek reads the cell at a without counting a Get (see Store).
func (m *Memory[V]) Peek(a Addr) (V, bool) {
	var zero V
	r, ok := m.regions[a.Region]
	if !ok || a.Off < 0 || a.Off >= len(r.cells) {
		return zero, false
	}
	return r.cells[a.Off], true
}

// Corrupt silently overwrites the cell at a, bypassing statistics (see
// Store).
func (m *Memory[V]) Corrupt(a Addr, v V) bool {
	r, ok := m.regions[a.Region]
	if !ok || a.Off < 0 || a.Off >= len(r.cells) {
		return false
	}
	r.cells[a.Off] = v
	return true
}

// keepsName reports whether keep retains n. The keep list of a real
// collection has 1–3 entries (the collector's to-space and survivor
// regions), so a linear scan beats building a set — and allocates nothing.
func keepsName(keep []Name, n Name) bool {
	if n == CD {
		return true
	}
	for _, k := range keep {
		if k == n {
			return true
		}
	}
	return false
}

// Only reclaims every region not listed in keep ("only ∆ in e").
func (m *Memory[V]) Only(keep []Name) error {
	for _, n := range keep {
		if !m.Has(n) {
			return fmt.Errorf("regions: only keeps dead region %s", n)
		}
	}
	remaining := m.scratch[:0]
	for _, n := range m.order {
		if keepsName(keep, n) {
			remaining = append(remaining, n)
			continue
		}
		dead := len(m.regions[n].cells)
		m.stats.RegionsReclaimed++
		m.stats.CellsReclaimed += dead
		m.live -= dead
		delete(m.regions, n)
	}
	m.scratch = m.order[:0] // recycle the old order slice next time
	m.order = remaining
	if m.autoGrow && m.capacity > 0 && m.live > m.capacity/2 {
		m.capacity = 2 * m.live
	}
	return nil
}

// Full reports whether region n has reached the fullness threshold.
func (m *Memory[V]) Full(n Name) bool {
	if m.capacity <= 0 {
		return false
	}
	r, ok := m.regions[n]
	return ok && len(r.cells) >= m.capacity
}

// Size returns the number of cells allocated in region n (0 if dead).
func (m *Memory[V]) Size(n Name) int {
	r, ok := m.regions[n]
	if !ok {
		return 0
	}
	return len(r.cells)
}

// LiveCells returns the number of live cells outside the code region.
func (m *Memory[V]) LiveCells() int { return m.live }

// Regions returns the live region names in creation order.
func (m *Memory[V]) Regions() []Name {
	return append([]Name(nil), m.order...)
}

// Cells returns the addresses of every live cell, in deterministic order.
func (m *Memory[V]) Cells() []Addr {
	var out []Addr
	for _, n := range m.order {
		for off := range m.regions[n].cells {
			out = append(out, Addr{Region: n, Off: off})
		}
	}
	return out
}

// SortedNames sorts region names by id — which is creation order — for
// stable diagnostics.
func SortedNames(ns []Name) []Name {
	out := append([]Name(nil), ns...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
