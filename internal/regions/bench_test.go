package regions

import (
	"fmt"
	"testing"
)

// benchBackends runs a sub-benchmark against a fresh store of each
// backend, plus the seed's string-keyed substrate as the baseline the
// regression numbers are read against.
func benchBackends(b *testing.B, capacity int, f func(b *testing.B, mk func() Store[int])) {
	for _, be := range Backends() {
		be := be
		b.Run(be.String(), func(b *testing.B) {
			f(b, func() Store[int] { return NewStore[int](be, capacity) })
		})
	}
	b.Run(BackendLegacyString.String(), func(b *testing.B) {
		f(b, func() Store[int] { return NewLegacyString[int](capacity) })
	})
}

// BenchmarkPut is the O(1)-allocation regression for the hot path: Put
// must not scan live regions (the old MaxLiveCells maintenance did) and
// must allocate only the amortized slab growth. With many live regions the
// per-op time must stay flat.
func BenchmarkPut(b *testing.B) {
	for _, liveRegions := range []int{1, 256} {
		b.Run(fmt.Sprintf("regions=%d", liveRegions), func(b *testing.B) {
			benchBackends(b, 0, func(b *testing.B, mk func() Store[int]) {
				s := mk()
				rs := make([]Name, liveRegions)
				for i := range rs {
					rs[i] = s.NewRegion()
					s.Put(rs[i], i) // non-empty so LiveCells sums real sizes
				}
				r := rs[0]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Put(r, i); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkGet(b *testing.B) {
	benchBackends(b, 0, func(b *testing.B, mk func() Store[int]) {
		s := mk()
		// Two interleaved regions so the arena measures its slot-table
		// path too, not just the contiguous fast path.
		r1, r2 := s.NewRegion(), s.NewRegion()
		const n = 1024
		addrs := make([]Addr, 0, 2*n)
		for i := 0; i < n; i++ {
			a1, _ := s.Put(r1, i)
			a2, _ := s.Put(r2, i)
			addrs = append(addrs, a1, a2)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Get(addrs[i%len(addrs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSet(b *testing.B) {
	benchBackends(b, 0, func(b *testing.B, mk func() Store[int]) {
		s := mk()
		r := s.NewRegion()
		const n = 1024
		addrs := make([]Addr, n)
		for i := 0; i < n; i++ {
			addrs[i], _ = s.Put(r, i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Set(addrs[i%n], i); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOnly measures one collection cycle: allocate a condemned and a
// survivor region, reclaim the condemned one. ReportAllocs pins the
// keep-set delta: the keep list is scanned, not hashed into a fresh map,
// so steady-state collections allocate nothing beyond slab growth.
func BenchmarkOnly(b *testing.B) {
	for _, liveCells := range []int{4, 256} {
		b.Run(fmt.Sprintf("live=%d", liveCells), func(b *testing.B) {
			benchBackends(b, 0, func(b *testing.B, mk func() Store[int]) {
				s := mk()
				keep := []Name{s.NewRegion()}
				for i := 0; i < liveCells; i++ {
					s.Put(keep[0], i)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dead := s.NewRegion()
					for j := 0; j < 4; j++ {
						s.Put(dead, j)
					}
					if err := s.Only(keep); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
