package regions

import "fmt"

// This file provides op-trace record and replay: a Trace store wraps any
// backend and logs every operation, and Replay re-executes a log against a
// fresh store. The benchmark harness uses it to measure the substrate in
// isolation — record the exact memory traffic of a workload once, then
// replay the identical op sequence against each backend — so backend
// comparisons see only store costs, not machine interpretation.

// OpKind identifies one Store operation.
type OpKind uint8

// The recordable operations.
const (
	OpNewRegion OpKind = iota
	OpPut
	OpGet
	OpSet
	OpOnly
	OpFull
	OpSize
	OpLiveCells
	OpHas
)

// Op is one recorded store operation with its operands.
type Op[V any] struct {
	Kind OpKind
	N    Name   // NewRegion result / Put, Full, Size, Has operand
	A    Addr   // Get, Set operand
	V    V      // Put, Set operand
	Keep []Name // Only operand (copied; callers reuse their keep buffers)
}

// Trace is a Store that forwards to Inner and appends every operation to
// Ops.
type Trace[V any] struct {
	Inner Store[V]
	Ops   []Op[V]
}

// NewTrace wraps inner in a recording store.
func NewTrace[V any](inner Store[V]) *Trace[V] { return &Trace[V]{Inner: inner} }

func (t *Trace[V]) NewRegion() Name {
	n := t.Inner.NewRegion()
	t.Ops = append(t.Ops, Op[V]{Kind: OpNewRegion, N: n})
	return n
}

func (t *Trace[V]) Has(n Name) bool {
	t.Ops = append(t.Ops, Op[V]{Kind: OpHas, N: n})
	return t.Inner.Has(n)
}

func (t *Trace[V]) Put(n Name, v V) (Addr, error) {
	t.Ops = append(t.Ops, Op[V]{Kind: OpPut, N: n, V: v})
	return t.Inner.Put(n, v)
}

func (t *Trace[V]) Get(a Addr) (V, error) {
	t.Ops = append(t.Ops, Op[V]{Kind: OpGet, A: a})
	return t.Inner.Get(a)
}

func (t *Trace[V]) Set(a Addr, v V) error {
	t.Ops = append(t.Ops, Op[V]{Kind: OpSet, A: a, V: v})
	return t.Inner.Set(a, v)
}

func (t *Trace[V]) Peek(a Addr) (V, bool) {
	// Bookkeeping reads are not memory traffic; deliberately not recorded.
	return t.Inner.Peek(a)
}

func (t *Trace[V]) Corrupt(a Addr, v V) bool {
	// Corruption is fault-injection machinery, not memory traffic; it is
	// deliberately not recorded.
	return t.Inner.Corrupt(a, v)
}

func (t *Trace[V]) Only(keep []Name) error {
	t.Ops = append(t.Ops, Op[V]{Kind: OpOnly, Keep: append([]Name(nil), keep...)})
	return t.Inner.Only(keep)
}

func (t *Trace[V]) Full(n Name) bool {
	t.Ops = append(t.Ops, Op[V]{Kind: OpFull, N: n})
	return t.Inner.Full(n)
}

func (t *Trace[V]) Size(n Name) int {
	t.Ops = append(t.Ops, Op[V]{Kind: OpSize, N: n})
	return t.Inner.Size(n)
}

func (t *Trace[V]) LiveCells() int {
	t.Ops = append(t.Ops, Op[V]{Kind: OpLiveCells})
	return t.Inner.LiveCells()
}

func (t *Trace[V]) Regions() []Name    { return t.Inner.Regions() }
func (t *Trace[V]) Cells() []Addr      { return t.Inner.Cells() }
func (t *Trace[V]) Stats() Stats       { return t.Inner.Stats() }
func (t *Trace[V]) Capacity() int      { return t.Inner.Capacity() }
func (t *Trace[V]) AutoGrow() bool     { return t.Inner.AutoGrow() }
func (t *Trace[V]) SetAutoGrow(b bool) { t.Inner.SetAutoGrow(b) }
func (t *Trace[V]) Backend() Backend   { return t.Inner.Backend() }

// Replay executes a recorded op sequence against s. A log recorded from a
// successful run replays without error on any conforming backend (both
// issue identical region names in identical order).
func Replay[V any](ops []Op[V], s Store[V]) error {
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpNewRegion:
			if n := s.NewRegion(); n != op.N {
				return fmt.Errorf("regions: replay op %d: NewRegion returned %s, recorded %s", i, n, op.N)
			}
		case OpPut:
			if _, err := s.Put(op.N, op.V); err != nil {
				return fmt.Errorf("regions: replay op %d: %w", i, err)
			}
		case OpGet:
			if _, err := s.Get(op.A); err != nil {
				return fmt.Errorf("regions: replay op %d: %w", i, err)
			}
		case OpSet:
			if err := s.Set(op.A, op.V); err != nil {
				return fmt.Errorf("regions: replay op %d: %w", i, err)
			}
		case OpOnly:
			if err := s.Only(op.Keep); err != nil {
				return fmt.Errorf("regions: replay op %d: %w", i, err)
			}
		case OpFull:
			s.Full(op.N)
		case OpSize:
			s.Size(op.N)
		case OpLiveCells:
			s.LiveCells()
		case OpHas:
			s.Has(op.N)
		default:
			return fmt.Errorf("regions: replay op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}
