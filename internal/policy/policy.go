// Package policy closes the observability loop: it turns the per-program
// profiles accumulated by obs.ProfileStore into a per-program choice of
// collector and initial heap capacity. The paper leaves the "if ρ is full"
// oracle abstract — any policy typechecks — so policy is the one degree of
// freedom tunable from observation without touching the TCB: a wrong
// decision can cost time, never correctness. The policy.flip fault point
// and the chaos suite demonstrate exactly that.
package policy

import (
	"fmt"
	"sync"

	"psgc/internal/fault"
	"psgc/internal/obs"
)

// Policy names.
const (
	// Static is the default: the caller's explicit collector and capacity
	// are used unchanged.
	Static = "static"
	// Adaptive consults the profile store and may override both.
	Adaptive = "adaptive"
)

// Parse normalizes a policy name: "" and "static" mean Static, "adaptive"
// means Adaptive, anything else is an error.
func Parse(s string) (string, error) {
	switch s {
	case "", Static:
		return Static, nil
	case Adaptive:
		return Adaptive, nil
	default:
		return "", fmt.Errorf("policy: unknown policy %q (want static or adaptive)", s)
	}
}

// Collectors is the closed set of certified collectors a decision can
// choose between, in flip-rotation order.
var Collectors = []string{"basic", "forwarding", "generational"}

// Decision is one resolved policy choice for one program hash.
type Decision struct {
	Policy    string `json:"policy"`            // "static" or "adaptive"
	Collector string `json:"collector"`         // chosen collector
	Capacity  int    `json:"capacity"`          // chosen initial region capacity
	Reason    string `json:"reason"`            // human-readable rationale
	Runs      int    `json:"runs"`              // profiled runs backing the choice
	Flipped   bool   `json:"flipped,omitempty"` // policy.flip perturbed the collector
}

// Thresholds for the adaptive heuristics. They were tuned against the
// bench workloads (E1 alloc-heavy, shared-DAG, E10 mix) but encode general
// copying-collector tradeoffs, not workload fingerprints.
const (
	// lowSurvivalPct: below this per-collection survival ratio most cells
	// die young, so the generational collector's cheap minor collections
	// win over full scans.
	lowSurvivalPct = 35.0
	// copyAmplification: a basic-collector run whose copies per collection
	// exceed this multiple of the live set is duplicating shared structure
	// (basic copying re-copies every DAG path); forwarding pointers
	// preserve sharing and cap copies at the live set.
	copyAmplification = 1.2
	// minCollections: heuristics need at least this many observed
	// collections before overriding the fallback collector.
	minCollections = 2
	// minRegionLives: the region-lifetime histogram needs at least this
	// many observed region deaths before it carries signal.
	minRegionLives = 8
	// shortLivedPct: when at least this percentage of observed region
	// lifetimes fall in the first two deciles of the run, the program
	// allocates into regions it abandons almost immediately — the
	// infant-mortality profile the generational minor cycle is built for.
	shortLivedPct = 60.0
	// MaxCapacity bounds the capacity a decision may request, so a
	// profile spike cannot commit the service to huge regions.
	MaxCapacity = 4096
	// headroom: the decided capacity targets this multiple of the
	// observed maximum live set, leaving the collector room to breathe.
	headroom = 2
)

// Engine makes decisions from a shared profile store. Safe for concurrent
// use.
type Engine struct {
	store *obs.ProfileStore

	mu          sync.Mutex
	decisions   int64
	cold        int64
	flips       int64
	byCollector map[string]int64
}

// NewEngine wraps store (which may be shared with the component feeding
// profiles in).
func NewEngine(store *obs.ProfileStore) *Engine {
	return &Engine{store: store, byCollector: make(map[string]int64)}
}

// Store returns the engine's underlying profile store.
func (e *Engine) Store() *obs.ProfileStore { return e.store }

// Observe folds a finished run's profile into the store under (hash,
// collector).
func (e *Engine) Observe(hash, collector string, rp obs.RunProfile) {
	e.store.Update(hash, collector, rp)
}

// Counts is a snapshot of the engine's decision counters.
type Counts struct {
	Decisions   int64            `json:"decisions"`
	Cold        int64            `json:"cold"`
	Flips       int64            `json:"flips"`
	ByCollector map[string]int64 `json:"by_collector"`
}

// Counts returns the decision counters accumulated so far.
func (e *Engine) Counts() Counts {
	e.mu.Lock()
	defer e.mu.Unlock()
	by := make(map[string]int64, len(e.byCollector))
	for k, v := range e.byCollector {
		by[k] = v
	}
	return Counts{Decisions: e.decisions, Cold: e.cold, Flips: e.flips, ByCollector: by}
}

// Decide chooses a collector and capacity for the program hash, falling
// back to the caller's static choice when the store holds no usable
// profile (a cold hash). The decision is recorded against the hash so
// healthz can show it, and the counters are updated.
func (e *Engine) Decide(hash, fallbackCollector string, fallbackCapacity int) Decision {
	d := e.decide(hash, fallbackCollector, fallbackCapacity)
	if fault.Should(fault.PolicyFlip) {
		d.Collector = rotate(d.Collector)
		d.Flipped = true
		d.Reason += "; chaos: policy.flip rotated collector"
	}
	e.mu.Lock()
	e.decisions++
	if d.Runs == 0 {
		e.cold++
	}
	if d.Flipped {
		e.flips++
	}
	e.byCollector[d.Collector]++
	e.mu.Unlock()
	e.store.SetDecision(hash, d)
	return d
}

func (e *Engine) decide(hash, fallbackCollector string, fallbackCapacity int) Decision {
	d := Decision{
		Policy:    Adaptive,
		Collector: fallbackCollector,
		Capacity:  fallbackCapacity,
	}
	sum, ok := e.store.Lookup(hash)
	if !ok || sum.Runs == 0 {
		d.Reason = "cold: no profile for hash"
		return d
	}
	d.Runs = sum.Runs

	// Fold the per-collector aggregates into the cross-collector totals
	// the heuristics read. Survival and max-live are collector-independent
	// properties of the program; copy amplification is read off the basic
	// profile specifically, and observed forwards (only the forwarding and
	// generational dialects emit set!) independently witness sharing.
	var copies, freed, collections, forwards, regionLives, shortLives int64
	maxLive := 0
	var basic *obs.CollectorAgg
	for i := range sum.Collectors {
		a := &sum.Collectors[i]
		copies += a.Copies
		freed += a.CellsFreed
		collections += a.Collections
		forwards += a.Forwards
		for b, n := range a.RegionLifeHist {
			regionLives += n
			if b < 2 {
				shortLives += n
			}
		}
		if a.MaxLive > maxLive {
			maxLive = a.MaxLive
		}
		if a.Collector == "basic" {
			basic = a
		}
	}

	// Capacity: give the collector headroom× the observed live ceiling,
	// rounded to a power of two, never below the caller's static choice
	// (the decision must not be riskier than the default) and never above
	// MaxCapacity.
	if maxLive > 0 {
		cap2 := pow2ceil(headroom * maxLive)
		if cap2 > d.Capacity {
			d.Capacity = cap2
		}
		if d.Capacity > MaxCapacity {
			d.Capacity = MaxCapacity
		}
	}

	if collections < minCollections {
		d.Reason = fmt.Sprintf("profile: %d runs, <%d collections observed; keeping %s, capacity %d",
			sum.Runs, minCollections, d.Collector, d.Capacity)
		return d
	}

	survival := -1.0
	if copies+freed > 0 {
		survival = 100 * float64(copies) / float64(copies+freed)
	}

	// Copy amplification: a basic-collector profile whose per-collection
	// copies exceed the live set is duplicating shared structure.
	if basic != nil && basic.Collections > 0 && maxLive > 0 {
		perCollection := float64(basic.Copies) / float64(basic.Collections)
		if perCollection > copyAmplification*float64(maxLive) {
			d.Collector = "forwarding"
			d.Reason = fmt.Sprintf("profile: basic copies %.1f/collection exceed %.1f×live (%d); forwarding preserves sharing",
				perCollection, copyAmplification, maxLive)
			return d
		}
	}
	// Forwards observed without a basic profile also witness sharing.
	if basic == nil && forwards > 0 && collections > 0 {
		d.Collector = "forwarding"
		d.Reason = fmt.Sprintf("profile: %d forwards over %d collections witness shared structure; forwarding preserves sharing",
			forwards, collections)
		return d
	}

	if survival >= 0 && survival < lowSurvivalPct {
		d.Collector = "generational"
		d.Reason = fmt.Sprintf("profile: %.0f%% survival < %.0f%%; most cells die young, minor collections win",
			survival, lowSurvivalPct)
		return d
	}

	// Region-lifetime skew: even at moderate cell survival, a run whose
	// region lifetimes bunch in the first deciles (regions born and freed
	// within 20% of the run) is churning through short-lived regions, and
	// the generational minor cycle reclaims those without full scans.
	if regionLives >= minRegionLives {
		if pct := 100 * float64(shortLives) / float64(regionLives); pct >= shortLivedPct {
			d.Collector = "generational"
			d.Reason = fmt.Sprintf("profile: %.0f%% of %d region lifetimes in the first two deciles; short-lived regions favor minor collections",
				pct, regionLives)
			return d
		}
	}

	d.Collector = "basic"
	d.Reason = fmt.Sprintf("profile: %.0f%% survival, no copy amplification; basic collector is cheapest", survival)
	return d
}

// rotate returns the next collector in Collectors order (used by the
// policy.flip fault point).
func rotate(col string) string {
	for i, c := range Collectors {
		if c == col {
			return Collectors[(i+1)%len(Collectors)]
		}
	}
	return Collectors[0]
}

// pow2ceil returns the smallest power of two >= n.
func pow2ceil(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
