package policy_test

import (
	"strings"
	"testing"

	"psgc/internal/fault"
	"psgc/internal/obs"
	"psgc/internal/policy"
)

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in, want string
		ok       bool
	}{
		{"", policy.Static, true},
		{"static", policy.Static, true},
		{"adaptive", policy.Adaptive, true},
		{"bogus", "", false},
	} {
		got, err := policy.Parse(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("Parse(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func newEngine() *policy.Engine {
	return policy.NewEngine(obs.NewProfileStore(16))
}

func TestDecideCold(t *testing.T) {
	e := newEngine()
	d := e.Decide("unknown", "forwarding", 64)
	if d.Collector != "forwarding" || d.Capacity != 64 || d.Runs != 0 {
		t.Fatalf("cold decision %+v, want fallback collector/capacity with 0 runs", d)
	}
	if !strings.Contains(d.Reason, "cold") {
		t.Errorf("cold reason %q", d.Reason)
	}
	c := e.Counts()
	if c.Decisions != 1 || c.Cold != 1 || c.ByCollector["forwarding"] != 1 {
		t.Errorf("counts %+v", c)
	}
}

func TestDecideCopyAmplification(t *testing.T) {
	e := newEngine()
	// A basic-collector profile that re-copies shared structure: 3
	// collections, 300 copies against a live set of 40 (2.5×40 per
	// collection > 1.2×40).
	e.Observe("h", "basic", obs.RunProfile{
		Steps: 1000, Allocs: 200, Copies: 300, CellsFreed: 100,
		Collections: 3, MaxLive: 40,
	})
	d := e.Decide("h", "basic", 32)
	if d.Collector != "forwarding" {
		t.Fatalf("decision %+v, want forwarding for copy amplification", d)
	}
	if d.Runs != 1 {
		t.Errorf("runs %d, want 1", d.Runs)
	}
}

func TestDecideLowSurvival(t *testing.T) {
	e := newEngine()
	// 20 copies vs 180 freed = 10% survival over 4 collections.
	e.Observe("h", "basic", obs.RunProfile{
		Steps: 1000, Allocs: 200, Copies: 20, CellsFreed: 180,
		Collections: 4, MaxLive: 30,
	})
	d := e.Decide("h", "basic", 32)
	if d.Collector != "generational" {
		t.Fatalf("decision %+v, want generational for 10%% survival", d)
	}
}

func TestDecideHighSurvivalStaysBasic(t *testing.T) {
	e := newEngine()
	// 80% survival, copies per collection ≈ live set: nothing to win.
	e.Observe("h", "forwarding", obs.RunProfile{
		Steps: 1000, Allocs: 100, Copies: 160, CellsFreed: 40,
		Collections: 4, MaxLive: 40,
	})
	d := e.Decide("h", "generational", 32)
	if d.Collector != "basic" {
		t.Fatalf("decision %+v, want basic when no signal favors the others", d)
	}
}

func TestDecideForwardsWitnessSharing(t *testing.T) {
	e := newEngine()
	// No basic profile, but the forwarding run observed forwards and a
	// healthy survival ratio: sharing is present.
	e.Observe("h", "forwarding", obs.RunProfile{
		Steps: 1000, Allocs: 100, Copies: 120, Forwards: 30, CellsFreed: 60,
		Collections: 3, MaxLive: 40,
	})
	d := e.Decide("h", "basic", 32)
	if d.Collector != "forwarding" {
		t.Fatalf("decision %+v, want forwarding when forwards witness sharing", d)
	}
}

func TestDecideShortLivedRegionsGoGenerational(t *testing.T) {
	e := newEngine()
	// Healthy 80% cell survival and no copy amplification — the earlier
	// heuristics all pass — but 8 of 10 observed region lifetimes fall in
	// the first two deciles: the program churns through short-lived
	// regions, which the minor cycle reclaims cheaply.
	e.Observe("h", "basic", obs.RunProfile{
		Steps: 1000, Allocs: 100, Copies: 160, CellsFreed: 40,
		Collections: 4, MaxLive: 40,
		RegionLives:    10,
		RegionLifeHist: [10]int{6, 2, 0, 0, 0, 0, 0, 1, 1, 0},
	})
	d := e.Decide("h", "basic", 32)
	if d.Collector != "generational" {
		t.Fatalf("decision %+v, want generational for short-lived-region skew", d)
	}
	if !strings.Contains(d.Reason, "deciles") {
		t.Errorf("reason %q does not cite the lifetime histogram", d.Reason)
	}
}

func TestDecideLongLivedRegionsStayBasic(t *testing.T) {
	e := newEngine()
	// Same totals but the lifetimes bunch at the long end: no skew signal,
	// the basic default stands.
	e.Observe("h", "basic", obs.RunProfile{
		Steps: 1000, Allocs: 100, Copies: 160, CellsFreed: 40,
		Collections: 4, MaxLive: 40,
		RegionLives:    10,
		RegionLifeHist: [10]int{1, 1, 0, 0, 0, 0, 0, 2, 3, 3},
	})
	d := e.Decide("h", "basic", 32)
	if d.Collector != "basic" {
		t.Fatalf("decision %+v, want basic when region lifetimes are long", d)
	}
}

func TestDecideFewRegionLivesNoSignal(t *testing.T) {
	e := newEngine()
	// Only 4 observed region deaths — below minRegionLives — so even a
	// fully left-skewed histogram must not flip the collector.
	e.Observe("h", "basic", obs.RunProfile{
		Steps: 1000, Allocs: 100, Copies: 160, CellsFreed: 40,
		Collections: 4, MaxLive: 40,
		RegionLives:    4,
		RegionLifeHist: [10]int{4, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	})
	d := e.Decide("h", "basic", 32)
	if d.Collector != "basic" {
		t.Fatalf("decision %+v, want basic below the region-lives floor", d)
	}
}

func TestDecideCapacity(t *testing.T) {
	e := newEngine()
	e.Observe("h", "basic", obs.RunProfile{
		Steps: 100, Allocs: 100, Copies: 90, CellsFreed: 20,
		Collections: 2, MaxLive: 90,
	})
	d := e.Decide("h", "basic", 32)
	// pow2ceil(2×90) = 256, above the fallback 32.
	if d.Capacity != 256 {
		t.Fatalf("capacity %d, want 256 (pow2ceil of 2×90)", d.Capacity)
	}

	// Never below the fallback...
	e.Observe("tiny", "basic", obs.RunProfile{Steps: 10, Allocs: 4, Collections: 2, MaxLive: 3})
	if d := e.Decide("tiny", "basic", 128); d.Capacity != 128 {
		t.Fatalf("capacity %d, want fallback 128 kept", d.Capacity)
	}
	// ...and never above MaxCapacity.
	e.Observe("huge", "basic", obs.RunProfile{Steps: 10, Allocs: 9000, Collections: 2, MaxLive: 9000})
	if d := e.Decide("huge", "basic", 64); d.Capacity != policy.MaxCapacity {
		t.Fatalf("capacity %d, want clamp to %d", d.Capacity, policy.MaxCapacity)
	}
}

func TestDecideFewCollectionsKeepsFallback(t *testing.T) {
	e := newEngine()
	e.Observe("h", "basic", obs.RunProfile{Steps: 100, Allocs: 10, Collections: 1, Copies: 100, MaxLive: 5})
	d := e.Decide("h", "generational", 32)
	if d.Collector != "generational" {
		t.Fatalf("decision %+v, want fallback kept under %d collections", d, 2)
	}
}

func TestDecideRecordsDecisionInStore(t *testing.T) {
	e := newEngine()
	e.Observe("h", "basic", obs.RunProfile{Steps: 100, Allocs: 10, Collections: 2, MaxLive: 5})
	d := e.Decide("h", "basic", 32)
	sum, ok := e.Store().Lookup("h")
	if !ok {
		t.Fatal("hash missing after decide")
	}
	got, ok := sum.Decision.(policy.Decision)
	if !ok || got != d {
		t.Fatalf("stored decision %+v (ok=%v), want %+v", sum.Decision, ok, d)
	}
}

func TestPolicyFlipFault(t *testing.T) {
	fault.Install(fault.NewRegistry(1).Enable(fault.PolicyFlip, 1))
	defer fault.Install(nil)
	e := newEngine()
	d := e.Decide("h", "basic", 32)
	if !d.Flipped {
		t.Fatal("policy.flip at probability 1 did not flip")
	}
	if d.Collector != "forwarding" {
		t.Fatalf("flip rotated basic to %q, want forwarding", d.Collector)
	}
	if !strings.Contains(d.Reason, "policy.flip") {
		t.Errorf("flip not visible in reason %q", d.Reason)
	}
	if c := e.Counts(); c.Flips != 1 {
		t.Errorf("flip counter %d, want 1", c.Flips)
	}
}
