// Package fault is a seedable, deterministic fault-injection registry.
//
// Code under test (and, when explicitly enabled, production binaries run in
// chaos mode) calls Should / Fire at named injection points. When no
// registry is installed the cost of a call site is one atomic pointer load
// and a nil check, so the points can stay compiled into the hot paths —
// including the λGC machine step loop — without measurable overhead.
//
// A Registry is seeded, and each point fires with an independent Bernoulli
// draw from the registry's PRNG, so a single-threaded run with a fixed seed
// replays the exact same fault schedule. Under concurrency the draw order
// depends on goroutine interleaving; chaos tests that need hard determinism
// enable points with probability 1.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site. The set is closed: ParseSpec rejects
// unknown names so a typo in a -chaos flag fails loudly instead of running
// a clean experiment that was meant to be faulty.
type Point string

const (
	// CompileParse fails the compile pipeline before it starts.
	CompileParse Point = "compile.parse"
	// MachineStep makes an env-machine step return an injected error,
	// leaving the machine state unchanged (the normal stuck-step contract).
	MachineStep Point = "machine.step"
	// MachineStall sleeps the configured delay inside an env-machine step,
	// modeling a stalled mutator that a watchdog must cut short.
	MachineStall Point = "machine.stall"
	// HeapCorrupt silently overwrites a live heap cell of the env machine
	// with a poison number, without touching the memory statistics — the
	// corruption only surfaces through later machine behavior, which is
	// exactly what oracle co-checking must catch.
	HeapCorrupt Point = "machine.corrupt"
	// WorkerPanic panics inside a service worker's job function.
	WorkerPanic Point = "worker.panic"
	// WorkerLatency sleeps the configured delay before a worker starts a job.
	WorkerLatency Point = "worker.latency"
	// CacheEvict triggers an eviction storm that flushes the probationary
	// segment of the compiled-program cache.
	CacheEvict Point = "cache.evict"
	// CheckpointCorrupt flips a byte in an encoded checkpoint blob before
	// it leaves the service, modeling snapshot storage or transport
	// corruption. The restore path must reject the blob (incident + 422),
	// never resume into a wrong-answer run.
	CheckpointCorrupt Point = "checkpoint.corrupt"
	// PolicyFlip perturbs the adaptive policy engine's collector choice,
	// rotating it to a different (still certified) collector. Because
	// policy sits outside the TCB, a flipped decision may cost time but
	// must never change a program's result or break timeline identities —
	// the chaos suite asserts exactly that.
	PolicyFlip Point = "policy.flip"
)

// Points returns every defined injection point, sorted by name.
func Points() []Point {
	ps := []Point{CompileParse, MachineStep, MachineStall, HeapCorrupt, WorkerPanic, WorkerLatency, CacheEvict, CheckpointCorrupt, PolicyFlip}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// ErrInjected is the sentinel wrapped by every injected error, so callers
// and tests can tell a synthetic fault from an organic one.
var ErrInjected = errors.New("injected fault")

type pointState struct {
	prob  float64
	delay time.Duration
	fired int64
}

// Registry holds the enabled points and the seeded PRNG behind them.
type Registry struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[Point]*pointState
}

// NewRegistry returns an empty registry whose draws are driven by seed.
func NewRegistry(seed int64) *Registry {
	return &Registry{
		rng:    rand.New(rand.NewSource(seed)),
		points: make(map[Point]*pointState),
	}
}

// Enable arms a point with the given firing probability (clamped to [0,1])
// and returns the registry for chaining.
func (r *Registry) Enable(p Point, prob float64) *Registry {
	return r.EnableDelay(p, prob, 0)
}

// EnableDelay arms a point with a probability and an associated delay
// (meaningful for the latency-style points MachineStall and WorkerLatency).
func (r *Registry) EnableDelay(p Point, prob float64, delay time.Duration) *Registry {
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.points[p] = &pointState{prob: prob, delay: delay}
	return r
}

// Fire draws the point. When it fires it reports true along with the
// configured delay (zero for error-style points) and bumps the fired count.
func (r *Registry) Fire(p Point) (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.points[p]
	if !ok || st.prob <= 0 {
		return 0, false
	}
	if st.prob < 1 && r.rng.Float64() >= st.prob {
		return 0, false
	}
	st.fired++
	return st.delay, true
}

// Should is Fire without the delay, for error/panic-style points.
func (r *Registry) Should(p Point) bool {
	_, ok := r.Fire(p)
	return ok
}

// Fired reports how many times the point has fired.
func (r *Registry) Fired(p Point) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.points[p]; ok {
		return st.fired
	}
	return 0
}

// Snapshot returns the armed points with their probabilities and fire
// counts, for /healthz and logs.
func (r *Registry) Snapshot() map[string]map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]map[string]any, len(r.points))
	for p, st := range r.points {
		e := map[string]any{"prob": st.prob, "fired": st.fired}
		if st.delay > 0 {
			e["delay"] = st.delay.String()
		}
		out[string(p)] = e
	}
	return out
}

// active is the process-wide installed registry. Call sites load it once
// per check; a nil pointer means every point is disabled.
var active atomic.Pointer[Registry]

// Install makes r the process-wide registry; Install(nil) disables all
// injection. Tests that install a registry must uninstall it when done.
func Install(r *Registry) { active.Store(r) }

// Installed returns the current registry, or nil when injection is off.
// Hot loops should load this once and reuse the result for several points.
func Installed() *Registry { return active.Load() }

// Should reports whether the point fires under the installed registry.
// This is the ~zero-overhead fast path: with no registry installed it is
// one atomic load and a branch.
func Should(p Point) bool {
	r := active.Load()
	return r != nil && r.Should(p)
}

// Sleep blocks for the point's configured delay when the point fires.
func Sleep(p Point) {
	r := active.Load()
	if r == nil {
		return
	}
	if d, ok := r.Fire(p); ok && d > 0 {
		time.Sleep(d)
	}
}

// ParseSpec parses a chaos specification of the form
//
//	point=prob[:delay][,point=prob[:delay]...]
//
// e.g. "machine.step=0.01,worker.latency=1:5ms", into a registry seeded
// with seed. Unknown point names and malformed probabilities are errors.
func ParseSpec(spec string, seed int64) (*Registry, error) {
	r := NewRegistry(seed)
	known := make(map[Point]bool, len(Points()))
	for _, p := range Points() {
		known[p] = true
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not point=prob", part)
		}
		p := Point(strings.TrimSpace(name))
		if !known[p] {
			return nil, fmt.Errorf("fault: unknown point %q (known: %v)", name, Points())
		}
		probStr, delayStr, hasDelay := strings.Cut(rest, ":")
		prob, err := strconv.ParseFloat(strings.TrimSpace(probStr), 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("fault: bad probability %q for %s (want [0,1])", probStr, p)
		}
		var delay time.Duration
		if hasDelay {
			delay, err = time.ParseDuration(strings.TrimSpace(delayStr))
			if err != nil {
				return nil, fmt.Errorf("fault: bad delay %q for %s: %v", delayStr, p, err)
			}
		}
		r.EnableDelay(p, prob, delay)
	}
	return r, nil
}
