package fault

import (
	"sync"
	"testing"
	"time"
)

func TestDisabledByDefault(t *testing.T) {
	Install(nil)
	for _, p := range Points() {
		if Should(p) {
			t.Errorf("point %s fires with no registry installed", p)
		}
	}
}

func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		r := NewRegistry(seed).Enable(MachineStep, 0.3)
		out := make([]bool, 200)
		for i := range out {
			out[i] = r.Should(MachineStep)
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at draw %d", i)
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 200-draw schedule")
	}
}

func TestProbabilityExtremes(t *testing.T) {
	r := NewRegistry(1).Enable(WorkerPanic, 1).Enable(CompileParse, 0)
	for i := 0; i < 50; i++ {
		if !r.Should(WorkerPanic) {
			t.Fatal("prob=1 point did not fire")
		}
		if r.Should(CompileParse) {
			t.Fatal("prob=0 point fired")
		}
	}
	if got := r.Fired(WorkerPanic); got != 50 {
		t.Errorf("fired count = %d, want 50", got)
	}
	if got := r.Fired(CompileParse); got != 0 {
		t.Errorf("disabled point fired count = %d, want 0", got)
	}
}

func TestFireDelay(t *testing.T) {
	r := NewRegistry(1).EnableDelay(WorkerLatency, 1, 3*time.Millisecond)
	d, ok := r.Fire(WorkerLatency)
	if !ok || d != 3*time.Millisecond {
		t.Errorf("Fire = (%v, %v), want (3ms, true)", d, ok)
	}
}

func TestInstallUninstall(t *testing.T) {
	r := NewRegistry(7).Enable(CacheEvict, 1)
	Install(r)
	defer Install(nil)
	if !Should(CacheEvict) {
		t.Error("installed point did not fire")
	}
	Install(nil)
	if Should(CacheEvict) {
		t.Error("point fired after uninstall")
	}
}

func TestConcurrentDrawsRaceFree(t *testing.T) {
	r := NewRegistry(1).Enable(MachineStep, 0.5)
	Install(r)
	defer Install(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				Should(MachineStep)
				Sleep(WorkerLatency)
			}
		}()
	}
	wg.Wait()
	fired := r.Fired(MachineStep)
	if fired == 0 || fired == 4000 {
		t.Errorf("fired = %d over 4000 draws at p=0.5, implausible", fired)
	}
}

func TestParseSpec(t *testing.T) {
	r, err := ParseSpec("machine.step=0.25, worker.latency=1:5ms ,cache.evict=1", 9)
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if snap["machine.step"]["prob"] != 0.25 {
		t.Errorf("machine.step prob = %v", snap["machine.step"]["prob"])
	}
	if snap["worker.latency"]["delay"] != "5ms" {
		t.Errorf("worker.latency delay = %v", snap["worker.latency"]["delay"])
	}
	if d, ok := r.Fire(WorkerLatency); !ok || d != 5*time.Millisecond {
		t.Errorf("worker.latency Fire = (%v,%v)", d, ok)
	}

	for _, bad := range []string{"nonsense=1", "machine.step", "machine.step=2", "machine.step=x", "worker.latency=1:xx"} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if r, err := ParseSpec("", 1); err != nil || len(r.Snapshot()) != 0 {
		t.Errorf("empty spec should give an empty registry, got %v, %v", r.Snapshot(), err)
	}
}
