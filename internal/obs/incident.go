package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"sync"
	"time"
)

// Incident is one recorded guardrail event — an engine divergence, a
// watchdog cut, or any other condition worth keeping for post-mortems.
type Incident struct {
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	TraceID string    `json:"trace_id,omitempty"`
	// Subject identifies what the incident is about (e.g. a source hash).
	Subject string `json:"subject,omitempty"`
	Detail  string `json:"detail"`
}

// IncidentLog is a bounded ring of incidents. Recording never blocks on
// readers and never grows past the capacity; older incidents are dropped
// first, but the total count keeps the true number observed.
type IncidentLog struct {
	mu    sync.Mutex
	ring  []Incident
	next  int
	full  bool
	total int64

	// file, when non-nil, receives every recorded incident as one JSON
	// line (see OpenIncidentLog). Persistence is best-effort: a write
	// error never blocks or fails the recording path.
	file *os.File
}

// DefaultIncidentCap bounds the retained incidents when NewIncidentLog is
// given a non-positive capacity.
const DefaultIncidentCap = 256

// NewIncidentLog returns a log retaining at most capacity incidents.
func NewIncidentLog(capacity int) *IncidentLog {
	if capacity <= 0 {
		capacity = DefaultIncidentCap
	}
	return &IncidentLog{ring: make([]Incident, capacity)}
}

// Record appends an incident, stamping Time if unset. Logs opened with
// OpenIncidentLog also append the incident to the backing JSONL file.
func (l *IncidentLog) Record(in Incident) {
	if in.Time.IsZero() {
		in.Time = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.record(in, true)
}

// record folds one incident into the ring; persist writes it through to
// the backing file. Caller holds the lock.
func (l *IncidentLog) record(in Incident, persist bool) {
	l.ring[l.next] = in
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.total++
	if persist && l.file != nil {
		if line, err := json.Marshal(in); err == nil {
			l.file.Write(append(line, '\n'))
		}
	}
}

// OpenIncidentLog returns a log retaining at most capacity incidents in
// memory, persisted as JSON lines appended to the file at path. Incidents
// already in the file — from previous processes — are replayed into the
// ring first, so a restarted service boots with its incident history
// intact, and the total counts across restarts. Unparseable lines (a torn
// tail from a crash mid-write) are skipped rather than failing the boot.
func OpenIncidentLog(capacity int, path string) (*IncidentLog, error) {
	l := NewIncidentLog(capacity)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var in Incident
		if err := json.Unmarshal(line, &in); err != nil {
			continue
		}
		l.record(in, false)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, err
	}
	l.file = f
	return l, nil
}

// Close releases the backing file of a persistent log; recording remains
// legal afterwards but is in-memory only. A no-op for in-memory logs.
func (l *IncidentLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	err := l.file.Close()
	l.file = nil
	return err
}

// Total reports how many incidents have ever been recorded.
func (l *IncidentLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained incidents, oldest first.
func (l *IncidentLog) Snapshot() []Incident {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Incident
	if l.full {
		out = append(out, l.ring[l.next:]...)
	}
	out = append(out, l.ring[:l.next]...)
	return out
}
