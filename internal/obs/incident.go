package obs

import (
	"sync"
	"time"
)

// Incident is one recorded guardrail event — an engine divergence, a
// watchdog cut, or any other condition worth keeping for post-mortems.
type Incident struct {
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	TraceID string    `json:"trace_id,omitempty"`
	// Subject identifies what the incident is about (e.g. a source hash).
	Subject string `json:"subject,omitempty"`
	Detail  string `json:"detail"`
}

// IncidentLog is a bounded ring of incidents. Recording never blocks on
// readers and never grows past the capacity; older incidents are dropped
// first, but the total count keeps the true number observed.
type IncidentLog struct {
	mu    sync.Mutex
	ring  []Incident
	next  int
	full  bool
	total int64
}

// DefaultIncidentCap bounds the retained incidents when NewIncidentLog is
// given a non-positive capacity.
const DefaultIncidentCap = 256

// NewIncidentLog returns a log retaining at most capacity incidents.
func NewIncidentLog(capacity int) *IncidentLog {
	if capacity <= 0 {
		capacity = DefaultIncidentCap
	}
	return &IncidentLog{ring: make([]Incident, capacity)}
}

// Record appends an incident, stamping Time if unset.
func (l *IncidentLog) Record(in Incident) {
	if in.Time.IsZero() {
		in.Time = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring[l.next] = in
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.total++
}

// Total reports how many incidents have ever been recorded.
func (l *IncidentLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained incidents, oldest first.
func (l *IncidentLog) Snapshot() []Incident {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Incident
	if l.full {
		out = append(out, l.ring[l.next:]...)
	}
	out = append(out, l.ring[:l.next]...)
	return out
}
