package obs

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"psgc/internal/gclang"
	"psgc/internal/regions"
)

type fakeMem struct {
	stats regions.Stats
	live  int
	dead  map[regions.Name]bool
}

func (f *fakeMem) Has(n regions.Name) bool { return !f.dead[n] }
func (f *fakeMem) Stats() regions.Stats    { return f.stats }
func (f *fakeMem) LiveCells() int          { return f.live }

// driveProfiler feeds a deterministic synthetic event stream covering
// collection spans, allocations, region births and deaths. It returns the
// events so a caller can split the stream at an arbitrary point.
func profilerEvents(n int) []gclang.StepEvent {
	entry := regions.Addr{Region: regions.CD, Off: 0}
	mut := regions.Addr{Region: regions.CD, Off: 1}
	var evs []gclang.StepEvent
	step := 0
	ev := func(e gclang.StepEvent) {
		step++
		e.Step = step
		evs = append(evs, e)
	}
	for i := 0; i < n; i++ {
		ev(gclang.StepEvent{Kind: gclang.StepNewRegion, Addr: regions.Addr{Region: regions.Name(i + 1)}})
		for j := 0; j < 3; j++ {
			ev(gclang.StepEvent{Kind: gclang.StepPut, Addr: regions.Addr{Region: regions.Name(i + 1), Off: j}, Words: 2})
		}
		ev(gclang.StepEvent{Kind: gclang.StepCall, Addr: entry}) // collection starts
		ev(gclang.StepEvent{Kind: gclang.StepPut, Addr: regions.Addr{Region: regions.Name(i + 1), Off: 3}, Words: 1})
		ev(gclang.StepEvent{Kind: gclang.StepGet, Addr: regions.Addr{Region: regions.Name(i + 1), Off: 0}})
		ev(gclang.StepEvent{Kind: gclang.StepSet, Addr: regions.Addr{Region: regions.Name(i + 1), Off: 1}})
		ev(gclang.StepEvent{Kind: gclang.StepOnly})
		ev(gclang.StepEvent{Kind: gclang.StepCall, Addr: mut}) // back to mutator
	}
	return evs
}

func feed(p *Profiler, mem *fakeMem, evs []gclang.StepEvent) {
	for _, ev := range evs {
		switch ev.Kind {
		case gclang.StepPut:
			mem.stats.Puts++
			mem.live++
		case gclang.StepGet:
			mem.stats.Gets++
		case gclang.StepSet:
			mem.stats.Sets++
		case gclang.StepNewRegion:
			mem.stats.RegionsCreated++
		case gclang.StepOnly:
			// Kill the region born 2 iterations ago.
			old := regions.Name(uint32(ev.Step / 9))
			if old > 1 && !mem.dead[old-1] {
				mem.dead[old-1] = true
				mem.stats.CellsReclaimed += 4
				mem.live -= 4
			}
		}
		p.ObserveEvent(mem, ev)
	}
}

func TestProfilerImageResumesBitIdentical(t *testing.T) {
	entries := map[regions.Addr]string{{Region: regions.CD, Off: 0}: "gc"}
	evs := profilerEvents(40) // > ProfileReservoir collections, exercises sampling
	cut := len(evs) / 2

	ref := NewProfiler(entries, 1)
	refMem := &fakeMem{dead: map[regions.Name]bool{}}
	feed(ref, refMem, evs)

	first := NewProfiler(entries, 1)
	mem := &fakeMem{dead: map[regions.Name]bool{}}
	feed(first, mem, evs[:cut])
	img := first.Image()

	resumed := NewProfiler(entries, 1)
	if err := resumed.Restore(img); err != nil {
		t.Fatal(err)
	}
	feed(resumed, mem, evs[cut:])

	got, want := resumed.Profile(), ref.Profile()
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("sample counts: resumed %d, uninterrupted %d", len(got.Samples), len(want.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Fatalf("sample %d: resumed %+v, uninterrupted %+v", i, got.Samples[i], want.Samples[i])
		}
	}
	got.Samples, want.Samples = nil, nil
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("profiles diverged:\nresumed:       %+v\nuninterrupted: %+v", got, want)
	}
}

func TestProfilerRestoreRejectsCorruptImages(t *testing.T) {
	entries := map[regions.Addr]string{{Region: regions.CD, Off: 0}: "gc"}
	p := NewProfiler(entries, 1)
	mem := &fakeMem{dead: map[regions.Name]bool{}}
	feed(p, mem, profilerEvents(10))
	good := p.Image()

	cases := []struct {
		name   string
		tamper func(*ProfilerImage)
	}{
		{"sample overflow", func(img *ProfilerImage) { img.NSamples = ProfileReservoir + 1 }},
		{"sample count lie", func(img *ProfilerImage) { img.NSamples++ }},
		{"ring index", func(img *ProfilerImage) { img.RingNext = profileRegionRing }},
		{"ring overflow", func(img *ProfilerImage) { img.Ring = make([]RegionBirthImage, profileRegionRing+1) }},
		{"dead rng", func(img *ProfilerImage) { img.Rng = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := good
			img.Samples = append([]CollectionSample(nil), good.Samples...)
			img.Ring = append([]RegionBirthImage(nil), good.Ring...)
			tc.tamper(&img)
			if err := NewProfiler(entries, 1).Restore(img); err == nil {
				t.Fatal("corrupt profiler image restored")
			}
		})
	}
}

func TestIncidentLogSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "incidents.jsonl")
	l, err := OpenIncidentLog(8, path)
	if err != nil {
		t.Fatal(err)
	}
	l.Record(Incident{Kind: "engine_divergence", TraceID: "t1", Subject: "h1", Detail: "step 5"})
	l.Record(Incident{Kind: "watchdog_cut", TraceID: "t2", Detail: "stalled"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: both incidents replay, and new ones append after them.
	l2, err := OpenIncidentLog(8, path)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Snapshot(); len(got) != 2 || got[0].Kind != "engine_divergence" || got[1].TraceID != "t2" {
		t.Fatalf("replayed snapshot wrong: %+v", got)
	}
	if l2.Total() != 2 {
		t.Fatalf("total %d after replay, want 2", l2.Total())
	}
	l2.Record(Incident{Kind: "checkpoint_rejected", Detail: "bad checksum"})
	l2.Close()

	// A torn tail line (crash mid-write) must not poison the replay.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"time":"2026-08-07T00:00:00Z","kind":"torn`)
	f.Close()

	l3, err := OpenIncidentLog(8, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	got := l3.Snapshot()
	if len(got) != 3 || got[2].Kind != "checkpoint_rejected" {
		t.Fatalf("snapshot after torn tail: %+v", got)
	}
}

func TestIncidentLogRingBoundsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "incidents.jsonl")
	l, err := OpenIncidentLog(4, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Record(Incident{Kind: "k", Detail: string(rune('a' + i))})
	}
	l.Close()
	l2, err := OpenIncidentLog(4, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Snapshot(); len(got) != 4 || got[3].Detail != "j" || got[0].Detail != "g" {
		t.Fatalf("bounded replay wrong: %+v", got)
	}
	if l2.Total() != 10 {
		t.Fatalf("total %d, want 10 (file keeps full history)", l2.Total())
	}
}
