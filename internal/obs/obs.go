// Package obs is the observability layer of the reproduction: structured
// GC-event timelines and allocation-free run profiles recorded off the
// λGC machines' StepEvent hook, wall-clock spans for the compile
// pipeline's phases, request trace IDs, and a dependency-free Prometheus
// text-exposition writer/parser.
//
// The paper's point is that the collector is an ordinary, inspectable
// term; this package makes its behaviour observable event by event. A
// Recorder classifies every machine transition into allocation,
// forwarding-pointer install, copy, scan, and region-free events, and
// groups the steps between a collector entry call and the hand-back to
// mutator code into collection spans. The counts are exact: allocs+copies
// equal the memory's put counter (minus the code-install puts), forwards
// equal the set counter, and freed cells equal the reclaim counter — so
// the paper's experiments (sharing loss, minor-collection savings) can be
// re-derived from an event log instead of ad-hoc counters.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
	"time"

	"psgc/internal/gclang"
	"psgc/internal/regions"
)

// ---------------------------------------------------------------------------
// Trace IDs
// ---------------------------------------------------------------------------

var traceCounter atomic.Uint64

// NewTraceID returns a 16-hex-character request trace ID. IDs come from
// crypto/rand with a counter fallback, so they are unique within a process
// even if the random source fails.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := traceCounter.Add(1)
		for i := 0; i < 8; i++ {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// ---------------------------------------------------------------------------
// Pipeline-phase spans
// ---------------------------------------------------------------------------

// PhaseSpan is one timed phase of the compile pipeline (parse, cps,
// closconv, collector, translate, typecheck) or of request handling
// (run). StartMs is the offset from the pipeline's start.
type PhaseSpan struct {
	Phase   string  `json:"phase"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"dur_ms"`
}

// Pipeline collects PhaseSpans against one time origin. A nil *Pipeline is
// valid and records nothing, so the compile path can be instrumented
// unconditionally.
type Pipeline struct {
	t0    time.Time
	spans []PhaseSpan
}

// NewPipeline starts a pipeline clock.
func NewPipeline() *Pipeline { return &Pipeline{t0: time.Now()} }

// Phase starts a span; calling the returned func ends it.
func (p *Pipeline) Phase(name string) func() {
	if p == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		p.spans = append(p.spans, PhaseSpan{
			Phase:   name,
			StartMs: float64(start.Sub(p.t0)) / float64(time.Millisecond),
			DurMs:   float64(time.Since(start)) / float64(time.Millisecond),
		})
	}
}

// Spans returns the recorded spans in completion order.
func (p *Pipeline) Spans() []PhaseSpan {
	if p == nil {
		return nil
	}
	return p.spans
}

// ---------------------------------------------------------------------------
// GC-event timeline
// ---------------------------------------------------------------------------

// Event kinds. Alloc is a mutator put; Copy is a collector put (to-space
// copies and the collector's own continuation frames alike — the region
// field tells them apart); Forward is a forwarding-pointer install (set);
// Scan is a collector read; RegionFree is one region reclaimed by only;
// CollectStart/CollectEnd bracket a collection span.
const (
	KindAlloc        = "alloc"
	KindCopy         = "copy"
	KindForward      = "forward"
	KindScan         = "scan"
	KindRegionFree   = "region_free"
	KindCollectStart = "collect_start"
	KindCollectEnd   = "collect_end"
)

// WordBytes is the modelled cell-word size: 64-bit words, as in the E4
// space-overhead experiment. Byte figures are Words(v)*WordBytes; sum and
// existential wrappers are tag bits and erased forms, costing no words.
const WordBytes = 8

// MemView is the read-only slice of a machine memory the observability
// layer needs: region existence for the free diff at only, the cumulative
// counters, and the live-cell total. Both regions.Store[gclang.Cell] (the
// machines' packed heaps) and regions.Store[gclang.Value] (the boxed
// baseline) satisfy it, so observers are independent of the cell
// representation.
type MemView interface {
	Has(n regions.Name) bool
	Stats() regions.Stats
	LiveCells() int
}

// Words returns the number of machine words value v occupies in a cell
// under the 64-bit-word model. It delegates to gclang.ValueWords, the
// count the machines' event hooks report.
func Words(v gclang.Value) int { return gclang.ValueWords(v) }

// Event is one classified machine transition. Step is the 1-based machine
// step that performed it; Collection is the 1-based index of the
// collection span it belongs to (0 for mutator events).
type Event struct {
	Step       int    `json:"step"`
	Kind       string `json:"kind"`
	Region     string `json:"region,omitempty"`
	Addr       string `json:"addr,omitempty"`
	Cells      int    `json:"cells,omitempty"`
	Bytes      int    `json:"bytes,omitempty"`
	Entry      string `json:"entry,omitempty"`
	Collection int    `json:"collection,omitempty"`
}

// CollectionSpan aggregates one collector invocation: from the entry-point
// call (StartStep) to the step that hands control back to mutator code
// (EndStep). Open marks a span cut off by fuel exhaustion.
type CollectionSpan struct {
	Index        int    `json:"index"`
	Entry        string `json:"entry"`
	StartStep    int    `json:"start_step"`
	EndStep      int    `json:"end_step"`
	Open         bool   `json:"open,omitempty"`
	Copies       int    `json:"copies"`
	Forwards     int    `json:"forwards"`
	Scans        int    `json:"scans"`
	RegionsFreed int    `json:"regions_freed"`
	CellsFreed   int    `json:"cells_freed"`
	BytesFreed   int    `json:"bytes_freed"`
}

// Timeline is a finished recording: exact totals, per-collection spans,
// and the event log (capped at the recorder's MaxEvents; totals and spans
// are never truncated).
type Timeline struct {
	Steps         int              `json:"steps"`
	Allocs        int              `json:"allocs"`
	Copies        int              `json:"copies"`
	Forwards      int              `json:"forwards"`
	Scans         int              `json:"scans"`
	RegionsFreed  int              `json:"regions_freed"`
	CellsFreed    int              `json:"cells_freed"`
	BytesFreed    int              `json:"bytes_freed"`
	Collections   []CollectionSpan `json:"collections"`
	Events        []Event          `json:"events"`
	DroppedEvents int              `json:"dropped_events,omitempty"`
}

// DefaultMaxEvents bounds the retained event log when Recorder.MaxEvents
// is left zero. Long executions produce millions of steps; the totals and
// collection spans stay exact regardless.
const DefaultMaxEvents = 10_000

// regCount tracks a region's cumulative allocation so region_free events
// can report cell/byte counts after the region is already gone.
type regCount struct {
	cells int
	bytes int
}

// Recorder builds a Timeline from a machine's Event hook. Create one per
// run with NewRecorder (or psgc.(*Compiled).Recorder), Attach it before
// the first step, and read Timeline after the run. A Recorder is
// single-run and not safe for concurrent use.
type Recorder struct {
	// MaxEvents caps the retained event log (default DefaultMaxEvents).
	MaxEvents int

	entries       map[regions.Addr]string // entry-point address → name
	collectorFuns int                     // cd prefix holding collector code

	tl       Timeline
	curIdx   int // open span index into tl.Collections, -1 if none
	lastStep int
	steps    func() int // true machine step count (events skip unclassified steps)
	regs     map[regions.Name]*regCount
	dropped  int
}

// NewRecorder returns a recorder for a program whose collector entry
// points are entries (address → name, e.g. "gc" or "minor"/"major") and
// whose collector code occupies cd offsets 0..collectorFuns-1 — the
// certified prefix installed by the verified-collector cache. A call to
// any cd offset at or beyond the prefix while a collection is open marks
// the hand-back to mutator code.
func NewRecorder(entries map[regions.Addr]string, collectorFuns int) *Recorder {
	es := make(map[regions.Addr]string, len(entries))
	for a, n := range entries {
		es[a] = n
	}
	return &Recorder{
		entries:       es,
		collectorFuns: collectorFuns,
		curIdx:        -1,
		regs:          map[regions.Name]*regCount{},
	}
}

// Attach wires the recorder into the substitution machine's Event hook,
// chaining any hook already installed.
func (r *Recorder) Attach(m *gclang.Machine) {
	prev := m.Event
	r.steps = func() int { return m.Steps }
	m.Event = func(ev gclang.StepEvent) {
		r.ObserveEvent(m.Mem, ev)
		if prev != nil {
			prev(ev)
		}
	}
}

// AttachEnv wires the recorder into the environment machine's Event hook,
// chaining any hook already installed. Both machines emit identical event
// streams, so classification is engine-independent.
func (r *Recorder) AttachEnv(m *gclang.EnvMachine) {
	prev := m.Event
	r.steps = func() int { return m.Steps }
	m.Event = func(ev gclang.StepEvent) {
		r.ObserveEvent(m.Mem, ev)
		if prev != nil {
			prev(ev)
		}
	}
}

// Timeline finalizes and returns the recording. A still-open collection
// span (fuel exhausted mid-collection) keeps Open=true with EndStep at the
// last observed step. Steps is the machine's true step count: events skip
// unclassified transitions, so the attached machine is consulted directly.
func (r *Recorder) Timeline() *Timeline {
	last := r.lastStep
	if r.steps != nil {
		if s := r.steps(); s > last {
			last = s
		}
	}
	if r.curIdx >= 0 {
		r.tl.Collections[r.curIdx].EndStep = last
	}
	r.tl.Steps = last
	r.tl.DroppedEvents = r.dropped
	return &r.tl
}

func (r *Recorder) emit(ev Event) {
	max := r.MaxEvents
	if max <= 0 {
		max = DefaultMaxEvents
	}
	if len(r.tl.Events) < max {
		r.tl.Events = append(r.tl.Events, ev)
		return
	}
	r.dropped++
}

func (r *Recorder) reg(n regions.Name) *regCount {
	rc, ok := r.regs[n]
	if !ok {
		rc = &regCount{}
		r.regs[n] = rc
	}
	return rc
}

func (r *Recorder) closeSpan(end int) {
	if r.curIdx < 0 {
		return
	}
	sp := &r.tl.Collections[r.curIdx]
	sp.EndStep = end
	sp.Open = false
	r.curIdx = -1
}

// ObserveEvent classifies one machine step event. mem is the memory with
// the step's effects already applied (the region-free diff at only needs
// it). It is engine-agnostic — Attach and AttachEnv both feed it — and
// exported so co-stepping tests can drive it directly. Unlike the event
// hook itself, the Recorder may allocate (event log, region table): full
// timelines are the opt-in deep view; always-on profiling uses the
// allocation-free Profiler instead.
func (r *Recorder) ObserveEvent(mem MemView, sev gclang.StepEvent) {
	step := sev.Step
	if step > r.lastStep {
		r.lastStep = step
	}
	switch sev.Kind {
	case gclang.StepCall:
		if name, isEntry := r.entries[sev.Addr]; isEntry {
			// A new collection begins; a direct entry→entry tail call
			// (minor falling through to major) closes the previous span.
			r.closeSpan(step - 1)
			idx := len(r.tl.Collections) + 1
			r.tl.Collections = append(r.tl.Collections, CollectionSpan{
				Index: idx, Entry: name, StartStep: step, EndStep: step, Open: true,
			})
			r.curIdx = len(r.tl.Collections) - 1
			r.emit(Event{Step: step, Kind: KindCollectStart, Entry: name, Collection: idx})
			return
		}
		if r.curIdx >= 0 && sev.Addr.Region == regions.CD && sev.Addr.Off >= r.collectorFuns {
			idx := r.tl.Collections[r.curIdx].Index
			r.closeSpan(step)
			r.emit(Event{Step: step, Kind: KindCollectEnd, Collection: idx})
		}
	case gclang.StepPut:
		b := sev.Words * WordBytes
		rc := r.reg(sev.Addr.Region)
		rc.cells++
		rc.bytes += b
		ev := Event{
			Step: step, Kind: KindAlloc, Region: sev.Addr.Region.String(),
			Addr: sev.Addr.String(), Cells: 1, Bytes: b,
		}
		if r.curIdx >= 0 {
			sp := &r.tl.Collections[r.curIdx]
			sp.Copies++
			r.tl.Copies++
			ev.Kind = KindCopy
			ev.Collection = sp.Index
		} else {
			r.tl.Allocs++
		}
		r.emit(ev)
	case gclang.StepGet:
		if r.curIdx < 0 {
			return // mutator reads are traffic, not GC events
		}
		sp := &r.tl.Collections[r.curIdx]
		sp.Scans++
		r.tl.Scans++
		r.emit(Event{
			Step: step, Kind: KindScan, Region: sev.Addr.Region.String(),
			Addr: sev.Addr.String(), Collection: sp.Index,
		})
	case gclang.StepSet:
		ev := Event{
			Step: step, Kind: KindForward,
			Region: sev.Addr.Region.String(), Addr: sev.Addr.String(),
		}
		r.tl.Forwards++
		if r.curIdx >= 0 {
			sp := &r.tl.Collections[r.curIdx]
			sp.Forwards++
			ev.Collection = sp.Index
		}
		r.emit(ev)
	case gclang.StepNewRegion:
		// Start tracking the fresh region so a later only can report its
		// size after it is gone.
		r.reg(sev.Addr.Region)
	case gclang.StepOnly:
		// Regions we tracked that no longer exist were freed by this step.
		var freed []regions.Name
		for n := range r.regs {
			if !mem.Has(n) {
				freed = append(freed, n)
			}
		}
		for _, n := range regions.SortedNames(freed) {
			rc := r.regs[n]
			delete(r.regs, n)
			r.tl.RegionsFreed++
			r.tl.CellsFreed += rc.cells
			r.tl.BytesFreed += rc.bytes
			ev := Event{
				Step: step, Kind: KindRegionFree, Region: n.String(),
				Cells: rc.cells, Bytes: rc.bytes,
			}
			if r.curIdx >= 0 {
				sp := &r.tl.Collections[r.curIdx]
				sp.RegionsFreed++
				sp.CellsFreed += rc.cells
				sp.BytesFreed += rc.bytes
				ev.Collection = sp.Index
			}
			r.emit(ev)
		}
	case gclang.StepHalt:
		r.closeSpan(step)
	}
}
