package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4) without any external dependency. Families are written in
// call order, so a fixed call sequence yields byte-stable output for
// golden tests.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w. Write errors are sticky; check Err at the end.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err reports the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

// Label is one name="value" pair. Order is preserved as given.
type Label struct {
	Name, Value string
}

// Sample is one measurement of a family.
type Sample struct {
	Labels []Label
	Value  float64
}

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

func (p *PromWriter) sample(name string, labels []Label, v float64) {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	p.printf("%s %s\n", sb.String(), formatValue(v))
}

// Counter writes a counter family with its samples.
func (p *PromWriter) Counter(name, help string, samples ...Sample) {
	p.header(name, help, "counter")
	for _, s := range samples {
		p.sample(name, s.Labels, s.Value)
	}
}

// Gauge writes a gauge family with its samples.
func (p *PromWriter) Gauge(name, help string, samples ...Sample) {
	p.header(name, help, "gauge")
	for _, s := range samples {
		p.sample(name, s.Labels, s.Value)
	}
}

// Histogram writes a histogram family. bounds are the bucket upper bounds;
// counts holds one count per bound plus a final overflow bucket
// (len(bounds)+1 entries) — per-bucket counts, as kept by the service's
// Histogram. The exposition's le buckets are cumulative, ending at +Inf.
func (p *PromWriter) Histogram(name, help string, bounds []float64, counts []int64, sum float64) {
	p.header(name, help, "histogram")
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		p.sample(name+"_bucket", []Label{{"le", formatValue(b)}}, float64(cum))
	}
	cum += counts[len(bounds)]
	p.sample(name+"_bucket", []Label{{"le", "+Inf"}}, float64(cum))
	p.sample(name+"_sum", nil, sum)
	p.sample(name+"_count", nil, float64(cum))
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
