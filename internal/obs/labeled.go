package obs

import (
	"sort"
	"sync"
)

// LabeledCounter is a monotonically increasing counter family keyed by one
// label value — per-backend request counts, per-collector totals, and the
// like — for registries whose label sets are not known at build time (the
// gate learns its backends from flags). Zero value is ready to use.
type LabeledCounter struct {
	mu sync.Mutex
	m  map[string]int64
}

// Add increments the counter for the label value.
func (c *LabeledCounter) Add(label string, delta int64) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[string]int64{}
	}
	c.m[label] += delta
	c.mu.Unlock()
}

// Get returns the counter for the label value.
func (c *LabeledCounter) Get(label string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[label]
}

// Total sums the family.
func (c *LabeledCounter) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, v := range c.m {
		t += v
	}
	return t
}

// Snapshot returns a copy of the family.
func (c *LabeledCounter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Samples renders the family as Prometheus samples under labelName, sorted
// by label value so expositions are byte-stable.
func (c *LabeledCounter) Samples(labelName string) []Sample {
	snap := c.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Sample, 0, len(keys))
	for _, k := range keys {
		out = append(out, Sample{Labels: []Label{{labelName, k}}, Value: float64(snap[k])})
	}
	return out
}
