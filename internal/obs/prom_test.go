package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestPromWriterGolden pins the exposition byte-for-byte: a fixed call
// sequence must stay scrapeable and stable.
func TestPromWriterGolden(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("reqs_total", "Requests, by endpoint.",
		Sample{Labels: []Label{{Name: "endpoint", Value: "run"}}, Value: 3},
		Sample{Labels: []Label{{Name: "endpoint", Value: "compile"}}, Value: 1},
	)
	p.Gauge("depth", "Queue depth.", Sample{Value: 2})
	p.Histogram("lat_ms", "Latency.", []float64{1, 5}, []int64{2, 1, 1}, 9.5)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP reqs_total Requests, by endpoint.
# TYPE reqs_total counter
reqs_total{endpoint="run"} 3
reqs_total{endpoint="compile"} 1
# HELP depth Queue depth.
# TYPE depth gauge
depth 2
# HELP lat_ms Latency.
# TYPE lat_ms histogram
lat_ms_bucket{le="1"} 2
lat_ms_bucket{le="5"} 3
lat_ms_bucket{le="+Inf"} 4
lat_ms_sum 9.5
lat_ms_count 4
`
	if got := buf.String(); got != want {
		t.Errorf("exposition drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPromRoundTrip feeds the writer's output to the parser and checks the
// parsed families.
func TestPromRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("c_total", "A counter with \"quotes\" and a\nnewline.",
		Sample{Labels: []Label{{Name: "k", Value: `va"l\ue`}}, Value: 7})
	p.Histogram("h_ms", "A histogram.", []float64{1, 2, 5}, []int64{0, 3, 0, 2}, 12.25)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	fams, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("round trip failed to parse: %v\n%s", err, buf.String())
	}
	c := fams["c_total"]
	if c == nil || c.Type != "counter" || len(c.Samples) != 1 {
		t.Fatalf("counter family = %+v", c)
	}
	if got := c.Samples[0].Labels["k"]; got != `va"l\ue` {
		t.Errorf("label round trip: %q", got)
	}
	if c.Samples[0].Value != 7 {
		t.Errorf("counter value %v, want 7", c.Samples[0].Value)
	}
	h := fams["h_ms"]
	if h == nil || h.Type != "histogram" {
		t.Fatalf("histogram family = %+v", h)
	}
	// 3 bounds + +Inf buckets, _sum, _count.
	if len(h.Samples) != 6 {
		t.Errorf("histogram has %d samples, want 6", len(h.Samples))
	}
	for _, s := range h.Samples {
		if strings.HasSuffix(s.Name, "_count") && s.Value != 5 {
			t.Errorf("histogram count %v, want 5", s.Value)
		}
		if strings.HasSuffix(s.Name, "_sum") && s.Value != 12.25 {
			t.Errorf("histogram sum %v, want 12.25", s.Value)
		}
	}
}

// TestParseExpositionRejects pins the validation: each input is broken in a
// way a scraper would choke on.
func TestParseExpositionRejects(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"unknown type", "# TYPE x flarb\nx 1\n"},
		{"orphan sample", "x 1\n"},
		{"bad value", "# TYPE x counter\nx one\n"},
		{"unterminated labels", "# TYPE x counter\nx{k=\"v 1\n"},
		{"bucket without le", "# HELP h h\n# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n"},
		{"no +Inf bucket", "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"non-cumulative buckets", "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n"},
		{"count disagrees", "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
		{"missing sum", "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_count 1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseExposition([]byte(c.input)); err == nil {
				t.Errorf("parser accepted %q", c.input)
			}
		})
	}
}

// TestParseExpositionTolerates covers legal-but-unusual input: comments,
// blank lines, timestamps, CRLF.
func TestParseExpositionTolerates(t *testing.T) {
	input := "# a freestanding comment\n\r\n# HELP x ok\n# TYPE x counter\nx{a=\"b\"} 4 1700000000\r\n"
	fams, err := ParseExposition([]byte(input))
	if err != nil {
		t.Fatal(err)
	}
	if fams["x"].Samples[0].Value != 4 {
		t.Errorf("sample = %+v", fams["x"].Samples[0])
	}
}
