package obs

import (
	"fmt"

	"psgc/internal/regions"
)

// ProfilerImage is the serializable state of a mid-run Profiler, captured
// at a step boundary alongside the machine image so a resumed run's
// profile aggregates come out bit-identical to an uninterrupted run's:
// exact totals continue from the captured RunProfile, the open collection
// span (if one straddles the checkpoint) is re-opened with its partial
// counters, and the reservoir keeps both its samples and its xorshift
// state so later sampling decisions replay exactly.
type ProfilerImage struct {
	RP         RunProfile         `json:"rp"`
	InSpan     bool               `json:"in_span"`
	CurEntry   string             `json:"cur_entry"`
	CurStart   int                `json:"cur_start"`
	CurCopies  int                `json:"cur_copies"`
	CurScans   int                `json:"cur_scans"`
	CurForward int                `json:"cur_forward"`
	FreedAt    int                `json:"freed_at"`
	NSamples   int                `json:"nsamples"`
	Samples    []CollectionSample `json:"samples"`
	Rng        uint64             `json:"rng"`
	Ring       []RegionBirthImage `json:"ring"`
	RingNext   int                `json:"ring_next"`
}

// RegionBirthImage is one tracked in-flight region birth.
type RegionBirthImage struct {
	Name regions.Name `json:"name"`
	Born int          `json:"born"`
	Live bool         `json:"live"`
}

// Image captures the profiler's accumulated state. The attachment fields
// (entry table, step and memory accessors) are not part of the image; a
// restored profiler is built by NewProfiler against the local compiled
// program and re-attached to the restored machine.
func (p *Profiler) Image() ProfilerImage {
	img := ProfilerImage{
		RP:         p.rp,
		InSpan:     p.inSpan,
		CurEntry:   p.curEntry,
		CurStart:   p.curStart,
		CurCopies:  p.curCopies,
		CurScans:   p.curScans,
		CurForward: p.curForward,
		FreedAt:    p.freedAt,
		NSamples:   p.nsamples,
		Samples:    append([]CollectionSample(nil), p.samples[:p.nsamples]...),
		Rng:        p.rng,
		RingNext:   p.ringNext,
	}
	// RP.Samples is only populated by finalization; keep the image minimal.
	img.RP.Samples = nil
	for _, b := range p.ring {
		img.Ring = append(img.Ring, RegionBirthImage{Name: b.name, Born: b.born, Live: b.live})
	}
	return img
}

// Restore loads a captured image into the profiler, which must be freshly
// built (NewProfiler) for the same program. The image is untrusted: sizes
// and the xorshift state are validated so a corrupted blob cannot panic
// the profiler or freeze its sampling.
func (p *Profiler) Restore(img ProfilerImage) error {
	if img.NSamples < 0 || img.NSamples > ProfileReservoir || len(img.Samples) != img.NSamples {
		return fmt.Errorf("obs: profiler image: %d samples with nsamples %d (reservoir %d)",
			len(img.Samples), img.NSamples, ProfileReservoir)
	}
	if len(img.Ring) > profileRegionRing || img.RingNext < 0 || img.RingNext >= profileRegionRing {
		return fmt.Errorf("obs: profiler image: region ring %d/%d out of range",
			len(img.Ring), img.RingNext)
	}
	if img.Rng == 0 {
		// Zero is the one absorbing state of the xorshift generator.
		return fmt.Errorf("obs: profiler image: zero reservoir rng state")
	}
	p.rp = img.RP
	p.rp.Samples = nil
	p.inSpan = img.InSpan
	p.curEntry = img.CurEntry
	p.curStart = img.CurStart
	p.curCopies = img.CurCopies
	p.curScans = img.CurScans
	p.curForward = img.CurForward
	p.freedAt = img.FreedAt
	p.nsamples = img.NSamples
	copy(p.samples[:], img.Samples)
	p.rng = img.Rng
	p.ring = [profileRegionRing]regionBirth{}
	for i, b := range img.Ring {
		p.ring[i] = regionBirth{name: b.Name, born: b.Born, live: b.Live}
	}
	p.ringNext = img.RingNext
	return nil
}
