package obs_test

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"psgc"
	"psgc/internal/gclang"
	"psgc/internal/obs"
	"psgc/internal/regions"
)

// TestProfilerIdentities runs a collector-exercising program with the
// always-on profiler attached and pins the profile's exact totals to the
// machine's own counters — the same identities the Recorder tests pin, now
// for the cheap path.
func TestProfilerIdentities(t *testing.T) {
	for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
		t.Run(col.String(), func(t *testing.T) {
			c, err := psgc.Compile(allocHeavy, col)
			if err != nil {
				t.Fatal(err)
			}
			prof := c.Profiler()
			res, err := c.Run(psgc.RunOptions{Capacity: 24, Profiler: prof})
			if err != nil {
				t.Fatal(err)
			}
			if res.Collections == 0 {
				t.Fatal("capacity 24 should force collections")
			}
			rp := prof.Profile()

			if rp.Steps != res.Steps {
				t.Errorf("profile steps %d, machine says %d", rp.Steps, res.Steps)
			}
			codePuts := len(c.Prog.Code)
			if got, want := rp.Allocs+rp.Copies, res.Stats.Puts-codePuts; got != want {
				t.Errorf("allocs+copies = %d+%d = %d, puts minus code installs = %d",
					rp.Allocs, rp.Copies, got, want)
			}
			if rp.Forwards != res.Stats.Sets {
				t.Errorf("forwards %d, machine sets %d", rp.Forwards, res.Stats.Sets)
			}
			if rp.CellsFreed != res.Stats.CellsReclaimed {
				t.Errorf("cells freed %d, machine reclaimed %d", rp.CellsFreed, res.Stats.CellsReclaimed)
			}
			if rp.Collections != res.Collections {
				t.Errorf("%d collections profiled, machine counted %d", rp.Collections, res.Collections)
			}
			if rp.MaxLive != res.Stats.MaxLiveCells {
				t.Errorf("max live %d, machine says %d", rp.MaxLive, res.Stats.MaxLiveCells)
			}
			if rp.LiveAtEnd != res.LiveCells {
				t.Errorf("live at end %d, machine says %d", rp.LiveAtEnd, res.LiveCells)
			}
			if col == psgc.Generational && rp.Minor+rp.Major != rp.Collections {
				t.Errorf("minor %d + major %d != collections %d", rp.Minor, rp.Major, rp.Collections)
			}
			if rp.AllocWords < rp.Allocs {
				t.Errorf("alloc words %d below alloc count %d (every cell is ≥1 word)",
					rp.AllocWords, rp.Allocs)
			}

			wantSamples := rp.Collections
			if wantSamples > obs.ProfileReservoir {
				wantSamples = obs.ProfileReservoir
			}
			if len(rp.Samples) != wantSamples {
				t.Errorf("%d samples retained, want %d", len(rp.Samples), wantSamples)
			}
			var copies int
			for _, s := range rp.Samples {
				if s.StartStep > s.EndStep {
					t.Errorf("sample spans steps %d-%d", s.StartStep, s.EndStep)
				}
				if s.Entry == "" {
					t.Errorf("sample with empty entry: %+v", s)
				}
				copies += s.Copies
			}
			// With every collection retained, sample sums equal the totals.
			if rp.Collections <= obs.ProfileReservoir && copies != rp.Copies {
				t.Errorf("sample copies sum %d, profile total %d", copies, rp.Copies)
			}
			if pct := rp.SurvivalPct(); pct < 0 || pct > 100 {
				t.Errorf("survival %f%% out of range", pct)
			}
			if _, err := json.Marshal(rp); err != nil {
				t.Errorf("profile does not marshal: %v", err)
			}
		})
	}
}

// TestProfilerMatchesAcrossEngines attaches a profiler to each engine and
// requires identical profiles — the event streams are pinned identical by
// the differential suite, so the profiles must be too.
func TestProfilerMatchesAcrossEngines(t *testing.T) {
	c, err := psgc.Compile(allocHeavy, psgc.Generational)
	if err != nil {
		t.Fatal(err)
	}
	pe, ps := c.Profiler(), c.Profiler()
	if _, err := c.Run(psgc.RunOptions{Capacity: 24, Profiler: pe}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(psgc.RunOptions{Capacity: 24, Profiler: ps, Engine: psgc.EngineSubst}); err != nil {
		t.Fatal(err)
	}
	re, rs := pe.Profile(), ps.Profile()
	je, _ := json.Marshal(re)
	js, _ := json.Marshal(rs)
	if string(je) != string(js) {
		t.Fatalf("profiles diverged across engines:\nenv:   %s\nsubst: %s", je, js)
	}
}

// TestProfilerObserveAllocFree pins the profiler's per-event cost: folding
// a step event into the profile allocates nothing, which is what makes it
// safe to leave on for every request.
func TestProfilerObserveAllocFree(t *testing.T) {
	mem := regions.New[gclang.Value](64)
	nu := mem.NewRegion()
	addr, err := mem.Put(nu, gclang.Num{N: 7})
	if err != nil {
		t.Fatal(err)
	}
	prof := obs.NewProfiler(map[regions.Addr]string{{Region: regions.CD, Off: 0}: "gc"}, 3)
	events := []gclang.StepEvent{
		{Step: 1, Kind: gclang.StepNewRegion, Addr: regions.Addr{Region: nu}},
		{Step: 2, Kind: gclang.StepPut, Addr: addr, Words: 2},
		{Step: 3, Kind: gclang.StepCall, Addr: regions.Addr{Region: regions.CD, Off: 0}},
		{Step: 4, Kind: gclang.StepGet, Addr: addr},
		{Step: 5, Kind: gclang.StepPut, Addr: addr, Words: 1},
		{Step: 6, Kind: gclang.StepSet, Addr: addr},
		{Step: 7, Kind: gclang.StepCall, Addr: regions.Addr{Region: regions.CD, Off: 5}},
		{Step: 8, Kind: gclang.StepOnly},
		{Step: 9, Kind: gclang.StepHalt},
	}
	step := 0
	avg := testing.AllocsPerRun(200, func() {
		ev := events[step%len(events)]
		ev.Step = step + 1 // keep steps monotonic across rounds
		prof.ObserveEvent(mem, ev)
		step++
	})
	if avg != 0 {
		t.Fatalf("ObserveEvent allocates %.1f objects/event, want 0", avg)
	}
}

// TestProfileStoreEviction exercises the segmented LRU: admissions beyond
// capacity evict the probation tail, and a touched (protected) entry
// outlives untouched newer ones.
func TestProfileStoreEviction(t *testing.T) {
	s := obs.NewProfileStore(4)
	rp := obs.RunProfile{Steps: 10, Allocs: 5}
	for i := 0; i < 4; i++ {
		s.Update(fmt.Sprintf("h%d", i), "basic", rp)
	}
	if s.Len() != 4 {
		t.Fatalf("len %d, want 4", s.Len())
	}
	// Touch h0: promoted to protected.
	if _, ok := s.Lookup("h0"); !ok {
		t.Fatal("h0 missing before eviction")
	}
	// Two more admissions evict from the probation tail (h1, h2), never
	// the protected h0.
	s.Update("h4", "basic", rp)
	s.Update("h5", "basic", rp)
	if s.Len() != 4 {
		t.Fatalf("len %d after evictions, want 4", s.Len())
	}
	if s.Evictions() != 2 {
		t.Fatalf("evictions %d, want 2", s.Evictions())
	}
	if _, ok := s.Lookup("h0"); !ok {
		t.Error("protected h0 was evicted")
	}
	if _, ok := s.Lookup("h1"); ok {
		t.Error("probation-tail h1 survived eviction")
	}
	probation, protected := s.Segments()
	if probation+protected != 4 {
		t.Errorf("segments %d+%d, want 4 total", probation, protected)
	}

	// Aggregation across updates: two runs under two collectors.
	s.Update("h0", "forwarding", rp)
	sum, ok := s.Lookup("h0")
	if !ok {
		t.Fatal("h0 lost after update")
	}
	if sum.Runs != 2 || len(sum.Collectors) != 2 {
		t.Fatalf("h0 summary: %d runs, %d collectors; want 2 and 2", sum.Runs, len(sum.Collectors))
	}
	if sum.Collectors[0].Collector != "basic" || sum.Collectors[1].Collector != "forwarding" {
		t.Fatalf("collectors not sorted: %+v", sum.Collectors)
	}
	if sum.Collectors[0].Steps != 10 || sum.Collectors[0].Allocs != 5 {
		t.Fatalf("basic aggregate drifted: %+v", sum.Collectors[0])
	}
}

// TestProfileStoreDecision pins the healthz exposure path: a recorded
// decision rides along in lookups and snapshots.
func TestProfileStoreDecision(t *testing.T) {
	s := obs.NewProfileStore(8)
	s.Update("h", "basic", obs.RunProfile{Steps: 1})
	s.SetDecision("h", map[string]string{"collector": "forwarding"})
	sum, ok := s.Lookup("h")
	if !ok || sum.Decision == nil {
		t.Fatalf("decision missing from lookup: %+v ok=%v", sum, ok)
	}
	snaps := s.Snapshot(10)
	if len(snaps) != 1 || snaps[0].Decision == nil {
		t.Fatalf("decision missing from snapshot: %+v", snaps)
	}
	// A decision for an evicted/unknown hash is dropped, not admitted.
	s.SetDecision("ghost", "x")
	if s.Len() != 1 {
		t.Fatalf("SetDecision admitted a ghost entry: len %d", s.Len())
	}
}

// TestProfileStoreConcurrent hammers one store from many goroutines; run
// under -race this pins the locking discipline.
func TestProfileStoreConcurrent(t *testing.T) {
	s := obs.NewProfileStore(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				hash := fmt.Sprintf("h%d", (g*7+i)%24)
				s.Update(hash, "basic", obs.RunProfile{Steps: i, Allocs: 1})
				if i%3 == 0 {
					s.Lookup(hash)
				}
				if i%5 == 0 {
					s.SetDecision(hash, g)
				}
				if i%17 == 0 {
					s.Snapshot(8)
					s.Len()
					s.Evictions()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > 16 {
		t.Fatalf("store over capacity: %d", s.Len())
	}
}
