package obs

import (
	"container/list"
	"sort"
	"sync"

	"psgc/internal/gclang"
	"psgc/internal/regions"
)

// This file is the always-on half of the observability layer: a Profiler
// cheap enough to attach to every request (allocation-free per event,
// fixed-size state, reservoir sampling) and a ProfileStore that folds
// finished runs into continuously-updated per-program aggregates keyed by
// source hash. The Recorder above remains the opt-in deep view (full event
// log); the Profiler is the production default the adaptive policy engine
// (internal/policy) reads its signal from.

// ProfileReservoir is the number of per-collection samples a Profiler
// retains. Collections beyond the reservoir replace earlier samples with
// uniform probability (reservoir sampling), so the retained set stays an
// unbiased sample of the whole run.
const ProfileReservoir = 32

// profileRegionRing is the number of in-flight region births tracked for
// lifetime measurement. Programs create regions in a stack-like pattern,
// so 64 slots cover every workload in the suite; overwriting the oldest
// slot merely drops one lifetime observation.
const profileRegionRing = 64

// CollectionSample is one sampled collector invocation.
type CollectionSample struct {
	Entry      string `json:"entry"` // "gc", "minor", or "major"
	StartStep  int    `json:"start_step"`
	EndStep    int    `json:"end_step"`
	Copies     int    `json:"copies"`
	Scans      int    `json:"scans"`
	Forwards   int    `json:"forwards"`
	CellsFreed int    `json:"cells_freed"`
	LiveAfter  int    `json:"live_after"`
}

// RunProfile is the finalized summary of one run: exact totals (identical
// to the machine's counters — the identity tests pin this) plus the
// sampled per-collection and region-lifetime views.
type RunProfile struct {
	Steps       int `json:"steps"`
	Allocs      int `json:"allocs"` // mutator puts
	AllocWords  int `json:"alloc_words"`
	Copies      int `json:"copies"` // collector puts
	Forwards    int `json:"forwards"`
	Scans       int `json:"scans"`
	Collections int `json:"collections"`
	Minor       int `json:"minor"`
	Major       int `json:"major"`

	MaxLive        int `json:"max_live"`
	LiveAtEnd      int `json:"live_at_end"`
	CellsFreed     int `json:"cells_freed"`
	RegionsCreated int `json:"regions_created"`
	RegionsFreed   int `json:"regions_freed"`

	// LiveFirst/LiveLast are the live-cell counts after the first and last
	// completed collections — the live-set growth signal.
	LiveFirst int `json:"live_first"`
	LiveLast  int `json:"live_last"`

	// Region lifetimes in steps, over the tracked ring.
	RegionLives     int `json:"region_lives"`
	RegionLifeSteps int `json:"region_life_steps"`
	RegionLifeMax   int `json:"region_life_max"`

	// RegionLifeHist is a decile histogram of region lifetimes relative to
	// the step at which each region died: bucket 0 holds regions that lived
	// under 10% of the run observed so far, bucket 9 those that lived 90%+.
	// A left-skewed histogram (mass in the first deciles) is the short-lived
	// -region signal the adaptive policy biases toward generational
	// collection on.
	RegionLifeHist [10]int `json:"region_life_hist"`

	Samples []CollectionSample `json:"samples,omitempty"`
}

// SurvivalPct returns the run's survival ratio per collection as a
// percentage: of the cells a collection touched (survivors copied plus
// garbage freed), how many survived. Negative when no collection freed or
// copied anything (no signal).
func (rp RunProfile) SurvivalPct() float64 {
	denom := rp.Copies + rp.CellsFreed
	if denom == 0 {
		return -1
	}
	return 100 * float64(rp.Copies) / float64(denom)
}

type regionBirth struct {
	name regions.Name
	born int
	live bool
}

// Profiler accumulates a RunProfile from a machine's Event hook. Unlike
// the Recorder it allocates nothing per event — every piece of state is a
// fixed-size field — so it can stay attached on every request. One
// Profiler serves one run; it is not safe for concurrent use.
type Profiler struct {
	entries       map[regions.Addr]string
	collectorFuns int
	steps         func() int
	memf          func() MemView

	rp RunProfile

	inSpan     bool
	curEntry   string
	curStart   int
	curCopies  int
	curScans   int
	curForward int
	freedAt    int // CellsReclaimed at span start

	nsamples int
	samples  [ProfileReservoir]CollectionSample
	rng      uint64

	ring     [profileRegionRing]regionBirth
	ringNext int
}

// NewProfiler returns a profiler for a program whose collector entry
// points are entries (address → name) and whose collector code occupies cd
// offsets 0..collectorFuns-1, exactly as NewRecorder is seeded.
func NewProfiler(entries map[regions.Addr]string, collectorFuns int) *Profiler {
	return &Profiler{
		entries:       entries,
		collectorFuns: collectorFuns,
		rng:           0x9e3779b97f4a7c15, // fixed seed: deterministic reservoir
	}
}

// Attach wires the profiler into the substitution machine's Event hook,
// chaining any hook already installed.
func (p *Profiler) Attach(m *gclang.Machine) {
	prev := m.Event
	p.steps = func() int { return m.Steps }
	p.memf = func() MemView { return m.Mem }
	m.Event = func(ev gclang.StepEvent) {
		p.ObserveEvent(m.Mem, ev)
		if prev != nil {
			prev(ev)
		}
	}
}

// AttachEnv wires the profiler into the environment machine's Event hook,
// chaining any hook already installed.
func (p *Profiler) AttachEnv(m *gclang.EnvMachine) {
	prev := m.Event
	p.steps = func() int { return m.Steps }
	p.memf = func() MemView { return m.Mem }
	m.Event = func(ev gclang.StepEvent) {
		p.ObserveEvent(m.Mem, ev)
		if prev != nil {
			prev(ev)
		}
	}
}

// ObserveEvent folds one machine step event into the profile. It allocates
// nothing: the identity tests assert zero allocations per event.
func (p *Profiler) ObserveEvent(mem MemView, ev gclang.StepEvent) {
	switch ev.Kind {
	case gclang.StepCall:
		if name, isEntry := p.entries[ev.Addr]; isEntry {
			if p.inSpan {
				p.closeSpan(mem, ev.Step-1)
			}
			p.inSpan = true
			p.curEntry = name
			p.curStart = ev.Step
			p.curCopies, p.curScans, p.curForward = 0, 0, 0
			p.freedAt = mem.Stats().CellsReclaimed
			p.rp.Collections++
			switch name {
			case "minor":
				p.rp.Minor++
			case "major":
				p.rp.Major++
			}
			return
		}
		if p.inSpan && ev.Addr.Region == regions.CD && ev.Addr.Off >= p.collectorFuns {
			p.closeSpan(mem, ev.Step)
		}
	case gclang.StepPut:
		if p.inSpan {
			p.curCopies++
			p.rp.Copies++
		} else {
			p.rp.Allocs++
			p.rp.AllocWords += ev.Words
		}
	case gclang.StepGet:
		if p.inSpan {
			p.curScans++
			p.rp.Scans++
		}
	case gclang.StepSet:
		p.rp.Forwards++
		if p.inSpan {
			p.curForward++
		}
	case gclang.StepNewRegion:
		p.ring[p.ringNext] = regionBirth{name: ev.Addr.Region, born: ev.Step, live: true}
		p.ringNext = (p.ringNext + 1) % profileRegionRing
	case gclang.StepOnly:
		for i := range p.ring {
			b := &p.ring[i]
			if b.live && !mem.Has(b.name) {
				b.live = false
				life := ev.Step - b.born
				p.rp.RegionLives++
				p.rp.RegionLifeSteps += life
				if life > p.rp.RegionLifeMax {
					p.rp.RegionLifeMax = life
				}
				// Lifetime decile relative to the run so far (ev.Step >= 1
				// whenever an only fires, so the division is safe).
				bucket := 10 * life / ev.Step
				if bucket > 9 {
					bucket = 9
				}
				p.rp.RegionLifeHist[bucket]++
			}
		}
	case gclang.StepHalt:
		if p.inSpan {
			p.closeSpan(mem, ev.Step)
		}
	}
}

// closeSpan finishes the open collection span and reservoir-samples it.
func (p *Profiler) closeSpan(mem MemView, end int) {
	p.inSpan = false
	live := mem.LiveCells()
	s := CollectionSample{
		Entry:      p.curEntry,
		StartStep:  p.curStart,
		EndStep:    end,
		Copies:     p.curCopies,
		Scans:      p.curScans,
		Forwards:   p.curForward,
		CellsFreed: mem.Stats().CellsReclaimed - p.freedAt,
		LiveAfter:  live,
	}
	if p.rp.LiveFirst == 0 && p.rp.Collections == 1 {
		p.rp.LiveFirst = live
	}
	p.rp.LiveLast = live
	// Reservoir sampling over the sequence of completed collections.
	seen := p.rp.Collections // 1-based index of this collection
	if p.nsamples < ProfileReservoir {
		p.samples[p.nsamples] = s
		p.nsamples++
		return
	}
	p.rng ^= p.rng << 13
	p.rng ^= p.rng >> 7
	p.rng ^= p.rng << 17
	if j := int(p.rng % uint64(seen)); j < ProfileReservoir {
		p.samples[j] = s
	}
}

// Profile finalizes the run against the attached machine's cumulative
// memory counters and returns the summary. Call it once, after the run;
// finalization may allocate (the samples slice).
func (p *Profiler) Profile() RunProfile {
	rp := p.rp
	if p.steps != nil {
		rp.Steps = p.steps()
	}
	if p.memf != nil {
		mem := p.memf()
		st := mem.Stats()
		rp.MaxLive = st.MaxLiveCells
		rp.CellsFreed = st.CellsReclaimed
		rp.RegionsCreated = st.RegionsCreated
		rp.RegionsFreed = st.RegionsReclaimed
		rp.LiveAtEnd = mem.LiveCells()
	}
	rp.Samples = append([]CollectionSample(nil), p.samples[:p.nsamples]...)
	return rp
}

// ---------------------------------------------------------------------------
// Per-program profile aggregates
// ---------------------------------------------------------------------------

// CollectorAgg aggregates every profiled run of one program under one
// collector. Totals are exact sums; SurvivalHist is a decile histogram of
// per-collection survival ratios from the reservoir samples (bucket 0 =
// 0–10% survived, bucket 9 = 90–100%) — the continuously-updated
// histogram the adaptive policy reads.
type CollectorAgg struct {
	Collector string `json:"collector"`
	Runs      int    `json:"runs"`

	Steps       int64 `json:"steps"`
	Allocs      int64 `json:"allocs"`
	AllocWords  int64 `json:"alloc_words"`
	Copies      int64 `json:"copies"`
	Forwards    int64 `json:"forwards"`
	Scans       int64 `json:"scans"`
	Collections int64 `json:"collections"`
	Minor       int64 `json:"minor"`
	Major       int64 `json:"major"`
	CellsFreed  int64 `json:"cells_freed"`

	MaxLive    int   `json:"max_live"`    // max across runs
	LiveGrowth int64 `json:"live_growth"` // Σ (LiveLast - LiveFirst)

	RegionLives     int64 `json:"region_lives"`
	RegionLifeSteps int64 `json:"region_life_steps"`
	RegionLifeMax   int   `json:"region_life_max"`

	SurvivalHist   [10]int64 `json:"survival_hist"`
	RegionLifeHist [10]int64 `json:"region_life_hist"`
}

// add folds one run profile into the aggregate.
func (a *CollectorAgg) add(rp RunProfile) {
	a.Runs++
	a.Steps += int64(rp.Steps)
	a.Allocs += int64(rp.Allocs)
	a.AllocWords += int64(rp.AllocWords)
	a.Copies += int64(rp.Copies)
	a.Forwards += int64(rp.Forwards)
	a.Scans += int64(rp.Scans)
	a.Collections += int64(rp.Collections)
	a.Minor += int64(rp.Minor)
	a.Major += int64(rp.Major)
	a.CellsFreed += int64(rp.CellsFreed)
	if rp.MaxLive > a.MaxLive {
		a.MaxLive = rp.MaxLive
	}
	a.LiveGrowth += int64(rp.LiveLast - rp.LiveFirst)
	a.RegionLives += int64(rp.RegionLives)
	a.RegionLifeSteps += int64(rp.RegionLifeSteps)
	if rp.RegionLifeMax > a.RegionLifeMax {
		a.RegionLifeMax = rp.RegionLifeMax
	}
	for i, n := range rp.RegionLifeHist {
		a.RegionLifeHist[i] += int64(n)
	}
	for _, s := range rp.Samples {
		denom := s.Copies + s.CellsFreed
		if denom == 0 {
			continue
		}
		bucket := 10 * s.Copies / denom
		if bucket > 9 {
			bucket = 9
		}
		a.SurvivalHist[bucket]++
	}
}

// SurvivalPct is the aggregate survival ratio as a percentage (see
// RunProfile.SurvivalPct).
func (a *CollectorAgg) SurvivalPct() float64 {
	denom := a.Copies + a.CellsFreed
	if denom == 0 {
		return -1
	}
	return 100 * float64(a.Copies) / float64(denom)
}

// ProgramSummary is the per-source-hash view the store exposes: one
// aggregate per collector the program has been observed under, plus
// whatever decision the policy engine last recorded for the hash.
type ProgramSummary struct {
	Hash       string         `json:"hash"`
	Runs       int            `json:"runs"`
	Collectors []CollectorAgg `json:"collectors"`
	Decision   any            `json:"decision,omitempty"`
}

type profileEntry struct {
	hash      string
	runs      int
	aggs      map[string]*CollectorAgg
	decision  any
	protected bool
}

// ProfileStore holds per-program profile aggregates keyed by source hash,
// bounded by a segmented LRU exactly like the service's compiled-program
// cache: admissions land in probation, a second touch promotes to the
// protected segment (capped at 80%), and eviction drains the probation
// tail first. It is safe for concurrent use.
type ProfileStore struct {
	mu        sync.Mutex
	max       int
	probation *list.List
	protected *list.List
	entries   map[string]*list.Element
	evictions int64
}

// DefaultProfileCapacity bounds the store when the capacity is left zero.
const DefaultProfileCapacity = 1024

// NewProfileStore returns a store capped at max program hashes
// (DefaultProfileCapacity if max <= 0).
func NewProfileStore(max int) *ProfileStore {
	if max <= 0 {
		max = DefaultProfileCapacity
	}
	return &ProfileStore{
		max:       max,
		probation: list.New(),
		protected: list.New(),
		entries:   make(map[string]*list.Element),
	}
}

// touch promotes or refreshes el, mirroring the SLRU discipline of the
// compiled-program cache. Caller holds the lock.
func (s *ProfileStore) touch(el *list.Element) {
	e := el.Value.(*profileEntry)
	if e.protected {
		s.protected.MoveToFront(el)
		return
	}
	s.probation.Remove(el)
	e.protected = true
	s.entries[e.hash] = s.protected.PushFront(e)
	pc := protectedCapOf(s.max)
	for s.protected.Len() > 1 && s.protected.Len() > pc {
		back := s.protected.Back()
		d := back.Value.(*profileEntry)
		s.protected.Remove(back)
		d.protected = false
		s.entries[d.hash] = s.probation.PushFront(d)
	}
}

func protectedCapOf(budget int) int {
	c := int(0.8 * float64(budget))
	if c < 1 {
		c = 1
	}
	return c
}

// Update folds one run profile into the aggregate for (hash, collector),
// admitting the hash if new and evicting from the probation tail if over
// capacity.
func (s *ProfileStore) Update(hash, collector string, rp RunProfile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[hash]
	if !ok {
		e := &profileEntry{hash: hash, aggs: make(map[string]*CollectorAgg, 3)}
		el = s.probation.PushFront(e)
		s.entries[hash] = el
		for s.probation.Len()+s.protected.Len() > s.max {
			victim := s.probation.Back()
			if victim == el || victim == nil {
				victim = s.protected.Back()
			}
			if victim == nil || victim == el {
				break
			}
			d := victim.Value.(*profileEntry)
			if d.protected {
				s.protected.Remove(victim)
			} else {
				s.probation.Remove(victim)
			}
			delete(s.entries, d.hash)
			s.evictions++
		}
	} else {
		s.touch(el)
	}
	e := el.Value.(*profileEntry)
	e.runs++
	agg, ok := e.aggs[collector]
	if !ok {
		agg = &CollectorAgg{Collector: collector}
		e.aggs[collector] = agg
	}
	agg.add(rp)
}

// SetDecision records the policy decision last made for hash, shown in
// Snapshot/healthz. A decision for an unknown hash is dropped (the profile
// was evicted; the next run re-admits it).
func (s *ProfileStore) SetDecision(hash string, d any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[hash]; ok {
		el.Value.(*profileEntry).decision = d
	}
}

func summarize(e *profileEntry) ProgramSummary {
	out := ProgramSummary{Hash: e.hash, Runs: e.runs, Decision: e.decision}
	for _, a := range e.aggs {
		out.Collectors = append(out.Collectors, *a)
	}
	sort.Slice(out.Collectors, func(i, j int) bool {
		return out.Collectors[i].Collector < out.Collectors[j].Collector
	})
	return out
}

// Lookup returns a copy of the aggregate for hash, refreshing its recency
// (a looked-up profile is about to inform a decision — it has earned
// protection exactly like a cache hit).
func (s *ProfileStore) Lookup(hash string) (ProgramSummary, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[hash]
	if !ok {
		return ProgramSummary{}, false
	}
	s.touch(el)
	return summarize(el.Value.(*profileEntry)), true
}

// Snapshot returns up to topN summaries in recency order (protected
// segment first), without touching recency.
func (s *ProfileStore) Snapshot(topN int) []ProgramSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ProgramSummary, 0, topN)
	for _, l := range []*list.List{s.protected, s.probation} {
		for el := l.Front(); el != nil && len(out) < topN; el = el.Next() {
			out = append(out, summarize(el.Value.(*profileEntry)))
		}
	}
	return out
}

// Len reports the number of program hashes held.
func (s *ProfileStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.probation.Len() + s.protected.Len()
}

// Evictions reports the cumulative eviction count.
func (s *ProfileStore) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// Segments reports (probation, protected) entry counts for healthz.
func (s *ProfileStore) Segments() (probation, protected int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.probation.Len(), s.protected.Len()
}
