package obs_test

import (
	"encoding/json"
	"strings"
	"testing"

	"psgc"
	"psgc/internal/gclang"
	"psgc/internal/obs"
)

// allocHeavy builds a fresh pair chain per recursion step so a small
// capacity forces collections — the same workload the service tests use.
const allocHeavy = `
fun build (n : int) : int =
  if0 n then 0
  else let p = (n, (n, n)) in fst p + build (n - 1)
do build 30
`

func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := obs.NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		if strings.Trim(id, "0123456789abcdef") != "" {
			t.Fatalf("trace ID %q is not lowercase hex", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestPipelineSpans(t *testing.T) {
	var nilPl *obs.Pipeline
	nilPl.Phase("parse")() // must not panic
	if nilPl.Spans() != nil {
		t.Errorf("nil pipeline has spans")
	}

	pl := obs.NewPipeline()
	end := pl.Phase("parse")
	end()
	end = pl.Phase("cps")
	end()
	spans := pl.Spans()
	if len(spans) != 2 || spans[0].Phase != "parse" || spans[1].Phase != "cps" {
		t.Fatalf("spans = %+v, want parse then cps", spans)
	}
	for _, s := range spans {
		if s.DurMs < 0 || s.StartMs < 0 {
			t.Errorf("negative span timing: %+v", s)
		}
	}
	if spans[1].StartMs < spans[0].StartMs {
		t.Errorf("spans out of order: %+v", spans)
	}
}

func TestWords(t *testing.T) {
	n := gclang.Num{N: 1}
	cases := []struct {
		v    gclang.Value
		want int
	}{
		{n, 1},
		{gclang.PairV{L: n, R: n}, 2},
		{gclang.PairV{L: gclang.PairV{L: n, R: n}, R: n}, 3},
		{gclang.InlV{Val: n}, 1},                        // sum tag is free
		{gclang.InrV{Val: gclang.PairV{L: n, R: n}}, 2}, // wrapper adds nothing
	}
	for _, c := range cases {
		if got := obs.Words(c.v); got != c.want {
			t.Errorf("Words(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestRecorderTimelineIdentities runs a collector-exercising program with a
// recorder attached and checks the timeline against the machine's own
// counters: every put is an alloc or a copy (minus the code installs),
// every set is a forward, and every reclaimed cell appears in a
// region_free event.
func TestRecorderTimelineIdentities(t *testing.T) {
	for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
		t.Run(col.String(), func(t *testing.T) {
			c, err := psgc.Compile(allocHeavy, col)
			if err != nil {
				t.Fatal(err)
			}
			rec := c.Recorder()
			res, err := c.Run(psgc.RunOptions{Capacity: 24, Recorder: rec})
			if err != nil {
				t.Fatal(err)
			}
			if res.Collections == 0 {
				t.Fatal("capacity 24 should force collections")
			}
			tl := rec.Timeline()

			if tl.Steps != res.Steps {
				t.Errorf("timeline steps %d, machine says %d", tl.Steps, res.Steps)
			}
			codePuts := len(c.Prog.Code)
			if got, want := tl.Allocs+tl.Copies, res.Stats.Puts-codePuts; got != want {
				t.Errorf("allocs+copies = %d+%d = %d, puts minus code installs = %d",
					tl.Allocs, tl.Copies, got, want)
			}
			if tl.Forwards != res.Stats.Sets {
				t.Errorf("forwards %d, machine sets %d", tl.Forwards, res.Stats.Sets)
			}
			if tl.CellsFreed != res.Stats.CellsReclaimed {
				t.Errorf("cells freed %d, machine reclaimed %d", tl.CellsFreed, res.Stats.CellsReclaimed)
			}
			if len(tl.Collections) != res.Collections {
				t.Errorf("%d collection spans, machine counted %d collections",
					len(tl.Collections), res.Collections)
			}

			// Per-span sums must agree with the totals, and every span of a
			// finished run must be closed and well-ordered.
			var copies, forwards, scans, cells int
			for _, sp := range tl.Collections {
				if sp.Open {
					t.Errorf("collection %d still open after a finished run", sp.Index)
				}
				if sp.StartStep > sp.EndStep {
					t.Errorf("collection %d spans steps %d-%d", sp.Index, sp.StartStep, sp.EndStep)
				}
				copies += sp.Copies
				forwards += sp.Forwards
				scans += sp.Scans
				cells += sp.CellsFreed
			}
			if copies != tl.Copies || scans != tl.Scans {
				t.Errorf("span sums copies=%d scans=%d, totals copies=%d scans=%d",
					copies, scans, tl.Copies, tl.Scans)
			}
			if forwards != tl.Forwards {
				t.Errorf("span forwards %d, total %d (mutator code never sets)", forwards, tl.Forwards)
			}
			if cells > tl.CellsFreed {
				t.Errorf("span cells freed %d exceeds total %d", cells, tl.CellsFreed)
			}

			// The timeline must serialize cleanly (it is served as JSON).
			if _, err := json.Marshal(tl); err != nil {
				t.Errorf("timeline does not marshal: %v", err)
			}
		})
	}
}

// TestRecorderEventCap bounds the retained event log while keeping totals
// exact.
func TestRecorderEventCap(t *testing.T) {
	c, err := psgc.Compile(allocHeavy, psgc.Forwarding)
	if err != nil {
		t.Fatal(err)
	}
	// First an uncapped run for the true event count.
	ref := c.Recorder()
	if _, err := c.Run(psgc.RunOptions{Capacity: 24, Recorder: ref}); err != nil {
		t.Fatal(err)
	}
	full := ref.Timeline()
	if len(full.Events) < 20 {
		t.Fatalf("reference run produced only %d events", len(full.Events))
	}

	rec := c.Recorder()
	rec.MaxEvents = 10
	res, err := c.Run(psgc.RunOptions{Capacity: 24, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	tl := rec.Timeline()
	if len(tl.Events) != 10 {
		t.Errorf("retained %d events, want the 10-event cap", len(tl.Events))
	}
	if tl.DroppedEvents != len(full.Events)-10 {
		t.Errorf("dropped %d events, want %d", tl.DroppedEvents, len(full.Events)-10)
	}
	// Totals are unaffected by the cap.
	if got, want := tl.Allocs+tl.Copies, res.Stats.Puts-len(c.Prog.Code); got != want {
		t.Errorf("capped totals drifted: allocs+copies %d, want %d", got, want)
	}
}
