package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestIncidentLogRingSemantics(t *testing.T) {
	l := NewIncidentLog(3)
	for i := 0; i < 5; i++ {
		l.Record(Incident{Kind: "divergence", Detail: fmt.Sprintf("d%d", i)})
	}
	if got := l.Total(); got != 5 {
		t.Errorf("total = %d, want 5", got)
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("retained %d, want 3", len(snap))
	}
	for i, want := range []string{"d2", "d3", "d4"} {
		if snap[i].Detail != want {
			t.Errorf("snapshot[%d] = %q, want %q (oldest-first order)", i, snap[i].Detail, want)
		}
		if snap[i].Time.IsZero() {
			t.Errorf("snapshot[%d] has no timestamp", i)
		}
	}
}

func TestIncidentLogUnderfilled(t *testing.T) {
	l := NewIncidentLog(0) // default capacity
	stamp := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	l.Record(Incident{Kind: "watchdog", Time: stamp})
	snap := l.Snapshot()
	if len(snap) != 1 || !snap[0].Time.Equal(stamp) {
		t.Errorf("snapshot = %+v, want the one stamped incident", snap)
	}
}

func TestIncidentLogConcurrent(t *testing.T) {
	l := NewIncidentLog(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Record(Incident{Kind: "k"})
				l.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := l.Total(); got != 800 {
		t.Errorf("total = %d, want 800", got)
	}
}
