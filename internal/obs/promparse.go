package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the validating counterpart of prom.go: a minimal parser for
// the Prometheus text exposition format, used by tests (and available to
// clients) to check that what the service serves at /metrics is actually
// scrapeable — line syntax, declared types, and histogram invariants
// (cumulative le buckets ending at +Inf, count equal to the +Inf bucket).

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// PromSample is one parsed sample line.
type PromSample struct {
	// Name is the full sample name, including _bucket/_sum/_count
	// suffixes for histogram families.
	Name   string
	Labels map[string]string
	Value  float64
}

var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// ParseExposition parses and validates a text-format exposition, returning
// families keyed by name. It rejects malformed lines, samples without a
// resolvable family, unknown TYPE declarations, and histograms whose
// buckets are not cumulative or whose _count disagrees with the +Inf
// bucket.
func ParseExposition(data []byte) (map[string]*PromFamily, error) {
	families := map[string]*PromFamily{}
	for i, line := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("line %d: HELP without a metric name", lineNo)
			}
			fam := family(families, name)
			fam.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			if !promTypes[typ] {
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			family(families, name).Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal and ignored
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam, ok := families[familyName(families, s.Name)]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %s has no family", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	for _, fam := range families {
		if fam.Type == "histogram" {
			if err := checkHistogram(fam); err != nil {
				return nil, fmt.Errorf("histogram %s: %v", fam.Name, err)
			}
		}
	}
	return families, nil
}

func family(families map[string]*PromFamily, name string) *PromFamily {
	fam, ok := families[name]
	if !ok {
		fam = &PromFamily{Name: name}
		families[name] = fam
	}
	return fam
}

// familyName resolves a sample name to its family: exact match first, then
// the histogram suffixes against a declared histogram family.
func familyName(families map[string]*PromFamily, sample string) string {
	if _, ok := families[sample]; ok {
		return sample
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base == sample {
			continue
		}
		if fam, ok := families[base]; ok && fam.Type == "histogram" {
			return base
		}
	}
	return sample
}

func parseSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("sample without a value: %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("sample without a name: %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; the service never writes one, but
	// tolerate it to stay a real parser.
	value := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		value = rest[:i]
	}
	v, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", value, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at rest[0]=='{' and
// returns the index just past the closing brace.
func parseLabels(rest string, into map[string]string) (int, error) {
	i := 1
	for {
		for i < len(rest) && rest[i] == ',' {
			i++
		}
		if i < len(rest) && rest[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("malformed label block %q", rest)
		}
		name := rest[i : i+eq]
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", rest)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(rest) {
				return 0, fmt.Errorf("unterminated label value in %q", rest)
			}
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		into[name] = val.String()
	}
}

func checkHistogram(fam *PromFamily) error {
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	var count float64
	hasCount := false
	hasSum := false
	for _, s := range fam.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket without le label")
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("bad le %q: %v", leStr, err)
			}
			buckets = append(buckets, bucket{le: le, count: s.Value})
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
			hasCount = true
		case strings.HasSuffix(s.Name, "_sum"):
			hasSum = true
		}
	}
	if len(buckets) == 0 || !hasCount || !hasSum {
		return fmt.Errorf("missing buckets, _sum, or _count")
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.le, +1) {
		return fmt.Errorf("no +Inf bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].count < buckets[i-1].count {
			return fmt.Errorf("buckets not cumulative at le=%v", buckets[i].le)
		}
	}
	if last.count != count {
		return fmt.Errorf("_count %v disagrees with +Inf bucket %v", count, last.count)
	}
	return nil
}
