// Package gen generates random well-typed source programs for the
// empirical soundness experiments (DESIGN.md E7) and the benchmark
// workloads. Generated programs always terminate: recursion is confined
// to top-level functions that structurally decrease an integer counter.
package gen

import (
	"fmt"
	"math/rand"

	"psgc/internal/names"
	"psgc/internal/source"
)

// Config tunes the generator.
type Config struct {
	// MaxDepth bounds expression nesting.
	MaxDepth int
	// MaxFuns bounds the number of recursive top-level functions.
	MaxFuns int
	// Recursion bounds the counter each recursive function starts from.
	Recursion int
}

// DefaultConfig is a moderate workload.
var DefaultConfig = Config{MaxDepth: 5, MaxFuns: 3, Recursion: 6}

// Program generates a random well-typed source program whose main
// expression has type int. The program is guaranteed to terminate.
func Program(r *rand.Rand, cfg Config) source.Program {
	g := &generator{r: r, cfg: cfg}
	return g.program()
}

type generator struct {
	r      *rand.Rand
	cfg    Config
	supply names.Supply
	funs   []source.FunDef
}

// typ generates a random type of bounded depth. Function types are kept
// shallow so applications stay plentiful but closures stay small.
func (g *generator) typ(depth int) source.Type {
	if depth <= 0 {
		return source.IntT{}
	}
	switch g.r.Intn(5) {
	case 0, 1:
		return source.IntT{}
	case 2:
		return source.ProdT{L: g.typ(depth - 1), R: g.typ(depth - 1)}
	default:
		return source.FnT{Dom: g.typ(depth - 1), Cod: g.typ(depth - 1)}
	}
}

func (g *generator) program() source.Program {
	nfuns := 1 + g.r.Intn(g.cfg.MaxFuns)
	// Pre-declare the functions so bodies can call any of them
	// (mutual recursion through the shared counter argument).
	sigs := make([]source.FunDef, nfuns)
	for i := range sigs {
		sigs[i] = source.FunDef{
			Name:      names.Name(fmt.Sprintf("f%d", i)),
			Param:     "n",
			ParamType: source.IntT{},
			Result:    g.typ(2),
		}
	}
	g.funs = sigs
	for i := range sigs {
		g.funs[i].Body = g.funBody(sigs[i])
	}
	// Main: call a function on a bounded counter and reduce the result
	// to an int.
	env := g.topEnv()
	target := sigs[g.r.Intn(len(sigs))]
	call := source.App{
		Fn:  source.Var{Name: target.Name},
		Arg: source.IntLit{N: 1 + g.r.Intn(g.cfg.Recursion)},
	}
	main := g.reduceToInt(env, call, target.Result, g.cfg.MaxDepth)
	return source.Program{Funs: g.funs, Main: main}
}

func (g *generator) topEnv() source.Env {
	env := source.Env{}
	for _, f := range g.funs {
		env[f.Name] = f.Type()
	}
	return env
}

// funBody builds if0 n then <base> else <recursive>, where recursive
// subterms may call any top-level function at n-1.
func (g *generator) funBody(f source.FunDef) source.Expr {
	env := g.topEnv().Extend(f.Param, source.IntT{})
	base := g.expr(env, f.Result, g.cfg.MaxDepth, false)
	rec := g.expr(env, f.Result, g.cfg.MaxDepth, true)
	return source.If0{Cond: source.Var{Name: f.Param}, Then: base, Else: rec}
}

// reduceToInt wraps an expression of an arbitrary type into an int-typed
// observation of it (projections for pairs, application for functions).
func (g *generator) reduceToInt(env source.Env, e source.Expr, t source.Type, depth int) source.Expr {
	switch t := t.(type) {
	case source.IntT:
		return e
	case source.ProdT:
		i := 1 + g.r.Intn(2)
		inner := t.L
		if i == 2 {
			inner = t.R
		}
		return g.reduceToInt(env, source.Proj{I: i, E: e}, inner, depth)
	case source.FnT:
		arg := g.expr(env, t.Dom, depth-1, false)
		return g.reduceToInt(env, source.App{Fn: e, Arg: arg}, t.Cod, depth)
	default:
		panic("gen: unknown type")
	}
}

// expr generates an expression of exactly the requested type. When rec is
// true, top-level calls use n-1 as the counter (we are under the non-zero
// branch of a function body); otherwise top-level calls use literal
// counters, which keeps termination trivially well-founded only if they
// never appear — so non-rec contexts never call top-level functions.
func (g *generator) expr(env source.Env, t source.Type, depth int, rec bool) source.Expr {
	if depth <= 0 {
		return g.atom(env, t, rec)
	}
	// A few generic constructions available at every type.
	switch g.r.Intn(8) {
	case 0:
		x := g.supply.Fresh("v")
		rhsTy := g.typ(1)
		rhs := g.expr(env, rhsTy, depth-1, rec)
		body := g.expr(env.Extend(x, rhsTy), t, depth-1, rec)
		return source.Let{X: x, Rhs: rhs, Body: body}
	case 1:
		cond := g.expr(env, source.IntT{}, depth-1, rec)
		thn := g.expr(env, t, depth-1, rec)
		els := g.expr(env, t, depth-1, rec)
		return source.If0{Cond: cond, Then: thn, Else: els}
	case 2:
		// Project from a generated pair.
		other := g.typ(1)
		if g.r.Intn(2) == 0 {
			pair := g.expr(env, source.ProdT{L: t, R: other}, depth-1, rec)
			return source.Proj{I: 1, E: pair}
		}
		pair := g.expr(env, source.ProdT{L: other, R: t}, depth-1, rec)
		return source.Proj{I: 2, E: pair}
	case 3:
		// Apply a generated function.
		dom := g.typ(1)
		fn := g.expr(env, source.FnT{Dom: dom, Cod: t}, depth-1, rec)
		arg := g.expr(env, dom, depth-1, rec)
		return source.App{Fn: fn, Arg: arg}
	}
	// Type-directed constructions.
	switch t := t.(type) {
	case source.IntT:
		if rec && g.r.Intn(3) == 0 {
			// Recursive call, observed at int.
			f := g.funs[g.r.Intn(len(g.funs))]
			call := source.App{Fn: source.Var{Name: f.Name},
				Arg: source.Bin{Op: source.OpSub, L: source.Var{Name: "n"}, R: source.IntLit{N: 1}}}
			return g.reduceToInt(env, call, f.Result, depth-1)
		}
		op := []source.BinOp{source.OpAdd, source.OpSub, source.OpMul}[g.r.Intn(3)]
		return source.Bin{Op: op,
			L: g.expr(env, source.IntT{}, depth-1, rec),
			R: g.expr(env, source.IntT{}, depth-1, rec)}
	case source.ProdT:
		return source.Pair{
			L: g.expr(env, t.L, depth-1, rec),
			R: g.expr(env, t.R, depth-1, rec)}
	case source.FnT:
		x := g.supply.Fresh("x")
		body := g.expr(env.Extend(x, t.Dom), t.Cod, depth-1, rec)
		return source.Lam{Param: x, ParamType: t.Dom, Body: body}
	default:
		panic("gen: unknown type")
	}
}

// atom generates a smallest expression of the requested type: a variable
// from the environment when one fits, otherwise a canonical literal.
func (g *generator) atom(env source.Env, t source.Type, rec bool) source.Expr {
	// Top-level function names are excluded: referencing one here would
	// let a base-case body restart the recursion with a fresh counter,
	// destroying the termination argument. Recursive calls are generated
	// only by the dedicated rec case in expr, always at counter n-1.
	topNames := names.NewSet()
	for _, f := range g.funs {
		topNames.Add(f.Name)
	}
	var candidates []names.Name
	for x, xt := range env {
		if !topNames.Has(x) && source.TypeEqual(xt, t) {
			candidates = append(candidates, x)
		}
	}
	if len(candidates) > 0 && g.r.Intn(3) != 0 {
		// Deterministic order before choosing (map iteration is random).
		best := candidates[0]
		for _, c := range candidates {
			if c < best {
				best = c
			}
		}
		return source.Var{Name: best}
	}
	switch t := t.(type) {
	case source.IntT:
		return source.IntLit{N: g.r.Intn(9)}
	case source.ProdT:
		return source.Pair{L: g.atom(env, t.L, rec), R: g.atom(env, t.R, rec)}
	case source.FnT:
		x := g.supply.Fresh("x")
		return source.Lam{Param: x, ParamType: t.Dom, Body: g.atom(env.Extend(x, t.Dom), t.Cod, rec)}
	default:
		panic("gen: unknown type")
	}
}
