package gen

import (
	"math/rand"
	"testing"

	"psgc"
	"psgc/internal/source"
)

func TestGeneratedProgramsAreWellTyped(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := Program(r, DefaultConfig)
		if _, err := source.CheckProgram(p); err != nil {
			t.Fatalf("program %d ill-typed: %v\n%s", i, err, p)
		}
	}
}

func TestGeneratedProgramsTerminate(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		p := Program(r, DefaultConfig)
		ev := source.Evaluator{Fuel: 20_000_000}
		if _, err := ev.RunInt(p); err != nil {
			t.Fatalf("program %d failed to run: %v\n%s", i, err, p)
		}
	}
}

func TestGeneratedProgramsRoundTripThroughParser(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		p := Program(r, DefaultConfig)
		p2, err := source.Parse(p.String())
		if err != nil {
			t.Fatalf("program %d failed to reparse: %v\n%s", i, err, p)
		}
		if _, err := source.CheckProgram(p2); err != nil {
			t.Fatalf("program %d fails to typecheck after reparse: %v\n%s", i, err, p)
		}
		ev1 := source.Evaluator{Fuel: 20_000_000}
		n1, err := ev1.RunInt(p)
		if err != nil {
			t.Fatal(err)
		}
		ev2 := source.Evaluator{Fuel: 20_000_000}
		n2, err := ev2.RunInt(p2)
		if err != nil {
			t.Fatalf("reparsed program %d failed: %v", i, err)
		}
		if n1 != n2 {
			t.Fatalf("program %d: reparse changed result %d → %d", i, n1, n2)
		}
	}
}

// TestDifferentialAllCollectors is experiment E7's workhorse: randomly
// generated programs must produce identical results on the reference
// evaluator and on the λGC machine under every collector, with a small
// capacity so collections actually interleave with the computation.
func TestDifferentialAllCollectors(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	collectors := []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational}
	ran := 0
	for i := 0; ran < 40 && i < 200; i++ {
		p := Program(r, DefaultConfig)
		ev := source.Evaluator{Fuel: 3_000_000}
		want, err := ev.RunInt(p)
		if err != nil {
			continue // too big for the differential budget; skip
		}
		ran++
		for _, col := range collectors {
			c, err := psgc.CompileProgram(p, col)
			if err != nil {
				t.Fatalf("program %d/%v: compile: %v\n%s", i, col, err, p)
			}
			res, err := c.Run(psgc.RunOptions{Capacity: 24, Fuel: 40_000_000})
			if err != nil {
				t.Fatalf("program %d/%v: run: %v\n%s", i, col, err, p)
			}
			if res.Value != want {
				t.Fatalf("program %d/%v: result %d, reference %d\n%s", i, col, res.Value, want, p)
			}
		}
	}
	if ran < 40 {
		t.Fatalf("only %d programs fit the differential budget", ran)
	}
}

// TestGeneratedPreservation runs a handful of random programs with
// per-step machine-state re-checking under every collector: the empirical
// type-preservation theorem over arbitrary mutators.
func TestGeneratedPreservation(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; skipped in -short mode")
	}
	r := rand.New(rand.NewSource(5))
	collectors := []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational}
	cfg := Config{MaxDepth: 4, MaxFuns: 2, Recursion: 2}
	ran := 0
	for i := 0; ran < 4 && i < 100; i++ {
		p := Program(r, cfg)
		ev := source.Evaluator{Fuel: 20_000}
		want, err := ev.RunInt(p)
		if err != nil {
			continue
		}
		ran++
		for _, col := range collectors {
			c, err := psgc.CompileProgram(p, col)
			if err != nil {
				t.Fatalf("program %d/%v: compile: %v", i, col, err)
			}
			res, err := c.Run(psgc.RunOptions{Capacity: 16, CheckEveryStep: true, Fuel: 3_000_000})
			if err != nil {
				t.Fatalf("program %d/%v: preservation violated: %v\n%s", i, col, err, p)
			}
			if res.Value != want {
				t.Fatalf("program %d/%v: result %d, reference %d", i, col, res.Value, want)
			}
		}
	}
	if ran < 4 {
		t.Fatalf("only %d programs fit the preservation budget", ran)
	}
}
