// Package names provides interned identifiers and deterministic fresh-name
// supplies shared by every calculus in the system.
//
// All binders in the source language, λCLOS, and λGC carry a Name. Fresh
// names are produced by a Supply so that every compiler pass can rename
// binders apart without global state; a Supply is deterministic, which keeps
// compiled programs and test failures reproducible.
package names

import (
	"fmt"
	"strings"
)

// Name identifies a variable, tag variable, region variable, or label.
// Names compare by value; two occurrences of the same identifier are equal.
type Name string

// String returns the identifier text.
func (n Name) String() string { return string(n) }

// Base returns the human-readable stem of the name with any freshness
// suffix removed, e.g. Base("x$3") == "x".
func (n Name) Base() string {
	if i := strings.IndexByte(string(n), '$'); i >= 0 {
		return string(n)[:i]
	}
	return string(n)
}

// Supply generates fresh names. The zero value is ready to use.
// A Supply is not safe for concurrent use.
type Supply struct {
	next int
}

// Fresh returns a name that the supply has never returned before, derived
// from the stem of base. Freshness is with respect to this supply only;
// callers that mix supplies must partition stems.
func (s *Supply) Fresh(base Name) Name {
	s.next++
	return Name(fmt.Sprintf("%s$%d", base.Base(), s.next))
}

// FreshN returns n distinct fresh names sharing the same stem.
func (s *Supply) FreshN(base Name, n int) []Name {
	out := make([]Name, n)
	for i := range out {
		out[i] = s.Fresh(base)
	}
	return out
}

// Set is a set of names.
type Set map[Name]struct{}

// NewSet builds a set from the given names.
func NewSet(ns ...Name) Set {
	s := make(Set, len(ns))
	for _, n := range ns {
		s.Add(n)
	}
	return s
}

// Add inserts n.
func (s Set) Add(n Name) { s[n] = struct{}{} }

// Has reports whether n is in the set.
func (s Set) Has(n Name) bool { _, ok := s[n]; return ok }

// Remove deletes n.
func (s Set) Remove(n Name) { delete(s, n) }

// Union adds every element of t to s and returns s.
func (s Set) Union(t Set) Set {
	for n := range t {
		s.Add(n)
	}
	return s
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for n := range s {
		c.Add(n)
	}
	return c
}
