package names

import "testing"

func TestFreshDistinct(t *testing.T) {
	var s Supply
	seen := make(map[Name]bool)
	for i := 0; i < 1000; i++ {
		n := s.Fresh("x")
		if seen[n] {
			t.Fatalf("Fresh returned duplicate %s", n)
		}
		seen[n] = true
	}
}

func TestFreshKeepsStem(t *testing.T) {
	var s Supply
	n := s.Fresh("copy")
	if n.Base() != "copy" {
		t.Fatalf("Base(%q) = %q, want copy", n, n.Base())
	}
	// Freshening an already-fresh name must not stack suffixes.
	n2 := s.Fresh(n)
	if n2.Base() != "copy" {
		t.Fatalf("Base(%q) = %q, want copy", n2, n2.Base())
	}
	if n2 == n {
		t.Fatalf("Fresh returned the same name %s twice", n)
	}
}

func TestFreshN(t *testing.T) {
	var s Supply
	ns := s.FreshN("r", 5)
	if len(ns) != 5 {
		t.Fatalf("FreshN returned %d names, want 5", len(ns))
	}
	seen := make(map[Name]bool)
	for _, n := range ns {
		if seen[n] {
			t.Fatalf("FreshN returned duplicate %s", n)
		}
		seen[n] = true
	}
}

func TestBaseOfPlainName(t *testing.T) {
	if Name("x").Base() != "x" {
		t.Fatalf("Base of plain name changed it")
	}
}

func TestSetOps(t *testing.T) {
	s := NewSet("a", "b")
	if !s.Has("a") || !s.Has("b") || s.Has("c") {
		t.Fatalf("NewSet contents wrong: %v", s)
	}
	s.Add("c")
	if !s.Has("c") {
		t.Fatalf("Add failed")
	}
	s.Remove("a")
	if s.Has("a") {
		t.Fatalf("Remove failed")
	}
	u := NewSet("x").Union(NewSet("y"))
	if !u.Has("x") || !u.Has("y") {
		t.Fatalf("Union failed: %v", u)
	}
	c := u.Clone()
	c.Remove("x")
	if !u.Has("x") {
		t.Fatalf("Clone aliases original")
	}
}
