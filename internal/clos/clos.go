// Package clos implements λCLOS, the paper's post-CPS, post-closure-
// conversion language (§3): fully closed top-level functions, values
// including existential packages for closures, and CPS terms. Types are
// tags (package tags) — exactly the correspondence §4.2 exploits when
// translating to λGC.
package clos

import (
	"fmt"
	"strings"

	"psgc/internal/names"
	"psgc/internal/source"
	"psgc/internal/tags"
)

// Value is a λCLOS value.
type Value interface {
	isValue()
	String() string
}

// Num is an integer literal n.
type Num struct {
	N int
}

// Var is a variable x.
type Var struct {
	Name names.Name
}

// FunV references a top-level (letrec-bound) function f.
type FunV struct {
	Name names.Name
}

// PairV is (v1, v2).
type PairV struct {
	L, R Value
}

// Pack is the existential package ⟨t = τ, v : τ2⟩ of type ∃t.τ2 — the
// closure representation (§3, [10, 9]).
type Pack struct {
	Bound   names.Name
	Witness tags.Tag
	Val     Value
	Body    tags.Tag
}

func (Num) isValue()   {}
func (Var) isValue()   {}
func (FunV) isValue()  {}
func (PairV) isValue() {}
func (Pack) isValue()  {}

func (v Num) String() string   { return fmt.Sprintf("%d", v.N) }
func (v Var) String() string   { return v.Name.String() }
func (v FunV) String() string  { return v.Name.String() }
func (v PairV) String() string { return fmt.Sprintf("(%s, %s)", v.L, v.R) }
func (v Pack) String() string {
	return fmt.Sprintf("⟨%s=%s, %s : %s⟩", v.Bound, v.Witness, v.Val, v.Body)
}

// Term is a λCLOS term.
type Term interface {
	isTerm()
	String() string
}

// LetVal is let x = v in e.
type LetVal struct {
	X    names.Name
	V    Value
	Body Term
}

// LetProj is let x = πi v in e.
type LetProj struct {
	X    names.Name
	I    int
	V    Value
	Body Term
}

// LetArith is the workload extension's arithmetic binding.
type LetArith struct {
	X    names.Name
	Op   source.BinOp
	L, R Value
	Body Term
}

// App is v1(v2).
type App struct {
	Fn, Arg Value
}

// Open is open v as ⟨t, x⟩ in e.
type Open struct {
	V    Value
	T, X names.Name
	Body Term
}

// If0 branches on zero (workload extension).
type If0 struct {
	V          Value
	Then, Else Term
}

// Halt ends execution with an integer.
type Halt struct {
	V Value
}

func (LetVal) isTerm()   {}
func (LetProj) isTerm()  {}
func (LetArith) isTerm() {}
func (App) isTerm()      {}
func (Open) isTerm()     {}
func (If0) isTerm()      {}
func (Halt) isTerm()     {}

func (e LetVal) String() string {
	return fmt.Sprintf("let %s = %s in\n%s", e.X, e.V, e.Body)
}

func (e LetProj) String() string {
	return fmt.Sprintf("let %s = π%d %s in\n%s", e.X, e.I, e.V, e.Body)
}

func (e LetArith) String() string {
	return fmt.Sprintf("let %s = %s %s %s in\n%s", e.X, e.L, e.Op, e.R, e.Body)
}

func (e App) String() string  { return fmt.Sprintf("%s(%s)", e.Fn, e.Arg) }
func (e Halt) String() string { return fmt.Sprintf("halt %s", e.V) }

func (e Open) String() string {
	return fmt.Sprintf("open %s as ⟨%s, %s⟩ in\n%s", e.V, e.T, e.X, e.Body)
}

func (e If0) String() string {
	return fmt.Sprintf("if0 %s (%s) (%s)", e.V, e.Then, e.Else)
}

// FunDef is a letrec-bound, fully closed, unary function λ(x:τ).e.
type FunDef struct {
	Name      names.Name
	Param     names.Name
	ParamType tags.Tag
	Body      Term
}

// Program is letrec f… in e.
type Program struct {
	Funs []FunDef
	Main Term
}

// String renders the program.
func (p Program) String() string {
	var b strings.Builder
	for _, f := range p.Funs {
		fmt.Fprintf(&b, "letrec %s = λ(%s : %s).\n%s\n", f.Name, f.Param, f.ParamType, f.Body)
	}
	b.WriteString(p.Main.String())
	return b.String()
}
