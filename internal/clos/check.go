package clos

import (
	"fmt"

	"psgc/internal/kinds"
	"psgc/internal/names"
	"psgc/internal/tags"
)

// The λCLOS static semantics (§3). Types are tags; type equality is tag
// equality up to β-reduction (tag functions only arise from typecase
// analysis, but open's body type mentions applications te t, so EqualNF is
// the right notion throughout).

// Env carries Θ (tag variables in scope) and Γ (term variables).
type Env struct {
	Theta tags.KindEnv
	Gamma map[names.Name]tags.Tag
	Funs  map[names.Name]tags.Tag // top-level code types τ→0
}

func (e *Env) clone() *Env {
	out := &Env{
		Theta: make(tags.KindEnv, len(e.Theta)),
		Gamma: make(map[names.Name]tags.Tag, len(e.Gamma)),
		Funs:  e.Funs,
	}
	for n, k := range e.Theta {
		out.Theta[n] = k
	}
	for n, t := range e.Gamma {
		out.Gamma[n] = t
	}
	return out
}

func (e *Env) withVar(x names.Name, t tags.Tag) *Env {
	out := e.clone()
	out.Gamma[x] = t
	return out
}

func (e *Env) withTag(t names.Name) *Env {
	out := e.clone()
	out.Theta[t] = kinds.Omega{}
	return out
}

func typeErr(where fmt.Stringer, format string, args ...any) error {
	return fmt.Errorf("clos: %s: in %s", fmt.Sprintf(format, args...), where)
}

// SynthValue computes the type of a value.
func SynthValue(env *Env, v Value) (tags.Tag, error) {
	switch v := v.(type) {
	case Num:
		return tags.Int{}, nil
	case Var:
		t, ok := env.Gamma[v.Name]
		if !ok {
			return nil, typeErr(v, "unbound variable %s", v.Name)
		}
		return t, nil
	case FunV:
		t, ok := env.Funs[v.Name]
		if !ok {
			return nil, typeErr(v, "unknown function %s", v.Name)
		}
		return t, nil
	case PairV:
		l, err := SynthValue(env, v.L)
		if err != nil {
			return nil, err
		}
		r, err := SynthValue(env, v.R)
		if err != nil {
			return nil, err
		}
		return tags.Prod{L: l, R: r}, nil
	case Pack:
		if err := wellKinded(env, v.Witness); err != nil {
			return nil, typeErr(v, "%v", err)
		}
		want := tags.Subst(v.Body, v.Bound, v.Witness)
		got, err := SynthValue(env, v.Val)
		if err != nil {
			return nil, err
		}
		eq, err := tags.EqualNF(got, want)
		if err != nil {
			return nil, typeErr(v, "%v", err)
		}
		if !eq {
			return nil, typeErr(v, "package payload has type %s, want %s", got, want)
		}
		res := tags.Exist{Bound: v.Bound, Body: v.Body}
		if err := wellKinded(env, res); err != nil {
			return nil, typeErr(v, "%v", err)
		}
		return res, nil
	default:
		panic(fmt.Sprintf("clos: unknown value %T", v))
	}
}

func wellKinded(env *Env, t tags.Tag) error {
	k, err := tags.Check(env.Theta, t)
	if err != nil {
		return err
	}
	if !k.Equal(kinds.Omega{}) {
		return fmt.Errorf("type %s has kind %s, want Ω", t, k)
	}
	return nil
}

func checkValue(env *Env, v Value, want tags.Tag) error {
	got, err := SynthValue(env, v)
	if err != nil {
		return err
	}
	eq, err := tags.EqualNF(got, want)
	if err != nil {
		return typeErr(v, "%v", err)
	}
	if !eq {
		return typeErr(v, "has type %s, want %s", got, want)
	}
	return nil
}

// CheckTerm implements the λCLOS term judgment.
func CheckTerm(env *Env, e Term) error {
	switch e := e.(type) {
	case LetVal:
		t, err := SynthValue(env, e.V)
		if err != nil {
			return err
		}
		return CheckTerm(env.withVar(e.X, t), e.Body)
	case LetProj:
		t, err := SynthValue(env, e.V)
		if err != nil {
			return err
		}
		nf, err := tags.Normalize(t)
		if err != nil {
			return typeErr(e, "%v", err)
		}
		p, ok := nf.(tags.Prod)
		if !ok {
			return typeErr(e, "projection from non-pair type %s", nf)
		}
		picked := p.L
		if e.I == 2 {
			picked = p.R
		}
		return CheckTerm(env.withVar(e.X, picked), e.Body)
	case LetArith:
		if err := checkValue(env, e.L, tags.Int{}); err != nil {
			return err
		}
		if err := checkValue(env, e.R, tags.Int{}); err != nil {
			return err
		}
		return CheckTerm(env.withVar(e.X, tags.Int{}), e.Body)
	case App:
		t, err := SynthValue(env, e.Fn)
		if err != nil {
			return err
		}
		nf, err := tags.Normalize(t)
		if err != nil {
			return typeErr(e, "%v", err)
		}
		code, ok := nf.(tags.Code)
		if !ok || len(code.Args) != 1 {
			return typeErr(e, "call of non-unary-code type %s", nf)
		}
		return checkValue(env, e.Arg, code.Args[0])
	case Open:
		t, err := SynthValue(env, e.V)
		if err != nil {
			return err
		}
		nf, err := tags.Normalize(t)
		if err != nil {
			return typeErr(e, "%v", err)
		}
		ex, ok := nf.(tags.Exist)
		if !ok {
			return typeErr(e, "open of non-existential type %s", nf)
		}
		bodyTy := tags.Subst(ex.Body, ex.Bound, tags.Var{Name: e.T})
		return CheckTerm(env.withTag(e.T).withVar(e.X, bodyTy), e.Body)
	case If0:
		if err := checkValue(env, e.V, tags.Int{}); err != nil {
			return err
		}
		if err := CheckTerm(env, e.Then); err != nil {
			return err
		}
		return CheckTerm(env, e.Else)
	case Halt:
		return checkValue(env, e.V, tags.Int{})
	default:
		panic(fmt.Sprintf("clos: unknown term %T", e))
	}
}

// CheckProgram typechecks a whole λCLOS program. Function bodies are
// checked closed: only the parameter and the letrec names are in scope.
func CheckProgram(p Program) error {
	funs := make(map[names.Name]tags.Tag, len(p.Funs))
	for _, f := range p.Funs {
		if _, dup := funs[f.Name]; dup {
			return fmt.Errorf("clos: duplicate function %s", f.Name)
		}
		funs[f.Name] = tags.Code{Args: []tags.Tag{f.ParamType}}
	}
	for _, f := range p.Funs {
		env := &Env{Theta: tags.KindEnv{}, Gamma: map[names.Name]tags.Tag{}, Funs: funs}
		if err := wellKinded(env, f.ParamType); err != nil {
			return fmt.Errorf("clos: function %s parameter: %w", f.Name, err)
		}
		env.Gamma[f.Param] = f.ParamType
		if err := CheckTerm(env, f.Body); err != nil {
			return fmt.Errorf("clos: in function %s: %w", f.Name, err)
		}
	}
	env := &Env{Theta: tags.KindEnv{}, Gamma: map[names.Name]tags.Tag{}, Funs: funs}
	if err := CheckTerm(env, p.Main); err != nil {
		return fmt.Errorf("clos: in main: %w", err)
	}
	return nil
}
