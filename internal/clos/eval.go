package clos

import (
	"errors"
	"fmt"

	"psgc/internal/names"
	"psgc/internal/source"
)

// The λCLOS reference evaluator: an environment machine over CPS terms.
// It is the last reference point before the region-and-GC world, used by
// the differential tests.

type rtValue interface{ isRT() }

type rtNum struct{ n int }

type rtPair struct{ l, r rtValue }

type rtFun struct{ name names.Name }

type rtPack struct{ val rtValue }

func (rtNum) isRT()  {}
func (rtPair) isRT() {}
func (rtFun) isRT()  {}
func (rtPack) isRT() {}

type rtEnv struct {
	name names.Name
	val  rtValue
	next *rtEnv
}

func (e *rtEnv) lookup(n names.Name) (rtValue, bool) {
	for ; e != nil; e = e.next {
		if e.name == n {
			return e.val, true
		}
	}
	return nil, false
}

// ErrFuel is returned when evaluation exceeds its step budget.
var ErrFuel = errors.New("clos: evaluation out of fuel")

// Run executes a λCLOS program to halt, returning the integer result and
// the number of machine steps taken.
func Run(p Program, fuel int) (int, int, error) {
	funs := map[names.Name]FunDef{}
	for _, f := range p.Funs {
		funs[f.Name] = f
	}
	env := (*rtEnv)(nil)
	term := p.Main
	steps := 0
	for {
		if fuel <= 0 {
			return 0, steps, ErrFuel
		}
		fuel--
		steps++
		switch e := term.(type) {
		case Halt:
			v, err := eval(env, e.V)
			if err != nil {
				return 0, steps, err
			}
			n, ok := v.(rtNum)
			if !ok {
				return 0, steps, fmt.Errorf("clos: halt with non-integer")
			}
			return n.n, steps, nil
		case LetVal:
			v, err := eval(env, e.V)
			if err != nil {
				return 0, steps, err
			}
			env = &rtEnv{name: e.X, val: v, next: env}
			term = e.Body
		case LetProj:
			v, err := eval(env, e.V)
			if err != nil {
				return 0, steps, err
			}
			p, ok := v.(rtPair)
			if !ok {
				return 0, steps, fmt.Errorf("clos: projection from non-pair")
			}
			picked := p.l
			if e.I == 2 {
				picked = p.r
			}
			env = &rtEnv{name: e.X, val: picked, next: env}
			term = e.Body
		case LetArith:
			l, err := eval(env, e.L)
			if err != nil {
				return 0, steps, err
			}
			r, err := eval(env, e.R)
			if err != nil {
				return 0, steps, err
			}
			ln, lok := l.(rtNum)
			rn, rok := r.(rtNum)
			if !lok || !rok {
				return 0, steps, fmt.Errorf("clos: arithmetic on non-integers")
			}
			var n int
			switch e.Op {
			case source.OpAdd:
				n = ln.n + rn.n
			case source.OpSub:
				n = ln.n - rn.n
			case source.OpMul:
				n = ln.n * rn.n
			}
			env = &rtEnv{name: e.X, val: rtNum{n}, next: env}
			term = e.Body
		case If0:
			v, err := eval(env, e.V)
			if err != nil {
				return 0, steps, err
			}
			n, ok := v.(rtNum)
			if !ok {
				return 0, steps, fmt.Errorf("clos: if0 on non-integer")
			}
			if n.n == 0 {
				term = e.Then
			} else {
				term = e.Else
			}
		case Open:
			v, err := eval(env, e.V)
			if err != nil {
				return 0, steps, err
			}
			pk, ok := v.(rtPack)
			if !ok {
				return 0, steps, fmt.Errorf("clos: open of non-package")
			}
			env = &rtEnv{name: e.X, val: pk.val, next: env}
			term = e.Body
		case App:
			fn, err := eval(env, e.Fn)
			if err != nil {
				return 0, steps, err
			}
			arg, err := eval(env, e.Arg)
			if err != nil {
				return 0, steps, err
			}
			f, ok := fn.(rtFun)
			if !ok {
				return 0, steps, fmt.Errorf("clos: call of non-function")
			}
			def, ok := funs[f.name]
			if !ok {
				return 0, steps, fmt.Errorf("clos: unknown function %s", f.name)
			}
			env = &rtEnv{name: def.Param, val: arg, next: nil}
			term = def.Body
		default:
			return 0, steps, fmt.Errorf("clos: unknown term %T", term)
		}
	}
}

func eval(env *rtEnv, v Value) (rtValue, error) {
	switch v := v.(type) {
	case Num:
		return rtNum{v.N}, nil
	case Var:
		if rv, ok := env.lookup(v.Name); ok {
			return rv, nil
		}
		return nil, fmt.Errorf("clos: unbound variable %s", v.Name)
	case FunV:
		return rtFun{v.Name}, nil
	case PairV:
		l, err := eval(env, v.L)
		if err != nil {
			return nil, err
		}
		r, err := eval(env, v.R)
		if err != nil {
			return nil, err
		}
		return rtPair{l, r}, nil
	case Pack:
		inner, err := eval(env, v.Val)
		if err != nil {
			return nil, err
		}
		return rtPack{val: inner}, nil
	default:
		return nil, fmt.Errorf("clos: unknown value %T", v)
	}
}
