package clos

import (
	"strings"
	"testing"

	"psgc/internal/source"
	"psgc/internal/tags"
)

// A hand-written λCLOS program exercising every construct: a closed
// top-level function, a closure package, arithmetic, projection, open,
// if0, halt.
func sampleProgram() Program {
	// addfn(p : (int × int)) = halt (π1 p + π2 p)
	addfn := FunDef{
		Name: "addfn", Param: "p",
		ParamType: tags.Prod{L: tags.Int{}, R: tags.Int{}},
		Body: LetProj{X: "a", I: 1, V: Var{Name: "p"},
			Body: LetProj{X: "b", I: 2, V: Var{Name: "p"},
				Body: LetArith{X: "s", Op: source.OpAdd, L: Var{Name: "a"}, R: Var{Name: "b"},
					Body: Halt{V: Var{Name: "s"}}}}},
	}
	// main: build a closure ⟨t=int, (addfn-as-code?, 40)⟩ is not directly
	// expressible (addfn is not closure-converted), so exercise open with
	// a simple package instead, then call addfn.
	cloBody := tags.Prod{L: tags.Var{Name: "tenv"}, R: tags.Int{}}
	pk := Pack{Bound: "tenv", Witness: tags.Int{}, Val: PairV{L: Num{N: 2}, R: Num{N: 3}},
		Body: cloBody}
	main := LetVal{X: "c", V: pk,
		Body: Open{V: Var{Name: "c"}, T: "t", X: "w",
			Body: LetProj{X: "x2", I: 2, V: Var{Name: "w"},
				Body: If0{V: Var{Name: "x2"},
					Then: Halt{V: Num{N: 0}},
					Else: LetVal{X: "pa", V: PairV{L: Num{N: 40}, R: Var{Name: "x2"}},
						Body: App{Fn: FunV{Name: "addfn"}, Arg: Var{Name: "pa"}}}}}}}
	return Program{Funs: []FunDef{addfn}, Main: main}
}

func TestCheckAndRunSample(t *testing.T) {
	p := sampleProgram()
	if err := CheckProgram(p); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	n, steps, err := Run(p, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 43 {
		t.Errorf("result = %d, want 43", n)
	}
	if steps == 0 {
		t.Errorf("no steps counted")
	}
}

func TestCheckerRejections(t *testing.T) {
	intT := tags.Tag(tags.Int{})
	cases := []struct {
		name string
		p    Program
		want string
	}{
		{"unbound var", Program{Main: Halt{V: Var{Name: "x"}}}, "unbound"},
		{"halt pair", Program{Main: Halt{V: PairV{L: Num{N: 1}, R: Num{N: 2}}}}, "want Int"},
		{"proj from int", Program{Main: LetProj{X: "x", I: 1, V: Num{N: 1}, Body: Halt{V: Num{N: 0}}}}, "non-pair"},
		{"call non-function", Program{Main: App{Fn: Num{N: 1}, Arg: Num{N: 2}}}, "non-unary-code"},
		{"open non-package", Program{Main: Open{V: Num{N: 1}, T: "t", X: "x", Body: Halt{V: Num{N: 0}}}}, "non-existential"},
		{"if0 on pair", Program{Main: If0{V: PairV{L: Num{N: 1}, R: Num{N: 2}},
			Then: Halt{V: Num{N: 0}}, Else: Halt{V: Num{N: 0}}}}, "want Int"},
		{"arith on pair", Program{Main: LetArith{X: "x", Op: source.OpAdd,
			L: PairV{L: Num{N: 1}, R: Num{N: 2}}, R: Num{N: 1}, Body: Halt{V: Num{N: 0}}}}, "want Int"},
		{"unknown fun", Program{Main: App{Fn: FunV{Name: "ghost"}, Arg: Num{N: 1}}}, "unknown function"},
		{"dup fun", Program{Funs: []FunDef{
			{Name: "f", Param: "x", ParamType: intT, Body: Halt{V: Var{Name: "x"}}},
			{Name: "f", Param: "x", ParamType: intT, Body: Halt{V: Var{Name: "x"}}},
		}, Main: Halt{V: Num{N: 0}}}, "duplicate"},
		{"open body, not closed", Program{Funs: []FunDef{
			{Name: "f", Param: "x", ParamType: intT, Body: Halt{V: Var{Name: "y"}}},
		}, Main: Halt{V: Num{N: 0}}}, "unbound"},
		{"bad package payload", Program{Main: LetVal{X: "c",
			V:    Pack{Bound: "t", Witness: tags.Int{}, Val: PairV{L: Num{N: 1}, R: Num{N: 2}}, Body: tags.Var{Name: "t"}},
			Body: Halt{V: Num{N: 0}}}}, "payload"},
		{"arg mismatch", Program{Funs: []FunDef{
			{Name: "f", Param: "x", ParamType: intT, Body: Halt{V: Var{Name: "x"}}},
		}, Main: App{Fn: FunV{Name: "f"}, Arg: PairV{L: Num{N: 1}, R: Num{N: 2}}}}, "want"},
	}
	for _, c := range cases {
		err := CheckProgram(c.p)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestOpenRefinesWitness(t *testing.T) {
	// Opening ⟨t=Int, 5 : t⟩ gives x : t — abstract, so halt x must be
	// rejected even though the runtime value is an int.
	p := Program{Main: LetVal{X: "c",
		V:    Pack{Bound: "t", Witness: tags.Int{}, Val: Num{N: 5}, Body: tags.Var{Name: "t"}},
		Body: Open{V: Var{Name: "c"}, T: "u", X: "x", Body: Halt{V: Var{Name: "x"}}}}}
	if err := CheckProgram(p); err == nil {
		t.Errorf("halt on abstract-typed value accepted")
	}
}

func TestEvalFuel(t *testing.T) {
	loop := Program{
		Funs: []FunDef{{Name: "f", Param: "x", ParamType: tags.Int{},
			Body: App{Fn: FunV{Name: "f"}, Arg: Var{Name: "x"}}}},
		Main: App{Fn: FunV{Name: "f"}, Arg: Num{N: 0}},
	}
	if err := CheckProgram(loop); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(loop, 100); err != ErrFuel {
		t.Errorf("want ErrFuel, got %v", err)
	}
}

func TestFunctionBodiesAreClosed(t *testing.T) {
	// A function body referencing a main-term local must be rejected.
	p := Program{
		Funs: []FunDef{{Name: "f", Param: "x", ParamType: tags.Int{},
			Body: Halt{V: Var{Name: "mainlocal"}}}},
		Main: LetVal{X: "mainlocal", V: Num{N: 1},
			Body: App{Fn: FunV{Name: "f"}, Arg: Num{N: 0}}},
	}
	if err := CheckProgram(p); err == nil {
		t.Errorf("open function body accepted")
	}
}

func TestProgramString(t *testing.T) {
	s := sampleProgram().String()
	for _, frag := range []string{"letrec addfn", "halt", "open", "if0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestShadowingInEnv(t *testing.T) {
	// let x = 1 in let x = (2,3) in π1 x — inner binding shadows.
	p := Program{Main: LetVal{X: "x", V: Num{N: 1},
		Body: LetVal{X: "x", V: PairV{L: Num{N: 2}, R: Num{N: 3}},
			Body: LetProj{X: "y", I: 1, V: Var{Name: "x"},
				Body: Halt{V: Var{Name: "y"}}}}}}
	if err := CheckProgram(p); err != nil {
		t.Fatal(err)
	}
	n, _, err := Run(p, 100)
	if err != nil || n != 2 {
		t.Errorf("got %d, %v; want 2", n, err)
	}
}
