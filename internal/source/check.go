package source

import (
	"fmt"

	"psgc/internal/names"
)

// TypeError reports a source-level type error.
type TypeError struct {
	Expr Expr
	Msg  string
}

func (e *TypeError) Error() string {
	if e.Expr == nil {
		return "source: " + e.Msg
	}
	return fmt.Sprintf("source: in %s: %s", e.Expr, e.Msg)
}

func typeErr(e Expr, format string, args ...any) error {
	return &TypeError{Expr: e, Msg: fmt.Sprintf(format, args...)}
}

// Env maps variables (and top-level function names) to their types.
type Env map[names.Name]Type

// Extend returns a copy of the environment with x : t added.
func (env Env) Extend(x names.Name, t Type) Env {
	out := make(Env, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	out[x] = t
	return out
}

// CheckProgram typechecks a whole program and returns the type of main.
// Function bodies are checked in an environment containing only the
// top-level functions and the parameter, which enforces that top-level
// functions are closed (the λCLOS letrec discipline, §3).
func CheckProgram(p Program) (Type, error) {
	top := make(Env, len(p.Funs))
	for _, f := range p.Funs {
		if _, dup := top[f.Name]; dup {
			return nil, typeErr(nil, "duplicate top-level function %s", f.Name)
		}
		top[f.Name] = f.Type()
	}
	for _, f := range p.Funs {
		got, err := Infer(top.Extend(f.Param, f.ParamType), f.Body)
		if err != nil {
			return nil, fmt.Errorf("in function %s: %w", f.Name, err)
		}
		if !TypeEqual(got, f.Result) {
			return nil, typeErr(f.Body, "function %s declared to return %s but body has type %s",
				f.Name, f.Result, got)
		}
	}
	return Infer(top, p.Main)
}

// Infer computes the type of e under env.
func Infer(env Env, e Expr) (Type, error) {
	switch e := e.(type) {
	case Var:
		t, ok := env[e.Name]
		if !ok {
			return nil, typeErr(e, "unbound variable %s", e.Name)
		}
		return t, nil
	case IntLit:
		return IntT{}, nil
	case Lam:
		body, err := Infer(env.Extend(e.Param, e.ParamType), e.Body)
		if err != nil {
			return nil, err
		}
		return FnT{Dom: e.ParamType, Cod: body}, nil
	case App:
		fn, err := Infer(env, e.Fn)
		if err != nil {
			return nil, err
		}
		ft, ok := fn.(FnT)
		if !ok {
			return nil, typeErr(e, "applied non-function of type %s", fn)
		}
		arg, err := Infer(env, e.Arg)
		if err != nil {
			return nil, err
		}
		if !TypeEqual(ft.Dom, arg) {
			return nil, typeErr(e, "argument has type %s, want %s", arg, ft.Dom)
		}
		return ft.Cod, nil
	case Pair:
		l, err := Infer(env, e.L)
		if err != nil {
			return nil, err
		}
		r, err := Infer(env, e.R)
		if err != nil {
			return nil, err
		}
		return ProdT{L: l, R: r}, nil
	case Proj:
		t, err := Infer(env, e.E)
		if err != nil {
			return nil, err
		}
		pt, ok := t.(ProdT)
		if !ok {
			return nil, typeErr(e, "projection from non-pair type %s", t)
		}
		switch e.I {
		case 1:
			return pt.L, nil
		case 2:
			return pt.R, nil
		default:
			return nil, typeErr(e, "bad projection index %d", e.I)
		}
	case Let:
		rhs, err := Infer(env, e.Rhs)
		if err != nil {
			return nil, err
		}
		return Infer(env.Extend(e.X, rhs), e.Body)
	case If0:
		cond, err := Infer(env, e.Cond)
		if err != nil {
			return nil, err
		}
		if !TypeEqual(cond, IntT{}) {
			return nil, typeErr(e, "if0 condition has type %s, want int", cond)
		}
		thn, err := Infer(env, e.Then)
		if err != nil {
			return nil, err
		}
		els, err := Infer(env, e.Else)
		if err != nil {
			return nil, err
		}
		if !TypeEqual(thn, els) {
			return nil, typeErr(e, "if0 branches have types %s and %s", thn, els)
		}
		return thn, nil
	case Bin:
		l, err := Infer(env, e.L)
		if err != nil {
			return nil, err
		}
		r, err := Infer(env, e.R)
		if err != nil {
			return nil, err
		}
		if !TypeEqual(l, IntT{}) || !TypeEqual(r, IntT{}) {
			return nil, typeErr(e, "arithmetic on non-integers (%s, %s)", l, r)
		}
		return IntT{}, nil
	default:
		panic(fmt.Sprintf("source: unknown expr %T", e))
	}
}
