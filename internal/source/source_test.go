package source

import (
	"strings"
	"testing"
)

func mustRunInt(t *testing.T, src string) int {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := CheckProgram(p); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var ev Evaluator
	n, err := ev.RunInt(p)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return n
}

func TestParseAndEvalArith(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 3 - 2", 5}, // left assoc
		{"let x = 21 in x + x", 42},
		{"if0 0 then 1 else 2", 1},
		{"if0 5 then 1 else 2", 2},
		{"fst (1, 2) + snd (3, 4)", 5},
		{"fst (fst ((1, 2), 3))", 1},
		{"(fn (x : int) => x * x) 6", 36},
		{"let f = fn (x : int) => x + 1 in f (f 40)", 42},
	}
	for _, c := range cases {
		if got := mustRunInt(t, c.src); got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestTopLevelRecursion(t *testing.T) {
	src := `
fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)
do fact 6
`
	if got := mustRunInt(t, src); got != 720 {
		t.Errorf("fact 6 = %d, want 720", got)
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `
fun even (n : int) : int = if0 n then 1 else odd (n - 1)
fun odd (n : int) : int = if0 n then 0 else even (n - 1)
do even 10 + odd 10 * 100
`
	if got := mustRunInt(t, src); got != 1 {
		t.Errorf("got %d, want 1", got)
	}
}

func TestHigherOrder(t *testing.T) {
	src := `
fun twice (f : int -> int) : int -> int = fn (x : int) => f (f x)
do (twice (fn (y : int) => y + 3)) 10
`
	if got := mustRunInt(t, src); got != 16 {
		t.Errorf("got %d, want 16", got)
	}
}

func TestClosuresCaptureEnvironment(t *testing.T) {
	src := `
let a = 100 in
let add = fn (x : int) => fn (y : int) => x + y in
(add a) 23
`
	if got := mustRunInt(t, src); got != 123 {
		t.Errorf("got %d, want 123", got)
	}
}

func TestPairsOfFunctions(t *testing.T) {
	src := `
let p = (fn (x : int) => x + 1, fn (x : int) => x * 2) in
(fst p) ((snd p) 10)
`
	if got := mustRunInt(t, src); got != 21 {
		t.Errorf("got %d, want 21", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"let x = in 3",
		"if0 1 then 2",
		"fun f (x : int) : int",
		"(1, 2",
		"1 +",
		"fn (x) => x",
		"@",
		"1 2 3 )",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	bad := []string{
		"x",                                    // unbound
		"1 1",                                  // apply non-function
		"fst 1",                                // project non-pair
		"(fn (x : int) => x) (1, 2)",           // argument mismatch
		"if0 (1, 2) then 1 else 2",             // non-int condition
		"if0 0 then 1 else (1, 2)",             // branch mismatch
		"1 + (2, 3)",                           // arithmetic on pair
		"fun f (x : int) : int = (x, x)\ndo 0", // wrong declared result
		"fun f (x : int) : int = y\ndo 0",      // open body
		"fun f (x : int) : int = x\nfun f (x : int) : int = x\ndo 0", // dup
	}
	for _, src := range bad {
		p, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v (should parse, fail in checker)", src, err)
			continue
		}
		if _, err := CheckProgram(p); err == nil {
			t.Errorf("CheckProgram(%q) succeeded, want error", src)
		}
	}
}

func TestCheckInfersTypes(t *testing.T) {
	p := MustParse("(1, fn (x : int) => (x, x))")
	ty, err := CheckProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	want := ProdT{L: IntT{}, R: FnT{Dom: IntT{}, Cod: ProdT{L: IntT{}, R: IntT{}}}}
	if !TypeEqual(ty, want) {
		t.Errorf("inferred %s, want %s", ty, want)
	}
}

func TestLocalsShadowTopLevel(t *testing.T) {
	src := `
fun f (x : int) : int = x + 1
do let f = fn (x : int) => x * 10 in f 4
`
	if got := mustRunInt(t, src); got != 40 {
		t.Errorf("got %d, want 40 (local f must shadow top-level)", got)
	}
}

func TestEvalFuel(t *testing.T) {
	src := `
fun loop (n : int) : int = loop n
do loop 0
`
	p := MustParse(src)
	ev := Evaluator{Fuel: 1000}
	if _, err := ev.RunInt(p); err != ErrFuel {
		t.Errorf("expected ErrFuel, got %v", err)
	}
}

func TestProgramRoundTrip(t *testing.T) {
	src := `
fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)
do fact 5
`
	p := MustParse(src)
	printed := p.String()
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of %q failed: %v", printed, err)
	}
	var ev Evaluator
	n1, err := ev.RunInt(p)
	if err != nil {
		t.Fatal(err)
	}
	var ev2 Evaluator
	n2, err := ev2.RunInt(p2)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Errorf("round-trip changed result: %d vs %d", n1, n2)
	}
}

func TestComments(t *testing.T) {
	src := "-- a comment\n1 + 1 -- trailing\n"
	if got := mustRunInt(t, src); got != 2 {
		t.Errorf("got %d, want 2", got)
	}
}

func TestProgramSize(t *testing.T) {
	p := MustParse("let x = 1 in x + x")
	if got := ProgramSize(p); got != 5 {
		t.Errorf("ProgramSize = %d, want 5", got)
	}
	if !strings.Contains(p.String(), "let x = 1") {
		t.Errorf("String() = %q", p.String())
	}
}

func TestProdTypePrintingKeepsFunctionParens(t *testing.T) {
	ty := ProdT{L: FnT{Dom: IntT{}, Cod: IntT{}}, R: IntT{}}
	if got := ty.String(); got != "((int -> int) * int)" {
		t.Errorf("ProdT.String() = %q, want ((int -> int) * int)", got)
	}
	// The annotation must survive a parse: (int -> int * int) would come
	// back as the arrow type int -> (int * int) and fail to typecheck.
	src := "fun f (x : " + ty.String() + ") : int = snd x\ndo f ((fn (y : int) => y), 1)"
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := CheckProgram(p); err != nil {
		t.Fatalf("reparsed annotation fails to typecheck: %v", err)
	}
}
