package source

import (
	"fmt"
	"strconv"
	"unicode"

	"psgc/internal/names"
)

// Parse parses a complete program in the concrete syntax:
//
//	program := fun* "do" expr | expr
//	fun     := "fun" ident "(" ident ":" type ")" ":" type "=" expr
//	type    := prodty ("->" type)?                    (arrow right-assoc)
//	prodty  := atomty ("*" atomty)*                   (product left-assoc)
//	atomty  := "int" | "(" type ")"
//	expr    := "let" ident "=" expr "in" expr
//	         | "if0" expr "then" expr "else" expr
//	         | "fn" "(" ident ":" type ")" "=>" expr
//	         | arith
//	arith   := term (("+"|"-") term)*
//	term    := appexpr ("*" appexpr)*
//	appexpr := atom+                                  (application, left-assoc)
//	atom    := int | ident | "fst" atom | "snd" atom
//	         | "(" expr ")" | "(" expr "," expr ")"
//
// The "do" keyword separates the function definitions from the main
// expression (required when at least one fun is present, since application
// is by juxtaposition). Line comments start with "--".
func Parse(src string) (Program, error) {
	toks, err := lex(src)
	if err != nil {
		return Program{}, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return Program{}, err
	}
	return prog, nil
}

// MustParse is Parse for programs known to be syntactically valid.
func MustParse(src string) Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokInt
	tokPunct // ( ) , : = + - * and multi-char -> =>
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset, for error messages
	line int
}

var keywords = map[string]bool{
	"fun": true, "fn": true, "let": true, "in": true, "do": true,
	"if0": true, "then": true, "else": true,
	"fst": true, "snd": true, "int": true,
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, token{tokPunct, "->", i, line})
			i += 2
		case c == '=' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, token{tokPunct, "=>", i, line})
			i += 2
		case c == '(' || c == ')' || c == ',' || c == ':' || c == '=' ||
			c == '+' || c == '-' || c == '*':
			toks = append(toks, token{tokPunct, string(c), i, line})
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokInt, src[i:j], i, line})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i, line})
			i = j
		default:
			return nil, fmt.Errorf("source: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src), line})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	// '$' appears in compiler-generated fresh names (names.Supply), which
	// must survive a print/reparse round trip.
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\'' || r == '$'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("source: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return p.errf(t, "expected %q, found %q", text, t.text)
	}
	return nil
}

func (p *parser) ident() (names.Name, error) {
	t := p.next()
	if t.kind != tokIdent || keywords[t.text] {
		return "", p.errf(t, "expected identifier, found %q", t.text)
	}
	return names.Name(t.text), nil
}

func (p *parser) program() (Program, error) {
	var prog Program
	for p.peek().text == "fun" {
		p.next()
		f, err := p.fundef()
		if err != nil {
			return Program{}, err
		}
		prog.Funs = append(prog.Funs, f)
	}
	if len(prog.Funs) > 0 {
		if err := p.expect("do"); err != nil {
			return Program{}, err
		}
	}
	main, err := p.expr()
	if err != nil {
		return Program{}, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return Program{}, p.errf(t, "unexpected trailing input %q", t.text)
	}
	prog.Main = main
	return prog, nil
}

func (p *parser) fundef() (FunDef, error) {
	name, err := p.ident()
	if err != nil {
		return FunDef{}, err
	}
	if err := p.expect("("); err != nil {
		return FunDef{}, err
	}
	param, err := p.ident()
	if err != nil {
		return FunDef{}, err
	}
	if err := p.expect(":"); err != nil {
		return FunDef{}, err
	}
	paramTy, err := p.typ()
	if err != nil {
		return FunDef{}, err
	}
	if err := p.expect(")"); err != nil {
		return FunDef{}, err
	}
	if err := p.expect(":"); err != nil {
		return FunDef{}, err
	}
	result, err := p.typ()
	if err != nil {
		return FunDef{}, err
	}
	if err := p.expect("="); err != nil {
		return FunDef{}, err
	}
	body, err := p.expr()
	if err != nil {
		return FunDef{}, err
	}
	return FunDef{Name: name, Param: param, ParamType: paramTy, Result: result, Body: body}, nil
}

func (p *parser) typ() (Type, error) {
	l, err := p.prodType()
	if err != nil {
		return nil, err
	}
	if p.peek().text == "->" {
		p.next()
		r, err := p.typ()
		if err != nil {
			return nil, err
		}
		return FnT{Dom: l, Cod: r}, nil
	}
	return l, nil
}

func (p *parser) prodType() (Type, error) {
	l, err := p.atomType()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "*" {
		p.next()
		r, err := p.atomType()
		if err != nil {
			return nil, err
		}
		l = ProdT{L: l, R: r}
	}
	return l, nil
}

func (p *parser) atomType() (Type, error) {
	t := p.next()
	switch t.text {
	case "int":
		return IntT{}, nil
	case "(":
		ty, err := p.typ()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return ty, nil
	default:
		return nil, p.errf(t, "expected a type, found %q", t.text)
	}
}

func (p *parser) expr() (Expr, error) {
	switch p.peek().text {
	case "let":
		p.next()
		x, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("in"); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		return Let{X: x, Rhs: rhs, Body: body}, nil
	case "if0":
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("then"); err != nil {
			return nil, err
		}
		thn, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("else"); err != nil {
			return nil, err
		}
		els, err := p.expr()
		if err != nil {
			return nil, err
		}
		return If0{Cond: cond, Then: thn, Else: els}, nil
	case "fn":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		x, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		ty, err := p.typ()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect("=>"); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		return Lam{Param: x, ParamType: ty, Body: body}, nil
	default:
		return p.arith()
	}
}

func (p *parser) arith() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().text {
		case "+":
			p.next()
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			l = Bin{Op: OpAdd, L: l, R: r}
		case "-":
			p.next()
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			l = Bin{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) term() (Expr, error) {
	l, err := p.appExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "*" {
		p.next()
		r, err := p.appExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: OpMul, L: l, R: r}
	}
	return l, nil
}

func (p *parser) appExpr() (Expr, error) {
	fn, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.startsAtom() {
		arg, err := p.atom()
		if err != nil {
			return nil, err
		}
		fn = App{Fn: fn, Arg: arg}
	}
	return fn, nil
}

func (p *parser) startsAtom() bool {
	t := p.peek()
	switch t.kind {
	case tokInt:
		return true
	case tokIdent:
		return !keywords[t.text] || t.text == "fst" || t.text == "snd"
	case tokPunct:
		return t.text == "("
	default:
		return false
	}
}

func (p *parser) atom() (Expr, error) {
	t := p.next()
	switch {
	case t.kind == tokInt:
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errf(t, "bad integer literal %q", t.text)
		}
		return IntLit{N: n}, nil
	case t.text == "fst" || t.text == "snd":
		e, err := p.atom()
		if err != nil {
			return nil, err
		}
		i := 1
		if t.text == "snd" {
			i = 2
		}
		return Proj{I: i, E: e}, nil
	case t.kind == tokIdent && !keywords[t.text]:
		return Var{Name: names.Name(t.text)}, nil
	case t.text == "(":
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.peek().text == "," {
			p.next()
			r, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return Pair{L: e, R: r}, nil
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf(t, "expected an expression, found %q", t.text)
	}
}
