// Package source implements the front-end language of the pipeline: the
// simply-typed λ-calculus the paper compiles and garbage-collects (§3).
//
// A program is a set of mutually recursive top-level functions plus a main
// expression, matching the λCLOS program shape the paper's translation
// expects. Beyond the paper's grammar we add integer arithmetic and if0 as
// a documented workload extension (DESIGN.md): without a conditional,
// recursive programs could never terminate and no benchmark could allocate
// interesting heaps. The extension is carried through every calculus.
package source

import (
	"fmt"
	"strings"

	"psgc/internal/names"
)

// Type is a source type: int, τ1 × τ2, or τ1 → τ2.
type Type interface {
	isType()
	String() string
}

// IntT is the type of integers.
type IntT struct{}

// ProdT is the pair type τ1 × τ2.
type ProdT struct {
	L, R Type
}

// FnT is the (direct-style) function type τ1 → τ2.
type FnT struct {
	Dom, Cod Type
}

func (IntT) isType()  {}
func (ProdT) isType() {}
func (FnT) isType()   {}

func (IntT) String() string { return "int" }

func (t ProdT) String() string {
	// A function component must keep its own parentheses: ((int -> int) * int)
	// reparses as written, while (int -> int * int) reparses as the arrow
	// type int -> (int * int) because * binds tighter than ->.
	l, r := t.L.String(), t.R.String()
	if _, ok := t.L.(FnT); ok {
		l = "(" + l + ")"
	}
	if _, ok := t.R.(FnT); ok {
		r = "(" + r + ")"
	}
	return fmt.Sprintf("(%s * %s)", l, r)
}

func (t FnT) String() string {
	dom := t.Dom.String()
	if _, ok := t.Dom.(FnT); ok {
		dom = "(" + dom + ")"
	}
	return fmt.Sprintf("%s -> %s", dom, t.Cod)
}

// TypeEqual reports structural equality of source types.
func TypeEqual(a, b Type) bool {
	switch a := a.(type) {
	case IntT:
		_, ok := b.(IntT)
		return ok
	case ProdT:
		bp, ok := b.(ProdT)
		return ok && TypeEqual(a.L, bp.L) && TypeEqual(a.R, bp.R)
	case FnT:
		bf, ok := b.(FnT)
		return ok && TypeEqual(a.Dom, bf.Dom) && TypeEqual(a.Cod, bf.Cod)
	default:
		panic(fmt.Sprintf("source: unknown type %T", a))
	}
}

// BinOp is an integer arithmetic operator.
type BinOp int

// The arithmetic operators of the workload extension.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
)

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	default:
		return fmt.Sprintf("BinOp(%d)", int(op))
	}
}

// Expr is a source expression.
type Expr interface {
	isExpr()
	String() string
}

// Var references a local variable or a top-level function.
type Var struct {
	Name names.Name
}

// IntLit is an integer literal.
type IntLit struct {
	N int
}

// Lam is an anonymous function fn (x : τ) => e.
type Lam struct {
	Param     names.Name
	ParamType Type
	Body      Expr
}

// App applies a function to an argument.
type App struct {
	Fn, Arg Expr
}

// Pair builds (e1, e2).
type Pair struct {
	L, R Expr
}

// Proj projects a pair component; I is 1 or 2.
type Proj struct {
	I int
	E Expr
}

// Let binds x = rhs in body.
type Let struct {
	X    names.Name
	Rhs  Expr
	Body Expr
}

// If0 branches on whether the condition is zero.
type If0 struct {
	Cond, Then, Else Expr
}

// Bin is integer arithmetic.
type Bin struct {
	Op   BinOp
	L, R Expr
}

func (Var) isExpr()    {}
func (IntLit) isExpr() {}
func (Lam) isExpr()    {}
func (App) isExpr()    {}
func (Pair) isExpr()   {}
func (Proj) isExpr()   {}
func (Let) isExpr()    {}
func (If0) isExpr()    {}
func (Bin) isExpr()    {}

func (e Var) String() string    { return e.Name.String() }
func (e IntLit) String() string { return fmt.Sprintf("%d", e.N) }

func (e Lam) String() string {
	// Parenthesized so that String output reparses in any position.
	return fmt.Sprintf("(fn (%s : %s) => %s)", e.Param, e.ParamType, e.Body)
}

func (e App) String() string { return fmt.Sprintf("(%s %s)", e.Fn, e.Arg) }

func (e Pair) String() string { return fmt.Sprintf("(%s, %s)", e.L, e.R) }

func (e Proj) String() string {
	op := "fst"
	if e.I == 2 {
		op = "snd"
	}
	return fmt.Sprintf("(%s %s)", op, e.E)
}

func (e Let) String() string {
	return fmt.Sprintf("(let %s = %s in %s)", e.X, e.Rhs, e.Body)
}

func (e If0) String() string {
	return fmt.Sprintf("(if0 %s then %s else %s)", e.Cond, e.Then, e.Else)
}

func (e Bin) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// FunDef is a top-level function definition. Bodies may refer only to the
// parameter, local bindings, and other top-level functions, so top-level
// functions are closed and translate directly to λCLOS letrec code.
type FunDef struct {
	Name      names.Name
	Param     names.Name
	ParamType Type
	Result    Type
	Body      Expr
}

// Type returns the function's source type.
func (f FunDef) Type() FnT { return FnT{Dom: f.ParamType, Cod: f.Result} }

// Program is a complete source program: mutually recursive top-level
// functions followed by the main expression, whose value (an int) is the
// observable result of the whole mutator/collector system.
type Program struct {
	Funs []FunDef
	Main Expr
}

// String renders the program in concrete syntax accepted by Parse.
func (p Program) String() string {
	var b strings.Builder
	for _, f := range p.Funs {
		fmt.Fprintf(&b, "fun %s (%s : %s) : %s = %s\n", f.Name, f.Param, f.ParamType, f.Result, f.Body)
	}
	if len(p.Funs) > 0 {
		b.WriteString("do ")
	}
	b.WriteString(p.Main.String())
	return b.String()
}

// Size returns the number of expression nodes in e.
func Size(e Expr) int {
	switch e := e.(type) {
	case Var, IntLit:
		return 1
	case Lam:
		return 1 + Size(e.Body)
	case App:
		return 1 + Size(e.Fn) + Size(e.Arg)
	case Pair:
		return 1 + Size(e.L) + Size(e.R)
	case Proj:
		return 1 + Size(e.E)
	case Let:
		return 1 + Size(e.Rhs) + Size(e.Body)
	case If0:
		return 1 + Size(e.Cond) + Size(e.Then) + Size(e.Else)
	case Bin:
		return 1 + Size(e.L) + Size(e.R)
	default:
		panic(fmt.Sprintf("source: unknown expr %T", e))
	}
}

// ProgramSize returns the total number of expression nodes in p.
func ProgramSize(p Program) int {
	n := Size(p.Main)
	for _, f := range p.Funs {
		n += 1 + Size(f.Body)
	}
	return n
}
