package source

import (
	"errors"
	"fmt"

	"psgc/internal/names"
)

// Value is a source-level runtime value produced by the reference
// evaluator.
type Value interface {
	isValue()
	String() string
}

// IntV is an integer value.
type IntV struct {
	N int
}

// PairV is a pair value.
type PairV struct {
	L, R Value
}

// ClosV is a function closure.
type ClosV struct {
	Env   *evalEnv
	Param names.Name
	Body  Expr
}

func (IntV) isValue()  {}
func (PairV) isValue() {}
func (ClosV) isValue() {}

func (v IntV) String() string  { return fmt.Sprintf("%d", v.N) }
func (v PairV) String() string { return fmt.Sprintf("(%s, %s)", v.L, v.R) }
func (ClosV) String() string   { return "<closure>" }

// evalEnv is a persistent environment (linked list so extension is O(1)).
type evalEnv struct {
	name names.Name
	val  Value
	next *evalEnv
}

func (e *evalEnv) lookup(n names.Name) (Value, bool) {
	for ; e != nil; e = e.next {
		if e.name == n {
			return e.val, true
		}
	}
	return nil, false
}

func (e *evalEnv) extend(n names.Name, v Value) *evalEnv {
	return &evalEnv{name: n, val: v, next: e}
}

// ErrFuel is returned when evaluation exceeds its step budget.
var ErrFuel = errors.New("source: evaluation out of fuel")

// Evaluator runs source programs directly. It is the reference semantics
// against which the compiled λGC machine is differentially tested: a
// type-safe collector must never change the observable result (§2.1).
type Evaluator struct {
	// Fuel bounds the number of expression evaluations; 0 means
	// DefaultFuel.
	Fuel int

	prog  Program
	steps int
}

// DefaultFuel is the default evaluation step budget.
const DefaultFuel = 10_000_000

// Run evaluates the program's main expression.
func (ev *Evaluator) Run(p Program) (Value, error) {
	ev.prog = p
	ev.steps = ev.Fuel
	if ev.steps == 0 {
		ev.steps = DefaultFuel
	}
	return ev.eval(nil, p.Main)
}

// RunInt evaluates the program and requires an integer result.
func (ev *Evaluator) RunInt(p Program) (int, error) {
	v, err := ev.Run(p)
	if err != nil {
		return 0, err
	}
	iv, ok := v.(IntV)
	if !ok {
		return 0, fmt.Errorf("source: program result %s is not an int", v)
	}
	return iv.N, nil
}

func (ev *Evaluator) eval(env *evalEnv, e Expr) (Value, error) {
	ev.steps--
	if ev.steps < 0 {
		return nil, ErrFuel
	}
	switch e := e.(type) {
	case Var:
		if v, ok := env.lookup(e.Name); ok {
			return v, nil
		}
		for _, f := range ev.prog.Funs {
			if f.Name == e.Name {
				// Top-level functions close over nothing.
				return ClosV{Env: nil, Param: f.Param, Body: f.Body}, nil
			}
		}
		return nil, fmt.Errorf("source: unbound variable %s at runtime", e.Name)
	case IntLit:
		return IntV{N: e.N}, nil
	case Lam:
		return ClosV{Env: env, Param: e.Param, Body: e.Body}, nil
	case App:
		fn, err := ev.eval(env, e.Fn)
		if err != nil {
			return nil, err
		}
		arg, err := ev.eval(env, e.Arg)
		if err != nil {
			return nil, err
		}
		cl, ok := fn.(ClosV)
		if !ok {
			return nil, fmt.Errorf("source: applied non-function %s", fn)
		}
		return ev.eval(cl.Env.extend(cl.Param, arg), cl.Body)
	case Pair:
		l, err := ev.eval(env, e.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.eval(env, e.R)
		if err != nil {
			return nil, err
		}
		return PairV{L: l, R: r}, nil
	case Proj:
		v, err := ev.eval(env, e.E)
		if err != nil {
			return nil, err
		}
		pv, ok := v.(PairV)
		if !ok {
			return nil, fmt.Errorf("source: projection from non-pair %s", v)
		}
		if e.I == 1 {
			return pv.L, nil
		}
		return pv.R, nil
	case Let:
		rhs, err := ev.eval(env, e.Rhs)
		if err != nil {
			return nil, err
		}
		return ev.eval(env.extend(e.X, rhs), e.Body)
	case If0:
		c, err := ev.eval(env, e.Cond)
		if err != nil {
			return nil, err
		}
		ci, ok := c.(IntV)
		if !ok {
			return nil, fmt.Errorf("source: if0 on non-integer %s", c)
		}
		if ci.N == 0 {
			return ev.eval(env, e.Then)
		}
		return ev.eval(env, e.Else)
	case Bin:
		l, err := ev.eval(env, e.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.eval(env, e.R)
		if err != nil {
			return nil, err
		}
		li, lok := l.(IntV)
		ri, rok := r.(IntV)
		if !lok || !rok {
			return nil, fmt.Errorf("source: arithmetic on non-integers %s, %s", l, r)
		}
		switch e.Op {
		case OpAdd:
			return IntV{N: li.N + ri.N}, nil
		case OpSub:
			return IntV{N: li.N - ri.N}, nil
		case OpMul:
			return IntV{N: li.N * ri.N}, nil
		default:
			return nil, fmt.Errorf("source: unknown operator %s", e.Op)
		}
	default:
		panic(fmt.Sprintf("source: unknown expr %T", e))
	}
}
