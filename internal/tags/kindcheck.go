package tags

import (
	"fmt"

	"psgc/internal/kinds"
	"psgc/internal/names"
)

// KindEnv is the tag-variable environment Θ mapping tag variables to kinds.
type KindEnv map[names.Name]kinds.Kind

// Extend returns a copy of Θ with t : κ added.
func (e KindEnv) Extend(t names.Name, k kinds.Kind) KindEnv {
	out := make(KindEnv, len(e)+1)
	for n, kk := range e {
		out[n] = kk
	}
	out[t] = k
	return out
}

// KindError reports a kinding failure for a tag.
type KindError struct {
	Tag Tag
	Msg string
}

func (e *KindError) Error() string {
	return fmt.Sprintf("tags: ill-kinded tag %s: %s", e.Tag, e.Msg)
}

func kindErr(t Tag, format string, args ...any) error {
	return &KindError{Tag: t, Msg: fmt.Sprintf(format, args...)}
}

// Check implements the kinding judgment Θ ⊢ τ : κ (paper Fig. 6, tag
// column), returning the kind of t.
func Check(env KindEnv, t Tag) (kinds.Kind, error) {
	switch t := t.(type) {
	case Var:
		k, ok := env[t.Name]
		if !ok {
			return nil, kindErr(t, "unbound tag variable %s", t.Name)
		}
		return k, nil
	case Int:
		return kinds.Omega{}, nil
	case Prod:
		if err := checkOmega(env, t.L); err != nil {
			return nil, err
		}
		if err := checkOmega(env, t.R); err != nil {
			return nil, err
		}
		return kinds.Omega{}, nil
	case Code:
		for _, a := range t.Args {
			if err := checkOmega(env, a); err != nil {
				return nil, err
			}
		}
		return kinds.Omega{}, nil
	case Exist:
		// The paper's rule binds t at kind Ω (existentials hide complete
		// tags; analysis of quantified types recovers the Ω→Ω function).
		if err := checkOmega(env.Extend(t.Bound, kinds.Omega{}), t.Body); err != nil {
			return nil, err
		}
		return kinds.Omega{}, nil
	case Lam:
		if err := checkOmega(env.Extend(t.Param, kinds.Omega{}), t.Body); err != nil {
			return nil, err
		}
		return kinds.OmegaToOmega, nil
	case App:
		fk, err := Check(env, t.Fn)
		if err != nil {
			return nil, err
		}
		arrow, ok := fk.(kinds.Arrow)
		if !ok {
			return nil, kindErr(t, "application head has kind %s, want an arrow", fk)
		}
		ak, err := Check(env, t.Arg)
		if err != nil {
			return nil, err
		}
		if !arrow.From.Equal(ak) {
			return nil, kindErr(t, "argument kind %s does not match domain %s", ak, arrow.From)
		}
		return arrow.To, nil
	default:
		panic(fmt.Sprintf("tags: unknown tag %T", t))
	}
}

func checkOmega(env KindEnv, t Tag) error {
	k, err := Check(env, t)
	if err != nil {
		return err
	}
	if !k.Equal(kinds.Omega{}) {
		return kindErr(t, "has kind %s, want Ω", k)
	}
	return nil
}

// WellKinded reports whether t has kind Ω under Θ.
func WellKinded(env KindEnv, t Tag) bool {
	return checkOmega(env, t) == nil
}
