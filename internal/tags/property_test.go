package tags

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"psgc/internal/kinds"
	"psgc/internal/names"
)

// genTag is a quick.Generator wrapper producing random well-kinded tags
// of kind Ω under the environment {t:Ω, s:Ω, te:Ω→Ω}.
type genTag struct {
	Tag Tag
}

var propEnv = KindEnv{"t": kinds.Omega{}, "s": kinds.Omega{}, "te": kinds.OmegaToOmega}

func (genTag) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(genTag{Tag: randomTag(r, 5)})
}

// randomTag produces a well-kinded (under propEnv) tag of kind Ω, with
// β-redexes sprinkled in so normalization has work to do.
func randomTag(r *rand.Rand, depth int) Tag {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return Int{}
		case 1:
			return Var{Name: "t"}
		default:
			return Var{Name: "s"}
		}
	}
	switch r.Intn(7) {
	case 0:
		return Int{}
	case 1:
		return Prod{L: randomTag(r, depth-1), R: randomTag(r, depth-1)}
	case 2:
		return Code{Args: []Tag{randomTag(r, depth-1)}}
	case 3:
		return Exist{Bound: "u", Body: randomTagOpen(r, depth-1, "u")}
	case 4:
		// A β-redex: (λu.body) arg.
		return App{
			Fn:  Lam{Param: "u", Body: randomTagOpen(r, depth-1, "u")},
			Arg: randomTag(r, depth-1),
		}
	case 5:
		// Application of the abstract tag function te.
		return App{Fn: Var{Name: "te"}, Arg: randomTag(r, depth-1)}
	default:
		return Var{Name: "t"}
	}
}

// randomTagOpen is randomTag with one extra Ω variable in scope.
func randomTagOpen(r *rand.Rand, depth int, extra names.Name) Tag {
	if depth <= 0 || r.Intn(3) == 0 {
		return Var{Name: extra}
	}
	return randomTag(r, depth)
}

// Property (Prop. 6.1): every random reduction sequence of a well-kinded
// tag terminates, and the result is the β-normal form.
func TestStrongNormalizationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		tag := randomTag(r, 5)
		if !WellKinded(propEnv, tag) {
			t.Fatalf("generator produced ill-kinded tag %s", tag)
		}
		cur := tag
		for steps := 0; ; steps++ {
			if steps > 10000 {
				t.Fatalf("reduction of %s did not terminate", tag)
			}
			next, ok := Step(cur)
			if !ok {
				break
			}
			cur = next
		}
		nf, err := Normalize(tag)
		if err != nil {
			t.Fatalf("Normalize(%s): %v", tag, err)
		}
		if !Equal(cur, nf) {
			t.Fatalf("stepwise normal form %s differs from Normalize's %s", cur, nf)
		}
	}
}

// randomStep performs one β-step at a randomly chosen redex (by walking
// with random branch order), returning the tag unchanged when normal.
func randomStep(r *rand.Rand, t Tag) (Tag, bool) {
	switch t := t.(type) {
	case Var, Int:
		return t, false
	case Prod:
		first := r.Intn(2) == 0
		if first {
			if l, ok := randomStep(r, t.L); ok {
				return Prod{L: l, R: t.R}, true
			}
			if rr, ok := randomStep(r, t.R); ok {
				return Prod{L: t.L, R: rr}, true
			}
		} else {
			if rr, ok := randomStep(r, t.R); ok {
				return Prod{L: t.L, R: rr}, true
			}
			if l, ok := randomStep(r, t.L); ok {
				return Prod{L: l, R: t.R}, true
			}
		}
		return t, false
	case Code:
		for _, i := range r.Perm(len(t.Args)) {
			if a, ok := randomStep(r, t.Args[i]); ok {
				args := append([]Tag(nil), t.Args...)
				args[i] = a
				return Code{Args: args}, true
			}
		}
		return t, false
	case Exist:
		if b, ok := randomStep(r, t.Body); ok {
			return Exist{Bound: t.Bound, Body: b}, true
		}
		return t, false
	case Lam:
		if b, ok := randomStep(r, t.Body); ok {
			return Lam{Param: t.Param, Body: b}, true
		}
		return t, false
	case App:
		// Sometimes reduce inside first, sometimes fire the redex.
		if lam, isRedex := t.Fn.(Lam); isRedex && r.Intn(2) == 0 {
			return Subst(lam.Body, lam.Param, t.Arg), true
		}
		if f, ok := randomStep(r, t.Fn); ok {
			return App{Fn: f, Arg: t.Arg}, true
		}
		if a, ok := randomStep(r, t.Arg); ok {
			return App{Fn: t.Fn, Arg: a}, true
		}
		if lam, isRedex := t.Fn.(Lam); isRedex {
			return Subst(lam.Body, lam.Param, t.Arg), true
		}
		return t, false
	default:
		panic("unknown tag")
	}
}

// Property (Prop. 6.2): two independent random reduction strategies reach
// α-equal normal forms (confluence on well-kinded tags).
func TestConfluenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	reduceRandomly := func(tag Tag) Tag {
		cur := tag
		for steps := 0; steps < 10000; steps++ {
			next, ok := randomStep(r, cur)
			if !ok {
				return cur
			}
			cur = next
		}
		t.Fatalf("random reduction of %s did not terminate", tag)
		return nil
	}
	for i := 0; i < 300; i++ {
		tag := randomTag(r, 5)
		a := reduceRandomly(tag)
		b := reduceRandomly(tag)
		if !Equal(a, b) {
			t.Fatalf("confluence violated for %s:\n  %s\nvs\n  %s", tag, a, b)
		}
	}
}

// Property: normalization commutes with substitution of normal closed
// tags — NF(t[s/x]) = NF(NF(t)[s/x]) (the substitution lemma's working
// core, used by the typecase refinement rules).
func TestNormalizeSubstCommute(t *testing.T) {
	f := func(g1, g2 genTag) bool {
		tag, repl := g1.Tag, g2.Tag
		replNF, err := Normalize(repl)
		if err != nil {
			return false
		}
		left, err1 := Normalize(Subst(tag, "t", replNF))
		nfTag, err2 := Normalize(tag)
		if err1 != nil || err2 != nil {
			return false
		}
		right, err := Normalize(Subst(nfTag, "t", replNF))
		if err != nil {
			return false
		}
		return Equal(left, right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: substitution for a variable not free in the tag is the
// identity (up to α-equivalence).
func TestSubstNonFreeIdentity(t *testing.T) {
	f := func(g genTag) bool {
		tag := g.Tag
		out := Subst(tag, "zz", Int{})
		return Equal(tag, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: SubstAllClosed agrees with SubstAll on closed replacements.
func TestClosedSubstAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		tag := randomTag(r, 5)
		// Closed replacements only.
		sub := map[names.Name]Tag{
			"t": Prod{L: Int{}, R: Int{}},
			"s": Int{},
		}
		a := SubstAll(tag, sub)
		b := SubstAllClosed(tag, sub)
		if !Equal(a, b) {
			t.Fatalf("closed substitution diverges on %s:\n  %s\nvs\n  %s", tag, a, b)
		}
	}
}

// Property: kinding is preserved by β-steps (subject reduction at the
// tag level).
func TestStepPreservesKind(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 300; i++ {
		tag := randomTag(r, 5)
		k1, err := Check(propEnv, tag)
		if err != nil {
			t.Fatalf("ill-kinded generator output: %v", err)
		}
		cur := tag
		for {
			next, ok := Step(cur)
			if !ok {
				break
			}
			cur = next
			k2, err := Check(propEnv, cur)
			if err != nil {
				t.Fatalf("kind lost after step: %s: %v", cur, err)
			}
			if !k1.Equal(k2) {
				t.Fatalf("kind changed from %s to %s", k1, k2)
			}
		}
	}
}
