package tags

import (
	"testing"

	"psgc/internal/kinds"
	"psgc/internal/names"
)

func tv(n string) Tag { return Var{Name: names.Name(n)} }

func TestFreeVars(t *testing.T) {
	// λt. (t × s) has free variable s only.
	tag := Lam{Param: "t", Body: Prod{L: tv("t"), R: tv("s")}}
	fv := FreeVars(tag)
	if fv.Has("t") {
		t.Errorf("bound variable t reported free")
	}
	if !fv.Has("s") {
		t.Errorf("free variable s not reported")
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	// ∃t.(t × t') where the outer use of t is free.
	tag := Prod{L: tv("t"), R: Exist{Bound: "t", Body: tv("t")}}
	fv := FreeVars(tag)
	if !fv.Has("t") {
		t.Errorf("outer t should be free")
	}
	if len(fv) != 1 {
		t.Errorf("free vars = %v, want {t}", fv)
	}
}

func TestSubstBasic(t *testing.T) {
	got := Subst(Prod{L: tv("t"), R: Int{}}, "t", Int{})
	want := Prod{L: Int{}, R: Int{}}
	if !Equal(got, want) {
		t.Errorf("Subst = %s, want %s", got, want)
	}
}

func TestSubstShadowed(t *testing.T) {
	// (λt.t)[Int/t] must not substitute under the binder.
	got := Subst(Lam{Param: "t", Body: tv("t")}, "t", Int{})
	if !Equal(got, Lam{Param: "t", Body: tv("t")}) {
		t.Errorf("substitution crossed a shadowing binder: %s", got)
	}
}

func TestSubstCaptureAvoiding(t *testing.T) {
	// (λs. t)[s/t] must not capture: result must be λs'. s (α-equiv).
	got := Subst(Lam{Param: "s", Body: tv("t")}, "t", tv("s"))
	want := Lam{Param: "z", Body: tv("s")}
	if !Equal(got, want) {
		t.Errorf("capture-avoidance failed: got %s", got)
	}
}

func TestAlphaEqual(t *testing.T) {
	a := Exist{Bound: "t", Body: Prod{L: tv("t"), R: Int{}}}
	b := Exist{Bound: "u", Body: Prod{L: tv("u"), R: Int{}}}
	if !Equal(a, b) {
		t.Errorf("%s and %s should be α-equal", a, b)
	}
	c := Exist{Bound: "u", Body: Prod{L: Int{}, R: tv("u")}}
	if Equal(a, c) {
		t.Errorf("%s and %s should differ", a, c)
	}
}

func TestAlphaEqualFreeVsBound(t *testing.T) {
	// λt.t vs λt.s: not equal.
	if Equal(Lam{Param: "t", Body: tv("t")}, Lam{Param: "t", Body: tv("s")}) {
		t.Errorf("bound and free bodies compared equal")
	}
	// Free variables must match by name.
	if Equal(tv("a"), tv("b")) {
		t.Errorf("distinct free variables compared equal")
	}
}

func TestNormalizeBeta(t *testing.T) {
	// (λt. t×t) Int  ⇒  Int×Int
	app := App{Fn: Lam{Param: "t", Body: Prod{L: tv("t"), R: tv("t")}}, Arg: Int{}}
	nf, err := Normalize(app)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(nf, Prod{L: Int{}, R: Int{}}) {
		t.Errorf("normal form = %s", nf)
	}
}

func TestNormalizeUnderBinder(t *testing.T) {
	// λs. (λt.t) s  ⇒  λs.s
	inner := App{Fn: Lam{Param: "t", Body: tv("t")}, Arg: tv("s")}
	nf, err := Normalize(Lam{Param: "s", Body: inner})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(nf, Lam{Param: "s", Body: tv("s")}) {
		t.Errorf("normal form = %s", nf)
	}
}

func TestNormalizeDivergent(t *testing.T) {
	// ω ω where ω = λt. t t — ill-kinded, must exhaust fuel, not hang.
	omega := Lam{Param: "t", Body: App{Fn: tv("t"), Arg: tv("t")}}
	_, err := Normalize(App{Fn: omega, Arg: omega})
	if err == nil {
		t.Fatalf("expected fuel exhaustion for Ω-combinator")
	}
}

func TestEqualNF(t *testing.T) {
	a := App{Fn: Lam{Param: "t", Body: tv("t")}, Arg: Int{}}
	ok, err := EqualNF(a, Int{})
	if err != nil || !ok {
		t.Errorf("EqualNF((λt.t)Int, Int) = %v, %v", ok, err)
	}
}

func TestStepLeftmostOutermost(t *testing.T) {
	id := Lam{Param: "t", Body: tv("t")}
	// (id Int) × (id Int): first step reduces the left redex.
	tag := Prod{L: App{Fn: id, Arg: Int{}}, R: App{Fn: id, Arg: Int{}}}
	s1, ok := Step(tag)
	if !ok {
		t.Fatalf("no step found")
	}
	want := Prod{L: Int{}, R: App{Fn: id, Arg: Int{}}}
	if !Equal(s1, want) {
		t.Errorf("first step = %s, want %s", s1, want)
	}
	s2, ok := Step(s1)
	if !ok {
		t.Fatalf("no second step")
	}
	if !Equal(s2, Prod{L: Int{}, R: Int{}}) {
		t.Errorf("second step = %s", s2)
	}
	if _, ok := Step(s2); ok {
		t.Errorf("normal form still steps")
	}
}

func TestKindCheck(t *testing.T) {
	env := KindEnv{"t": kinds.Omega{}, "te": kinds.OmegaToOmega}
	cases := []struct {
		tag  Tag
		want kinds.Kind
	}{
		{Int{}, kinds.Omega{}},
		{tv("t"), kinds.Omega{}},
		{tv("te"), kinds.OmegaToOmega},
		{Prod{L: Int{}, R: tv("t")}, kinds.Omega{}},
		{Code{Args: []Tag{Int{}, tv("t")}}, kinds.Omega{}},
		{Exist{Bound: "u", Body: tv("u")}, kinds.Omega{}},
		{Lam{Param: "u", Body: Prod{L: tv("u"), R: tv("u")}}, kinds.OmegaToOmega},
		{App{Fn: tv("te"), Arg: Int{}}, kinds.Omega{}},
	}
	for _, c := range cases {
		got, err := Check(env, c.tag)
		if err != nil {
			t.Errorf("Check(%s): %v", c.tag, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Check(%s) = %s, want %s", c.tag, got, c.want)
		}
	}
}

func TestKindCheckErrors(t *testing.T) {
	env := KindEnv{"te": kinds.OmegaToOmega}
	bad := []Tag{
		tv("unbound"),
		Prod{L: tv("te"), R: Int{}},                             // Ω→Ω where Ω wanted
		App{Fn: Int{}, Arg: Int{}},                              // non-arrow head
		App{Fn: tv("te"), Arg: tv("te")},                        // argument kind mismatch
		Exist{Bound: "u", Body: Lam{Param: "v", Body: tv("v")}}, // body not Ω
	}
	for _, b := range bad {
		if _, err := Check(env, b); err == nil {
			t.Errorf("Check(%s) succeeded, want error", b)
		}
	}
}

func TestWellKinded(t *testing.T) {
	if !WellKinded(nil, Int{}) {
		t.Errorf("Int should be well-kinded")
	}
	if WellKinded(nil, tv("t")) {
		t.Errorf("unbound variable should not be well-kinded")
	}
}

func TestSize(t *testing.T) {
	tag := Prod{L: Int{}, R: Exist{Bound: "t", Body: tv("t")}}
	if got := Size(tag); got != 4 {
		t.Errorf("Size = %d, want 4", got)
	}
}
