// Package tags implements the tag language of λGC (paper §4.2).
//
// Tags are the runtime type descriptors that the garbage collector analyzes
// with typecase. They mirror the type language of the source-level λCLOS —
// crucially *without* region annotations (§2.2.2) — extended with tag-level
// functions and applications needed to analyze existentials:
//
//	τ ::= t | Int | τ1 × τ2 | ~τ → 0 | ∃t.τ | λt.τ | τ1 τ2
//
// The tag level is a simply-typed λ-calculus classified by the kind
// calculus of package kinds, so reduction of well-kinded tags is strongly
// normalizing and confluent (paper Props. 6.1, 6.2); package tags exposes
// normalization, capture-avoiding substitution, α-equivalence, and kinding.
package tags

import (
	"fmt"
	"strings"

	"psgc/internal/names"
)

// Tag is a runtime type descriptor.
type Tag interface {
	isTag()
	String() string
}

// Var is a tag variable t.
type Var struct {
	Name names.Name
}

// Int is the tag of machine integers.
type Int struct{}

// Prod is the pair tag τ1 × τ2.
type Prod struct {
	L, R Tag
}

// Code is the tag ~τ → 0 of a CPS function that takes the given argument
// tags and never returns.
type Code struct {
	Args []Tag
}

// Exist is the existential tag ∃t.τ used for closures.
type Exist struct {
	Bound names.Name
	Body  Tag
}

// Lam is a tag-level function λt.τ (kind Ω→Ω).
type Lam struct {
	Param names.Name
	Body  Tag
}

// App is a tag-level application τ1 τ2.
type App struct {
	Fn, Arg Tag
}

func (Var) isTag()   {}
func (Int) isTag()   {}
func (Prod) isTag()  {}
func (Code) isTag()  {}
func (Exist) isTag() {}
func (Lam) isTag()   {}
func (App) isTag()   {}

func (t Var) String() string { return t.Name.String() }
func (Int) String() string   { return "Int" }

func (t Prod) String() string {
	return fmt.Sprintf("(%s × %s)", t.L, t.R)
}

func (t Code) String() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, ", ") + ")→0"
}

func (t Exist) String() string {
	return fmt.Sprintf("∃%s.%s", t.Bound, t.Body)
}

func (t Lam) String() string {
	return fmt.Sprintf("λ%s.%s", t.Param, t.Body)
}

func (t App) String() string {
	return fmt.Sprintf("(%s %s)", t.Fn, t.Arg)
}

// FreeVars returns the set of free tag variables of t.
func FreeVars(t Tag) names.Set {
	s := make(names.Set)
	freeVars(t, make(names.Set), s)
	return s
}

func freeVars(t Tag, bound, out names.Set) {
	switch t := t.(type) {
	case Var:
		if !bound.Has(t.Name) {
			out.Add(t.Name)
		}
	case Int:
	case Prod:
		freeVars(t.L, bound, out)
		freeVars(t.R, bound, out)
	case Code:
		for _, a := range t.Args {
			freeVars(a, bound, out)
		}
	case Exist:
		under(t.Bound, bound, func() { freeVars(t.Body, bound, out) })
	case Lam:
		under(t.Param, bound, func() { freeVars(t.Body, bound, out) })
	case App:
		freeVars(t.Fn, bound, out)
		freeVars(t.Arg, bound, out)
	default:
		panic(fmt.Sprintf("tags: unknown tag %T", t))
	}
}

// under runs f with n temporarily added to bound.
func under(n names.Name, bound names.Set, f func()) {
	had := bound.Has(n)
	bound.Add(n)
	f()
	if !had {
		bound.Remove(n)
	}
}

// Subst returns t with repl substituted for free occurrences of x,
// renaming binders as needed to avoid capture. Renaming is deterministic:
// a captured binder b becomes b', b”, … until fresh.
func Subst(t Tag, x names.Name, repl Tag) Tag {
	return SubstAll(t, map[names.Name]Tag{x: repl})
}

// SubstAll substitutes several tag variables simultaneously.
func SubstAll(t Tag, sub map[names.Name]Tag) Tag {
	if len(sub) == 0 {
		return t
	}
	// The union of the replacements' free variables is computed once: it
	// is the only set a binder must avoid, and recomputing it per binder
	// would make large-tag substitution quadratic.
	avoid := make(names.Set)
	for _, v := range sub {
		for n := range FreeVars(v) {
			avoid.Add(n)
		}
	}
	return subst(t, sub, avoid)
}

// SubstAllClosed substitutes closed tags simultaneously: no capture is
// possible, so binders only shadow and are never renamed. The abstract
// machine uses this for its (always closed) runtime tags; passing an open
// replacement would be a bug in the caller.
func SubstAllClosed(t Tag, sub map[names.Name]Tag) Tag {
	if len(sub) == 0 {
		return t
	}
	return subst(t, sub, nil)
}

func subst(t Tag, sub map[names.Name]Tag, avoid names.Set) Tag {
	switch t := t.(type) {
	case Var:
		if r, ok := sub[t.Name]; ok {
			return r
		}
		return t
	case Int:
		return t
	case Prod:
		return Prod{L: subst(t.L, sub, avoid), R: subst(t.R, sub, avoid)}
	case Code:
		args := make([]Tag, len(t.Args))
		for i, a := range t.Args {
			args[i] = subst(a, sub, avoid)
		}
		return Code{Args: args}
	case Exist:
		b, body := substUnder(t.Bound, t.Body, sub, avoid)
		return Exist{Bound: b, Body: body}
	case Lam:
		b, body := substUnder(t.Param, t.Body, sub, avoid)
		return Lam{Param: b, Body: body}
	case App:
		return App{Fn: subst(t.Fn, sub, avoid), Arg: subst(t.Arg, sub, avoid)}
	default:
		panic(fmt.Sprintf("tags: unknown tag %T", t))
	}
}

// substUnder performs substitution under a binder, dropping the binder's
// own name from the substitution and α-renaming it if any replacement tag
// mentions it free. The avoid set over-approximates conservatively (it is
// not narrowed when entries drop out), so a rename may occur slightly more
// often than strictly necessary — always sound, never capturing.
func substUnder(bound names.Name, body Tag, sub map[names.Name]Tag, avoid names.Set) (names.Name, Tag) {
	inner := sub
	if _, shadows := sub[bound]; shadows {
		inner = make(map[names.Name]Tag, len(sub))
		for k, v := range sub {
			if k != bound {
				inner[k] = v
			}
		}
	}
	if len(inner) == 0 {
		return bound, body
	}
	if avoid != nil && avoid.Has(bound) {
		bodyFree := FreeVars(body)
		fresh := bound
		for avoid.Has(fresh) || bodyFree.Has(fresh) {
			fresh += "'"
		}
		body = SubstAll(body, map[names.Name]Tag{bound: Var{Name: fresh}})
		bound = fresh
	}
	return bound, subst(body, inner, avoid)
}

// Equal reports α-equivalence of two tags (no reduction is performed;
// see EqualNF for equality up to β-reduction).
func Equal(a, b Tag) bool {
	return alphaEqual(a, b, nil, nil)
}

func alphaEqual(a, b Tag, envA, envB map[names.Name]int) bool {
	switch a := a.(type) {
	case Var:
		bv, ok := b.(Var)
		if !ok {
			return false
		}
		ia, boundA := envA[a.Name]
		ib, boundB := envB[bv.Name]
		if boundA != boundB {
			return false
		}
		if boundA {
			return ia == ib
		}
		return a.Name == bv.Name
	case Int:
		_, ok := b.(Int)
		return ok
	case Prod:
		bp, ok := b.(Prod)
		return ok && alphaEqual(a.L, bp.L, envA, envB) && alphaEqual(a.R, bp.R, envA, envB)
	case Code:
		bc, ok := b.(Code)
		if !ok || len(a.Args) != len(bc.Args) {
			return false
		}
		for i := range a.Args {
			if !alphaEqual(a.Args[i], bc.Args[i], envA, envB) {
				return false
			}
		}
		return true
	case Exist:
		be, ok := b.(Exist)
		return ok && alphaEqualUnder(a.Bound, a.Body, be.Bound, be.Body, envA, envB)
	case Lam:
		bl, ok := b.(Lam)
		return ok && alphaEqualUnder(a.Param, a.Body, bl.Param, bl.Body, envA, envB)
	case App:
		ba, ok := b.(App)
		return ok && alphaEqual(a.Fn, ba.Fn, envA, envB) && alphaEqual(a.Arg, ba.Arg, envA, envB)
	default:
		panic(fmt.Sprintf("tags: unknown tag %T", a))
	}
}

func alphaEqualUnder(na names.Name, ba Tag, nb names.Name, bb Tag, envA, envB map[names.Name]int) bool {
	depth := len(envA)
	envA2 := extend(envA, na, depth)
	envB2 := extend(envB, nb, depth)
	return alphaEqual(ba, bb, envA2, envB2)
}

func extend(env map[names.Name]int, n names.Name, depth int) map[names.Name]int {
	out := make(map[names.Name]int, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	out[n] = depth
	return out
}

// DefaultFuel bounds the number of β-steps Normalize will take before
// reporting divergence. Well-kinded tags always normalize long before this.
const DefaultFuel = 100000

// ErrNoFuel is returned when normalization exceeds its fuel, which for
// well-kinded tags is impossible (Prop. 6.1) and indicates an ill-kinded
// input.
var ErrNoFuel = fmt.Errorf("tags: normalization out of fuel (ill-kinded tag?)")

// Normalize fully β-normalizes t (including under binders), spending at
// most DefaultFuel reduction steps. Already-normal tags are returned
// as-is without rebuilding (the collector analyzes large normal tags at
// every typecase, so this fast path is load-bearing).
func Normalize(t Tag) (Tag, error) {
	if isNormal(t) {
		return t, nil
	}
	fuel := DefaultFuel
	nf, err := normalize(t, &fuel)
	if err != nil {
		return nil, err
	}
	return nf, nil
}

// isNormal reports whether t contains no β-redex.
func isNormal(t Tag) bool {
	switch t := t.(type) {
	case Var, Int:
		return true
	case Prod:
		return isNormal(t.L) && isNormal(t.R)
	case Code:
		for _, a := range t.Args {
			if !isNormal(a) {
				return false
			}
		}
		return true
	case Exist:
		return isNormal(t.Body)
	case Lam:
		return isNormal(t.Body)
	case App:
		if _, ok := t.Fn.(Lam); ok {
			return false
		}
		return isNormal(t.Fn) && isNormal(t.Arg)
	default:
		panic(fmt.Sprintf("tags: unknown tag %T", t))
	}
}

// MustNormalize is Normalize for tags known to be well-kinded.
func MustNormalize(t Tag) Tag {
	nf, err := Normalize(t)
	if err != nil {
		panic(err)
	}
	return nf
}

func normalize(t Tag, fuel *int) (Tag, error) {
	if *fuel <= 0 {
		return nil, ErrNoFuel
	}
	*fuel--
	switch t := t.(type) {
	case Var, Int:
		return t, nil
	case Prod:
		l, err := normalize(t.L, fuel)
		if err != nil {
			return nil, err
		}
		r, err := normalize(t.R, fuel)
		if err != nil {
			return nil, err
		}
		return Prod{L: l, R: r}, nil
	case Code:
		args := make([]Tag, len(t.Args))
		for i, a := range t.Args {
			na, err := normalize(a, fuel)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return Code{Args: args}, nil
	case Exist:
		body, err := normalize(t.Body, fuel)
		if err != nil {
			return nil, err
		}
		return Exist{Bound: t.Bound, Body: body}, nil
	case Lam:
		body, err := normalize(t.Body, fuel)
		if err != nil {
			return nil, err
		}
		return Lam{Param: t.Param, Body: body}, nil
	case App:
		fn, err := normalize(t.Fn, fuel)
		if err != nil {
			return nil, err
		}
		arg, err := normalize(t.Arg, fuel)
		if err != nil {
			return nil, err
		}
		if lam, ok := fn.(Lam); ok {
			return normalize(Subst(lam.Body, lam.Param, arg), fuel)
		}
		return App{Fn: fn, Arg: arg}, nil
	default:
		panic(fmt.Sprintf("tags: unknown tag %T", t))
	}
}

// Step performs a single leftmost-outermost β-step, reporting whether a
// redex was found. It is used by the confluence and strong-normalization
// property tests.
func Step(t Tag) (Tag, bool) {
	switch t := t.(type) {
	case Var, Int:
		return t, false
	case Prod:
		if l, ok := Step(t.L); ok {
			return Prod{L: l, R: t.R}, true
		}
		if r, ok := Step(t.R); ok {
			return Prod{L: t.L, R: r}, true
		}
		return t, false
	case Code:
		for i, a := range t.Args {
			if na, ok := Step(a); ok {
				args := append([]Tag(nil), t.Args...)
				args[i] = na
				return Code{Args: args}, true
			}
		}
		return t, false
	case Exist:
		if b, ok := Step(t.Body); ok {
			return Exist{Bound: t.Bound, Body: b}, true
		}
		return t, false
	case Lam:
		if b, ok := Step(t.Body); ok {
			return Lam{Param: t.Param, Body: b}, true
		}
		return t, false
	case App:
		if lam, ok := t.Fn.(Lam); ok {
			return Subst(lam.Body, lam.Param, t.Arg), true
		}
		if fn, ok := Step(t.Fn); ok {
			return App{Fn: fn, Arg: t.Arg}, true
		}
		if arg, ok := Step(t.Arg); ok {
			return App{Fn: t.Fn, Arg: arg}, true
		}
		return t, false
	default:
		panic(fmt.Sprintf("tags: unknown tag %T", t))
	}
}

// EqualNF reports equality of tags up to β-reduction and α-equivalence.
// It returns an error only if a tag fails to normalize (ill-kinded input).
func EqualNF(a, b Tag) (bool, error) {
	na, err := Normalize(a)
	if err != nil {
		return false, err
	}
	nb, err := Normalize(b)
	if err != nil {
		return false, err
	}
	return Equal(na, nb), nil
}

// Size returns the number of AST nodes in t.
func Size(t Tag) int {
	switch t := t.(type) {
	case Var, Int:
		return 1
	case Prod:
		return 1 + Size(t.L) + Size(t.R)
	case Code:
		n := 1
		for _, a := range t.Args {
			n += Size(a)
		}
		return n
	case Exist:
		return 1 + Size(t.Body)
	case Lam:
		return 1 + Size(t.Body)
	case App:
		return 1 + Size(t.Fn) + Size(t.Arg)
	default:
		panic(fmt.Sprintf("tags: unknown tag %T", t))
	}
}
