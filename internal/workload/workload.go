// Package workload builds the λGC heap shapes and driver programs used by
// the benchmark harness and the testing.B benchmarks: lists, balanced
// trees, and braided DAGs of configurable size, plus single-collection
// driver programs ("build the heap, collect once, halt") for each
// collector. Everything is assembled as λGC terms and typechecked, so the
// benchmarks measure the actual certified collectors.
package workload

import (
	"fmt"

	"psgc/internal/collector"
	"psgc/internal/gclang"
	"psgc/internal/names"
	"psgc/internal/regions"
	"psgc/internal/tags"
)

// Shape selects a heap shape.
type Shape int

// The heap shapes.
const (
	// List is a right-nested chain: (1, (1, (… , 1))).
	List Shape = iota
	// Tree is a complete binary tree of pairs.
	Tree
	// DAG is the braided DAG of §7: node k's both components are node k-1.
	DAG
)

func (s Shape) String() string {
	switch s {
	case List:
		return "list"
	case Tree:
		return "tree"
	case DAG:
		return "dag"
	default:
		return "?"
	}
}

// builder accumulates heap-allocating bindings for the main term.
type builder struct {
	prefix  []func(gclang.Term) gclang.Term
	idx     int
	dialect gclang.Dialect
	region  names.Name
	old     names.Name // gen only
}

func (b *builder) alloc(v gclang.Value, genBody gclang.Type) gclang.Value {
	x := names.Name(fmt.Sprintf("n%d", b.idx))
	b.idx++
	if b.dialect == gclang.Forw {
		v = gclang.InlV{Val: v}
	}
	if b.dialect == gclang.Gen {
		pk := names.Name(fmt.Sprintf("np%d", b.idx))
		b.idx++
		b.prefix = append(b.prefix, func(e gclang.Term) gclang.Term {
			return gclang.LetT{X: x, Op: gclang.PutOp{R: gclang.RVar{Name: b.region}, V: v},
				Body: gclang.LetT{X: pk, Op: gclang.ValOp{V: gclang.PackRegion{
					Bound: "rp",
					Delta: []gclang.Region{gclang.RVar{Name: b.region}, gclang.RVar{Name: b.old}},
					R:     gclang.RVar{Name: b.region},
					Val:   gclang.Var{Name: x},
					Body:  genBody,
				}}, Body: e}}
		})
		return gclang.Var{Name: pk}
	}
	b.prefix = append(b.prefix, func(e gclang.Term) gclang.Term {
		return gclang.LetT{X: x, Op: gclang.PutOp{R: gclang.RVar{Name: b.region}, V: v}, Body: e}
	})
	return gclang.Var{Name: x}
}

// genPairBody is the region-existential body for a pair of the given
// component tags in the gen dialect.
func (b *builder) genPairBody(t1, t2 tags.Tag) gclang.Type {
	if b.dialect != gclang.Gen {
		return nil
	}
	rp := gclang.Region(gclang.RVar{Name: "rp"})
	ro := gclang.Region(gclang.RVar{Name: b.old})
	return gclang.ProdT{
		L: gclang.MT{Rs: []gclang.Region{rp, ro}, Tag: t1},
		R: gclang.MT{Rs: []gclang.Region{rp, ro}, Tag: t2},
	}
}

// build allocates the shape and returns the root value, its tag, and the
// number of boxed nodes.
func (b *builder) build(shape Shape, size int) (gclang.Value, tags.Tag, int) {
	switch shape {
	case List:
		node := b.alloc(gclang.PairV{L: gclang.Num{N: 1}, R: gclang.Num{N: 2}},
			b.genPairBody(tags.Int{}, tags.Int{}))
		tag := tags.Tag(tags.Prod{L: tags.Int{}, R: tags.Int{}})
		for i := 1; i < size; i++ {
			node = b.alloc(gclang.PairV{L: gclang.Num{N: i}, R: node},
				b.genPairBody(tags.Int{}, tag))
			tag = tags.Prod{L: tags.Int{}, R: tag}
		}
		return node, tag, size
	case Tree:
		var mk func(depth int) (gclang.Value, tags.Tag, int)
		mk = func(depth int) (gclang.Value, tags.Tag, int) {
			if depth == 0 {
				v := b.alloc(gclang.PairV{L: gclang.Num{N: 1}, R: gclang.Num{N: 2}},
					b.genPairBody(tags.Int{}, tags.Int{}))
				return v, tags.Prod{L: tags.Int{}, R: tags.Int{}}, 1
			}
			l, lt, nl := mk(depth - 1)
			r, rt, nr := mk(depth - 1)
			v := b.alloc(gclang.PairV{L: l, R: r}, b.genPairBody(lt, rt))
			return v, tags.Prod{L: lt, R: rt}, nl + nr + 1
		}
		return mk(size)
	case DAG:
		node := b.alloc(gclang.PairV{L: gclang.Num{N: 1}, R: gclang.Num{N: 2}},
			b.genPairBody(tags.Int{}, tags.Int{}))
		tag := tags.Tag(tags.Prod{L: tags.Int{}, R: tags.Int{}})
		for i := 0; i < size; i++ {
			node = b.alloc(gclang.PairV{L: node, R: node}, b.genPairBody(tag, tag))
			tag = tags.Prod{L: tag, R: tag}
		}
		return node, tag, size + 1
	default:
		panic("workload: unknown shape")
	}
}

// CollectOnce is a ready-to-run single-collection driver.
type CollectOnce struct {
	Dialect gclang.Dialect
	Prog    gclang.Program
	// Nodes is the number of boxed heap nodes the workload allocated.
	Nodes int
	// ContRegionIndex is the position (in creation order, after cd and
	// the mutator regions) of the collector's continuation region; -1 if
	// not applicable. Used by the continuation-bound experiment.
	MutatorRegions int
}

// AllocHeavySrc is the E1 allocation-heavy surface program shared by the
// benchmark harness, the service tests, and the chaos suite: each
// recursive call allocates a nested pair, so the live set grows with n
// and a small fixed-capacity heap forces a collection at every entry.
func AllocHeavySrc(n int) string {
	return fmt.Sprintf(`
fun build (n : int) : int =
  if0 n then 0
  else let p = (n, (n, n)) in fst p + build (n - 1)
do build %d
`, n)
}

// SharedDAGSrc is a textual sharing workload for driving the §7 claim
// over the HTTP surface: the live set is a four-pointer fan-in to one
// shared pair tower, rebuilt every iteration. A collector that loses
// sharing (basic) copies the tower once per path, so its survivor set —
// and hence allocation and max-live — is strictly larger than the
// forwarding collector's, which copies it once. n is the churn count;
// the result is always 4.
func SharedDAGSrc(n int) string {
	const tower = "int * (int * (int * (int * int)))"
	return fmt.Sprintf(`
fun churn (state : (%[1]s) * ((%[1]s) * ((%[1]s) * ((%[1]s) * int)))) : int =
  let a = fst state in
  let r1 = snd state in
  let b = fst r1 in
  let r2 = snd r1 in
  let c = fst r2 in
  let r3 = snd r2 in
  let d = fst r3 in
  let k = snd r3 in
  if0 k then fst a + fst b + fst c + fst d
  else churn (a, (a, (a, (a, k - 1))))
do let p = (1, (2, (3, (4, 5)))) in churn (p, (p, (p, (p, %[2]d))))
`, tower, n)
}

// BuildCollectOnce assembles a driver program: allocate the shape in the
// mutator region(s), invoke the collector once on the root, and halt in
// the finish continuation.
func BuildCollectOnce(d gclang.Dialect, shape Shape, size int) (CollectOnce, error) {
	l := &collector.Layout{}
	var entry gclang.AddrV
	mutRegions := 1
	switch d {
	case gclang.Base:
		b := collector.BuildBasic(l)
		entry = l.Addr(b.GC)
	case gclang.Forw:
		f := collector.BuildForw(l)
		entry = l.Addr(f.GC)
	case gclang.Gen:
		g := collector.BuildGen(l)
		entry = l.Addr(g.Minor)
		mutRegions = 2
	}

	b := &builder{dialect: d, region: "r0", old: "rold"}
	root, tag, nodes := b.build(shape, size)

	// finish: receive the copied root, halt 0.
	var finishTy gclang.Type
	var rparams []names.Name
	var callRegions []gclang.Region
	if d == gclang.Gen {
		rparams = []names.Name{"ry", "ro"}
		finishTy = gclang.MT{Rs: []gclang.Region{gclang.RVar{Name: "ry"}, gclang.RVar{Name: "ro"}}, Tag: tag}
		callRegions = []gclang.Region{gclang.RVar{Name: "r0"}, gclang.RVar{Name: "rold"}}
	} else {
		rparams = []names.Name{"r"}
		finishTy = gclang.MT{Rs: []gclang.Region{gclang.RVar{Name: "r"}}, Tag: tag}
		callRegions = []gclang.Region{gclang.RVar{Name: "r0"}}
	}
	l.Add("finish", gclang.LamV{
		RParams: rparams,
		Params:  []gclang.Param{{Name: "x", Ty: finishTy}},
		Body:    gclang.HaltT{V: gclang.Num{N: 0}},
	})

	body := gclang.Term(gclang.AppT{
		Fn: entry, Tags: []tags.Tag{tag}, Rs: callRegions,
		Args: []gclang.Value{l.Addr("finish"), root},
	})
	for i := len(b.prefix) - 1; i >= 0; i-- {
		body = b.prefix[i](body)
	}
	var main gclang.Term
	if d == gclang.Gen {
		main = gclang.LetRegionT{R: "r0", Body: gclang.LetRegionT{R: "rold", Body: body}}
	} else {
		main = gclang.LetRegionT{R: "r0", Body: body}
	}

	prog := gclang.Program{Code: l.Funs, Main: main}
	checker := &gclang.Checker{Dialect: d}
	elab, _, err := checker.CheckProgram(prog)
	if err != nil {
		return CollectOnce{}, fmt.Errorf("workload: driver does not typecheck: %w", err)
	}
	return CollectOnce{Dialect: d, Prog: elab, Nodes: nodes, MutatorRegions: mutRegions}, nil
}

// RunStats reports a driver run.
type RunStats struct {
	Steps      int
	Copied     int // live cells after the collection (to-space population)
	MaxCont    int // peak size of the collector's continuation region
	MemStats   regions.Stats
	LiveAfter  int
	AllRegions int
}

// Run executes the driver on the substitution machine, sampling the
// continuation region's size at every step (the §6.1 temporary-region
// bound).
func (c CollectOnce) Run(fuel int) (RunStats, error) {
	return c.run(fuel, false)
}

// RunEnv is Run on the environment machine.
func (c CollectOnce) RunEnv(fuel int) (RunStats, error) {
	return c.run(fuel, true)
}

func (c CollectOnce) run(fuel int, env bool) (RunStats, error) {
	// Regions in creation order: cd, mutator region(s), then the
	// collector's (to-space and) continuation region — the last one.
	maxCont := 0
	sample := func(mem regions.Store[gclang.Cell]) {
		rs := mem.Regions()
		if len(rs) >= 1+c.MutatorRegions+1 {
			cont := rs[len(rs)-1]
			if s := mem.Size(cont); s > maxCont {
				maxCont = s
			}
		}
	}
	var (
		mem   regions.Store[gclang.Cell]
		steps int
		err   error
	)
	// Region sizes only grow on put steps, so sampling on StepPut events
	// observes the same maximum the old per-step sampler did.
	if env {
		m := gclang.NewEnvMachine(c.Dialect, c.Prog, 0)
		m.Event = func(ev gclang.StepEvent) {
			if ev.Kind == gclang.StepPut {
				sample(m.Mem)
			}
		}
		_, err = m.Run(fuel)
		mem, steps = m.Mem, m.Steps
	} else {
		m := gclang.NewMachine(c.Dialect, c.Prog, 0)
		m.Event = func(ev gclang.StepEvent) {
			if ev.Kind == gclang.StepPut {
				sample(m.Mem)
			}
		}
		_, err = m.Run(fuel)
		mem, steps = m.Mem, m.Steps
	}
	if err != nil {
		return RunStats{}, err
	}
	live := mem.LiveCells()
	return RunStats{
		Steps:      steps,
		Copied:     live,
		MaxCont:    maxCont,
		MemStats:   mem.Stats(),
		LiveAfter:  live,
		AllRegions: len(mem.Regions()),
	}, nil
}
