package workload

import (
	"testing"

	"psgc"
	"psgc/internal/gclang"
)

func runOnce(t *testing.T, d gclang.Dialect, shape Shape, size int) RunStats {
	t.Helper()
	c, err := BuildCollectOnce(d, shape, size)
	if err != nil {
		t.Fatalf("%v/%v/%d: %v", d, shape, size, err)
	}
	st, err := c.Run(100_000_000)
	if err != nil {
		t.Fatalf("%v/%v/%d: %v", d, shape, size, err)
	}
	return st
}

func TestListCopiesLinear(t *testing.T) {
	for _, d := range []gclang.Dialect{gclang.Base, gclang.Forw, gclang.Gen} {
		for _, n := range []int{1, 8, 32} {
			st := runOnce(t, d, List, n)
			if st.Copied != n {
				t.Errorf("%v list %d: copied %d, want %d", d, n, st.Copied, n)
			}
		}
	}
}

func TestTreeCopiesComplete(t *testing.T) {
	for _, d := range []gclang.Dialect{gclang.Base, gclang.Forw, gclang.Gen} {
		st := runOnce(t, d, Tree, 4) // depth 4: 2^5-1 = 31 nodes
		if st.Copied != 31 {
			t.Errorf("%v tree: copied %d, want 31", d, st.Copied)
		}
	}
}

func TestDAGSharing(t *testing.T) {
	// depth 6: 7 nodes, 2^7-1 = 127 paths.
	basic := runOnce(t, gclang.Base, DAG, 6)
	forw := runOnce(t, gclang.Forw, DAG, 6)
	if basic.Copied != 127 {
		t.Errorf("basic DAG: copied %d, want 127 (one per path)", basic.Copied)
	}
	if forw.Copied != 7 {
		t.Errorf("forw DAG: copied %d, want 7 (one per node)", forw.Copied)
	}
	gen := runOnce(t, gclang.Gen, DAG, 6)
	if gen.Copied != 127 {
		t.Errorf("gen DAG: copied %d, want 127 (no forwarding in gen)", gen.Copied)
	}
}

func TestContinuationRegionBound(t *testing.T) {
	// §6.1: the temporary continuation region is bounded by the size of
	// the to-space. Fig. 12's copy allocates two continuations per pair
	// (one in the × arm, one in copypair1) plus the initial gcend
	// closure, so the precise bound here is 2·copied + 1.
	for _, n := range []int{4, 16, 64} {
		st := runOnce(t, gclang.Base, List, n)
		if st.MaxCont == 0 {
			t.Fatalf("list %d: no continuation growth observed", n)
		}
		if st.MaxCont > 2*st.Copied+1 {
			t.Errorf("list %d: %d continuations for %d copies — bound violated",
				n, st.MaxCont, st.Copied)
		}
	}
}

func TestSharedDAGSrcPreservesSharing(t *testing.T) {
	// The textual sharing workload drives the §7 claim end to end: under a
	// capacity where both collectors perform the same single collection,
	// the basic collector copies the shared tower once per path (four
	// times), the forwarding collector once — so basic allocates strictly
	// more and holds a strictly larger survivor set.
	for _, cfg := range []struct{ churn, capacity int }{{200, 2048}, {400, 4096}} {
		src := SharedDAGSrc(cfg.churn)
		want, err := psgc.Interpret(src)
		if err != nil {
			t.Fatal(err)
		}
		if want != 4 {
			t.Fatalf("interpret = %d, want 4", want)
		}
		var res [2]psgc.Result
		for i, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding} {
			c, err := psgc.Compile(src, col)
			if err != nil {
				t.Fatalf("%v: %v", col, err)
			}
			r, err := c.Run(psgc.RunOptions{Capacity: cfg.capacity})
			if err != nil {
				t.Fatalf("%v: %v", col, err)
			}
			if r.Value != want {
				t.Errorf("%v: value %d, want %d", col, r.Value, want)
			}
			if r.Collections != 1 {
				t.Fatalf("%v churn=%d capacity=%d: %d collections, want exactly 1",
					col, cfg.churn, cfg.capacity, r.Collections)
			}
			res[i] = r
		}
		basic, forw := res[0], res[1]
		if basic.Stats.Puts <= forw.Stats.Puts {
			t.Errorf("churn=%d: basic allocated %d cells <= forwarding's %d; sharing not exercised",
				cfg.churn, basic.Stats.Puts, forw.Stats.Puts)
		}
		if basic.Stats.MaxLiveCells <= forw.Stats.MaxLiveCells {
			t.Errorf("churn=%d: basic max-live %d <= forwarding's %d",
				cfg.churn, basic.Stats.MaxLiveCells, forw.Stats.MaxLiveCells)
		}
	}
}
