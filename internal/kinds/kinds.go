// Package kinds implements the kind calculus of λGC (paper §4.2):
//
//	κ ::= Ω | κ1 → κ2
//
// Kinds classify tags. The paper only needs Ω and Ω→Ω (tag functions used
// to analyze existentials), but the arrow form is naturally n-ary so we
// implement the general grammar.
package kinds

// Kind classifies tags. The two forms are Omega and Arrow.
type Kind interface {
	isKind()
	// Equal reports structural equality of kinds.
	Equal(Kind) bool
	String() string
}

// Omega is the kind Ω of complete tags.
type Omega struct{}

// Arrow is the kind κ1 → κ2 of tag-level functions.
type Arrow struct {
	From, To Kind
}

func (Omega) isKind() {}
func (Arrow) isKind() {}

// Equal reports whether k is also Ω.
func (Omega) Equal(k Kind) bool {
	_, ok := k.(Omega)
	return ok
}

// Equal reports whether k is an arrow with equal domain and codomain.
func (a Arrow) Equal(k Kind) bool {
	b, ok := k.(Arrow)
	return ok && a.From.Equal(b.From) && a.To.Equal(b.To)
}

func (Omega) String() string { return "Ω" }

func (a Arrow) String() string {
	from := a.From.String()
	if _, nested := a.From.(Arrow); nested {
		from = "(" + from + ")"
	}
	return from + "→" + a.To.String()
}

// OmegaToOmega is the kind Ω→Ω of the tag functions introduced by
// typecase's existential branch.
var OmegaToOmega = Arrow{From: Omega{}, To: Omega{}}
