package kinds

import "testing"

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Kind
		want bool
	}{
		{Omega{}, Omega{}, true},
		{Omega{}, OmegaToOmega, false},
		{OmegaToOmega, OmegaToOmega, true},
		{Arrow{Omega{}, Omega{}}, OmegaToOmega, true},
		{Arrow{OmegaToOmega, Omega{}}, Arrow{Omega{}, Omega{}}, false},
		{Arrow{Omega{}, OmegaToOmega}, Arrow{Omega{}, Omega{}}, false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("(%s).Equal(%s) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("(%s).Equal(%s) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	if s := OmegaToOmega.String(); s != "Ω→Ω" {
		t.Errorf("OmegaToOmega.String() = %q", s)
	}
	nested := Arrow{From: OmegaToOmega, To: Omega{}}
	if s := nested.String(); s != "(Ω→Ω)→Ω" {
		t.Errorf("nested arrow String() = %q", s)
	}
}
