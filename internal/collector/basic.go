package collector

import (
	"psgc/internal/gclang"
	"psgc/internal/names"
	"psgc/internal/tags"
)

// Basic holds the cd layout of the basic stop-and-copy collector
// (Fig. 12): gc, gcend, copy, copypair1, copypair2, copyexist1.
type Basic struct {
	Layout *Layout
	GC     names.Name // entry point block name
	Copy   names.Name
}

// basicProto is the continuation protocol of the basic collector: three
// regions (from, to, continuations), results typed M_r2(τ).
func basicProto() proto {
	return proto{
		rnames: []names.Name{"r1", "r2", "r3"},
		result: func(tag tags.Tag) gclang.Type {
			return gclang.MT{Rs: []gclang.Region{rv("r2")}, Tag: tag}
		},
	}
}

// mOf builds M_ρ(τ) for the base/forw dialects.
func mOf(r gclang.Region, tag tags.Tag) gclang.Type {
	return gclang.MT{Rs: []gclang.Region{r}, Tag: tag}
}

// BuildBasic adds the basic collector's six code blocks to the layout and
// returns their names. The entry point is
//
//	gc : ∀[t:Ω][r1](M_r1((t)→0), M_r1(t)) → 0
//
// exactly the shape the λCLOS translation's ifgc sites call (Fig. 3).
func BuildBasic(l *Layout) Basic {
	p := basicProto()
	t := tv("t")

	gcName := names.Name("gc")
	gcendName := names.Name("gcend")
	copyName := names.Name("copy")
	pair1Name := names.Name("copypair1")
	pair2Name := names.Name("copypair2")
	exist1Name := names.Name("copyexist1")

	// Reserve offsets in Fig. 12's order; bodies refer to each other via
	// these addresses, so we add placeholder entries first and patch the
	// real bodies in below.
	for _, n := range []names.Name{gcName, gcendName, copyName, pair1Name, pair2Name, exist1Name} {
		l.Add(n, gclang.LamV{})
	}
	gcend := l.Addr(gcendName)
	copyA := l.Addr(copyName)
	pair1 := l.Addr(pair1Name)
	pair2 := l.Addr(pair2Name)
	exist1 := l.Addr(exist1Name)

	fTy := func(arg tags.Tag, r gclang.Region) gclang.Type { return mOf(r, codeTag(arg)) }

	// gc[t:Ω][r1](f : M_r1((t)→0), x : M_r1(t)) =
	//   let region r2 in let region r3 in
	//   let k = put[r3] ⟨…gcend closure, env = f…⟩ in
	//   copy[t][r1,r2,r3](x, k)
	l.Funs[l.Offset(gcName)].Fun = gclang.LamV{
		TParams: []gclang.TParam{{Name: "t", Kind: omega}},
		RParams: []names.Name{"r1"},
		Params: []gclang.Param{
			{Name: "f", Ty: fTy(t, rv("r1"))},
			{Name: "x", Ty: mOf(rv("r1"), t)},
		},
		Body: gclang.LetRegionT{R: "r2", Body: gclang.LetRegionT{R: "r3",
			Body: let("k", put(rv("r3"),
				p.mkCont(t, gcend, t, tags.Int{}, idTag, fTy(t, rv("r1")), vr("f"))),
				gclang.AppT{Fn: copyA, Tags: []tags.Tag{t}, Rs: p.regions(),
					Args: []gV{vr("x"), vr("k")}})}},
	}

	// gcend[t1,t2,te][r1,r2,r3](y : M_r2(t1), f : M_r1((t1)→0)) =
	//   only {r2} in f[][r2](y)
	l.Funs[l.Offset(gcendName)].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "y", Ty: mOf(rv("r2"), tv("t1"))},
			{Name: "f", Ty: fTy(tv("t1"), rv("r1"))},
		},
		Body: gclang.OnlyT{Delta: []gR{rv("r2")},
			Body: gclang.AppT{Fn: vr("f"), Rs: []gR{rv("r2")}, Args: []gV{vr("y")}}},
	}

	// copy[t:Ω][r1,r2,r3](x : M_r1(t), k : tk[t]) = typecase t of …
	prodT := tags.Prod{L: tv("t1"), R: tv("t2")}
	existT := tags.Exist{Bound: "u", Body: tags.App{Fn: tv("te"), Arg: tv("u")}}
	l.Funs[l.Offset(copyName)].Fun = gclang.LamV{
		TParams: []gclang.TParam{{Name: "t", Kind: omega}},
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "x", Ty: mOf(rv("r1"), t)},
			{Name: "k", Ty: p.tkTy(t)},
		},
		Body: gclang.TypecaseT{
			Tag:    t,
			IntArm: p.retk(vr("k"), vr("x")),
			TL:     "tλ",
			LamArm: p.retk(vr("k"), vr("x")),
			T1:     "t1", T2: "t2",
			// t1×t2 ⇒ start copying the first component; the second and k
			// travel in copypair1's environment.
			ProdArm: let("y", get(vr("x")),
				let("x1", proj(1, vr("y")),
					let("x2", proj(2, vr("y")),
						let("k1", put(rv("r3"), p.mkCont(tv("t1"), pair1, tv("t1"), tv("t2"), idTag,
							gclang.ProdT{L: mOf(rv("r1"), tv("t2")), R: p.tkTy(prodT)},
							gclang.PairV{L: vr("x2"), R: vr("k")})),
							gclang.AppT{Fn: copyA, Tags: []tags.Tag{tv("t1")}, Rs: p.regions(),
								Args: []gV{vr("x1"), vr("k1")}})))),
			Te: "te",
			// ∃te ⇒ open the package and copy the payload; k travels as
			// copyexist1's environment.
			ExistArm: let("y", get(vr("x")),
				gclang.OpenTagT{V: vr("y"), T: "tx", X: "z",
					Body: let("k1", put(rv("r3"), p.mkCont(
						tags.App{Fn: tv("te"), Arg: tv("tx")}, exist1, tv("tx"), tags.Int{}, tv("te"),
						p.tkTy(existT), vr("k"))),
						gclang.AppT{Fn: copyA,
							Tags: []tags.Tag{tags.App{Fn: tv("te"), Arg: tv("tx")}},
							Rs:   p.regions(), Args: []gV{vr("z"), vr("k1")}})}),
		},
	}

	// copypair1[t1,t2,te][r1,r2,r3](x1 : M_r2(t1), c : M_r1(t2) × tk[t1×t2]):
	//   copy the second component; the copied first and k travel on.
	l.Funs[l.Offset(pair1Name)].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "x1", Ty: mOf(rv("r2"), tv("t1"))},
			{Name: "c", Ty: gclang.ProdT{L: mOf(rv("r1"), tv("t2")), R: p.tkTy(prodT)}},
		},
		Body: let("x2", proj(1, vr("c")),
			let("k", proj(2, vr("c")),
				let("k2", put(rv("r3"), p.mkCont(tv("t2"), pair2, tv("t2"), tv("t1"), idTag,
					gclang.ProdT{L: mOf(rv("r2"), tv("t1")), R: p.tkTy(prodT)},
					gclang.PairV{L: vr("x1"), R: vr("k")})),
					gclang.AppT{Fn: copyA, Tags: []tags.Tag{tv("t2")}, Rs: p.regions(),
						Args: []gV{vr("x2"), vr("k2")}}))),
	}

	// copypair2[t1,t2,te][r1,r2,r3](x2 : M_r2(t1), c : M_r2(t2) × tk[t2×t1]):
	//   both components copied (note the swapped tag order from the
	//   copypair1 call site); allocate the new pair and return it.
	swapT := tags.Prod{L: tv("t2"), R: tv("t1")}
	l.Funs[l.Offset(pair2Name)].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "x2", Ty: mOf(rv("r2"), tv("t1"))},
			{Name: "c", Ty: gclang.ProdT{L: mOf(rv("r2"), tv("t2")), R: p.tkTy(swapT)}},
		},
		Body: let("x1", proj(1, vr("c")),
			let("k", proj(2, vr("c")),
				let("np", put(rv("r2"), gclang.PairV{L: vr("x1"), R: vr("x2")}),
					p.retk(vr("k"), vr("np"))))),
	}

	// copyexist1[t1,t2,te][r1,r2,r3](z : M_r2(te t1), c : tk[∃u.te u]):
	//   repackage the copied payload and return it.
	l.Funs[l.Offset(exist1Name)].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "z", Ty: mOf(rv("r2"), tags.App{Fn: tv("te"), Arg: tv("t1")})},
			{Name: "c", Ty: p.tkTy(tags.Exist{Bound: "u", Body: tags.App{Fn: tv("te"), Arg: tv("u")}})},
		},
		Body: let("np", put(rv("r2"),
			pack1("u", tv("t1"), vr("z"), mOf(rv("r2"), tags.App{Fn: tv("te"), Arg: tv("u")}))),
			p.retk(vr("c"), vr("np"))),
	}

	return Basic{Layout: l, GC: gcName, Copy: copyName}
}

// contTParams are the tag parameters every continuation code block takes
// (Fig. 12 unifies all continuations at t1, t2 : Ω and te : Ω→Ω, leaving
// unused slots unused).
func contTParams() []gclang.TParam {
	return []gclang.TParam{
		{Name: "t1", Kind: omega},
		{Name: "t2", Kind: omega},
		{Name: "te", Kind: omegaArrow},
	}
}
