package collector

import (
	"testing"

	"psgc/internal/gclang"
	"psgc/internal/names"
	"psgc/internal/tags"
)

func TestForwCollectorTypechecks(t *testing.T) {
	l := &Layout{}
	BuildForw(l)
	checkProgram(t, gclang.Forw, gclang.Program{Code: l.Funs, Main: gclang.HaltT{V: gclang.Num{N: 0}}})
}

func TestForwCollectorCopiesPair(t *testing.T) {
	l := &Layout{}
	f := BuildForw(l)
	l.Add("finish", finishPair(gclang.Forw))

	// main: let region r0 in let p = put[r0](inl (10,32)) in gcf[...](finish, p)
	main := gclang.LetRegionT{R: "r0", Body: let("p",
		put(rv("r0"), gclang.InlV{Val: gclang.PairV{L: gclang.Num{N: 10}, R: gclang.Num{N: 32}}}),
		gclang.AppT{Fn: f.Layout.Addr(f.GC), Tags: []tags.Tag{pairTag},
			Rs: []gR{rv("r0")}, Args: []gV{l.Addr("finish"), vr("p")}})}

	prog := checkProgram(t, gclang.Forw, gclang.Program{Code: l.Funs, Main: main})
	m := gclang.NewMachine(gclang.Forw, prog, 0)
	m.Ghost = true
	v := runCheckedToHalt(t, m, 100000)
	if n, ok := v.(gclang.Num); !ok || n.N != 42 {
		t.Fatalf("result = %s, want 42", v)
	}
	if got := len(m.Mem.Regions()); got != 2 {
		t.Errorf("live regions after collection = %d (%v), want 2", got, m.Mem.Regions())
	}
	if m.Mem.Stats().Sets == 0 {
		t.Errorf("no forwarding pointer was installed")
	}
}

// dagMain builds a shared heap: leaf = (20,22); root = (leaf, leaf), and
// calls the given collector entry. finish adds fst of the first component
// and snd of the second: 20+22 = 42.
func dagFinish(d gclang.Dialect) gclang.LamV {
	treeTag := tags.Prod{L: pairTag, R: pairTag}
	// finish(x : M_r(treeTag)): strip/open as needed per dialect.
	deref := func(v gV, x names.Name, body gT) gT {
		// let g = get v in let x = strip g in body   (forw view)
		return let("g"+x, get(v), let(x, gclang.StripOp{V: vr("g" + x)}, body))
	}
	return gclang.LamV{
		RParams: []names.Name{"r"},
		Params:  []gclang.Param{{Name: "x", Ty: mOf(rv("r"), treeTag)}},
		Body: deref(vr("x"), "y",
			let("p1", proj(1, vr("y")),
				let("p2", proj(2, vr("y")),
					deref(vr("p1"), "y1",
						deref(vr("p2"), "y2",
							let("a", proj(1, vr("y1")),
								let("b", proj(2, vr("y2")),
									let("s", gclang.ArithOp{Kind: gclang.Add, L: vr("a"), R: vr("b")},
										gclang.HaltT{V: vr("s")})))))))),
	}
}

func TestForwCollectorPreservesSharing(t *testing.T) {
	l := &Layout{}
	f := BuildForw(l)
	treeTag := tags.Prod{L: pairTag, R: pairTag}
	l.Add("finish", dagFinish(gclang.Forw))

	main := gclang.LetRegionT{R: "r0",
		Body: let("leaf", put(rv("r0"), gclang.InlV{Val: gclang.PairV{L: gclang.Num{N: 20}, R: gclang.Num{N: 22}}}),
			let("root", put(rv("r0"), gclang.InlV{Val: gclang.PairV{L: vr("leaf"), R: vr("leaf")}}),
				gclang.AppT{Fn: f.Layout.Addr(f.GC), Tags: []tags.Tag{treeTag},
					Rs: []gR{rv("r0")}, Args: []gV{l.Addr("finish"), vr("root")}}))}

	prog := checkProgram(t, gclang.Forw, gclang.Program{Code: l.Funs, Main: main})
	m := gclang.NewMachine(gclang.Forw, prog, 0)
	m.Ghost = true
	v := runCheckedToHalt(t, m, 200000)
	if n, ok := v.(gclang.Num); !ok || n.N != 42 {
		t.Fatalf("result = %s, want 42", v)
	}
	// Sharing preserved: exactly 2 live cells (root + one leaf), not 3.
	if live := m.Mem.LiveCells(); live != 2 {
		t.Errorf("live cells after forwarding collection = %d, want 2 (sharing preserved)", live)
	}
}

func TestBasicCollectorLosesSharing(t *testing.T) {
	// The same DAG under the basic collector duplicates the shared leaf —
	// the §7 motivation for forwarding pointers.
	l := &Layout{}
	b := BuildBasic(l)
	treeTag := tags.Prod{L: pairTag, R: pairTag}
	finish := gclang.LamV{
		RParams: []names.Name{"r"},
		Params:  []gclang.Param{{Name: "x", Ty: mOf(rv("r"), treeTag)}},
		Body: let("y", get(vr("x")),
			let("p1", proj(1, vr("y")),
				let("y1", get(vr("p1")),
					let("a", proj(1, vr("y1")),
						gclang.HaltT{V: vr("a")})))),
	}
	l.Add("finish", finish)

	main := gclang.LetRegionT{R: "r0",
		Body: let("leaf", put(rv("r0"), gclang.PairV{L: gclang.Num{N: 20}, R: gclang.Num{N: 22}}),
			let("root", put(rv("r0"), gclang.PairV{L: vr("leaf"), R: vr("leaf")}),
				gclang.AppT{Fn: b.Layout.Addr(b.GC), Tags: []tags.Tag{treeTag},
					Rs: []gR{rv("r0")}, Args: []gV{l.Addr("finish"), vr("root")}}))}

	prog := checkProgram(t, gclang.Base, gclang.Program{Code: l.Funs, Main: main})
	m := gclang.NewMachine(gclang.Base, prog, 0)
	m.Ghost = true
	runCheckedToHalt(t, m, 200000)
	if live := m.Mem.LiveCells(); live != 3 {
		t.Errorf("live cells after basic collection = %d, want 3 (leaf duplicated)", live)
	}
}

func TestForwCollectorCopiesClosure(t *testing.T) {
	l := &Layout{}
	f := BuildForw(l)

	cloTag := tags.Exist{Bound: "u",
		Body: tags.Prod{L: codeTag(tags.Prod{L: tv("u"), R: tags.Int{}}), R: tv("u")}}

	clofn := gclang.LamV{
		RParams: []names.Name{"r"},
		Params:  []gclang.Param{{Name: "p", Ty: mOf(rv("r"), tags.Prod{L: tags.Int{}, R: tags.Int{}})}},
		Body: let("g", get(vr("p")),
			let("y", gclang.StripOp{V: vr("g")},
				let("envv", proj(1, vr("y")),
					let("arg", proj(2, vr("y")),
						let("s", gclang.ArithOp{Kind: gclang.Add, L: vr("envv"), R: vr("arg")},
							gclang.HaltT{V: vr("s")}))))),
	}
	l.Add("clofn", clofn)

	finish := gclang.LamV{
		RParams: []names.Name{"r"},
		Params:  []gclang.Param{{Name: "x", Ty: mOf(rv("r"), cloTag)}},
		Body: let("g", get(vr("x")),
			let("y", gclang.StripOp{V: vr("g")},
				gclang.OpenTagT{V: vr("y"), T: "u", X: "w",
					Body: let("gw", get(vr("w")),
						let("wp", gclang.StripOp{V: vr("gw")},
							let("code", proj(1, vr("wp")),
								let("envv", proj(2, vr("wp")),
									let("argp", put(rv("r"), gclang.InlV{Val: gclang.PairV{L: vr("envv"), R: gclang.Num{N: 40}}}),
										gclang.AppT{Fn: vr("code"), Rs: []gR{rv("r")}, Args: []gV{vr("argp")}})))))})),
	}
	l.Add("finish", finish)

	main := gclang.LetRegionT{R: "r0",
		Body: let("a", put(rv("r0"), gclang.InlV{Val: gclang.PairV{L: l.Addr("clofn"), R: gclang.Num{N: 2}}}),
			let("bb", put(rv("r0"), gclang.InlV{Val: pack1("u", tags.Int{}, vr("a"),
				mOf(rv("r0"), tags.Prod{L: codeTag(tags.Prod{L: tv("u"), R: tags.Int{}}), R: tv("u")}))}),
				gclang.AppT{Fn: f.Layout.Addr(f.GC), Tags: []tags.Tag{cloTag},
					Rs: []gR{rv("r0")}, Args: []gV{l.Addr("finish"), vr("bb")}}))}

	prog := checkProgram(t, gclang.Forw, gclang.Program{Code: l.Funs, Main: main})
	m := gclang.NewMachine(gclang.Forw, prog, 0)
	m.Ghost = true
	v := runCheckedToHalt(t, m, 200000)
	if n, ok := v.(gclang.Num); !ok || n.N != 42 {
		t.Fatalf("result = %s, want 42", v)
	}
}
