package collector

import (
	"testing"

	"psgc/internal/gclang"
	"psgc/internal/names"
	"psgc/internal/tags"
)

func TestGenCollectorTypechecks(t *testing.T) {
	l := &Layout{}
	BuildGen(l)
	checkProgram(t, gclang.Gen, gclang.Program{Code: l.Funs, Main: gclang.HaltT{V: gclang.Num{N: 0}}})
}

// genPair allocates a pair in region r and wraps it in the region package
// the two-index M expects (∃r∈{ry,ro}).
func genPair(r gR, delta []gR, l, rr gV, t1, t2 tags.Tag) func(x names.Name, body gT) gT {
	return func(x names.Name, body gT) gT {
		return let("raw"+x, put(r, gclang.PairV{L: l, R: rr}),
			letv(x, gclang.PackRegion{Bound: "rp", Delta: delta, R: r,
				Val: vr("raw" + x),
				Body: gclang.ProdT{
					L: mGen(rv("rp"), delta[len(delta)-1], t1),
					R: mGen(rv("rp"), delta[len(delta)-1], t2)}},
				body))
	}
}

func TestGenMinorPromotesYoung(t *testing.T) {
	l := &Layout{}
	g := BuildGen(l)
	l.Add("finish", finishPair(gclang.Gen))

	// Heap: a young pair; minor GC must copy it into the old region and
	// resume finish with a fresh nursery.
	delta := []gR{rv("ry0"), rv("ro0")}
	mk := genPair(rv("ry0"), delta, gclang.Num{N: 10}, gclang.Num{N: 32}, tags.Int{}, tags.Int{})
	main := gclang.LetRegionT{R: "ry0", Body: gclang.LetRegionT{R: "ro0",
		Body: mk("p", gclang.AppT{Fn: g.Layout.Addr(g.Minor), Tags: []tags.Tag{pairTag},
			Rs: delta, Args: []gV{l.Addr("finish"), vr("p")}})}}

	prog := checkProgram(t, gclang.Gen, gclang.Program{Code: l.Funs, Main: main})
	m := gclang.NewMachine(gclang.Gen, prog, 0)
	m.Ghost = true
	v := runCheckedToHalt(t, m, 100000)
	if n, ok := v.(gclang.Num); !ok || n.N != 42 {
		t.Fatalf("result = %s, want 42", v)
	}
	// Regions after: cd, old, fresh nursery.
	if got := len(m.Mem.Regions()); got != 3 {
		t.Errorf("live regions = %d (%v), want 3", got, m.Mem.Regions())
	}
}

func TestGenMinorSkipsOldObjects(t *testing.T) {
	l := &Layout{}
	g := BuildGen(l)

	treeTag := tags.Prod{L: pairTag, R: pairTag}
	// finish opens the root, then the first child, and sums its fields.
	finish := gclang.LamV{
		RParams: []names.Name{"ry", "ro"},
		Params:  []gclang.Param{{Name: "x", Ty: mGen(rv("ry"), rv("ro"), treeTag)}},
		Body: gclang.OpenRegionT{V: vr("x"), R: "ra", X: "xp",
			Body: let("y", get(vr("xp")),
				let("p1", proj(1, vr("y")),
					gclang.OpenRegionT{V: vr("p1"), R: "rb", X: "pp",
						Body: let("y1", get(vr("pp")),
							let("a", proj(1, vr("y1")),
								let("b", proj(2, vr("y1")),
									let("s", gclang.ArithOp{Kind: gclang.Add, L: vr("a"), R: vr("b")},
										gclang.HaltT{V: vr("s")}))))}))},
	}
	l.Add("finish", finish)

	// Heap: oldLeaf allocated in the OLD region, root in the young region
	// pointing at it twice. Minor GC must copy the root but leave oldLeaf
	// in place (no second copy of it).
	delta := []gR{rv("ry0"), rv("ro0")}
	mkOld := genPair(rv("ro0"), delta, gclang.Num{N: 20}, gclang.Num{N: 22}, tags.Int{}, tags.Int{})
	main := gclang.LetRegionT{R: "ry0", Body: gclang.LetRegionT{R: "ro0",
		Body: mkOld("leaf",
			genPair(rv("ry0"), delta, vr("leaf"), vr("leaf"), pairTag, pairTag)("root",
				gclang.AppT{Fn: g.Layout.Addr(g.Minor), Tags: []tags.Tag{treeTag},
					Rs: delta, Args: []gV{l.Addr("finish"), vr("root")}}))}}

	prog := checkProgram(t, gclang.Gen, gclang.Program{Code: l.Funs, Main: main})
	m := gclang.NewMachine(gclang.Gen, prog, 0)
	m.Ghost = true
	v := runCheckedToHalt(t, m, 200000)
	if n, ok := v.(gclang.Num); !ok || n.N != 42 {
		t.Fatalf("result = %s, want 42", v)
	}
	// The old leaf stayed put, the root was promoted: exactly 2 live cells.
	if live := m.Mem.LiveCells(); live != 2 {
		t.Errorf("live cells after minor GC = %d, want 2 (old leaf not re-copied)", live)
	}
}

func TestGenMajorCollectsBothGenerations(t *testing.T) {
	l := &Layout{}
	g := BuildGen(l)
	l.Add("finish", finishPair(gclang.Gen))

	// An old-region pair: the MAJOR collector must copy it (minor would
	// skip it); afterwards only cd + new-old + nursery remain.
	delta := []gR{rv("ry0"), rv("ro0")}
	mkOld := genPair(rv("ro0"), delta, gclang.Num{N: 40}, gclang.Num{N: 2}, tags.Int{}, tags.Int{})
	main := gclang.LetRegionT{R: "ry0", Body: gclang.LetRegionT{R: "ro0",
		Body: mkOld("p", gclang.AppT{Fn: g.Layout.Addr(g.Major), Tags: []tags.Tag{pairTag},
			Rs: delta, Args: []gV{l.Addr("finish"), vr("p")}})}}

	prog := checkProgram(t, gclang.Gen, gclang.Program{Code: l.Funs, Main: main})
	m := gclang.NewMachine(gclang.Gen, prog, 0)
	m.Ghost = true
	v := runCheckedToHalt(t, m, 200000)
	if n, ok := v.(gclang.Num); !ok || n.N != 42 {
		t.Fatalf("result = %s, want 42", v)
	}
	if got := len(m.Mem.Regions()); got != 3 {
		t.Errorf("live regions = %d (%v), want 3", got, m.Mem.Regions())
	}
	// Both old regions were reclaimed; the surviving copy lives in rn.
	if m.Mem.Stats().RegionsReclaimed < 3 {
		t.Errorf("stats = %+v, want ≥3 regions reclaimed", m.Mem.Stats())
	}
}
