package collector

import (
	"fmt"
	"sync"
	"sync/atomic"

	"psgc/internal/gclang"
	"psgc/internal/names"
	"psgc/internal/regions"
)

// Verified is a dialect's collector after the paper's headline theorem has
// been checked: the code blocks are built, typechecked, and elaborated.
// A Verified is immutable and shared by every compile in the process — the
// typechecker run that certifies the collector is a once-per-process cost,
// not a per-compile one.
type Verified struct {
	Dialect gclang.Dialect
	// Funs are the elaborated collector code blocks, occupying cd offsets
	// 0..len(Funs)-1 in every program linked against this collector.
	Funs []gclang.NamedFun
	// GC is the collection entry point (base/forw dialects).
	GC gclang.AddrV
	// Minor and Major are the two entry points of the generational
	// collector (gen dialect).
	Minor, Major gclang.AddrV
	// Entries lists every entry-point address (gc, or minor+major).
	Entries []regions.Addr
}

// NewLayout returns a fresh Layout seeded with the verified collector's
// blocks; mutator code added afterwards lands at the offsets the
// collector's addresses expect. The seeded prefix is shared (collector
// terms are immutable); the returned Layout itself is not safe for
// concurrent use, like any Layout.
func (v *Verified) NewLayout() *Layout {
	l := &Layout{
		Funs:  make([]gclang.NamedFun, len(v.Funs)),
		index: make(map[names.Name]int, len(v.Funs)),
	}
	copy(l.Funs, v.Funs)
	for i, nf := range v.Funs {
		l.index[nf.Name] = i
	}
	return l
}

// cached holds the per-dialect build-and-verify result. Indexed by
// gclang.Dialect (Base, Forw, Gen).
var cached [3]struct {
	once sync.Once
	v    *Verified
	err  error
}

// typechecks counts, per dialect, how many times a collector has been
// built and typechecked in this process. The cache keeps it at one; tests
// and the service's /metrics endpoint observe it.
var typechecks [3]atomic.Int64

// Load returns the verified collector for the dialect, building and
// typechecking it exactly once per process. Concurrent callers share one
// build. An error (impossible unless the collectors themselves are broken)
// is sticky: every Load for the dialect reports it.
func Load(d gclang.Dialect) (*Verified, error) {
	if d < 0 || int(d) >= len(cached) {
		return nil, fmt.Errorf("collector: unknown dialect %v", d)
	}
	s := &cached[d]
	s.once.Do(func() { s.v, s.err = build(d) })
	return s.v, s.err
}

// Typechecks reports how many collector build-and-verify runs have
// happened for the dialect in this process (the cache invariant is 1).
func Typechecks(d gclang.Dialect) int64 {
	if d < 0 || int(d) >= len(typechecks) {
		return 0
	}
	return typechecks[d].Load()
}

// build constructs the dialect's collector and runs the λGC typechecker
// over its blocks — the certification the cache amortizes.
func build(d gclang.Dialect) (*Verified, error) {
	l := &Layout{}
	v := &Verified{Dialect: d}
	switch d {
	case gclang.Base:
		b := BuildBasic(l)
		v.GC = l.Addr(b.GC)
		v.Entries = []regions.Addr{v.GC.Addr}
	case gclang.Forw:
		f := BuildForw(l)
		v.GC = l.Addr(f.GC)
		v.Entries = []regions.Addr{v.GC.Addr}
	case gclang.Gen:
		g := BuildGen(l)
		v.Minor = l.Addr(g.Minor)
		v.Major = l.Addr(g.Major)
		v.Entries = []regions.Addr{v.Minor.Addr, v.Major.Addr}
	default:
		return nil, fmt.Errorf("collector: unknown dialect %v", d)
	}
	typechecks[d].Add(1)
	checker := &gclang.Checker{Dialect: d}
	elab, _, err := checker.CheckProgram(gclang.Program{
		Code: l.Funs,
		Main: gclang.HaltT{V: gclang.Num{N: 0}},
	})
	if err != nil {
		return nil, fmt.Errorf("collector: %s collector does not typecheck: %w", d, err)
	}
	v.Funs = elab.Code
	return v, nil
}
