package collector

import (
	"testing"

	"psgc/internal/gclang"
	"psgc/internal/names"
	"psgc/internal/tags"
)

// checkProgram asserts the collector typechecks — the paper's headline
// theorem — and returns the elaborated program.
func checkProgram(t *testing.T, d gclang.Dialect, p gclang.Program) gclang.Program {
	t.Helper()
	c := &gclang.Checker{Dialect: d}
	elab, _, err := c.CheckProgram(p)
	if err != nil {
		t.Fatalf("collector does not typecheck: %v", err)
	}
	return elab
}

func runCheckedToHalt(t *testing.T, m *gclang.Machine, fuel int) gclang.Value {
	t.Helper()
	for !m.Halted {
		if fuel <= 0 {
			t.Fatalf("out of fuel at step %d:\n%s", m.Steps, m.Term)
		}
		fuel--
		if err := m.Step(); err != nil {
			t.Fatalf("step %d: %v", m.Steps, err)
		}
		if m.Ghost {
			if err := m.CheckState(); err != nil {
				t.Fatalf("preservation violated: %v", err)
			}
		}
	}
	return m.Result
}

// pairTag is Int × Int.
var pairTag = tags.Prod{L: tags.Int{}, R: tags.Int{}}

// finishPair is a mutator continuation ∀[][r](M_r(Int×Int))→0 that sums
// the pair's components and halts.
func finishPair(d gclang.Dialect) gclang.LamV {
	var mr gclang.Type
	switch d {
	case gclang.Gen:
		mr = gclang.MT{Rs: []gclang.Region{rv("ry"), rv("ro")}, Tag: pairTag}
	default:
		mr = mOf(rv("r"), pairTag)
	}
	inner := let("a", proj(1, vr("y")),
		let("b", proj(2, vr("y")),
			let("s", gclang.ArithOp{Kind: gclang.Add, L: vr("a"), R: vr("b")},
				gclang.HaltT{V: vr("s")})))
	var body gT
	switch d {
	case gclang.Forw:
		// M_r(Int×Int) = left(int×int) at r: strip the tag bit first.
		body = let("g", get(vr("x")), let("y", gclang.StripOp{V: vr("g")}, inner))
	case gclang.Gen:
		// M_ry,ro(Int×Int) = ∃r∈{ry,ro}.(…at r): open the region package.
		body = gclang.OpenRegionT{V: vr("x"), R: "rx", X: "xp",
			Body: let("y", get(vr("xp")), inner)}
	default:
		body = let("y", get(vr("x")), inner)
	}
	rparams := []names.Name{"r"}
	if d == gclang.Gen {
		rparams = []names.Name{"ry", "ro"}
	}
	return gclang.LamV{
		RParams: rparams,
		Params:  []gclang.Param{{Name: "x", Ty: mr}},
		Body:    body,
	}
}

func TestBasicCollectorTypechecks(t *testing.T) {
	l := &Layout{}
	BuildBasic(l)
	checkProgram(t, gclang.Base, gclang.Program{Code: l.Funs, Main: gclang.HaltT{V: gclang.Num{N: 0}}})
}

func TestBasicCollectorCopiesPair(t *testing.T) {
	l := &Layout{}
	b := BuildBasic(l)
	finish := l.Add("finish", finishPair(gclang.Base))
	_ = finish

	// main: let region r0 in let p = put[r0](10,32) in
	//       gc[Int×Int][r0](finish, p)
	main := gclang.LetRegionT{R: "r0", Body: let("p",
		put(rv("r0"), gclang.PairV{L: gclang.Num{N: 10}, R: gclang.Num{N: 32}}),
		gclang.AppT{Fn: b.Layout.Addr(b.GC), Tags: []tags.Tag{pairTag},
			Rs: []gR{rv("r0")}, Args: []gV{l.Addr("finish"), vr("p")}})}

	prog := checkProgram(t, gclang.Base, gclang.Program{Code: l.Funs, Main: main})
	m := gclang.NewMachine(gclang.Base, prog, 0)
	m.Ghost = true
	v := runCheckedToHalt(t, m, 10000)
	if n, ok := v.(gclang.Num); !ok || n.N != 42 {
		t.Fatalf("result = %s, want 42", v)
	}
	// The from-space and the continuation region must have been reclaimed:
	// live regions are cd and the to-space.
	if got := len(m.Mem.Regions()); got != 2 {
		t.Errorf("live regions after collection = %d (%v), want 2", got, m.Mem.Regions())
	}
	if m.Mem.Stats().RegionsReclaimed < 2 {
		t.Errorf("stats = %+v, want ≥2 regions reclaimed", m.Mem.Stats())
	}
}

func TestBasicCollectorCopiesTree(t *testing.T) {
	l := &Layout{}
	b := BuildBasic(l)
	// finish for tag ((Int×Int)×(Int×Int)): sum of second pair.
	treeTag := tags.Prod{L: pairTag, R: pairTag}
	finish := gclang.LamV{
		RParams: []names.Name{"r"},
		Params:  []gclang.Param{{Name: "x", Ty: mOf(rv("r"), treeTag)}},
		Body: let("y", get(vr("x")),
			let("q", proj(2, vr("y")),
				let("yq", get(vr("q")),
					let("a", proj(1, vr("yq")),
						let("b", proj(2, vr("yq")),
							let("s", gclang.ArithOp{Kind: gclang.Add, L: vr("a"), R: vr("b")},
								gclang.HaltT{V: vr("s")})))))),
	}
	l.Add("finish", finish)

	main := gclang.LetRegionT{R: "r0",
		Body: let("p1", put(rv("r0"), gclang.PairV{L: gclang.Num{N: 1}, R: gclang.Num{N: 2}}),
			let("p2", put(rv("r0"), gclang.PairV{L: gclang.Num{N: 20}, R: gclang.Num{N: 22}}),
				let("root", put(rv("r0"), gclang.PairV{L: vr("p1"), R: vr("p2")}),
					gclang.AppT{Fn: b.Layout.Addr(b.GC), Tags: []tags.Tag{treeTag},
						Rs: []gR{rv("r0")}, Args: []gV{l.Addr("finish"), vr("root")}})))}

	prog := checkProgram(t, gclang.Base, gclang.Program{Code: l.Funs, Main: main})
	m := gclang.NewMachine(gclang.Base, prog, 0)
	m.Ghost = true
	v := runCheckedToHalt(t, m, 100000)
	if n, ok := v.(gclang.Num); !ok || n.N != 42 {
		t.Fatalf("result = %s, want 42", v)
	}
	// Three cells were live; the to-space must hold exactly 3 copies.
	if live := m.Mem.LiveCells(); live != 3 {
		t.Errorf("live cells after collection = %d, want 3", live)
	}
}

func TestBasicCollectorCopiesClosure(t *testing.T) {
	l := &Layout{}
	b := BuildBasic(l)

	// A mutator closure of tag ∃u.(((u×Int)→0) × u) with witness Int:
	// code block "clofn" takes the (env, arg) pair and halts env+arg.
	cloTag := tags.Exist{Bound: "u",
		Body: tags.Prod{L: codeTag(tags.Prod{L: tv("u"), R: tags.Int{}}), R: tv("u")}}
	cloBodyTag := tags.Prod{L: codeTag(tags.Prod{L: tags.Int{}, R: tags.Int{}}), R: tags.Int{}}

	clofn := gclang.LamV{
		RParams: []names.Name{"r"},
		Params:  []gclang.Param{{Name: "p", Ty: mOf(rv("r"), tags.Prod{L: tags.Int{}, R: tags.Int{}})}},
		Body: let("y", get(vr("p")),
			let("envv", proj(1, vr("y")),
				let("arg", proj(2, vr("y")),
					let("s", gclang.ArithOp{Kind: gclang.Add, L: vr("envv"), R: vr("arg")},
						gclang.HaltT{V: vr("s")})))),
	}
	l.Add("clofn", clofn)

	// finish receives the copied closure, opens it, applies the code to a
	// freshly allocated (env, 40) pair.
	finish := gclang.LamV{
		RParams: []names.Name{"r"},
		Params:  []gclang.Param{{Name: "x", Ty: mOf(rv("r"), cloTag)}},
		Body: let("y", get(vr("x")),
			gclang.OpenTagT{V: vr("y"), T: "u", X: "w",
				Body: let("wp", get(vr("w")),
					let("code", proj(1, vr("wp")),
						let("envv", proj(2, vr("wp")),
							let("argp", put(rv("r"), gclang.PairV{L: vr("envv"), R: gclang.Num{N: 40}}),
								gclang.AppT{Fn: vr("code"), Rs: []gR{rv("r")}, Args: []gV{vr("argp")}}))))}),
	}
	l.Add("finish", finish)

	// Heap: cell A = (clofn, 2) : M(code×u); cell B = ⟨u=Int, A⟩.
	main := gclang.LetRegionT{R: "r0",
		Body: let("a", put(rv("r0"), gclang.PairV{L: l.Addr("clofn"), R: gclang.Num{N: 2}}),
			let("bb", put(rv("r0"), pack1("u", tags.Int{}, vr("a"),
				mOf(rv("r0"), tags.Prod{L: codeTag(tags.Prod{L: tv("u"), R: tags.Int{}}), R: tv("u")}))),
				gclang.AppT{Fn: b.Layout.Addr(b.GC), Tags: []tags.Tag{cloTag},
					Rs: []gR{rv("r0")}, Args: []gV{l.Addr("finish"), vr("bb")}}))}
	_ = cloBodyTag

	prog := checkProgram(t, gclang.Base, gclang.Program{Code: l.Funs, Main: main})
	m := gclang.NewMachine(gclang.Base, prog, 0)
	m.Ghost = true
	v := runCheckedToHalt(t, m, 100000)
	if n, ok := v.(gclang.Num); !ok || n.N != 42 {
		t.Fatalf("result = %s, want 42", v)
	}
}
