package collector

import (
	"psgc/internal/gclang"
	"psgc/internal/names"
	"psgc/internal/tags"
)

// Forw holds the cd layout of the forwarding-pointer collector (Fig. 9,
// CPS'd with the Fig. 12 continuation protocol). Compared to the basic
// collector, copy's argument has the collector view C_r1,r2(t), every boxed
// object is inspected with ifleft, and freshly copied objects are installed
// as forwarding pointers with set — so shared structure is copied once.
type Forw struct {
	Layout *Layout
	GC     names.Name
	Copy   names.Name
}

// cOf builds C_ρ,ρ'(τ).
func cOf(from, to gR, tag tags.Tag) gclang.Type {
	return gclang.CT{From: from, To: to, Tag: tag}
}

// BuildForw adds the forwarding collector's code blocks to the layout.
// The entry point has the same interface as the basic collector's:
//
//	gcf : ∀[t:Ω][r1](M_r1((t)→0), M_r1(t)) → 0
func BuildForw(l *Layout) Forw {
	p := basicProto() // same regions and result type M_r2(τ)
	t := tv("t")
	r1, r2, r3 := rv("r1"), rv("r2"), rv("r3")

	gcName := names.Name("gcf")
	gcendName := names.Name("gcendf")
	copyName := names.Name("copyf")
	pair1Name := names.Name("copypair1f")
	pair2Name := names.Name("copypair2f")
	exist1Name := names.Name("copyexist1f")

	for _, n := range []names.Name{gcName, gcendName, copyName, pair1Name, pair2Name, exist1Name} {
		l.Add(n, gclang.LamV{})
	}
	gcend := l.Addr(gcendName)
	copyA := l.Addr(copyName)
	pair1 := l.Addr(pair1Name)
	pair2 := l.Addr(pair2Name)
	exist1 := l.Addr(exist1Name)

	fTy := func(arg tags.Tag, r gR) gclang.Type { return mOf(r, codeTag(arg)) }
	rootTag := tags.Prod{L: codeTag(t), R: t}

	// gcf[t:Ω][r1](f : M_r1((t)→0), x : M_r1(t)) =
	//   let root = put[r1](inl (f, x)) in        -- bundle the roots (Fig. 9)
	//   let region r2 in
	//   let w = widen[r2][((t)→0) × t](root) in  -- collector view of the heap
	//   let region r3 in
	//   let y = get w in
	//   ifleft yy = y
	//     (let pr = strip yy in … copyf[t][r1,r2,r3](π2 pr, k))
	//     (halt 0)                               -- fresh root can't be forwarded
	l.Funs[l.Offset(gcName)].Fun = gclang.LamV{
		TParams: []gclang.TParam{{Name: "t", Kind: omega}},
		RParams: []names.Name{"r1"},
		Params: []gclang.Param{
			{Name: "f", Ty: fTy(t, r1)},
			{Name: "x", Ty: mOf(r1, t)},
		},
		Body: let("root", put(r1, gclang.InlV{Val: gclang.PairV{L: vr("f"), R: vr("x")}}),
			gclang.LetRegionT{R: "r2",
				Body: gclang.WidenT{X: "w", To: r2, Tag: rootTag, V: vr("root"),
					Body: gclang.LetRegionT{R: "r3",
						Body: let("y", get(vr("w")),
							gclang.IfLeftT{X: "yy", V: vr("y"),
								L: let("pr", gclang.StripOp{V: vr("yy")},
									let("f2", proj(1, vr("pr")),
										let("x2", proj(2, vr("pr")),
											let("k", put(r3, p.mkCont(t, gcend, t, tags.Int{}, idTag,
												cOf(r1, r2, codeTag(t)), vr("f2"))),
												gclang.AppT{Fn: copyA, Tags: []tags.Tag{t}, Rs: p.regions(),
													Args: []gV{vr("x2"), vr("k")}})))),
								R: gclang.HaltT{V: gclang.Num{N: 0}},
							})}}})}

	// gcendf[t1,t2,te][r1,r2,r3](y : M_r2(t1), f : C_r1,r2((t1)→0)) =
	//   only {r2} in f[][r2](y)
	l.Funs[l.Offset(gcendName)].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "y", Ty: mOf(r2, tv("t1"))},
			{Name: "f", Ty: cOf(r1, r2, codeTag(tv("t1")))},
		},
		Body: gclang.OnlyT{Delta: []gR{r2},
			Body: gclang.AppT{Fn: vr("f"), Rs: []gR{r2}, Args: []gV{vr("y")}}},
	}

	// copyf[t:Ω][r1,r2,r3](x : C_r1,r2(t), k : tk[t]) = typecase t of …
	prodT := tags.Prod{L: tv("t1"), R: tv("t2")}
	existTag := tags.Exist{Bound: "u", Body: tags.App{Fn: tv("te"), Arg: tv("u")}}
	teApp := func(a tags.Tag) tags.Tag { return tags.App{Fn: tv("te"), Arg: a} }

	// Environment types of the three continuations; each carries the
	// original address x so copypair2f/copyexist1f can install the
	// forwarding pointer with set (§7).
	pair1Env := gclang.ProdT{L: cOf(r1, r2, tv("t2")),
		R: gclang.ProdT{L: cOf(r1, r2, prodT), R: p.tkTy(prodT)}}
	swapT := tags.Prod{L: tv("t2"), R: tv("t1")}
	pair2Env := gclang.ProdT{L: mOf(r2, tv("t2")),
		R: gclang.ProdT{L: cOf(r1, r2, swapT), R: p.tkTy(swapT)}}
	exist1Env := gclang.ProdT{L: cOf(r1, r2, existTag), R: p.tkTy(existTag)}

	l.Funs[l.Offset(copyName)].Fun = gclang.LamV{
		TParams: []gclang.TParam{{Name: "t", Kind: omega}},
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "x", Ty: cOf(r1, r2, t)},
			{Name: "k", Ty: p.tkTy(t)},
		},
		Body: gclang.TypecaseT{
			Tag:    t,
			IntArm: p.retk(vr("k"), vr("x")),
			TL:     "tλ",
			LamArm: p.retk(vr("k"), vr("x")),
			T1:     "t1", T2: "t2",
			// t1×t2 ⇒ inspect the tag bit: forwarded objects return the
			// recorded to-space pointer; otherwise copy the components,
			// with the original address riding along for the set.
			ProdArm: let("y", get(vr("x")),
				gclang.IfLeftT{X: "yy", V: vr("y"),
					L: let("pr", gclang.StripOp{V: vr("yy")},
						let("x1", proj(1, vr("pr")),
							let("x2", proj(2, vr("pr")),
								let("k1", put(r3, p.mkCont(tv("t1"), pair1, tv("t1"), tv("t2"), idTag,
									pair1Env,
									gclang.PairV{L: vr("x2"), R: gclang.PairV{L: vr("x"), R: vr("k")}})),
									gclang.AppT{Fn: copyA, Tags: []tags.Tag{tv("t1")}, Rs: p.regions(),
										Args: []gV{vr("x1"), vr("k1")}})))),
					R: let("z", gclang.StripOp{V: vr("yy")}, p.retk(vr("k"), vr("z"))),
				}),
			Te: "te",
			ExistArm: let("y", get(vr("x")),
				gclang.IfLeftT{X: "yy", V: vr("y"),
					L: let("pk", gclang.StripOp{V: vr("yy")},
						gclang.OpenTagT{V: vr("pk"), T: "tx", X: "z",
							Body: let("k1", put(r3, p.mkCont(teApp(tv("tx")), exist1, tv("tx"), tags.Int{}, tv("te"),
								exist1Env,
								gclang.PairV{L: vr("x"), R: vr("k")})),
								gclang.AppT{Fn: copyA, Tags: []tags.Tag{teApp(tv("tx"))}, Rs: p.regions(),
									Args: []gV{vr("z"), vr("k1")}})}),
					R: let("z", gclang.StripOp{V: vr("yy")}, p.retk(vr("k"), vr("z"))),
				}),
		},
	}

	// copypair1f[t1,t2,te][r1,r2,r3](x1 : M_r2(t1), c : C(t2) × (C(t1×t2) × tk[t1×t2]))
	l.Funs[l.Offset(pair1Name)].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "x1", Ty: mOf(r2, tv("t1"))},
			{Name: "c", Ty: pair1Env},
		},
		Body: let("x2", proj(1, vr("c")),
			let("rest", proj(2, vr("c")),
				let("k2", put(r3, p.mkCont(tv("t2"), pair2, tv("t2"), tv("t1"), idTag,
					gclang.ProdT{L: mOf(r2, tv("t1")),
						R: gclang.ProdT{L: cOf(r1, r2, prodT), R: p.tkTy(prodT)}},
					gclang.PairV{L: vr("x1"), R: vr("rest")})),
					gclang.AppT{Fn: copyA, Tags: []tags.Tag{tv("t2")}, Rs: p.regions(),
						Args: []gV{vr("x2"), vr("k2")}}))),
	}

	// copypair2f[t1,t2,te][r1,r2,r3](x2 : M_r2(t1), c : M_r2(t2) × (C(t2×t1) × tk[t2×t1])):
	//   allocate the copy, install the forwarding pointer, return the copy.
	l.Funs[l.Offset(pair2Name)].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "x2", Ty: mOf(r2, tv("t1"))},
			{Name: "c", Ty: pair2Env},
		},
		Body: let("x1", proj(1, vr("c")),
			let("rest", proj(2, vr("c")),
				let("xaddr", proj(1, vr("rest")),
					let("k", proj(2, vr("rest")),
						let("np", put(r2, gclang.InlV{Val: gclang.PairV{L: vr("x1"), R: vr("x2")}}),
							gclang.SetT{Dst: vr("xaddr"), Src: gclang.InrV{Val: vr("np")},
								Body: p.retk(vr("k"), vr("np"))}))))),
	}

	// copyexist1f[t1,t2,te][r1,r2,r3](z : M_r2(te t1), c : C(∃u.te u) × tk[∃u.te u])
	l.Funs[l.Offset(exist1Name)].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "z", Ty: mOf(r2, teApp(tv("t1")))},
			{Name: "c", Ty: exist1Env},
		},
		Body: let("xaddr", proj(1, vr("c")),
			let("k", proj(2, vr("c")),
				let("np", put(r2, gclang.InlV{Val: pack1("u", tv("t1"), vr("z"),
					mOf(r2, teApp(tv("u"))))}),
					gclang.SetT{Dst: vr("xaddr"), Src: gclang.InrV{Val: vr("np")},
						Body: p.retk(vr("k"), vr("np"))}))),
	}

	return Forw{Layout: l, GC: gcName, Copy: copyName}
}
