// Package collector builds the paper's garbage collectors as λGC programs:
// the basic stop-and-copy collector after CPS and closure conversion
// (Fig. 12), the forwarding-pointer collector (Fig. 9, CPS'd the same
// way), and the generational collector (Fig. 11, CPS'd, plus the major
// collector §8 notes is "the same as the non-generational one").
//
// The collectors are data: λGC terms assembled here and verified by
// gclang's typechecker. That the collectors typecheck is the paper's
// headline theorem, and the tests in this package assert it.
package collector

import (
	"psgc/internal/gclang"
	"psgc/internal/kinds"
	"psgc/internal/names"
	"psgc/internal/tags"
)

// Shorthands: the builders below transliterate Fig. 12, and the paper's
// one-letter metavariables are clearer here than spelled-out names.
type (
	gT = gclang.Term
	gV = gclang.Value
	gR = gclang.Region
)

func vr(n names.Name) gV { return gclang.Var{Name: n} }
func rv(n names.Name) gR { return gclang.RVar{Name: n} }
func tv(n names.Name) tags.Tag {
	return tags.Var{Name: n}
}

func let(x names.Name, op gclang.Op, body gT) gT {
	return gclang.LetT{X: x, Op: op, Body: body}
}

func letv(x names.Name, v gV, body gT) gT { return let(x, gclang.ValOp{V: v}, body) }
func proj(i int, v gV) gclang.Op          { return gclang.ProjOp{I: i, V: v} }
func put(r gR, v gV) gclang.Op            { return gclang.PutOp{R: r, V: v} }
func get(v gV) gclang.Op                  { return gclang.GetOp{V: v} }

// idTag is the identity tag function λu.u, used to fill unused te slots
// (Fig. 12 writes λt.t).
var idTag = tags.Lam{Param: "u", Body: tags.Var{Name: "u"}}

// omega and omegaArrow abbreviate the two kinds.
var (
	omega      = kinds.Kind(kinds.Omega{})
	omegaArrow = kinds.Kind(kinds.OmegaToOmega)
)

// codeTag builds the unary code tag (τ)→0.
func codeTag(arg tags.Tag) tags.Tag {
	return tags.Code{Args: []tags.Tag{arg}}
}

// Layout assigns cd offsets to the collector's code blocks (and later the
// translated mutator's). The i-th added block lives at cd.i, matching
// gclang.NewMachine's installation order.
type Layout struct {
	Funs  []gclang.NamedFun
	index map[names.Name]int
}

// Add appends a code block and returns its offset.
func (l *Layout) Add(name names.Name, fun gclang.LamV) int {
	if l.index == nil {
		l.index = map[names.Name]int{}
	}
	if _, dup := l.index[name]; dup {
		panic("collector: duplicate code block " + string(name))
	}
	l.index[name] = len(l.Funs)
	l.Funs = append(l.Funs, gclang.NamedFun{Name: name, Fun: fun})
	return l.index[name]
}

// Addr returns the cd address value of a named block.
func (l *Layout) Addr(name names.Name) gclang.AddrV {
	i, ok := l.index[name]
	if !ok {
		panic("collector: unknown code block " + string(name))
	}
	return gclang.CodeAddr(i)
}

// Offset returns the cd offset of a named block.
func (l *Layout) Offset(name names.Name) int {
	i, ok := l.index[name]
	if !ok {
		panic("collector: unknown code block " + string(name))
	}
	return i
}

// proto captures the continuation-closure protocol shared by all three
// collectors (Fig. 12's tc/tk machinery):
//
//	tc[τ] = ∀⟦κ1,κ2,κe⟧⟦rnames…⟧(result(τ), κα) →cd 0 × κα
//	tk[τ] = (∃κ1:Ω.∃κ2:Ω.∃κe:Ω→Ω.∃κα:{rnames…}. tc[τ]) at last(rnames)
//
// where result(τ) is the copied-value type the continuation receives
// (M_r2(τ) for base/forw, M_ro,ro(τ) for the minor generational collector,
// M_rn,rn(τ) for the major one). The recorded-tag binders κ1,κ2,κe hide
// the continuation code's own tag parameters; κα hides its environment
// type, constrained to the collector's regions so `only` can be checked.
//
// The rnames are shared verbatim between the collector's code blocks and
// the translucent types: the κα constraint {r1,r2,r3} refers to those
// binder names in both places, exactly as Fig. 12 writes it.
type proto struct {
	rnames []names.Name
	result func(tag tags.Tag) gclang.Type
}

func (p proto) regions() []gR {
	out := make([]gR, len(p.rnames))
	for i, n := range p.rnames {
		out[i] = rv(n)
	}
	return out
}

// contRegion is the region holding continuation closures (always the last
// region parameter).
func (p proto) contRegion() gR { return rv(p.rnames[len(p.rnames)-1]) }

// The canonical binder names of the closure packages.
const (
	k1Name    = names.Name("κ1")
	k2Name    = names.Name("κ2")
	keName    = names.Name("κe")
	alphaName = names.Name("κα")
)

// tcBody builds tc[tag] with the given witnesses for the recorded tags
// and the environment type (use tag variables / AlphaT for the fully
// abstract form).
func (p proto) tcBody(tag tags.Tag, w1, w2, we tags.Tag, alpha gclang.Type) gclang.Type {
	return gclang.ProdT{
		L: gclang.TransT{
			Tags:   []tags.Tag{w1, w2, we},
			Rs:     p.regions(),
			Params: []gclang.Type{p.result(tag), alpha},
			R:      gclang.CDRegion,
		},
		R: alpha,
	}
}

// closTy builds the unlocated closure type ∃κ1.∃κ2.∃κe.∃κα.tc[tag].
func (p proto) closTy(tag tags.Tag) gclang.Type {
	alpha := gclang.AlphaT{Name: alphaName}
	return gclang.ExistT{Bound: k1Name, Kind: omega,
		Body: gclang.ExistT{Bound: k2Name, Kind: omega,
			Body: gclang.ExistT{Bound: keName, Kind: omegaArrow,
				Body: gclang.ExistAlphaT{Bound: alphaName, Delta: p.regions(),
					Body: p.tcBody(tag, tv(k1Name), tv(k2Name), tv(keName), alpha)}}}}
}

// tkTy builds tk[tag]: the closure type located in the continuation region.
func (p proto) tkTy(tag tags.Tag) gclang.Type {
	return gclang.AtT{Body: p.closTy(tag), R: p.contRegion()}
}

// mkCont builds the continuation closure value
//
//	⟨κ1=w1, ⟨κ2=w2, ⟨κe=we, ⟨κα=envTy, (code⟦w1,w2,we⟧, env)⟩⟩⟩⟩
//
// for a continuation whose code block is code (a cd address) and whose
// environment has the given type and value. tag is the tag of the value
// the continuation will receive.
func (p proto) mkCont(tag tags.Tag, code gclang.AddrV, w1, w2, we tags.Tag, envTy gclang.Type, env gV) gV {
	alpha := gclang.AlphaT{Name: alphaName}
	pair := gclang.PairV{L: gclang.TAppV{Val: code, Tags: []tags.Tag{w1, w2, we}, Rs: p.regions()}, R: env}
	pa := gclang.PackAlpha{
		Bound: alphaName, Delta: p.regions(), Hidden: envTy, Val: pair,
		Body: p.tcBody(tag, w1, w2, we, alpha),
	}
	pe := gclang.PackTag{
		Bound: keName, Kind: omegaArrow, Tag: we, Val: pa,
		Body: gclang.ExistAlphaT{Bound: alphaName, Delta: p.regions(),
			Body: p.tcBody(tag, w1, w2, tv(keName), alpha)},
	}
	p2 := gclang.PackTag{
		Bound: k2Name, Kind: omega, Tag: w2, Val: pe,
		Body: gclang.ExistT{Bound: keName, Kind: omegaArrow,
			Body: gclang.ExistAlphaT{Bound: alphaName, Delta: p.regions(),
				Body: p.tcBody(tag, w1, tv(k2Name), tv(keName), alpha)}},
	}
	return gclang.PackTag{
		Bound: k1Name, Kind: omega, Tag: w1, Val: p2,
		Body: gclang.ExistT{Bound: k2Name, Kind: omega,
			Body: gclang.ExistT{Bound: keName, Kind: omegaArrow,
				Body: gclang.ExistAlphaT{Bound: alphaName, Delta: p.regions(),
					Body: p.tcBody(tag, tv(k1Name), tv(k2Name), tv(keName), alpha)}}},
	}
}

// retk builds the return-to-continuation term: fetch the closure from k,
// open its four packages, and invoke the code on (result, env).
//
//	let kc = get k in
//	open kc as ⟨κ1,o1⟩ in … open o3 as ⟨κα,c⟩ in
//	(π1 c)(result, π2 c)
func (p proto) retk(k gV, result gV) gT {
	return let("kc", get(k),
		gclang.OpenTagT{V: vr("kc"), T: "κ1'", X: "o1",
			Body: gclang.OpenTagT{V: vr("o1"), T: "κ2'", X: "o2",
				Body: gclang.OpenTagT{V: vr("o2"), T: "κe'", X: "o3",
					Body: gclang.OpenAlphaT{V: vr("o3"), A: "κα'", X: "cl",
						Body: let("fn", proj(1, vr("cl")),
							let("envc", proj(2, vr("cl")),
								gclang.AppT{Fn: vr("fn"),
									Args: []gV{result, vr("envc")}}))}}}})
}

// pack1 abbreviates a unary tag existential package ⟨u=w, v : body⟩.
func pack1(bound names.Name, w tags.Tag, v gV, body gclang.Type) gV {
	return gclang.PackTag{Bound: bound, Kind: omega, Tag: w, Val: v, Body: body}
}
